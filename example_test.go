package distwindow_test

// Runnable godoc examples for the public API.

import (
	"errors"
	"fmt"
	"math/rand"

	"distwindow"
	"distwindow/mat"
)

// ExampleNew tracks a two-site stream and audits the sketch.
func ExampleNew() {
	tr, err := distwindow.New(distwindow.Config{
		Protocol: distwindow.DA2,
		D:        4,
		W:        100,
		Eps:      0.1,
		Sites:    2,
	})
	if err != nil {
		panic(err)
	}
	// Two sites each observe one strong direction.
	for i := int64(1); i <= 200; i++ {
		tr.Observe(0, distwindow.Row{T: i, V: []float64{3, 0, 0, 0}})
		tr.Observe(1, distwindow.Row{T: i, V: []float64{0, 2, 0, 0}})
	}
	b := tr.Sketch()
	g := mat.Gram(b)
	fmt.Printf("energy along e1 > e2: %v\n", g.At(0, 0) > g.At(1, 1))
	fmt.Printf("one-way: %v\n", tr.Stats().WordsDown == 0)
	// Output:
	// energy along e1 > e2: true
	// one-way: true
}

// ExampleNewAggregate tracks the windowed sum of weights.
func ExampleNewAggregate() {
	at, err := distwindow.NewAggregate(distwindow.Config{W: 50, Eps: 0.1, Sites: 2})
	if err != nil {
		panic(err)
	}
	for i := int64(1); i <= 300; i++ {
		at.Observe(int(i)%2, i, 2.0)
	}
	// Window holds 50 items of weight 2 → sum ≈ 100.
	est := at.Estimate()
	fmt.Printf("within 20%% of 100: %v\n", est > 80 && est < 120)
	// Output:
	// within 20% of 100: true
}

// ExampleSketchPCA extracts an approximate PCA basis from a sketch.
func ExampleSketchPCA() {
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 200)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 10, rng.NormFloat64()}
	}
	p := distwindow.SketchPCA(mat.FromRows(rows), 1)
	comp := p.Components.Row(0)
	fmt.Printf("dominant axis is e1: %v\n", comp[0]*comp[0] > 0.9)
	// Output:
	// dominant axis is e1: true
}

// ExampleNewFrequency finds windowed heavy hitters.
func ExampleNewFrequency() {
	ft, err := distwindow.NewFrequency(distwindow.Config{W: 1000, Eps: 0.05, Sites: 2})
	if err != nil {
		panic(err)
	}
	for i := int64(1); i <= 600; i++ {
		item := i % 10 // items 0..9 uniform
		if i%2 == 0 {
			item = 42 // item 42 takes half the stream
		}
		ft.Observe(int(i)%2, i, item)
	}
	top := ft.TopK(1)
	fmt.Printf("heavy hitter: %d\n", top[0].Item)
	// Output:
	// heavy hitter: 42
}

// ExampleNewAnomalyScorer scores points against a window sketch.
func ExampleNewAnomalyScorer() {
	// Window data lives on e1.
	rows := make([][]float64, 100)
	for i := range rows {
		rows[i] = []float64{float64(i%7 + 1), 0}
	}
	sc := distwindow.NewAnomalyScorer(mat.FromRows(rows), 1)
	fmt.Printf("normal score < 0.1: %v\n", sc.Score([]float64{5, 0}) < 0.1)
	fmt.Printf("anomaly score > 0.9: %v\n", sc.Score([]float64{0, 5}) > 0.9)
	// Output:
	// normal score < 0.1: true
	// anomaly score > 0.9: true
}

// ExampleTracker_ObserveBatch ingests with a reused batch buffer and
// distinguishes stale rows from caller bugs with errors.Is.
func ExampleTracker_ObserveBatch() {
	tr, err := distwindow.New(distwindow.Config{
		Protocol: distwindow.DA1, D: 2, W: 100, Eps: 0.1, Sites: 1,
	})
	if err != nil {
		panic(err)
	}
	// No layer retains row values, so one batch slice — including each
	// row's V backing array — can be refilled and resubmitted forever.
	batch := make([]distwindow.Row, 4)
	for i := range batch {
		batch[i].V = make([]float64, 2)
	}
	for chunk := 0; chunk < 3; chunk++ {
		for i := range batch {
			batch[i].T = int64(chunk*len(batch) + i)
			batch[i].V[0] = float64(i + 1) // refill in place
			batch[i].V[1] = 0
		}
		accepted, err := tr.ObserveBatch(0, batch)
		if err != nil {
			panic(err) // ErrSiteRange/ErrDimension: caller bug
		}
		fmt.Printf("chunk %d: accepted %d\n", chunk, accepted)
	}
	// A stale single row is an ErrStale, not a bug:
	err = tr.TryObserve(0, distwindow.Row{T: 3, V: []float64{1, 0}})
	fmt.Printf("stale: %v\n", errors.Is(err, distwindow.ErrStale))
	// Output:
	// chunk 0: accepted 4
	// chunk 1: accepted 4
	// chunk 2: accepted 4
	// stale: true
}
