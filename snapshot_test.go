package distwindow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sync"
	"testing"

	"distwindow/internal/protocol"
	"distwindow/internal/stream"
	"distwindow/mat"
)

// denseHash fingerprints a matrix down to the bit pattern of every entry,
// so "bit-identical" assertions are exactly that.
func denseHash(m *mat.Dense) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < m.Rows(); i++ {
		for _, v := range m.Row(i) {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			h.Write(b[:])
		}
	}
	return h.Sum64()
}

// coordHash fingerprints a coordinator snapshot: the Gram estimate for the
// deterministic family, the sketch for the sampling family.
func coordHash(cs protocol.CoordSnapshot) uint64 {
	if g, ok := cs.Gram(); ok {
		return denseHash(g)
	}
	return denseHash(cs.Sketch())
}

// snapHash fingerprints a published facade snapshot the same way.
func snapHash(s *Snapshot) uint64 {
	if g, ok := s.SketchGram(); ok {
		return denseHash(g)
	}
	return denseHash(s.Sketch())
}

// refHash reads a live tracker's would-be snapshot through the same
// non-mutating seam publication uses (safe even for Decay, whose Sketch/
// SketchGram queries decay state in place).
func refHash(tr *Tracker) uint64 {
	return coordHash(tr.inner.(protocol.Snapshotter).SnapshotCoord())
}

type snapObs struct {
	version uint64
	rows    int64
	hash    uint64
}

// TestSnapshotSequentialPrefixConsistency races readers against sequential
// ingest on an armed tracker and asserts every snapshot they observe is
// bit-identical to the state a reference tracker reaches after exactly
// snapshot.Rows() delivered rows — snapshots are prefix-consistent, never
// torn. Run with -race this is the regression test for queries racing
// sequential ingest.
func TestSnapshotSequentialPrefixConsistency(t *testing.T) {
	const n, d, sites = 600, 4, 3
	for _, p := range []Protocol{DA1, DA2, Decay, PWOR} {
		t.Run(string(p), func(t *testing.T) {
			cfg := Config{Protocol: p, D: d, W: 200, Eps: 0.25, Sites: sites, Ell: 16, Seed: 1}
			if p == Decay {
				cfg.W, cfg.Ell = 0, 0
				cfg.DecayGamma = 0.99
			}
			rows := testRows(n, d, 7)

			// Reference: same config, hashed through the snapshot seam after
			// every delivered row.
			ref, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := make(map[int64]uint64, n+1)
			want[0] = refHash(ref)
			for i, r := range rows {
				if err := ref.TryObserve(i%sites, r); err != nil {
					t.Fatal(err)
				}
				want[int64(i+1)] = refHash(ref)
			}

			tr, err := New(cfg, WithSnapshots(16))
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			var wg sync.WaitGroup
			readers := make([][]snapObs, 2)
			for g := range readers {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					var last uint64
					for i := 0; i < 200; i++ {
						s, err := tr.Snapshot()
						if err != nil {
							t.Errorf("reader %d: %v", g, err)
							return
						}
						if s.Version() < last {
							t.Errorf("reader %d: version went backwards %d → %d", g, last, s.Version())
							return
						}
						last = s.Version()
						readers[g] = append(readers[g], snapObs{s.Version(), s.Rows(), snapHash(s)})
						// Exercise the derived views concurrently too.
						_ = tr.Sketch()
						if s.Rows() > 0 {
							_ = s.PCA(2)
						}
					}
				}(g)
			}
			for i, r := range rows {
				if err := tr.TryObserve(i%sites, r); err != nil {
					t.Fatal(err)
				}
				if i%16 == 0 {
					runtime.Gosched()
				}
			}
			tr.Drain()
			wg.Wait()

			checked := 0
			for g, obs := range readers {
				for _, o := range obs {
					h, ok := want[o.rows]
					if !ok {
						t.Fatalf("reader %d: snapshot at %d rows, not a delivered-row boundary", g, o.rows)
					}
					if h != o.hash {
						t.Fatalf("reader %d: snapshot v%d at %d rows not bit-identical to the sequential reference", g, o.version, o.rows)
					}
					checked++
				}
			}
			if checked == 0 {
				t.Fatal("readers observed no snapshots")
			}
			s, err := tr.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if s.Rows() != n || snapHash(s) != want[n] {
				t.Fatalf("post-Drain snapshot rows=%d hash mismatch (want rows=%d)", s.Rows(), n)
			}
		})
	}
}

// TestSnapshotParallelPrefixConsistency races readers against the parallel
// pipeline. Pass boundaries can fall between two updates of one row's
// report, so the reference is built at update granularity: replaying the
// same rows through a second tracker's one-way seam and fingerprinting the
// coordinator after every single applied update. Every snapshot a reader
// observes must be bit-identical to one of those prefixes.
func TestSnapshotParallelPrefixConsistency(t *testing.T) {
	const n, d, sites = 400, 4, 4
	cfg := Config{Protocol: DA1, D: d, W: 300, Eps: 0.25, Sites: sites, Seed: 1}
	rows := testRows(n, d, 11)

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ow := ref.inner.(protocol.OneWay)
	snapper := ref.inner.(protocol.Snapshotter)
	valid := map[uint64]bool{coordHash(snapper.SnapshotCoord()): true}
	var finalGram *mat.Dense
	for i, r := range rows {
		site := i % sites
		ow.ObserveSite(site, stream.Row{T: r.T, V: r.V}, func(scale float64, v []float64) {
			ow.Apply(protocol.Update{T: r.T, Site: site, Scale: scale, V: v})
			valid[coordHash(snapper.SnapshotCoord())] = true
		})
	}
	finalGram, _ = snapper.SnapshotCoord().Gram()

	workerCounts := []int{1, 2, runtime.NumCPU()}
	for _, workers := range workerCounts {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			tr, err := New(cfg, WithParallel(workers), WithSnapshots(8))
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()

			var wg sync.WaitGroup
			readers := make([][]snapObs, 2)
			for g := range readers {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					var last uint64
					for i := 0; i < 200; i++ {
						s, err := tr.Snapshot()
						if err != nil {
							t.Errorf("reader %d: %v", g, err)
							return
						}
						if s.Version() < last {
							t.Errorf("reader %d: version went backwards", g)
							return
						}
						last = s.Version()
						readers[g] = append(readers[g], snapObs{s.Version(), s.Rows(), snapHash(s)})
						_, _ = tr.SketchGram()
					}
				}(g)
			}
			// Parallel contract: one feeder goroutine per site.
			var feeders sync.WaitGroup
			for site := 0; site < sites; site++ {
				feeders.Add(1)
				go func(site int) {
					defer feeders.Done()
					for i := site; i < n; i += sites {
						if err := tr.TryObserve(site, rows[i]); err != nil {
							t.Errorf("site %d: %v", site, err)
							return
						}
					}
				}(site)
			}
			feeders.Wait()
			tr.Drain()
			wg.Wait()

			checked := 0
			for g, obs := range readers {
				for _, o := range obs {
					if !valid[o.hash] {
						t.Fatalf("reader %d: snapshot v%d (rows≈%d) is not any update-prefix of the sequential order", g, o.version, o.rows)
					}
					checked++
				}
			}
			if checked == 0 {
				t.Fatal("readers observed no snapshots")
			}
			s, err := tr.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			got, ok := s.SketchGram()
			if !ok {
				t.Fatal("no gram from DA1 snapshot")
			}
			if denseHash(got) != denseHash(finalGram) {
				t.Fatal("post-Drain parallel snapshot not bit-identical to the sequential final state")
			}
		})
	}
}

// TestSnapshotRegistryConcurrentQueries exercises the registry path: armed
// streams queried (snapshots, metrics, Prometheus exposition) while their
// owners ingest.
func TestSnapshotRegistryConcurrentQueries(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	cfg := Config{Protocol: DA1, D: 3, W: 500, Eps: 0.2, Sites: 1}
	for _, id := range []string{"a", "b"} {
		if _, _, err := reg.Open(id, cfg, WithSnapshots(16)); err != nil {
			t.Fatal(err)
		}
	}
	rows := testRows(300, 3, 3)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, id := range []string{"a", "b"} {
				tr, ok := reg.Get(id)
				if !ok {
					continue
				}
				if s, err := tr.Snapshot(); err != nil {
					t.Errorf("%s: %v", id, err)
					return
				} else if s.Version() == 0 {
					t.Errorf("%s: zero snapshot version", id)
					return
				}
				_ = tr.Metrics()
			}
			_ = reg.Metrics()
		}
	}()
	for _, id := range []string{"a", "b"} {
		tr, _ := reg.Get(id)
		for _, r := range rows {
			if err := tr.TryObserve(0, r); err != nil {
				t.Fatal(err)
			}
		}
		tr.Drain()
	}
	close(stop)
	wg.Wait()

	tr, _ := reg.Get("a")
	m := tr.Metrics()
	if m.SnapshotVersion == 0 || m.SnapshotPublishes == 0 {
		t.Errorf("snapshot metrics not populated: %+v", m.SnapshotVersion)
	}
	if m.SnapshotLagRows != 0 {
		t.Errorf("lag after Drain = %d, want 0", m.SnapshotLagRows)
	}
}

// TestErrQueryDuringIngest pins the unarmed fallback: Snapshot on an
// unarmed tracker fails fast with the typed error while ingest holds the
// gate, instead of silently racing, and succeeds once ingest is out.
func TestErrQueryDuringIngest(t *testing.T) {
	tr, err := New(Config{Protocol: DA1, D: 3, W: 100, Eps: 0.2, Sites: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.TryObserve(0, Row{T: 1, V: []float64{1, 0, 0}}); err != nil {
		t.Fatal(err)
	}

	tr.gate.enterShared() // simulate an ingest call in flight
	if _, err := tr.Snapshot(); !errors.Is(err, ErrQueryDuringIngest) {
		t.Fatalf("Snapshot during ingest: err = %v, want ErrQueryDuringIngest", err)
	}
	tr.gate.exitShared()

	s, err := tr.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot after ingest: %v", err)
	}
	if s.Rows() != 1 {
		t.Errorf("snapshot rows = %d, want 1", s.Rows())
	}
	if tr.SnapshotsEnabled() {
		t.Error("unarmed tracker reports SnapshotsEnabled")
	}
}

// TestSnapshotCaching pins the shared-factorization contract: repeated
// reads of one snapshot version hand out equal results and share the
// cached scorer.
func TestSnapshotCaching(t *testing.T) {
	tr, err := New(Config{Protocol: DA1, D: 3, W: 100, Eps: 0.2, Sites: 1}, WithSnapshots(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRows(50, 3, 5) {
		if err := tr.TryObserve(0, r); err != nil {
			t.Fatal(err)
		}
	}
	tr.Drain()
	s, err := tr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if denseHash(s.Sketch()) != denseHash(s.Sketch()) {
		t.Error("repeated Sketch reads differ")
	}
	p1, p2 := s.PCA(2), s.PCA(2)
	if denseHash(p1.Components) != denseHash(p2.Components) {
		t.Error("repeated PCA reads differ")
	}
	if s.AnomalyScorer(2) != s.AnomalyScorer(2) {
		t.Error("AnomalyScorer not cached per snapshot")
	}
	// Mutating a returned copy must not leak into the cache.
	b := s.Sketch()
	b.Row(0)[0] += 42
	if denseHash(s.Sketch()) == denseHash(b) {
		t.Error("caller mutation leaked into the snapshot cache")
	}
}
