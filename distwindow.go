// Package distwindow tracks covariance sketches of matrix streams over
// distributed time-based sliding windows, implementing the protocols of
// Zhang, Huang, Wei, Zhang and Lin, "Tracking Matrix Approximation over
// Distributed Sliding Windows" (ICDE 2017).
//
// # Model
//
// m distributed sites each observe a stream of timestamped d-dimensional
// rows. A coordinator continuously maintains a small matrix B that is an
// ε-covariance sketch of A_w — the matrix of all rows, across all sites,
// whose timestamps lie in the sliding window (now−W, now]:
//
//	‖A_wᵀA_w − BᵀB‖₂ / ‖A_w‖_F² ≤ ε.
//
// The package simulates the distributed system in-process (the standard
// evaluation methodology for the distributed monitoring model) while
// accounting every transmitted word, so protocols can be compared on the
// communication/accuracy trade-off the paper studies.
//
// # Protocols
//
//   - PWOR / PWOR-ALL — priority sampling without replacement with
//     lazy-broadcast threshold maintenance (Algorithms 1–2).
//   - ESWOR / ESWOR-ALL — Efraimidis–Spirakis sampling, same framework.
//   - PWORSimple — Algorithm 1's exact threshold maintenance (ablation).
//   - PWR / ESWR — with-replacement extensions.
//   - DA1 — deterministic tracking via per-site covariance differences
//     (Algorithm 4); one-way communication, O(md/ε·log NR) words/window.
//   - DA2 / DA2C — deterministic forward–backward tracking built on IWMT
//     (Algorithm 5); one-way, better update time for large d.
//
// # Quick start
//
//	tr, err := distwindow.New(distwindow.Config{
//		Protocol: distwindow.DA2,
//		D:        64,            // row dimension
//		W:        3_600_000,     // window in ticks
//		Eps:      0.05,          // target covariance error
//		Sites:    20,
//	})
//	...
//	tr.Observe(site, distwindow.Row{T: now, V: features})
//	b := tr.Sketch() // ε-covariance sketch of the current window
package distwindow

import (
	"fmt"

	"distwindow/internal/core"
	"distwindow/internal/protocol"
	"distwindow/internal/sampling"
	"distwindow/internal/stream"
	"distwindow/mat"
)

// Row is one stream item: a d-dimensional record V observed at time T.
// Timestamps are int64 ticks and must be fed in non-decreasing order.
type Row struct {
	T int64
	V []float64
}

// Protocol selects a tracking algorithm.
type Protocol string

// The available protocols. See the package documentation for the
// trade-offs; the paper's recommendations are PWORAll within the sampling
// family, DA1 for small d, and DA2 for large d.
const (
	PWOR       Protocol = "PWOR"
	PWORAll    Protocol = "PWOR-ALL"
	PWORSimple Protocol = "PWOR-simple"
	ESWOR      Protocol = "ESWOR"
	ESWORAll   Protocol = "ESWOR-ALL"
	PWR        Protocol = "PWR"
	ESWR       Protocol = "ESWR"
	DA1        Protocol = "DA1"
	DA2        Protocol = "DA2"
	DA2C       Protocol = "DA2-C"
	// Decay tracks exponentially time-decayed covariance instead of a
	// sliding window (set Config.DecayGamma); an extension beyond the
	// paper's model.
	Decay Protocol = "DECAY"
	// Uniform is the unweighted-sampling baseline the paper's §II rules
	// out for covariance sketching; it is included so the motivating
	// counterexample is reproducible (see TestUniformSamplingFailsOnSkew).
	Uniform Protocol = "UNIFORM"
)

// Protocols lists every implemented protocol in presentation order.
func Protocols() []Protocol {
	return []Protocol{PWOR, PWORAll, PWORSimple, ESWOR, ESWORAll, PWR, ESWR, DA1, DA2, DA2C}
}

// Stats aggregates a run's communication and space counters; one word is
// one transmitted float64/int64, the paper's unit.
type Stats = protocol.Stats

// Config configures a Tracker.
type Config struct {
	// Protocol selects the algorithm.
	Protocol Protocol
	// D is the row dimension.
	D int
	// W is the window length in ticks. A row with timestamp t is active at
	// time now iff t ∈ (now−W, now].
	W int64
	// Eps is the target covariance error ε ∈ (0,1).
	Eps float64
	// Sites is the number of distributed sites m.
	Sites int
	// Ell overrides the sample-set size ℓ for the sampling protocols
	// (0 derives ℓ = Θ(1/ε²·log 1/ε) from Eps). Ignored by DA1/DA2.
	Ell int
	// Seed drives the sampling protocols' randomness; runs with equal
	// seeds and inputs are bit-for-bit reproducible.
	Seed int64
	// DecayGamma is the per-tick decay factor for Protocol == Decay
	// (ignored otherwise; W is ignored by the decay tracker).
	DecayGamma float64
	// MaxSkew, when positive, lets Observe accept timestamps up to MaxSkew
	// ticks out of order: each site's rows pass through a reorder buffer
	// that delays them until no earlier row can still arrive. Rows older
	// than the skew horizon are dropped (counted in SkewDropped).
	MaxSkew int64
}

// Tracker is a live protocol instance: m simulated sites plus the
// coordinator, with every logical transmission accounted.
type Tracker struct {
	inner protocol.Tracker
	net   *protocol.Network
	cfg   Config
	// skew holds one reorder buffer per site when cfg.MaxSkew > 0.
	skew    []*stream.SkewBuffer
	dropped int64
}

// New builds a tracker.
func New(cfg Config) (*Tracker, error) {
	if cfg.Sites < 1 {
		return nil, fmt.Errorf("distwindow: Sites = %d, want ≥ 1", cfg.Sites)
	}
	net := protocol.NewNetwork(cfg.Sites)
	ccfg := core.Config{D: cfg.D, W: cfg.W, Eps: cfg.Eps, Sites: cfg.Sites, Ell: cfg.Ell, Seed: cfg.Seed}
	var (
		inner protocol.Tracker
		err   error
	)
	switch cfg.Protocol {
	case PWOR:
		inner, err = core.NewSampler(ccfg, core.SamplerOpts{Scheme: sampling.Priority{}}, net)
	case PWORAll:
		inner, err = core.NewSampler(ccfg, core.SamplerOpts{Scheme: sampling.Priority{}, UseAll: true}, net)
	case PWORSimple:
		inner, err = core.NewSampler(ccfg, core.SamplerOpts{Scheme: sampling.Priority{}, Exact: true}, net)
	case ESWOR:
		inner, err = core.NewSampler(ccfg, core.SamplerOpts{Scheme: sampling.ES{}}, net)
	case ESWORAll:
		inner, err = core.NewSampler(ccfg, core.SamplerOpts{Scheme: sampling.ES{}, UseAll: true}, net)
	case Uniform:
		inner, err = core.NewSampler(ccfg, core.SamplerOpts{Scheme: sampling.Uniform{}}, net)
	case PWR:
		inner, err = core.NewPWR(ccfg, net)
	case ESWR:
		inner, err = core.NewESWR(ccfg, net)
	case DA1:
		inner, err = core.NewDA1(ccfg, net)
	case DA2:
		inner, err = core.NewDA2(ccfg, net)
	case DA2C:
		inner, err = core.NewDA2C(ccfg, net)
	case Decay:
		if ccfg.W <= 0 {
			ccfg.W = 1 // the decay tracker ignores W; keep validation happy
		}
		inner, err = core.NewDecay(ccfg, cfg.DecayGamma, net)
	default:
		return nil, fmt.Errorf("distwindow: unknown protocol %q", cfg.Protocol)
	}
	if err != nil {
		return nil, err
	}
	t := &Tracker{inner: inner, net: net, cfg: cfg}
	if cfg.MaxSkew > 0 {
		t.skew = make([]*stream.SkewBuffer, cfg.Sites)
		for i := range t.skew {
			t.skew[i] = stream.NewSkewBuffer(cfg.MaxSkew)
		}
	}
	return t, nil
}

// Observe delivers a row to the given site (0 ≤ site < Sites). Timestamps
// must be non-decreasing across all Observe and Advance calls unless
// Config.MaxSkew allows bounded reordering, in which case rows are
// buffered per site and delivered in order (rows older than the skew
// horizon are dropped and counted by SkewDropped).
func (t *Tracker) Observe(site int, r Row) {
	if site < 0 || site >= t.cfg.Sites {
		panic(fmt.Sprintf("distwindow: site %d out of range [0,%d)", site, t.cfg.Sites))
	}
	if len(r.V) != t.cfg.D {
		panic(fmt.Sprintf("distwindow: row dimension %d, want %d", len(r.V), t.cfg.D))
	}
	if t.skew == nil {
		t.inner.Observe(site, stream.Row{T: r.T, V: r.V})
		return
	}
	released, ok := t.skew[site].Add(stream.Row{T: r.T, V: append([]float64(nil), r.V...)})
	if !ok {
		t.dropped++
		return
	}
	for _, rr := range released {
		t.inner.Observe(site, rr)
	}
}

// FlushSkew releases every row still held in the reorder buffers (call at
// end of stream when MaxSkew is set). Released rows are delivered in
// per-site timestamp order.
func (t *Tracker) FlushSkew() {
	for site, b := range t.skew {
		for _, rr := range b.Flush() {
			t.inner.Observe(site, rr)
		}
	}
}

// SkewDropped reports rows rejected for arriving beyond the skew horizon.
func (t *Tracker) SkewDropped() int64 { return t.dropped }

// Advance moves the global clock forward without new data, processing
// expirations and any resulting protocol traffic.
func (t *Tracker) Advance(now int64) { t.inner.AdvanceTime(now) }

// Sketch returns the coordinator's current covariance sketch B. The
// number of rows varies by protocol; the column count is always D.
func (t *Tracker) Sketch() *mat.Dense { return t.inner.Sketch() }

// gramSketcher is implemented by the deterministic protocols, whose
// coordinator state is the Gram matrix Ĉ itself.
type gramSketcher interface {
	SketchGram() *mat.Dense
}

// SketchGram returns the coordinator's covariance estimate Ĉ ≈ A_wᵀA_w
// directly, when the protocol maintains one (the deterministic family).
// Sketch() factors the PSD-clipped Ĉ, an O(d³) step per query that
// evaluation loops can skip by comparing against Ĉ instead.
func (t *Tracker) SketchGram() (*mat.Dense, bool) {
	if g, ok := t.inner.(gramSketcher); ok {
		return g.SketchGram(), true
	}
	return nil, false
}

// Stats returns the communication and space counters accumulated so far.
func (t *Tracker) Stats() Stats { return t.inner.Stats() }

// Name returns the protocol's display name.
func (t *Tracker) Name() string { return t.inner.Name() }

// Config returns the configuration the tracker was built with.
func (t *Tracker) Config() Config { return t.cfg }

// CovErr computes ‖refᵀref − bᵀb‖₂/‖ref‖_F² — the covariance error of
// sketch b against an explicitly materialized reference matrix. It is the
// metric of the paper's experiments; production users typically cannot
// afford the reference and rely on the protocols' guarantees instead.
func CovErr(ref, b *mat.Dense) float64 { return mat.CovErr(ref, b) }

// AggregateTracker tracks the sum of nonnegative item weights over the
// distributed sliding window (Algorithm 3) — COUNT when all weights are 1.
// It is the deterministic scalar special case (d = 1) of matrix tracking
// and also a reusable primitive in its own right.
type AggregateTracker struct {
	inner *core.SumTracker
	net   *protocol.Network
}

// NewAggregate builds a SUM/COUNT tracker; only W, Eps and Sites of cfg
// are used.
func NewAggregate(cfg Config) (*AggregateTracker, error) {
	if cfg.Sites < 1 {
		return nil, fmt.Errorf("distwindow: Sites = %d, want ≥ 1", cfg.Sites)
	}
	net := protocol.NewNetwork(cfg.Sites)
	inner, err := core.NewSumTracker(core.Config{D: 1, W: cfg.W, Eps: cfg.Eps, Sites: cfg.Sites}, net)
	if err != nil {
		return nil, err
	}
	return &AggregateTracker{inner: inner, net: net}, nil
}

// Observe records weight w at the given site and time.
func (t *AggregateTracker) Observe(site int, now int64, w float64) {
	t.inner.ObserveWeight(site, now, w)
}

// Advance moves every site's clock forward.
func (t *AggregateTracker) Advance(now int64) { t.inner.AdvanceAll(now) }

// Estimate returns the coordinator's current window-sum estimate, within
// ε relative error of the truth.
func (t *AggregateTracker) Estimate() float64 { return t.inner.Estimate() }

// Stats returns the communication counters accumulated so far.
func (t *AggregateTracker) Stats() Stats { return t.net.Stats() }
