// Package distwindow tracks covariance sketches of matrix streams over
// distributed time-based sliding windows, implementing the protocols of
// Zhang, Huang, Wei, Zhang and Lin, "Tracking Matrix Approximation over
// Distributed Sliding Windows" (ICDE 2017).
//
// # Model
//
// m distributed sites each observe a stream of timestamped d-dimensional
// rows. A coordinator continuously maintains a small matrix B that is an
// ε-covariance sketch of A_w — the matrix of all rows, across all sites,
// whose timestamps lie in the sliding window (now−W, now]:
//
//	‖A_wᵀA_w − BᵀB‖₂ / ‖A_w‖_F² ≤ ε.
//
// The package simulates the distributed system in-process (the standard
// evaluation methodology for the distributed monitoring model) while
// accounting every transmitted word, so protocols can be compared on the
// communication/accuracy trade-off the paper studies.
//
// # Protocols
//
//   - PWOR / PWOR-ALL — priority sampling without replacement with
//     lazy-broadcast threshold maintenance (Algorithms 1–2).
//   - ESWOR / ESWOR-ALL — Efraimidis–Spirakis sampling, same framework.
//   - PWORSimple — Algorithm 1's exact threshold maintenance (ablation).
//   - PWR / ESWR — with-replacement extensions.
//   - DA1 — deterministic tracking via per-site covariance differences
//     (Algorithm 4); one-way communication, O(md/ε·log NR) words/window.
//   - DA2 / DA2C — deterministic forward–backward tracking built on IWMT
//     (Algorithm 5); one-way, better update time for large d.
//
// # Quick start
//
//	tr, err := distwindow.New(distwindow.Config{
//		Protocol: distwindow.DA2,
//		D:        64,            // row dimension
//		W:        3_600_000,     // window in ticks
//		Eps:      0.05,          // target covariance error
//		Sites:    20,
//	})
//	...
//	if err := tr.TryObserve(site, distwindow.Row{T: now, V: features}); err != nil {
//		... // ErrStale and friends; see TryObserve
//	}
//	b := tr.Sketch() // ε-covariance sketch of the current window
//
// Construction options configure observability and concurrency, e.g.
//
//	tr, err := distwindow.New(cfg, distwindow.WithParallel(0))
//
// runs each site's local work on worker goroutines while keeping the
// coordinator's sketch bit-identical to the sequential path (one-way
// protocols only; see WithParallel).
package distwindow

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"distwindow/internal/audit"
	"distwindow/internal/core"
	"distwindow/internal/obs"
	"distwindow/internal/protocol"
	"distwindow/internal/sampling"
	"distwindow/internal/stream"
	"distwindow/internal/trace"
	"distwindow/mat"
)

// Row is one stream item: a d-dimensional record V observed at time T.
// Timestamps are int64 ticks and must be fed in non-decreasing order.
type Row struct {
	T int64
	V []float64
}

// Protocol selects a tracking algorithm.
type Protocol string

// The available protocols. See the package documentation for the
// trade-offs; the paper's recommendations are PWORAll within the sampling
// family, DA1 for small d, and DA2 for large d.
const (
	PWOR       Protocol = "PWOR"
	PWORAll    Protocol = "PWOR-ALL"
	PWORSimple Protocol = "PWOR-simple"
	ESWOR      Protocol = "ESWOR"
	ESWORAll   Protocol = "ESWOR-ALL"
	PWR        Protocol = "PWR"
	ESWR       Protocol = "ESWR"
	DA1        Protocol = "DA1"
	DA2        Protocol = "DA2"
	DA2C       Protocol = "DA2-C"
	// Decay tracks exponentially time-decayed covariance instead of a
	// sliding window (set Config.DecayGamma); an extension beyond the
	// paper's model.
	Decay Protocol = "DECAY"
	// Uniform is the unweighted-sampling baseline the paper's §II rules
	// out for covariance sketching; it is included so the motivating
	// counterexample is reproducible (see TestUniformSamplingFailsOnSkew).
	Uniform Protocol = "UNIFORM"
)

// Protocols lists every implemented protocol in presentation order.
func Protocols() []Protocol {
	return []Protocol{PWOR, PWORAll, PWORSimple, ESWOR, ESWORAll, PWR, ESWR, DA1, DA2, DA2C}
}

// Stats aggregates a run's communication and space counters; one word is
// one transmitted float64/int64, the paper's unit.
type Stats = protocol.Stats

// Config configures a Tracker.
type Config struct {
	// Protocol selects the algorithm.
	Protocol Protocol
	// D is the row dimension.
	D int
	// W is the window length in ticks. A row with timestamp t is active at
	// time now iff t ∈ (now−W, now].
	W int64
	// Eps is the target covariance error ε ∈ (0,1).
	Eps float64
	// Sites is the number of distributed sites m.
	Sites int
	// Ell overrides the sample-set size ℓ for the sampling protocols
	// (0 derives ℓ = Θ(1/ε²·log 1/ε) from Eps). Ignored by DA1/DA2.
	Ell int
	// Seed drives the sampling protocols' randomness; runs with equal
	// seeds and inputs are bit-for-bit reproducible.
	Seed int64
	// DecayGamma is the per-tick decay factor for Protocol == Decay
	// (ignored otherwise; W is ignored by the decay tracker).
	DecayGamma float64
	// MaxSkew, when positive, lets Observe accept timestamps up to MaxSkew
	// ticks out of order: each site's rows pass through a reorder buffer
	// that delays them until no earlier row can still arrive. Rows older
	// than the skew horizon are dropped (counted in SkewDropped).
	MaxSkew int64
}

// ConfigError reports which Config field failed validation and why. New,
// NewAggregate and Config.Validate return it, so callers can attribute a
// failure to a field with errors.As instead of parsing the message.
type ConfigError struct {
	Field string
	Msg   string
}

func (e *ConfigError) Error() string {
	return "distwindow: invalid Config." + e.Field + ": " + e.Msg
}

// Validate checks the configuration without building a tracker. It is the
// validation New performs: the shared parameter constraints (dimension,
// window, ε, site count — delegated to the core layer, the single source
// of truth also guarding the protocol constructors) plus the facade-level
// ones (known Protocol, DecayGamma for Decay, nonnegative MaxSkew). The
// returned error is a *ConfigError.
func (c Config) Validate() error {
	switch c.Protocol {
	case PWOR, PWORAll, PWORSimple, ESWOR, ESWORAll, PWR, ESWR, DA1, DA2, DA2C, Decay, Uniform:
	default:
		return &ConfigError{Field: "Protocol", Msg: fmt.Sprintf("unknown protocol %q", c.Protocol)}
	}
	if err := c.coreConfig().Validate(); err != nil {
		return wrapCoreConfigErr(err)
	}
	if c.Protocol == Decay && (c.DecayGamma <= 0 || c.DecayGamma >= 1) {
		return &ConfigError{Field: "DecayGamma", Msg: fmt.Sprintf("= %v, want in (0,1)", c.DecayGamma)}
	}
	if c.MaxSkew < 0 {
		return &ConfigError{Field: "MaxSkew", Msg: fmt.Sprintf("= %d, want ≥ 0", c.MaxSkew)}
	}
	return nil
}

// coreConfig maps the facade Config onto the core parameter set. The decay
// tracker ignores W; substitute 1 so the shared validation passes.
func (c Config) coreConfig() core.Config {
	ccfg := core.Config{D: c.D, W: c.W, Eps: c.Eps, Sites: c.Sites, Ell: c.Ell, Seed: c.Seed}
	if c.Protocol == Decay && ccfg.W <= 0 {
		ccfg.W = 1
	}
	return ccfg
}

// wrapCoreConfigErr rewraps the core layer's field attribution in the
// facade's error type.
func wrapCoreConfigErr(err error) error {
	var fe *core.FieldError
	if errors.As(err, &fe) {
		return &ConfigError{Field: fe.Field, Msg: fe.Msg}
	}
	return err
}

// Tracker is a live protocol instance: m simulated sites plus the
// coordinator, with every logical transmission accounted.
//
// Concurrency: a sequential Tracker (the default) accepts ingestion from
// one goroutine at a time. A parallel Tracker (built with WithParallel)
// accepts concurrent TryObserve calls for distinct sites — at most one
// feeder goroutine per site. Advance, FlushSkew, Drain and Close still
// require the feeders to be quiescent in parallel mode. In both modes
// Metrics and Stats may be called from other goroutines (e.g. an HTTP
// metrics handler) at any time.
//
// Queries concurrent with ingestion are supported through published
// snapshots: build the tracker WithSnapshots and Sketch, SketchGram,
// Snapshot and SnapshotVersion become lock-free reads of the latest
// published version, safe from any number of goroutines while feeders
// run, lagging ingest by at most the publication cadence (Drain first for
// an exact read). Without WithSnapshots, queries keep the legacy exact
// semantics — they assume quiescent feeders — but are hardened by an
// internal gate: a query overlapping an in-flight ingest call waits for
// it (and briefly holds off new ones) instead of racing, and Snapshot
// reports ErrQueryDuringIngest rather than reading torn state.
type Tracker struct {
	inner protocol.Tracker
	net   *protocol.Network
	cfg   Config
	// skew holds one reorder buffer per site when cfg.MaxSkew > 0.
	skew []*stream.SkewBuffer

	// maxT is the highest timestamp seen by Observe/Advance; delivered is
	// the highest timestamp handed to the inner protocol (they differ only
	// while rows sit in the skew buffers). Both start at math.MinInt64.
	maxT      int64
	delivered int64

	// buckets is the inner tracker's bucket counter, when it has one.
	buckets core.BucketCounter
	sink    obs.Sink

	// tracer/traceRing hold the causal-tracing state installed by
	// EnableTracing; aud is the live ε-error auditor from EnableAudit.
	// All three are nil by default and cost one nil-check when off.
	tracer    *trace.Tracer
	traceRing *trace.Ring
	aud       *audit.Auditor

	rows        obs.Counter
	staleDrops  obs.Counter
	skewDropped obs.Counter
	queries     obs.Counter
	liveBuckets obs.Gauge
	updateLat   obs.Histogram
	// latTick drives latency/gauge sampling; touched only by the ingest
	// goroutine.
	latTick uint

	// pipe, ow and lanes carry the parallel ingestion state installed by
	// WithParallel; all three are nil/empty on a sequential tracker. ow is
	// the inner tracker's one-way seam (site half / coordinator half).
	pipe  *protocol.Pipeline
	ow    protocol.OneWay
	lanes []laneState
	// closed flips once in Close; queries stay usable afterwards, ingest
	// does not. Atomic so serving tiers can check it from any goroutine.
	closed atomic.Bool

	// lastAppliedT is the emission time of the last update applied at the
	// coordinator in parallel mode. Written only by the pipeline's
	// coordinator goroutine (via the apply wrapper); the facade reads it
	// only after a drain barrier.
	lastAppliedT int64

	// Snapshot publication state (see snapshot.go). snapArmed, snapEvery
	// and snapper are fixed at construction; snap is the latest published
	// immutable version; snapSince counts events since the last sequential
	// publication (ingest goroutine only); gate coordinates exact reads
	// with ingest.
	snapArmed bool
	snapEvery int
	snapper   protocol.Snapshotter
	snapSince int
	snapVer   atomic.Uint64
	snap      atomic.Pointer[Snapshot]
	snapPubs  obs.Counter
	gate      queryGate

	// batch holds per-site staging slices for ObserveBatch's parallel
	// path. Indexed by site and touched only by that site's feeder
	// goroutine (the same single-producer contract as TryObserve), so no
	// locking; cleared after each enqueue so no caller slice is retained.
	batch [][]stream.Row
}

// newTracker wires the facade bookkeeping around a built protocol; New and
// Restore share it so the metric fields are always initialized.
func newTracker(inner protocol.Tracker, net *protocol.Network, cfg Config) *Tracker {
	t := &Tracker{inner: inner, net: net, cfg: cfg, maxT: math.MinInt64, delivered: math.MinInt64, lastAppliedT: math.MinInt64}
	if bc, ok := inner.(core.BucketCounter); ok {
		t.buckets = bc
	}
	if cfg.MaxSkew > 0 {
		t.skew = make([]*stream.SkewBuffer, cfg.Sites)
		for i := range t.skew {
			t.skew[i] = stream.NewSkewBuffer(cfg.MaxSkew)
		}
	}
	return t
}

// New builds a tracker. The configuration is validated up front (see
// Config.Validate; failures are *ConfigError), then the options are
// applied: observability first (WithSink, WithTracing, WithAudit), the
// parallel pipeline last (WithParallel), so incompatible combinations are
// rejected with ErrParallelUnsupported before any goroutine starts.
func New(cfg Config, opts ...Option) (*Tracker, error) {
	return newWithOptions(cfg, buildOptions(opts))
}

// newWithOptions is New after option folding; the Registry calls it
// directly so it can adjust the folded settings (sink fan-out, shared
// pools) before construction.
func newWithOptions(cfg Config, o *options) (*Tracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net := protocol.NewNetwork(cfg.Sites)
	ccfg := cfg.coreConfig().WithPools(o.pools)
	var (
		inner protocol.Tracker
		err   error
	)
	switch cfg.Protocol {
	case PWOR:
		inner, err = core.NewSampler(ccfg, core.SamplerOpts{Scheme: sampling.Priority{}}, net)
	case PWORAll:
		inner, err = core.NewSampler(ccfg, core.SamplerOpts{Scheme: sampling.Priority{}, UseAll: true}, net)
	case PWORSimple:
		inner, err = core.NewSampler(ccfg, core.SamplerOpts{Scheme: sampling.Priority{}, Exact: true}, net)
	case ESWOR:
		inner, err = core.NewSampler(ccfg, core.SamplerOpts{Scheme: sampling.ES{}}, net)
	case ESWORAll:
		inner, err = core.NewSampler(ccfg, core.SamplerOpts{Scheme: sampling.ES{}, UseAll: true}, net)
	case Uniform:
		inner, err = core.NewSampler(ccfg, core.SamplerOpts{Scheme: sampling.Uniform{}}, net)
	case PWR:
		inner, err = core.NewPWR(ccfg, net)
	case ESWR:
		inner, err = core.NewESWR(ccfg, net)
	case DA1:
		inner, err = core.NewDA1(ccfg, net)
	case DA2:
		inner, err = core.NewDA2(ccfg, net)
	case DA2C:
		inner, err = core.NewDA2C(ccfg, net)
	case Decay:
		inner, err = core.NewDecay(ccfg, cfg.DecayGamma, net)
	default:
		// Unreachable: Validate vetted the protocol above.
		return nil, &ConfigError{Field: "Protocol", Msg: fmt.Sprintf("unknown protocol %q", cfg.Protocol)}
	}
	if err != nil {
		return nil, err
	}
	t := newTracker(inner, net, cfg)
	if err := t.applyOptions(o); err != nil {
		return nil, err
	}
	return t, nil
}

// applyOptions installs the folded option settings on a freshly built (or
// freshly restored) tracker: observability first (sink, tracing, audit),
// the parallel pipeline last, so incompatible combinations are rejected
// before any goroutine starts. Shared by New and Restore.
func (t *Tracker) applyOptions(o *options) error {
	if o.haveSink {
		t.SetSink(o.sink)
	}
	if o.snapshots {
		// Arm before the pipeline starts so the coordinator goroutine
		// inherits the armed state (goroutine creation orders the writes).
		if err := t.armSnapshots(o.snapEvery); err != nil {
			return err
		}
	}
	if o.tracing != nil {
		t.EnableTracing(*o.tracing)
	}
	if o.audit != nil {
		if err := t.EnableAudit(*o.audit); err != nil {
			return err
		}
	}
	if o.parallel {
		if err := t.startParallel(o.workers, o.ringSize); err != nil {
			return err
		}
	}
	return nil
}

// latSampleMask makes one Observe in 16 pay for two time.Now calls and a
// bucket-gauge refresh; the rest of the hot path stays untimed.
const latSampleMask = 15

// TryObserve delivers a row to the given site (0 ≤ site < Sites). It is
// the primary ingestion entry point: delivery problems come back as errors
// instead of panics:
//
//   - ErrSiteRange and ErrDimension flag caller bugs; the row was not
//     consumed and the tracker is unchanged.
//   - ErrStale flags a row whose timestamp is older than the maximum
//     already observed (or beyond the skew horizon when Config.MaxSkew is
//     set). The row is dropped and counted — in Metrics().StaleDrops, or
//     Metrics().SkewDropped for skew-horizon rejections — and the tracker
//     remains consistent, so ingestion can continue. Match with
//     errors.Is(err, ErrStale).
//
// Timestamps must be non-decreasing across all observe and Advance calls;
// Config.MaxSkew relaxes this to bounded per-site reordering through a
// reorder buffer.
//
// The tracker never retains r.V after the call returns: every layer that
// outlives the call (samplers, histogram buckets, the skew buffer, the
// parallel pipeline's rings) copies the values it keeps. Callers may reuse
// the backing slice freely.
//
// On a parallel tracker (WithParallel) the structural checks still happen
// synchronously, but the row itself is handed to the site's worker:
// distinct sites may call TryObserve concurrently (one goroutine per
// site), timestamps need only be non-decreasing per site, and staleness is
// detected on the worker — stale rows are counted in Metrics, never
// returned as ErrStale. The call blocks for backpressure when the site's
// ring is full.
func (t *Tracker) TryObserve(site int, r Row) error {
	t.gate.enterShared()
	err := t.tryObserve1(site, r)
	t.gate.exitShared()
	return err
}

// tryObserve1 is TryObserve without the gate — ObserveBatch's sequential
// loop calls it once per row under a single gate entry.
func (t *Tracker) tryObserve1(site int, r Row) error {
	if site < 0 || site >= t.cfg.Sites {
		return fmt.Errorf("%w: site %d not in [0,%d)", ErrSiteRange, site, t.cfg.Sites)
	}
	if len(r.V) != t.cfg.D {
		return fmt.Errorf("%w: got %d values, want %d", ErrDimension, len(r.V), t.cfg.D)
	}
	if t.pipe != nil {
		t.pipe.EnqueueRow(site, r.T, r.V)
		return nil
	}
	if t.skew == nil {
		if r.T < t.maxT {
			t.staleDrops.Inc()
			if t.sink != nil {
				t.sink.OnEvent(obs.Event{Kind: obs.EvSkewDrop, Site: site, T: r.T, N: 1})
			}
			return fmt.Errorf("%w: t=%d after t=%d was observed", ErrStale, r.T, t.maxT)
		}
		t.maxT = r.T
		t.deliver(site, stream.Row{T: r.T, V: r.V})
		return nil
	}
	if r.T > t.maxT {
		t.maxT = r.T
	}
	released, ok := t.skew[site].Add(stream.Row{T: r.T, V: append([]float64(nil), r.V...)})
	if !ok {
		t.skewDropped.Inc()
		if t.sink != nil {
			t.sink.OnEvent(obs.Event{Kind: obs.EvSkewDrop, Site: site, T: r.T, N: 1})
		}
		return fmt.Errorf("%w: t=%d beyond the skew horizon", ErrStale, r.T)
	}
	for _, rr := range released {
		t.deliverSkew(site, rr)
	}
	return nil
}

// deliver hands one in-order row to the inner protocol, with sampled
// latency accounting. A sampled ingest opens the trace root under which
// the protocol's bucket and message spans attach; the audit shadow runs
// after the span closes so its O(d²) upkeep never inflates ingest spans.
func (t *Tracker) deliver(site int, r stream.Row) {
	t.latTick++
	if t.latTick&latSampleMask != 0 {
		sp := t.tracer.Start(trace.OpIngest, site, r.T)
		t.inner.Observe(site, r)
		sp.End()
		t.rows.Inc()
		t.delivered = r.T
		if t.aud != nil {
			t.aud.Observe(r.T, r.V)
		}
		t.snapTick()
		return
	}
	sp := t.tracer.Start(trace.OpIngest, site, r.T)
	start := time.Now()
	t.inner.Observe(site, r)
	t.updateLat.Observe(time.Since(start))
	sp.End()
	t.rows.Inc()
	t.delivered = r.T
	if t.buckets != nil {
		t.liveBuckets.Set(int64(t.buckets.LiveBuckets()))
	}
	if t.aud != nil {
		t.aud.Observe(r.T, r.V)
	}
	t.snapTick()
}

// deliverSkew forwards a buffer-released row, dropping it if delivery
// would move the inner protocol's clock backwards (a row released late by
// a lagging site after a faster site already advanced the stream).
func (t *Tracker) deliverSkew(site int, r stream.Row) {
	if r.T < t.delivered {
		t.skewDropped.Inc()
		if t.sink != nil {
			t.sink.OnEvent(obs.Event{Kind: obs.EvSkewDrop, Site: site, T: r.T, N: 1})
		}
		return
	}
	t.deliver(site, r)
}

// Observe delivers a row to the given site. It is TryObserve with the
// historical contract: caller bugs (ErrSiteRange, ErrDimension) panic,
// stale rows are silently dropped and counted.
//
// Deprecated: call TryObserve, which reports delivery problems as errors
// the caller can distinguish (errors.Is against ErrSiteRange, ErrDimension,
// ErrStale) instead of panicking. Observe remains for compatibility.
func (t *Tracker) Observe(site int, r Row) {
	if err := t.TryObserve(site, r); err != nil && !errors.Is(err, ErrStale) {
		panic(err)
	}
}

// ObserveBatch delivers rows[0:] in order to the given site and returns
// how many the protocol accepted. Stale rows are dropped and counted (as
// in Observe) without stopping the batch; the first structural error
// (ErrSiteRange, ErrDimension) aborts and is returned, with accepted
// telling how far the batch got. Distinguish outcomes on single rows with
// errors.Is(err, ErrStale) against TryObserve — see the package example.
//
// Because no layer retains row values (see TryObserve), callers may reuse
// both the []Row slice and each row's V backing array across batches —
// fill, ObserveBatch, refill — without reallocating.
//
// On a parallel tracker (WithParallel) ObserveBatch is the fast ingestion
// path: the whole run is handed to the site's lane in ring blocks — one
// ring operation and one worker wakeup per block instead of per row — so
// feeders that can batch amortize nearly all pipeline overhead. As with
// parallel TryObserve, staleness is detected on the worker and counted in
// Metrics rather than reported here, so accepted counts the structurally
// valid rows.
func (t *Tracker) ObserveBatch(site int, rows []Row) (accepted int, err error) {
	t.gate.enterShared()
	defer t.gate.exitShared()
	if t.pipe != nil {
		return t.observeBatchParallel(site, rows)
	}
	for _, r := range rows {
		if err := t.tryObserve1(site, r); err != nil {
			if errors.Is(err, ErrStale) {
				continue
			}
			return accepted, err
		}
		accepted++
	}
	return accepted, nil
}

// observeBatchParallel validates the run and enqueues it into the site's
// lane as ring blocks. On a structural error the valid prefix is still
// enqueued (matching the sequential path, which delivers rows up to the
// failure) and accepted reports its length.
func (t *Tracker) observeBatchParallel(site int, rows []Row) (accepted int, err error) {
	if site < 0 || site >= t.cfg.Sites {
		return 0, fmt.Errorf("%w: site %d not in [0,%d)", ErrSiteRange, site, t.cfg.Sites)
	}
	staged := t.batch[site][:0]
	for _, r := range rows {
		if len(r.V) != t.cfg.D {
			err = fmt.Errorf("%w: got %d values, want %d", ErrDimension, len(r.V), t.cfg.D)
			break
		}
		staged = append(staged, stream.Row{T: r.T, V: r.V})
	}
	if len(staged) > 0 {
		t.pipe.EnqueueRows(site, staged)
	}
	accepted = len(staged)
	// The staging slice aliases the callers' value slices; the ring has
	// copied them, so drop the references before the next batch.
	clear(staged)
	t.batch[site] = staged[:0]
	return accepted, err
}

// FlushSkew releases every row still held in the reorder buffers (call at
// end of stream when MaxSkew is set). Rows are merged across sites and
// delivered in global timestamp order — ties broken by site index, so a
// flush is deterministic — and rows that fell behind the already-delivered
// stream are dropped and counted in Metrics().SkewDropped. On a parallel
// tracker FlushSkew also drains the pipeline (see Drain); feeders must be
// quiescent.
func (t *Tracker) FlushSkew() {
	if t.pipe != nil {
		t.gate.exclusive()
		t.quiesceAt(true)
		t.gate.exitExclusive()
		return
	}
	if t.skew == nil {
		return
	}
	t.gate.enterShared()
	defer t.gate.exitShared()
	type tagged struct {
		site int
		r    stream.Row
	}
	var all []tagged
	for site, b := range t.skew {
		for _, rr := range b.Flush() {
			all = append(all, tagged{site: site, r: rr})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].r.T != all[j].r.T {
			return all[i].r.T < all[j].r.T
		}
		return all[i].site < all[j].site
	})
	for _, x := range all {
		t.deliverSkew(x.site, x.r)
	}
}

// SkewDropped reports rows rejected for arriving beyond the skew horizon
// or released too late to deliver in order.
//
// Deprecated: the count is part of the regular snapshot as
// Metrics().SkewDropped; this standalone getter remains as an alias.
func (t *Tracker) SkewDropped() int64 { return t.skewDropped.Load() }

// Advance moves the global clock forward without new data, processing
// expirations and any resulting protocol traffic. With MaxSkew set it also
// commits the clock: buffered rows older than now will be dropped when
// released. On a parallel tracker Advance broadcasts the new clock to
// every site's lane (feeders must be quiescent); the expiry work itself
// runs on the workers and is awaited by the next Drain or query.
func (t *Tracker) Advance(now int64) {
	t.gate.enterShared()
	defer t.gate.exitShared()
	if t.pipe != nil {
		t.pipe.Advance(now)
		return
	}
	if now > t.maxT {
		t.maxT = now
	}
	if now > t.delivered {
		t.delivered = now
	}
	t.inner.AdvanceTime(now)
	if t.aud != nil {
		t.aud.Advance(now)
	}
	t.snapTick()
}

// Sketch returns the coordinator's current covariance sketch B. The
// number of rows varies by protocol; the column count is always D.
//
// On a tracker built WithSnapshots, Sketch serves the latest published
// snapshot — lock-free, safe concurrently with live ingestion from any
// number of goroutines, at most one publication cadence behind (call
// Drain first for an exact read; see Snapshot for version metadata).
//
// Otherwise Sketch is an exact read: on a parallel tracker it first
// drains the pipeline, so the sketch reflects every row previously handed
// to TryObserve (feeders should be quiescent; an overlapping ingest call
// is waited out, and new ones are held off, rather than raced with).
func (t *Tracker) Sketch() *mat.Dense {
	if t.snapArmed {
		s := t.snap.Load()
		t.countQueryAt(s.deliveredAt)
		return s.Sketch()
	}
	t.gate.exclusive()
	defer t.gate.exitExclusive()
	if t.pipe != nil {
		t.quiesceAt(false)
	}
	t.countQuery()
	sp := t.tracer.StartDetached(trace.OpQuery, -1, t.delivered)
	b := t.inner.Sketch()
	sp.End()
	return b
}

// GramSketcher is implemented by trackers whose coordinator state is the
// Gram matrix Ĉ ≈ A_wᵀA_w itself — the deterministic family (DA1, DA2,
// DA2-C and the decay tracker). The sampling protocols maintain rows, not
// a Gram, and do not implement it.
type GramSketcher interface {
	SketchGram() *mat.Dense
}

// SketchGram returns the coordinator's covariance estimate Ĉ ≈ A_wᵀA_w
// directly, when the underlying protocol implements GramSketcher (the
// deterministic family). Sketch() factors the PSD-clipped Ĉ, an O(d³) step
// per query that evaluation loops can skip by comparing against Ĉ instead.
// With WithSnapshots the estimate comes from the latest published snapshot
// (see Sketch for the concurrency and lag semantics).
func (t *Tracker) SketchGram() (*mat.Dense, bool) {
	if t.snapArmed {
		s := t.snap.Load()
		g, ok := s.SketchGram()
		if !ok {
			return nil, false
		}
		t.countQueryAt(s.deliveredAt)
		return g, true
	}
	if g, ok := t.inner.(GramSketcher); ok {
		t.gate.exclusive()
		defer t.gate.exitExclusive()
		if t.pipe != nil {
			t.quiesceAt(false)
		}
		t.countQuery()
		sp := t.tracer.StartDetached(trace.OpQuery, -1, t.delivered)
		c := g.SketchGram()
		sp.End()
		return c, true
	}
	return nil, false
}

// countQuery records one coordinator query; it reads maxT, so callers must
// exclude concurrent ingest (the snapshot path uses countQueryAt instead).
func (t *Tracker) countQuery() { t.countQueryAt(t.maxT) }

// countQueryAt records one coordinator query stamped at the given
// watermark; safe from any goroutine.
func (t *Tracker) countQueryAt(at int64) {
	t.queries.Inc()
	if t.sink != nil {
		if at == math.MinInt64 {
			at = 0
		}
		t.sink.OnEvent(obs.Event{Kind: obs.EvSketchQuery, Site: -1, T: at})
	}
}

// Stats returns the communication and space counters accumulated so far.
func (t *Tracker) Stats() Stats { return t.inner.Stats() }

// Name returns the protocol's display name.
func (t *Tracker) Name() string { return t.inner.Name() }

// Config returns the configuration the tracker was built with.
func (t *Tracker) Config() Config { return t.cfg }

// CovErr computes ‖refᵀref − bᵀb‖₂/‖ref‖_F² — the covariance error of
// sketch b against an explicitly materialized reference matrix. It is the
// metric of the paper's experiments; production users typically cannot
// afford the reference and rely on the protocols' guarantees instead.
func CovErr(ref, b *mat.Dense) float64 { return mat.CovErr(ref, b) }

// AggregateTracker tracks the sum of nonnegative item weights over the
// distributed sliding window (Algorithm 3) — COUNT when all weights are 1.
// It is the deterministic scalar special case (d = 1) of matrix tracking
// and also a reusable primitive in its own right.
type AggregateTracker struct {
	inner *core.SumTracker
	net   *protocol.Network
	sites int
	// lastT tracks each site's clock so stale observations are rejected
	// before they can corrupt the site's histogram.
	lastT []int64
}

// NewAggregate builds a SUM/COUNT tracker; only W, Eps and Sites of cfg
// are used. Validation failures are *ConfigError, as with New — the field
// constraints come from the same core-layer source of truth.
//
// Options share New's vocabulary, so the two constructors read the same;
// the scalar tracker honors WithSink (installed before the first
// observation, like New) and rejects the matrix-only options —
// WithParallel, WithTracing, WithAudit — with ErrOptionUnsupported
// instead of silently ignoring them.
func NewAggregate(cfg Config, opts ...Option) (*AggregateTracker, error) {
	o := buildOptions(opts)
	switch {
	case o.parallel:
		return nil, fmt.Errorf("%w: NewAggregate cannot run WithParallel (scalar updates have no site pipeline)", ErrOptionUnsupported)
	case o.tracing != nil:
		return nil, fmt.Errorf("%w: NewAggregate cannot run WithTracing", ErrOptionUnsupported)
	case o.audit != nil:
		return nil, fmt.Errorf("%w: NewAggregate cannot run WithAudit (the auditor shadows a matrix window)", ErrOptionUnsupported)
	case o.snapshots:
		return nil, fmt.Errorf("%w: NewAggregate cannot run WithSnapshots (the scalar estimate is already a single atomic read away)", ErrOptionUnsupported)
	}
	ccfg := core.Config{D: 1, W: cfg.W, Eps: cfg.Eps, Sites: cfg.Sites}
	if err := ccfg.Validate(); err != nil {
		return nil, wrapCoreConfigErr(err)
	}
	net := protocol.NewNetwork(cfg.Sites)
	inner, err := core.NewSumTracker(ccfg, net)
	if err != nil {
		return nil, err
	}
	lastT := make([]int64, cfg.Sites)
	for i := range lastT {
		lastT[i] = math.MinInt64
	}
	t := &AggregateTracker{inner: inner, net: net, sites: cfg.Sites, lastT: lastT}
	if o.haveSink {
		t.SetSink(o.sink)
	}
	return t, nil
}

// TryObserve records weight w at the given site and time, reporting
// delivery problems as errors: ErrSiteRange for a bad site index, ErrStale
// when now precedes an earlier observation at the same site (the weight is
// dropped; the tracker is unchanged). Each site's clock is independent —
// sites may run at different times.
func (t *AggregateTracker) TryObserve(site int, now int64, w float64) error {
	if site < 0 || site >= t.sites {
		return fmt.Errorf("%w: site %d not in [0,%d)", ErrSiteRange, site, t.sites)
	}
	if now < t.lastT[site] {
		return fmt.Errorf("%w: t=%d after t=%d was observed at site %d", ErrStale, now, t.lastT[site], site)
	}
	t.lastT[site] = now
	t.inner.ObserveWeight(site, now, w)
	return nil
}

// Observe records weight w at the given site and time. It is TryObserve
// with the historical contract: a bad site index panics, stale
// observations are silently dropped.
func (t *AggregateTracker) Observe(site int, now int64, w float64) {
	if err := t.TryObserve(site, now, w); err != nil && !errors.Is(err, ErrStale) {
		panic(err)
	}
}

// SetSink installs an event sink receiving the tracker's message and
// bucket lifecycle events (nil disables). Install before feeding data.
//
// Deprecated: pass WithSink to NewAggregate, which wires the sink before
// any observation can arrive. SetSink remains for uninstalling.
func (t *AggregateTracker) SetSink(s Sink) {
	t.net.SetSink(s)
	t.inner.SetSink(s)
}

// Advance moves every site's clock forward; observations older than now
// are stale afterwards.
func (t *AggregateTracker) Advance(now int64) {
	for i := range t.lastT {
		if now > t.lastT[i] {
			t.lastT[i] = now
		}
	}
	t.inner.AdvanceAll(now)
}

// Estimate returns the coordinator's current window-sum estimate, within
// ε relative error of the truth.
func (t *AggregateTracker) Estimate() float64 { return t.inner.Estimate() }

// Stats returns the communication counters accumulated so far.
func (t *AggregateTracker) Stats() Stats { return t.net.Stats() }
