package distwindow

import (
	"encoding/gob"
	"fmt"
	"io"

	"distwindow/internal/core"
	"distwindow/internal/protocol"
)

// Checkpointing: the deterministic trackers (DA1, DA2, DA2-C and the SUM
// special case) can serialize their complete state — site histograms,
// ledgers, coordinator estimate — and resume after a process restart with
// bit-identical behaviour. The sampling trackers are not checkpointable:
// their state includes the in-flight priority RNG, and restarting it
// would silently change the sampling distribution.

// checkpointEnvelope is the on-disk format.
type checkpointEnvelope struct {
	Protocol Protocol
	Config   Config
	DA1      *core.DA1Snapshot
	DA2      *core.DA2Snapshot
}

// Checkpointable reports whether the tracker's protocol supports
// Checkpoint/Restore.
func (t *Tracker) Checkpointable() bool {
	switch t.cfg.Protocol {
	case DA1, DA2, DA2C:
		return true
	}
	return false
}

// Checkpoint serializes the tracker's full state to w. Returns an error
// for protocols that do not support checkpointing.
func (t *Tracker) Checkpoint(w io.Writer) error {
	env := checkpointEnvelope{Protocol: t.cfg.Protocol, Config: t.cfg}
	switch inner := t.inner.(type) {
	case *core.DA1:
		sn := inner.Snapshot()
		env.DA1 = &sn
	case *core.DA2:
		sn := inner.Snapshot()
		env.DA2 = &sn
	default:
		return fmt.Errorf("distwindow: protocol %s is not checkpointable", t.cfg.Protocol)
	}
	return gob.NewEncoder(w).Encode(env)
}

// Restore rebuilds a tracker from a checkpoint written by Checkpoint.
// Communication counters restart from zero (they describe a run, not the
// protocol state).
//
// Options use New's vocabulary and are applied to the rebuilt tracker in
// the same order, so a restored tracker can come back with its sink,
// tracing, audit or pipeline already wired — observability does not lapse
// across a restart. Checkpoints never carry runtime wiring (a Sink is a
// live object, not state), which is why it is re-supplied here.
//
// The envelope is validated before any state is rebuilt: undecodable
// bytes, an invalid configuration, or missing state return an error
// wrapping ErrCheckpointCorrupt; a declared protocol that disagrees with
// the snapshot the envelope actually carries (wrong family, or a DA2
// snapshot whose compress flag contradicts the DA2/DA2-C header) returns
// one wrapping ErrCheckpointMismatch. Both guards exist because gob is
// permissive: a truncated or mislabeled file can decode into a plausible
// envelope that would silently run the wrong protocol.
func Restore(r io.Reader, opts ...Option) (*Tracker, error) {
	o := buildOptions(opts)
	var env checkpointEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("%w: reading: %v", ErrCheckpointCorrupt, err)
	}
	if err := env.Config.Validate(); err != nil {
		return nil, fmt.Errorf("%w: config: %v", ErrCheckpointCorrupt, err)
	}
	if env.Protocol != env.Config.Protocol {
		return nil, fmt.Errorf("%w: envelope says %s, config says %s",
			ErrCheckpointMismatch, env.Protocol, env.Config.Protocol)
	}
	switch env.Protocol {
	case DA1:
		if env.DA1 == nil || env.DA2 != nil {
			return nil, fmt.Errorf("%w: %s envelope without a DA1 snapshot", ErrCheckpointMismatch, env.Protocol)
		}
	case DA2:
		if env.DA2 == nil || env.DA1 != nil || env.DA2.Compress {
			return nil, fmt.Errorf("%w: %s envelope without a plain DA2 snapshot", ErrCheckpointMismatch, env.Protocol)
		}
	case DA2C:
		if env.DA2 == nil || env.DA1 != nil || !env.DA2.Compress {
			return nil, fmt.Errorf("%w: %s envelope without a compressed DA2 snapshot", ErrCheckpointMismatch, env.Protocol)
		}
	default:
		return nil, fmt.Errorf("%w: protocol %s is not checkpointable", ErrCheckpointCorrupt, env.Protocol)
	}
	net := protocol.NewNetwork(env.Config.Sites)
	var t *Tracker
	switch {
	case env.DA1 != nil:
		env.DA1.Cfg = env.DA1.Cfg.WithPools(o.pools)
		inner, err := core.RestoreDA1(*env.DA1, net)
		if err != nil {
			return nil, err
		}
		t = newTracker(inner, net, env.Config)
	case env.DA2 != nil:
		env.DA2.Cfg = env.DA2.Cfg.WithPools(o.pools)
		inner, err := core.RestoreDA2(*env.DA2, net)
		if err != nil {
			return nil, err
		}
		t = newTracker(inner, net, env.Config)
	default:
		return nil, fmt.Errorf("%w: no tracker state", ErrCheckpointCorrupt)
	}
	if err := t.applyOptions(o); err != nil {
		return nil, err
	}
	return t, nil
}
