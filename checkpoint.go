package distwindow

import (
	"encoding/gob"
	"fmt"
	"io"

	"distwindow/internal/core"
	"distwindow/internal/protocol"
)

// Checkpointing: the deterministic trackers (DA1, DA2, DA2-C and the SUM
// special case) can serialize their complete state — site histograms,
// ledgers, coordinator estimate — and resume after a process restart with
// bit-identical behaviour. The sampling trackers are not checkpointable:
// their state includes the in-flight priority RNG, and restarting it
// would silently change the sampling distribution.

// checkpointEnvelope is the on-disk format.
type checkpointEnvelope struct {
	Protocol Protocol
	Config   Config
	DA1      *core.DA1Snapshot
	DA2      *core.DA2Snapshot
}

// Checkpointable reports whether the tracker's protocol supports
// Checkpoint/Restore.
func (t *Tracker) Checkpointable() bool {
	switch t.cfg.Protocol {
	case DA1, DA2, DA2C:
		return true
	}
	return false
}

// Checkpoint serializes the tracker's full state to w. Returns an error
// for protocols that do not support checkpointing.
func (t *Tracker) Checkpoint(w io.Writer) error {
	env := checkpointEnvelope{Protocol: t.cfg.Protocol, Config: t.cfg}
	switch inner := t.inner.(type) {
	case *core.DA1:
		sn := inner.Snapshot()
		env.DA1 = &sn
	case *core.DA2:
		sn := inner.Snapshot()
		env.DA2 = &sn
	default:
		return fmt.Errorf("distwindow: protocol %s is not checkpointable", t.cfg.Protocol)
	}
	return gob.NewEncoder(w).Encode(env)
}

// Restore rebuilds a tracker from a checkpoint written by Checkpoint.
// Communication counters restart from zero (they describe a run, not the
// protocol state).
func Restore(r io.Reader) (*Tracker, error) {
	var env checkpointEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("distwindow: reading checkpoint: %w", err)
	}
	net := protocol.NewNetwork(env.Config.Sites)
	switch {
	case env.DA1 != nil:
		inner, err := core.RestoreDA1(*env.DA1, net)
		if err != nil {
			return nil, err
		}
		return newTracker(inner, net, env.Config), nil
	case env.DA2 != nil:
		inner, err := core.RestoreDA2(*env.DA2, net)
		if err != nil {
			return nil, err
		}
		return newTracker(inner, net, env.Config), nil
	}
	return nil, fmt.Errorf("distwindow: checkpoint carries no tracker state")
}
