package distwindow

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
)

// regCfg is the registry tests' default stream configuration: DA1 so the
// pool-heavy paths (mEH buckets, decomposition workspaces) are exercised.
func regCfg() Config {
	return Config{Protocol: DA1, D: 4, W: 128, Eps: 0.3, Sites: 3}
}

// feedStream pushes rows rows of seeded pseudo-random data into tr. The
// generator depends only on seed, so two trackers fed with the same seed
// see byte-identical input.
func feedStream(t *testing.T, tr *Tracker, seed int64, rows int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := tr.Config().D
	v := make([]float64, d)
	for i := 0; i < rows; i++ {
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		if err := tr.TryObserve(i%tr.Config().Sites, Row{T: int64(i), V: v}); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
}

// TestRegistryDeterminism locks in the tentpole guarantee: a stream
// tracked through a Registry — shared pools, fan-out sinks and all — is
// bit-for-bit identical to the same stream tracked by a standalone New
// tracker.
func TestRegistryDeterminism(t *testing.T) {
	const streams, rows = 8, 400
	reg := NewRegistry()
	defer reg.Close()
	for i := 0; i < streams; i++ {
		id := fmt.Sprintf("s%d", i)
		tr, created, err := reg.Open(id, regCfg())
		if err != nil || !created {
			t.Fatalf("Open(%s): created=%v err=%v", id, created, err)
		}
		feedStream(t, tr, int64(1000+i), rows)
	}
	// Interleave an eviction cycle so later streams reuse donated storage
	// — reused buffers must not leak state between tenants.
	reg.Evict("s0")
	trEvictRedo, _, err := reg.Open("s0", regCfg())
	if err != nil {
		t.Fatalf("reopen s0: %v", err)
	}
	feedStream(t, trEvictRedo, 1000, rows)
	for i := 0; i < streams; i++ {
		id := fmt.Sprintf("s%d", i)
		got, ok := reg.Get(id)
		if !ok {
			t.Fatalf("Get(%s): missing", id)
		}
		want, err := New(regCfg())
		if err != nil {
			t.Fatal(err)
		}
		feedStream(t, want, int64(1000+i), rows)
		if !got.Sketch().Equal(want.Sketch()) {
			t.Fatalf("stream %s: registry sketch differs from standalone tracker", id)
		}
	}
}

// TestRegistryThousandStreams is the scale acceptance test: 1,000
// concurrent streams behind one Registry, each with estimates identical
// to an independent tracker's.
func TestRegistryThousandStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-stream sweep skipped in -short")
	}
	const streams, rows = 1000, 60
	cfg := Config{Protocol: DA1, D: 3, W: 32, Eps: 0.4, Sites: 2}
	reg := NewRegistry()
	defer reg.Close()
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < streams; i += 8 {
				id := fmt.Sprintf("stream-%04d", i)
				tr, _, err := reg.Open(id, cfg)
				if err != nil {
					errs <- fmt.Errorf("open %s: %w", id, err)
					return
				}
				rng := rand.New(rand.NewSource(int64(i)))
				v := make([]float64, cfg.D)
				for r := 0; r < rows; r++ {
					for j := range v {
						v[j] = rng.NormFloat64()
					}
					if err := tr.TryObserve(r%cfg.Sites, Row{T: int64(r), V: v}); err != nil {
						errs <- fmt.Errorf("%s row %d: %w", id, r, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := reg.Len(); n != streams {
		t.Fatalf("Len = %d, want %d", n, streams)
	}
	// Spot-check a sample of streams against independent trackers.
	for _, i := range []int{0, 1, 499, 998, 999} {
		id := fmt.Sprintf("stream-%04d", i)
		got, ok := reg.Get(id)
		if !ok {
			t.Fatalf("Get(%s): missing", id)
		}
		want, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(i)))
		v := make([]float64, cfg.D)
		for r := 0; r < rows; r++ {
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			if err := want.TryObserve(r%cfg.Sites, Row{T: int64(r), V: v}); err != nil {
				t.Fatal(err)
			}
		}
		if !got.Sketch().Equal(want.Sketch()) {
			t.Fatalf("stream %s: sketch differs from independent tracker", id)
		}
	}
	m := reg.Metrics()
	if m.Streams != streams || m.Opened != streams {
		t.Fatalf("Metrics = %+v, want Streams=Opened=%d", m, streams)
	}
}

// TestRegistryChurnRace exercises the sharded map under churn: goroutines
// open/feed/evict their own key-spaces while others range, query and
// snapshot. Run with -race; correctness here is "no data race, no panic,
// counters consistent at the end".
func TestRegistryChurnRace(t *testing.T) {
	const workers, perWorker, rounds = 4, 8, 5
	cfg := Config{Protocol: DA1, D: 3, W: 32, Eps: 0.4, Sites: 2}
	reg := NewRegistry()
	defer reg.Close()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := 0; i < perWorker; i++ {
					id := fmt.Sprintf("w%d-s%d", w, i)
					tr, _, err := reg.Open(id, cfg)
					if err != nil {
						t.Error(err)
						return
					}
					v := []float64{1, 2, 3}
					for n := 0; n < 20; n++ {
						_ = tr.TryObserve(n%cfg.Sites, Row{T: int64(r*100 + n), V: v})
					}
					_ = tr.Sketch()
				}
				for i := 0; i < perWorker; i++ {
					reg.Evict(fmt.Sprintf("w%d-s%d", w, i))
				}
			}
		}(w)
	}
	// Concurrent observers: snapshots, ranges, lookups of foreign keys.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = reg.Metrics()
			_ = reg.Len()
			reg.Range(func(id string, tr *Tracker) bool { return true })
			_, _ = reg.Get("w0-s0")
			_, _, _ = reg.StreamMetrics("w1-s1")
		}
	}()
	wg.Wait()
	if n := reg.Len(); n != 0 {
		t.Fatalf("Len = %d after full churn, want 0", n)
	}
	m := reg.Metrics()
	if m.Opened != m.Evicted {
		t.Fatalf("Opened=%d Evicted=%d, want equal after full churn", m.Opened, m.Evicted)
	}
}

// TestRegistryIngestAllocs gates the hot path: once a stream is warm, a
// per-row Get + TryObserve through the registry allocates nothing — the
// sharded lookup, the fan-out sinks and the shared-pool plumbing all stay
// off the heap. The feed keeps the window distribution stationary (a
// fixed row pool, as in the core-layer gate) so the spectral trigger —
// whose rare reports are allowed to allocate — stays quiet.
func TestRegistryIngestAllocs(t *testing.T) {
	cfg := Config{Protocol: DA1, D: 16, W: 2000, Eps: 0.2, Sites: 1}
	reg := NewRegistry()
	defer reg.Close()
	if _, _, err := reg.Open("hot", cfg); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	pool := make([][]float64, 8)
	for i := range pool {
		pool[i] = make([]float64, cfg.D)
		for j := range pool[i] {
			pool[i][j] = rng.NormFloat64()
		}
	}
	now := int64(0)
	feed := func() {
		now++
		h, ok := reg.Get("hot")
		if !ok {
			t.Fatal("stream vanished")
		}
		if err := h.TryObserve(0, Row{T: now, V: pool[now%int64(len(pool))]}); err != nil {
			t.Fatal(err)
		}
	}
	// Warm past several windows: histogram capacity, freelists, workspace
	// buffers and the coordinator replica all reach steady state.
	for i := 0; i < 3*int(cfg.W); i++ {
		feed()
	}
	if allocs := testing.AllocsPerRun(500, feed); allocs != 0 {
		t.Fatalf("steady-state registry ingest allocates %.1f/row, want 0", allocs)
	}
}

// TestRegistryIngestWorkers pins the ingest-plane sizing rule: never more
// workers than streams (ordered per-stream rows leave extras idle) and
// never more than GOMAXPROCS (oversubscribing one core measurably loses
// throughput to cache rotation).
func TestRegistryIngestWorkers(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	maxp := runtime.GOMAXPROCS(0)
	cases := []struct {
		requested, streams, want int
	}{
		{1, 16, 1},
		{4, 2, min(2, maxp)},
		{0, 16, min(16, maxp)},
		{maxp + 7, 1000, maxp},
		{3, 0, min(3, maxp)}, // unknown stream count: clamp by cores only
	}
	for _, c := range cases {
		if got := reg.IngestWorkers(c.requested, c.streams); got != c.want {
			t.Errorf("IngestWorkers(%d, %d) = %d, want %d", c.requested, c.streams, got, c.want)
		}
	}
	// ShardOf: stable and in range.
	if s := reg.ShardOf("abc"); s < 0 || s != reg.ShardOf("abc") {
		t.Errorf("ShardOf unstable or negative: %d", s)
	}
}

// TestRegistryColdStreamAllocs pins the many-streams warm-up cost: with
// 256 cold streams sharing one registry, the whole feed — including each
// stream's histogram warm-up, which the shared pool cannot serve because
// it is only fed by evictions — must stay cheap per row. This is the
// BENCH_PR8 regression (1.497 allocs/row at 256 streams vs 0.497 at 16):
// every Add during warm-up allocated a fresh row buffer. The mEH row slab
// now amortizes those to one allocation per slab, so the per-row figure
// stays bounded as the stream count grows.
func TestRegistryColdStreamAllocs(t *testing.T) {
	const (
		nStreams      = 256
		rowsPerStream = 400
		d             = 16
		sites         = 4
	)
	cfg := Config{Protocol: DA1, D: d, W: 20000, Eps: 0.1, Sites: sites, Seed: 3}
	reg := NewRegistry()
	defer reg.Close()
	handles := make([]*Tracker, nStreams)
	for i := range handles {
		tr, _, err := reg.Open(fmt.Sprintf("s%03d", i), cfg)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = tr
	}
	rng := rand.New(rand.NewSource(3))
	pool := make([][]float64, 64)
	for i := range pool {
		pool[i] = make([]float64, d)
		for j := range pool[i] {
			pool[i][j] = rng.NormFloat64()
		}
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for _, tr := range handles {
		for seq := 1; seq <= rowsPerStream; seq++ {
			site := seq % sites
			if err := tr.TryObserve(site, Row{T: int64(seq), V: pool[seq%len(pool)]}); err != nil {
				t.Fatal(err)
			}
		}
	}
	runtime.ReadMemStats(&after)
	perRow := float64(after.Mallocs-before.Mallocs) / float64(nStreams*rowsPerStream)
	t.Logf("cold-stream ingest: %.3f allocs/row over %d streams", perRow, nStreams)
	if perRow > coldStreamAllocBudget {
		t.Fatalf("cold-stream ingest allocates %.3f/row at %d streams, budget %.2f",
			perRow, nStreams, coldStreamAllocBudget)
	}
}

// coldStreamAllocBudget is the gate for TestRegistryColdStreamAllocs.
// Measured on this workload: 1.76 allocs/row before the mEH row slab
// (every warm-up Add allocated a row buffer), 0.87 after — the remainder
// is FD sketch warm-up plus the emission buffers the coordinator retains.
// 1.0 leaves ~15% noise headroom over the fixed figure while still
// tripping on a warm-up regression of the BENCH_PR8 magnitude.
const coldStreamAllocBudget = 1.0

// TestRegistryEvictDonatesStorage verifies eviction feeds the shared
// pools and later opens draw them back down.
func TestRegistryEvictDonatesStorage(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	tr, _, err := reg.Open("a", regCfg())
	if err != nil {
		t.Fatal(err)
	}
	feedStream(t, tr, 3, 300)
	if !reg.Evict("a") {
		t.Fatal("Evict(a) = false")
	}
	m := reg.Metrics()
	if m.PooledWorkspaces == 0 || m.PooledRows == 0 {
		t.Fatalf("after evict: PooledWorkspaces=%d PooledRows=%d, want both > 0",
			m.PooledWorkspaces, m.PooledRows)
	}
	tr2, _, err := reg.Open("b", regCfg())
	if err != nil {
		t.Fatal(err)
	}
	feedStream(t, tr2, 4, 300)
	m2 := reg.Metrics()
	if m2.PooledRows >= m.PooledRows {
		t.Fatalf("PooledRows %d → %d: new stream did not reuse donated rows",
			m.PooledRows, m2.PooledRows)
	}
}

// TestRegistryOpen covers the id/constructor edge cases.
func TestRegistryOpen(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	if _, _, err := reg.Open("", regCfg()); err == nil {
		t.Fatal("Open with empty id succeeded")
	}
	bad := regCfg()
	bad.D = 0
	if _, _, err := reg.Open("bad", bad); err == nil {
		t.Fatal("Open with invalid config succeeded")
	}
	if _, ok := reg.Get("bad"); ok {
		t.Fatal("failed Open left an entry behind")
	}
	tr1, created, err := reg.Open("s", regCfg())
	if err != nil || !created {
		t.Fatalf("first Open: created=%v err=%v", created, err)
	}
	tr2, created, err := reg.Open("s", Config{Protocol: DA2, D: 9, W: 9, Eps: 0.9, Sites: 9})
	if err != nil || created {
		t.Fatalf("second Open: created=%v err=%v", created, err)
	}
	if tr1 != tr2 {
		t.Fatal("second Open returned a different tracker")
	}
	if !reg.Evict("s") || reg.Evict("s") {
		t.Fatal("Evict should succeed once then report missing")
	}
}

// TestRegistrySinkFanOut: per-stream tallies, the aggregate tally and a
// caller-supplied WithSink all see a stream's events.
func TestRegistrySinkFanOut(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	user := &CountingSink{}
	tr, _, err := reg.Open("s", regCfg(), WithSink(user))
	if err != nil {
		t.Fatal(err)
	}
	feedStream(t, tr, 5, 300)
	perStream, _, ok := reg.StreamMetrics("s")
	if !ok {
		t.Fatal("StreamMetrics(s): missing")
	}
	if perStream.Rows == 0 {
		t.Fatal("per-stream Metrics shows no rows")
	}
	if user.Count(EvBucketCreated) == 0 {
		t.Fatal("user sink saw no bucket events")
	}
	if reg.Metrics().Events["bucket_created"] != user.Count(EvBucketCreated) {
		t.Fatal("aggregate tally disagrees with user sink")
	}
	_, streamEvents, _ := reg.StreamMetrics("s")
	if streamEvents["bucket_created"] != user.Count(EvBucketCreated) {
		t.Fatal("per-stream tally disagrees with user sink")
	}
}

// TestRegistryMetricsHandler drives the fleet HTTP view.
func TestRegistryMetricsHandler(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	for _, id := range []string{"b", "a"} {
		tr, _, err := reg.Open(id, regCfg())
		if err != nil {
			t.Fatal(err)
		}
		feedStream(t, tr, 9, 50)
	}
	srv := httptest.NewServer(reg.MetricsHandler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m RegistryMetrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Streams != 2 || m.Opened != 2 {
		t.Fatalf("/metrics: %+v, want Streams=Opened=2", m)
	}

	resp, err = srv.Client().Get(srv.URL + "/streams")
	if err != nil {
		t.Fatal(err)
	}
	var list []struct {
		ID       string
		Protocol string
		Rows     int64
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 2 || list[0].ID != "a" || list[1].ID != "b" {
		t.Fatalf("/streams: %+v, want [a b] sorted", list)
	}
	if list[0].Rows != 50 || list[0].Protocol == "" {
		t.Fatalf("/streams row: %+v", list[0])
	}
}

// TestNewAggregateOptions: the scalar constructor shares the option
// vocabulary — WithSink works, the matrix-only options are rejected.
func TestNewAggregateOptions(t *testing.T) {
	cfg := Config{W: 100, Eps: 0.2, Sites: 2}
	cs := &CountingSink{}
	at, err := NewAggregate(cfg, WithSink(cs))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := at.TryObserve(i%2, int64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if cs.Count(EvBucketCreated) == 0 {
		t.Fatal("WithSink on NewAggregate saw no events")
	}
	for _, opt := range []Option{WithParallel(2), WithTracing(TraceConfig{}), WithAudit(AuditConfig{})} {
		if _, err := NewAggregate(cfg, opt); !errors.Is(err, ErrOptionUnsupported) {
			t.Fatalf("err = %v, want ErrOptionUnsupported", err)
		}
	}
}

// TestRestoreOptions: Restore accepts New's options so a rebuilt tracker
// comes back with its observability wired.
func TestRestoreOptions(t *testing.T) {
	tr, err := New(regCfg())
	if err != nil {
		t.Fatal(err)
	}
	feedStream(t, tr, 11, 200)
	var buf bytes.Buffer
	if err := tr.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	cs := &CountingSink{}
	got, err := Restore(&buf, WithSink(cs))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Sketch().Equal(tr.Sketch()) {
		t.Fatal("restored sketch differs")
	}
	rng := rand.New(rand.NewSource(99))
	v := make([]float64, 4)
	for i := 200; i < 400; i++ {
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		if err := got.TryObserve(i%3, Row{T: int64(i), V: v}); err != nil {
			t.Fatal(err)
		}
	}
	if cs.Count(EvBucketCreated) == 0 {
		t.Fatal("sink passed to Restore saw no events")
	}
}
