package distwindow

import (
	"fmt"
	"math"
	"time"

	"distwindow/internal/obs"
	"distwindow/internal/protocol"
	"distwindow/internal/stream"
)

// laneState is one site's facade-side ingestion state in parallel mode: the
// per-site counterparts of the sequential Tracker's maxT/delivered/latTick
// fields. Each laneState is touched only by its site's worker goroutine.
type laneState struct {
	// maxT is the highest timestamp seen at this site; delivered the
	// highest handed to the inner protocol. Both start at math.MinInt64.
	maxT      int64
	delivered int64
	// curT is the timestamp of the row or advance being processed; the
	// emit adapter stamps emissions with it.
	curT int64
	emit protocol.Emit
	// latTick drives per-site latency sampling (the parallel counterpart
	// of the sequential latTick).
	latTick uint
}

// laneHandler adapts the Tracker's per-site ingestion logic to
// protocol.LaneHandler. The pipeline serializes calls per site, so the
// laneState needs no locking; everything shared across sites that the
// handler touches (obs counters, the network counters, the inner trackers'
// site arrays) is either atomic or site-partitioned.
type laneHandler struct{ t *Tracker }

// lane returns the site's state, binding the emit adapter on first use
// (the pipeline passes the same EmitAt for the lane's whole lifetime).
func (h laneHandler) lane(site int, emitAt protocol.EmitAt) *laneState {
	ls := &h.t.lanes[site]
	if ls.emit == nil {
		ls.emit = func(scale float64, v []float64) { emitAt(ls.curT, scale, v) }
	}
	return ls
}

func (h laneHandler) HandleRow(site int, tt int64, v []float64, emitAt protocol.EmitAt) int64 {
	t := h.t
	ls := h.lane(site, emitAt)
	if t.skew == nil {
		if tt < ls.maxT {
			t.staleDrops.Inc()
			t.dropEvent(site, tt)
			return ls.delivered
		}
		ls.maxT = tt
		t.laneDeliver(ls, site, stream.Row{T: tt, V: v})
		return ls.delivered
	}
	if tt > ls.maxT {
		ls.maxT = tt
	}
	// v aliases the lane's ring slot, which is reused after this call; the
	// skew buffer outlives it, so copy.
	released, ok := t.skew[site].Add(stream.Row{T: tt, V: append([]float64(nil), v...)})
	if !ok {
		t.skewDropped.Inc()
		t.dropEvent(site, tt)
		return ls.delivered
	}
	for _, rr := range released {
		if rr.T < ls.delivered {
			t.skewDropped.Inc()
			t.dropEvent(site, rr.T)
			continue
		}
		t.laneDeliver(ls, site, rr)
	}
	return ls.delivered
}

func (h laneHandler) HandleAdvance(site int, now int64, emitAt protocol.EmitAt) int64 {
	t := h.t
	ls := h.lane(site, emitAt)
	if now > ls.maxT {
		ls.maxT = now
	}
	if now > ls.delivered {
		ls.delivered = now
	}
	ls.curT = now
	t.ow.AdvanceSite(site, now, ls.emit)
	return ls.delivered
}

func (h laneHandler) HandleFlush(site int, emitAt protocol.EmitAt) int64 {
	t := h.t
	ls := h.lane(site, emitAt)
	if t.skew != nil {
		for _, rr := range t.skew[site].Flush() {
			if rr.T < ls.delivered {
				t.skewDropped.Inc()
				t.dropEvent(site, rr.T)
				continue
			}
			t.laneDeliver(ls, site, rr)
		}
	}
	return ls.delivered
}

// laneDeliver hands one in-order row to the site half of the protocol with
// sampled latency accounting — the parallel counterpart of deliver. Trace
// and audit hooks are absent by construction (WithParallel rejects them).
func (t *Tracker) laneDeliver(ls *laneState, site int, r stream.Row) {
	ls.curT = r.T
	ls.latTick++
	if ls.latTick&latSampleMask == 0 {
		start := time.Now()
		t.ow.ObserveSite(site, r, ls.emit)
		t.updateLat.Observe(time.Since(start))
	} else {
		t.ow.ObserveSite(site, r, ls.emit)
	}
	t.rows.Inc()
	ls.delivered = r.T
}

// dropEvent reports one dropped row to the sink, if any.
func (t *Tracker) dropEvent(site int, tt int64) {
	if t.sink != nil {
		t.sink.OnEvent(obs.Event{Kind: obs.EvSkewDrop, Site: site, T: tt, N: 1})
	}
}

// startParallel wires the ingestion pipeline under the facade; New calls it
// after applying the other options so the compatibility checks see the
// final configuration.
func (t *Tracker) startParallel(workers, ringSize int) error {
	if t.tracer != nil || t.aud != nil {
		return fmt.Errorf("%w: tracing and auditing require the sequential path", ErrParallelUnsupported)
	}
	ow, ok := t.inner.(protocol.OneWay)
	if !ok {
		return fmt.Errorf("%w: protocol %s is not one-way deterministic", ErrParallelUnsupported, t.inner.Name())
	}
	t.ow = ow
	t.lanes = make([]laneState, t.cfg.Sites)
	t.batch = make([][]stream.Row, t.cfg.Sites)
	for i := range t.lanes {
		t.lanes[i].maxT = math.MinInt64
		t.lanes[i].delivered = math.MinInt64
	}
	// The apply wrapper tracks the coordinator's watermark; it runs only on
	// the pipeline's coordinator goroutine, in global (T, site) order.
	apply := func(u protocol.Update) {
		t.lastAppliedT = u.T
		ow.Apply(u)
	}
	pcfg := protocol.PipelineConfig{Workers: workers, RingSize: ringSize}
	if t.snapArmed {
		// Publish from the coordinator goroutine, the only place the
		// coordinator state is whole between applies. Cadence counts
		// applied updates: a pass that applies nothing leaves the state —
		// and therefore the latest snapshot — unchanged, so idle passes
		// return without copying anything. since is coordinator-local; the
		// facade's drain-time publications are barrier-separated from it.
		var since int
		pcfg.PostApply = func(applied int) {
			if applied == 0 {
				return
			}
			since += applied
			if since >= t.snapEvery {
				since = 0
				t.publishAt(t.lastAppliedT)
			}
		}
	}
	t.pipe = protocol.NewPipeline(t.cfg.Sites, laneHandler{t}, apply, pcfg)
	return nil
}

// Parallel reports whether the tracker was built with WithParallel.
func (t *Tracker) Parallel() bool { return t.pipe != nil }

// ParallelWorkers returns the number of pipeline worker goroutines, or 0
// for a sequential tracker.
func (t *Tracker) ParallelWorkers() int {
	if t.pipe == nil {
		return 0
	}
	return t.pipe.Workers()
}

// Drain blocks until every row already handed to TryObserve has been
// processed by its site and applied at the coordinator. Afterwards Sketch,
// SketchGram, Metrics and Stats reflect all prior input; with WithSnapshots
// a fresh, fully-caught-up snapshot is published before Drain returns, so
// "Drain then query" is exact even on the snapshot path. Drain must not run
// concurrently with observe calls in parallel mode (quiesce the feeders
// first); on a sequential tracker it only refreshes the snapshot — every
// ingest call is already synchronous.
func (t *Tracker) Drain() {
	t.gate.exclusive()
	defer t.gate.exitExclusive()
	if t.pipe != nil {
		t.quiesceAt(false)
		return
	}
	if t.snapArmed && (t.snapSince > 0 || t.snap.Load() == nil) {
		t.publishAt(t.delivered)
	}
}

// Close stops the pipeline goroutines after a drain. The tracker's queries,
// metrics and previously returned snapshots remain usable afterwards, but
// no further rows may be observed. Close is idempotent; on a sequential
// tracker it only marks the tracker closed (see Closed) and publishes a
// final snapshot when one is pending.
func (t *Tracker) Close() {
	if t.closed.Load() {
		return
	}
	t.gate.exclusive()
	defer t.gate.exitExclusive()
	if t.closed.Load() {
		return
	}
	if t.pipe != nil {
		t.quiesceAt(false)
		t.pipe.Close()
	} else if t.snapArmed && t.snapSince > 0 {
		t.publishAt(t.delivered)
	}
	t.closed.Store(true)
}

// quiesceAt drains the pipeline and settles coordinator-side state: the
// coordinator clock catches up to the sites' emission floor (a no-op for
// the clock-free protocols), the bucket gauge is refreshed — the parallel
// counterparts of deliver's slow-path upkeep — and, with WithSnapshots, a
// fresh snapshot of the fully-applied state is published. It returns the
// coordinator's watermark. Callers must hold the gate exclusively: that
// keeps feeders out, and after the drain barrier the coordinator goroutine
// can only run empty passes (which touch no state), so reading and
// snapshotting the coordinator from this goroutine is safe.
func (t *Tracker) quiesceAt(flush bool) int64 {
	t.pipe.Drain(flush)
	at := t.lastAppliedT
	if mp := t.pipe.MinProgress(); mp != math.MinInt64 {
		t.ow.AdvanceCoord(mp)
		if mp > at {
			at = mp
		}
	}
	if t.buckets != nil {
		t.liveBuckets.Set(int64(t.buckets.LiveBuckets()))
	}
	if t.snapArmed {
		t.publishAt(at)
	}
	return at
}
