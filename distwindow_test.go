package distwindow

import (
	"math"
	"math/rand"
	"testing"

	"distwindow/internal/stream"
	"distwindow/internal/window"
	"distwindow/mat"
)

func testRows(n, d int, seed int64) []Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]Row, n)
	for i := range rows {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		rows[i] = Row{T: int64(i + 1), V: v}
	}
	return rows
}

func TestNewAllProtocols(t *testing.T) {
	for _, p := range Protocols() {
		cfg := Config{Protocol: p, D: 4, W: 200, Eps: 0.25, Sites: 3, Ell: 16, Seed: 1}
		tr, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if tr.Config().Protocol != p {
			t.Fatalf("Config().Protocol = %q, want %q", tr.Config().Protocol, p)
		}
	}
}

func TestNewUnknownProtocol(t *testing.T) {
	if _, err := New(Config{Protocol: "nope", D: 2, W: 10, Eps: 0.1, Sites: 1}); err == nil {
		t.Fatal("want error for unknown protocol")
	}
}

func TestNewInvalidConfig(t *testing.T) {
	if _, err := New(Config{Protocol: DA1, D: 0, W: 10, Eps: 0.1, Sites: 1}); err == nil {
		t.Fatal("want error for D=0")
	}
	if _, err := New(Config{Protocol: DA1, D: 2, W: 10, Eps: 0.1, Sites: 0}); err == nil {
		t.Fatal("want error for Sites=0")
	}
}

func TestEveryProtocolTracksTheWindow(t *testing.T) {
	// End-to-end: each protocol's sketch must stay within a loose error
	// bound of the exact union window on a Gaussian stream.
	const (
		d = 6
		w = int64(800)
	)
	rows := testRows(3000, d, 2)
	rng := rand.New(rand.NewSource(3))
	sites := make([]int, len(rows))
	for i := range sites {
		sites[i] = rng.Intn(3)
	}
	bounds := map[Protocol]float64{
		PWOR: 0.45, PWORAll: 0.45, PWORSimple: 0.45,
		ESWOR: 0.45, ESWORAll: 0.45,
		PWR: 0.6, ESWR: 0.6,
		DA1: 0.5, DA2: 0.7, DA2C: 0.7,
	}
	for _, p := range Protocols() {
		tr, err := New(Config{Protocol: p, D: d, W: w, Eps: 0.2, Sites: 3, Ell: 128, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		u := window.NewUnion(w, d)
		var sum float64
		n := 0
		for i, r := range rows {
			tr.Observe(sites[i], r)
			u.Add(stream.Row{T: r.T, V: r.V})
			if i > 800 && i%400 == 0 {
				sum += u.ErrOf(tr.Sketch())
				n++
			}
		}
		avg := sum / float64(n)
		if avg > bounds[p] {
			t.Errorf("%s: avg covariance error %v > %v", p, avg, bounds[p])
		}
		if tr.Stats().TotalWords() == 0 {
			t.Errorf("%s: no communication recorded", p)
		}
	}
}

func TestObserveValidation(t *testing.T) {
	tr, _ := New(Config{Protocol: DA1, D: 3, W: 100, Eps: 0.2, Sites: 2})
	for name, f := range map[string]func(){
		"bad site": func() { tr.Observe(5, Row{T: 1, V: []float64{1, 2, 3}}) },
		"bad dim":  func() { tr.Observe(0, Row{T: 1, V: []float64{1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAdvanceExpires(t *testing.T) {
	tr, _ := New(Config{Protocol: DA2, D: 3, W: 50, Eps: 0.2, Sites: 2})
	for i, r := range testRows(100, 3, 5) {
		tr.Observe(i%2, r)
	}
	tr.Advance(10_000)
	if mat.FrobSq(tr.Sketch()) > 1e-9 {
		t.Fatal("sketch should be empty after everything expires")
	}
}

func TestAggregateTracker(t *testing.T) {
	at, err := NewAggregate(Config{W: 500, Eps: 0.1, Sites: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	var items []struct {
		t int64
		w float64
	}
	for i := int64(1); i <= 2000; i++ {
		w := 1 + rng.Float64()
		at.Observe(rng.Intn(3), i, w)
		items = append(items, struct {
			t int64
			w float64
		}{i, w})
	}
	var truth float64
	for _, it := range items {
		if it.t > 2000-500 {
			truth += it.w
		}
	}
	if got := at.Estimate(); math.Abs(got-truth)/truth > 0.2 {
		t.Fatalf("aggregate estimate %v vs truth %v", got, truth)
	}
	if at.Stats().WordsUp == 0 {
		t.Fatal("aggregate tracker sent nothing")
	}
}

func TestAggregateTrackerAsCount(t *testing.T) {
	at, _ := NewAggregate(Config{W: 100, Eps: 0.1, Sites: 1})
	for i := int64(1); i <= 300; i++ {
		at.Observe(0, i, 1)
	}
	if got := at.Estimate(); math.Abs(got-100) > 20 {
		t.Fatalf("count estimate %v, want ≈100", got)
	}
}

// --- analytics helpers ---

func TestSketchPCARecoversDominantDirection(t *testing.T) {
	// Rows concentrated along e1 with noise: PCA component 0 ≈ ±e1.
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float64, 400)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 10, rng.NormFloat64(), rng.NormFloat64()}
	}
	b := mat.FromRows(rows)
	p := SketchPCA(b, 2)
	if p.Components.Rows() != 2 {
		t.Fatalf("k = %d, want 2", p.Components.Rows())
	}
	if c := math.Abs(p.Components.At(0, 0)); c < 0.95 {
		t.Fatalf("top component not aligned with e1: |v₀·e1| = %v", c)
	}
	if p.Values[0] <= p.Values[1] {
		t.Fatal("PCA values must be sorted")
	}
}

func TestSubspaceDistance(t *testing.T) {
	id := PCA{Components: mat.FromRows([][]float64{{1, 0, 0}})}
	same := PCA{Components: mat.FromRows([][]float64{{-1, 0, 0}})} // sign-flipped
	orth := PCA{Components: mat.FromRows([][]float64{{0, 1, 0}})}
	if d := SubspaceDistance(id, same); d > 1e-9 {
		t.Fatalf("identical subspaces distance %v", d)
	}
	if d := SubspaceDistance(id, orth); d < 0.99 {
		t.Fatalf("orthogonal subspaces distance %v", d)
	}
}

func TestAnomalyScorer(t *testing.T) {
	// Window data lives in span{e1, e2}; anomalies point along e3.
	rng := rand.New(rand.NewSource(8))
	rows := make([][]float64, 300)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 2, 0, 0}
	}
	sc := NewAnomalyScorer(mat.FromRows(rows), 2)
	if s := sc.Score([]float64{1, 1, 0, 0}); s > 0.05 {
		t.Fatalf("in-subspace point scored %v", s)
	}
	if s := sc.Score([]float64{0, 0, 1, 0}); s < 0.95 {
		t.Fatalf("orthogonal point scored %v", s)
	}
	if s := sc.Score([]float64{0, 0, 0, 0}); s != 0 {
		t.Fatalf("zero point scored %v", s)
	}
}

func TestLowRankApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rows := make([][]float64, 100)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 5, rng.NormFloat64()}
	}
	b := mat.FromRows(rows)
	lr := LowRankApprox(b, 1)
	if lr.Rows() != 1 {
		t.Fatalf("rank = %d, want 1", lr.Rows())
	}
	// Rank-1 Gram must capture most of the dominant variance.
	full := mat.Gram(b)
	approx := mat.Gram(lr)
	if approx.At(0, 0) < 0.9*full.At(0, 0) {
		t.Fatal("rank-1 approximation lost the dominant direction")
	}
}

func TestProjectionEnergy(t *testing.T) {
	b := mat.FromRows([][]float64{{2, 0}, {0, 1}})
	if e := ProjectionEnergy(b, []float64{1, 0}); math.Abs(e-4) > 1e-12 {
		t.Fatalf("energy along e1 = %v, want 4", e)
	}
	if e := ProjectionEnergy(b, []float64{0, 3}); math.Abs(e-1) > 1e-12 {
		t.Fatalf("energy along e2 = %v, want 1 (direction is normalized)", e)
	}
	if ProjectionEnergy(b, []float64{0, 0}) != 0 {
		t.Fatal("zero direction has zero energy")
	}
}

func TestCovErrAndEffectiveEps(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	rows := make([][]float64, 50)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	a := mat.FromRows(rows)
	if e := CovErr(a, a.Clone()); e > 1e-10 {
		t.Fatalf("CovErr(A,A) = %v", e)
	}
	e, ok := EffectiveEps(a, a.Clone(), 0.1, 1)
	if !ok || e > 1e-10 {
		t.Fatalf("EffectiveEps = %v %v", e, ok)
	}
}

func TestFormatStats(t *testing.T) {
	s := Stats{WordsUp: 10, WordsDown: 5}
	out := FormatStats(s)
	if out == "" || len(out) < 10 {
		t.Fatalf("FormatStats too short: %q", out)
	}
}

func TestSketchPCAPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SketchPCA(mat.NewDense(1, 1), 0)
}

func TestDecayProtocolViaFacade(t *testing.T) {
	tr, err := New(Config{Protocol: Decay, D: 3, Eps: 0.2, Sites: 2, DecayGamma: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20))
	for i := int64(1); i <= 800; i++ {
		tr.Observe(int(i)%2, Row{T: i, V: []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}})
	}
	if mat.FrobSq(tr.Sketch()) == 0 {
		t.Fatal("decay sketch empty")
	}
	if tr.Name() != "DECAY" {
		t.Fatalf("Name = %q", tr.Name())
	}
	// Decay to oblivion.
	tr.Advance(1_000_000)
	if f := mat.FrobSq(tr.Sketch()); f > 1e-12 {
		t.Fatalf("mass %v should have decayed away", f)
	}
}

func TestDecayProtocolRequiresGamma(t *testing.T) {
	if _, err := New(Config{Protocol: Decay, D: 3, Eps: 0.2, Sites: 2}); err == nil {
		t.Fatal("want error when DecayGamma unset")
	}
}

func TestMaxSkewReordersOutOfOrderRows(t *testing.T) {
	// The same stream delivered in order vs jittered: with MaxSkew the
	// sketches must match exactly (deterministic protocol).
	cfg := Config{Protocol: DA1, D: 3, W: 200, Eps: 0.2, Sites: 1, Seed: 1}
	rows := testRows(600, 3, 30)

	ref, _ := New(cfg)
	for _, r := range rows {
		ref.Observe(0, r)
	}

	jcfg := cfg
	jcfg.MaxSkew = 16
	jit, _ := New(jcfg)
	rng := rand.New(rand.NewSource(31))
	// Jitter delivery order within a window of 8 positions.
	perm := append([]Row(nil), rows...)
	for i := 0; i+8 < len(perm); i += 8 {
		rng.Shuffle(8, func(a, b int) { perm[i+a], perm[i+b] = perm[i+b], perm[i+a] })
	}
	for _, r := range perm {
		jit.Observe(0, r)
	}
	jit.FlushSkew()
	if jit.SkewDropped() != 0 {
		t.Fatalf("%d rows dropped within the skew bound", jit.SkewDropped())
	}
	if !ref.Sketch().Equal(jit.Sketch()) {
		t.Fatal("skew-buffered delivery diverged from in-order delivery")
	}
}

func TestMaxSkewDropsAncientRows(t *testing.T) {
	cfg := Config{Protocol: DA2, D: 2, W: 100, Eps: 0.2, Sites: 1, MaxSkew: 5}
	tr, _ := New(cfg)
	tr.Observe(0, Row{T: 100, V: []float64{1, 0}})
	tr.Observe(0, Row{T: 50, V: []float64{1, 0}}) // far beyond the horizon
	if tr.SkewDropped() != 1 {
		t.Fatalf("SkewDropped = %d, want 1", tr.SkewDropped())
	}
}

func TestAnalyticsEdgeCases(t *testing.T) {
	// SubspaceDistance with an empty basis is maximal.
	empty := PCA{Components: mat.NewDense(0, 3)}
	full := PCA{Components: mat.FromRows([][]float64{{1, 0, 0}})}
	if d := SubspaceDistance(empty, full); d != 1 {
		t.Fatalf("empty-basis distance = %v, want 1", d)
	}
	// SketchPCA with k beyond the available spectrum clamps.
	b := mat.FromRows([][]float64{{1, 0, 0}})
	p := SketchPCA(b, 5)
	if p.Components.Rows() != 1 {
		t.Fatalf("k should clamp to rank: %d", p.Components.Rows())
	}
	// LowRankApprox likewise.
	if lr := LowRankApprox(b, 9); lr.Rows() != 1 {
		t.Fatalf("LowRankApprox rows = %d", lr.Rows())
	}
}

func TestSkewConfigZeroIsDirect(t *testing.T) {
	tr, _ := New(Config{Protocol: DA1, D: 2, W: 100, Eps: 0.2, Sites: 1})
	// Without MaxSkew, FlushSkew is a no-op and SkewDropped stays 0.
	tr.Observe(0, Row{T: 5, V: []float64{1, 0}})
	tr.FlushSkew()
	if tr.SkewDropped() != 0 {
		t.Fatal("no skew buffer should mean no drops")
	}
}
