package distwindow_test

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"distwindow"
)

func feedRows(t *testing.T, tr *distwindow.Tracker, d, sites int, n int64, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := int64(1); i <= n; i++ {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		tr.Observe(rng.Intn(sites), distwindow.Row{T: i, V: v})
	}
}

func TestEnableTracingRecordsChains(t *testing.T) {
	const (
		d     = 6
		sites = 3
	)
	tr, err := distwindow.New(distwindow.Config{
		Protocol: distwindow.DA2, D: d, W: 500, Eps: 0.1, Sites: sites, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.TracingEnabled() {
		t.Fatal("tracing should be off by default")
	}
	tr.EnableTracing(distwindow.TraceConfig{SampleEvery: 1})
	if !tr.TracingEnabled() {
		t.Fatal("EnableTracing did not enable")
	}

	feedRows(t, tr, d, sites, 2000, 3)
	_ = tr.Sketch()

	if tr.TraceSpans() == 0 {
		t.Fatal("no spans recorded at 1-in-1 sampling")
	}
	js, err := tr.TraceChrome()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(js, &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	ops := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		name, _ := ev["name"].(string)
		ops[name] = true
	}
	// The simulation records ingest roots, bucket lifecycle instants,
	// fabric send instants and the query span.
	for _, want := range []string{"ingest", "send", "query"} {
		if !ops[want] {
			t.Fatalf("trace export missing %q events (have %v)", want, ops)
		}
	}
	if tr.Metrics().TraceSpans == 0 {
		t.Fatal("Metrics().TraceSpans not populated")
	}
}

func TestTracingDisabledAccessors(t *testing.T) {
	tr, err := distwindow.New(distwindow.Config{
		Protocol: distwindow.DA2, D: 4, W: 100, Eps: 0.1, Sites: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.TraceChrome(); err == nil {
		t.Fatal("TraceChrome should error when tracing is off")
	}
	if tr.TraceSpans() != 0 {
		t.Fatal("TraceSpans should be 0 when tracing is off")
	}
	rec := httptest.NewRecorder()
	tr.TraceHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/trace", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("disabled TraceHandler status = %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	tr.AuditHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/audit", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("disabled AuditHandler status = %d, want 404", rec.Code)
	}
	if _, ok := tr.Audit(); ok {
		t.Fatal("Audit() should report not-ok when auditing is off")
	}
	if m := tr.Metrics(); m.Audit != nil {
		t.Fatal("Metrics().Audit should be nil when auditing is off")
	}
}

func TestEnableAuditShadowsTheWindow(t *testing.T) {
	const (
		d     = 6
		sites = 3
	)
	tr, err := distwindow.New(distwindow.Config{
		Protocol: distwindow.DA2, D: d, W: 500, Eps: 0.1, Sites: sites, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.EnableAudit(distwindow.AuditConfig{EveryRows: 128}); err != nil {
		t.Fatal(err)
	}
	if !tr.AuditEnabled() {
		t.Fatal("EnableAudit did not enable")
	}

	feedRows(t, tr, d, sites, 3000, 5)

	am, ok := tr.Audit()
	if !ok {
		t.Fatal("Audit() not ok after EnableAudit")
	}
	if am.Ticks < 3000/128 {
		t.Fatalf("audit ticked %d times, want ≥ %d", am.Ticks, 3000/128)
	}
	if am.Rows != 3000 {
		t.Fatalf("audit shadowed %d rows, want 3000", am.Rows)
	}
	if am.Violations != 0 {
		t.Fatalf("%d ε-violations (max err %v vs ε=%v)", am.Violations, am.MaxErr, am.Eps)
	}
	if am.WordsPerWindow <= 0 {
		t.Fatalf("WordsPerWindow = %v, want > 0", am.WordsPerWindow)
	}
	if n := len(tr.AuditSamples()); int64(n) != am.Ticks {
		t.Fatalf("retained %d samples, want %d", n, am.Ticks)
	}
	if s, ok := tr.AuditTick(); !ok || s.WindowRows == 0 {
		t.Fatalf("forced tick = %+v ok=%v, want a populated sample", s, ok)
	}
	if m := tr.Metrics(); m.Audit == nil || m.Audit.Rows != 3000 {
		t.Fatalf("Metrics().Audit = %+v, want the auditor snapshot", m.Audit)
	}

	// Advancing a full window empties the shadow.
	tr.Advance(3000 + 501)
	if s, _ := tr.AuditTick(); s.WindowRows != 0 {
		t.Fatalf("shadow window holds %d rows after full expiry", s.WindowRows)
	}
}

func TestMetricsHandlerMountsDebugEndpoints(t *testing.T) {
	const (
		d     = 4
		sites = 2
	)
	tr, err := distwindow.New(distwindow.Config{
		Protocol: distwindow.DA2, D: d, W: 200, Eps: 0.2, Sites: sites, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.EnableTracing(distwindow.TraceConfig{SampleEvery: 4})
	if err := tr.EnableAudit(distwindow.AuditConfig{EveryRows: 64}); err != nil {
		t.Fatal(err)
	}
	feedRows(t, tr, d, sites, 500, 9)

	h := tr.MetricsHandler(distwindow.WithPprof())
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	rec := get("/debug/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace status = %d, want 200", rec.Code)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/trace is not Chrome trace JSON: %v", err)
	}

	rec = get("/debug/audit")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/audit status = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("/debug/audit Content-Type = %q, want image/svg+xml", ct)
	}
	if !strings.Contains(rec.Body.String(), "<svg") {
		t.Fatal("/debug/audit did not render an SVG panel")
	}

	rec = get("/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", rec.Code)
	}
	var m distwindow.Metrics
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("/metrics is not a Metrics document: %v", err)
	}
	if m.Audit == nil || m.Audit.Rows != 500 {
		t.Fatalf("/metrics Audit = %+v, want the live auditor snapshot", m.Audit)
	}
	if m.TraceSpans == 0 {
		t.Fatal("/metrics TraceSpans = 0 with tracing on")
	}

	if rec := get("/debug/pprof/cmdline"); rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status = %d, want 200", rec.Code)
	}
}
