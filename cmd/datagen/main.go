// Command datagen generates the evaluation datasets and prints their
// Table III summaries; with -dump it also writes the stamped event stream
// as CSV (timestamp, site, features...) for external tooling.
//
// Usage:
//
//	datagen -scale default
//	datagen -scale tiny -dump pamap.csv -which pamap
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"distwindow/internal/bench"
	"distwindow/internal/datagen"
)

func main() {
	var (
		scale = flag.String("scale", "default", "stream scale: tiny, default, full")
		seed  = flag.Int64("seed", 1, "RNG seed")
		dump  = flag.String("dump", "", "write one dataset's events as CSV to this path")
		which = flag.String("which", "pamap", "dataset to dump: pamap, synthetic, wiki")
	)
	flag.Parse()

	dss := bench.Datasets(bench.Scale(*scale), *seed)
	bench.PrintTable3(os.Stdout, dss)

	if *dump == "" {
		return
	}
	var ds datagen.Dataset
	switch strings.ToLower(*which) {
	case "pamap":
		ds = dss[0]
	case "synthetic":
		ds = dss[1]
	case "wiki":
		ds = dss[2]
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *which)
		os.Exit(2)
	}
	f, err := os.Create(*dump)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	defer w.Flush()
	for _, e := range ds.Events {
		fmt.Fprintf(w, "%d,%d", e.Row.T, e.Site)
		for _, v := range e.Row.V {
			w.WriteByte(',')
			w.WriteString(strconv.FormatFloat(v, 'g', 8, 64))
		}
		w.WriteByte('\n')
	}
	fmt.Printf("wrote %d events to %s\n", len(ds.Events), *dump)
}
