// Command trackbench regenerates the paper's evaluation tables and
// figures (Tables II–III, Figures 1–4) on the synthetic reproductions of
// the three datasets.
//
// Usage:
//
//	trackbench -exp all            # everything at the default scale
//	trackbench -exp F1 -scale full # Figure 1 at paper-size streams
//	trackbench -exp T3 -scale tiny # quick dataset summary
//
// Experiments: T2 (asymptotic-bound check), T3 (dataset summary),
// F1 (PAMAP-sim panels a–f), F2 (SYNTHETIC a–f), F3 (WIKI-sim a–d + site
// sweep), F4 (space and update rate).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"distwindow"
	"distwindow/internal/bench"
	"distwindow/internal/datagen"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: all, T2, T3, F1, F2, F3, F4")
		scale   = flag.String("scale", "default", "stream scale: tiny, default, full")
		queries = flag.Int("queries", 50, "query points per run (paper: 50)")
		seed    = flag.Int64("seed", 1, "RNG seed for data and protocols")
		csvOut  = flag.String("csv", "", "also write every measured point as CSV to this path")
		reps    = flag.Int("replicas", 1, "average each ε-sweep point over this many seeds (paper: 3)")
	)
	flag.Parse()

	sc := bench.Scale(*scale)
	switch sc {
	case bench.Tiny, bench.Default, bench.Full:
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if sc == bench.Full && *exp != "T3" {
		fmt.Fprintln(os.Stderr, "note: -scale full runs paper-size streams; expect hours, and WIKI-sim at d=7047 needs ~5 GB (dense rows) plus ~800 MB for exact-error evaluation")
	}

	start := time.Now()
	fmt.Printf("building datasets (%s scale, seed %d)...\n", sc, *seed)
	dss := bench.Datasets(sc, *seed)
	pamap, synth, wiki := dss[0], dss[1], dss[2]
	fmt.Printf("datasets ready in %v\n\n", time.Since(start).Round(time.Millisecond))

	want := strings.ToUpper(*exp)
	run := func(id string) bool { return want == "ALL" || want == id }

	var allResults []bench.Result
	defer func() {
		if *csvOut == "" || len(allResults) == 0 {
			return
		}
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		if err := bench.WriteCSV(f, allResults); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		fmt.Printf("wrote %d measured points to %s\n", len(allResults), *csvOut)
	}()

	if run("T3") {
		fmt.Println("### Table III — dataset summary")
		bench.PrintTable3(os.Stdout, dss)
		fmt.Println()
	}

	var f1Eps, f2Eps, f3Eps []bench.Result
	grid := bench.EpsGrid(sc)

	if run("F1") || run("F4") || run("T2") {
		fmt.Println("### Figure 1 — PAMAP-sim: ε sweep (panels a–d)")
		var err error
		f1Eps, err = bench.EpsSweepReplicated(os.Stdout, pamap, bench.FigureProtocols(false), grid, *queries, *seed, *reps)
		check(err)
		allResults = append(allResults, f1Eps...)
		printPanels(f1Eps, "Figure 1")
		if run("F1") {
			fmt.Println("### Figure 1(e,f) — PAMAP-sim: vary sites m (ε=0.05)")
			rs, err := bench.SiteSweep(os.Stdout, pamap, bench.FigureProtocols(false), bench.SiteGrid(sc, false), 0.05, *queries, *seed)
			check(err)
			allResults = append(allResults, rs...)
			printVaryM(rs, "Figure 1")
		}
	}

	if run("F2") || run("F4") || run("T2") {
		fmt.Println("### Figure 2 — SYNTHETIC: ε sweep (panels a–d)")
		var err error
		f2Eps, err = bench.EpsSweepReplicated(os.Stdout, synth, bench.FigureProtocols(false), grid, *queries, *seed, *reps)
		check(err)
		allResults = append(allResults, f2Eps...)
		printPanels(f2Eps, "Figure 2")
		if run("F2") {
			fmt.Println("### Figure 2(e,f) — SYNTHETIC: vary sites m (ε=0.05)")
			rs, err := bench.SiteSweep(os.Stdout, synth, bench.FigureProtocols(false), bench.SiteGrid(sc, false), 0.05, *queries, *seed)
			check(err)
			allResults = append(allResults, rs...)
			printVaryM(rs, "Figure 2")
		}
	}

	if run("F3") || run("F4") {
		fmt.Println("### Figure 3 — WIKI-sim: ε sweep (panels a–d; DA1 omitted as in the paper)")
		var err error
		f3Eps, err = bench.EpsSweepReplicated(os.Stdout, wiki, bench.FigureProtocols(true), grid, *queries, *seed, *reps)
		check(err)
		allResults = append(allResults, f3Eps...)
		printPanels(f3Eps, "Figure 3")
		if run("F3") {
			fmt.Println("### Figure 3 — WIKI-sim: vary sites m ∈ {10,20} (ε=0.05)")
			rs, err := bench.SiteSweep(os.Stdout, wiki, bench.FigureProtocols(true), bench.SiteGrid(sc, true), 0.05, *queries, *seed)
			check(err)
			allResults = append(allResults, rs...)
			printVaryM(rs, "Figure 3")
		}
	}

	if run("F4") {
		fmt.Println("### Figure 4(a–c) — max site space (words) vs ε")
		for _, set := range []struct {
			name string
			rs   []bench.Result
		}{{"PAMAP-sim", f1Eps}, {"SYNTHETIC", f2Eps}, {"WIKI-sim", f3Eps}} {
			bench.PrintFigure(os.Stdout, "Figure 4 space — "+set.name, set.rs,
				func(r bench.Result) float64 { return r.Eps },
				func(r bench.Result) float64 { return float64(r.SiteSpace) })
		}
		fmt.Println("### Figure 4(d) — update rate (rows/s) at ε=0.05, m=20")
		for _, set := range []struct {
			name string
			rs   []bench.Result
		}{{"PAMAP-sim", f1Eps}, {"SYNTHETIC", f2Eps}, {"WIKI-sim", f3Eps}} {
			for _, r := range set.rs {
				if r.Eps == pick(grid) {
					fmt.Printf("  %-10s %-12s %12.0f rows/s\n", set.name, r.Protocol, r.UpdatesPerSec)
				}
			}
		}
		fmt.Println()
	}

	if run("T2") {
		fmt.Println("### Table II — empirical msg ∝ (1/ε)^α exponents (expect ≈2 for sampling, ≈1 for deterministic)")
		for _, set := range []struct {
			name string
			rs   []bench.Result
		}{{"PAMAP-sim", f1Eps}, {"SYNTHETIC", f2Eps}} {
			fmt.Printf("  %s:\n", set.name)
			for p, a := range bench.Table2Check(set.rs) {
				fmt.Printf("    %-12s α = %.2f\n", p, a)
			}
		}
		fmt.Println()
	}

	fmt.Printf("done in %v\n", time.Since(start).Round(time.Second))
}

// pick returns the grid's smallest ε (the paper's default 0.05 when
// present).
func pick(grid []float64) float64 {
	best := grid[0]
	for _, e := range grid {
		if e == 0.05 {
			return e
		}
		if e < best {
			best = e
		}
	}
	return best
}

func printPanels(rs []bench.Result, fig string) {
	bench.PrintFigure(os.Stdout, fig+"(a) avg err vs ε", rs,
		func(r bench.Result) float64 { return r.Eps },
		func(r bench.Result) float64 { return r.AvgErr })
	bench.PrintFigure(os.Stdout, fig+"(b) msg vs ε", rs,
		func(r bench.Result) float64 { return r.Eps },
		func(r bench.Result) float64 { return r.MsgWords })
	bench.PrintFigure(os.Stdout, fig+"(c) avg err vs msg", rs,
		func(r bench.Result) float64 { return r.MsgWords },
		func(r bench.Result) float64 { return r.AvgErr })
	bench.PrintFigure(os.Stdout, fig+"(d) max err vs msg", rs,
		func(r bench.Result) float64 { return r.MsgWords },
		func(r bench.Result) float64 { return r.MaxErr })
	fmt.Println()
}

func printVaryM(rs []bench.Result, fig string) {
	bench.PrintFigure(os.Stdout, fig+"(e) avg err vs m", rs,
		func(r bench.Result) float64 { return float64(r.Sites) },
		func(r bench.Result) float64 { return r.AvgErr })
	bench.PrintFigure(os.Stdout, fig+"(f) msg vs m", rs,
		func(r bench.Result) float64 { return float64(r.Sites) },
		func(r bench.Result) float64 { return r.MsgWords })
	fmt.Println()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

var _ = datagen.Summarize
var _ = distwindow.Protocols
