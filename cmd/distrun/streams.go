package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"distwindow/internal/chaos"
	"distwindow/internal/obs"
	"distwindow/internal/obs/telemetry"
	"distwindow/internal/stream"
	"distwindow/internal/window"
	"distwindow/internal/wire"
)

// runMultiStream demonstrates stream multiplexing: nStream independent
// logical windows share the per-site TCP connections. Each site keeps ONE
// resilient sender; every stream's protocol instance on that site pushes
// through wire.StreamOf, so frames from all streams interleave on one
// backlog with per-(site, stream) sequence spaces and per-stream acks.
// The coordinator keeps a separate estimate per stream, and the run
// checks every stream's covariance error against its own exact window.
// With telemetry on, each site runs one publisher over its shared sender
// (stream "", aggregating rows across the multiplexed streams) and the
// run ends with the coordinator's fleet report.
func runMultiStream(proto string, m, nStream, rows, d int, w int64, eps float64, seed int64, chCfg chaos.Config, tele bool, teleEvery time.Duration, cdc wire.Codec) {
	perStream := rows / nStream
	if perStream < 1 {
		log.Fatalf("-rows %d spread over -streams %d leaves no rows per stream", rows, nStream)
	}
	ids := make([]string, nStream)
	for k := range ids {
		ids[k] = fmt.Sprintf("stream-%03d", k)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	copts := []wire.CoordinatorOption{wire.WithStaleAfter(2 * time.Second)}
	if tele {
		copts = append(copts, wire.WithTelemetry())
	}
	coord := wire.NewCoordinator(d, copts...)
	go coord.Serve(ln)
	fmt.Printf("coordinator listening on %s (%d logical streams over %d connections)\n", ln.Addr(), nStream, m)

	var inj *chaos.Injector
	if chCfg.PDrop > 0 || chCfg.PCut > 0 || chCfg.PDup > 0 || chCfg.PDelay > 0 || chCfg.PDialFail > 0 {
		inj = chaos.New(chCfg)
	}

	// Per-stream seeded workloads: values come from the stream's own rng
	// (so its exact window is reproducible), site assignment from a global
	// one (so streams genuinely interleave across connections).
	type ev struct {
		k    int
		site int
		t    int64
		v    []float64
	}
	siteRng := rand.New(rand.NewSource(seed))
	valRngs := make([]*rand.Rand, nStream)
	for k := range valRngs {
		valRngs[k] = rand.New(rand.NewSource(seed + int64(1000*k)))
	}
	evs := make([]ev, 0, perStream*nStream)
	for i := 0; i < perStream; i++ {
		for k := 0; k < nStream; k++ {
			v := make([]float64, d)
			for j := range v {
				v[j] = valRngs[k].NormFloat64()
			}
			evs = append(evs, ev{k: k, site: siteRng.Intn(m), t: int64(i + 1), v: v})
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	chans := make([]chan ev, m)
	senders := make([]*wire.ResilientSender, m)
	for si := 0; si < m; si++ {
		chans[si] = make(chan ev, 64)
		wg.Add(1)
		go func(si int, in <-chan ev) {
			defer wg.Done()
			dial := func() (io.WriteCloser, error) {
				return net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
			}
			if inj != nil {
				dial = inj.Dial(dial)
			}
			rs, err := wire.DialFunc(dial, wire.WithCodec(cdc), wire.WithResilience(wire.ResilienceConfig{
				BackoffBase: 5 * time.Millisecond,
				BackoffMax:  200 * time.Millisecond,
				JitterSeed:  seed + int64(si),
			}))
			if err != nil {
				log.Fatal(err)
			}
			senders[si] = rs
			defer rs.Close()
			defer func() {
				if n := rs.FlushWait(10 * time.Second); n > 0 {
					log.Printf("site %d: %d frames still undelivered after flush", si, n)
					rs.DiscardPending = true
				}
			}()

			// One telemetry publisher per site over the shared sender; its
			// deferred Stop runs before the sender-close defers, so the final
			// frame goes out on the live connection.
			var rowsN obs.Counter
			if tele {
				pub := telemetry.NewPublisher(
					wire.CollectSite(si, "", proto, rowsN.Load, rs),
					wire.TelemetrySender(rs),
				)
				pub.Start(teleEvery)
				defer pub.Stop()
			}

			// One protocol instance per stream, all sharing this sender.
			observe := make([]func(int64, []float64) error, nStream)
			advance := make([]func(int64) error, nStream)
			cfg := wire.SiteConfig{ID: si, D: d, W: w, Eps: eps}
			for k := 0; k < nStream; k++ {
				out := rs.Stream(ids[k])
				switch proto {
				case "da1":
					s, err := wire.NewDA1Site(cfg, out)
					if err != nil {
						log.Fatal(err)
					}
					observe[k], advance[k] = s.Observe, s.Advance
				case "da2":
					s, err := wire.NewDA2Site(cfg, out)
					if err != nil {
						log.Fatal(err)
					}
					observe[k], advance[k] = s.Observe, s.Advance
				default:
					log.Fatalf("unknown protocol %q", proto)
				}
			}
			for e := range in {
				if err := observe[e.k](e.t, e.v); err != nil {
					log.Printf("site %d stream %s: %v", si, ids[e.k], err)
					for range in {
					}
					return
				}
				rowsN.Inc()
			}
			for k := 0; k < nStream; k++ {
				if err := advance[k](int64(perStream)); err != nil {
					log.Printf("site %d stream %s advance: %v", si, ids[k], err)
				}
			}
		}(si, chans[si])
	}
	for _, e := range evs {
		chans[e.site] <- e
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	time.Sleep(200 * time.Millisecond)

	// Per-stream ground truth: replay each stream's value rng.
	worst, sum := 0.0, 0.0
	worstID := ""
	for k := 0; k < nStream; k++ {
		truth := window.NewExact(w)
		rng := rand.New(rand.NewSource(seed + int64(1000*k)))
		for i := 0; i < perStream; i++ {
			v := make([]float64, d)
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			truth.Add(stream.Row{T: int64(i + 1), V: v})
		}
		e := truth.CovErr(d, coord.SketchOf(ids[k]))
		sum += e
		if e > worst {
			worst, worstID = e, ids[k]
		}
		if nStream <= 8 {
			fmt.Printf("  %s: covariance error %.4f (target ε=%.3g)\n", ids[k], e, eps)
		}
	}

	cm := coord.Metrics()
	var rm wire.ResilientMetrics
	for _, s := range senders {
		if s == nil {
			continue
		}
		sm := s.Metrics()
		rm.Msgs += sm.Msgs
		rm.Acked += sm.Acked
		rm.Replayed += sm.Replayed
		rm.Pending += sm.Pending
	}
	fmt.Printf("protocol:         %s over TCP (%s framing), %d sites × %d streams\n", proto, cdc, m, nStream)
	fmt.Printf("streamed:         %d rows (%d per stream, d=%d) in %v\n",
		len(evs), perStream, d, time.Since(start).Round(time.Millisecond))
	fmt.Printf("covariance error: mean %.4f, worst %.4f (%s), target ε=%.3g\n",
		sum/float64(nStream), worst, worstID, eps)
	fmt.Printf("wire traffic:     %d messages, %.1f KiB payload across %d coordinator streams\n",
		cm.Msgs, float64(cm.Bytes)/1024, cm.Streams)
	fmt.Printf("resilience:       %d frames written (%d replays), %d acked, %d pending; %d duplicate frames dropped\n",
		rm.Msgs, rm.Replayed, rm.Acked, rm.Pending, cm.DupMsgs)
	if inj != nil {
		st := inj.Stats()
		fmt.Printf("chaos:            %d writes (%d dropped, %d cut, %d duped, %d delayed), %d of %d dials refused\n",
			st.Writes, st.Drops, st.Cuts, st.Dups, st.Delays, st.DialFails, st.Dials)
	}
	if tele {
		printFleetReport(coord.Fleet())
	}
	coord.Close()
}
