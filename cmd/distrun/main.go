// Command distrun demonstrates the one-way deterministic protocols over a
// real TCP deployment on localhost: one coordinator process goroutine, m
// site goroutines each with its own TCP connection, streaming a generated
// dataset in real (accelerated) order. It prints the assembled sketch's
// covariance error against the exact window and the wire traffic.
//
// With -pipeline the same workload instead runs in-process through the
// parallel per-site ingestion pipeline (distwindow.New with WithParallel):
// one feeder goroutine per site, site-local work on the pipeline's
// workers, coordinator updates merged in global (T, site) order. -workers
// sizes the pipeline (0 = one per core) and -batch sizes the feeders'
// ObserveBatch runs (1 = row-at-a-time TryObserve); the end-of-run report
// prints the achieved rows/s per worker.
//
// Usage:
//
//	distrun -proto da2 -sites 8 -rows 30000 -d 24
//	distrun -proto da2 -sites 8 -rows 30000 -d 24 -pipeline -workers 4 -batch 64
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"text/tabwriter"

	"distwindow"
	"distwindow/internal/audit"
	"distwindow/internal/chaos"
	"distwindow/internal/obs"
	"distwindow/internal/obs/telemetry"
	"distwindow/internal/stream"
	"distwindow/internal/trace"
	"distwindow/internal/window"
	"distwindow/internal/wire"
)

func main() {
	var (
		proto   = flag.String("proto", "da2", "protocol: da1 or da2")
		codecF  = flag.String("codec", "gob", "wire framing: gob (legacy) or v2 (binary, CRC-checked, coalesced writes)")
		m       = flag.Int("sites", 8, "number of site connections")
		rows    = flag.Int("rows", 30_000, "rows to stream")
		d       = flag.Int("d", 24, "row dimension")
		w       = flag.Int64("w", 8_000, "window length in ticks")
		eps     = flag.Float64("eps", 0.05, "target covariance error")
		seed    = flag.Int64("seed", 1, "RNG seed")
		metrics = flag.String("metrics", "", "serve GET /metrics and /healthz on this address (e.g. :9090) while streaming")
		pprofF  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the -metrics address")
		traceN  = flag.Int("trace-sample", 0, "causal tracing: trace 1-in-N ingested rows (0 = off); export at /debug/trace and -trace-out")
		traceO  = flag.String("trace-out", "", "write the Chrome trace-event JSON to this path at exit (requires -trace-sample)")
		liveAud = flag.Bool("live-audit", false, "run the live ε-error auditor against the coordinator's sketch; panel at /debug/audit")
		pipe    = flag.Bool("pipeline", false, "run in-process through the parallel per-site pipeline instead of TCP")
		pipeW   = flag.Int("workers", 0, "pipeline worker goroutines, 0 = one per core (requires -pipeline)")
		batch   = flag.Int("batch", 64, "rows per ObserveBatch run in the pipeline feeders, 1 = row-at-a-time (requires -pipeline)")
		nStream = flag.Int("streams", 1, "multiplex this many logical streams over the per-site connections (each stream is an independent window; implies -resilient)")

		tele      = flag.Bool("telemetry", false, "fleet telemetry: sites publish counter frames over their wire connections; coordinator aggregates, serves Prometheus /metrics and /debug/fleet, and prints a fleet report at exit")
		teleEvery = flag.Duration("telemetry-interval", 100*time.Millisecond, "how often each site publishes a telemetry frame (requires -telemetry)")

		resilient = flag.Bool("resilient", false, "use acknowledged resilient senders (seq/ack frames, reconnect + replay) instead of bare connections")
		chSeed    = flag.Int64("chaos-seed", 1, "seed for the chaos fault stream")
		chDrop    = flag.Float64("chaos-drop", 0, "chaos: probability a frame write is accepted but never delivered (requires -resilient)")
		chCut     = flag.Float64("chaos-cut", 0, "chaos: probability a frame write is cut mid-frame (requires -resilient)")
		chDup     = flag.Float64("chaos-dup", 0, "chaos: probability a frame write is delivered twice (requires -resilient)")
		chDelay   = flag.Float64("chaos-delay", 0, "chaos: probability a frame write is delayed (requires -resilient)")
		chDial    = flag.Float64("chaos-dialfail", 0, "chaos: probability a dial attempt is refused (requires -resilient)")
	)
	flag.Parse()

	cdc, ok := wire.CodecByName(*codecF)
	if !ok {
		log.Fatalf("unknown -codec %q (want gob or v2)", *codecF)
	}
	chaosOn := *chDrop > 0 || *chCut > 0 || *chDup > 0 || *chDelay > 0 || *chDial > 0
	if chaosOn && !*resilient {
		log.Fatal("-chaos-* flags inject faults the bare sender cannot survive; add -resilient")
	}

	if *pipe {
		if *nStream > 1 {
			log.Fatal("-streams multiplexes TCP connections; it cannot be combined with -pipeline")
		}
		if *tele {
			log.Fatal("-telemetry piggybacks frames on the wire; it cannot be combined with -pipeline")
		}
		if *batch < 1 {
			log.Fatal("-batch must be ≥ 1")
		}
		runPipeline(*proto, *m, *rows, *d, *w, *eps, *seed, *pipeW, *batch)
		return
	}
	if *nStream > 1 {
		runMultiStream(*proto, *m, *nStream, *rows, *d, *w, *eps, *seed, chaos.Config{
			Seed: *chSeed, PDrop: *chDrop, PCut: *chCut, PDup: *chDup,
			PDelay: *chDelay, PDialFail: *chDial,
		}, *tele, *teleEvery, cdc)
		return
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// Tracing: every site goroutine owns a Tracer (the current-span chain
	// is single-goroutine) but all record into one shared ring, and the
	// coordinator's apply spans join the sites' traces via the context the
	// frames carry.
	var ring *trace.Ring
	var copts []wire.CoordinatorOption
	if *traceN > 0 {
		ring = trace.NewRing(0)
		copts = append(copts, wire.WithTracer(trace.New(ring, *traceN)))
	}
	if *tele {
		copts = append(copts, wire.WithTelemetry())
	}
	if *resilient {
		copts = append(copts, wire.WithStaleAfter(2*time.Second))
	}
	coord := wire.NewCoordinator(*d, copts...)

	// One shared injector gives the whole run a single seeded fault stream;
	// every site's dials and connections draw from it.
	var inj *chaos.Injector
	if chaosOn {
		inj = chaos.New(chaos.Config{
			Seed: *chSeed, PDrop: *chDrop, PCut: *chCut, PDup: *chDup,
			PDelay: *chDelay, PDialFail: *chDial,
		})
	}
	// The live auditor shadows the exact union window in the coordinator
	// process and checks the assembled sketch against ε as rows stream in.
	// Transient violations are expected over a real network: each audit
	// tick races the frames still in flight between sites and coordinator.
	var aud *audit.Auditor
	if *liveAud {
		acfg := audit.Config{
			D: *d, W: *w, Eps: *eps,
			Sketch: coord.Sketch,
			Words:  func() int64 { _, bytes := coord.Stats(); return bytes / 8 },
		}
		if *resilient {
			acfg.DegradedSites = coord.CheckLiveness
		}
		aud, err = audit.New(acfg)
		if err != nil {
			log.Fatal(err)
		}
	}

	go coord.Serve(ln)
	fmt.Printf("coordinator listening on %s\n", ln.Addr())
	if *metrics != "" {
		var opts []obs.MuxOption
		if *pprofF {
			opts = append(opts, obs.WithPprof())
		}
		if ring != nil {
			opts = append(opts, obs.WithHandler("/debug/trace", ring.Handler()))
		}
		if aud != nil {
			opts = append(opts, obs.WithHandler("/debug/audit", aud.Handler()))
		}
		go func() {
			if err := http.ListenAndServe(*metrics, coord.MetricsMux(opts...)); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics\n", *metrics)
		if *tele {
			fmt.Printf("fleet dashboard on http://%s/debug/fleet\n", *metrics)
		}
	}

	// Generate the whole event stream up front so the exact window is
	// reproducible ground truth.
	rng := rand.New(rand.NewSource(*seed))
	type ev struct {
		site int
		t    int64
		v    []float64
	}
	evs := make([]ev, *rows)
	for i := range evs {
		v := make([]float64, *d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		evs[i] = ev{site: rng.Intn(*m), t: int64(i + 1), v: v}
	}

	// Stream in global timestamp order: the main loop walks the events and
	// dispatches each to its site's channel, so the sites progress roughly
	// in step (and the auditor's shadow window sees rows in order). Each
	// site goroutine owns its TCP connection and, when tracing, its own
	// Tracer over the shared ring.
	start := time.Now()
	var wg sync.WaitGroup
	chans := make([]chan ev, *m)
	resSenders := make([]*wire.ResilientSender, *m)
	for si := 0; si < *m; si++ {
		chans[si] = make(chan ev, 64)
		wg.Add(1)
		go func(si int, in <-chan ev) {
			defer wg.Done()
			drain := func() {
				for range in {
				}
			}
			var sender wire.Sender
			if *resilient {
				dial := func() (io.WriteCloser, error) {
					return net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
				}
				if inj != nil {
					dial = inj.Dial(dial)
				}
				rs, err := wire.DialFunc(dial, wire.WithCodec(cdc), wire.WithResilience(wire.ResilienceConfig{
					BackoffBase: 5 * time.Millisecond,
					BackoffMax:  200 * time.Millisecond,
					JitterSeed:  *chSeed + int64(si),
				}))
				if err != nil {
					log.Fatal(err)
				}
				resSenders[si] = rs
				sender = rs
				defer func() {
					if n := rs.FlushWait(10 * time.Second); n > 0 {
						log.Printf("site %d: %d frames still undelivered after flush", si, n)
					}
					if err := rs.Close(); err != nil {
						var pe *wire.PendingError
						if errors.As(err, &pe) {
							log.Printf("site %d: discarding %d undelivered frames at shutdown", si, pe.Pending)
							rs.DiscardPending = true
						}
						rs.Close()
					}
				}()
			} else {
				conn, err := net.Dial("tcp", ln.Addr().String())
				if err != nil {
					log.Printf("site %d: %v", si, err)
					drain()
					return
				}
				cs, err := wire.NewSender(conn, wire.WithCodec(cdc))
				if err != nil {
					log.Fatal(err)
				}
				defer cs.Close()
				sender = cs
			}
			// Telemetry rides the same connection as the estimates, best
			// effort and outside the seq/ack space; the deferred Stop runs
			// before the sender closes, so the final frame (with the site's
			// finished counters) still goes out.
			var rowsN obs.Counter
			if *tele {
				pub := telemetry.NewPublisher(
					wire.CollectSite(si, "", *proto, rowsN.Load, resSenders[si]),
					wire.TelemetrySender(sender),
				)
				pub.Start(*teleEvery)
				defer pub.Stop()
			}
			cfg := wire.SiteConfig{ID: si, D: *d, W: *w, Eps: *eps}
			var observe func(t int64, v []float64) error
			var advance func(t int64) error
			switch *proto {
			case "da1":
				s, err := wire.NewDA1Site(cfg, sender)
				if err != nil {
					log.Fatal(err)
				}
				if ring != nil {
					s.SetTracer(trace.New(ring, *traceN))
				}
				observe, advance = s.Observe, s.Advance
			case "da2":
				s, err := wire.NewDA2Site(cfg, sender)
				if err != nil {
					log.Fatal(err)
				}
				if ring != nil {
					s.SetTracer(trace.New(ring, *traceN))
				}
				observe, advance = s.Observe, s.Advance
			default:
				log.Fatalf("unknown protocol %q", *proto)
			}
			for e := range in {
				if err := observe(e.t, e.v); err != nil {
					log.Printf("site %d: %v", si, err)
					drain()
					return
				}
				rowsN.Inc()
			}
			if err := advance(int64(*rows)); err != nil {
				log.Printf("site %d: %v", si, err)
			}
		}(si, chans[si])
	}
	for _, e := range evs {
		chans[e.site] <- e
		if aud != nil {
			aud.Observe(e.t, e.v)
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	// Let the coordinator drain in-flight frames before measuring.
	time.Sleep(200 * time.Millisecond)

	truth := window.NewExact(*w)
	for _, e := range evs {
		truth.Add(stream.Row{T: e.t, V: e.v})
	}
	b := coord.Sketch()
	cm := coord.Metrics()
	fmt.Printf("protocol:         %s over TCP (%s framing), %d sites\n", *proto, cdc, *m)
	fmt.Printf("streamed:         %d rows (d=%d) in %v\n", *rows, *d, time.Since(start).Round(time.Millisecond))
	fmt.Printf("covariance error: %.4f (target ε=%.3g)\n", truth.CovErr(*d, b), *eps)
	fmt.Printf("wire traffic:     %d messages, %.1f KiB payload\n", cm.Msgs, float64(cm.Bytes)/1024)
	fmt.Printf("message kinds:    %d direction adds, %d removes, %d sum deltas (%d rejected)\n",
		cm.DirectionAdds, cm.DirectionRemoves, cm.SumDeltas, cm.BadMsgs)
	raw := float64(truth.Len()*(*d+2)) * 8 / 1024
	fmt.Printf("vs. shipping the active window: %.1f KiB\n", raw)
	if *resilient {
		var rm wire.ResilientMetrics
		for _, s := range resSenders {
			if s == nil {
				continue
			}
			m := s.Metrics()
			rm.Msgs += m.Msgs
			rm.Acked += m.Acked
			rm.Replayed += m.Replayed
			rm.Pending += m.Pending
			rm.DialAttempts += m.DialAttempts
			rm.DialFailures += m.DialFailures
		}
		fmt.Printf("resilience:       %d frames written (%d replays), %d acked, %d pending; %d dials (%d failed)\n",
			rm.Msgs, rm.Replayed, rm.Acked, rm.Pending, rm.DialAttempts, rm.DialFailures)
		fmt.Printf("dedup:            %d duplicate frames dropped, %d acks sent, %d sites stale\n",
			cm.DupMsgs, cm.AckedMsgs, cm.StaleSites)
	}
	if inj != nil {
		st := inj.Stats()
		fmt.Printf("chaos:            %d writes (%d dropped, %d cut, %d duped, %d delayed), %d read cuts, %d of %d dials refused\n",
			st.Writes, st.Drops, st.Cuts, st.Dups, st.Delays, st.ReadCuts, st.DialFails, st.Dials)
	}
	if aud != nil {
		aud.Advance(int64(*rows))
		aud.Tick()
		am := aud.Metrics()
		fmt.Printf("live audit:       %d ticks, %d violations, last err %.4f, max %.4f (ε=%g)\n",
			am.Ticks, am.Violations, am.LastErr, am.MaxErr, am.Eps)
	}
	if *tele {
		// The coordinator contributes its own auditor figures as site -1, so
		// the paper-native series (ε-headroom, words/window) appear in the
		// fleet view next to the sites' ingest series.
		if aud != nil {
			am := aud.Metrics()
			coord.Fleet().Record(wire.TeleFrame{
				Site: -1, Proto: *proto, UnixNs: time.Now().UnixNano(),
				Eps: am.Eps, Err: am.LastErr, Headroom: am.Headroom,
				WordsPerWindow: am.WordsPerWindow, Violations: am.Violations,
			})
		}
		printFleetReport(coord.Fleet())
	}
	if *traceO != "" {
		if ring == nil {
			log.Fatal("-trace-out requires -trace-sample")
		}
		js, err := ring.ChromeTrace()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*traceO, js, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace:            %s (%d spans recorded)\n", *traceO, ring.Recorded())
	}
	coord.Close()
}

// runPipeline streams the same generated dataset through the in-process
// parallel pipeline: the event stream is partitioned by site and each
// site's subsequence is fed by its own goroutine, so ingestion parallelism
// comes from the pipeline's workers rather than TCP connections. Feeders
// hand rows to the lane rings in ObserveBatch runs of the given batch size
// (one ring block and one worker wakeup per run); batch 1 falls back to
// row-at-a-time TryObserve.
func runPipeline(proto string, m, rows, d int, w int64, eps float64, seed int64, workers, batch int) {
	var p distwindow.Protocol
	switch proto {
	case "da1":
		p = distwindow.DA1
	case "da2":
		p = distwindow.DA2
	default:
		log.Fatalf("-pipeline supports da1 and da2, not %q", proto)
	}
	tr, err := distwindow.New(distwindow.Config{
		Protocol: p, D: d, W: w, Eps: eps, Sites: m, Seed: seed,
	}, distwindow.WithParallel(workers))
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	// Same generator and seed as the TCP path, so the two modes stream the
	// identical dataset; rows are partitioned by site for the feeders.
	rng := rand.New(rand.NewSource(seed))
	rowsOf := make([][]distwindow.Row, m)
	var all []distwindow.Row
	for i := 0; i < rows; i++ {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		r := distwindow.Row{T: int64(i + 1), V: v}
		si := rng.Intn(m)
		rowsOf[si] = append(rowsOf[si], r)
		all = append(all, r)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for si := 0; si < m; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			rs := rowsOf[si]
			if batch <= 1 {
				for _, r := range rs {
					if err := tr.TryObserve(si, r); err != nil {
						log.Printf("site %d: %v", si, err)
						return
					}
				}
				return
			}
			for len(rs) > 0 {
				n := min(batch, len(rs))
				if _, err := tr.ObserveBatch(si, rs[:n]); err != nil {
					log.Printf("site %d: %v", si, err)
					return
				}
				rs = rs[n:]
			}
		}(si)
	}
	wg.Wait()
	tr.Drain()
	elapsed := time.Since(start)

	truth := window.NewExact(w)
	for _, r := range all {
		truth.Add(stream.Row{T: r.T, V: r.V})
	}
	b := tr.Sketch()
	met := tr.Metrics()
	fmt.Printf("protocol:         %s in-process pipeline, %d sites\n", proto, m)
	fmt.Printf("streamed:         %d rows (d=%d) in %v\n", rows, d, elapsed.Round(time.Millisecond))
	nw := tr.ParallelWorkers()
	rate := float64(rows) / elapsed.Seconds()
	fmt.Printf("ingest:           %.0f rows/s over %d workers (%.0f rows/s/worker, batch %d)\n",
		rate, nw, rate/float64(nw), batch)
	fmt.Printf("covariance error: %.4f (target ε=%.3g)\n", truth.CovErr(d, b), eps)
	fmt.Printf("traffic:          %d msgs up, %.1f KiB equivalent payload\n",
		met.Net.MsgsUp, float64(met.Net.WordsUp)*8/1024)
	raw := float64(truth.Len()*(d+2)) * 8 / 1024
	fmt.Printf("vs. shipping the active window: %.1f KiB\n", raw)
}

// printFleetReport renders the coordinator's fleet telemetry view as the
// end-of-run table: one row per (site, stream) series with the latest
// counters, ring-derived rates and degradation, plus the fleet totals.
// Site -1 is the coordinator's own auditor series.
func printFleetReport(f *telemetry.Fleet) {
	m := f.Snapshot()
	fmt.Printf("fleet telemetry:  %d series across %d sites, %d frames received (%d dropped)\n",
		len(m.Series), m.Sites, m.FramesTotal, m.DroppedFrames)
	if len(m.DegradedSites) > 0 {
		fmt.Printf("                  degraded sites: %v\n", m.DegradedSites)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "  site\tstream\tproto\trows\trows/s\twords\treplays\tbacklog\tε-headroom\twords/window\t")
	for _, v := range m.Series {
		headroom := "-"
		if v.Eps > 0 {
			headroom = fmt.Sprintf("%.4f", v.Headroom)
		}
		wpw := "-"
		if v.WordsPerWindow > 0 {
			wpw = fmt.Sprintf("%.0f", v.WordsPerWindow)
		}
		stream := v.Stream
		if stream == "" {
			stream = "default"
		}
		deg := ""
		if v.Degraded {
			deg = " (degraded)"
		}
		fmt.Fprintf(tw, "  %d\t%s\t%s\t%d\t%.0f\t%d\t%d\t%d\t%s\t%s\t%s\n",
			v.Site, stream, v.Proto, v.Rows, v.RowsPerSec, v.Words,
			v.Replays, v.Backlog, headroom, wpw, deg)
	}
	tw.Flush()
	if m.UpdateLat.Count > 0 {
		fmt.Printf("  update latency: %d samples, p50 %v, p99 %v\n",
			m.UpdateLat.Count,
			time.Duration(m.UpdateLat.QuantileUpperNs(0.5)),
			time.Duration(m.UpdateLat.QuantileUpperNs(0.99)))
	}
}
