// Command distrun demonstrates the one-way deterministic protocols over a
// real TCP deployment on localhost: one coordinator process goroutine, m
// site goroutines each with its own TCP connection, streaming a generated
// dataset in real (accelerated) order. It prints the assembled sketch's
// covariance error against the exact window and the wire traffic.
//
// Usage:
//
//	distrun -proto da2 -sites 8 -rows 30000 -d 24
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"distwindow/internal/stream"
	"distwindow/internal/window"
	"distwindow/internal/wire"
)

func main() {
	var (
		proto   = flag.String("proto", "da2", "protocol: da1 or da2")
		m       = flag.Int("sites", 8, "number of site connections")
		rows    = flag.Int("rows", 30_000, "rows to stream")
		d       = flag.Int("d", 24, "row dimension")
		w       = flag.Int64("w", 8_000, "window length in ticks")
		eps     = flag.Float64("eps", 0.05, "target covariance error")
		seed    = flag.Int64("seed", 1, "RNG seed")
		metrics = flag.String("metrics", "", "serve GET /metrics and /healthz on this address (e.g. :9090) while streaming")
	)
	flag.Parse()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	coord := wire.NewCoordinator(*d)
	go coord.Serve(ln)
	fmt.Printf("coordinator listening on %s\n", ln.Addr())
	if *metrics != "" {
		go func() {
			if err := http.ListenAndServe(*metrics, coord.MetricsMux()); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics\n", *metrics)
	}

	// Generate the whole event stream up front so the exact window is
	// reproducible ground truth.
	rng := rand.New(rand.NewSource(*seed))
	type ev struct {
		site int
		t    int64
		v    []float64
	}
	evs := make([]ev, *rows)
	for i := range evs {
		v := make([]float64, *d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		evs[i] = ev{site: rng.Intn(*m), t: int64(i + 1), v: v}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for si := 0; si < *m; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				log.Printf("site %d: %v", si, err)
				return
			}
			sender := wire.NewConnSender(conn)
			defer sender.Close()
			cfg := wire.SiteConfig{ID: si, D: *d, W: *w, Eps: *eps}
			var observe func(t int64, v []float64) error
			var advance func(t int64) error
			switch *proto {
			case "da1":
				s, err := wire.NewDA1Site(cfg, sender)
				if err != nil {
					log.Fatal(err)
				}
				observe, advance = s.Observe, s.Advance
			case "da2":
				s, err := wire.NewDA2Site(cfg, sender)
				if err != nil {
					log.Fatal(err)
				}
				observe, advance = s.Observe, s.Advance
			default:
				log.Fatalf("unknown protocol %q", *proto)
			}
			for _, e := range evs {
				if e.site != si {
					continue
				}
				if err := observe(e.t, e.v); err != nil {
					log.Printf("site %d: %v", si, err)
					return
				}
			}
			if err := advance(int64(*rows)); err != nil {
				log.Printf("site %d: %v", si, err)
			}
		}(si)
	}
	wg.Wait()
	// Let the coordinator drain in-flight frames before measuring.
	time.Sleep(200 * time.Millisecond)

	truth := window.NewExact(*w)
	for _, e := range evs {
		truth.Add(stream.Row{T: e.t, V: e.v})
	}
	b := coord.Sketch()
	cm := coord.Metrics()
	fmt.Printf("protocol:         %s over TCP, %d sites\n", *proto, *m)
	fmt.Printf("streamed:         %d rows (d=%d) in %v\n", *rows, *d, time.Since(start).Round(time.Millisecond))
	fmt.Printf("covariance error: %.4f (target ε=%.3g)\n", truth.CovErr(*d, b), *eps)
	fmt.Printf("wire traffic:     %d messages, %.1f KiB payload\n", cm.Msgs, float64(cm.Bytes)/1024)
	fmt.Printf("message kinds:    %d direction adds, %d removes, %d sum deltas (%d rejected)\n",
		cm.DirectionAdds, cm.DirectionRemoves, cm.SumDeltas, cm.BadMsgs)
	raw := float64(truth.Len()*(*d+2)) * 8 / 1024
	fmt.Printf("vs. shipping the active window: %.1f KiB\n", raw)
	coord.Close()
}
