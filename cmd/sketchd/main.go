// Command sketchd maintains a covariance sketch over an event stream read
// from stdin (or a file) in the CSV format `timestamp,site,v1,...,vd`, and
// prints the sketch, its spectrum and the protocol's cost at the end — a
// pipe-friendly way to run the trackers on real data.
//
// Usage:
//
//	datagen -scale tiny -dump events.csv -which pamap
//	sketchd -proto DA2 -w 3000000 -eps 0.05 -sites 20 < events.csv
//
// With -audit the exact window matrix is retained and the final
// covariance error printed (memory: O(window)).
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync/atomic"

	"distwindow"
	"distwindow/internal/csvio"
	"distwindow/internal/obs"
	"distwindow/internal/stream"
	"distwindow/internal/window"
	"distwindow/mat"
)

func main() {
	var (
		proto   = flag.String("proto", "DA2", "protocol (see distwindow.Protocols)")
		w       = flag.Int64("w", 1_000_000, "window length in ticks")
		eps     = flag.Float64("eps", 0.05, "target covariance error")
		sites   = flag.Int("sites", 20, "number of sites (site ids in input must be < this)")
		ell     = flag.Int("ell", 0, "sample size override for sampling protocols")
		seed    = flag.Int64("seed", 1, "RNG seed")
		file    = flag.String("in", "-", "input file, - for stdin")
		audit   = flag.Bool("audit", false, "retain the exact window and print the final covariance error")
		topk    = flag.Int("top", 5, "print the top-k singular values of the sketch")
		save    = flag.String("checkpoint", "", "write a checkpoint of the tracker state to this path at exit (DA1/DA2 only)")
		load    = flag.String("resume", "", "resume from a checkpoint written by -checkpoint")
		metrics = flag.String("metrics", "", "serve GET /metrics and /healthz on this address (e.g. :9090) while ingesting")
		pprofF  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the -metrics address")
		traceN  = flag.Int("trace-sample", 0, "causal tracing: trace 1-in-N ingested rows (0 = off); export at /debug/trace and -trace-out")
		traceO  = flag.String("trace-out", "", "write the Chrome trace-event JSON to this path at exit (requires -trace-sample)")
		liveAud = flag.Bool("live-audit", false, "run the live ε-error auditor (shadow exact window); results in /metrics and /debug/audit")
		chRest  = flag.Int("chaos-restart", 0, "crash-recovery drill: checkpoint + restore the tracker every N events (DA1/DA2 only); the final sketch must match an uninterrupted run")
		serve   = flag.String("serve", "", "multi-tenant mode: serve a stream registry HTTP API on this address (open/ingest/query/evict streams); ignores the stdin pipeline flags")
	)
	flag.Parse()
	if *serve != "" {
		runServe(*serve, *pprofF)
		return
	}
	if *chRest > 0 && (*liveAud) {
		log.Fatal("-chaos-restart cannot be combined with -live-audit: the auditor's shadow window does not survive the restore")
	}

	// Construction-time options shared by every build path (initial New,
	// -resume, chaos restarts): tracing and audit ride the constructor so
	// no row is ever ingested unobserved.
	var buildOpts []distwindow.Option
	if *traceN > 0 {
		buildOpts = append(buildOpts, distwindow.WithTracing(distwindow.TraceConfig{SampleEvery: *traceN}))
	}
	if *liveAud {
		buildOpts = append(buildOpts, distwindow.WithAudit(distwindow.AuditConfig{}))
	}

	// The tracker is built lazily (its dimension comes from the first
	// event), so the metrics endpoint reads it through an atomic pointer
	// and answers 503 until the first event arrives. Debug endpoints that
	// depend on the tracker resolve the pointer per request.
	var trP atomic.Pointer[distwindow.Tracker]
	if *metrics != "" {
		lazy := func(h func(*distwindow.Tracker) http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				t := trP.Load()
				if t == nil {
					http.Error(w, "tracker not built yet", http.StatusServiceUnavailable)
					return
				}
				h(t).ServeHTTP(w, r)
			})
		}
		var opts []obs.MuxOption
		if *pprofF {
			opts = append(opts, obs.WithPprof())
		}
		if *traceN > 0 {
			opts = append(opts, obs.WithHandler("/debug/trace",
				lazy((*distwindow.Tracker).TraceHandler)))
		}
		if *liveAud {
			opts = append(opts, obs.WithHandler("/debug/audit",
				lazy((*distwindow.Tracker).AuditHandler)))
		}
		mux := obs.Mux(
			func() (any, bool) {
				t := trP.Load()
				if t == nil {
					return nil, false
				}
				return t.Metrics(), true
			},
			nil,
			opts...,
		)
		go func() {
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	in := os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}

	var (
		tr       *distwindow.Tracker
		u        *window.Union
		n        int
		dim      int
		restarts int
	)
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(err)
		}
		if *audit || *liveAud {
			log.Fatal("-audit/-live-audit cannot be combined with -resume: the exact window before the checkpoint is gone")
		}
		tr, err = distwindow.Restore(f, buildOpts...)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		dim = tr.Config().D
		trP.Store(tr)
	}
	_, _, err := csvio.Read(in, func(e csvio.Event) error {
		if tr == nil {
			dim = len(e.Row.V)
			var err error
			tr, err = distwindow.New(distwindow.Config{
				Protocol: distwindow.Protocol(*proto),
				D:        dim,
				W:        *w,
				Eps:      *eps,
				Sites:    *sites,
				Ell:      *ell,
				Seed:     *seed,
			}, buildOpts...)
			if err != nil {
				return err
			}
			trP.Store(tr)
			if *audit {
				u = window.NewUnion(*w, dim)
			}
		}
		if e.Site >= *sites {
			return fmt.Errorf("site %d ≥ -sites %d", e.Site, *sites)
		}
		if err := tr.TryObserve(e.Site, distwindow.Row{T: e.Row.T, V: e.Row.V}); err != nil && !errors.Is(err, distwindow.ErrStale) {
			return err
		}
		if u != nil {
			u.Add(stream.Row{T: e.Row.T, V: e.Row.V})
		}
		n++
		// The crash-recovery drill simulates a process restart mid-stream:
		// serialize the tracker, throw the live one away, and resume from
		// the checkpoint bytes. The remainder of the stream must produce
		// the sketch an uninterrupted run would have.
		if *chRest > 0 && n%*chRest == 0 {
			var buf bytes.Buffer
			if err := tr.Checkpoint(&buf); err != nil {
				return fmt.Errorf("chaos restart at event %d: checkpoint: %w", n, err)
			}
			restored, err := distwindow.Restore(&buf, buildOpts...)
			if err != nil {
				return fmt.Errorf("chaos restart at event %d: restore: %w", n, err)
			}
			tr = restored
			trP.Store(tr)
			restarts++
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if tr == nil {
		log.Fatal("no events read")
	}

	b := tr.Sketch()
	fmt.Printf("protocol:   %s  (d=%d, %d events)\n", tr.Name(), dim, n)
	fmt.Printf("sketch:     %d×%d\n", b.Rows(), b.Cols())
	svd := mat.ThinSVD(b)
	k := *topk
	if k > len(svd.S) {
		k = len(svd.S)
	}
	fmt.Printf("top-%d σ²:  ", k)
	for i := 0; i < k; i++ {
		fmt.Printf(" %.4g", svd.S[i]*svd.S[i])
	}
	fmt.Println()
	fmt.Printf("cost:       %s\n", distwindow.FormatStats(tr.Stats()))
	if restarts > 0 {
		fmt.Printf("restarts:   %d (checkpoint + restore every %d events)\n", restarts, *chRest)
	}
	if u != nil {
		fmt.Printf("cov error:  %.5f (target ε=%g)\n", u.ErrOf(b), *eps)
	}
	if am, ok := tr.Audit(); ok {
		fmt.Printf("live audit: %d ticks, %d violations, last err %.5f, max %.5f (ε=%g), %.0f words/window\n",
			am.Ticks, am.Violations, am.LastErr, am.MaxErr, am.Eps, am.WordsPerWindow)
	}
	if *traceO != "" {
		js, err := tr.TraceChrome()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*traceO, js, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace:      %s (%d spans)\n", *traceO, tr.TraceSpans())
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.Checkpoint(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpoint: %s\n", *save)
	}
}
