package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"distwindow"
)

func doReq(t *testing.T, h http.Handler, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeJSON(t *testing.T, w *httptest.ResponseRecorder) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatalf("bad JSON %q: %v", w.Body.String(), err)
	}
	return m
}

// csvRows builds n in-order events for site 0 in the d=3 wire format.
func csvRows(start, n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%d,0,%d,1,0.5\n", start+i, i%7)
	}
	return sb.String()
}

func TestServeLifecycle(t *testing.T) {
	reg := distwindow.NewRegistry()
	defer reg.Close()
	h := newServeHandler(reg, false)

	if w := doReq(t, h, "POST", "/open?stream=a&proto=DA1&d=3&w=1000&snap_every=16", ""); w.Code != 200 {
		t.Fatalf("open: %d %s", w.Code, w.Body.String())
	}
	if w := doReq(t, h, "POST", "/ingest?stream=a", csvRows(1, 200)); w.Code != 200 {
		t.Fatalf("ingest: %d %s", w.Code, w.Body.String())
	} else if m := decodeJSON(t, w); m["rows"].(float64) != 200 {
		t.Fatalf("ingest counted %v rows, want 200", m["rows"])
	}

	w := doReq(t, h, "GET", "/query?stream=a&top=2", "")
	if w.Code != 200 {
		t.Fatalf("query: %d %s", w.Code, w.Body.String())
	}
	m := decodeJSON(t, w)
	if m["protocol"] != "DA1" {
		t.Errorf("protocol = %v, want DA1", m["protocol"])
	}
	if v := m["snapshotVersion"].(float64); v < 2 {
		t.Errorf("snapshotVersion = %v, want ≥2 after 200 rows at cadence 16", v)
	}
	// Ingest publishes an exact snapshot at the end of every batch, so a
	// query after the ingest response sees all of the batch's rows even
	// when the cadence has not elapsed.
	if r := m["snapshotRows"].(float64); r != 200 {
		t.Errorf("snapshotRows = %v, want 200 (batch-boundary publish)", r)
	}
	if sg, ok := m["topSigma2"].([]any); !ok || len(sg) != 2 {
		t.Errorf("topSigma2 = %v, want 2 values", m["topSigma2"])
	}

	w = doReq(t, h, "GET", "/pca?stream=a&k=2", "")
	if w.Code != 200 {
		t.Fatalf("pca: %d %s", w.Code, w.Body.String())
	}
	m = decodeJSON(t, w)
	if comps := m["components"].([]any); len(comps) != 2 || len(comps[0].([]any)) != 3 {
		t.Errorf("components shape = %dx?, want 2x3", len(comps))
	}

	w = doReq(t, h, "POST", "/score?stream=a", `{"v":[1,1,0.5],"k":2}`)
	if w.Code != 200 {
		t.Fatalf("score: %d %s", w.Code, w.Body.String())
	}
	m = decodeJSON(t, w)
	if _, ok := m["score"].(float64); !ok {
		t.Errorf("score missing: %v", m)
	}

	if w := doReq(t, h, "POST", "/evict?stream=a", ""); w.Code != 200 {
		t.Fatalf("evict: %d %s", w.Code, w.Body.String())
	}
	if w := doReq(t, h, "GET", "/query?stream=a", ""); w.Code != http.StatusNotFound {
		t.Errorf("query after evict: %d, want 404", w.Code)
	}
	if w := doReq(t, h, "POST", "/ingest?stream=a", csvRows(300, 1)); w.Code != http.StatusNotFound {
		t.Errorf("ingest after evict: %d, want 404", w.Code)
	}
}

func TestServeBadRequests(t *testing.T) {
	reg := distwindow.NewRegistry()
	defer reg.Close()
	h := newServeHandler(reg, false)

	if w := doReq(t, h, "GET", "/query?stream=nope", ""); w.Code != http.StatusNotFound {
		t.Errorf("unknown query: %d, want 404", w.Code)
	}
	if w := doReq(t, h, "POST", "/evict?stream=nope", ""); w.Code != http.StatusNotFound {
		t.Errorf("unknown evict: %d, want 404", w.Code)
	}
	if w := doReq(t, h, "POST", "/open?stream=x&proto=DA1&d=oops", ""); w.Code != http.StatusBadRequest {
		t.Errorf("bad d: %d, want 400", w.Code)
	}
	doReq(t, h, "POST", "/open?stream=x&proto=DA1&d=3&w=100", "")
	if w := doReq(t, h, "GET", "/query?stream=x&top=-1", ""); w.Code != http.StatusBadRequest {
		t.Errorf("negative top: %d, want 400", w.Code)
	}
	if w := doReq(t, h, "GET", "/pca?stream=x&k=0", ""); w.Code != http.StatusBadRequest {
		t.Errorf("k=0 pca: %d, want 400", w.Code)
	}
	if w := doReq(t, h, "POST", "/score?stream=x", `{"v":[]}`); w.Code != http.StatusBadRequest {
		t.Errorf("empty vector: %d, want 400", w.Code)
	}
}

// TestServeGateLeak verifies the per-stream gate map does not accumulate
// entries for unknown ids or evicted streams — the leak the old
// lock-per-stream map had.
func TestServeGateLeak(t *testing.T) {
	reg := distwindow.NewRegistry()
	defer reg.Close()
	s := &serveState{reg: reg}

	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("ghost-%d", i)
		w := httptest.NewRecorder()
		s.handleIngest(w, httptest.NewRequest("POST", "/ingest?stream="+id, strings.NewReader(csvRows(1, 1))))
		if w.Code != http.StatusNotFound {
			t.Fatalf("ingest %s: %d, want 404", id, w.Code)
		}
		w = httptest.NewRecorder()
		s.handleEvict(w, httptest.NewRequest("POST", "/evict?stream="+id, nil))
		if w.Code != http.StatusNotFound {
			t.Fatalf("evict %s: %d, want 404", id, w.Code)
		}
	}
	// Open/evict churn: the gate created by a real ingest must die with the
	// stream.
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("churn-%d", i)
		if _, _, err := reg.Open(id, distwindow.Config{Protocol: distwindow.DA1, D: 3, W: 100, Eps: 0.1, Sites: 1}, distwindow.WithSnapshots(0)); err != nil {
			t.Fatal(err)
		}
		w := httptest.NewRecorder()
		s.handleIngest(w, httptest.NewRequest("POST", "/ingest?stream="+id, strings.NewReader(csvRows(1, 4))))
		if w.Code != 200 {
			t.Fatalf("ingest %s: %d %s", id, w.Code, w.Body.String())
		}
		w = httptest.NewRecorder()
		s.handleEvict(w, httptest.NewRequest("POST", "/evict?stream="+id, nil))
		if w.Code != 200 {
			t.Fatalf("evict %s: %d", id, w.Code)
		}
	}
	n := 0
	s.gates.Range(func(_, _ any) bool { n++; return true })
	if n != 0 {
		t.Errorf("gate map holds %d entries after churn, want 0", n)
	}
}

// TestServeConcurrentChurn hammers ingest, query and evict/reopen for the
// same streams from many goroutines. Run under -race this is the
// regression test for the evict/ingest double-mutex window and for queries
// touching reclaimed (pool-donated) tracker state: every response must be
// one of 200/404/409, and the process must neither race nor deadlock.
func TestServeConcurrentChurn(t *testing.T) {
	reg := distwindow.NewRegistry()
	defer reg.Close()
	h := newServeHandler(reg, false)

	const streams = 3
	iters := 60
	if testing.Short() {
		iters = 20
	}
	openStream := func(i int) string {
		id := fmt.Sprintf("s%d", i)
		w := doReq(t, h, "POST", "/open?stream="+id+"&proto=DA1&d=3&w=1000&snap_every=8", "")
		if w.Code != 200 {
			t.Errorf("open %s: %d", id, w.Code)
		}
		return id
	}
	for i := 0; i < streams; i++ {
		openStream(i)
	}

	var wg sync.WaitGroup
	fail := make(chan string, 64)
	check := func(kind string, w *httptest.ResponseRecorder) {
		switch w.Code {
		case 200, http.StatusNotFound, http.StatusConflict:
		default:
			select {
			case fail <- fmt.Sprintf("%s: unexpected status %d: %s", kind, w.Code, w.Body.String()):
			default:
			}
		}
	}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("s%d", rng.Intn(streams))
				switch rng.Intn(5) {
				case 0:
					check("ingest", doReq(t, h, "POST", "/ingest?stream="+id, csvRows(g*100000+i*16+1, 8)))
				case 1:
					check("query", doReq(t, h, "GET", "/query?stream="+id+"&top=2", ""))
				case 2:
					check("pca", doReq(t, h, "GET", "/pca?stream="+id+"&k=2", ""))
				case 3:
					check("score", doReq(t, h, "POST", "/score?stream="+id, `{"v":[1,0,1],"k":2}`))
				case 4:
					check("evict", doReq(t, h, "POST", "/evict?stream="+id, ""))
					check("reopen", doReq(t, h, "POST", "/open?stream="+id+"&proto=DA1&d=3&w=1000&snap_every=8", ""))
				}
			}
		}(g)
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
}
