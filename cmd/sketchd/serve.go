package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"

	"distwindow"
	"distwindow/internal/csvio"
)

// runServe is sketchd's multi-tenant mode: a stream registry behind an
// HTTP API, so one process tracks any number of independent windows.
//
//	POST /open?stream=id&proto=DA1&d=8[&w=&eps=&sites=&ell=&seed=&snap_every=]
//	POST /ingest?stream=id          body: CSV rows `timestamp,site,v1,...,vd`
//	GET  /query?stream=id[&top=k]   sketch shape, top-k σ², snapshot version,
//	                                cost
//	GET  /pca?stream=id[&k=n]       top-k principal directions + variances
//	POST /score?stream=id           body: {"v":[...],"k":n} → anomaly score
//	POST /evict?stream=id
//	GET  /streams                   per-stream listing (id, protocol, rows)
//	GET  /metrics                   aggregate registry metrics (JSON, or the
//	                                Prometheus text exposition when Accept
//	                                or ?format=prom asks for it)
//	GET  /healthz
//
// Streams are opened with snapshot publication armed, so every query
// endpoint serves the stream's latest published snapshot without taking
// any lock: queries never block ingest, ingest never blocks queries, and
// N concurrent queriers of one snapshot version share one factorization.
// Ingest and evict for one stream serialize on a per-stream gate (the
// facade's single-ingester contract enforced server-side); a query that
// races an eviction gets HTTP 409, not a hang and not a read of reclaimed
// state. Different streams never contend.
func runServe(addr string, pprofOn bool) {
	reg := distwindow.NewRegistry()
	defer reg.Close()
	log.Printf("sketchd: serving stream registry on %s", addr)
	if err := http.ListenAndServe(addr, newServeHandler(reg, pprofOn)); err != nil {
		log.Fatal(err)
	}
}

// streamGate serializes ingest and eviction for one stream id. dead
// (guarded by mu) tombstones the gate when its stream is evicted: a
// goroutine that loses the race and locks a dead gate retries against the
// map instead of proceeding under a gate that no longer guards anything —
// without the tombstone, evict's map delete and a concurrent LoadOrStore
// could leave two goroutines holding two different mutexes for one id.
type streamGate struct {
	mu   sync.Mutex
	dead bool
}

// serveState carries the handler set's shared state.
type serveState struct {
	reg   *distwindow.Registry
	gates sync.Map // stream id → *streamGate
}

// lockStream returns the stream's gate, locked and live. Callers must
// Unlock it (after marking it dead first, if they evicted the stream).
func (s *serveState) lockStream(id string) *streamGate {
	for {
		v, _ := s.gates.LoadOrStore(id, &streamGate{})
		g := v.(*streamGate)
		g.mu.Lock()
		if !g.dead {
			return g
		}
		g.mu.Unlock()
	}
}

// killGate tombstones the held gate and removes it from the map (only if
// still the map's entry — a retrying ingester may already have installed a
// fresh one). Used on evict and to clean up gates created for unknown ids,
// so churn workloads (open/evict many ids) cannot grow the map without
// bound.
func (s *serveState) killGate(id string, g *streamGate) {
	g.dead = true
	s.gates.CompareAndDelete(id, g)
}

// newServeHandler builds the registry-mode HTTP handler; split from
// runServe so tests can drive it through httptest.
func newServeHandler(reg *distwindow.Registry, pprofOn bool) http.Handler {
	s := &serveState{reg: reg}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /open", s.handleOpen)
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /pca", s.handlePCA)
	mux.HandleFunc("POST /score", s.handleScore)
	mux.HandleFunc("POST /evict", s.handleEvict)

	// The registry's fleet view provides /metrics, /streams, /healthz and
	// /debug/vars; mount it as the fallback so both APIs share the port.
	var regOpts []distwindow.MuxOption
	if pprofOn {
		regOpts = append(regOpts, distwindow.WithPprof())
	}
	mux.Handle("/", reg.MetricsHandler(regOpts...))
	return mux
}

func (s *serveState) handleOpen(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id := q.Get("stream")
	cfg := distwindow.Config{
		Protocol: distwindow.Protocol(q.Get("proto")),
		W:        1_000_000,
		Eps:      0.05,
		Sites:    1,
	}
	var err error
	snapEvery := 0
	for name, dst := range map[string]*int{"d": &cfg.D, "sites": &cfg.Sites, "ell": &cfg.Ell, "snap_every": &snapEvery} {
		if s := q.Get(name); s != "" {
			if *dst, err = strconv.Atoi(s); err != nil {
				http.Error(w, fmt.Sprintf("bad %s: %v", name, err), http.StatusBadRequest)
				return
			}
		}
	}
	if s := q.Get("w"); s != "" {
		if cfg.W, err = strconv.ParseInt(s, 10, 64); err != nil {
			http.Error(w, fmt.Sprintf("bad w: %v", err), http.StatusBadRequest)
			return
		}
	}
	if s := q.Get("seed"); s != "" {
		if cfg.Seed, err = strconv.ParseInt(s, 10, 64); err != nil {
			http.Error(w, fmt.Sprintf("bad seed: %v", err), http.StatusBadRequest)
			return
		}
	}
	if s := q.Get("eps"); s != "" {
		if cfg.Eps, err = strconv.ParseFloat(s, 64); err != nil {
			http.Error(w, fmt.Sprintf("bad eps: %v", err), http.StatusBadRequest)
			return
		}
	}
	// Arm snapshot publication so the query endpoints are lock-free reads.
	_, created, err := s.reg.Open(id, cfg, distwindow.WithSnapshots(snapEvery))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]any{"stream": id, "created": created})
}

func (s *serveState) handleIngest(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("stream")
	g := s.lockStream(id)
	defer g.mu.Unlock()
	// Resolve the tracker under the gate: an eviction cannot slip between
	// the lookup and the rows, so ingest never runs into a released
	// (pool-donated) tracker.
	tr, ok := s.reg.Get(id)
	if !ok {
		// The gate may have been created just now for an id that does not
		// exist; drop it so unknown-id probes cannot grow the map.
		s.killGate(id, g)
		http.Error(w, "unknown stream", http.StatusNotFound)
		return
	}
	rows, stale := 0, 0
	_, _, err := csvio.Read(r.Body, func(e csvio.Event) error {
		err := tr.TryObserve(e.Site, distwindow.Row{T: e.Row.T, V: e.Row.V})
		switch {
		case err == nil:
			rows++
		case errors.Is(err, distwindow.ErrStale):
			stale++
		default:
			return err
		}
		return nil
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The end of an HTTP batch is a natural consistency point: publish an
	// exact snapshot (cheap d×ℓ copy) so a query issued after this response
	// sees every row of the batch, regardless of the publication cadence.
	tr.Drain()
	writeJSON(w, map[string]any{"stream": id, "rows": rows, "stale": stale})
}

// snapshotFor resolves a stream for the lock-free query endpoints. It
// takes no gate: armed trackers serve queries from published snapshots,
// which stay valid even across a concurrent eviction — the explicit
// Closed check turns queries against an evicted stream into 409.
func (s *serveState) snapshotFor(w http.ResponseWriter, id string) (*distwindow.Tracker, *distwindow.Snapshot, bool) {
	tr, ok := s.reg.Get(id)
	if !ok {
		http.Error(w, "unknown stream", http.StatusNotFound)
		return nil, nil, false
	}
	if tr.Closed() {
		http.Error(w, "stream evicted", http.StatusConflict)
		return nil, nil, false
	}
	snap, err := tr.Snapshot()
	if err != nil {
		// Unreachable for streams this server opened (always armed); kept
		// as a real error path so a future unarmed mode fails loudly.
		http.Error(w, err.Error(), http.StatusConflict)
		return nil, nil, false
	}
	return tr, snap, true
}

func (s *serveState) handleQuery(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("stream")
	topk := 5
	if v := r.URL.Query().Get("top"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k < 0 {
			http.Error(w, fmt.Sprintf("bad top: %q", v), http.StatusBadRequest)
			return
		}
		topk = k
	}
	tr, snap, ok := s.snapshotFor(w, id)
	if !ok {
		return
	}
	b := snap.Sketch()
	var sigma2 []float64
	if topk > 0 && b.Rows() > 0 {
		sigma2 = snap.PCA(topk).Values
	}
	writeJSON(w, map[string]any{
		"stream":          id,
		"protocol":        snap.Protocol(),
		"sketchRows":      b.Rows(),
		"sketchCols":      b.Cols(),
		"topSigma2":       sigma2,
		"snapshotVersion": snap.Version(),
		"snapshotRows":    snap.Rows(),
		"cost":            distwindow.FormatStats(tr.Stats()),
	})
}

func (s *serveState) handlePCA(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("stream")
	k := 3
	if v := r.URL.Query().Get("k"); v != "" {
		kk, err := strconv.Atoi(v)
		if err != nil || kk < 1 {
			http.Error(w, fmt.Sprintf("bad k: %q", v), http.StatusBadRequest)
			return
		}
		k = kk
	}
	_, snap, ok := s.snapshotFor(w, id)
	if !ok {
		return
	}
	p := snap.PCA(k)
	comps := make([][]float64, p.Components.Rows())
	for i := range comps {
		comps[i] = p.Components.Row(i)
	}
	writeJSON(w, map[string]any{
		"stream":          id,
		"components":      comps,
		"values":          p.Values,
		"snapshotVersion": snap.Version(),
	})
}

func (s *serveState) handleScore(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("stream")
	var req struct {
		V []float64 `json:"v"`
		K int       `json:"k"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad body: %v", err), http.StatusBadRequest)
		return
	}
	if req.K < 1 {
		req.K = 3
	}
	if len(req.V) == 0 {
		http.Error(w, "empty vector", http.StatusBadRequest)
		return
	}
	_, snap, ok := s.snapshotFor(w, id)
	if !ok {
		return
	}
	score := snap.AnomalyScorer(req.K).Score(req.V)
	writeJSON(w, map[string]any{
		"stream":          id,
		"score":           score,
		"k":               req.K,
		"snapshotVersion": snap.Version(),
	})
}

func (s *serveState) handleEvict(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("stream")
	g := s.lockStream(id)
	ok := s.reg.Evict(id)
	// Tombstone + remove the gate whether or not the stream existed: the
	// per-stream entry must not outlive the stream (or exist at all for
	// unknown ids), and the tombstone sends racing ingesters back to the
	// map for a fresh gate.
	s.killGate(id, g)
	g.mu.Unlock()
	if !ok {
		http.Error(w, "unknown stream", http.StatusNotFound)
		return
	}
	writeJSON(w, map[string]any{"stream": id, "evicted": true})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
