package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"

	"distwindow"
	"distwindow/internal/csvio"
	"distwindow/mat"
)

// runServe is sketchd's multi-tenant mode: a stream registry behind an
// HTTP API, so one process tracks any number of independent windows.
//
//	POST /open?stream=id&proto=DA1&d=8[&w=&eps=&sites=&ell=&seed=]
//	POST /ingest?stream=id          body: CSV rows `timestamp,site,v1,...,vd`
//	GET  /query?stream=id[&top=k]   sketch shape, top-k σ² and cost
//	POST /evict?stream=id
//	GET  /streams                   per-stream listing (id, protocol, rows)
//	GET  /metrics                   aggregate registry metrics (JSON, or the
//	                                Prometheus text exposition when Accept
//	                                or ?format=prom asks for it)
//	GET  /healthz
//
// Ingest requests for one stream must not be issued concurrently with
// each other or with that stream's eviction — the per-stream tracker
// keeps the facade's single-ingester contract; different streams ingest
// concurrently without coordination.
func runServe(addr string, pprofOn bool) {
	reg := distwindow.NewRegistry()
	defer reg.Close()

	// locks serializes ingest/evict per stream id so a misbehaving client
	// cannot trip the tracker's single-ingester contract from outside.
	var locks sync.Map // stream id → *sync.Mutex

	lockOf := func(id string) *sync.Mutex {
		mu, _ := locks.LoadOrStore(id, &sync.Mutex{})
		return mu.(*sync.Mutex)
	}

	mux := http.NewServeMux()

	mux.HandleFunc("POST /open", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		id := q.Get("stream")
		cfg := distwindow.Config{
			Protocol: distwindow.Protocol(q.Get("proto")),
			W:        1_000_000,
			Eps:      0.05,
			Sites:    1,
		}
		var err error
		for name, dst := range map[string]*int{"d": &cfg.D, "sites": &cfg.Sites, "ell": &cfg.Ell} {
			if s := q.Get(name); s != "" {
				if *dst, err = strconv.Atoi(s); err != nil {
					http.Error(w, fmt.Sprintf("bad %s: %v", name, err), http.StatusBadRequest)
					return
				}
			}
		}
		if s := q.Get("w"); s != "" {
			if cfg.W, err = strconv.ParseInt(s, 10, 64); err != nil {
				http.Error(w, fmt.Sprintf("bad w: %v", err), http.StatusBadRequest)
				return
			}
		}
		if s := q.Get("seed"); s != "" {
			if cfg.Seed, err = strconv.ParseInt(s, 10, 64); err != nil {
				http.Error(w, fmt.Sprintf("bad seed: %v", err), http.StatusBadRequest)
				return
			}
		}
		if s := q.Get("eps"); s != "" {
			if cfg.Eps, err = strconv.ParseFloat(s, 64); err != nil {
				http.Error(w, fmt.Sprintf("bad eps: %v", err), http.StatusBadRequest)
				return
			}
		}
		_, created, err := reg.Open(id, cfg)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]any{"stream": id, "created": created})
	})

	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("stream")
		tr, ok := reg.Get(id)
		if !ok {
			http.Error(w, "unknown stream", http.StatusNotFound)
			return
		}
		mu := lockOf(id)
		mu.Lock()
		defer mu.Unlock()
		rows, stale := 0, 0
		_, _, err := csvio.Read(r.Body, func(e csvio.Event) error {
			err := tr.TryObserve(e.Site, distwindow.Row{T: e.Row.T, V: e.Row.V})
			switch {
			case err == nil:
				rows++
			case errors.Is(err, distwindow.ErrStale):
				stale++
			default:
				return err
			}
			return nil
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]any{"stream": id, "rows": rows, "stale": stale})
	})

	mux.HandleFunc("GET /query", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("stream")
		tr, ok := reg.Get(id)
		if !ok {
			http.Error(w, "unknown stream", http.StatusNotFound)
			return
		}
		topk := 5
		if s := r.URL.Query().Get("top"); s != "" {
			k, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad top: %v", err), http.StatusBadRequest)
				return
			}
			topk = k
		}
		mu := lockOf(id)
		mu.Lock()
		b := tr.Sketch()
		stats := tr.Stats()
		mu.Unlock()
		svd := mat.ThinSVD(b)
		if topk > len(svd.S) {
			topk = len(svd.S)
		}
		sigma2 := make([]float64, topk)
		for i := range sigma2 {
			sigma2[i] = svd.S[i] * svd.S[i]
		}
		writeJSON(w, map[string]any{
			"stream":     id,
			"protocol":   tr.Name(),
			"sketchRows": b.Rows(),
			"sketchCols": b.Cols(),
			"topSigma2":  sigma2,
			"cost":       distwindow.FormatStats(stats),
		})
	})

	mux.HandleFunc("POST /evict", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("stream")
		mu := lockOf(id)
		mu.Lock()
		ok := reg.Evict(id)
		mu.Unlock()
		locks.Delete(id)
		if !ok {
			http.Error(w, "unknown stream", http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{"stream": id, "evicted": true})
	})

	// The registry's fleet view provides /metrics, /streams, /healthz and
	// /debug/vars; mount it as the fallback so both APIs share the port.
	var regOpts []distwindow.MuxOption
	if pprofOn {
		regOpts = append(regOpts, distwindow.WithPprof())
	}
	mux.Handle("/", reg.MetricsHandler(regOpts...))

	log.Printf("sketchd: serving stream registry on %s", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Fatal(err)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
