// Command benchjson runs a fixed reference workload through the
// representative protocols and writes the headline performance figures —
// ingest update rate, communication words per window, sketch-query
// latency, the parallel-vs-sequential ingest ratio, the multi-stream
// registry throughput sweep, the telemetry-on-vs-off ingest overhead,
// the published-snapshot query path (queries/s under 0/1/8/64 concurrent
// queriers with ingest running, plus the publish-overhead and
// querier-interference gates), and the wire-codec comparison (gob vs
// binary v2 on the Direction frames the protocols actually send) — as a
// JSON document for machine comparison across changes
// (`make bench-json` → BENCH_PR10.json).
// Alongside throughput it records allocs/op for the ingest loop
// (runtime.MemStats mallocs over the timed rows), sweeps the parallel
// pipeline over a batch-size × workers grid per protocol and applies the
// benchgate scaling gate (≥1.6× at 2 workers, ≥2.5× at 4 — see
// internal/benchgate), and sweeps a Registry over a streams × workers
// grid with shard-owned feeders (handles hoisted out of the row loop,
// ObserveBatch runs, worker count clamped by Registry.IngestWorkers)
// gated on multi-worker ingest never degrading below 1-worker.
//
// The workload is deterministic (fixed seed, synthetic Gaussian rows), so
// two runs on the same machine differ only by measurement noise; compare
// figures across commits, not across machines. The parallel speedup in
// particular scales with the recorded GOMAXPROCS/NumCPU — on an
// effectively single-core machine the sweep is refused outright and the
// gate records SKIP with the reason, rather than publishing a
// meaningless "speedup".
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"distwindow"
	"distwindow/internal/benchgate"
	"distwindow/internal/obs/telemetry"
	"distwindow/internal/wire"
)

type result struct {
	Protocol      string  `json:"protocol"`
	Rows          int64   `json:"rows"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	// AllocsPerRow is the mean heap allocations per ingested row over the
	// timed loop (cumulative runtime.MemStats.Mallocs delta / rows). The
	// steady-state site step is allocation-free; the residue here is
	// warm-up growth plus the rare report/emission path.
	AllocsPerRow   float64 `json:"allocs_per_row"`
	WordsPerWindow float64 `json:"words_per_window"`
	TotalWords     int64   `json:"total_words"`
	// SketchQueryMs is the mean wall-clock latency of Tracker.Sketch over
	// Queries calls at end of stream.
	SketchQueryMs float64 `json:"sketch_query_ms"`
	Queries       int     `json:"queries"`
	// MaxErr/MeanErr are the live auditor's observed covariance errors —
	// a correctness sanity figure riding along with the perf numbers.
	MaxErr  float64 `json:"max_err"`
	MeanErr float64 `json:"mean_err"`
	Eps     float64 `json:"eps"`
}

// parallelResult compares sequential and pipelined ingestion of the same
// per-site streams for one one-way protocol, at one cell of the
// batch-size × workers grid.
type parallelResult struct {
	Protocol string `json:"protocol"`
	Sites    int    `json:"sites"`
	Workers  int    `json:"workers"`
	// Batch is the per-site feeder's run length: 1 feeds row-at-a-time
	// through TryObserve, larger values hand whole runs to ObserveBatch so
	// the lane ring sees one block push and one wakeup per run.
	Batch int   `json:"batch"`
	Rows  int64 `json:"rows"`
	// SequentialRowsPerSec feeds the global (T, site) interleaving through
	// the synchronous path; ParallelRowsPerSec feeds one goroutine per
	// site through WithParallel and includes the final drain.
	SequentialRowsPerSec float64 `json:"sequential_rows_per_sec"`
	ParallelRowsPerSec   float64 `json:"parallel_rows_per_sec"`
	Speedup              float64 `json:"speedup"`
}

// parallelGate is one protocol's scaling-gate verdict over its sweep
// cells (internal/benchgate holds the thresholds and the SKIP rules).
type parallelGate struct {
	Protocol string `json:"protocol"`
	benchgate.Result
}

// registryResult measures aggregate ingest throughput when Streams
// independent tracked windows live behind one Registry and a pool of
// shard-owning feeders ingests them: streams striped across workers,
// each stream's handle resolved once per run (not per row), rows
// delivered in ObserveBatch runs. Workers is the requested pool size;
// EffectiveWorkers is what Registry.IngestWorkers clamped it to (at most
// one per stream, at most GOMAXPROCS — oversubscribing a core measurably
// loses throughput). Rows is the total across all streams and is held
// fixed across cells, so RowsPerSec compares directly. Each cell is the
// best of Trials interleaved trials, so a background-load spike cannot
// sink one cell only.
type registryResult struct {
	Protocol         string  `json:"protocol"`
	Streams          int     `json:"streams"`
	Workers          int     `json:"workers"`
	EffectiveWorkers int     `json:"effective_workers"`
	Trials           int     `json:"trials"`
	Rows             int64   `json:"rows"`
	RowsPerSec       float64 `json:"rows_per_sec"`
	// AllocsPerRow over the best trial's cell (cold-opened streams each
	// trial, so warm-up growth such as the mEH row slab is priced in).
	AllocsPerRow float64 `json:"allocs_per_row"`
}

// registryGate is the falloff verdict at one stream count: the largest
// swept worker pool must not ingest slower than the 1-worker pool.
type registryGate struct {
	Streams int `json:"streams"`
	Workers int `json:"workers"`
	benchgate.Result
}

// telemetryResult prices the fleet telemetry plane on the ingest loop:
// the same rows streamed with no publisher versus with one snapshotting
// the tracker into frames at a realistic cadence on its own goroutine.
// OverheadPct is off/on − 1 in percent; the budget is <2%. The publisher
// is designed to run on a spare core, so on a single-core machine —
// where every tick preempts the only core the ingest loop has — the
// measurement is recorded but the gate is advisory (Advisory says why).
type telemetryResult struct {
	Protocol      string  `json:"protocol"`
	Rows          int64   `json:"rows"`
	IntervalMs    int64   `json:"interval_ms"`
	OffRowsPerSec float64 `json:"off_rows_per_sec"`
	OnRowsPerSec  float64 `json:"on_rows_per_sec"`
	OverheadPct   float64 `json:"overhead_pct"`
	Pass          bool    `json:"pass"`
	Advisory      string  `json:"advisory,omitempty"`
}

// queryPathResult measures the published-snapshot read path at one
// querier count: an armed DA1 tracker ingests the fixed row budget while
// Queriers goroutines hammer Snapshot/Sketch as fast as they can.
// IngestRowsPerSec is the ingest loop's rate with that load;
// QueriesPerSec is the aggregate query rate across all queriers;
// IngestRatio divides by the same tracker's query-free (0-querier) rate,
// so 1.0 means queries cost ingest nothing.
type queryPathResult struct {
	Protocol         string  `json:"protocol"`
	Queriers         int     `json:"queriers"`
	Rows             int64   `json:"rows"`
	IngestRowsPerSec float64 `json:"ingest_rows_per_sec"`
	QueriesPerSec    float64 `json:"queries_per_sec"`
	IngestRatio      float64 `json:"ingest_ratio_vs_query_free"`
}

// queryPathGates is the scorecard for the snapshot read path.
// PublishOverheadPct prices arming itself: armed-but-unqueried ingest
// versus a plain unarmed tracker (budget <3% — the copy-on-publish cost,
// amortized over the cadence). Ingest8qRatio is the acceptance figure:
// ingest with 8 concurrent queriers must stay within 5% of query-free
// ingest (ratio ≥0.95). Queriers run on their own cores by design, so on
// a single-core machine — where every query steals the only core ingest
// has — a failed interference gate is advisory, same as the telemetry
// and parallel-sweep gates.
type queryPathGates struct {
	PublishOverheadPct  float64 `json:"publish_overhead_pct"`
	PublishOverheadPass bool    `json:"publish_overhead_pass"`
	Ingest8qRatio       float64 `json:"ingest_8q_ratio"`
	Ingest8qPass        bool    `json:"ingest_8q_pass"`
	Advisory            string  `json:"advisory,omitempty"`
}

// codecResult measures one wire framing on steady-state Direction frames
// at the benchmark dimension — the frame class that dominates every
// protocol's traffic. FirstFrameBytes includes the stream preamble (gob's
// type descriptor, v2's Hello), paid once per connection.
type codecResult struct {
	Codec           string  `json:"codec"`
	D               int     `json:"d"`
	BytesPerFrame   float64 `json:"bytes_per_frame"`
	FirstFrameBytes int     `json:"first_frame_bytes"`
	EncodeNsPerOp   float64 `json:"encode_ns_per_op"`
	DecodeNsPerOp   float64 `json:"decode_ns_per_op"`
}

// codecGates is the honest scorecard of the v2 framing against gob. The
// bytes_2x gate records the original "≥2× fewer bytes per frame" target
// verbatim; it CANNOT pass on Direction frames, and Bytes2xNote explains
// the arithmetic: a lossless float64 costs 8 bytes, gob already spends
// ~9.25 bytes per float on these rows, so the ceiling on any lossless
// framing is ~1.16× — the real v2 wins are CPU (Cpu2x) and the
// corruption/coalescing behaviour the soaks cover. See DESIGN.md §14.
type codecGates struct {
	BytesRatioGobOverV2 float64 `json:"bytes_ratio_gob_over_v2"`
	Bytes2xPass         bool    `json:"bytes_2x_pass"`
	Bytes2xNote         string  `json:"bytes_2x_note"`
	BytesLeanerPass     bool    `json:"bytes_leaner_pass"`
	EncodeSpeedup       float64 `json:"encode_speedup"`
	DecodeSpeedup       float64 `json:"decode_speedup"`
	Cpu2xPass           bool    `json:"cpu_2x_pass"`
}

type doc struct {
	Generated string `json:"generated"`
	GoArch    string `json:"config"`
	// Cores is GOMAXPROCS at run time — the parallel speedup ceiling.
	// NumCPU is the machine's logical core count; when either is 1 the
	// parallel sweep is refused (ParallelSkipped records why) because a
	// pipeline cannot beat sequential without a second core, and a
	// "0.9x speedup" figure from a starved run would read as a regression.
	Cores   int      `json:"cores"`
	NumCPU  int      `json:"num_cpu"`
	Results []result `json:"results"`
	// ParallelSkipped is empty when the parallel sweep ran; ParallelGates
	// always carries one verdict per protocol (SKIP with the reason when
	// the sweep could not run).
	ParallelSkipped string            `json:"parallel_skipped,omitempty"`
	Parallel        []parallelResult  `json:"parallel"`
	ParallelGates   []parallelGate    `json:"parallel_gates"`
	Registry        []registryResult  `json:"registry"`
	RegistryGates   []registryGate    `json:"registry_gates"`
	Telemetry       []telemetryResult `json:"telemetry"`
	QueryPath       []queryPathResult `json:"query_path"`
	QueryPathGates  queryPathGates    `json:"query_path_gates"`
	WireCodec       []codecResult     `json:"wire_codec"`
	WireCodecGates  codecGates        `json:"wire_codec_gates"`
}

// countWriter counts bytes; the codec benchmark's encode sink.
type countWriter struct{ n int }

func (w *countWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }

// benchCodec measures bytes/frame and encode/decode CPU for both wire
// framings on steady-state Direction frames of dimension d.
func benchCodec(d int, seed int64) ([]codecResult, codecGates) {
	const frames = 50_000
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	measure := func(cdc wire.Codec) codecResult {
		m := wire.Msg{Site: 3, Kind: wire.DirectionAdd, T: 1, V: v}

		// Bytes: first frame (with stream preamble), then the steady state.
		var cw countWriter
		enc := cdc.NewEncoder(&cw)
		m.Seq = 1
		if err := enc.EncodeMsg(&m); err != nil {
			log.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			log.Fatal(err)
		}
		first := cw.n
		for i := 2; i <= frames+1; i++ {
			m.T, m.Seq = int64(i), uint64(i)
			if err := enc.EncodeMsg(&m); err != nil {
				log.Fatal(err)
			}
		}
		if err := enc.Flush(); err != nil {
			log.Fatal(err)
		}
		bytesPerFrame := float64(cw.n-first) / frames

		// Encode CPU: a fresh stream, flushed at the sender's cadence (every
		// frame, as a non-batched Send would) so gob and v2 pay comparable
		// write-path costs.
		enc = cdc.NewEncoder(&countWriter{})
		start := time.Now()
		for i := 1; i <= frames; i++ {
			m.T, m.Seq = int64(i), uint64(i)
			if err := enc.EncodeMsg(&m); err != nil {
				log.Fatal(err)
			}
			if err := enc.Flush(); err != nil {
				log.Fatal(err)
			}
		}
		encNs := float64(time.Since(start).Nanoseconds()) / frames

		// Decode CPU over the same frames.
		var buf bytes.Buffer
		enc = cdc.NewEncoder(&buf)
		for i := 1; i <= frames; i++ {
			m.T, m.Seq = int64(i), uint64(i)
			if err := enc.EncodeMsg(&m); err != nil {
				log.Fatal(err)
			}
		}
		if err := enc.Flush(); err != nil {
			log.Fatal(err)
		}
		dec := cdc.NewDecoder(&buf)
		var out wire.Msg
		start = time.Now()
		for i := 1; i <= frames; i++ {
			if err := dec.DecodeMsg(&out); err != nil {
				log.Fatalf("%s decode frame %d: %v", cdc, i, err)
			}
		}
		decNs := float64(time.Since(start).Nanoseconds()) / frames
		if rel, ok := dec.(interface{ Release() }); ok {
			rel.Release()
		}

		return codecResult{
			Codec:           cdc.String(),
			D:               d,
			BytesPerFrame:   bytesPerFrame,
			FirstFrameBytes: first,
			EncodeNsPerOp:   encNs,
			DecodeNsPerOp:   decNs,
		}
	}

	g := measure(wire.Gob)
	v2 := measure(wire.BinaryV2)
	gates := codecGates{
		BytesRatioGobOverV2: g.BytesPerFrame / v2.BytesPerFrame,
		EncodeSpeedup:       g.EncodeNsPerOp / v2.EncodeNsPerOp,
		DecodeSpeedup:       g.DecodeNsPerOp / v2.DecodeNsPerOp,
	}
	gates.Bytes2xPass = gates.BytesRatioGobOverV2 >= 2
	gates.BytesLeanerPass = gates.BytesRatioGobOverV2 > 1
	gates.Cpu2xPass = gates.EncodeSpeedup >= 2 && gates.DecodeSpeedup >= 2
	if !gates.Bytes2xPass {
		gates.Bytes2xNote = fmt.Sprintf(
			"unattainable losslessly: a float64 is 8 bytes and gob spends %.2f B/float on a d=%d Direction row, capping any lossless framing at %.2fx; v2's measured ratio is %.2fx (DESIGN.md §14)",
			g.BytesPerFrame/float64(d), d, g.BytesPerFrame/(8*float64(d)), gates.BytesRatioGobOverV2)
	}
	return []codecResult{g, v2}, gates
}

func main() {
	var (
		out     = flag.String("out", "BENCH_PR10.json", "output path")
		rows    = flag.Int64("rows", 200_000, "rows to stream per protocol")
		d       = flag.Int("d", 32, "row dimension")
		sites   = flag.Int("sites", 8, "number of sites")
		w       = flag.Int64("w", 50_000, "window length in ticks")
		eps     = flag.Float64("eps", 0.1, "target covariance error")
		queries = flag.Int("queries", 50, "sketch queries to time at end of stream")
		seed    = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Parse()

	// Pre-generate the rows so the timed loop measures Observe alone.
	rng := rand.New(rand.NewSource(*seed))
	vs := make([][]float64, 4096)
	for i := range vs {
		v := make([]float64, *d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vs[i] = v
	}
	siteOf := make([]int, len(vs))
	for i := range siteOf {
		siteOf[i] = rng.Intn(*sites)
	}

	var results []result
	for _, proto := range []distwindow.Protocol{distwindow.PWOR, distwindow.DA1, distwindow.DA2} {
		// The auditor supplies words/window and the error sanity figures;
		// audit sparsely so its shadow cost stays out of the update rate.
		tr, err := distwindow.New(distwindow.Config{
			Protocol: proto, D: *d, W: *w, Eps: *eps, Sites: *sites, Seed: *seed,
		}, distwindow.WithAudit(distwindow.AuditConfig{EveryRows: 1 << 30}))
		if err != nil {
			log.Fatal(err)
		}
		var msBefore, msAfter runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		for i := int64(1); i <= *rows; i++ {
			k := int(i) & (len(vs) - 1)
			if err := tr.TryObserve(siteOf[k], distwindow.Row{T: i, V: vs[k]}); err != nil {
				log.Fatal(err)
			}
		}
		elapsed := time.Since(start).Seconds()
		runtime.ReadMemStats(&msAfter)
		allocsPerRow := float64(msAfter.Mallocs-msBefore.Mallocs) / float64(*rows)
		if _, ok := tr.AuditTick(); !ok {
			log.Fatal("audit tick failed")
		}

		qStart := time.Now()
		for i := 0; i < *queries; i++ {
			_ = tr.Sketch()
		}
		qMs := time.Since(qStart).Seconds() * 1e3 / float64(*queries)

		am, _ := tr.Audit()
		results = append(results, result{
			Protocol:       string(proto),
			Rows:           *rows,
			UpdatesPerSec:  float64(*rows) / elapsed,
			AllocsPerRow:   allocsPerRow,
			WordsPerWindow: am.WordsPerWindow,
			TotalWords:     tr.Stats().TotalWords(),
			SketchQueryMs:  qMs,
			Queries:        *queries,
			MaxErr:         am.MaxErr,
			MeanErr:        am.MeanErr,
			Eps:            *eps,
		})
		fmt.Printf("%-10s %10.0f rows/s  %6.2f allocs/row  %12.0f words/window  %8.3f ms/query\n",
			proto, float64(*rows)/elapsed, allocsPerRow, am.WordsPerWindow, qMs)
	}

	// Parallel-vs-sequential ingest for the one-way protocols over the
	// batch-size × workers grid: both trackers consume identical per-site
	// streams (T = per-site tick), the sequential one in the merge's global
	// (T, site) order, the parallel one from one feeder goroutine per site.
	// Batch 1 feeds TryObserve row-at-a-time (a ring push and a wakeup per
	// row); larger batches hand whole runs to ObserveBatch, the pipeline's
	// amortized path. Every cell's sketch is cross-checked against the
	// sequential reference, so the grid is also a determinism soak. The
	// scaling gate (internal/benchgate) then judges the per-worker curve —
	// or records SKIP with the reason when the machine cannot show scaling.
	perSite := *rows / int64(*sites)
	var parallels []parallelResult
	var parallelGates []parallelGate
	parallelSkipped := ""
	switch {
	case runtime.NumCPU() < 2:
		parallelSkipped = fmt.Sprintf("single-core machine (NumCPU=%d)", runtime.NumCPU())
	case runtime.GOMAXPROCS(0) < 2:
		parallelSkipped = fmt.Sprintf("GOMAXPROCS=%d pins the process to one core", runtime.GOMAXPROCS(0))
	}
	if parallelSkipped != "" {
		fmt.Printf("parallel sweep skipped: %s\n", parallelSkipped)
	}
	for _, proto := range []distwindow.Protocol{distwindow.DA1, distwindow.DA2} {
		var cells []benchgate.ParallelCell
		if parallelSkipped == "" {
			cfg := distwindow.Config{Protocol: proto, D: *d, W: *w, Eps: *eps, Sites: *sites, Seed: *seed}

			seqTr, err := distwindow.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			seqStart := time.Now()
			for t := int64(1); t <= perSite; t++ {
				for s := 0; s < *sites; s++ {
					if err := seqTr.TryObserve(s, distwindow.Row{T: t, V: vs[(int(t)+s*31)&(len(vs)-1)]}); err != nil {
						log.Fatal(err)
					}
				}
			}
			seqSecs := time.Since(seqStart).Seconds()
			gs, _ := seqTr.SketchGram()

			for _, workers := range []int{1, 2, 4} {
				for _, batch := range []int{1, 64} {
					parTr, err := distwindow.New(cfg, distwindow.WithParallel(workers))
					if err != nil {
						log.Fatal(err)
					}
					parStart := time.Now()
					var wg sync.WaitGroup
					for s := 0; s < *sites; s++ {
						wg.Add(1)
						go func(s int) {
							defer wg.Done()
							if batch == 1 {
								for t := int64(1); t <= perSite; t++ {
									parTr.TryObserve(s, distwindow.Row{T: t, V: vs[(int(t)+s*31)&(len(vs)-1)]})
								}
								return
							}
							run := make([]distwindow.Row, 0, batch)
							for t := int64(1); t <= perSite; t++ {
								run = append(run, distwindow.Row{T: t, V: vs[(int(t)+s*31)&(len(vs)-1)]})
								if len(run) == batch || t == perSite {
									if _, err := parTr.ObserveBatch(s, run); err != nil {
										log.Fatal(err)
									}
									run = run[:0]
								}
							}
						}(s)
					}
					wg.Wait()
					parTr.Drain()
					parSecs := time.Since(parStart).Seconds()

					// Cross-check the determinism invariant at every cell.
					gp, _ := parTr.SketchGram()
					if !gs.Equal(gp) {
						log.Fatalf("%s: parallel sketch diverged from sequential at %d workers, batch %d",
							proto, workers, batch)
					}
					parTr.Close()

					total := perSite * int64(*sites)
					pr := parallelResult{
						Protocol:             string(proto),
						Sites:                *sites,
						Workers:              workers,
						Batch:                batch,
						Rows:                 total,
						SequentialRowsPerSec: float64(total) / seqSecs,
						ParallelRowsPerSec:   float64(total) / parSecs,
						Speedup:              seqSecs / parSecs,
					}
					parallels = append(parallels, pr)
					cells = append(cells, benchgate.ParallelCell{
						Workers: workers, Batch: batch, RowsPerSec: pr.ParallelRowsPerSec,
					})
					fmt.Printf("%-10s parallel(w=%d b=%-3d) %9.0f rows/s vs sequential %9.0f rows/s  (%.2fx, %d cores)\n",
						proto, workers, batch, pr.ParallelRowsPerSec, pr.SequentialRowsPerSec, pr.Speedup, runtime.GOMAXPROCS(0))
				}
			}
		}
		g := parallelGate{Protocol: string(proto), Result: benchgate.EvalParallelScaling(cells, runtime.NumCPU())}
		parallelGates = append(parallelGates, g)
		fmt.Printf("%-10s scaling gate %s: %s\n", proto, g.Status, g.Reason)
	}

	// Multi-tenant registry sweep: nStreams independent DA1 windows behind
	// one Registry, fed by a shard-owning worker pool — streams striped
	// across workers (each stream has exactly one ingester for its whole
	// run), the stream handle resolved once per run instead of per row,
	// rows delivered in ObserveBatch runs, and the pool sized by
	// Registry.IngestWorkers so oversubscribing cores (the BENCH_PR8
	// falloff) cannot happen. The total row budget is held fixed across
	// cells, so rows/s compares directly: the streams axis shows the cost
	// of tenancy at scale (cold windows, shared pools), the workers axis
	// that multi-worker ingest never degrades below 1-worker — the gate
	// EvalRegistryScaling enforces per stream count. Each cell is the best
	// of regTrials trials, trials interleaved across cells so a background
	// spike cannot charge one cell only.
	const (
		regTrials = 3
		regBatch  = 64
	)
	regCfg := distwindow.Config{Protocol: distwindow.DA1, D: *d, W: *w, Eps: *eps, Sites: *sites, Seed: *seed}
	runRegistryCell := func(nStreams, workers int, perStream int64) registryResult {
		reg := distwindow.NewRegistry()
		ids := make([]string, nStreams)
		for i := range ids {
			ids[i] = fmt.Sprintf("s%03d", i)
			if _, _, err := reg.Open(ids[i], regCfg); err != nil {
				log.Fatal(err)
			}
		}
		effective := reg.IngestWorkers(workers, nStreams)
		var msB, msA runtime.MemStats
		runtime.ReadMemStats(&msB)
		start := time.Now()
		var wg sync.WaitGroup
		for wk := 0; wk < effective; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				run := make([]distwindow.Row, 0, regBatch)
				for si := wk; si < nStreams; si += effective {
					tr, ok := reg.Get(ids[si]) // hoisted: one lookup per stream, not per row
					if !ok {
						log.Fatalf("registry sweep: stream %s vanished", ids[si])
					}
					for t := int64(1); t <= perStream; t++ {
						k := (int(t) + si*31) & (len(vs) - 1)
						run = append(run, distwindow.Row{T: t, V: vs[k]})
						if len(run) == regBatch || t == perStream {
							if _, err := tr.ObserveBatch(siteOf[k], run); err != nil {
								log.Fatal(err)
							}
							run = run[:0]
						}
					}
				}
			}(wk)
		}
		wg.Wait()
		secs := time.Since(start).Seconds()
		runtime.ReadMemStats(&msA)
		reg.Close()

		total := perStream * int64(nStreams)
		return registryResult{
			Protocol:         string(distwindow.DA1),
			Streams:          nStreams,
			Workers:          workers,
			EffectiveWorkers: effective,
			Trials:           regTrials,
			Rows:             total,
			RowsPerSec:       float64(total) / secs,
			AllocsPerRow:     float64(msA.Mallocs-msB.Mallocs) / float64(total),
		}
	}

	var regResults []registryResult
	var regGates []registryGate
	for _, nStreams := range []int{1, 16, 256} {
		perStream := *rows / int64(nStreams)
		if perStream < 1 {
			continue
		}
		var counts []int
		for _, workers := range []int{1, 2, 4} {
			if workers <= nStreams {
				counts = append(counts, workers)
			}
		}
		best := make([]registryResult, len(counts))
		for trial := 0; trial < regTrials; trial++ {
			for ci, workers := range counts {
				if rr := runRegistryCell(nStreams, workers, perStream); rr.RowsPerSec > best[ci].RowsPerSec {
					best[ci] = rr
				}
			}
		}
		var cells []benchgate.RegistryCell
		for _, rr := range best {
			regResults = append(regResults, rr)
			cells = append(cells, benchgate.RegistryCell{Streams: rr.Streams, Workers: rr.Workers, RowsPerSec: rr.RowsPerSec})
			fmt.Printf("registry   %4d streams × %d workers (%d effective) %9.0f rows/s  %6.2f allocs/row  (best of %d)\n",
				nStreams, rr.Workers, rr.EffectiveWorkers, rr.RowsPerSec, rr.AllocsPerRow, regTrials)
		}
		if maxW := counts[len(counts)-1]; maxW > 1 {
			g := registryGate{
				Streams: nStreams,
				Workers: maxW,
				Result:  benchgate.EvalRegistryScaling(cells, nStreams, maxW),
			}
			regGates = append(regGates, g)
			fmt.Printf("registry   %4d streams falloff gate %s: %s\n", nStreams, g.Status, g.Reason)
		}
	}

	// Telemetry overhead: the same ingest loop with and without a live
	// publisher snapshotting the tracker every 10ms (10× the distrun
	// default, to make interference measurable). Collection reads the same
	// atomic counters Metrics does and never touches the ingest path, so
	// the on/off ratio must stay under the 2% budget. Best of three trials
	// per side, trials interleaved, so a background-load spike cannot
	// charge one side only.
	const teleInterval = 10 * time.Millisecond
	var teleResults []telemetryResult
	for _, proto := range []distwindow.Protocol{distwindow.PWOR, distwindow.DA2} {
		cfg := distwindow.Config{Protocol: proto, D: *d, W: *w, Eps: *eps, Sites: *sites, Seed: *seed}
		ingest := func(withTele bool) float64 {
			tr, err := distwindow.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			defer tr.Close()
			if withTele {
				pub := telemetry.NewPublisher(
					func() telemetry.Frame { return tr.TelemetryFrame(0, "bench") },
					func(telemetry.Frame) error { return nil },
				)
				pub.Start(teleInterval)
				defer pub.Stop()
			}
			start := time.Now()
			for i := int64(1); i <= *rows; i++ {
				k := int(i) & (len(vs) - 1)
				if err := tr.TryObserve(siteOf[k], distwindow.Row{T: i, V: vs[k]}); err != nil {
					log.Fatal(err)
				}
			}
			return float64(*rows) / time.Since(start).Seconds()
		}
		var offBest, onBest float64
		for trial := 0; trial < 3; trial++ {
			if r := ingest(false); r > offBest {
				offBest = r
			}
			if r := ingest(true); r > onBest {
				onBest = r
			}
		}
		overhead := (offBest/onBest - 1) * 100
		tres := telemetryResult{
			Protocol:      string(proto),
			Rows:          *rows,
			IntervalMs:    teleInterval.Milliseconds(),
			OffRowsPerSec: offBest,
			OnRowsPerSec:  onBest,
			OverheadPct:   overhead,
			Pass:          overhead < 2,
		}
		if !tres.Pass && parallelSkipped != "" {
			tres.Advisory = "single-core machine: the publisher time-shares the ingest core, so the <2% budget applies to multi-core runs"
		}
		teleResults = append(teleResults, tres)
		verdict := "PASS"
		if !tres.Pass {
			verdict = "WARN"
		}
		if tres.Advisory != "" {
			verdict += " (advisory: single-core)"
		}
		fmt.Printf("telemetry  %-10s on %9.0f rows/s vs off %9.0f rows/s  overhead %+.2f%%  %s (<2%% budget)\n",
			proto, onBest, offBest, overhead, verdict)
	}

	// Query path: the published-snapshot read path under concurrent
	// queriers. Each cell ingests the same row budget into an armed DA1
	// tracker while q goroutines loop Snapshot → Sketch full-tilt; the
	// 0-querier armed cell is the interference baseline, and a plain
	// unarmed run prices the publish overhead itself. Best of two
	// interleaved trials per cell.
	qpRows := *rows / 4
	if qpRows < 1 {
		qpRows = 1
	}
	qpCfg := distwindow.Config{Protocol: distwindow.DA1, D: *d, W: *w, Eps: *eps, Sites: *sites, Seed: *seed}
	runQueryPath := func(armed bool, queriers int) (ingestRate, queryRate float64) {
		var opts []distwindow.Option
		if armed {
			opts = append(opts, distwindow.WithSnapshots(0))
		}
		tr, err := distwindow.New(qpCfg, opts...)
		if err != nil {
			log.Fatal(err)
		}
		defer tr.Close()
		var stopQ atomic.Bool
		var queries atomic.Int64
		var qwg sync.WaitGroup
		for q := 0; q < queriers; q++ {
			qwg.Add(1)
			go func() {
				defer qwg.Done()
				for !stopQ.Load() {
					s, err := tr.Snapshot()
					if err != nil {
						log.Fatal(err)
					}
					_ = s.Sketch()
					queries.Add(1)
				}
			}()
		}
		start := time.Now()
		for i := int64(1); i <= qpRows; i++ {
			k := int(i) & (len(vs) - 1)
			if err := tr.TryObserve(siteOf[k], distwindow.Row{T: i, V: vs[k]}); err != nil {
				log.Fatal(err)
			}
		}
		secs := time.Since(start).Seconds()
		stopQ.Store(true)
		qwg.Wait()
		return float64(qpRows) / secs, float64(queries.Load()) / secs
	}
	const qpTrials = 2
	querierCounts := []int{0, 1, 8, 64}
	bestIngest := make([]float64, len(querierCounts))
	bestQueries := make([]float64, len(querierCounts))
	var unarmedBest float64
	for trial := 0; trial < qpTrials; trial++ {
		if r, _ := runQueryPath(false, 0); r > unarmedBest {
			unarmedBest = r
		}
		for ci, q := range querierCounts {
			ir, qr := runQueryPath(true, q)
			if ir > bestIngest[ci] {
				bestIngest[ci] = ir
			}
			if qr > bestQueries[ci] {
				bestQueries[ci] = qr
			}
		}
	}
	var queryPath []queryPathResult
	for ci, q := range querierCounts {
		qp := queryPathResult{
			Protocol:         string(distwindow.DA1),
			Queriers:         q,
			Rows:             qpRows,
			IngestRowsPerSec: bestIngest[ci],
			QueriesPerSec:    bestQueries[ci],
			IngestRatio:      bestIngest[ci] / bestIngest[0],
		}
		queryPath = append(queryPath, qp)
		fmt.Printf("querypath  %2d queriers: ingest %9.0f rows/s (%.2fx of query-free)  %9.0f queries/s\n",
			q, qp.IngestRowsPerSec, qp.IngestRatio, qp.QueriesPerSec)
	}
	qpGates := queryPathGates{
		PublishOverheadPct: (unarmedBest/bestIngest[0] - 1) * 100,
		Ingest8qRatio:      bestIngest[2] / bestIngest[0],
	}
	qpGates.PublishOverheadPass = qpGates.PublishOverheadPct < 3
	qpGates.Ingest8qPass = qpGates.Ingest8qRatio >= 0.95
	if !qpGates.Ingest8qPass && parallelSkipped != "" {
		qpGates.Advisory = "single-core machine: queriers time-share the only ingest core, so the 5% interference budget applies to multi-core runs"
	}
	qpVerdict := func(pass bool) string {
		if pass {
			return "PASS"
		}
		if qpGates.Advisory != "" {
			return "WARN (advisory: single-core)"
		}
		return "FAIL"
	}
	fmt.Printf("querypath  gates: publish overhead %+.2f%% %s (<3%% budget); 8-querier ingest %.2fx %s (≥0.95 budget)\n",
		qpGates.PublishOverheadPct, qpVerdict(qpGates.PublishOverheadPass),
		qpGates.Ingest8qRatio, qpVerdict(qpGates.Ingest8qPass))

	// Wire codec comparison on the frame class that dominates the
	// protocols' traffic.
	codecResults, codecG := benchCodec(*d, *seed)
	for _, cr := range codecResults {
		fmt.Printf("codec      %-4s %6.1f B/frame (first %4d B)  encode %7.0f ns/op  decode %7.0f ns/op\n",
			cr.Codec, cr.BytesPerFrame, cr.FirstFrameBytes, cr.EncodeNsPerOp, cr.DecodeNsPerOp)
	}
	b2 := "FAIL"
	if codecG.Bytes2xPass {
		b2 = "PASS"
	}
	cpu := "FAIL"
	if codecG.Cpu2xPass {
		cpu = "PASS"
	}
	fmt.Printf("codec      gates: bytes %.2fx gob/v2 (2x gate %s, leaner %v); encode %.1fx, decode %.1fx (cpu 2x gate %s)\n",
		codecG.BytesRatioGobOverV2, b2, codecG.BytesLeanerPass, codecG.EncodeSpeedup, codecG.DecodeSpeedup, cpu)
	if codecG.Bytes2xNote != "" {
		fmt.Printf("codec      note: %s\n", codecG.Bytes2xNote)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc{
		Generated:       time.Now().UTC().Format(time.RFC3339),
		GoArch:          fmt.Sprintf("d=%d sites=%d w=%d eps=%g rows=%d", *d, *sites, *w, *eps, *rows),
		Cores:           runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		Results:         results,
		ParallelSkipped: parallelSkipped,
		Parallel:        parallels,
		ParallelGates:   parallelGates,
		Registry:        regResults,
		RegistryGates:   regGates,
		Telemetry:       teleResults,
		QueryPath:       queryPath,
		QueryPathGates:  qpGates,
		WireCodec:       codecResults,
		WireCodecGates:  codecG,
	}); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
