// Command benchjson runs a fixed reference workload through the
// representative protocols and writes the headline performance figures —
// ingest update rate, communication words per window, and sketch-query
// latency — as a JSON document for machine comparison across changes
// (`make bench-json` → BENCH_PR2.json).
//
// The workload is deterministic (fixed seed, synthetic Gaussian rows), so
// two runs on the same machine differ only by measurement noise; compare
// figures across commits, not across machines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"distwindow"
)

type result struct {
	Protocol       string  `json:"protocol"`
	Rows           int64   `json:"rows"`
	UpdatesPerSec  float64 `json:"updates_per_sec"`
	WordsPerWindow float64 `json:"words_per_window"`
	TotalWords     int64   `json:"total_words"`
	// SketchQueryMs is the mean wall-clock latency of Tracker.Sketch over
	// Queries calls at end of stream.
	SketchQueryMs float64 `json:"sketch_query_ms"`
	Queries       int     `json:"queries"`
	// MaxErr/MeanErr are the live auditor's observed covariance errors —
	// a correctness sanity figure riding along with the perf numbers.
	MaxErr  float64 `json:"max_err"`
	MeanErr float64 `json:"mean_err"`
	Eps     float64 `json:"eps"`
}

type doc struct {
	Generated string   `json:"generated"`
	GoArch    string   `json:"config"`
	Results   []result `json:"results"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_PR2.json", "output path")
		rows    = flag.Int64("rows", 200_000, "rows to stream per protocol")
		d       = flag.Int("d", 32, "row dimension")
		sites   = flag.Int("sites", 8, "number of sites")
		w       = flag.Int64("w", 50_000, "window length in ticks")
		eps     = flag.Float64("eps", 0.1, "target covariance error")
		queries = flag.Int("queries", 50, "sketch queries to time at end of stream")
		seed    = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Parse()

	// Pre-generate the rows so the timed loop measures Observe alone.
	rng := rand.New(rand.NewSource(*seed))
	vs := make([][]float64, 4096)
	for i := range vs {
		v := make([]float64, *d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vs[i] = v
	}
	siteOf := make([]int, len(vs))
	for i := range siteOf {
		siteOf[i] = rng.Intn(*sites)
	}

	var results []result
	for _, proto := range []distwindow.Protocol{distwindow.PWOR, distwindow.DA1, distwindow.DA2} {
		tr, err := distwindow.New(distwindow.Config{
			Protocol: proto, D: *d, W: *w, Eps: *eps, Sites: *sites, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		// The auditor supplies words/window and the error sanity figures;
		// audit sparsely so its shadow cost stays out of the update rate.
		if err := tr.EnableAudit(distwindow.AuditConfig{EveryRows: 1 << 30}); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		for i := int64(1); i <= *rows; i++ {
			k := int(i) & (len(vs) - 1)
			tr.Observe(siteOf[k], distwindow.Row{T: i, V: vs[k]})
		}
		elapsed := time.Since(start).Seconds()
		if _, ok := tr.AuditTick(); !ok {
			log.Fatal("audit tick failed")
		}

		qStart := time.Now()
		for i := 0; i < *queries; i++ {
			_ = tr.Sketch()
		}
		qMs := time.Since(qStart).Seconds() * 1e3 / float64(*queries)

		am, _ := tr.Audit()
		results = append(results, result{
			Protocol:       string(proto),
			Rows:           *rows,
			UpdatesPerSec:  float64(*rows) / elapsed,
			WordsPerWindow: am.WordsPerWindow,
			TotalWords:     tr.Stats().TotalWords(),
			SketchQueryMs:  qMs,
			Queries:        *queries,
			MaxErr:         am.MaxErr,
			MeanErr:        am.MeanErr,
			Eps:            *eps,
		})
		fmt.Printf("%-10s %10.0f rows/s  %12.0f words/window  %8.3f ms/query\n",
			proto, float64(*rows)/elapsed, am.WordsPerWindow, qMs)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoArch:    fmt.Sprintf("d=%d sites=%d w=%d eps=%g rows=%d", *d, *sites, *w, *eps, *rows),
		Results:   results,
	}); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
