// Command plotfig turns trackbench's CSV output into the paper's figure
// panels as SVG files — one per (dataset, panel) pair:
//
//	trackbench -exp all -csv points.csv
//	plotfig -in points.csv -out figures/
//
// Panels: err-vs-eps (a), msg-vs-eps (b), err-vs-msg (c), maxerr-vs-msg
// (d), err-vs-m (e), msg-vs-m (f), space-vs-eps (Figure 4).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"distwindow/internal/svgplot"
)

type row struct {
	dataset  string
	protocol string
	eps      float64
	sites    int
	avgErr   float64
	maxErr   float64
	msgWords float64
	space    float64
}

func main() {
	var (
		in  = flag.String("in", "experiments.csv", "CSV written by trackbench -csv")
		out = flag.String("out", "figures", "output directory for SVGs")
	)
	flag.Parse()

	rows, err := readCSV(*in)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	byDataset := map[string][]row{}
	for _, r := range rows {
		byDataset[r.dataset] = append(byDataset[r.dataset], r)
	}
	written := 0
	for ds, rs := range byDataset {
		// ε-sweep rows are those at the default m=20; site-sweep rows vary m
		// at ε=0.05.
		var epsRows, siteRows []row
		for _, r := range rs {
			if r.sites == 20 {
				epsRows = append(epsRows, r)
			}
			if r.eps == 0.05 {
				siteRows = append(siteRows, r)
			}
		}
		panels := []struct {
			name string
			rows []row
			logx bool
			logy bool
			xl   string
			yl   string
			xf   func(row) float64
			yf   func(row) float64
		}{
			{"a_err_vs_eps", epsRows, false, false, "epsilon", "avg covariance error", func(r row) float64 { return r.eps }, func(r row) float64 { return r.avgErr }},
			{"b_msg_vs_eps", epsRows, false, true, "epsilon", "words per window", func(r row) float64 { return r.eps }, func(r row) float64 { return r.msgWords }},
			{"c_err_vs_msg", epsRows, true, false, "words per window", "avg covariance error", func(r row) float64 { return r.msgWords }, func(r row) float64 { return r.avgErr }},
			{"d_maxerr_vs_msg", epsRows, true, false, "words per window", "max covariance error", func(r row) float64 { return r.msgWords }, func(r row) float64 { return r.maxErr }},
			{"e_err_vs_m", siteRows, false, false, "sites m", "avg covariance error", func(r row) float64 { return float64(r.sites) }, func(r row) float64 { return r.avgErr }},
			{"f_msg_vs_m", siteRows, false, true, "sites m", "words per window", func(r row) float64 { return float64(r.sites) }, func(r row) float64 { return r.msgWords }},
			{"space_vs_eps", epsRows, false, true, "epsilon", "max site words", func(r row) float64 { return r.eps }, func(r row) float64 { return r.space }},
		}
		for _, panel := range panels {
			p := svgplot.Plot{
				Title:  fmt.Sprintf("%s — %s", ds, strings.ReplaceAll(panel.name[2:], "_", " ")),
				XLabel: panel.xl, YLabel: panel.yl,
				LogX: panel.logx, LogY: panel.logy,
			}
			byProto := map[string][]svgplot.Point{}
			var order []string
			for _, r := range panel.rows {
				if _, ok := byProto[r.protocol]; !ok {
					order = append(order, r.protocol)
				}
				byProto[r.protocol] = append(byProto[r.protocol], svgplot.Point{X: panel.xf(r), Y: panel.yf(r)})
			}
			if len(order) == 0 {
				continue
			}
			for _, name := range order {
				p.Series = append(p.Series, svgplot.Series{Name: name, Points: byProto[name]})
			}
			path := filepath.Join(*out, sanitize(ds)+"_"+panel.name+".svg")
			if err := os.WriteFile(path, []byte(p.Render()), 0o644); err != nil {
				log.Fatal(err)
			}
			written++
		}
	}
	fmt.Printf("wrote %d figure panels to %s\n", written, *out)
}

func readCSV(path string) ([]row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rd := csv.NewReader(f)
	recs, err := rd.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) < 2 {
		return nil, fmt.Errorf("plotfig: %s has no data rows", path)
	}
	col := map[string]int{}
	for i, name := range recs[0] {
		col[name] = i
	}
	need := []string{"dataset", "protocol", "eps", "sites", "avg_err", "max_err", "msg_words", "site_space"}
	for _, n := range need {
		if _, ok := col[n]; !ok {
			return nil, fmt.Errorf("plotfig: missing column %q", n)
		}
	}
	var out []row
	for _, rec := range recs[1:] {
		f := func(name string) float64 {
			v, _ := strconv.ParseFloat(rec[col[name]], 64)
			return v
		}
		out = append(out, row{
			dataset:  rec[col["dataset"]],
			protocol: rec[col["protocol"]],
			eps:      f("eps"),
			sites:    int(f("sites")),
			avgErr:   f("avg_err"),
			maxErr:   f("max_err"),
			msgWords: f("msg_words"),
			space:    f("site_space"),
		})
	}
	return out, nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
