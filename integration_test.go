package distwindow_test

// Integration tests: every protocol against every dataset generator, plus
// adversarial stream shapes (bursts, silence, regime flips, degenerate
// sites). These exercise the full stack — datagen → facade → protocol →
// substrate — with the exact window as ground truth.

import (
	"math"
	"math/rand"
	"testing"

	"distwindow"
	"distwindow/internal/datagen"
	"distwindow/internal/stream"
	"distwindow/internal/window"
	"distwindow/mat"
)

// replay drives a dataset through a tracker, returning average covariance
// error over periodic checkpoints in the steady state.
func replay(t *testing.T, tr *distwindow.Tracker, evs []stream.Event, w int64, d int, every int) float64 {
	t.Helper()
	u := window.NewUnion(w, d)
	var sum float64
	n := 0
	for i, e := range evs {
		tr.Observe(e.Site, distwindow.Row{T: e.Row.T, V: e.Row.V})
		u.Add(e.Row)
		if i > len(evs)/4 && i%every == 0 && u.FrobSq() > 0 {
			err := u.ErrOf(tr.Sketch())
			if math.IsNaN(err) || math.IsInf(err, 0) {
				t.Fatalf("invalid error at event %d", i)
			}
			sum += err
			n++
		}
	}
	if n == 0 {
		t.Fatal("no checkpoints evaluated")
	}
	return sum / float64(n)
}

func TestIntegrationProtocolDatasetMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("integration matrix is slow")
	}
	pamap := datagen.PAMAPSim(datagen.Config{N: 6000, RowsPerWindow: 1500, Sites: 6, Seed: 1})
	synth := datagen.Synthetic(24, datagen.Config{N: 6000, RowsPerWindow: 1500, Sites: 6, Seed: 2})
	wiki := datagen.WikiSim(64, datagen.Config{N: 5000, RowsPerWindow: 1000, Sites: 6, Seed: 3})
	protos := []distwindow.Protocol{
		distwindow.PWOR, distwindow.PWORAll, distwindow.ESWOR, distwindow.ESWORAll,
		distwindow.DA1, distwindow.DA2, distwindow.DA2C,
	}
	// Loose smoke bounds: sampling on WIKI-sim's extreme skew with a small
	// ℓ is noisy; the point is end-to-end sanity, shape checks live in the
	// harness.
	bound := map[string]float64{"PAMAP-sim": 0.40, "SYNTHETIC": 0.40, "WIKI-sim": 0.60}
	for _, ds := range []datagen.Dataset{pamap, synth, wiki} {
		for _, p := range protos {
			tr, err := distwindow.New(distwindow.Config{
				Protocol: p, D: ds.D, W: ds.W, Eps: 0.15, Sites: 6, Ell: 192, Seed: 7,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", ds.Name, p, err)
			}
			avg := replay(t, tr, ds.Events, ds.W, ds.D, 500)
			if avg > bound[ds.Name] {
				t.Errorf("%s/%s: avg err %.4f > %.2f", ds.Name, p, avg, bound[ds.Name])
			}
		}
	}
}

func TestIntegrationBurstThenSilence(t *testing.T) {
	// A burst of rows, then a long silent gap that expires everything,
	// then a second burst: the sketch must follow both transitions.
	const d = 5
	w := int64(1000)
	for _, p := range []distwindow.Protocol{distwindow.PWOR, distwindow.DA1, distwindow.DA2} {
		tr, err := distwindow.New(distwindow.Config{Protocol: p, D: d, W: w, Eps: 0.2, Sites: 3, Ell: 64, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		u := window.NewUnion(w, d)
		mkRow := func(tt int64) stream.Row {
			v := make([]float64, d)
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			return stream.Row{T: tt, V: v}
		}
		for i := int64(1); i <= 800; i++ {
			r := mkRow(i)
			tr.Observe(rng.Intn(3), distwindow.Row{T: r.T, V: r.V})
			u.Add(r)
		}
		// Silence: jump far ahead.
		tr.Advance(50_000)
		u.Advance(50_000)
		if f := mat.FrobSq(tr.Sketch()); f > 1e-6 {
			t.Errorf("%s: sketch mass %v after silence", p, f)
		}
		// Second burst at the new epoch.
		for i := int64(50_001); i <= 50_600; i++ {
			r := mkRow(i)
			tr.Observe(rng.Intn(3), distwindow.Row{T: r.T, V: r.V})
			u.Add(r)
		}
		if err := u.ErrOf(tr.Sketch()); err > 0.5 {
			t.Errorf("%s: post-gap error %v", p, err)
		}
	}
}

func TestIntegrationSingleSite(t *testing.T) {
	// m=1 degenerates to the centralized sliding-window problem.
	for _, p := range []distwindow.Protocol{distwindow.PWORAll, distwindow.DA1, distwindow.DA2} {
		tr, err := distwindow.New(distwindow.Config{Protocol: p, D: 4, W: 500, Eps: 0.2, Sites: 1, Ell: 64, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(4))
		u := window.NewUnion(500, 4)
		for i := int64(1); i <= 2000; i++ {
			v := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			tr.Observe(0, distwindow.Row{T: i, V: v})
			u.Add(stream.Row{T: i, V: v})
		}
		if err := u.ErrOf(tr.Sketch()); err > 0.5 {
			t.Errorf("%s single-site error %v", p, err)
		}
	}
}

func TestIntegrationAllTrafficToOneSite(t *testing.T) {
	// Pathological assignment: 10 sites configured, all rows to site 0.
	for _, p := range []distwindow.Protocol{distwindow.PWOR, distwindow.DA2} {
		tr, err := distwindow.New(distwindow.Config{Protocol: p, D: 4, W: 500, Eps: 0.2, Sites: 10, Ell: 48, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(6))
		u := window.NewUnion(500, 4)
		for i := int64(1); i <= 1500; i++ {
			v := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			tr.Observe(0, distwindow.Row{T: i, V: v})
			u.Add(stream.Row{T: i, V: v})
		}
		if err := u.ErrOf(tr.Sketch()); err > 0.5 {
			t.Errorf("%s skewed-assignment error %v", p, err)
		}
	}
}

func TestIntegrationRegimeFlip(t *testing.T) {
	// The window matrix rotates to an orthogonal subspace mid-stream; once
	// the old regime expires the sketch must reflect only the new one.
	const d = 6
	w := int64(600)
	tr, err := distwindow.New(distwindow.Config{Protocol: distwindow.DA2, D: d, W: w, Eps: 0.1, Sites: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := int64(1); i <= 1500; i++ {
		v := make([]float64, d)
		if i <= 700 {
			v[0] = rng.NormFloat64() * 3 // regime A: axis 0
		} else {
			v[d-1] = rng.NormFloat64() * 3 // regime B: axis d−1
		}
		tr.Observe(rng.Intn(4), distwindow.Row{T: i, V: v})
	}
	b := tr.Sketch()
	g := mat.Gram(b)
	if g.At(0, 0) > 0.05*g.At(d-1, d-1) {
		t.Fatalf("old regime energy %v should have expired (new %v)", g.At(0, 0), g.At(d-1, d-1))
	}
}

func TestIntegrationDuplicateTimestamps(t *testing.T) {
	// Many rows can share one timestamp (batch arrivals).
	tr, err := distwindow.New(distwindow.Config{Protocol: distwindow.DA1, D: 3, W: 100, Eps: 0.2, Sites: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	u := window.NewUnion(100, 3)
	for i := int64(1); i <= 300; i++ {
		ts := (i / 5) + 1 // 5 rows per tick
		v := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		tr.Observe(int(i)%2, distwindow.Row{T: ts, V: v})
		u.Add(stream.Row{T: ts, V: v})
	}
	if err := u.ErrOf(tr.Sketch()); err > 0.6 {
		t.Fatalf("duplicate-timestamp error %v", err)
	}
}

func TestIntegrationZeroRows(t *testing.T) {
	// All-zero rows carry no covariance mass and must not break anything.
	for _, p := range []distwindow.Protocol{distwindow.PWOR, distwindow.ESWOR, distwindow.DA1, distwindow.DA2} {
		tr, err := distwindow.New(distwindow.Config{Protocol: p, D: 3, W: 100, Eps: 0.2, Sites: 2, Ell: 8, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(1); i <= 200; i++ {
			v := []float64{0, 0, 0}
			if i%3 == 0 {
				v = []float64{1, 0, 0}
			}
			tr.Observe(int(i)%2, distwindow.Row{T: i, V: v})
		}
		b := tr.Sketch()
		if b.Cols() != 3 {
			t.Fatalf("%s: bad sketch shape", p)
		}
	}
}

func TestIntegrationSamplingSeedsGiveDifferentSamplesSameGuarantee(t *testing.T) {
	ds := datagen.Synthetic(10, datagen.Config{N: 3000, RowsPerWindow: 800, Sites: 4, Seed: 12})
	var errs []float64
	for seed := int64(0); seed < 3; seed++ {
		tr, err := distwindow.New(distwindow.Config{
			Protocol: distwindow.PWORAll, D: ds.D, W: ds.W, Eps: 0.2, Sites: 4, Ell: 128, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, replay(t, tr, ds.Events, ds.W, ds.D, 400))
	}
	for _, e := range errs {
		if e > 0.4 {
			t.Fatalf("seed-varied errors %v exceed bound", errs)
		}
	}
}
