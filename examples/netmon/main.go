// Distributed network monitoring: a fleet of routers streams per-flow
// feature vectors; the coordinator tracks (a) total traffic volume over
// the last window with the deterministic SUM tracker and (b) a covariance
// sketch whose top singular direction exposes volumetric attacks
// (DDoS-style traffic concentrates enormous energy along one feature
// direction — the paper's §I network-monitoring motivation).
//
// Run with: go run ./examples/netmon
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distwindow"
	"distwindow/mat"
)

const (
	d       = 12 // flow features: bytes, pkts, ports, flags, entropy, ...
	routers = 20
	w       = int64(10_000)
	n       = 60_000
	// A DDoS burst floods feature pattern attackDir between these rows.
	attackStart = 35_000
	attackEnd   = 42_000
)

func main() {
	sketcher, err := distwindow.New(distwindow.Config{
		Protocol: distwindow.DA2,
		D:        d,
		W:        w,
		Eps:      0.05,
		Sites:    routers,
		Seed:     5,
	})
	if err != nil {
		log.Fatal(err)
	}
	volume, err := distwindow.NewAggregate(distwindow.Config{
		W: w, Eps: 0.05, Sites: routers,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(13))
	attackDir := unitVector(rng)

	fmt.Println("  time   volume(est)   top-σ²/F̂²   state")
	var alarmsDuring, alarmsOutside int
	for i := 1; i <= n; i++ {
		v := flowVector(rng)
		if i >= attackStart && i < attackEnd && rng.Intn(3) == 0 {
			// Attack flows: huge energy along one fixed direction.
			for j := range v {
				v[j] += 25 * attackDir[j]
			}
		}
		router := rng.Intn(routers)
		if err := sketcher.TryObserve(router, distwindow.Row{T: int64(i), V: v}); err != nil {
			log.Fatal(err)
		}
		if err := volume.TryObserve(router, int64(i), mat.VecNormSq(v)); err != nil {
			log.Fatal(err)
		}

		if i%2_000 == 0 && i > int(w) {
			b := sketcher.Sketch()
			svd := mat.ThinSVD(b)
			frob := mat.FrobSq(b)
			conc := 0.0
			if frob > 0 && len(svd.S) > 0 {
				conc = svd.S[0] * svd.S[0] / frob
			}
			state := "ok"
			// Alarm when one direction holds most of the window's energy.
			if conc > 0.5 {
				state = "ALARM: volumetric anomaly"
				if i >= attackStart && i < attackEnd+int(w) {
					alarmsDuring++
				} else {
					alarmsOutside++
				}
			}
			fmt.Printf("%7d   %11.0f   %9.3f   %s\n", i, volume.Estimate(), conc, state)
		}
	}

	fmt.Printf("\nalarms during/after attack window: %d, false alarms: %d\n",
		alarmsDuring, alarmsOutside)
	fmt.Printf("sketch communication: %s\n", distwindow.FormatStats(sketcher.Stats()))
	fmt.Printf("volume communication: %s\n", distwindow.FormatStats(volume.Stats()))
}

// flowVector draws a benign flow: uncorrelated light-tailed features.
func flowVector(rng *rand.Rand) []float64 {
	v := make([]float64, d)
	for j := range v {
		v[j] = rng.NormFloat64()
	}
	return v
}

func unitVector(rng *rand.Rand) []float64 {
	v := make([]float64, d)
	for j := range v {
		v[j] = rng.NormFloat64()
	}
	n := mat.VecNorm(v)
	for j := range v {
		v[j] /= n
	}
	return v
}
