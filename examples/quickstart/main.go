// Quickstart: track a covariance sketch of a distributed matrix stream
// over a sliding window, then compare the coordinator's sketch against the
// exact window matrix.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distwindow"
	"distwindow/mat"
)

func main() {
	const (
		d     = 16            // row dimension
		sites = 8             // distributed sites
		w     = int64(20_000) // window: 20k ticks
		n     = 30_000        // rows to stream
	)

	// DA2 is the paper's recommendation for larger dimensions: one-way
	// communication, deterministic ε guarantee.
	tr, err := distwindow.New(distwindow.Config{
		Protocol: distwindow.DA2,
		D:        d,
		W:        w,
		Eps:      0.05,
		Sites:    sites,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Stream Gaussian rows, one per tick, to random sites. Keep the exact
	// window contents on the side so we can audit the sketch at the end —
	// a real deployment obviously wouldn't.
	rng := rand.New(rand.NewSource(2))
	var recent [][]float64
	var recentT []int64
	for i := 1; i <= n; i++ {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		now := int64(i)
		if err := tr.TryObserve(rng.Intn(sites), distwindow.Row{T: now, V: v}); err != nil {
			log.Fatal(err)
		}
		recent = append(recent, v)
		recentT = append(recentT, now)
	}

	// Materialize the exact window matrix A_w for the audit.
	var live [][]float64
	for i, t := range recentT {
		if t > int64(n)-w {
			live = append(live, recent[i])
		}
	}
	aw := mat.FromRows(live)

	b := tr.Sketch()
	fmt.Printf("window rows:      %d (d=%d)\n", aw.Rows(), d)
	fmt.Printf("sketch rows:      %d\n", b.Rows())
	fmt.Printf("covariance error: %.4f (target ε=0.05)\n", distwindow.CovErr(aw, b))
	fmt.Printf("communication:    %s\n", distwindow.FormatStats(tr.Stats()))
	raw := int64(aw.Rows()) * int64(d+2)
	fmt.Printf("vs. centralizing the window: %d words\n", raw)
}
