// PCA-based change detection over distributed sliding windows — the
// paper's motivating application (1), after Qahtan et al. (KDD 2015):
// compare the approximate PCA basis of the current (testing) window
// against a reference basis extracted earlier; a large subspace distance
// flags a distribution change.
//
// The stream switches its generating subspace at known change points. The
// coordinator only ever sees the protocol's covariance sketch, yet the
// detector localizes every change.
//
// Run with: go run ./examples/changedetect
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distwindow"
	"distwindow/mat"
)

const (
	d        = 20
	rank     = 3
	sites    = 12
	w        = int64(6_000)
	segment  = 15_000 // rows per regime
	regimes  = 4
	checkAt  = 1_000
	alarmThr = 0.4
)

func main() {
	tr, err := distwindow.New(distwindow.Config{
		Protocol: distwindow.PWORAll, // sampling keeps real rows: interpretable
		D:        d,
		W:        w,
		Eps:      0.05,
		Sites:    sites,
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	bases := make([]*mat.Dense, regimes)
	for i := range bases {
		bases[i] = randomBasis(rng)
	}

	var reference distwindow.PCA
	haveRef := false
	var alarms []int

	total := segment * regimes
	for i := 1; i <= total; i++ {
		regime := (i - 1) / segment
		v := samplePoint(bases[regime], rng)
		if err := tr.TryObserve(rng.Intn(sites), distwindow.Row{T: int64(i), V: v}); err != nil {
			log.Fatal(err)
		}

		if i%checkAt != 0 || i < int(w) {
			continue
		}
		current := distwindow.SketchPCA(tr.Sketch(), rank)
		if !haveRef {
			reference = current
			haveRef = true
			continue
		}
		dist := distwindow.SubspaceDistance(reference, current)
		if dist > alarmThr {
			alarms = append(alarms, i)
			// Re-baseline on the new regime, as the KDD-2015 framework
			// does after raising a change alarm.
			reference = current
			fmt.Printf("t=%6d  CHANGE detected (subspace distance %.2f)\n", i, dist)
		}
	}

	fmt.Printf("\ntrue change points: t=%d, %d, %d\n", segment, 2*segment, 3*segment)
	fmt.Printf("alarms raised: %v\n", alarms)
	detected := 0
	for _, cp := range []int{segment, 2 * segment, 3 * segment} {
		for _, a := range alarms {
			// The window needs up to W ticks to flush the old regime.
			if a >= cp && a <= cp+int(w)+checkAt {
				detected++
				break
			}
		}
	}
	fmt.Printf("changes detected within one window: %d/3\n", detected)
	fmt.Printf("communication: %s\n", distwindow.FormatStats(tr.Stats()))
}

func randomBasis(rng *rand.Rand) *mat.Dense {
	g := mat.NewDense(d, rank)
	for i := 0; i < d; i++ {
		for j := 0; j < rank; j++ {
			g.Set(i, j, rng.NormFloat64())
		}
	}
	return mat.HouseholderQR(g).Q.T()
}

func samplePoint(basis *mat.Dense, rng *rand.Rand) []float64 {
	v := make([]float64, d)
	for i := 0; i < rank; i++ {
		c := rng.NormFloat64() * 3
		row := basis.Row(i)
		for j := range v {
			v[j] += c * row[j]
		}
	}
	for j := range v {
		v[j] += rng.NormFloat64() * 0.15
	}
	return v
}
