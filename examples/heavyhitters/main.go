// Distributed sliding-window heavy hitters: the deterministic C−Ĉ
// tracking template of §III-A applied to item frequencies (the paper
// notes the same idea covers counts, frequencies and order statistics).
//
// A fleet of edge caches reports content-item requests; the coordinator
// continuously knows every item whose request frequency over the last W
// ticks exceeds a threshold, plus the windowed request-latency quantiles —
// with communication far below forwarding each request.
//
// Run with: go run ./examples/heavyhitters
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distwindow"
)

const (
	sites = 16
	w     = int64(20_000)
	n     = 100_000
)

func main() {
	freq, err := distwindow.NewFrequency(distwindow.Config{W: w, Eps: 0.02, Sites: sites})
	if err != nil {
		log.Fatal(err)
	}
	// Rank queries pay one cell per dyadic level, so quantile tracking is
	// chattier per unit ε than frequency tracking (Θ(L²/ε) reports per
	// site-window); 0.15 rank error is ample for latency percentiles.
	lat, err := distwindow.NewQuantile(distwindow.Config{W: w, Eps: 0.15, Sites: sites})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	zipf := rand.NewZipf(rng, 1.2, 1, 9999)

	// Phase 1: organic Zipf traffic. Phase 2: item 7777 goes viral for a
	// while. Phase 3: back to organic — the window must forget it.
	hot := func(i int) bool { return i > n/3 && i < n/2 }
	for i := 1; i <= n; i++ {
		item := int64(zipf.Uint64())
		if hot(i) && rng.Intn(3) == 0 {
			item = 7777
		}
		site := rng.Intn(sites)
		now := int64(i)
		freq.Observe(site, now, item)
		// Request latency: log-normal-ish, heavier under viral load.
		l := rng.Float64() * 0.2
		if hot(i) {
			l += rng.Float64() * 0.3
		}
		lat.Observe(site, now, l)

		if i%(n/10) == 0 {
			top := freq.TopK(3)
			fmt.Printf("t=%6d  N̂=%7.0f  p50=%.3f p99=%.3f  top3:", i, freq.Total(),
				lat.Quantile(0.5), lat.Quantile(0.99))
			for _, h := range top {
				fmt.Printf("  #%d(%.0f)", h.Item, h.Freq)
			}
			fmt.Println()
		}
	}

	fmt.Println()
	if f := freq.Estimate(7777); f > 0.05*freq.Total() {
		fmt.Printf("item 7777 still heavy at end: %f — window failed to forget\n", f)
	} else {
		fmt.Println("viral item 7777 correctly expired from the window")
	}
	fmt.Printf("frequency traffic: %s\n", distwindow.FormatStats(freq.Stats()))
	fmt.Printf("quantile  traffic: %s\n", distwindow.FormatStats(lat.Stats()))
	fmt.Printf("vs. forwarding every request: %d words\n", 2*n)
}
