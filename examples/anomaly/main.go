// Window-based anomaly detection over distributed streams — the paper's
// motivating application (2), extending Huang & Kasiviswanathan's
// sketch-based streaming anomaly detection to sliding windows and
// distributed sites.
//
// A fleet of sensors streams d-dimensional measurements that normally lie
// near a low-dimensional subspace which drifts over time (concept drift —
// the reason a sliding window is needed). The coordinator keeps a
// covariance sketch of the last W ticks only; new points are scored by
// their energy outside the sketch's top-k subspace. Anomalies injected at
// known times must score high, normal points low, even after the normal
// subspace has rotated away from where it started.
//
// Run with: go run ./examples/anomaly
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"distwindow"
	"distwindow/mat"
)

const (
	d       = 24
	rank    = 3 // intrinsic dimension of normal data
	sites   = 10
	w       = int64(8_000)
	n       = 40_000
	scoreAt = 500 // score one point every scoreAt arrivals
)

func main() {
	tr, err := distwindow.New(distwindow.Config{
		Protocol: distwindow.DA1, // small d: the paper recommends DA1
		D:        d,
		W:        w,
		Eps:      0.05,
		Sites:    sites,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	basis := randomBasis(rng) // current normal subspace, drifts over time

	var normalScores, anomalyScores []float64
	for i := 1; i <= n; i++ {
		// Slow subspace drift: re-draw one basis vector occasionally.
		if i%5_000 == 0 {
			basis = rotateBasis(basis, rng)
		}
		v := normalPoint(basis, rng)
		if err := tr.TryObserve(rng.Intn(sites), distwindow.Row{T: int64(i), V: v}); err != nil {
			log.Fatal(err)
		}

		if i > int(w) && i%scoreAt == 0 {
			scorer := distwindow.NewAnomalyScorer(tr.Sketch(), rank)
			normalScores = append(normalScores, scorer.Score(normalPoint(basis, rng)))
			anomalyScores = append(anomalyScores, scorer.Score(anomalousPoint(basis, rng)))
		}
	}

	fmt.Printf("scored %d checkpoints while the normal subspace drifted %d times\n",
		len(normalScores), n/5_000)
	fmt.Printf("normal  points: mean score %.3f max %.3f\n", mean(normalScores), max(normalScores))
	fmt.Printf("anomaly points: mean score %.3f min %.3f\n", mean(anomalyScores), min(anomalyScores))
	thr := 0.5
	tp, fp := 0, 0
	for _, s := range anomalyScores {
		if s > thr {
			tp++
		}
	}
	for _, s := range normalScores {
		if s > thr {
			fp++
		}
	}
	fmt.Printf("at threshold %.1f: %d/%d anomalies detected, %d/%d false positives\n",
		thr, tp, len(anomalyScores), fp, len(normalScores))
	fmt.Printf("communication: %s\n", distwindow.FormatStats(tr.Stats()))
}

// randomBasis draws a rank×d orthonormal basis.
func randomBasis(rng *rand.Rand) *mat.Dense {
	g := mat.NewDense(d, rank)
	for i := 0; i < d; i++ {
		for j := 0; j < rank; j++ {
			g.Set(i, j, rng.NormFloat64())
		}
	}
	return mat.HouseholderQR(g).Q.T()
}

// rotateBasis replaces one direction, modelling concept drift.
func rotateBasis(b *mat.Dense, rng *rand.Rand) *mat.Dense {
	g := b.T() // d×rank
	col := rng.Intn(rank)
	for i := 0; i < d; i++ {
		g.Set(i, col, rng.NormFloat64())
	}
	return mat.HouseholderQR(g).Q.T()
}

// normalPoint lies in the current subspace plus small noise.
func normalPoint(basis *mat.Dense, rng *rand.Rand) []float64 {
	v := make([]float64, d)
	for i := 0; i < rank; i++ {
		c := rng.NormFloat64() * 4
		row := basis.Row(i)
		for j := range v {
			v[j] += c * row[j]
		}
	}
	for j := range v {
		v[j] += rng.NormFloat64() * 0.1
	}
	return v
}

// anomalousPoint has most of its energy orthogonal to the normal subspace.
func anomalousPoint(basis *mat.Dense, rng *rand.Rand) []float64 {
	v := make([]float64, d)
	for j := range v {
		v[j] = rng.NormFloat64()
	}
	// Project out the normal subspace, keep a dash of in-subspace energy.
	proj := mat.MulVec(basis, v)
	for i := 0; i < rank; i++ {
		row := basis.Row(i)
		for j := range v {
			v[j] -= proj[i] * row[j]
		}
	}
	scale := 4 / math.Max(mat.VecNorm(v), 1e-9)
	for j := range v {
		v[j] *= scale
	}
	return v
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}
