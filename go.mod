module distwindow

go 1.22
