package eh

import (
	"math"
	"testing"
)

// FuzzHistogramInvariant feeds arbitrary weight/gap byte streams into the
// histogram and checks the estimator's relative-error contract against an
// exact replay. Run with `go test -fuzz=FuzzHistogram` for exploration;
// the seed corpus below runs in normal test mode.
func FuzzHistogramInvariant(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{255, 0, 255, 0, 1, 1, 1, 1, 200, 3})
	f.Add([]byte{10, 10, 10, 10, 10, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		const (
			eps = 0.2
			w   = int64(64)
		)
		h := New(w, eps)
		type item struct {
			t int64
			w float64
		}
		var items []item
		now := int64(0)
		for i := 0; i+1 < len(data); i += 2 {
			now += int64(data[i] % 8)
			weight := 0.5 + float64(data[i+1])
			h.Insert(now, weight)
			items = append(items, item{now, weight})
		}
		var truth float64
		for _, it := range items {
			if it.t > now-w && it.t <= now {
				truth += it.w
			}
		}
		got := h.Query()
		if truth == 0 {
			if got != 0 {
				t.Fatalf("Query = %v on empty window", got)
			}
			return
		}
		if rel := math.Abs(got-truth) / truth; rel > 2*eps {
			t.Fatalf("rel err %v > %v (truth %v got %v, %d items)", rel, 2*eps, truth, got, len(items))
		}
	})
}
