package eh

import "fmt"

// BucketSnapshot is one serialized bucket.
type BucketSnapshot struct {
	Sum            float64
	Newest, Oldest int64
}

// Snapshot is a serializable copy of a Histogram.
type Snapshot struct {
	W       int64
	Eps2    float64
	Buckets []BucketSnapshot
	Pending int
	Version uint64
}

// Snapshot captures the histogram's state.
func (h *Histogram) Snapshot() Snapshot {
	bs := make([]BucketSnapshot, len(h.buckets))
	for i, b := range h.buckets {
		bs[i] = BucketSnapshot{Sum: b.sum, Newest: b.newest, Oldest: b.oldest}
	}
	return Snapshot{W: h.w, Eps2: h.eps2, Buckets: bs, Pending: h.pending, Version: h.version}
}

// Restore rebuilds a histogram from a snapshot.
func Restore(sn Snapshot) (*Histogram, error) {
	if sn.W <= 0 || sn.Eps2 <= 0 || sn.Eps2 >= 0.5 {
		return nil, fmt.Errorf("eh: invalid snapshot w=%d eps2=%v", sn.W, sn.Eps2)
	}
	h := &Histogram{w: sn.W, eps2: sn.Eps2, pending: sn.Pending, version: sn.Version}
	h.buckets = make([]bucket, len(sn.Buckets))
	prev := int64(-1 << 62)
	for i, b := range sn.Buckets {
		if b.Sum <= 0 || b.Oldest > b.Newest || b.Newest < prev {
			return nil, fmt.Errorf("eh: invalid snapshot bucket %d", i)
		}
		prev = b.Newest
		h.buckets[i] = bucket{sum: b.Sum, newest: b.Newest, oldest: b.Oldest}
	}
	return h, nil
}
