package eh

import (
	"math/rand"
	"testing"
)

func BenchmarkInsertUniform(b *testing.B) {
	h := New(100_000, 0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Insert(int64(i), 1)
	}
}

func BenchmarkInsertSkewed(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	weights := make([]float64, 4096)
	for i := range weights {
		weights[i] = 0.01 + rng.ExpFloat64()*100
	}
	h := New(100_000, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Insert(int64(i), weights[i%len(weights)])
	}
}

func BenchmarkQuery(b *testing.B) {
	h := New(100_000, 0.05)
	for i := int64(0); i < 50_000; i++ {
		h.Insert(i, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Query()
	}
}
