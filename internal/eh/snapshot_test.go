package eh

import (
	"math/rand"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := New(500, 0.1)
	for i := int64(1); i <= 2000; i++ {
		h.Insert(i, 0.5+rng.Float64())
	}
	r, err := Restore(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if r.Query() != h.Query() || r.Exact() != h.Exact() || r.Buckets() != h.Buckets() {
		t.Fatal("restored histogram differs")
	}
	// Continued inserts stay identical.
	for i := int64(2001); i <= 2500; i++ {
		w := 0.5 + rng.Float64()
		h.Insert(i, w)
		r.Insert(i, w)
	}
	if r.Query() != h.Query() || r.Buckets() != h.Buckets() {
		t.Fatal("restored histogram diverged")
	}
}

func TestSnapshotRestoreRejectsCorrupt(t *testing.T) {
	cases := []Snapshot{
		{W: 0, Eps2: 0.1},
		{W: 10, Eps2: 0},
		{W: 10, Eps2: 0.1, Buckets: []BucketSnapshot{{Sum: -1, Newest: 1, Oldest: 1}}},
		{W: 10, Eps2: 0.1, Buckets: []BucketSnapshot{{Sum: 1, Newest: 1, Oldest: 5}}},                                 // oldest > newest
		{W: 10, Eps2: 0.1, Buckets: []BucketSnapshot{{Sum: 1, Newest: 9, Oldest: 9}, {Sum: 1, Newest: 2, Oldest: 2}}}, // disorder
	}
	for i, c := range cases {
		if _, err := Restore(c); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}
