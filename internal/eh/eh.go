// Package eh implements a generalized exponential histogram (gEH) in the
// spirit of Datar, Gionis, Indyk and Motwani (SICOMP 2002) for maintaining
// an ε-relative estimate of the sum of positive weights over a time-based
// sliding window in O(1/ε · log(NR)) buckets.
//
// Buckets cover contiguous time ranges (oldest first) and store exact
// subsums. The merge rule generalizes the power-of-two levels to arbitrary
// weights: two adjacent buckets may merge only when their combined mass is
// at most (ε/2)× the total mass of all strictly newer buckets. Because
// newer buckets can only be joined by even newer arrivals — never removed
// before the merged bucket expires — the invariant
//
//	bucket.sum ≤ (ε/2) · (mass newer than bucket)
//
// established at merge time holds for the bucket's whole lifetime. Only
// the oldest bucket can straddle the window boundary; the estimator counts
// half of it (all of it when it holds a single item, which is then exact),
// so the relative error is at most ε/2 of the true window sum.
//
// Space: walking newest→oldest, every surviving merged bucket grows the
// suffix mass by a (1+ε/2) factor, so there are O(1/ε · log(NR)) buckets
// for weight ratio R and window count N.
package eh

import (
	"math"

	"distwindow/internal/obs"
	"distwindow/internal/trace"
)

// Histogram is a gEH over positive-weight items. Insert must be called
// with non-decreasing timestamps. The zero value is not usable; construct
// with New.
type Histogram struct {
	w       int64
	eps2    float64  // ε/2, the merge threshold factor
	buckets []bucket // oldest first
	pending int      // inserts since last compaction
	version uint64   // bumped on every structural change

	// sink receives bucket lifecycle events (created/merged/expired); nil
	// — the default — costs one branch per structural change. site tags
	// the events with the owning site's index.
	sink obs.Sink
	site int
	// tracer records bucket lifecycle instants under the caller's open
	// ingest span; nil — the default — costs one nil-check per event.
	tracer *trace.Tracer
}

type bucket struct {
	sum    float64
	newest int64 // timestamp of the most recent item merged in
	oldest int64 // timestamp of the earliest item merged in
}

// compactEvery bounds how many raw inserts accumulate between compaction
// passes; compaction is O(buckets), so this keeps amortized insert cost
// constant without letting the bucket list grow past O(1/ε·log NR)+32.
const compactEvery = 32

// New returns a histogram for a window of w ticks with error parameter
// eps in (0, 1).
func New(w int64, eps float64) *Histogram {
	if w <= 0 {
		panic("eh: window must be positive")
	}
	if eps <= 0 || eps >= 1 {
		panic("eh: eps must be in (0,1)")
	}
	return &Histogram{w: w, eps2: eps / 2, site: -1}
}

// SetSink installs an event sink for bucket lifecycle events, tagging them
// with the given site index (-1 for "no site"). A nil sink disables
// events. Install before feeding data; the field is not synchronized.
func (h *Histogram) SetSink(s obs.Sink, site int) {
	h.sink = s
	h.site = site
}

// SetTracer installs a causal tracer for bucket lifecycle instants
// (created/merged/expired), tagged with the given site index. The events
// attach under whatever span the tracer currently has open — the ingest
// root — and are dropped when none is. Install before feeding data; nil
// disables.
func (h *Histogram) SetTracer(tr *trace.Tracer, site int) {
	h.tracer = tr
	h.site = site
}

// Insert adds an item with the given positive weight and timestamp, then
// expires buckets that fall out of the window ending at t.
func (h *Histogram) Insert(t int64, weight float64) {
	if weight <= 0 {
		panic("eh: weight must be positive")
	}
	if math.IsNaN(weight) || math.IsInf(weight, 0) {
		panic("eh: weight must be finite")
	}
	h.buckets = append(h.buckets, bucket{sum: weight, newest: t, oldest: t})
	h.version++
	h.pending++
	if h.sink != nil {
		h.sink.OnEvent(obs.Event{Kind: obs.EvBucketCreated, Site: h.site, T: t})
	}
	h.tracer.Instant(trace.OpBucketCreate, h.site, t, 1)
	if h.pending >= compactEvery {
		h.compact()
	}
	h.Advance(t)
}

// compact greedily merges adjacent buckets from newest to oldest whenever
// the merge rule allows, restoring the space bound.
func (h *Histogram) compact() {
	h.pending = 0
	n := len(h.buckets)
	if n < 2 {
		return
	}
	out := make([]bucket, 0, n)
	// Walk newest → oldest accumulating into out (newest first).
	suffix := 0.0 // mass strictly newer than cur
	cur := h.buckets[n-1]
	for i := n - 2; i >= 0; i-- {
		b := h.buckets[i]
		if cur.sum+b.sum <= h.eps2*suffix {
			// Merge the older bucket into cur.
			cur.sum += b.sum
			cur.oldest = b.oldest
			continue
		}
		out = append(out, cur)
		suffix += cur.sum
		cur = b
	}
	out = append(out, cur)
	// Reverse into oldest-first order.
	for l, r := 0, len(out)-1; l < r; l, r = l+1, r-1 {
		out[l], out[r] = out[r], out[l]
	}
	if merged := n - len(out); merged > 0 {
		if h.sink != nil {
			h.sink.OnEvent(obs.Event{Kind: obs.EvBucketMerged, Site: h.site, N: merged})
		}
		h.tracer.Instant(trace.OpBucketMerge, h.site, 0, int64(merged))
	}
	h.buckets = out
}

// Advance expires buckets whose newest item is outside the window at now.
func (h *Histogram) Advance(now int64) {
	cut := now - h.w
	i := 0
	for i < len(h.buckets) && h.buckets[i].newest <= cut {
		i++
	}
	if i > 0 {
		h.buckets = h.buckets[i:]
		h.version++
		if h.sink != nil {
			h.sink.OnEvent(obs.Event{Kind: obs.EvBucketExpired, Site: h.site, T: now, N: i})
		}
		h.tracer.Instant(trace.OpBucketExpire, h.site, now, int64(i))
	}
}

// Version returns a counter that changes whenever the histogram's contents
// change — callers can skip recomputation while it is stable.
func (h *Histogram) Version() uint64 { return h.version }

// Query returns the window-sum estimate: the full mass of every bucket
// except the oldest, plus half of the oldest when it merged more than one
// item (only that bucket can straddle the window boundary; a single-item
// bucket is exact). Call Advance(now) first if time moved without inserts.
func (h *Histogram) Query() float64 {
	if len(h.buckets) == 0 {
		return 0
	}
	var s float64
	for _, b := range h.buckets[1:] {
		s += b.sum
	}
	ob := h.buckets[0]
	if ob.oldest == ob.newest {
		s += ob.sum
	} else {
		s += ob.sum / 2
	}
	return s
}

// Exact returns the total mass currently held in buckets, an upper bound
// on the true window sum (expired items inside the straddling bucket are
// still counted).
func (h *Histogram) Exact() float64 {
	var s float64
	for _, b := range h.buckets {
		s += b.sum
	}
	return s
}

// Buckets returns the current bucket count — the histogram's space usage
// in O(1)-word units.
func (h *Histogram) Buckets() int {
	return len(h.buckets)
}
