package eh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// exactWindowSum replays items and returns the true sum in (now−w, now].
func exactWindowSum(items [][2]float64, now, w int64) float64 {
	var s float64
	for _, it := range items {
		t := int64(it[0])
		if t > now-w && t <= now {
			s += it[1]
		}
	}
	return s
}

func TestSingleItem(t *testing.T) {
	h := New(10, 0.1)
	h.Insert(5, 3.5)
	if got := h.Query(); got != 3.5 {
		t.Fatalf("Query = %v, want 3.5", got)
	}
}

func TestExpiry(t *testing.T) {
	h := New(10, 0.1)
	h.Insert(1, 2)
	h.Insert(5, 3)
	h.Advance(20)
	if got := h.Query(); got != 0 {
		t.Fatalf("Query after full expiry = %v, want 0", got)
	}
	if h.Buckets() != 0 {
		t.Fatalf("Buckets = %d, want 0", h.Buckets())
	}
}

func TestBoundarySemantics(t *testing.T) {
	h := New(10, 0.1)
	h.Insert(0, 1)
	h.Insert(1, 1)
	h.Advance(10) // t=0 is exactly now−w → expired; t=1 lives
	got := h.Query()
	if got != 1 {
		t.Fatalf("Query = %v, want 1", got)
	}
}

func TestRelativeErrorUniform(t *testing.T) {
	eps := 0.1
	w := int64(1000)
	h := New(w, eps)
	rng := rand.New(rand.NewSource(1))
	var items [][2]float64
	for i := int64(1); i <= 5000; i++ {
		wt := 0.5 + rng.Float64()
		h.Insert(i, wt)
		items = append(items, [2]float64{float64(i), wt})
		if i%500 == 0 {
			truth := exactWindowSum(items, i, w)
			got := h.Query()
			if rel := math.Abs(got-truth) / truth; rel > 2*eps {
				t.Fatalf("t=%d: estimate %v vs truth %v, rel err %v > %v", i, got, truth, rel, 2*eps)
			}
		}
	}
}

func TestRelativeErrorSkewedWeights(t *testing.T) {
	eps := 0.05
	w := int64(2000)
	h := New(w, eps)
	rng := rand.New(rand.NewSource(2))
	var items [][2]float64
	for i := int64(1); i <= 8000; i++ {
		wt := math.Exp(rng.NormFloat64() * 2) // log-normal, ratio ≫ 100
		h.Insert(i, wt)
		items = append(items, [2]float64{float64(i), wt})
		if i%1000 == 0 {
			truth := exactWindowSum(items, i, w)
			got := h.Query()
			if rel := math.Abs(got-truth) / truth; rel > 2*eps {
				t.Fatalf("t=%d: rel err %v > %v", i, rel, 2*eps)
			}
		}
	}
}

func TestQueryAfterAdvanceOnly(t *testing.T) {
	h := New(100, 0.1)
	for i := int64(1); i <= 50; i++ {
		h.Insert(i, 1)
	}
	h.Advance(120) // rows at t ≤ 20 expire
	got := h.Query()
	truth := 30.0
	if math.Abs(got-truth)/truth > 0.25 {
		t.Fatalf("Query = %v, want ≈%v", got, truth)
	}
}

func TestSpaceLogarithmic(t *testing.T) {
	eps := 0.1
	h := New(1_000_000, eps)
	for i := int64(1); i <= 20000; i++ {
		h.Insert(i, 1)
	}
	// Suffix rule: ≤ 2·log_{1+ε/2}(N) + slack ≈ 2·203 + 32 for ε=0.1.
	if h.Buckets() > 600 {
		t.Fatalf("Buckets = %d, want logarithmic (≤600)", h.Buckets())
	}
}

func TestExactUpperBound(t *testing.T) {
	h := New(100, 0.2)
	for i := int64(1); i <= 500; i++ {
		h.Insert(i, 1)
	}
	if h.Exact() < h.Query() {
		t.Fatal("Exact should upper-bound Query")
	}
}

func TestInsertNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(10, 0.1).Insert(1, 0)
}

func TestNewInvalidEps(t *testing.T) {
	for _, eps := range []float64{0, 1, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for eps=%v", eps)
				}
			}()
			New(10, eps)
		}()
	}
}

func TestNewInvalidWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 0.1)
}

func TestPropRelativeError(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eps := 0.1
		w := int64(200 + rng.Intn(800))
		h := New(w, eps)
		var items [][2]float64
		now := int64(0)
		for i := 0; i < 2000; i++ {
			now += int64(1 + rng.Intn(3))
			wt := 0.1 + rng.Float64()*10
			h.Insert(now, wt)
			items = append(items, [2]float64{float64(now), wt})
		}
		truth := exactWindowSum(items, now, w)
		got := h.Query()
		if truth == 0 {
			return got == 0
		}
		return math.Abs(got-truth)/truth <= 2*eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}
