package datagen

import (
	"math"
	"testing"

	"distwindow/mat"
)

func TestSyntheticShape(t *testing.T) {
	ds := Synthetic(30, Config{N: 900, RowsPerWindow: 300, Sites: 4, Seed: 1})
	if len(ds.Events) != 900 {
		t.Fatalf("N = %d, want 900", len(ds.Events))
	}
	if ds.D != 30 {
		t.Fatalf("D = %d, want 30", ds.D)
	}
	if ds.W != 300*1000 {
		t.Fatalf("W = %d, want 300000", ds.W)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(10, Config{N: 100, RowsPerWindow: 50, Sites: 2, Seed: 7})
	b := Synthetic(10, Config{N: 100, RowsPerWindow: 50, Sites: 2, Seed: 7})
	for i := range a.Events {
		if a.Events[i].Row.T != b.Events[i].Row.T || a.Events[i].Site != b.Events[i].Site {
			t.Fatal("same seed must reproduce the same dataset")
		}
		for j := range a.Events[i].Row.V {
			if a.Events[i].Row.V[j] != b.Events[i].Row.V[j] {
				t.Fatal("same seed must reproduce the same rows")
			}
		}
	}
}

func TestSyntheticSeedsDiffer(t *testing.T) {
	a := Synthetic(10, Config{N: 50, RowsPerWindow: 25, Sites: 2, Seed: 1})
	b := Synthetic(10, Config{N: 50, RowsPerWindow: 25, Sites: 2, Seed: 2})
	same := true
	for j := range a.Events[0].Row.V {
		if a.Events[0].Row.V[j] != b.Events[0].Row.V[j] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different data")
	}
}

func TestSyntheticModerateR(t *testing.T) {
	// Paper reports R = 3.72 for SYNTHETIC; Gaussian mixtures keep R small.
	ds := Synthetic(50, Config{N: 3000, RowsPerWindow: 1000, Sites: 4, Seed: 3})
	if ds.R > 100 {
		t.Fatalf("SYNTHETIC R = %v, want small (paper: 3.72)", ds.R)
	}
}

func TestSyntheticSignalRecoverable(t *testing.T) {
	// The top singular directions should carry far more mass than noise:
	// with ζ=10 the signal dominates.
	ds := Synthetic(20, Config{N: 500, RowsPerWindow: 200, Sites: 2, Seed: 4})
	a := mat.NewDense(500, 20)
	for i, e := range ds.Events {
		a.SetRow(i, e.Row.V)
	}
	s := mat.ThinSVD(a)
	if s.S[0] < 3*s.S[len(s.S)-1] {
		t.Fatalf("no clear signal: σ_max=%v σ_min=%v", s.S[0], s.S[len(s.S)-1])
	}
}

func TestPAMAPSimTableIII(t *testing.T) {
	ds := PAMAPSim(Config{N: 20000, RowsPerWindow: 5000, Sites: 10, Seed: 5})
	if ds.D != 43 {
		t.Fatalf("PAMAP d = %d, want 43", ds.D)
	}
	// Paper reports R = 60.78; accept the right order of magnitude.
	if ds.R < 5 || ds.R > 5000 {
		t.Fatalf("PAMAP-sim R = %v, want moderate skew (paper: 60.78)", ds.R)
	}
}

func TestPAMAPSimAutocorrelated(t *testing.T) {
	ds := PAMAPSim(Config{N: 5000, RowsPerWindow: 1000, Sites: 4, Seed: 6})
	// Lag-1 cosine similarity should be high within activity bouts.
	var simSum float64
	n := 0
	for i := 1; i < len(ds.Events); i++ {
		a, b := ds.Events[i-1].Row.V, ds.Events[i].Row.V
		na, nb := mat.VecNorm(a), mat.VecNorm(b)
		if na == 0 || nb == 0 {
			continue
		}
		simSum += mat.Dot(a, b) / (na * nb)
		n++
	}
	if avg := simSum / float64(n); avg < 0.3 {
		t.Fatalf("lag-1 similarity = %v, want autocorrelated (>0.3)", avg)
	}
}

func TestWikiSimSparseAndSkewed(t *testing.T) {
	ds := WikiSim(512, Config{N: 3000, RowsPerWindow: 500, Sites: 10, Seed: 7})
	if ds.D != 512 {
		t.Fatalf("D = %d", ds.D)
	}
	// Paper reports R = 2998.83; demand strong skew.
	if ds.R < 50 {
		t.Fatalf("WIKI-sim R = %v, want heavy skew (paper: 2998.83)", ds.R)
	}
	// Sparsity: average nonzeros well below d.
	var nnz int
	for _, e := range ds.Events {
		for _, v := range e.Row.V {
			if v != 0 {
				nnz++
			}
		}
	}
	avg := float64(nnz) / float64(len(ds.Events))
	if avg > float64(ds.D)/2 {
		t.Fatalf("avg nnz = %v of d=%d, want sparse", avg, ds.D)
	}
}

func TestTimestampsNonDecreasing(t *testing.T) {
	for _, ds := range []Dataset{
		Synthetic(10, Config{N: 300, RowsPerWindow: 100, Sites: 3, Seed: 8}),
		PAMAPSim(Config{N: 300, RowsPerWindow: 100, Sites: 3, Seed: 8}),
		WikiSim(64, Config{N: 300, RowsPerWindow: 100, Sites: 3, Seed: 8}),
	} {
		prev := int64(-1)
		for _, e := range ds.Events {
			if e.Row.T < prev {
				t.Fatalf("%s: timestamps decrease", ds.Name)
			}
			prev = e.Row.T
		}
	}
}

func TestSitesInRange(t *testing.T) {
	ds := Synthetic(5, Config{N: 500, RowsPerWindow: 100, Sites: 7, Seed: 9})
	for _, e := range ds.Events {
		if e.Site < 0 || e.Site >= 7 {
			t.Fatalf("site %d out of range", e.Site)
		}
	}
}

func TestAverageRowsPerWindowMatches(t *testing.T) {
	ds := Synthetic(5, Config{N: 10000, RowsPerWindow: 2000, Sites: 4, Seed: 10})
	// With Poisson(1) arrivals at 1000 ticks/unit, W=2000*1000 ticks holds
	// ≈2000 rows. Count active rows at the final timestamp.
	last := ds.Events[len(ds.Events)-1].Row.T
	count := 0
	for _, e := range ds.Events {
		if e.Row.T > last-ds.W && e.Row.T <= last {
			count++
		}
	}
	if math.Abs(float64(count)-2000) > 300 {
		t.Fatalf("active rows = %d, want ≈2000", count)
	}
}

func TestSummarize(t *testing.T) {
	ds := WikiSim(64, Config{N: 200, RowsPerWindow: 50, Sites: 2, Seed: 11})
	s := Summarize(ds)
	if s.N != 200 || s.D != 64 || s.RowsPerWindow != 50 || s.R != ds.R {
		t.Fatalf("Summarize wrong: %+v", s)
	}
}
