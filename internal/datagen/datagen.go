// Package datagen generates the evaluation datasets of the paper
// (Table III). SYNTHETIC follows the paper's construction exactly; PAMAP
// and WIKI are not redistributable/offline-available, so PAMAPSim and
// WikiSim synthesize streams matching their load-bearing properties —
// dimension, squared-norm ratio R, rows per window, sparsity and
// non-stationarity. See DESIGN.md §5 for the substitution rationale.
package datagen

import (
	"math"
	"math/rand"

	"distwindow/internal/stream"
	"distwindow/mat"
)

// Dataset is a fully stamped, site-assigned event stream plus the metadata
// reported in Table III.
type Dataset struct {
	Name string
	// D is the row dimension.
	D int
	// Events are in non-decreasing timestamp order.
	Events []stream.Event
	// W is the window size in ticks chosen so the average number of active
	// rows matches the paper's setting.
	W int64
	// RowsPerWindow is the targeted average number of rows per window.
	RowsPerWindow int
	// R is the realized maximum ratio of squared row norms.
	R float64
}

// Config fixes the scale and distribution of a generated dataset.
type Config struct {
	// N is the total number of rows.
	N int
	// RowsPerWindow sets the window so that on average this many rows are
	// active.
	RowsPerWindow int
	// Sites is the number of distributed sites rows are assigned to.
	Sites int
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed int64
}

// ticksPerUnit matches stream.PoissonArrivals' quantization.
const ticksPerUnit = 1000

// finish stamps rows with Poisson(1) arrivals, assigns sites uniformly at
// random, and computes R and W.
func finish(name string, rows [][]float64, cfg Config) Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5ca1ab1e))
	arr := stream.NewPoissonArrivals(1, rng)
	asg := stream.NewRandomAssigner(cfg.Sites, rng)
	evs := stream.Stamp(rows, arr, asg)
	d := 0
	if len(rows) > 0 {
		d = len(rows[0])
	}
	return Dataset{
		Name:          name,
		D:             d,
		Events:        evs,
		W:             int64(cfg.RowsPerWindow) * ticksPerUnit,
		RowsPerWindow: cfg.RowsPerWindow,
		R:             stream.MaxNormRatio(evs),
	}
}

// Synthetic generates the paper's SYNTHETIC dataset: three equal blocks,
// each A = S·D·U + N/ζ with S n×k standard normal, D diagonal with
// D_ii = 1−(i−1)/k, U a random k×d matrix with U·Uᵀ = I, and N standard
// normal noise scaled by 1/ζ, ζ=10. Each block draws a fresh U, giving the
// regime changes the sliding window must track. Default paper scale is
// n=500,000, d=300, 100,000 rows/window.
func Synthetic(d int, cfg Config) Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	const zeta = 10.0
	k := d / 6 // signal rank; paper uses full d for D but signal decays linearly
	if k < 2 {
		k = 2
	}
	rows := make([][]float64, 0, cfg.N)
	blocks := 3
	per := cfg.N / blocks
	for b := 0; b < blocks; b++ {
		n := per
		if b == blocks-1 {
			n = cfg.N - per*(blocks-1)
		}
		u := randomRowOrthonormal(k, d, rng)
		diag := make([]float64, k)
		for i := range diag {
			diag[i] = 1 - float64(i)/float64(k)
		}
		for r := 0; r < n; r++ {
			row := make([]float64, d)
			for i := 0; i < k; i++ {
				c := rng.NormFloat64() * diag[i]
				mat.Axpy(c, u.Row(i), row)
			}
			for j := range row {
				row[j] += rng.NormFloat64() / zeta
			}
			rows = append(rows, row)
		}
	}
	return finish("SYNTHETIC", rows, cfg)
}

// randomRowOrthonormal returns a k×d matrix with orthonormal rows
// (U·Uᵀ = I_k) from the Haar distribution.
func randomRowOrthonormal(k, d int, rng *rand.Rand) *mat.Dense {
	g := mat.NewDense(d, k)
	for i := 0; i < d; i++ {
		for j := 0; j < k; j++ {
			g.Set(i, j, rng.NormFloat64())
		}
	}
	qr := mat.HouseholderQR(g)
	return qr.Q.T()
}

// PAMAPSim synthesizes a PAMAP-like physical-activity stream: d=43
// sensor channels, 18 activity regimes each with its own low-rank
// subspace, per-regime intensity scales spanning the dataset's reported
// squared-norm ratio R ≈ 60, and within-regime temporal autocorrelation.
// Paper scale: n=814,729, ≈200,000 rows/window.
func PAMAPSim(cfg Config) Dataset {
	const (
		d          = 43
		regimes    = 18
		regimeRank = 5
	)
	rng := rand.New(rand.NewSource(cfg.Seed))
	type regime struct {
		basis *mat.Dense
		mean  []float64
		scale float64
	}
	regs := make([]regime, regimes)
	for i := range regs {
		// Intensity scales are log-uniform so that the squared-norm ratio
		// across regimes lands near PAMAP's R≈60 (≈ scale ratio² × slack).
		sc := math.Exp(float64(i) / float64(regimes-1) * math.Log(5.5))
		mean := make([]float64, d)
		for j := range mean {
			mean[j] = rng.NormFloat64() * 0.3 * sc
		}
		regs[i] = regime{basis: randomRowOrthonormal(regimeRank, d, rng), mean: mean, scale: sc}
	}
	rows := make([][]float64, cfg.N)
	state := make([]float64, regimeRank)
	cur := 0
	runLeft := 0
	for r := 0; r < cfg.N; r++ {
		if runLeft == 0 {
			cur = rng.Intn(regimes)
			// Activity bouts last a few thousand samples.
			runLeft = 2000 + rng.Intn(8000)
			for i := range state {
				state[i] = rng.NormFloat64()
			}
		}
		runLeft--
		reg := regs[cur]
		// AR(1) latent state gives within-activity autocorrelation.
		for i := range state {
			state[i] = 0.95*state[i] + 0.31*rng.NormFloat64()
		}
		row := make([]float64, d)
		copy(row, reg.mean)
		for i := 0; i < regimeRank; i++ {
			mat.Axpy(state[i]*reg.scale, reg.basis.Row(i), row)
		}
		for j := range row {
			row[j] += rng.NormFloat64() * 0.1
		}
		rows[r] = row
	}
	return finish("PAMAP-sim", rows, cfg)
}

// WikiSim synthesizes a WIKI-like tf-idf corpus stream: sparse rows over d
// features with Zipf feature popularity, heavy-tailed document lengths
// producing a squared-norm ratio R in the thousands, and bursty
// timestamps. The paper's WIKI has d=7047; exact-Gram evaluation at that
// dimension needs ~800 MB, so callers choose d (1024 by default in the
// harness, 7047 under -scale full). Paper scale: n=78,608, ≈10,000
// rows/window.
func WikiSim(d int, cfg Config) Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Pre-compute idf per feature from a Zipf popularity law.
	idf := make([]float64, d)
	for j := range idf {
		df := 1.0 / math.Pow(float64(j+1), 0.8) // document frequency ∝ Zipf
		idf[j] = math.Log(1 + 1/df)
	}
	zipf := rand.NewZipf(rng, 1.4, 1, uint64(d-1))
	// Target squared norms are log-uniform over [1, R], reproducing WIKI's
	// extreme document-length skew (paper: R = 2998.83).
	const targetR = 3000.0
	rows := make([][]float64, cfg.N)
	for r := 0; r < cfg.N; r++ {
		// Document length: Pareto with a floor, producing a few huge docs.
		length := 20 + int(20*math.Pow(rng.Float64(), -0.7))
		if length > d/2 {
			length = d / 2
		}
		row := make([]float64, d)
		for t := 0; t < length; t++ {
			j := int(zipf.Uint64())
			tf := 1 + rng.ExpFloat64()*2
			row[j] += (1 + math.Log(tf)) * idf[j]
		}
		normSq := mat.VecNormSq(row)
		if normSq > 0 {
			target := math.Exp(rng.Float64() * math.Log(targetR))
			mat.ScaleVec(math.Sqrt(target/normSq), row)
		}
		rows[r] = row
	}
	return finish("WIKI-sim", rows, cfg)
}

// Summary holds the Table III row for a dataset.
type Summary struct {
	Name          string
	N             int
	D             int
	RowsPerWindow int
	R             float64
}

// Summarize computes the Table III row of a dataset.
func Summarize(ds Dataset) Summary {
	return Summary{Name: ds.Name, N: len(ds.Events), D: ds.D, RowsPerWindow: ds.RowsPerWindow, R: ds.R}
}
