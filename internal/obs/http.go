package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
)

// Mux returns an HTTP mux serving the two production endpoints:
//
//	GET /metrics  — the JSON encoding of snapshot(); 503 while snapshot
//	                reports not-ready (e.g. no tracker built yet).
//	GET /healthz  — 200 "ok" while healthy() is true, 503 otherwise. A nil
//	                healthy always reports healthy (process liveness).
//
// It also mounts expvar's /debug/vars so anything published through
// PublishExpvar (and Go's default memstats/cmdline vars) is reachable from
// the same listener.
//
// snapshot is called per request and must be safe to call concurrently
// with ingestion — the facade and wire snapshots are built from atomics
// for exactly this reason.
func Mux(snapshot func() (any, bool), healthy func() bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap, ok := snapshot()
		if !ok {
			http.Error(w, `{"error":"metrics not ready"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthy != nil && !healthy() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// PublishExpvar registers snapshot under name in the process-global expvar
// registry, making it visible on /debug/vars. It reports false (instead of
// expvar.Publish's panic) when the name is already taken, so callers can
// publish idempotently.
func PublishExpvar(name string, snapshot func() any) bool {
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, expvar.Func(snapshot))
	return true
}
