package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
)

// MuxOption extends the mux returned by Mux with optional debug
// endpoints.
type MuxOption func(*http.ServeMux)

// WithPprof mounts net/http/pprof under /debug/pprof/ so CPU and heap
// profiles are reachable next to /metrics. Opt-in: profiling endpoints
// expose internals and cost CPU while sampled, so production listeners
// only get them behind an explicit flag (-pprof in sketchd/distrun).
func WithPprof() MuxOption {
	return func(mux *http.ServeMux) {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// WithHandler mounts an extra handler on the mux — the hook the tracing
// ring (/debug/trace) and the audit panel (/debug/audit) use. A nil
// handler is ignored, so callers can pass optional endpoints
// unconditionally.
func WithHandler(pattern string, h http.Handler) MuxOption {
	return func(mux *http.ServeMux) {
		if h != nil {
			mux.Handle(pattern, h)
		}
	}
}

// Mux returns an HTTP mux serving the two production endpoints:
//
//	GET /metrics  — the JSON encoding of snapshot(); 503 while snapshot
//	                reports not-ready (e.g. no tracker built yet).
//	GET /healthz  — 200 "ok" while healthy() is true, 503 otherwise. A nil
//	                healthy always reports healthy (process liveness).
//
// It also mounts expvar's /debug/vars so anything published through
// PublishExpvar (and Go's default memstats/cmdline vars) is reachable from
// the same listener. Options add opt-in debug endpoints: WithPprof for
// profiles, WithHandler for /debug/trace and /debug/audit.
//
// snapshot is called per request and must be safe to call concurrently
// with ingestion — the facade and wire snapshots are built from atomics
// for exactly this reason.
func Mux(snapshot func() (any, bool), healthy func() bool, opts ...MuxOption) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap, ok := snapshot()
		if !ok {
			http.Error(w, `{"error":"metrics not ready"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthy != nil && !healthy() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	for _, opt := range opts {
		opt(mux)
	}
	return mux
}

// PublishExpvar registers snapshot under name in the process-global expvar
// registry, making it visible on /debug/vars. It reports false (instead of
// expvar.Publish's panic) when the name is already taken, so callers can
// publish idempotently.
func PublishExpvar(name string, snapshot func() any) bool {
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, expvar.Func(snapshot))
	return true
}
