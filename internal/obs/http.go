package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
)

// muxConfig carries the optional behaviours MuxOptions can install. The
// ServeMux field is what endpoint options mutate; prom is the optional
// Prometheus exposition source for /metrics content negotiation.
type muxConfig struct {
	mux  *http.ServeMux
	prom func(io.Writer) error
}

// MuxOption extends the mux returned by Mux with optional debug
// endpoints or exposition formats.
type MuxOption func(*muxConfig)

// WithPprof mounts net/http/pprof under /debug/pprof/ so CPU and heap
// profiles are reachable next to /metrics. Opt-in: profiling endpoints
// expose internals and cost CPU while sampled, so production listeners
// only get them behind an explicit flag (-pprof in sketchd/distrun).
func WithPprof() MuxOption {
	return func(c *muxConfig) {
		c.mux.HandleFunc("/debug/pprof/", pprof.Index)
		c.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		c.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		c.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		c.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// WithHandler mounts an extra handler on the mux — the hook the tracing
// ring (/debug/trace), the audit panel (/debug/audit) and the fleet
// dashboard (/debug/fleet) use. A nil handler is ignored, so callers can
// pass optional endpoints unconditionally.
func WithHandler(pattern string, h http.Handler) MuxOption {
	return func(c *muxConfig) {
		if h != nil {
			c.mux.Handle(pattern, h)
		}
	}
}

// WithPrometheus installs a Prometheus text exposition source for
// /metrics: requests whose Accept header prefers text/plain (what a
// Prometheus scraper sends) — or that ask explicitly with ?format=prom —
// get write's output as `text/plain; version=0.0.4` instead of the JSON
// snapshot. JSON remains the default for everything else, so existing
// consumers keep working unchanged. A nil write is ignored.
func WithPrometheus(write func(io.Writer) error) MuxOption {
	return func(c *muxConfig) {
		if write != nil {
			c.prom = write
		}
	}
}

// wantsProm reports whether a /metrics request negotiated the Prometheus
// exposition: an explicit ?format=prom|prometheus|text wins, else the
// Accept header decides — a scraper advertises text/plain (or the
// OpenMetrics type), while JSON consumers either ask for application/json
// or send no preference at all.
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, "application/json") {
		return false
	}
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// Mux returns an HTTP mux serving the two production endpoints:
//
//	GET /metrics  — the JSON encoding of snapshot(); 503 while snapshot
//	                reports not-ready (e.g. no tracker built yet). JSON is
//	                compact unless ?pretty=1 asks for indentation. With a
//	                WithPrometheus source installed, requests preferring
//	                text/plain (Accept header or ?format=prom) get the
//	                Prometheus text exposition instead.
//	GET /healthz  — 200 "ok" while healthy() is true, 503 otherwise. A nil
//	                healthy always reports healthy (process liveness).
//
// It also mounts expvar's /debug/vars so anything published through
// PublishExpvar (and Go's default memstats/cmdline vars) is reachable from
// the same listener. Options add opt-in debug endpoints: WithPprof for
// profiles, WithHandler for /debug/trace, /debug/audit and /debug/fleet.
//
// snapshot is called per request and must be safe to call concurrently
// with ingestion — the facade and wire snapshots are built from atomics
// for exactly this reason.
func Mux(snapshot func() (any, bool), healthy func() bool, opts ...MuxOption) *http.ServeMux {
	cfg := muxConfig{mux: http.NewServeMux()}
	mux := cfg.mux
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthy != nil && !healthy() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	for _, opt := range opts {
		opt(&cfg)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if cfg.prom != nil && wantsProm(r) {
			w.Header().Set("Content-Type", PromContentType)
			if err := cfg.prom(w); err != nil {
				// Headers are gone; all that is left is to stop writing.
				return
			}
			return
		}
		snap, ok := snapshot()
		if !ok {
			http.Error(w, `{"error":"metrics not ready"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		// Indented JSON costs a re-encode per request; serve it only when a
		// human asks (?pretty=1), not to every poller.
		if r.URL.Query().Get("pretty") == "1" {
			enc.SetIndent("", "  ")
		}
		_ = enc.Encode(snap)
	})
	return mux
}

// PublishExpvar registers snapshot under name in the process-global expvar
// registry, making it visible on /debug/vars. It reports false (instead of
// expvar.Publish's panic) when the name is already taken, so callers can
// publish idempotently.
func PublishExpvar(name string, snapshot func() any) bool {
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, expvar.Func(snapshot))
	return true
}
