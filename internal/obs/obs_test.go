package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeMaxGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("counter = %d, want 42", c.Load())
	}
	c.Reset()
	if c.Load() != 0 {
		t.Fatalf("counter after reset = %d", c.Load())
	}

	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Load())
	}

	var m MaxGauge
	for _, v := range []int64{3, 9, 5, 9, 1} {
		m.Observe(v)
	}
	if m.Load() != 9 {
		t.Fatalf("max gauge = %d, want 9", m.Load())
	}
	m.Reset()
	if m.Load() != 0 {
		t.Fatalf("max gauge after reset = %d", m.Load())
	}
}

func TestMaxGaugeConcurrent(t *testing.T) {
	var m MaxGauge
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				m.Observe(base*1000 + i)
			}
		}(int64(g))
	}
	wg.Wait()
	if m.Load() != 7999 {
		t.Fatalf("concurrent max = %d, want 7999", m.Load())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Nanosecond) // first bucket (≤256ns)
	h.Observe(100 * time.Nanosecond)
	h.Observe(500 * time.Nanosecond) // second bucket (≤1024ns)
	h.Observe(2 * time.Second)       // overflow
	h.Observe(-time.Second)          // clamped to 0, first bucket

	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if len(s.Buckets) != HistBuckets {
		t.Fatalf("buckets = %d, want %d", len(s.Buckets), HistBuckets)
	}
	if s.Buckets[0].Count != 3 {
		t.Fatalf("first bucket = %d, want 3", s.Buckets[0].Count)
	}
	if s.Buckets[1].Count != 1 {
		t.Fatalf("second bucket = %d, want 1", s.Buckets[1].Count)
	}
	if last := s.Buckets[len(s.Buckets)-1]; last.Count != 1 || last.UpperNs != math.MaxInt64 {
		t.Fatalf("overflow bucket = %+v", last)
	}
	if s.MeanNs() <= 0 {
		t.Fatalf("mean = %v, want > 0", s.MeanNs())
	}
	// The median falls in the first bucket; the max quantile must report
	// the overflow bound.
	if q := s.QuantileUpperNs(0.5); q != 256 {
		t.Fatalf("p50 upper = %d, want 256", q)
	}
	if q := s.QuantileUpperNs(1); q != math.MaxInt64 {
		t.Fatalf("p100 upper = %d, want MaxInt64", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.MeanNs() != 0 || s.QuantileUpperNs(0.99) != 0 {
		t.Fatalf("empty histogram mean/quantile = %v/%d", s.MeanNs(), s.QuantileUpperNs(0.99))
	}
}

func TestCountingSink(t *testing.T) {
	var s CountingSink
	s.OnEvent(Event{Kind: EvMsgSent})
	s.OnEvent(Event{Kind: EvMsgSent})
	s.OnEvent(Event{Kind: EvBucketMerged, N: 3})
	s.OnEvent(Event{Kind: EventKind(200)}) // unknown kinds are ignored
	if s.Count(EvMsgSent) != 2 {
		t.Fatalf("msg_sent = %d, want 2", s.Count(EvMsgSent))
	}
	if s.Count(EvSkewDrop) != 0 {
		t.Fatalf("skew_drop = %d, want 0", s.Count(EvSkewDrop))
	}
	counts := s.Counts()
	if counts["msg_sent"] != 2 || counts["bucket_merged"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if _, ok := counts["sketch_query"]; ok {
		t.Fatal("zero-count kind should be omitted")
	}
}

func TestFuncAndMultiSink(t *testing.T) {
	var got []EventKind
	f := FuncSink(func(e Event) { got = append(got, e.Kind) })
	var c CountingSink
	m := MultiSink{f, nil, &c}
	m.OnEvent(Event{Kind: EvSketchQuery})
	if len(got) != 1 || got[0] != EvSketchQuery {
		t.Fatalf("func sink saw %v", got)
	}
	if c.Count(EvSketchQuery) != 1 {
		t.Fatalf("counting sink = %d", c.Count(EvSketchQuery))
	}
}

func TestEventKindString(t *testing.T) {
	if EvThresholdRenegotiation.String() != "threshold_renegotiation" {
		t.Fatalf("name = %q", EvThresholdRenegotiation.String())
	}
	if EventKind(250).String() != "unknown" {
		t.Fatalf("unknown kind = %q", EventKind(250).String())
	}
}

func TestMuxEndpoints(t *testing.T) {
	ready := false
	healthy := true
	mux := Mux(
		func() (any, bool) {
			if !ready {
				return nil, false
			}
			return map[string]int{"rows": 7}, true
		},
		func() bool { return healthy },
	)

	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}

	if code, _ := get("/metrics"); code != 503 {
		t.Fatalf("/metrics before ready = %d, want 503", code)
	}
	ready = true
	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d, want 200", code)
	}
	var out map[string]int
	if err := json.Unmarshal([]byte(body), &out); err != nil || out["rows"] != 7 {
		t.Fatalf("/metrics body = %q (%v)", body, err)
	}

	if code, body := get("/healthz"); code != 200 || !strings.HasPrefix(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	healthy = false
	if code, _ := get("/healthz"); code != 503 {
		t.Fatalf("/healthz unhealthy = %d, want 503", code)
	}

	if code, _ := get("/debug/vars"); code != 200 {
		t.Fatalf("/debug/vars = %d, want 200", code)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	if !PublishExpvar("obs_test_var", func() any { return 1 }) {
		t.Fatal("first publish should succeed")
	}
	if PublishExpvar("obs_test_var", func() any { return 2 }) {
		t.Fatal("second publish under the same name should report false")
	}
}
