package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, mux *http.ServeMux, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

func TestMuxMetricsServesJSON(t *testing.T) {
	type snap struct{ Rows int64 }
	mux := Mux(func() (any, bool) { return snap{Rows: 42}, true }, nil)

	rec := get(t, mux, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/metrics Content-Type = %q, want application/json", ct)
	}
	var got snap
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("/metrics body is not JSON: %v\n%s", err, rec.Body.String())
	}
	if got.Rows != 42 {
		t.Fatalf("decoded Rows = %d, want 42", got.Rows)
	}
}

func TestMuxMetricsNotReady(t *testing.T) {
	mux := Mux(func() (any, bool) { return nil, false }, nil)

	rec := get(t, mux, "/metrics")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/metrics status = %d, want 503", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("503 body is not JSON: %v\n%s", err, rec.Body.String())
	}
	if body["error"] == "" {
		t.Fatalf("503 body missing error field: %s", rec.Body.String())
	}
}

func TestMuxHealthz(t *testing.T) {
	healthy := true
	mux := Mux(func() (any, bool) { return struct{}{}, true }, func() bool { return healthy })

	rec := get(t, mux, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy /healthz status = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/healthz Content-Type = %q, want text/plain", ct)
	}
	if body := rec.Body.String(); body != "ok\n" {
		t.Fatalf("/healthz body = %q, want \"ok\\n\"", body)
	}

	healthy = false
	if rec := get(t, mux, "/healthz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy /healthz status = %d, want 503", rec.Code)
	}

	// A nil healthy func reports process liveness: always 200.
	alive := Mux(func() (any, bool) { return struct{}{}, true }, nil)
	if rec := get(t, alive, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("nil-healthy /healthz status = %d, want 200", rec.Code)
	}
}

func TestMuxDebugVars(t *testing.T) {
	mux := Mux(func() (any, bool) { return struct{}{}, true }, nil)

	rec := get(t, mux, "/debug/vars")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d, want 200", rec.Code)
	}
	var vars map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars body is not JSON: %v", err)
	}
	// Go's expvar always publishes cmdline and memstats.
	if _, ok := vars["memstats"]; !ok {
		t.Fatalf("/debug/vars missing memstats: keys %v", len(vars))
	}
}

func TestWithPprofMountsEndpoints(t *testing.T) {
	plain := Mux(func() (any, bool) { return struct{}{}, true }, nil)
	if rec := get(t, plain, "/debug/pprof/cmdline"); rec.Code == http.StatusOK {
		t.Fatalf("pprof reachable without WithPprof (status %d)", rec.Code)
	}

	mux := Mux(func() (any, bool) { return struct{}{}, true }, nil, WithPprof())
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		if rec := get(t, mux, path); rec.Code != http.StatusOK {
			t.Fatalf("GET %s status = %d, want 200", path, rec.Code)
		}
	}
}

func TestWithHandler(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"traceEvents":[]}`))
	})
	mux := Mux(func() (any, bool) { return struct{}{}, true }, nil,
		WithHandler("/debug/trace", h),
		WithHandler("/debug/absent", nil), // nil handlers are ignored, not mounted
	)

	rec := get(t, mux, "/debug/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace status = %d, want 200", rec.Code)
	}
	if rec.Body.String() != `{"traceEvents":[]}` {
		t.Fatalf("/debug/trace body = %q", rec.Body.String())
	}
	if rec := get(t, mux, "/debug/absent"); rec.Code != http.StatusNotFound {
		t.Fatalf("nil WithHandler mounted something: status %d", rec.Code)
	}
}
