package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, mux *http.ServeMux, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

func TestMuxMetricsServesJSON(t *testing.T) {
	type snap struct{ Rows int64 }
	mux := Mux(func() (any, bool) { return snap{Rows: 42}, true }, nil)

	rec := get(t, mux, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/metrics Content-Type = %q, want application/json", ct)
	}
	var got snap
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("/metrics body is not JSON: %v\n%s", err, rec.Body.String())
	}
	if got.Rows != 42 {
		t.Fatalf("decoded Rows = %d, want 42", got.Rows)
	}
}

func TestMuxMetricsNotReady(t *testing.T) {
	mux := Mux(func() (any, bool) { return nil, false }, nil)

	rec := get(t, mux, "/metrics")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/metrics status = %d, want 503", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("503 body is not JSON: %v\n%s", err, rec.Body.String())
	}
	if body["error"] == "" {
		t.Fatalf("503 body missing error field: %s", rec.Body.String())
	}
}

func TestMuxHealthz(t *testing.T) {
	healthy := true
	mux := Mux(func() (any, bool) { return struct{}{}, true }, func() bool { return healthy })

	rec := get(t, mux, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy /healthz status = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/healthz Content-Type = %q, want text/plain", ct)
	}
	if body := rec.Body.String(); body != "ok\n" {
		t.Fatalf("/healthz body = %q, want \"ok\\n\"", body)
	}

	healthy = false
	if rec := get(t, mux, "/healthz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy /healthz status = %d, want 503", rec.Code)
	}

	// A nil healthy func reports process liveness: always 200.
	alive := Mux(func() (any, bool) { return struct{}{}, true }, nil)
	if rec := get(t, alive, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("nil-healthy /healthz status = %d, want 200", rec.Code)
	}
}

func TestMuxDebugVars(t *testing.T) {
	mux := Mux(func() (any, bool) { return struct{}{}, true }, nil)

	rec := get(t, mux, "/debug/vars")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d, want 200", rec.Code)
	}
	var vars map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars body is not JSON: %v", err)
	}
	// Go's expvar always publishes cmdline and memstats.
	if _, ok := vars["memstats"]; !ok {
		t.Fatalf("/debug/vars missing memstats: keys %v", len(vars))
	}
}

func TestWithPprofMountsEndpoints(t *testing.T) {
	plain := Mux(func() (any, bool) { return struct{}{}, true }, nil)
	if rec := get(t, plain, "/debug/pprof/cmdline"); rec.Code == http.StatusOK {
		t.Fatalf("pprof reachable without WithPprof (status %d)", rec.Code)
	}

	mux := Mux(func() (any, bool) { return struct{}{}, true }, nil, WithPprof())
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		if rec := get(t, mux, path); rec.Code != http.StatusOK {
			t.Fatalf("GET %s status = %d, want 200", path, rec.Code)
		}
	}
}

func TestWithHandler(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"traceEvents":[]}`))
	})
	mux := Mux(func() (any, bool) { return struct{}{}, true }, nil,
		WithHandler("/debug/trace", h),
		WithHandler("/debug/absent", nil), // nil handlers are ignored, not mounted
	)

	rec := get(t, mux, "/debug/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace status = %d, want 200", rec.Code)
	}
	if rec.Body.String() != `{"traceEvents":[]}` {
		t.Fatalf("/debug/trace body = %q", rec.Body.String())
	}
	if rec := get(t, mux, "/debug/absent"); rec.Code != http.StatusNotFound {
		t.Fatalf("nil WithHandler mounted something: status %d", rec.Code)
	}
}

func getAccept(t *testing.T, mux *http.ServeMux, path, accept string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

func promMux(t *testing.T) *http.ServeMux {
	t.Helper()
	type snap struct{ Rows int64 }
	return Mux(
		func() (any, bool) { return snap{Rows: 7}, true },
		nil,
		WithPrometheus(func(w io.Writer) error {
			pw := NewPromWriter(w)
			pw.Counter("rows_total", "Rows.", nil, 7)
			return pw.Err()
		}),
	)
}

func TestMetricsContentNegotiation(t *testing.T) {
	mux := promMux(t)

	// A Prometheus scraper's Accept header gets the text exposition.
	rec := getAccept(t, mux, "/metrics", "text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	if ct := rec.Header().Get("Content-Type"); ct != PromContentType {
		t.Fatalf("scraper Content-Type = %q, want %q", ct, PromContentType)
	}
	if _, err := ParseProm(strings.NewReader(rec.Body.String())); err != nil {
		t.Fatalf("scraper body is not valid exposition: %v\n%s", err, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "rows_total 7") {
		t.Fatalf("exposition missing sample:\n%s", rec.Body.String())
	}

	// ?format=prom forces the exposition regardless of Accept.
	rec = getAccept(t, mux, "/metrics?format=prom", "application/json")
	if ct := rec.Header().Get("Content-Type"); ct != PromContentType {
		t.Fatalf("?format=prom Content-Type = %q", ct)
	}

	// No Accept preference stays JSON — existing consumers unchanged.
	rec = getAccept(t, mux, "/metrics", "")
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default Content-Type = %q, want application/json", ct)
	}
	var got struct{ Rows int64 }
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil || got.Rows != 7 {
		t.Fatalf("default body not the JSON snapshot: %v %q", err, rec.Body.String())
	}

	// An explicit JSON Accept stays JSON even though prom is installed.
	rec = getAccept(t, mux, "/metrics", "application/json")
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Accept json Content-Type = %q", ct)
	}

	// ?format=json overrides a text Accept.
	rec = getAccept(t, mux, "/metrics?format=json", "text/plain")
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("?format=json Content-Type = %q", ct)
	}

	// Without WithPrometheus, a text Accept still gets JSON (no source).
	plain := Mux(func() (any, bool) { return struct{}{}, true }, nil)
	rec = getAccept(t, plain, "/metrics", "text/plain")
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("no-prom text Accept Content-Type = %q", ct)
	}
}

func TestMetricsJSONCompactUnlessPretty(t *testing.T) {
	type snap struct{ Rows, Cols int64 }
	mux := Mux(func() (any, bool) { return snap{Rows: 1, Cols: 2}, true }, nil)

	compact := get(t, mux, "/metrics").Body.String()
	if strings.Contains(compact, "\n  ") {
		t.Fatalf("default JSON is indented: %q", compact)
	}

	pretty := get(t, mux, "/metrics?pretty=1").Body.String()
	if !strings.Contains(pretty, "\n  ") {
		t.Fatalf("?pretty=1 JSON is not indented: %q", pretty)
	}
	// Both decode to the same snapshot.
	var a, b snap
	if err := json.Unmarshal([]byte(compact), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(pretty), &b); err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("compact %+v != pretty %+v", a, b)
	}
}
