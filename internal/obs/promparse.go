package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// A small validating parser for the Prometheus text exposition format
// (text/plain; version=0.0.4) — the test-side counterpart of PromWriter.
// It is not a full client: it checks exactly the guarantees this
// repository's exposition relies on — metric/label name syntax, escaped
// label values, parseable sample values, TYPE declarations preceding
// samples, and cumulative non-decreasing histogram buckets ending in
// le="+Inf" — so the CI fleet smoke can fail on malformed output instead
// of shipping it to a real scraper.

// PromSample is one parsed sample line.
type PromSample struct {
	// Name is the sample's metric name (bucket/sum/count suffixes kept).
	Name string
	// Labels holds the label pairs in order of appearance.
	Labels []Label
	// Value is the parsed sample value.
	Value float64
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promFamily tracks one declared family while parsing.
type promFamily struct {
	typ     string
	samples int
}

// ParseProm reads a complete exposition, returning every sample. It
// errors on the first syntax violation: an undeclared or malformed name,
// a bad label, an unparseable value, a histogram whose buckets are not
// cumulative or that lacks the +Inf bucket.
func ParseProm(r io.Reader) ([]PromSample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var samples []PromSample
	families := make(map[string]*promFamily)
	// histCum tracks the last cumulative bucket value per histogram series
	// (identified by name + non-le labels), and histInf whether +Inf
	// arrived.
	histCum := make(map[string]int64)
	histInf := make(map[string]bool)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parsePromComment(line, families); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		base := s.Name
		fam := families[base]
		if fam == nil {
			// _bucket/_sum/_count attach to their histogram family.
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(base, suf) {
					if f := families[strings.TrimSuffix(base, suf)]; f != nil && f.typ == "histogram" {
						fam = f
						base = strings.TrimSuffix(base, suf)
					}
					break
				}
			}
		}
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, s.Name)
		}
		fam.samples++
		if fam.typ == "histogram" && strings.HasSuffix(s.Name, "_bucket") {
			key := base + labelSetWithout(s.Labels, "le")
			le, ok := findLabel(s.Labels, "le")
			if !ok {
				return nil, fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			cum := int64(s.Value)
			if prev, seen := histCum[key]; seen && cum < prev {
				return nil, fmt.Errorf("line %d: histogram %s buckets not cumulative (%d after %d)", lineNo, key, cum, prev)
			}
			histCum[key] = cum
			if le == "+Inf" {
				histInf[key] = true
			}
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for key := range histCum {
		if !histInf[key] {
			return nil, fmt.Errorf("histogram %s lacks an le=\"+Inf\" bucket", key)
		}
	}
	for name, fam := range families {
		if fam.samples == 0 {
			return nil, fmt.Errorf("family %s declared but has no samples", name)
		}
	}
	return samples, nil
}

// parsePromComment validates a # HELP / # TYPE line (other comments pass).
func parsePromComment(line string, families map[string]*promFamily) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !promNameRe.MatchString(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if !promNameRe.MatchString(name) {
			return fmt.Errorf("bad metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if families[name] != nil {
			return fmt.Errorf("duplicate TYPE for %q", name)
		}
		families[name] = &promFamily{typ: typ}
	}
	return nil
}

// parsePromSample parses one sample line: name[{labels}] value [timestamp].
func parsePromSample(line string) (PromSample, error) {
	var s PromSample
	rest := line
	// Metric name runs to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("sample %q lacks a value", line)
	}
	s.Name = rest[:end]
	if !promNameRe.MatchString(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	rest = rest[end:]
	if strings.HasPrefix(rest, "{") {
		close := strings.LastIndex(rest, "}")
		if close < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parsePromLabels(rest[1:close])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[close+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %q has %d value fields, want 1 or 2", line, len(fields))
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parsePromLabels parses the inside of a {…} label set.
func parsePromLabels(s string) ([]Label, error) {
	var labels []Label
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Errorf("label pair %q lacks '='", s)
		}
		name := s[:eq]
		if !promLabelRe.MatchString(name) {
			return nil, fmt.Errorf("bad label name %q", name)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("label %s value not quoted", name)
		}
		s = s[1:]
		var val strings.Builder
		i := 0
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("dangling escape in label %s", name)
				}
				i++
				switch s[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("unknown escape \\%c in label %s", s[i], name)
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated value for label %s", name)
		}
		labels = append(labels, Label{Name: name, Value: val.String()})
		s = s[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return labels, nil
}

// parsePromValue parses a sample value, accepting the +Inf/-Inf/NaN
// spellings.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "Nan":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// findLabel returns a label's value by name.
func findLabel(labels []Label, name string) (string, bool) {
	for _, l := range labels {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}

// labelSetWithout renders a label set omitting one label — the series
// identity of a histogram bucket family.
func labelSetWithout(labels []Label, drop string) string {
	kept := make([]Label, 0, len(labels))
	for _, l := range labels {
		if l.Name != drop {
			kept = append(kept, l)
		}
	}
	return labelSet(kept)
}
