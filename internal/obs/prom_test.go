package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestPromWriterRoundTrip(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Nanosecond)
	h.Observe(time.Millisecond)
	h.Observe(10 * time.Second) // overflow bucket

	var b strings.Builder
	pw := NewPromWriter(&b)
	ls := []Label{{Name: "site", Value: "0"}, {Name: "stream", Value: "default"}}
	pw.Counter("test_rows_total", "Rows observed.", ls, 42)
	pw.Counter("test_rows_total", "Rows observed.", []Label{{Name: "site", Value: "1"}}, 7)
	pw.Gauge("test_backlog", "Backlog depth.", nil, 3)
	pw.Histogram("test_latency_seconds", "Latency.", ls, h.Snapshot())
	if err := pw.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}
	text := b.String()

	// The family header appears exactly once despite two samples.
	if got := strings.Count(text, "# TYPE test_rows_total counter"); got != 1 {
		t.Fatalf("TYPE header count = %d, want 1\n%s", got, text)
	}

	samples, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("own output does not parse: %v\n%s", err, text)
	}
	byName := make(map[string][]PromSample)
	for _, s := range samples {
		byName[s.Name] = append(byName[s.Name], s)
	}
	if n := len(byName["test_rows_total"]); n != 2 {
		t.Fatalf("test_rows_total samples = %d, want 2", n)
	}
	if v := byName["test_rows_total"][0].Value; v != 42 {
		t.Fatalf("first counter = %v, want 42", v)
	}
	// Histogram: one bucket line per fixed bucket, plus sum and count.
	if n := len(byName["test_latency_seconds_bucket"]); n != HistBuckets {
		t.Fatalf("bucket lines = %d, want %d", n, HistBuckets)
	}
	// The last bucket is +Inf and equals the count.
	last := byName["test_latency_seconds_bucket"][HistBuckets-1]
	if le, _ := findLabel(last.Labels, "le"); le != "+Inf" {
		t.Fatalf("last bucket le = %q, want +Inf", le)
	}
	if last.Value != 3 {
		t.Fatalf("+Inf bucket = %v, want 3", last.Value)
	}
	if v := byName["test_latency_seconds_count"][0].Value; v != 3 {
		t.Fatalf("count = %v, want 3", v)
	}
}

func TestPromWriterLabelEscaping(t *testing.T) {
	var b strings.Builder
	pw := NewPromWriter(&b)
	pw.Gauge("esc_test", "with \\ and \n in help", []Label{{Name: "s", Value: "a\"b\\c\nd"}}, 1)
	if err := pw.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}
	samples, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("escaped output does not parse: %v\n%s", err, b.String())
	}
	if got, _ := findLabel(samples[0].Labels, "s"); got != "a\"b\\c\nd" {
		t.Fatalf("label round-trip = %q", got)
	}
}

func TestFormatValueSpecials(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		1.5:          "1.5",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Fatalf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Fatalf("formatValue(NaN) = %q", got)
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":             "orphan_metric 1\n",
		"bad name":            "# TYPE 9bad counter\n9bad 1\n",
		"bad type":            "# TYPE x wibble\nx 1\n",
		"duplicate TYPE":      "# TYPE x counter\nx 1\n# TYPE x counter\n",
		"unparseable value":   "# TYPE x counter\nx notanumber\n",
		"unterminated labels": "# TYPE x counter\nx{a=\"b\" 1\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n",
		"missing +Inf":           "# TYPE h histogram\nh_bucket{le=\"1\"} 5\n",
		"family without samples": "# TYPE x counter\n",
	}
	for name, text := range cases {
		if _, err := ParseProm(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, text)
		}
	}
}

func TestParsePromAcceptsTimestampsAndComments(t *testing.T) {
	text := "# a bare comment\n# TYPE x counter\n# HELP x some help\nx{a=\"b\"} 4 1700000000000\n"
	samples, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(samples) != 1 || samples[0].Value != 4 {
		t.Fatalf("samples = %+v", samples)
	}
}
