package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// This file is the repository's Prometheus text exposition writer
// (text/plain; version=0.0.4): enough of the format — HELP/TYPE headers,
// escaped label pairs, cumulative histogram buckets — for any scraper to
// consume the fleet metrics, with no dependency beyond the standard
// library. ParseProm (promparse.go) is the matching validator used by
// tests and the CI fleet smoke.

// PromContentType is the Content-Type of the Prometheus text exposition
// format this package writes.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one Prometheus label pair.
type Label struct {
	Name, Value string
}

// PromWriter accumulates Prometheus text exposition onto an io.Writer.
// Errors are sticky: the first write failure is retained and every later
// call is a no-op, so callers check Err once at the end.
type PromWriter struct {
	w   io.Writer
	err error
	// seen tracks metric families whose HELP/TYPE header went out, so a
	// family written from several sources is headed exactly once.
	seen map[string]bool
}

// NewPromWriter returns a writer targeting w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, seen: make(map[string]bool)}
}

// Err returns the first underlying write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// escapeHelp escapes a HELP text (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value (backslash, quote, newline).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// header emits the HELP/TYPE lines for a family once per writer.
func (p *PromWriter) header(name, help, typ string) {
	if p.seen[name] {
		return
	}
	p.seen[name] = true
	p.printf("# HELP %s %s\n", name, escapeHelp(help))
	p.printf("# TYPE %s %s\n", name, typ)
}

// labelSet renders a label list as {a="b",c="d"} ("" when empty).
func labelSet(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects (+Inf,
// -Inf and NaN spelled out).
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

// Counter emits one counter sample, heading the family on first use.
func (p *PromWriter) Counter(name, help string, labels []Label, v float64) {
	p.header(name, help, "counter")
	p.printf("%s%s %s\n", name, labelSet(labels), formatValue(v))
}

// Gauge emits one gauge sample, heading the family on first use.
func (p *PromWriter) Gauge(name, help string, labels []Label, v float64) {
	p.header(name, help, "gauge")
	p.printf("%s%s %s\n", name, labelSet(labels), formatValue(v))
}

// Histogram emits one histogram from a snapshot: cumulative _bucket
// samples with le in seconds (the Prometheus base unit; the snapshot's
// bounds are nanoseconds), a final le="+Inf", _sum in seconds and _count.
// name should therefore end in _seconds by convention.
func (p *PromWriter) Histogram(name, help string, labels []Label, h HistSnapshot) {
	p.header(name, help, "histogram")
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		le := "+Inf"
		if b.UpperNs != math.MaxInt64 {
			le = formatValue(float64(b.UpperNs) / 1e9)
		}
		all := append(append([]Label(nil), labels...), Label{"le", le})
		p.printf("%s_bucket%s %d\n", name, labelSet(all), cum)
	}
	if len(h.Buckets) == 0 || h.Buckets[len(h.Buckets)-1].UpperNs != math.MaxInt64 {
		all := append(append([]Label(nil), labels...), Label{"le", "+Inf"})
		p.printf("%s_bucket%s %d\n", name, labelSet(all), h.Count)
	}
	p.printf("%s_sum%s %s\n", name, labelSet(labels), formatValue(float64(h.SumNs)/1e9))
	p.printf("%s_count%s %d\n", name, labelSet(labels), h.Count)
}
