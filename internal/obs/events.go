package obs

import "sync/atomic"

// EventKind enumerates the typed events the stack emits.
type EventKind uint8

// The event vocabulary. Producers document which kinds they emit; a Sink
// must tolerate kinds it does not know (the set can grow).
const (
	// EvMsgSent: a site pushed a message toward the coordinator. Site is
	// the sender (-1 if unknown), Words the payload in the paper's word
	// accounting (wire senders report bytes via metrics instead).
	EvMsgSent EventKind = iota
	// EvMsgReceived: a message arrived at its destination — at a site for
	// simulated coordinator→site traffic (Site is the receiver), or at the
	// wire coordinator (Site is the original sender).
	EvMsgReceived
	// EvBucketCreated: a sliding-window histogram (gEH/mEH) opened a new
	// bucket. T is the bucket's timestamp.
	EvBucketCreated
	// EvBucketMerged: a compaction pass merged buckets; N is how many
	// buckets were absorbed.
	EvBucketMerged
	// EvBucketExpired: buckets left the window; N is how many.
	EvBucketExpired
	// EvSketchQuery: the coordinator answered a sketch (or estimate) query.
	EvSketchQuery
	// EvSkewDrop: a row arrived beyond the skew horizon and was dropped.
	// Site is the target site, T the row's timestamp.
	EvSkewDrop
	// EvThresholdRenegotiation: the coordinator broadcast a new sampling
	// threshold to every site. Words is the per-site payload.
	EvThresholdRenegotiation
	// EvMsgRejected: the coordinator rejected a malformed message (wrong
	// dimension, unknown kind). Site is the claimed sender.
	EvMsgRejected
	// EvMsgDeduped: the coordinator dropped a frame it had already applied
	// (a replay after reconnect or site restart). Site is the sender, T the
	// frame's timestamp. Deduped frames are still acknowledged.
	EvMsgDeduped
	// EvSiteStale: a liveness sweep found a site whose last frame is older
	// than the staleness bound — its window contribution may be degraded.
	// Emitted once per stale transition; Site is the silent site.
	EvSiteStale
	// EvSiteResync: a site previously marked stale delivered a frame again.
	EvSiteResync
	// EvSnapshotPublish: the coordinator published a new immutable sketch
	// snapshot for the lock-free query path. T is the snapshot's delivered
	// watermark, N its version (truncated to int).
	EvSnapshotPublish

	numEventKinds = iota
)

// NumEventKinds is the number of defined event kinds.
const NumEventKinds = int(numEventKinds)

var eventKindNames = [...]string{
	EvMsgSent:                "msg_sent",
	EvMsgReceived:            "msg_received",
	EvBucketCreated:          "bucket_created",
	EvBucketMerged:           "bucket_merged",
	EvBucketExpired:          "bucket_expired",
	EvSketchQuery:            "sketch_query",
	EvSkewDrop:               "skew_drop",
	EvThresholdRenegotiation: "threshold_renegotiation",
	EvMsgRejected:            "msg_rejected",
	EvMsgDeduped:             "msg_deduped",
	EvSiteStale:              "site_stale",
	EvSiteResync:             "site_resync",
	EvSnapshotPublish:        "snapshot_publish",
}

// String returns the kind's snake_case name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Event is one observability event. Fields beyond Kind are best-effort
// context; producers leave fields they cannot supply at their zero value
// (Site uses -1 for "not site-specific").
type Event struct {
	// Kind selects the event type.
	Kind EventKind
	// Site is the site index the event concerns, -1 when global.
	Site int
	// T is the stream timestamp involved, 0 when not applicable.
	T int64
	// Words is the message payload in words (message events).
	Words int64
	// N is a generic count (buckets merged/expired).
	N int
}

// Sink receives events. Implementations must be cheap and non-blocking —
// hooks fire synchronously on the ingest path — and safe for concurrent
// use when the producer is concurrent (package wire; the in-process
// simulation is single-goroutine).
//
// A nil Sink disables observation: every producer guards its hook with one
// nil-check, so the default costs a predictable branch per site.
type Sink interface {
	OnEvent(Event)
}

// FuncSink adapts a function to the Sink interface.
type FuncSink func(Event)

// OnEvent calls f.
func (f FuncSink) OnEvent(e Event) { f(e) }

// CountingSink tallies events per kind — the cheapest useful Sink, and the
// one the facade's Metrics() uses for event totals. Safe for concurrent
// use.
type CountingSink struct {
	counts [numEventKinds]atomic.Int64
}

// OnEvent increments the kind's tally.
func (s *CountingSink) OnEvent(e Event) {
	if int(e.Kind) < len(s.counts) {
		s.counts[e.Kind].Add(1)
	}
}

// Count returns the tally for one kind.
func (s *CountingSink) Count(k EventKind) int64 {
	if int(k) >= len(s.counts) {
		return 0
	}
	return s.counts[k].Load()
}

// Counts returns a name→count map of all kinds seen so far (zero-count
// kinds are omitted).
func (s *CountingSink) Counts() map[string]int64 {
	out := make(map[string]int64)
	for k := range s.counts {
		if n := s.counts[k].Load(); n > 0 {
			out[EventKind(k).String()] = n
		}
	}
	return out
}

// MultiSink fans events out to several sinks in order.
type MultiSink []Sink

// OnEvent forwards the event to every non-nil member.
func (m MultiSink) OnEvent(e Event) {
	for _, s := range m {
		if s != nil {
			s.OnEvent(e)
		}
	}
}
