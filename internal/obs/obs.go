// Package obs is the repository's observability substrate: allocation-free
// metric primitives (atomic counters, gauges and fixed-bucket latency
// histograms) plus a typed event-hook interface (Sink) that the protocol
// fabric, the sliding-window histograms and the networked deployment feed.
//
// Design constraints, in order:
//
//  1. The ingest hot path must stay hot. Every hook site guards on a single
//     nil-check (`if sink != nil`), counters are single atomic adds, and
//     nothing in this package allocates after construction.
//  2. Snapshots must be safe to take from another goroutine — a tracker
//     ingesting on one goroutine can serve /metrics from an HTTP handler
//     concurrently. All mutable state is atomic.
//  3. No dependencies beyond the standard library, like the rest of the
//     repository.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is an atomic instantaneous value (live connections, buffered rows,
// current bucket count).
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (use negative deltas to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// MaxGauge keeps a running maximum of sampled values — the space-usage
// metric of the paper's experiments (max words held by any site).
type MaxGauge struct{ v atomic.Int64 }

// Observe raises the maximum to n if n exceeds it.
func (m *MaxGauge) Observe(n int64) {
	for {
		cur := m.v.Load()
		if n <= cur {
			return
		}
		if m.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the maximum observed so far.
func (m *MaxGauge) Load() int64 { return m.v.Load() }

// Reset zeroes the maximum.
func (m *MaxGauge) Reset() { m.v.Store(0) }

// histBounds are the latency histogram's fixed bucket upper bounds in
// nanoseconds: powers of four from 256ns to ~1.07s, then +Inf. Thirteen
// buckets cover everything from a cache-warm scalar update to a stalled
// network write with ~2× resolution per decade.
var histBounds = [...]int64{
	1 << 8,  // 256ns
	1 << 10, // ~1µs
	1 << 12, // ~4µs
	1 << 14, // ~16µs
	1 << 16, // ~66µs
	1 << 18, // ~262µs
	1 << 20, // ~1ms
	1 << 22, // ~4.2ms
	1 << 24, // ~16.8ms
	1 << 26, // ~67ms
	1 << 28, // ~268ms
	1 << 30, // ~1.07s
}

// HistBuckets is the number of histogram buckets, including the overflow
// bucket.
const HistBuckets = len(histBounds) + 1

// Histogram is a fixed-bucket latency histogram. The zero value is ready
// to use; Observe is lock-free and allocation-free.
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// histBucketOf maps a non-negative duration to its bucket index without
// scanning: the bounds are 2^(8+2i), so the smallest i with ns ≤ 2^(8+2i)
// is ⌈(L−8)/2⌉ where L = bits.Len64(ns−1) (the number of bits needed for
// ns−1, i.e. L ≤ k ⟺ ns ≤ 2^k). Values at or below the first bound short
// out before the ns−1 underflow; indices past the last bound land in the
// overflow bucket.
func histBucketOf(ns int64) int {
	if ns <= histBounds[0] {
		return 0
	}
	i := (bits.Len64(uint64(ns-1)) - 7) / 2
	if i >= HistBuckets-1 {
		return HistBuckets - 1
	}
	return i
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	h.buckets[histBucketOf(ns)].Add(1)
}

// HistBucket is one bucket of a histogram snapshot. UpperNs is the bucket's
// inclusive upper bound in nanoseconds (math.MaxInt64 for the overflow
// bucket).
type HistBucket struct {
	UpperNs int64
	Count   int64
}

// HistSnapshot is a point-in-time copy of a Histogram, safe to serialize.
type HistSnapshot struct {
	Count   int64
	SumNs   int64
	Buckets []HistBucket
}

// Snapshot copies the histogram's current state. Buckets with zero count
// are included so consumers see the full fixed scale.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count:   h.count.Load(),
		SumNs:   h.sumNs.Load(),
		Buckets: make([]HistBucket, HistBuckets),
	}
	for i := range h.buckets {
		upper := int64(math.MaxInt64)
		if i < len(histBounds) {
			upper = histBounds[i]
		}
		s.Buckets[i] = HistBucket{UpperNs: upper, Count: h.buckets[i].Load()}
	}
	return s
}

// MeanNs returns the mean observation in nanoseconds (0 when empty).
func (s HistSnapshot) MeanNs() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count)
}

// QuantileUpperNs returns the upper bound of the bucket containing the
// q-quantile (q in [0,1]) — a conservative estimate of the latency at that
// quantile. Returns 0 when the histogram is empty.
func (s HistSnapshot) QuantileUpperNs(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= target {
			return b.UpperNs
		}
	}
	return s.Buckets[len(s.Buckets)-1].UpperNs
}

// Merge returns the element-wise sum of two snapshots — the fleet view of
// the same latency measured at many sites. Merge is commutative and
// associative, so any aggregation order yields the same fleet histogram.
// An empty snapshot (zero value, nil buckets) acts as the identity; two
// non-empty snapshots must share the fixed bucket scale, which every
// Histogram in this package does.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if len(s.Buckets) == 0 && len(o.Buckets) == 0 {
		return HistSnapshot{Count: s.Count + o.Count, SumNs: s.SumNs + o.SumNs}
	}
	out := HistSnapshot{
		Count:   s.Count + o.Count,
		SumNs:   s.SumNs + o.SumNs,
		Buckets: make([]HistBucket, HistBuckets),
	}
	for i := range out.Buckets {
		upper := int64(math.MaxInt64)
		if i < len(histBounds) {
			upper = histBounds[i]
		}
		out.Buckets[i].UpperNs = upper
		if i < len(s.Buckets) {
			out.Buckets[i].Count += s.Buckets[i].Count
		}
		if i < len(o.Buckets) {
			out.Buckets[i].Count += o.Buckets[i].Count
		}
	}
	return out
}
