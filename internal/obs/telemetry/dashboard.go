package telemetry

import (
	"fmt"
	"html"
	"net/http"
	"sort"
	"strings"
	"time"

	"distwindow/internal/svgplot"
)

// The /debug/fleet dashboard: one HTML page summarizing the fleet — a
// per-(site,stream) table of the latest counters and derived rates, and
// two embedded SVG charts (ingest rate and ε-headroom over time) drawn
// from the per-series frame rings, in the style of /debug/audit.

// maxChartSeries bounds the charted series so a thousand-stream registry
// doesn't render a thousand polylines; the page states the truncation
// explicitly rather than capping silently.
const maxChartSeries = 12

// Dashboard renders the fleet as a standalone HTML page.
func (f *Fleet) Dashboard() string {
	m := f.Snapshot()
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><title>fleet telemetry</title>\n")
	b.WriteString("<style>body{font-family:sans-serif;margin:2em}table{border-collapse:collapse}" +
		"th,td{border:1px solid #999;padding:4px 8px;text-align:right}" +
		"th{background:#eee}td.l{text-align:left}tr.deg{background:#fdd}" +
		".note{color:#666;font-size:90%}</style></head><body>\n")
	fmt.Fprintf(&b, "<h1>fleet telemetry</h1>\n<p>%d series across %d sites / %d streams · %d frames received",
		len(m.Series), m.Sites, m.Streams, m.FramesTotal)
	if m.DroppedFrames > 0 {
		fmt.Fprintf(&b, " · <b>%d frames dropped by the series cap</b>", m.DroppedFrames)
	}
	if len(m.DegradedSites) > 0 {
		fmt.Fprintf(&b, " · <b>degraded sites: %v</b>", m.DegradedSites)
	}
	b.WriteString("</p>\n")

	b.WriteString("<table>\n<tr><th>site</th><th>stream</th><th>protocol</th>" +
		"<th>rows</th><th>rows/s</th><th>words</th><th>words/s</th><th>words/window</th>" +
		"<th>ε</th><th>headroom</th><th>replays</th><th>backlog</th><th>age</th></tr>\n")
	for _, v := range m.Series {
		cls := ""
		if v.Degraded {
			cls = ` class="deg"`
		}
		fmt.Fprintf(&b, "<tr%s><td>%d</td><td class=\"l\">%s</td><td class=\"l\">%s</td>"+
			"<td>%d</td><td>%.1f</td><td>%d</td><td>%.1f</td><td>%.1f</td>"+
			"<td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%s</td></tr>\n",
			cls, v.Site, html.EscapeString(streamLabel(v.Stream)), html.EscapeString(v.Proto),
			v.Rows, v.RowsPerSec, v.Words, v.WordsPerSec, v.WordsPerWindow,
			fmtEps(v.Eps), fmtEps(v.Headroom), v.Replays, v.Backlog,
			(time.Duration(v.AgeMs) * time.Millisecond).String())
	}
	b.WriteString("</table>\n")

	if lat := m.UpdateLat; lat.Count > 0 {
		fmt.Fprintf(&b, "<p>fleet update latency: mean %.1fµs · p50 ≤ %s · p99 ≤ %s over %d observations</p>\n",
			lat.MeanNs()/1e3,
			time.Duration(lat.QuantileUpperNs(0.5)).String(),
			time.Duration(lat.QuantileUpperNs(0.99)).String(),
			lat.Count)
	}

	keys := f.chartKeys(m)
	if len(keys) < len(m.Series) {
		fmt.Fprintf(&b, "<p class=\"note\">charts show the %d busiest of %d series (by rows); the table above is complete.</p>\n",
			len(keys), len(m.Series))
	}
	if rateChart := f.rateChart(keys); rateChart != "" {
		b.WriteString("<h2>ingest rate</h2>\n")
		b.WriteString(rateChart)
	}
	if headChart := f.headroomChart(keys); headChart != "" {
		b.WriteString("<h2>ε-headroom</h2>\n")
		b.WriteString(headChart)
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

func fmtEps(v float64) string {
	if v == 0 {
		return "–"
	}
	return fmt.Sprintf("%.3f", v)
}

// chartKeys picks up to maxChartSeries keys, busiest (most rows) first,
// then re-sorts by key for stable legends.
func (f *Fleet) chartKeys(m FleetMetrics) []Key {
	views := append([]SeriesView(nil), m.Series...)
	sort.SliceStable(views, func(i, j int) bool { return views[i].Rows > views[j].Rows })
	if len(views) > maxChartSeries {
		views = views[:maxChartSeries]
	}
	keys := make([]Key, len(views))
	for i, v := range views {
		keys[i] = Key{Site: v.Site, Stream: v.Stream}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Site != keys[j].Site {
			return keys[i].Site < keys[j].Site
		}
		return keys[i].Stream < keys[j].Stream
	})
	return keys
}

// seriesName labels a chart series.
func seriesName(k Key) string {
	return fmt.Sprintf("site %d / %s", k.Site, streamLabel(k.Stream))
}

// rateChart plots the rows/s between consecutive frames of each key's
// ring against time since the ring's first frame.
func (f *Fleet) rateChart(keys []Key) string {
	var series []svgplot.Series
	for _, k := range keys {
		frames := f.History(k)
		if len(frames) < 2 {
			continue
		}
		s := svgplot.Series{Name: seriesName(k)}
		t0 := frames[0].UnixNs
		for i := 1; i < len(frames); i++ {
			r := rate(frames[i-1].Rows, frames[i].Rows, frames[i-1].UnixNs, frames[i].UnixNs)
			s.Points = append(s.Points, svgplot.Point{
				X: float64(frames[i].UnixNs-t0) / 1e9,
				Y: r,
			})
		}
		series = append(series, s)
	}
	if len(series) == 0 {
		return ""
	}
	return svgplot.Plot{
		Title:  "ingest rate by (site, stream)",
		XLabel: "seconds since first frame",
		YLabel: "rows/s",
		Series: series,
	}.Render()
}

// headroomChart plots each key's audited ε-headroom over time (series
// without an auditor — Eps 0 — are skipped).
func (f *Fleet) headroomChart(keys []Key) string {
	var series []svgplot.Series
	for _, k := range keys {
		frames := f.History(k)
		s := svgplot.Series{Name: seriesName(k)}
		var t0 int64
		for _, fr := range frames {
			if fr.Eps == 0 {
				continue
			}
			if t0 == 0 {
				t0 = fr.UnixNs
			}
			s.Points = append(s.Points, svgplot.Point{
				X: float64(fr.UnixNs-t0) / 1e9,
				Y: fr.Headroom,
			})
		}
		if len(s.Points) > 0 {
			series = append(series, s)
		}
	}
	if len(series) == 0 {
		return ""
	}
	return svgplot.Plot{
		Title:  "ε-headroom by (site, stream)",
		XLabel: "seconds since first audited frame",
		YLabel: "ε − observed error",
		Series: series,
	}.Render()
}

// Handler serves the dashboard as text/html — the /debug/fleet endpoint.
func (f *Fleet) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(f.Dashboard()))
	})
}
