package telemetry

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"distwindow/internal/obs"
)

// fakeClock is a settable time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestFleet(clk *fakeClock) *Fleet {
	f := NewFleet()
	f.now = clk.now
	return f
}

func frameAt(site int, stream string, rows int64, at time.Time) Frame {
	return Frame{Site: site, Stream: stream, Proto: "DA2", Rows: rows, Words: rows / 10, UnixNs: at.UnixNano()}
}

func TestFleetRatesFromRings(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	f := newTestFleet(clk)

	// Site 0 publishes 100 rows/s for 4 seconds.
	for i := int64(0); i <= 4; i++ {
		f.Record(frameAt(0, "", i*100, clk.t.Add(time.Duration(i)*time.Second)))
	}
	m := f.Snapshot()
	if len(m.Series) != 1 {
		t.Fatalf("series = %d, want 1", len(m.Series))
	}
	v := m.Series[0]
	if v.Rows != 400 {
		t.Fatalf("latest rows = %d, want 400", v.Rows)
	}
	if v.RowsPerSec < 99 || v.RowsPerSec > 101 {
		t.Fatalf("rows/s = %v, want ~100", v.RowsPerSec)
	}
	if v.Frames != 5 {
		t.Fatalf("ring frames = %d, want 5", v.Frames)
	}
}

func TestFleetRingEviction(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	f := newTestFleet(clk)
	f.SetRingCap(4)
	for i := int64(0); i < 10; i++ {
		f.Record(frameAt(1, "s", i, clk.t.Add(time.Duration(i)*time.Second)))
	}
	h := f.History(Key{Site: 1, Stream: "s"})
	if len(h) != 4 {
		t.Fatalf("history = %d frames, want ring cap 4", len(h))
	}
	if h[0].Rows != 6 || h[3].Rows != 9 {
		t.Fatalf("ring kept wrong window: first=%d last=%d, want 6/9", h[0].Rows, h[3].Rows)
	}
	if f.Snapshot().FramesTotal != 10 {
		t.Fatalf("FramesTotal = %d, want 10", f.Snapshot().FramesTotal)
	}
}

func TestFleetCounterResetYieldsZeroRate(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	f := newTestFleet(clk)
	f.Record(frameAt(0, "", 500, clk.t))
	// The site restarted: counters reset below the previous frame.
	f.Record(frameAt(0, "", 10, clk.t.Add(time.Second)))
	if r := f.Snapshot().Series[0].RowsPerSec; r != 0 {
		t.Fatalf("rate after counter reset = %v, want 0", r)
	}
}

func TestFleetSeriesCapDropsNewKeys(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	f := newTestFleet(clk)
	f.maxSeries = 2
	f.Record(frameAt(0, "a", 1, clk.t))
	f.Record(frameAt(0, "b", 1, clk.t))
	f.Record(frameAt(0, "c", 1, clk.t)) // over the cap: dropped
	f.Record(frameAt(0, "a", 2, clk.t)) // existing key: recorded
	m := f.Snapshot()
	if len(m.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(m.Series))
	}
	if m.DroppedFrames != 1 {
		t.Fatalf("dropped = %d, want 1", m.DroppedFrames)
	}
	if m.FramesTotal != 3 {
		t.Fatalf("recorded = %d, want 3", m.FramesTotal)
	}
}

func TestFleetDegradedUnifiesTelemetryAndWireLiveness(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	f := newTestFleet(clk)
	f.SetStaleAfter(5 * time.Second)
	f.Record(frameAt(0, "", 1, clk.t))
	f.Record(frameAt(1, "", 1, clk.t))

	// Fresh: nobody degraded.
	if m := f.Snapshot(); len(m.DegradedSites) != 0 {
		t.Fatalf("fresh fleet degraded: %v", m.DegradedSites)
	}

	// Site 0 goes silent past the horizon; site 1 keeps publishing.
	clk.advance(6 * time.Second)
	f.Record(frameAt(1, "", 2, clk.t))
	m := f.Snapshot()
	if len(m.DegradedSites) != 1 || m.DegradedSites[0] != 0 {
		t.Fatalf("degraded = %v, want [0]", m.DegradedSites)
	}
	for _, v := range m.Series {
		if (v.Site == 0) != v.Degraded {
			t.Fatalf("site %d Degraded=%v", v.Site, v.Degraded)
		}
	}

	// The wire-liveness source adds site 7 (which never sent telemetry)
	// and site 1 (telemetry-fresh but data-stale).
	f.SetDegradedSource(func() []int { return []int{7, 1} })
	m = f.Snapshot()
	if len(m.DegradedSites) != 3 {
		t.Fatalf("unified degraded = %v, want [0 1 7]", m.DegradedSites)
	}
	for i, want := range []int{0, 1, 7} {
		if m.DegradedSites[i] != want {
			t.Fatalf("unified degraded = %v, want [0 1 7]", m.DegradedSites)
		}
	}
}

func TestFleetMergesHistograms(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	f := newTestFleet(clk)
	var h1, h2 obs.Histogram
	h1.Observe(time.Microsecond)
	h2.Observe(time.Millisecond)
	h2.Observe(time.Millisecond)
	fr1 := frameAt(0, "", 1, clk.t)
	fr1.UpdateLat = h1.Snapshot()
	fr2 := frameAt(1, "", 1, clk.t)
	fr2.UpdateLat = h2.Snapshot()
	f.Record(fr1)
	f.Record(fr2)
	lat := f.Snapshot().UpdateLat
	if lat.Count != 3 {
		t.Fatalf("merged count = %d, want 3", lat.Count)
	}
}

func TestFleetWritePrometheus(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	f := newTestFleet(clk)
	fr := frameAt(3, "tenant-a", 1000, clk.t)
	fr.Eps = 0.2
	fr.Headroom = 0.15
	fr.WordsPerWindow = 123
	var h obs.Histogram
	h.Observe(time.Microsecond)
	fr.UpdateLat = h.Snapshot()
	f.Record(fr)
	f.Record(frameAt(4, "", 50, clk.t))

	var b strings.Builder
	if err := f.WritePrometheusTo(&b); err != nil {
		t.Fatalf("write: %v", err)
	}
	text := b.String()
	samples, err := obs.ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("fleet exposition does not parse: %v\n%s", err, text)
	}
	want := map[string]bool{
		"distwindow_site_rows_total":              false,
		"distwindow_site_words_per_window":        false,
		"distwindow_site_epsilon_headroom":        false,
		"distwindow_site_degraded":                false,
		"distwindow_update_latency_seconds_count": false,
		"distwindow_fleet_series":                 false,
	}
	foundLabels := false
	for _, s := range samples {
		if _, ok := want[s.Name]; ok {
			want[s.Name] = true
		}
		if s.Name == "distwindow_site_rows_total" {
			var site, stream, proto string
			for _, l := range s.Labels {
				switch l.Name {
				case "site":
					site = l.Value
				case "stream":
					stream = l.Value
				case "protocol":
					proto = l.Value
				}
			}
			if site == "3" && stream == "tenant-a" && proto == "DA2" {
				foundLabels = true
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("exposition missing %s:\n%s", name, text)
		}
	}
	if !foundLabels {
		t.Errorf("no rows sample with site/stream/protocol labels:\n%s", text)
	}
	// The default stream is labeled "default", never empty.
	if strings.Contains(text, `stream=""`) {
		t.Errorf("empty stream label leaked:\n%s", text)
	}
	// ε families are omitted for the auditor-less series, not zero-filled.
	for _, s := range samples {
		if s.Name == "distwindow_site_epsilon" {
			if v, _ := findSite(s.Labels); v == "4" {
				t.Errorf("epsilon emitted for auditor-less site 4")
			}
		}
	}
}

func findSite(ls []obs.Label) (string, bool) {
	for _, l := range ls {
		if l.Name == "site" {
			return l.Value, true
		}
	}
	return "", false
}

func TestPublisherStampsAndCounts(t *testing.T) {
	var got []Frame
	fail := false
	p := NewPublisher(
		func() Frame { return Frame{Site: 2, Stream: "x", Rows: 9} },
		func(fr Frame) error {
			if fail {
				return errors.New("conn down")
			}
			got = append(got, fr)
			return nil
		},
	)
	clk := &fakeClock{t: time.Unix(2000, 0)}
	p.now = clk.now

	if err := p.Publish(); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if len(got) != 1 || got[0].UnixNs != clk.t.UnixNano() || got[0].Rows != 9 {
		t.Fatalf("published frame = %+v", got)
	}
	fail = true
	if err := p.Publish(); err == nil {
		t.Fatalf("publish swallowed the send error")
	}
	if p.Sent() != 1 || p.Dropped() != 1 {
		t.Fatalf("sent/dropped = %d/%d, want 1/1", p.Sent(), p.Dropped())
	}
}

func TestPublisherTicker(t *testing.T) {
	var mu sync.Mutex
	n := 0
	p := NewPublisher(
		func() Frame { return Frame{} },
		func(Frame) error { mu.Lock(); n++; mu.Unlock(); return nil },
	)
	p.Start(2 * time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	p.Stop()
	mu.Lock()
	final := n
	mu.Unlock()
	// Stop publishes one final frame, so at least that one must land even
	// on a slow machine.
	if final < 1 {
		t.Fatalf("ticker published %d frames, want ≥ 1", final)
	}
	// No more frames after Stop.
	time.Sleep(10 * time.Millisecond)
	mu.Lock()
	after := n
	mu.Unlock()
	if after != final {
		t.Fatalf("publisher kept ticking after Stop: %d -> %d", final, after)
	}
}

func TestDashboardRenders(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	f := newTestFleet(clk)
	for i := int64(0); i < 5; i++ {
		fr := frameAt(0, "", i*50, clk.t.Add(time.Duration(i)*time.Second))
		fr.Eps, fr.Headroom = 0.2, 0.1
		f.Record(fr)
	}
	page := f.Dashboard()
	for _, want := range []string{"<table>", "fleet telemetry", "<svg", "ingest rate", "ε-headroom"} {
		if !strings.Contains(page, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}

	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("dashboard Content-Type = %q", ct)
	}
}
