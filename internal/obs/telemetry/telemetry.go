// Package telemetry is the fleet telemetry plane: each site of a
// distributed deployment periodically snapshots its observability
// counters into a compact Frame, ships it to the coordinator over the
// existing wire connection (a dedicated message kind, outside the seq/ack
// estimate space — telemetry is best-effort by design), and the
// coordinator's Fleet aggregates the frames into a single pane of glass
// keyed by (site, stream): ingest/communication rates from fixed-capacity
// time-series rings, merged latency histograms, the paper's words/window
// and ε-headroom series, and degraded-site detection unified with the
// coordinator's frame-level liveness.
//
// The plane is strictly off the ingest hot path: publishing happens on a
// ticker goroutine reading atomic counters, recording costs one mutex
// acquisition per frame at the coordinator, and a lost frame costs
// nothing but a gap in the rate series.
package telemetry

import (
	"sync"
	"time"

	"distwindow/internal/obs"
)

// Frame is one site's point-in-time metric snapshot for one logical
// stream — the unit shipped over the wire. All fields are cumulative
// counters or instantaneous gauges; rates are derived at the coordinator
// from consecutive frames, so a dropped frame skews nothing.
//
// Frames ride the wire as a gob struct field; the usual field-matching
// rule keeps them mixed-version compatible (fields added later decode as
// zero at old peers, unknown fields are skipped — see PROTOCOLS.md).
type Frame struct {
	// Site identifies the sender (-1 = the coordinator's own process,
	// which publishes its local series into the same fleet).
	Site int
	// Stream is the logical stream this frame describes ("" = default).
	Stream string
	// Proto is the protocol's display name, exported as the protocol
	// label.
	Proto string
	// UnixNs is the sender's wall clock at snapshot time — the rate
	// denominators. Stamped by Publisher.
	UnixNs int64

	// Rows counts rows observed into the stream's protocol state.
	Rows int64
	// Msgs and Words count estimate traffic pushed toward the coordinator
	// (the paper's word accounting).
	Msgs, Words int64

	// Replays, Acked, Backlog, Dials and DialFails mirror the resilient
	// sender's delivery counters (PR 5); Backlog is the current
	// undelivered depth, a gauge.
	Replays, Acked int64
	Backlog        int64
	Dials          int64
	DialFails      int64

	// Eps is the stream's configured error budget (0 = no auditor);
	// Err, Headroom, WordsPerWindow and Violations mirror the live
	// ε-auditor's latest measurement.
	Eps, Err, Headroom float64
	WordsPerWindow     float64
	Violations         int64

	// UpdateLat is the site's update-latency histogram; the fleet merges
	// every site's into one distribution.
	UpdateLat obs.HistSnapshot
}

// Publisher periodically collects a Frame, stamps it with the wall clock,
// and pushes it through a send seam — at a site, wire.TelemetrySender
// over the existing coordinator connection; in process, Fleet.Record
// directly. Collect runs on the publisher's goroutine, never the ingest
// path, so it may read atomic counters freely but must not block.
type Publisher struct {
	collect func() Frame
	send    func(Frame) error
	now     func() time.Time

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	sent    obs.Counter
	dropped obs.Counter
}

// NewPublisher pairs a frame source with a send seam.
func NewPublisher(collect func() Frame, send func(Frame) error) *Publisher {
	return &Publisher{collect: collect, send: send, now: time.Now}
}

// Publish collects, stamps and sends one frame immediately. A send error
// is counted (telemetry is best-effort) and returned for callers that
// want to log it.
func (p *Publisher) Publish() error {
	fr := p.collect()
	fr.UnixNs = p.now().UnixNano()
	err := p.send(fr)
	if err != nil {
		p.dropped.Inc()
		return err
	}
	p.sent.Inc()
	return nil
}

// Start publishes every interval on a background goroutine until Stop.
// Starting an already-started publisher restarts its ticker.
func (p *Publisher) Start(every time.Duration) {
	if every <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stopLocked()
	stop := make(chan struct{})
	done := make(chan struct{})
	p.stop, p.done = stop, done
	go func() {
		defer close(done)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				_ = p.Publish()
			}
		}
	}()
}

// Stop halts the ticker goroutine and publishes one final frame, so the
// fleet sees the sender's end-of-life counters even for short runs.
func (p *Publisher) Stop() {
	p.mu.Lock()
	p.stopLocked()
	p.mu.Unlock()
	_ = p.Publish()
}

func (p *Publisher) stopLocked() {
	if p.stop != nil {
		close(p.stop)
		<-p.done
		p.stop, p.done = nil, nil
	}
}

// Sent and Dropped report publish outcomes (dropped = send errors).
func (p *Publisher) Sent() int64    { return p.sent.Load() }
func (p *Publisher) Dropped() int64 { return p.dropped.Load() }
