package telemetry

import (
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"distwindow/internal/obs"
)

// Fleet is the coordinator-side aggregate of telemetry frames, keyed by
// (site, stream). Each series keeps a fixed-capacity ring of recent
// frames — enough history to derive rates and draw the dashboard, with a
// hard memory bound no matter how long the deployment runs or how often
// sites publish.
type Fleet struct {
	mu     sync.Mutex
	series map[Key]*seriesState

	// ringCap bounds each series' frame history; maxSeries bounds the
	// number of distinct (site, stream) keys — a misbehaving sender cannot
	// grow coordinator memory without bound. Set before first Record.
	ringCap   int
	maxSeries int

	// staleAfter is the telemetry-liveness horizon: a series with no frame
	// for longer is reported degraded.
	staleAfter time.Duration
	// degraded, when set, folds an external liveness source (the wire
	// coordinator's frame-level SiteStatuses) into degraded-site
	// detection, so one signal covers both "no data frames" and "no
	// telemetry frames".
	degraded func() []int

	now func() time.Time

	frames        obs.Counter
	droppedFrames obs.Counter
}

// Key identifies one telemetry series.
type Key struct {
	Site   int
	Stream string
}

type seriesState struct {
	// ring holds the last ringCap frames, oldest at index tail when full.
	ring []Frame
	head int // next write position
	n    int // frames stored (≤ cap)
	// seen is the receiver's clock at the last Record — the staleness
	// basis (sender clocks only order frames within one series).
	seen time.Time
}

func (s *seriesState) push(fr Frame, capacity int) {
	if len(s.ring) == 0 {
		s.ring = make([]Frame, capacity)
	}
	s.ring[s.head] = fr
	s.head = (s.head + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
}

// at returns the i-th stored frame, oldest first.
func (s *seriesState) at(i int) Frame {
	start := s.head - s.n
	if start < 0 {
		start += len(s.ring)
	}
	return s.ring[(start+i)%len(s.ring)]
}

func (s *seriesState) latest() Frame { return s.at(s.n - 1) }
func (s *seriesState) oldest() Frame { return s.at(0) }

// NewFleet returns a fleet view with defaults: 64 frames of history per
// series, at most 4096 series, 10s telemetry staleness.
func NewFleet() *Fleet {
	return &Fleet{
		series:     make(map[Key]*seriesState),
		ringCap:    64,
		maxSeries:  4096,
		staleAfter: 10 * time.Second,
		now:        time.Now,
	}
}

// SetRingCap resizes the per-series history bound for series created
// after the call (existing rings keep their size).
func (f *Fleet) SetRingCap(n int) {
	if n < 2 {
		n = 2 // rates need two endpoints
	}
	f.mu.Lock()
	f.ringCap = n
	f.mu.Unlock()
}

// SetStaleAfter sets the telemetry-liveness horizon (0 disables
// telemetry-based degradation).
func (f *Fleet) SetStaleAfter(d time.Duration) {
	f.mu.Lock()
	f.staleAfter = d
	f.mu.Unlock()
}

// SetDegradedSource installs an external degraded-site source — the wire
// coordinator's stale-site list — unified into Snapshot's per-series
// Degraded flag and the fleet's DegradedSites set.
func (f *Fleet) SetDegradedSource(src func() []int) {
	f.mu.Lock()
	f.degraded = src
	f.mu.Unlock()
}

// Record folds one frame into the fleet. It is safe for concurrent use
// and cheap (one mutex acquisition, one ring write); it never blocks on
// I/O, so calling it from a connection-handling goroutine is fine.
func (f *Fleet) Record(fr Frame) {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := Key{Site: fr.Site, Stream: fr.Stream}
	st := f.series[k]
	if st == nil {
		if len(f.series) >= f.maxSeries {
			// Bounded memory beats complete data: drop frames for new keys
			// past the cap, and count the drops so the cap is never silent.
			f.droppedFrames.Inc()
			return
		}
		st = &seriesState{}
		f.series[k] = st
	}
	st.push(fr, f.ringCap)
	st.seen = f.now()
	f.frames.Inc()
}

// SeriesView is one (site, stream) row of the fleet snapshot: the latest
// frame's cumulative counters and gauges plus rates derived from the
// ring's endpoints.
type SeriesView struct {
	Site   int
	Stream string
	Proto  string

	// Latest cumulative counters / gauges (Frame field meanings).
	Rows, Msgs, Words       int64
	Replays, Acked, Backlog int64
	Dials, DialFails        int64
	Eps, Err, Headroom      float64
	WordsPerWindow          float64
	Violations              int64

	// RowsPerSec and WordsPerSec are derived from the oldest and newest
	// ring frames (0 with fewer than two frames, after a counter reset,
	// or a non-advancing sender clock).
	RowsPerSec, WordsPerSec float64

	// Frames is the ring occupancy; AgeMs the receiver-side time since the
	// last frame; Degraded folds telemetry staleness with the external
	// liveness source.
	Frames   int
	AgeMs    int64
	Degraded bool

	UpdateLat obs.HistSnapshot
}

// FleetMetrics is the full fleet snapshot.
type FleetMetrics struct {
	// Series lists every tracked (site, stream) pair, sorted by site then
	// stream.
	Series []SeriesView
	// Sites and Streams count distinct key components.
	Sites, Streams int
	// FramesTotal counts frames folded in; DroppedFrames counts frames
	// refused by the series cap.
	FramesTotal   int64
	DroppedFrames int64
	// DegradedSites is the sorted union of telemetry-stale sites and the
	// external (wire-liveness) degraded set.
	DegradedSites []int
	// UpdateLat is every series' latest latency histogram merged into one
	// fleet distribution.
	UpdateLat obs.HistSnapshot
}

// rate returns (new−old)/Δt clamped to ≥0, guarding counter resets
// (restarted sender) and non-advancing clocks.
func rate(oldV, newV, oldNs, newNs int64) float64 {
	if newNs <= oldNs || newV < oldV {
		return 0
	}
	return float64(newV-oldV) / (float64(newNs-oldNs) / 1e9)
}

// Snapshot assembles the current fleet view. Safe to call concurrently
// with Record.
func (f *Fleet) Snapshot() FleetMetrics {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.now()
	var extDeg map[int]bool
	if f.degraded != nil {
		// The source reads coordinator liveness under the coordinator's own
		// lock; safe to call under f.mu because the coordinator never calls
		// back into the fleet while holding it.
		extDeg = make(map[int]bool)
		for _, s := range f.degraded() {
			extDeg[s] = true
		}
	}
	m := FleetMetrics{
		FramesTotal:   f.frames.Load(),
		DroppedFrames: f.droppedFrames.Load(),
	}
	sites := make(map[int]bool)
	streams := make(map[string]bool)
	degSites := make(map[int]bool)
	for k, st := range f.series {
		last := st.latest()
		v := SeriesView{
			Site: k.Site, Stream: k.Stream, Proto: last.Proto,
			Rows: last.Rows, Msgs: last.Msgs, Words: last.Words,
			Replays: last.Replays, Acked: last.Acked, Backlog: last.Backlog,
			Dials: last.Dials, DialFails: last.DialFails,
			Eps: last.Eps, Err: last.Err, Headroom: last.Headroom,
			WordsPerWindow: last.WordsPerWindow, Violations: last.Violations,
			Frames:    st.n,
			AgeMs:     now.Sub(st.seen).Milliseconds(),
			UpdateLat: last.UpdateLat,
		}
		if st.n >= 2 {
			first := st.oldest()
			v.RowsPerSec = rate(first.Rows, last.Rows, first.UnixNs, last.UnixNs)
			v.WordsPerSec = rate(first.Words, last.Words, first.UnixNs, last.UnixNs)
		}
		if f.staleAfter > 0 && now.Sub(st.seen) > f.staleAfter {
			v.Degraded = true
		}
		if extDeg[k.Site] {
			v.Degraded = true
		}
		if v.Degraded {
			degSites[k.Site] = true
		}
		sites[k.Site] = true
		streams[k.Stream] = true
		m.UpdateLat = m.UpdateLat.Merge(last.UpdateLat)
		m.Series = append(m.Series, v)
	}
	// External degradation also covers sites that never sent telemetry.
	for s := range extDeg {
		degSites[s] = true
	}
	sort.Slice(m.Series, func(i, j int) bool {
		if m.Series[i].Site != m.Series[j].Site {
			return m.Series[i].Site < m.Series[j].Site
		}
		return m.Series[i].Stream < m.Series[j].Stream
	})
	for s := range degSites {
		m.DegradedSites = append(m.DegradedSites, s)
	}
	sort.Ints(m.DegradedSites)
	m.Sites, m.Streams = len(sites), len(streams)
	return m
}

// History returns a series' retained frames oldest-first (nil when the
// key is unknown) — the dashboard's chart source.
func (f *Fleet) History(k Key) []Frame {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.series[k]
	if st == nil {
		return nil
	}
	out := make([]Frame, st.n)
	for i := 0; i < st.n; i++ {
		out[i] = st.at(i)
	}
	return out
}

// streamLabel renders the stream label value ("" is the default stream).
func streamLabel(s string) string {
	if s == "" {
		return "default"
	}
	return s
}

// WritePrometheus writes the fleet's per-(site,stream) series and
// fleet-level aggregates in the Prometheus text exposition format. The
// caller may pre-write its own coordinator-local families on the same
// PromWriter by wrapping this in a closure; pw state (family headers,
// sticky error) carries across.
func (f *Fleet) WritePrometheus(pw *obs.PromWriter) {
	m := f.Snapshot()
	for _, v := range m.Series {
		ls := []obs.Label{
			{Name: "site", Value: strconv.Itoa(v.Site)},
			{Name: "stream", Value: streamLabel(v.Stream)},
			{Name: "protocol", Value: v.Proto},
		}
		pw.Counter("distwindow_site_rows_total", "Rows observed by the site for this stream.", ls, float64(v.Rows))
		pw.Counter("distwindow_site_msgs_total", "Estimate messages sent toward the coordinator.", ls, float64(v.Msgs))
		pw.Counter("distwindow_site_words_total", "Communication words sent toward the coordinator (paper accounting).", ls, float64(v.Words))
		pw.Counter("distwindow_site_replays_total", "Frames replayed by the resilient sender after reconnect.", ls, float64(v.Replays))
		pw.Counter("distwindow_site_acked_total", "Frames acknowledged by the coordinator.", ls, float64(v.Acked))
		pw.Gauge("distwindow_site_backlog", "Frames buffered awaiting acknowledgement.", ls, float64(v.Backlog))
		pw.Counter("distwindow_site_dials_total", "Connection attempts by the resilient sender.", ls, float64(v.Dials))
		pw.Counter("distwindow_site_dial_failures_total", "Failed connection attempts.", ls, float64(v.DialFails))
		pw.Gauge("distwindow_site_ingest_rows_per_second", "Ingest rate derived from consecutive telemetry frames.", ls, v.RowsPerSec)
		pw.Gauge("distwindow_site_words_per_second", "Communication rate derived from consecutive telemetry frames.", ls, v.WordsPerSec)
		pw.Gauge("distwindow_site_words_per_window", "Words per sliding window (the paper's communication figure).", ls, v.WordsPerWindow)
		if v.Eps > 0 {
			pw.Gauge("distwindow_site_epsilon", "Configured error budget ε.", ls, v.Eps)
			pw.Gauge("distwindow_site_epsilon_error", "Latest audited covariance error.", ls, v.Err)
			pw.Gauge("distwindow_site_epsilon_headroom", "ε minus audited error (negative = violation).", ls, v.Headroom)
			pw.Counter("distwindow_site_epsilon_violations_total", "Audit ticks whose error exceeded ε.", ls, float64(v.Violations))
		}
		deg := 0.0
		if v.Degraded {
			deg = 1
		}
		pw.Gauge("distwindow_site_degraded", "1 while the series is degraded (telemetry-stale or wire-stale).", ls, deg)
	}
	pw.Histogram("distwindow_update_latency_seconds", "Per-row update latency merged across the fleet.", nil, m.UpdateLat)
	pw.Gauge("distwindow_fleet_series", "Tracked (site, stream) telemetry series.", nil, float64(len(m.Series)))
	pw.Counter("distwindow_fleet_frames_total", "Telemetry frames folded into the fleet view.", nil, float64(m.FramesTotal))
	pw.Counter("distwindow_fleet_dropped_frames_total", "Telemetry frames refused by the series cap.", nil, float64(m.DroppedFrames))
	pw.Gauge("distwindow_fleet_degraded_sites", "Sites currently degraded (telemetry or wire liveness).", nil, float64(len(m.DegradedSites)))
}

// WritePrometheusTo is the io.Writer-facing form used by
// obs.WithPrometheus: it creates the PromWriter, writes, and returns the
// sticky error.
func (f *Fleet) WritePrometheusTo(w io.Writer) error {
	pw := obs.NewPromWriter(w)
	f.WritePrometheus(pw)
	return pw.Err()
}
