package obs

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// linearBucketOf is the pre-optimization bucket assignment — a linear
// scan over the bounds — kept as the reference the bit-twiddling
// histBucketOf must match exactly.
func linearBucketOf(ns int64) int {
	for i, b := range histBounds {
		if ns <= b {
			return i
		}
	}
	return HistBuckets - 1
}

// TestHistBucketOfMatchesLinearScan is the property test guarding the
// bits.Len64 index: every boundary value, its neighbors, and a random
// sweep must land in the same bucket the linear scan chose.
func TestHistBucketOfMatchesLinearScan(t *testing.T) {
	check := func(ns int64) {
		t.Helper()
		if got, want := histBucketOf(ns), linearBucketOf(ns); got != want {
			t.Fatalf("histBucketOf(%d) = %d, linear scan says %d", ns, got, want)
		}
	}
	check(0)
	check(1)
	for _, b := range histBounds {
		check(b - 1)
		check(b)
		check(b + 1)
	}
	check(math.MaxInt64)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100_000; i++ {
		// Exercise every magnitude: random bit width, then random value.
		width := rng.Intn(63) + 1
		check(rng.Int63() % (int64(1) << width))
	}
}

// TestObserveAllocationFree gates the hot path: Observe must not allocate
// (the bits.Len64 rewrite must stay as allocation-free as the scan).
func TestObserveAllocationFree(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(1234 * time.Nanosecond)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v times per call, want 0", allocs)
	}
}

func TestObserveNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Observe(-5 * time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.SumNs != 0 {
		t.Fatalf("negative observation: Count=%d SumNs=%d, want 1/0", s.Count, s.SumNs)
	}
	if s.Buckets[0].Count != 1 {
		t.Fatalf("negative observation landed outside bucket 0: %+v", s.Buckets)
	}
}

func TestQuantileUpperNsEdges(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var s HistSnapshot
		if got := s.QuantileUpperNs(0.5); got != 0 {
			t.Fatalf("empty histogram quantile = %d, want 0", got)
		}
	})

	t.Run("single bucket", func(t *testing.T) {
		var h Histogram
		for i := 0; i < 10; i++ {
			h.Observe(100 * time.Nanosecond) // all in bucket 0 (≤256ns)
		}
		s := h.Snapshot()
		for _, q := range []float64{0, 0.001, 0.5, 1} {
			if got := s.QuantileUpperNs(q); got != histBounds[0] {
				t.Fatalf("q=%v: got %d, want first bound %d", q, got, histBounds[0])
			}
		}
	})

	t.Run("q=0 and q=1 across buckets", func(t *testing.T) {
		var h Histogram
		h.Observe(100 * time.Nanosecond)  // bucket 0
		h.Observe(time.Millisecond)       // mid bucket
		h.Observe(500 * time.Millisecond) // high bucket
		s := h.Snapshot()
		// q=0 targets the first observation's bucket.
		if got := s.QuantileUpperNs(0); got != histBounds[0] {
			t.Fatalf("q=0: got %d, want %d", got, histBounds[0])
		}
		// q=1 targets the last non-empty bucket's bound.
		want := int64(1 << 30) // 500ms ≤ ~1.07s bound
		if got := s.QuantileUpperNs(1); got != want {
			t.Fatalf("q=1: got %d, want %d", got, want)
		}
		// Out-of-range q clamps rather than panics.
		if got := s.QuantileUpperNs(-3); got != s.QuantileUpperNs(0) {
			t.Fatalf("q<0 did not clamp: %d", got)
		}
		if got := s.QuantileUpperNs(9); got != s.QuantileUpperNs(1) {
			t.Fatalf("q>1 did not clamp: %d", got)
		}
	})

	t.Run("overflow bucket", func(t *testing.T) {
		var h Histogram
		h.Observe(10 * time.Second) // beyond the last bound
		s := h.Snapshot()
		if got := s.QuantileUpperNs(0.5); got != math.MaxInt64 {
			t.Fatalf("overflow quantile = %d, want MaxInt64", got)
		}
		if got := s.QuantileUpperNs(1); got != math.MaxInt64 {
			t.Fatalf("overflow q=1 = %d, want MaxInt64", got)
		}
	})
}

// fillHist builds a histogram snapshot from durations.
func fillHist(ds ...time.Duration) HistSnapshot {
	var h Histogram
	for _, d := range ds {
		h.Observe(d)
	}
	return h.Snapshot()
}

func sameSnapshot(a, b HistSnapshot) bool {
	if a.Count != b.Count || a.SumNs != b.SumNs || len(a.Buckets) != len(b.Buckets) {
		return false
	}
	for i := range a.Buckets {
		if a.Buckets[i] != b.Buckets[i] {
			return false
		}
	}
	return true
}

func TestHistSnapshotMergeLaws(t *testing.T) {
	a := fillHist(100*time.Nanosecond, time.Millisecond, 10*time.Second)
	b := fillHist(5*time.Microsecond, 5*time.Microsecond, 200*time.Millisecond)
	c := fillHist(time.Second)

	// Commutative: merge(a,b) ≡ merge(b,a).
	if !sameSnapshot(a.Merge(b), b.Merge(a)) {
		t.Fatalf("merge not commutative:\n a·b=%+v\n b·a=%+v", a.Merge(b), b.Merge(a))
	}
	// Associative: (a·b)·c ≡ a·(b·c).
	if !sameSnapshot(a.Merge(b).Merge(c), a.Merge(b.Merge(c))) {
		t.Fatalf("merge not associative")
	}
	// Totals are sums.
	m := a.Merge(b)
	if m.Count != a.Count+b.Count || m.SumNs != a.SumNs+b.SumNs {
		t.Fatalf("merged totals %d/%d, want %d/%d", m.Count, m.SumNs, a.Count+b.Count, a.SumNs+b.SumNs)
	}
	// The empty snapshot is the identity on both sides.
	var zero HistSnapshot
	if !sameSnapshot(a.Merge(zero), a) {
		t.Fatalf("a·0 != a: %+v", a.Merge(zero))
	}
	if !sameSnapshot(zero.Merge(a), a) {
		t.Fatalf("0·a != a")
	}
	// Merging two empties stays bucketless and zero.
	z := zero.Merge(zero)
	if z.Count != 0 || z.SumNs != 0 || len(z.Buckets) != 0 {
		t.Fatalf("0·0 = %+v, want zero", z)
	}
	// Quantiles of a merge see both inputs' mass.
	if got := m.QuantileUpperNs(1); got != math.MaxInt64 {
		t.Fatalf("merged q=1 lost a's overflow observation: %d", got)
	}
}
