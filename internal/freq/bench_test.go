package freq

import (
	"math/rand"
	"testing"

	"distwindow/internal/protocol"
)

func BenchmarkFrequencyObserve(b *testing.B) {
	net := protocol.NewNetwork(8)
	ft, err := NewFrequency(50_000, 0.05, 8, net)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.3, 1, 1000)
	items := make([]int64, 4096)
	for i := range items {
		items[i] = int64(zipf.Uint64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.Observe(i%8, int64(i), items[i%len(items)])
	}
}

func BenchmarkQuantileObserve(b *testing.B) {
	net := protocol.NewNetwork(8)
	qt, err := NewQuantile(50_000, 0.1, 8, net)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qt.Observe(i%8, int64(i), vals[i%len(vals)])
	}
}

func BenchmarkQuantileRank(b *testing.B) {
	net := protocol.NewNetwork(2)
	qt, _ := NewQuantile(1_000_000, 0.1, 2, net)
	rng := rand.New(rand.NewSource(3))
	for i := int64(0); i < 20_000; i++ {
		qt.Observe(int(i)%2, i, rng.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qt.Rank(0.37)
	}
}
