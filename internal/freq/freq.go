// Package freq instantiates the paper's deterministic tracking template
// (§III-A: site tracks C − Ĉ against a relative threshold) for two more
// aggregate queries over distributed time-based sliding windows, which the
// paper notes the framework covers "for simple aggregate queries such as
// counting, item frequencies, and order statistics":
//
//   - item frequencies: the coordinator holds f̂(x) with
//     |f(x) − f̂(x)| ≤ ε·N for every item x, where N is the number of
//     active items across all sites;
//   - order statistics (ranks/quantiles) over values in [0, 1): the
//     coordinator answers rank queries within ε·N via a dyadic-interval
//     decomposition whose per-interval counts are tracked the same way.
//
// Per site, each tracked count is held in a gEH (package eh) so space
// stays O(1/ε·log NR) per count; a count is reported when it deviates
// from the coordinator's copy by more than its share of the ε·N budget.
package freq

import (
	"fmt"
	"math"
	"sort"

	"distwindow/internal/eh"
	"distwindow/internal/protocol"
)

// FrequencyTracker tracks per-item frequencies over the union window.
// Items are opaque int64 identifiers. Space is O(distinct active items ×
// 1/ε·log N) per site; items never seen cost nothing.
type FrequencyTracker struct {
	w     int64
	eps   float64
	net   *protocol.Network
	sites []*freqSite
	// est is the coordinator's view: Σⱼ f̂⁽ʲ⁾(x).
	est map[int64]float64
	// total tracks N̂, the estimated number of active items.
	total *totalCount
}

type freqSite struct {
	items map[int64]*itemTracker
	count *eh.Histogram // local window count (the threshold scale)
	now   int64
	obs   int // observes since the last expiry sweep
}

// sweepEvery bounds how many observations may pass between full expiry
// sweeps of a site's trackers, so counts of items that stopped arriving
// still decay as the window slides.
const sweepEvery = 64

type itemTracker struct {
	hist    *eh.Histogram
	chat    float64
	checked uint64
}

// totalCount is a single global count estimate assembled from per-site
// reports (SUM tracking with unit weights).
type totalCount struct {
	chats []float64
	est   float64
}

// NewFrequency returns a tracker over m sites with additive error ε·N.
func NewFrequency(w int64, eps float64, m int, net *protocol.Network) (*FrequencyTracker, error) {
	if w <= 0 || eps <= 0 || eps >= 1 || m < 1 {
		return nil, fmt.Errorf("freq: invalid parameters w=%d eps=%v m=%d", w, eps, m)
	}
	t := &FrequencyTracker{
		w:     w,
		eps:   eps,
		net:   net,
		est:   make(map[int64]float64),
		total: &totalCount{chats: make([]float64, m)},
	}
	t.sites = make([]*freqSite, m)
	for i := range t.sites {
		t.sites[i] = &freqSite{
			items: make(map[int64]*itemTracker),
			count: eh.New(w, eps/4),
		}
	}
	return t, nil
}

// Observe records one occurrence of item x at the given site and time.
func (t *FrequencyTracker) Observe(site int, now int64, x int64) {
	s := t.sites[site]
	s.now = now
	s.count.Insert(now, 1)
	it, ok := s.items[x]
	if !ok {
		it = &itemTracker{hist: eh.New(t.w, t.eps/4)}
		s.items[x] = it
	}
	it.hist.Insert(now, 1)
	t.check(site, x, it)
	t.checkTotal(site)
	s.obs++
	if s.obs >= sweepEvery {
		s.obs = 0
		t.sweepSite(site)
	}
	t.sampleSpace(s)
}

// sweepSite expires and re-checks every tracker at one site.
func (t *FrequencyTracker) sweepSite(site int) {
	s := t.sites[site]
	for x, it := range s.items {
		it.hist.Advance(s.now)
		t.check(site, x, it)
		if it.hist.Buckets() == 0 && it.chat == 0 {
			delete(s.items, x)
		}
	}
}

// Advance moves every site's clock forward, reporting drops caused by
// expiry.
func (t *FrequencyTracker) Advance(now int64) {
	for si, s := range t.sites {
		if now <= s.now {
			continue
		}
		s.now = now
		s.count.Advance(now)
		for x, it := range s.items {
			it.hist.Advance(now)
			t.check(si, x, it)
			if it.hist.Buckets() == 0 && it.chat == 0 {
				delete(s.items, x)
			}
		}
		t.checkTotal(si)
	}
}

// check applies the reporting rule |f − f̂| > (ε/2)·C_local for one item.
func (t *FrequencyTracker) check(site int, x int64, it *itemTracker) {
	if v := it.hist.Version(); v == it.checked {
		return
	} else {
		it.checked = v
	}
	s := t.sites[site]
	f := it.hist.Query()
	d := f - it.chat
	if math.Abs(d) > t.eps/2*s.count.Query() || (f == 0 && it.chat != 0) {
		t.net.Up(3) // item id + delta + timestamp
		it.chat = f
		t.est[x] += d
		if t.est[x] <= 1e-12 && t.est[x] >= -1e-12 {
			delete(t.est, x)
		}
	}
}

// checkTotal keeps the coordinator's N̂ within ε/2 relative error.
func (t *FrequencyTracker) checkTotal(site int) {
	s := t.sites[site]
	c := s.count.Query()
	d := c - t.total.chats[site]
	if math.Abs(d) > t.eps/2*c || (c == 0 && t.total.chats[site] != 0) {
		t.net.Up(protocol.ScalarWords)
		t.total.chats[site] = c
		t.total.est += d
	}
}

func (t *FrequencyTracker) sampleSpace(s *freqSite) {
	var words int64
	for _, it := range s.items {
		words += int64(it.hist.Buckets())*3 + 2
	}
	words += int64(s.count.Buckets()) * 3
	t.net.SampleSiteSpace(words)
}

// Estimate returns the coordinator's frequency estimate for item x,
// within ε·N of the truth.
func (t *FrequencyTracker) Estimate(x int64) float64 { return t.est[x] }

// Total returns N̂, the estimated number of active items.
func (t *FrequencyTracker) Total() float64 { return t.total.est }

// ItemCount is one (item, estimated frequency) pair.
type ItemCount struct {
	Item int64
	Freq float64
}

// TopK returns the k items with the largest estimated frequencies, in
// decreasing order — the heavy hitters of the window.
func (t *FrequencyTracker) TopK(k int) []ItemCount {
	out := make([]ItemCount, 0, len(t.est))
	for x, f := range t.est {
		out = append(out, ItemCount{x, f})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].Item < out[j].Item
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
