package freq

import (
	"math"
	"math/rand"
	"testing"

	"distwindow/internal/protocol"
)

// exactFreq replays (t, site, item) records for ground truth.
type rec struct {
	t    int64
	item int64
}

func exactFreq(items []rec, now, w int64) map[int64]float64 {
	out := map[int64]float64{}
	for _, r := range items {
		if r.t > now-w && r.t <= now {
			out[r.item]++
		}
	}
	return out
}

func TestFrequencyBasic(t *testing.T) {
	net := protocol.NewNetwork(2)
	ft, err := NewFrequency(100, 0.1, 2, net)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 10; i++ {
		ft.Observe(int(i)%2, i, 7)
	}
	if got := ft.Estimate(7); math.Abs(got-10) > 2 {
		t.Fatalf("Estimate(7) = %v, want ≈10", got)
	}
	if ft.Estimate(99) != 0 {
		t.Fatal("unseen item should estimate 0")
	}
}

func TestFrequencyErrorBound(t *testing.T) {
	const (
		w   = int64(2000)
		eps = 0.1
		m   = 4
	)
	net := protocol.NewNetwork(m)
	ft, _ := NewFrequency(w, eps, m, net)
	rng := rand.New(rand.NewSource(1))
	var items []rec
	zipf := rand.NewZipf(rng, 1.3, 1, 50)
	for i := int64(1); i <= 8000; i++ {
		x := int64(zipf.Uint64())
		ft.Observe(rng.Intn(m), i, x)
		items = append(items, rec{i, x})
		if i%1000 == 0 {
			truth := exactFreq(items, i, w)
			var n float64
			for _, f := range truth {
				n += f
			}
			for x, f := range truth {
				if got := ft.Estimate(x); math.Abs(got-f) > 2*eps*n {
					t.Fatalf("t=%d item %d: estimate %v vs truth %v (N=%v)", i, x, got, f, n)
				}
			}
		}
	}
}

func TestFrequencyExpiry(t *testing.T) {
	net := protocol.NewNetwork(1)
	ft, _ := NewFrequency(50, 0.1, 1, net)
	for i := int64(1); i <= 30; i++ {
		ft.Observe(0, i, 5)
	}
	ft.Advance(10_000)
	if got := ft.Estimate(5); math.Abs(got) > 1 {
		t.Fatalf("Estimate after expiry = %v, want ≈0", got)
	}
	if tot := ft.Total(); math.Abs(tot) > 1 {
		t.Fatalf("Total after expiry = %v", tot)
	}
}

func TestFrequencyTopK(t *testing.T) {
	net := protocol.NewNetwork(1)
	ft, _ := NewFrequency(10_000, 0.05, 1, net)
	now := int64(0)
	emit := func(x int64, c int) {
		for i := 0; i < c; i++ {
			now++
			ft.Observe(0, now, x)
		}
	}
	emit(1, 100)
	emit(2, 50)
	emit(3, 10)
	top := ft.TopK(2)
	if len(top) != 2 || top[0].Item != 1 || top[1].Item != 2 {
		t.Fatalf("TopK = %+v", top)
	}
	if top[0].Freq < 80 {
		t.Fatalf("heavy hitter frequency %v too low", top[0].Freq)
	}
}

func TestFrequencyCommunicationSublinear(t *testing.T) {
	const m = 2
	net := protocol.NewNetwork(m)
	ft, _ := NewFrequency(5_000, 0.1, m, net)
	rng := rand.New(rand.NewSource(2))
	n := int64(20_000)
	for i := int64(1); i <= n; i++ {
		ft.Observe(rng.Intn(m), i, int64(rng.Intn(5)))
	}
	if msgs := net.Stats().MsgsUp; msgs > n/5 {
		t.Fatalf("sent %d messages for %d items — should be far sublinear", msgs, n)
	}
}

func TestFrequencyValidation(t *testing.T) {
	net := protocol.NewNetwork(1)
	if _, err := NewFrequency(0, 0.1, 1, net); err == nil {
		t.Fatal("want error for w=0")
	}
	if _, err := NewFrequency(10, 1.5, 1, net); err == nil {
		t.Fatal("want error for eps out of range")
	}
}

// --- Quantiles ---

func TestQuantileRankUniform(t *testing.T) {
	const (
		w   = int64(4000)
		eps = 0.1
		m   = 3
	)
	net := protocol.NewNetwork(m)
	qt, err := NewQuantile(w, eps, m, net)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var vals []struct {
		t int64
		v float64
	}
	for i := int64(1); i <= 10_000; i++ {
		v := rng.Float64()
		qt.Observe(rng.Intn(m), i, v)
		vals = append(vals, struct {
			t int64
			v float64
		}{i, v})
	}
	now := int64(10_000)
	var n float64
	truthRank := func(x float64) float64 {
		var r float64
		for _, rec := range vals {
			if rec.t > now-w {
				if rec.v < x {
					r++
				}
			}
		}
		return r
	}
	for _, rec := range vals {
		if rec.t > now-w {
			n++
		}
	}
	for _, x := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		got := qt.Rank(x)
		want := truthRank(x)
		if math.Abs(got-want) > 2*eps*n {
			t.Fatalf("Rank(%v) = %v, want %v ± %v", x, got, want, 2*eps*n)
		}
	}
}

func TestQuantileQuery(t *testing.T) {
	const eps = 0.1
	net := protocol.NewNetwork(2)
	qt, _ := NewQuantile(100_000, eps, 2, net)
	rng := rand.New(rand.NewSource(4))
	for i := int64(1); i <= 5_000; i++ {
		qt.Observe(rng.Intn(2), i, rng.Float64())
	}
	// Uniform data: φ-quantile ≈ φ.
	for _, phi := range []float64{0.25, 0.5, 0.9} {
		if q := qt.Quantile(phi); math.Abs(q-phi) > 3*eps {
			t.Fatalf("Quantile(%v) = %v", phi, q)
		}
	}
}

func TestQuantileSkewedValues(t *testing.T) {
	const eps = 0.1
	net := protocol.NewNetwork(2)
	qt, _ := NewQuantile(100_000, eps, 2, net)
	rng := rand.New(rand.NewSource(5))
	// 90% of mass below 0.1.
	for i := int64(1); i <= 5_000; i++ {
		v := rng.Float64() * 0.1
		if rng.Intn(10) == 0 {
			v = 0.1 + rng.Float64()*0.9
		}
		qt.Observe(rng.Intn(2), i, v)
	}
	if q := qt.Quantile(0.5); q > 0.15 {
		t.Fatalf("median of skewed data = %v, want < 0.15", q)
	}
}

func TestQuantileSlidingExpiry(t *testing.T) {
	const eps = 0.15
	w := int64(1000)
	net := protocol.NewNetwork(1)
	qt, _ := NewQuantile(w, eps, 1, net)
	rng := rand.New(rand.NewSource(6))
	// First 2000 ticks: small values; then 2000 ticks: large values. After
	// the window slides past the first phase, the median must be large.
	for i := int64(1); i <= 2000; i++ {
		qt.Observe(0, i, rng.Float64()*0.2)
	}
	for i := int64(2001); i <= 4000; i++ {
		qt.Observe(0, i, 0.8+rng.Float64()*0.19)
	}
	if q := qt.Quantile(0.5); q < 0.6 {
		t.Fatalf("median after regime change = %v, want > 0.6 (old values expired)", q)
	}
}

func TestQuantileRankEdges(t *testing.T) {
	net := protocol.NewNetwork(1)
	qt, _ := NewQuantile(100, 0.2, 1, net)
	qt.Observe(0, 1, 0.5)
	if qt.Rank(0) != 0 {
		t.Fatal("Rank(0) must be 0")
	}
	if r := qt.Rank(1.5); math.Abs(r-1) > 0.5 {
		t.Fatalf("Rank(>1) = %v, want ≈1", r)
	}
}

func TestQuantileObservePanicsOutOfRange(t *testing.T) {
	net := protocol.NewNetwork(1)
	qt, _ := NewQuantile(100, 0.2, 1, net)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	qt.Observe(0, 1, 1.0)
}

func TestQuantileLevels(t *testing.T) {
	net := protocol.NewNetwork(1)
	qt, _ := NewQuantile(100, 0.1, 1, net)
	if qt.Levels() < 5 {
		t.Fatalf("levels = %d, want ≥ log2(4/0.1) ≈ 5.3", qt.Levels())
	}
}

func TestTopKClamps(t *testing.T) {
	net := protocol.NewNetwork(1)
	ft, _ := NewFrequency(100, 0.2, 1, net)
	ft.Observe(0, 1, 7)
	if top := ft.TopK(10); len(top) != 1 {
		t.Fatalf("TopK(10) with one item returned %d", len(top))
	}
}
