package freq

import (
	"fmt"
	"math"

	"distwindow/internal/eh"
	"distwindow/internal/protocol"
)

// QuantileTracker tracks order statistics of values in [0, 1) over the
// union window: Rank(x) — the number of active values < x — within ε·N,
// and therefore φ-quantiles within ε rank error.
//
// It is the dyadic-interval instantiation of the paper's deterministic
// template: values are bucketed into L = ⌈log₂(4/ε)⌉ levels of dyadic
// intervals; each nonempty interval's window count is held in a site-side
// gEH and reported when it drifts by more than its share of the budget.
// A rank query decomposes [0, x) into at most one interval per level, so
// per-interval errors of (ε/(2L))·N sum to ≤ (ε/2)·N, plus gEH slack.
type QuantileTracker struct {
	w      int64
	eps    float64
	levels int
	net    *protocol.Network
	sites  []*quantSite
	// est[level][bucket] is the coordinator's count for dyadic interval
	// [bucket·2^−level, (bucket+1)·2^−level).
	est   []map[int64]float64
	total *totalCount
}

type quantSite struct {
	// cells[level][bucket] tracks that interval's local window count.
	cells []map[int64]*itemTracker
	count *eh.Histogram
	now   int64
	obs   int
}

// NewQuantile returns a tracker over m sites with rank error ε·N.
func NewQuantile(w int64, eps float64, m int, net *protocol.Network) (*QuantileTracker, error) {
	if w <= 0 || eps <= 0 || eps >= 1 || m < 1 {
		return nil, fmt.Errorf("freq: invalid parameters w=%d eps=%v m=%d", w, eps, m)
	}
	levels := int(math.Ceil(math.Log2(4 / eps)))
	if levels < 1 {
		levels = 1
	}
	t := &QuantileTracker{
		w:      w,
		eps:    eps,
		levels: levels,
		net:    net,
		est:    make([]map[int64]float64, levels+1),
		total:  &totalCount{chats: make([]float64, m)},
	}
	for l := range t.est {
		t.est[l] = make(map[int64]float64)
	}
	t.sites = make([]*quantSite, m)
	for i := range t.sites {
		s := &quantSite{
			cells: make([]map[int64]*itemTracker, levels+1),
			count: eh.New(w, eps/4),
		}
		for l := range s.cells {
			s.cells[l] = make(map[int64]*itemTracker)
		}
		t.sites[i] = s
	}
	return t, nil
}

// Observe records value v ∈ [0, 1) at the given site and time.
func (t *QuantileTracker) Observe(site int, now int64, v float64) {
	if v < 0 || v >= 1 {
		panic(fmt.Sprintf("freq: quantile value %v outside [0,1)", v))
	}
	s := t.sites[site]
	s.now = now
	s.count.Insert(now, 1)
	for l := 0; l <= t.levels; l++ {
		b := int64(v * math.Exp2(float64(l)))
		it, ok := s.cells[l][b]
		if !ok {
			it = &itemTracker{hist: eh.New(t.w, t.eps/4)}
			s.cells[l][b] = it
		}
		it.hist.Insert(now, 1)
		t.checkCell(site, l, b, it)
	}
	t.checkTotalQ(site)
	s.obs++
	if s.obs >= sweepEvery {
		s.obs = 0
		t.sweepSiteQ(site)
		t.sampleSpaceQ(s)
	}
}

func (t *QuantileTracker) sampleSpaceQ(s *quantSite) {
	var words int64
	for _, cells := range s.cells {
		for _, it := range cells {
			words += int64(it.hist.Buckets())*3 + 2
		}
	}
	words += int64(s.count.Buckets()) * 3
	t.net.SampleSiteSpace(words)
}

// sweepSiteQ expires and re-checks every cell at one site.
func (t *QuantileTracker) sweepSiteQ(site int) {
	s := t.sites[site]
	for l, cells := range s.cells {
		for b, it := range cells {
			it.hist.Advance(s.now)
			t.checkCell(site, l, b, it)
			if it.hist.Buckets() == 0 && it.chat == 0 {
				delete(cells, b)
			}
		}
	}
}

// Advance moves every site's clock forward.
func (t *QuantileTracker) Advance(now int64) {
	for si, s := range t.sites {
		if now <= s.now {
			continue
		}
		s.now = now
		s.count.Advance(now)
		for l, cells := range s.cells {
			for b, it := range cells {
				it.hist.Advance(now)
				t.checkCell(si, l, b, it)
				if it.hist.Buckets() == 0 && it.chat == 0 {
					delete(cells, b)
				}
			}
		}
		t.checkTotalQ(si)
	}
}

// checkCell applies the reporting rule for one dyadic interval: budget
// (ε/(2L))·C_local per cell.
func (t *QuantileTracker) checkCell(site, level int, b int64, it *itemTracker) {
	if v := it.hist.Version(); v == it.checked {
		return
	} else {
		it.checked = v
	}
	s := t.sites[site]
	f := it.hist.Query()
	d := f - it.chat
	thr := t.eps / (2 * float64(t.levels+1)) * s.count.Query()
	if math.Abs(d) > thr || (f == 0 && it.chat != 0) {
		t.net.Up(4) // level + bucket + delta + timestamp
		it.chat = f
		t.est[level][b] += d
		if math.Abs(t.est[level][b]) <= 1e-12 {
			delete(t.est[level], b)
		}
	}
}

func (t *QuantileTracker) checkTotalQ(site int) {
	s := t.sites[site]
	c := s.count.Query()
	d := c - t.total.chats[site]
	if math.Abs(d) > t.eps/4*c || (c == 0 && t.total.chats[site] != 0) {
		t.net.Up(protocol.ScalarWords)
		t.total.chats[site] = c
		t.total.est += d
	}
}

// Rank returns the estimated number of active values < x, within ε·N.
func (t *QuantileTracker) Rank(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x > 1 {
		x = 1
	}
	// Binary (dyadic) decomposition of [0, x): for each level l ≥ 1 whose
	// bit is set in x's binary expansion, [0,x) contains one aligned
	// level-l interval starting at the running prefix — at most one
	// interval per level, so per-cell errors sum to the ε/2 budget.
	var rank float64
	lo := 0.0
	for l := 1; l <= t.levels; l++ {
		width := math.Exp2(float64(-l))
		if lo+width <= x+1e-15 {
			b := int64(math.Round(lo / width))
			rank += t.est[l][b]
			lo += width
		}
	}
	// Remainder inside one finest-level bucket: interpolate (the bucket's
	// whole count is within the error budget anyway).
	if lo < x {
		width := math.Exp2(float64(-t.levels))
		b := int64(lo / width)
		rank += t.est[t.levels][b] * (x - lo) / width
	}
	if rank < 0 {
		return 0
	}
	return rank
}

// Quantile returns an x with |Rank(x) − φ·N̂| ≤ ε·N̂, by binary search on
// the rank function.
func (t *QuantileTracker) Quantile(phi float64) float64 {
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	target := phi * t.total.est
	lo, hi := 0.0, 1.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if t.Rank(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Total returns N̂, the estimated number of active values.
func (t *QuantileTracker) Total() float64 { return t.total.est }

// Levels returns the dyadic depth L (for tests and space accounting).
func (t *QuantileTracker) Levels() int { return t.levels }
