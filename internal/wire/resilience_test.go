package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"net"
	"testing"
	"time"

	"distwindow/mat"
)

// flakyConn fails after a fixed number of writes.
type flakyConn struct {
	inner     io.WriteCloser
	remaining int
}

func (f *flakyConn) Write(p []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, errors.New("flaky: connection dropped")
	}
	f.remaining--
	return f.inner.Write(p)
}

func (f *flakyConn) Close() error { return f.inner.Close() }

func TestResilientSenderReplaysBacklogAfterReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	coord := NewCoordinator(2)
	go coord.Serve(ln)

	dials := 0
	s := NewResilientSenderFunc(func() (io.WriteCloser, error) {
		dials++
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return nil, err
		}
		// First connection dies after 2 writes (gob sends type info +
		// messages as separate writes, so this drops mid-stream).
		if dials == 1 {
			return &flakyConn{inner: conn, remaining: 2}, nil
		}
		return conn, nil
	})

	for i := 0; i < 20; i++ {
		if err := s.Send(Msg{Kind: DirectionAdd, V: []float64{1, 0}}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Flush() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if p := s.Pending(); p != 0 {
		t.Fatalf("%d messages still pending", p)
	}
	// All 20 unit outer products must have arrived exactly once:
	// ‖B‖_F² = trace(Ĉ) = 20.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if f := mat.FrobSq(coord.Sketch()); math.Abs(f-20) < 1e-6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sketch mass %v, want 20", mat.FrobSq(coord.Sketch()))
		}
		time.Sleep(10 * time.Millisecond)
	}
	s.Close()
	if dials < 2 {
		t.Fatalf("expected a reconnect, dials = %d", dials)
	}
}

func TestResilientSenderBacklogLimit(t *testing.T) {
	s := NewResilientSenderFunc(func() (io.WriteCloser, error) {
		return nil, errors.New("unreachable")
	})
	s.MaxBacklog = 3
	for i := 0; i < 3; i++ {
		if err := s.Send(Msg{Kind: SumDelta, Delta: 1}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := s.Send(Msg{Kind: SumDelta, Delta: 1}); err == nil {
		t.Fatal("want error when backlog full")
	}
	if s.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", s.Pending())
	}
}

func TestResilientSenderBuffersWhileDown(t *testing.T) {
	up := false
	var sink bytes.Buffer
	s := NewResilientSenderFunc(func() (io.WriteCloser, error) {
		if !up {
			return nil, errors.New("down")
		}
		return nopCloser{&sink}, nil
	})
	for i := 0; i < 5; i++ {
		if err := s.Send(Msg{Kind: SumDelta, Delta: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5 while down", s.Pending())
	}
	up = true
	if left := s.Flush(); left != 0 {
		t.Fatalf("Flush left %d", left)
	}
	if sink.Len() == 0 {
		t.Fatal("nothing written after recovery")
	}
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

func TestSnapshotRoundTrip(t *testing.T) {
	c := NewCoordinator(3)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		c.Apply(Msg{Kind: DirectionAdd, V: randRow(3, rng)})
	}
	c.Apply(Msg{Kind: SumDelta, Delta: 12.5})

	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Sketch().EqualApprox(c.Sketch(), 1e-12) {
		t.Fatal("restored sketch differs")
	}
	if restored.Sum() != c.Sum() {
		t.Fatal("restored sum differs")
	}
	m1, b1 := c.Stats()
	m2, b2 := restored.Stats()
	if m1 != m2 || b1 != b2 {
		t.Fatal("restored stats differ")
	}
}

func TestRestoreRejectsCorruptSnapshot(t *testing.T) {
	if _, err := RestoreCoordinator(Snapshot{D: 3, Chat: []float64{1, 2}}); err == nil {
		t.Fatal("want error for wrong chat length")
	}
	if _, err := ReadSnapshot(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("want error for corrupt stream")
	}
}

func TestRestoredCoordinatorKeepsWorking(t *testing.T) {
	c := NewCoordinator(2)
	c.Apply(Msg{Kind: DirectionAdd, V: []float64{2, 0}})
	var buf bytes.Buffer
	c.WriteSnapshot(&buf)
	r, _ := ReadSnapshot(&buf)
	// Failover: the restored coordinator continues receiving updates.
	r.Apply(Msg{Kind: DirectionRemove, V: []float64{2, 0}})
	if mat.FrobSq(r.Sketch()) > 1e-9 {
		t.Fatal("restored coordinator should cancel to zero")
	}
}
