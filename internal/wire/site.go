package wire

import (
	"fmt"
	"math"

	"distwindow/internal/eh"
	"distwindow/internal/iwmt"
	"distwindow/internal/meh"
	"distwindow/internal/trace"
	"distwindow/mat"
)

// sendTraced stamps the current span's context onto m and pushes it: the
// shared send path of every networked site. A send during a traced
// Observe becomes a child "send" span whose context rides in the frame;
// with no tracer (or an unsampled row) the message goes out untraced at
// the cost of one nil-check.
func sendTraced(tr *trace.Tracer, out Sender, m Msg) error {
	sp := tr.Child(trace.OpSend, m.Site, m.T)
	if sp.Sampled() {
		ctx := sp.Context()
		m.Trace, m.Span = ctx.Trace, ctx.Span
	}
	err := out.Send(m)
	sp.End()
	return err
}

// SiteConfig parameterizes a networked site.
type SiteConfig struct {
	// ID is the site's identifier in messages.
	ID int
	// D is the row dimension.
	D int
	// W is the window length in ticks.
	W int64
	// Eps is the local covariance-error budget; with m sites each running
	// at ε, the coordinator's global error is ε by the triangle
	// inequality (§III-B).
	Eps float64
}

func (c SiteConfig) validate() error {
	if c.D < 1 || c.W <= 0 || c.Eps <= 0 || c.Eps >= 1 {
		return fmt.Errorf("wire: invalid site config %+v", c)
	}
	return nil
}

// DA2Site is the networked DA2 site: IWMT forward tracking of arrivals
// plus backward tracking of the closed window's ledger — exact subtraction
// of each ledger message as it expires (ledger replay, NewDA2Site), or the
// compressed DA2-C variant (NewDA2CSite) that re-sketches the ledger in
// reverse through IWMT_c, forward-tracks the expiry queue through IWMT_e,
// and ships the FD-shaved PSD residual at drain time so cancellation stays
// exact. One-way: it only ever calls Sender.Send.
type DA2Site struct {
	cfg      SiteConfig
	out      Sender
	compress bool
	a        *iwmt.Tracker
	mass     *eh.Histogram
	ledger   []iwmt.Msg
	q        []iwmt.Msg
	// e is IWMT_e (compress mode only); resid accumulates what was added
	// for the previous window minus what has been subtracted so far; ws is
	// the persistent workspace for the residual eigendecompositions.
	e        *iwmt.Tracker
	resid    *mat.Dense
	ws       *mat.Workspace
	boundary int64
	now      int64
	tr       *trace.Tracer
}

// NewDA2Site returns a ledger-replay site pushing to out.
func NewDA2Site(cfg SiteConfig, out Sender) (*DA2Site, error) {
	return newDA2Site(cfg, out, false)
}

// NewDA2CSite returns a compressed (DA2-C) site pushing to out.
func NewDA2CSite(cfg SiteConfig, out Sender) (*DA2Site, error) {
	return newDA2Site(cfg, out, true)
}

func newDA2Site(cfg SiteConfig, out Sender, compress bool) (*DA2Site, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &DA2Site{cfg: cfg, out: out, compress: compress, mass: eh.New(cfg.W, cfg.Eps/2), boundary: cfg.W}
	s.a = iwmt.New(s.fdEll(), cfg.D, func() float64 { return cfg.Eps * s.mass.Query() })
	return s, nil
}

// fdEll is the FD buffer size for the IWMT instances: ⌈1/ε⌉ keeps the
// sketch-drift term at ε·F².
func (s *DA2Site) fdEll() int { return int(math.Ceil(1 / s.cfg.Eps)) }

// SetTracer installs a causal tracer: each Observe becomes a (sampled)
// root "ingest" span, sends become child spans whose context rides in
// the outgoing frames, and the mass histogram's bucket lifecycle is
// recorded as instants. The site owns the tracer — sites run one
// goroutine each, so give every site its own Tracer over a shared Ring.
// Install before feeding data; nil disables.
func (s *DA2Site) SetTracer(tr *trace.Tracer) {
	s.tr = tr
	s.mass.SetTracer(tr, s.cfg.ID)
}

// Observe feeds one local row; timestamps must be non-decreasing.
func (s *DA2Site) Observe(t int64, v []float64) error {
	sp := s.tr.Start(trace.OpIngest, s.cfg.ID, t)
	defer sp.End()
	if err := s.advance(t); err != nil {
		return err
	}
	if w := mat.VecNormSq(v); w > 0 {
		s.mass.Insert(t, w)
		for _, m := range s.a.Input(t, v) {
			if err := s.sendA(m); err != nil {
				return err
			}
		}
	}
	return nil
}

// Advance moves the site's clock without new data.
func (s *DA2Site) Advance(t int64) error { return s.advance(t) }

func (s *DA2Site) advance(now int64) error {
	if now <= s.now && now < s.boundary {
		return s.processExpiry(now)
	}
	if now > s.now {
		s.now = now
		s.mass.Advance(now)
	}
	for now >= s.boundary {
		b := s.boundary
		// Everything from the closing window that must eventually be
		// subtracted expires by b+W; drain the old queue first.
		if err := s.processExpiry(b); err != nil {
			return err
		}
		// Flush IWMT_a so the ledger covers the whole closed window.
		for _, m := range s.a.Flush(b) {
			if err := s.sendA(m); err != nil {
				return err
			}
		}
		if err := s.startBackward(b); err != nil {
			return err
		}
		s.boundary += s.cfg.W
	}
	return s.processExpiry(now)
}

// startBackward converts the closed window's ledger into the expiry queue
// (mirrors core's da2Site.startBackward over the wire).
func (s *DA2Site) startBackward(b int64) error {
	if s.e != nil {
		// Defensive: the previous queue drains by its own boundary, so
		// processExpiry(b) above already flushed IWMT_e and the residual.
		for _, out := range s.e.Flush(b) {
			if err := s.sendE(out.T, out.V); err != nil {
				return err
			}
		}
		s.e = nil
		if err := s.drainResidual(); err != nil {
			return err
		}
	}
	if len(s.ledger) == 0 {
		s.q = nil
		return nil
	}
	if !s.compress {
		// Ledger replay: the ledger is already in ascending time order.
		s.q = s.ledger
		s.ledger = nil
		return nil
	}
	// Compress mode: replay the ledger in reverse through IWMT_c with the
	// paper's growing threshold ε·(mass seen so far in reverse).
	var seen float64
	c := iwmt.New(s.fdEll(), s.cfg.D, func() float64 { return s.cfg.Eps * seen })
	var q []iwmt.Msg
	for i := len(s.ledger) - 1; i >= 0; i-- {
		m := s.ledger[i]
		seen += mat.VecNormSq(m.V)
		q = append(q, c.Input(m.T, m.V)...)
	}
	q = append(q, c.Flush(s.ledger[0].T)...)
	// IWMT_c emitted in descending time; expiry consumes ascending.
	for l, r := 0, len(q)-1; l < r; l, r = l+1, r-1 {
		q[l], q[r] = q[r], q[l]
	}
	s.q = q
	// The residual for this window starts at the Gram of everything that
	// was added for it (the ledger); each (−) message nets against it.
	if s.resid == nil {
		s.resid = mat.NewDense(s.cfg.D, s.cfg.D)
	}
	s.resid.Zero()
	for _, m := range s.ledger {
		mat.OuterAdd(s.resid, m.V, 1)
	}
	s.ledger = nil
	s.e = iwmt.New(s.fdEll(), s.cfg.D, func() float64 { return s.cfg.Eps * s.mass.Query() })
	return nil
}

// processExpiry feeds expired queue entries to the backward path.
func (s *DA2Site) processExpiry(now int64) error {
	cut := now - s.cfg.W
	for len(s.q) > 0 && s.q[0].T <= cut {
		m := s.q[0]
		s.q = s.q[1:]
		if s.e == nil {
			// Ledger replay: subtract the exact message.
			if err := s.sendE(m.T, m.V); err != nil {
				return err
			}
		} else {
			for _, out := range s.e.Input(m.T, m.V) {
				if err := s.sendE(out.T, out.V); err != nil {
					return err
				}
			}
		}
	}
	if len(s.q) == 0 && s.e != nil {
		// Queue drained: flush IWMT_e and ship the FD-shaved residual so
		// the closed window cancels exactly.
		for _, out := range s.e.Flush(now) {
			if err := s.sendE(out.T, out.V); err != nil {
				return err
			}
		}
		s.e = nil
		if err := s.drainResidual(); err != nil {
			return err
		}
	}
	return nil
}

// drainResidual ships the PSD mass the compress-mode re-sketches shaved
// off, restoring exact cancellation for the drained window.
func (s *DA2Site) drainResidual() error {
	if s.resid == nil || mat.FrobSq(s.resid) == 0 {
		return nil
	}
	if s.ws == nil {
		s.ws = mat.NewWorkspace()
	}
	eig := mat.EigSymInto(s.resid, s.ws)
	for i, lam := range eig.Values {
		if lam <= 0 {
			// The residual is PSD up to round-off; skip noise.
			continue
		}
		v := eig.Vectors.Row(i)
		scaled := make([]float64, len(v))
		f := math.Sqrt(lam)
		for j := range v {
			scaled[j] = f * v[j]
		}
		if err := s.sendE(s.now, scaled); err != nil {
			return err
		}
	}
	s.resid.Zero()
	return nil
}

func (s *DA2Site) sendA(m iwmt.Msg) error {
	s.ledger = append(s.ledger, m)
	return sendTraced(s.tr, s.out, Msg{Site: s.cfg.ID, Kind: DirectionAdd, T: m.T, V: m.V})
}

// sendE ships a (−) message. In compress mode the site nets it against
// the residual of the window currently draining.
func (s *DA2Site) sendE(t int64, v []float64) error {
	if s.resid != nil {
		mat.OuterAdd(s.resid, v, -1)
	}
	return sendTraced(s.tr, s.out, Msg{Site: s.cfg.ID, Kind: DirectionRemove, T: t, V: v})
}

// DA1Site is the networked DA1 site: an mEH plus a replica of the
// coordinator's Ĉ⁽ʲ⁾, shipping significant eigendirections on trigger.
type DA1Site struct {
	cfg   SiteConfig
	out   Sender
	hist  *meh.Histogram
	chat  *mat.Dense
	churn float64
	lastF float64
	pv    []float64
	now   int64
	tr    *trace.Tracer
}

// NewDA1Site returns a site pushing to out.
func NewDA1Site(cfg SiteConfig, out Sender) (*DA1Site, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &DA1Site{
		cfg:  cfg,
		out:  out,
		hist: meh.New(cfg.W, cfg.D, cfg.Eps/2),
		chat: mat.NewDense(cfg.D, cfg.D),
		pv:   make([]float64, cfg.D),
	}, nil
}

// SetTracer installs a causal tracer (see DA2Site.SetTracer). Install
// before feeding data; nil disables.
func (s *DA1Site) SetTracer(tr *trace.Tracer) {
	s.tr = tr
	s.hist.SetTracer(tr, s.cfg.ID)
}

// Observe feeds one local row.
func (s *DA1Site) Observe(t int64, v []float64) error {
	sp := s.tr.Start(trace.OpIngest, s.cfg.ID, t)
	defer sp.End()
	s.now = t
	s.hist.Add(t, v)
	added := mat.VecNormSq(v)
	est := s.hist.FrobSqEstimate()
	expired := s.lastF + added - est
	if expired < 0 {
		expired = 0
	}
	s.churn += added + expired
	s.lastF = est
	return s.maybeReport()
}

// Advance moves the site's clock without new data.
func (s *DA1Site) Advance(t int64) error {
	if t <= s.now {
		return nil
	}
	s.now = t
	s.hist.Advance(t)
	est := s.hist.FrobSqEstimate()
	if d := s.lastF - est; d > 0 {
		s.churn += d
	}
	s.lastF = est
	return s.maybeReport()
}

func (s *DA1Site) maybeReport() error {
	fhat := s.lastF
	if fhat <= 0 {
		if mat.FrobSq(s.chat) > 0 {
			return s.sendDiff(mat.Scale(-1, s.chat), 0)
		}
		s.churn = 0
		return nil
	}
	if s.churn < s.cfg.Eps/4*fhat {
		return nil
	}
	s.churn = 0
	norm := mat.OpSymNormWarm(s.cfg.D, s.pv, 8, func(x, y []float64) {
		s.hist.ApplyGram(x, y)
		cx := mat.MulVec(s.chat, x)
		for i := range y {
			y[i] -= cx[i]
		}
	})
	if norm <= s.cfg.Eps*fhat {
		return nil
	}
	diff := s.hist.Gram()
	mat.SubInPlace(diff, s.chat)
	return s.sendDiff(diff, s.cfg.Eps*fhat)
}

func (s *DA1Site) sendDiff(diff *mat.Dense, cutoff float64) error {
	eig := mat.EigSym(diff)
	sent := 0
	send := func(i int) error {
		lam := eig.Values[i]
		v := eig.Vectors.Row(i)
		scaled := make([]float64, len(v))
		f := math.Sqrt(math.Abs(lam))
		for j := range v {
			scaled[j] = f * v[j]
		}
		kind := DirectionAdd
		if lam < 0 {
			kind = DirectionRemove
		}
		mat.OuterAdd(s.chat, v, lam)
		sent++
		return sendTraced(s.tr, s.out, Msg{Site: s.cfg.ID, Kind: kind, T: s.now, V: scaled})
	}
	for i, lam := range eig.Values {
		if lam == 0 || math.Abs(lam) < cutoff {
			continue
		}
		if err := send(i); err != nil {
			return err
		}
	}
	if sent == 0 && cutoff > 0 {
		best, bl := -1, 0.0
		for i, lam := range eig.Values {
			if a := math.Abs(lam); a > bl {
				best, bl = i, a
			}
		}
		if best >= 0 && bl > 0 {
			return send(best)
		}
	}
	return nil
}

// SumSite is the networked Algorithm-3 site.
type SumSite struct {
	cfg  SiteConfig
	out  Sender
	hist *eh.Histogram
	chat float64
	now  int64
	tr   *trace.Tracer
}

// NewSumSite returns a site pushing scalar deltas to out.
func NewSumSite(cfg SiteConfig, out Sender) (*SumSite, error) {
	cfg.D = 1
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &SumSite{cfg: cfg, out: out, hist: eh.New(cfg.W, cfg.Eps/2)}, nil
}

// SetTracer installs a causal tracer (see DA2Site.SetTracer). Install
// before feeding data; nil disables.
func (s *SumSite) SetTracer(tr *trace.Tracer) {
	s.tr = tr
	s.hist.SetTracer(tr, s.cfg.ID)
}

// Observe records a positive weight.
func (s *SumSite) Observe(t int64, w float64) error {
	sp := s.tr.Start(trace.OpIngest, s.cfg.ID, t)
	defer sp.End()
	s.now = t
	if w > 0 {
		s.hist.Insert(t, w)
	} else {
		s.hist.Advance(t)
	}
	return s.check()
}

// Advance moves the clock without new data.
func (s *SumSite) Advance(t int64) error {
	if t <= s.now {
		return nil
	}
	s.now = t
	s.hist.Advance(t)
	return s.check()
}

func (s *SumSite) check() error {
	c := s.hist.Query()
	d := c - s.chat
	if math.Abs(d) > s.cfg.Eps*c || (c == 0 && s.chat != 0) {
		s.chat = c
		return sendTraced(s.tr, s.out, Msg{Site: s.cfg.ID, Kind: SumDelta, T: s.now, Delta: d})
	}
	return nil
}
