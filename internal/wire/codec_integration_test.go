package wire

import (
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"distwindow/internal/obs"
	"distwindow/mat"
)

// corruptConn flips one byte of the Nth Write — a bit-rot fault the
// gob framing cannot survive (the stream desynchronizes and the
// connection dies) but the v2 framing must absorb frame-locally.
type corruptConn struct {
	net.Conn
	mu     sync.Mutex
	writeN int // 1-based index of the Write call to corrupt
	offset int // byte offset flipped within that write
	writes int
	hit    bool
}

func (c *corruptConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	hit := c.writes == c.writeN && len(p) > c.offset
	if hit {
		c.hit = true
	}
	c.mu.Unlock()
	if hit {
		q := append([]byte(nil), p...)
		q[c.offset] ^= 0xFF
		return c.Conn.Write(q)
	}
	return c.Conn.Write(p)
}

// TestCorruptFrameMidStreamRecovered is the regression test for the
// corrupt-frame fix: a flipped byte mid-stream on a binary v2 connection
// must cost exactly the frames it touched — the coordinator rejects the
// frame by CRC, keeps the connection, nacks a rewind, and the sender's
// replay re-delivers everything, landing the exact same estimate a clean
// run would.
func TestCorruptFrameMidStreamRecovered(t *testing.T) {
	const n = 30
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var evMu sync.Mutex
	var rejected int
	coord := NewCoordinator(2, WithSink(obs.FuncSink(func(e obs.Event) {
		if e.Kind == obs.EvMsgRejected {
			evMu.Lock()
			rejected++
			evMu.Unlock()
		}
	})))
	go coord.Serve(ln)
	defer coord.Close()

	// Write #1 carries Hello + frame seq 1; write #2 carries frame seq 2,
	// whose payload byte (offset 20 > the 12-byte header) gets flipped.
	var cc *corruptConn
	s, err := DialFunc(func() (io.WriteCloser, error) {
		conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
		if err != nil {
			return nil, err
		}
		cc = &corruptConn{Conn: conn, writeN: 2, offset: 20}
		return cc, nil
	}, WithCodec(BinaryV2))
	if err != nil {
		t.Fatal(err)
	}

	for i := 1; i <= n; i++ {
		if err := s.Send(Msg{Site: 0, Kind: DirectionAdd, T: int64(i), V: []float64{1, 0}}); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			// Land the first frame cleanly so the corrupted frame is
			// mid-stream on a connection whose (site, stream) key the
			// coordinator has seen — the case the nack machinery covers.
			if p := drainSender(s, 10*time.Second); p != 0 {
				t.Fatalf("first frame never acknowledged (%d pending)", p)
			}
		}
	}
	if p := drainSender(s, 15*time.Second); p != 0 {
		t.Fatalf("%d frames still pending after corruption recovery (sender %+v, coord %+v)",
			p, s.Metrics(), coord.Metrics())
	}
	if !cc.hit {
		t.Fatal("the corrupting write never fired; the regression was not exercised")
	}

	// Exactly-once: every direction row applied once, despite the replay.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if f := mat.FrobSq(coord.Sketch()); math.Abs(f-n) < 1e-9 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sketch mass %v, want %d: the corrupted frame's delta was lost or double-applied",
				mat.FrobSq(coord.Sketch()), n)
		}
		time.Sleep(2 * time.Millisecond)
	}

	cm := coord.Metrics()
	if cm.Msgs != n {
		t.Fatalf("coordinator applied %d msgs, want %d", cm.Msgs, n)
	}
	if cm.BadMsgs == 0 {
		t.Fatal("no frame was counted bad; the corruption went undetected")
	}
	if cm.NackMsgs == 0 {
		t.Fatal("no nack was sent; recovery happened some other way than the rewind path")
	}
	evMu.Lock()
	rej := rejected
	evMu.Unlock()
	if rej == 0 {
		t.Fatal("no EvMsgRejected event reached the sink")
	}
	// The whole point: the connection survived the corruption. One dial.
	if sm := s.Metrics(); sm.DialAttempts != 1 {
		t.Fatalf("%d dial attempts; corruption should not cost the connection", sm.DialAttempts)
	}
	s.DiscardPending = true
	s.Close()
}

// TestMixedCodecFleetBitIdentical runs a fleet where half the sites speak
// gob and half speak binary v2 into ONE coordinator, and requires the
// final estimate to be bit-identical to applying the same deltas
// directly: the codec is a transport detail, invisible to the estimate.
func TestMixedCodecFleetBitIdentical(t *testing.T) {
	const (
		d    = 4
		nmsg = 48
	)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	coord := NewCoordinator(d)
	go coord.Serve(ln)
	defer coord.Close()
	ref := NewCoordinator(d)

	codecs := []Codec{Gob, BinaryV2, Gob, BinaryV2}
	senders := make([]*ResilientSender, len(codecs))
	for i := range senders {
		s, err := DialFunc(func() (io.WriteCloser, error) {
			return net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
		}, WithCodec(codecs[i]))
		if err != nil {
			t.Fatal(err)
		}
		senders[i] = s
	}

	rng := rand.New(rand.NewSource(5))
	seqs := make([]uint64, len(codecs))
	for i := 0; i < nmsg; i++ {
		si := i % len(codecs)
		m := Msg{Site: si, T: int64(i + 1)}
		if i%5 == 4 {
			m.Kind = SumDelta
			m.Delta = rng.NormFloat64()
		} else {
			m.Kind = DirectionAdd
			m.V = make([]float64, d)
			for j := range m.V {
				m.V[j] = rng.NormFloat64()
			}
		}
		if err := senders[si].Send(m); err != nil {
			t.Fatal(err)
		}
		// Serialize delivery so both coordinators apply in one order —
		// float addition is order-sensitive and the comparison is exact.
		if p := drainSender(senders[si], 10*time.Second); p != 0 {
			t.Fatalf("site %d: %d pending", si, p)
		}
		seqs[si]++
		m.Seq = seqs[si]
		if err := ref.Apply(m); err != nil {
			t.Fatal(err)
		}
	}

	got, want := coord.Snapshot(), ref.Snapshot()
	if len(got.Chat) != len(want.Chat) {
		t.Fatalf("estimate sizes differ: %d vs %d", len(got.Chat), len(want.Chat))
	}
	for i := range want.Chat {
		if got.Chat[i] != want.Chat[i] {
			t.Fatalf("Ĉ[%d]: mixed fleet %v, reference %v — a codec perturbed the estimate", i, got.Chat[i], want.Chat[i])
		}
	}
	if coord.Sum() != ref.Sum() {
		t.Fatalf("Sum: mixed fleet %v, reference %v", coord.Sum(), ref.Sum())
	}
	if cm := coord.Metrics(); cm.Msgs != nmsg || cm.BadMsgs != 0 {
		t.Fatalf("Msgs=%d BadMsgs=%d, want %d and 0", cm.Msgs, cm.BadMsgs, nmsg)
	}
	for i := range senders {
		senders[i].Close()
	}
}

// TestHandleConnV2AcksSequencedFrames mirrors the gob ack test on a raw
// binary v2 connection: the coordinator detects the codec from the first
// byte and acks in kind.
func TestHandleConnV2AcksSequencedFrames(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	coord := NewCoordinator(2)
	go coord.Serve(ln)
	defer coord.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := BinaryV2.NewEncoder(conn)
	dec := BinaryV2.NewDecoder(conn)
	for i := 1; i <= 3; i++ {
		m := Msg{Site: 0, Kind: SumDelta, T: int64(i), Delta: 1, Seq: uint64(i), StreamID: "s"}
		if err := enc.EncodeMsg(&m); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		var a Ack
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if err := dec.DecodeAck(&a); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
		if a.Seq != uint64(i) || a.Stream != "s" || a.Nack {
			t.Fatalf("ack %d = %+v", i, a)
		}
	}
	if cm := coord.Metrics(); cm.AckedMsgs != 3 {
		t.Fatalf("AckedMsgs = %d, want 3", cm.AckedMsgs)
	}
	if got := coord.SumOf("s"); got != 3 {
		t.Fatalf("SumOf(s) = %v, want 3", got)
	}
}
