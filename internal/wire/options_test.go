package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"distwindow/internal/obs"
	"distwindow/internal/wire/codec"
)

func TestWithResilienceUnsupportedOnNewSender(t *testing.T) {
	var sink bytes.Buffer
	_, err := NewSender(nopCloser{&sink}, WithResilience(ResilienceConfig{MaxBacklog: 5}))
	if !errors.Is(err, ErrOptionUnsupported) {
		t.Fatalf("NewSender(WithResilience) = %v, want ErrOptionUnsupported", err)
	}
	if _, err := NewSender(nopCloser{&sink}, WithCodec(nil)); err == nil {
		t.Fatal("WithCodec(nil) accepted")
	}
}

// TestWithStreamStampsBeforeSequencing pins the ordering subtlety: the
// default-stream stamp must land before the sequence stamp, because each
// stream owns its own sequence space.
func TestWithStreamStampsBeforeSequencing(t *testing.T) {
	s, err := DialFunc(func() (io.WriteCloser, error) {
		return nil, errors.New("down")
	}, WithStream("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	s.Send(Msg{Kind: SumDelta, Delta: 1})
	s.Send(Msg{Kind: SumDelta, Delta: 2})
	s.Send(Msg{Kind: SumDelta, Delta: 3, StreamID: "beta"})
	st := s.State()
	if len(st.Backlog) != 3 {
		t.Fatalf("backlog %d, want 3", len(st.Backlog))
	}
	want := []struct {
		stream string
		seq    uint64
	}{{"alpha", 1}, {"alpha", 2}, {"beta", 1}}
	for i, w := range want {
		m := st.Backlog[i]
		if m.StreamID != w.stream || m.Seq != w.seq {
			t.Fatalf("backlog[%d] = stream %q seq %d, want %q %d — default stream must be stamped before sequencing",
				i, m.StreamID, m.Seq, w.stream, w.seq)
		}
	}
}

func TestNewSenderWithCodecAndStream(t *testing.T) {
	var sink bytes.Buffer
	s, err := NewSender(nopCloser{&sink}, WithCodec(BinaryV2), WithStream("prices"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(Msg{Site: 4, Kind: SumDelta, Delta: 2.5}); err != nil {
		t.Fatal(err)
	}
	dec, cdc, err := codec.Detect(&sink)
	if err != nil {
		t.Fatal(err)
	}
	if cdc != BinaryV2 {
		t.Fatalf("sniffed %v, want v2", cdc)
	}
	var m Msg
	if err := dec.DecodeMsg(&m); err != nil {
		t.Fatal(err)
	}
	if m.Site != 4 || m.Delta != 2.5 || m.StreamID != "prices" {
		t.Fatalf("decoded %+v", m)
	}
}

func TestWithResilienceFields(t *testing.T) {
	s, err := DialFunc(func() (io.WriteCloser, error) {
		return nil, errors.New("down")
	}, WithResilience(ResilienceConfig{
		DialTimeout:    3 * time.Second,
		MaxBacklog:     7,
		MaxInflight:    -1, // unlimited
		BackoffBase:    2 * time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
		JitterSeed:     9,
		DiscardPending: true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if s.DialTimeout != 3*time.Second || s.MaxBacklog != 7 || s.MaxInflight != 0 ||
		s.BackoffBase != 2*time.Millisecond || s.BackoffMax != 20*time.Millisecond || !s.DiscardPending {
		t.Fatalf("resilience config not applied: %+v", s)
	}
	// MaxInflight 0 keeps the default window.
	s2, err := DialFunc(func() (io.WriteCloser, error) { return nil, errors.New("down") },
		WithResilience(ResilienceConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if s2.MaxInflight != DefaultMaxInflight {
		t.Fatalf("zero MaxInflight overrode the default: %d", s2.MaxInflight)
	}
}

// TestDeprecatedShimsStillGob: the pre-options constructors keep building
// gob senders, so code that has not migrated keeps its wire format.
func TestDeprecatedShimsStillGob(t *testing.T) {
	var sink bytes.Buffer
	cs := NewConnSender(nopCloser{&sink})
	if err := cs.Send(Msg{Site: 1, Kind: SumDelta, Delta: 1}); err != nil {
		t.Fatal(err)
	}
	_, cdc, err := codec.Detect(&sink)
	if err != nil {
		t.Fatal(err)
	}
	if cdc != Gob {
		t.Fatalf("NewConnSender writes %v, want gob", cdc)
	}
	rs := NewResilientSenderFunc(func() (io.WriteCloser, error) { return nil, errors.New("down") })
	if rs.cdc() != Gob {
		t.Fatalf("NewResilientSenderFunc codec = %v, want gob", rs.cdc())
	}
}

func TestCoordinatorOptions(t *testing.T) {
	var events []obs.Event
	c := NewCoordinator(2,
		WithStaleAfter(10*time.Second),
		WithSink(obs.FuncSink(func(e obs.Event) { events = append(events, e) })),
		WithTelemetry(),
	)
	if c.Fleet() == nil {
		t.Fatal("WithTelemetry did not attach a fleet view")
	}
	clock := time.Unix(0, 0)
	c.now = func() time.Time { return clock }
	c.Apply(Msg{Site: 0, Kind: SumDelta, Delta: 1, Seq: 1})
	clock = clock.Add(time.Minute)
	if n := c.CheckLiveness(); n != 1 {
		t.Fatalf("WithStaleAfter not applied: %d stale sites, want 1", n)
	}
	var ok bool
	for _, e := range events {
		if e.Kind == obs.EvSiteStale {
			ok = true
		}
	}
	if !ok {
		t.Fatal("WithSink not applied: no EvSiteStale event observed")
	}
}
