package wire

import (
	"fmt"

	"distwindow/internal/eh"
	"distwindow/internal/iwmt"
	"distwindow/internal/meh"
	"distwindow/mat"
)

// Site crash-recovery: every networked site can serialize its complete
// protocol state and resume after a process restart with bit-identical
// behaviour. The intended checkpoint is the pair (site state, sender
// replay state — ResilientSender.State): restore both, reconnect, and
// re-feed the input rows observed since the checkpoint. The restored
// sender's sequence counter picks up where the checkpoint left it, so the
// re-fed rows regenerate the exact message sequence the crashed site
// already produced, and the coordinator's (Site, Seq) dedup discards
// every delta it already consumed — the resync is exactly-once with no
// coordinator-side coordination.

// DA1SiteState serializes a DA1Site.
type DA1SiteState struct {
	Cfg   SiteConfig
	Hist  meh.Snapshot
	Chat  []float64
	Churn float64
	LastF float64
	PV    []float64
	Now   int64
}

// Snapshot captures the site's state (deep copies throughout).
func (s *DA1Site) Snapshot() DA1SiteState {
	return DA1SiteState{
		Cfg:   s.cfg,
		Hist:  s.hist.Snapshot(),
		Chat:  append([]float64(nil), s.chat.Data()...),
		Churn: s.churn,
		LastF: s.lastF,
		PV:    append([]float64(nil), s.pv...),
		Now:   s.now,
	}
}

// RestoreDA1Site rebuilds a site from a snapshot, pushing to out.
func RestoreDA1Site(st DA1SiteState, out Sender) (*DA1Site, error) {
	s, err := NewDA1Site(st.Cfg, out)
	if err != nil {
		return nil, err
	}
	h, err := meh.Restore(st.Hist)
	if err != nil {
		return nil, fmt.Errorf("wire: DA1 site restore: %w", err)
	}
	s.hist = h
	if err := restoreDense(s.chat, st.Chat); err != nil {
		return nil, err
	}
	s.churn = st.Churn
	s.lastF = st.LastF
	if len(st.PV) == st.Cfg.D {
		s.pv = append([]float64(nil), st.PV...)
	}
	s.now = st.Now
	return s, nil
}

// DA2SiteState serializes a DA2Site (both variants).
type DA2SiteState struct {
	Cfg      SiteConfig
	Compress bool
	A        iwmt.Snapshot
	Mass     eh.Snapshot
	Ledger   []iwmt.Msg
	Q        []iwmt.Msg
	E        *iwmt.Snapshot
	Resid    []float64
	Boundary int64
	Now      int64
}

// Snapshot captures the site's state (deep copies throughout).
func (s *DA2Site) Snapshot() DA2SiteState {
	st := DA2SiteState{
		Cfg:      s.cfg,
		Compress: s.compress,
		A:        s.a.Snapshot(),
		Mass:     s.mass.Snapshot(),
		Ledger:   copyMsgs(s.ledger),
		Q:        copyMsgs(s.q),
		Boundary: s.boundary,
		Now:      s.now,
	}
	if s.e != nil {
		e := s.e.Snapshot()
		st.E = &e
	}
	if s.resid != nil {
		st.Resid = append([]float64(nil), s.resid.Data()...)
	}
	return st
}

// RestoreDA2Site rebuilds a site from a snapshot, pushing to out.
func RestoreDA2Site(st DA2SiteState, out Sender) (*DA2Site, error) {
	s, err := newDA2Site(st.Cfg, out, st.Compress)
	if err != nil {
		return nil, err
	}
	mass, err := eh.Restore(st.Mass)
	if err != nil {
		return nil, fmt.Errorf("wire: DA2 site mass restore: %w", err)
	}
	s.mass = mass
	a, err := iwmt.Restore(st.A, func() float64 { return st.Cfg.Eps * s.mass.Query() })
	if err != nil {
		return nil, fmt.Errorf("wire: DA2 site IWMT_a restore: %w", err)
	}
	s.a = a
	s.ledger = copyMsgs(st.Ledger)
	s.q = copyMsgs(st.Q)
	s.boundary = st.Boundary
	s.now = st.Now
	if st.E != nil {
		e, err := iwmt.Restore(*st.E, func() float64 { return st.Cfg.Eps * s.mass.Query() })
		if err != nil {
			return nil, fmt.Errorf("wire: DA2 site IWMT_e restore: %w", err)
		}
		s.e = e
	}
	if st.Resid != nil {
		s.resid = mat.NewDense(st.Cfg.D, st.Cfg.D)
		if err := restoreDense(s.resid, st.Resid); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// SumSiteState serializes a SumSite.
type SumSiteState struct {
	Cfg  SiteConfig
	Hist eh.Snapshot
	Chat float64
	Now  int64
}

// Snapshot captures the site's state.
func (s *SumSite) Snapshot() SumSiteState {
	return SumSiteState{Cfg: s.cfg, Hist: s.hist.Snapshot(), Chat: s.chat, Now: s.now}
}

// RestoreSumSite rebuilds a site from a snapshot, pushing to out.
func RestoreSumSite(st SumSiteState, out Sender) (*SumSite, error) {
	s, err := NewSumSite(st.Cfg, out)
	if err != nil {
		return nil, err
	}
	h, err := eh.Restore(st.Hist)
	if err != nil {
		return nil, fmt.Errorf("wire: SUM site restore: %w", err)
	}
	s.hist = h
	s.chat = st.Chat
	s.now = st.Now
	return s, nil
}

func copyMsgs(ms []iwmt.Msg) []iwmt.Msg {
	if ms == nil {
		return nil
	}
	out := make([]iwmt.Msg, len(ms))
	for i, m := range ms {
		out[i] = iwmt.Msg{T: m.T, V: append([]float64(nil), m.V...)}
	}
	return out
}

func restoreDense(dst *mat.Dense, data []float64) error {
	if len(data) != len(dst.Data()) {
		return fmt.Errorf("wire: snapshot matrix length %d, want %d", len(data), len(dst.Data()))
	}
	copy(dst.Data(), data)
	return nil
}
