package wire

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// ResilientSender wraps dial-on-demand reconnection around a ConnSender:
// messages that fail to encode are buffered and replayed, in order, once a
// new connection is established. Because the one-way protocols' messages
// are pure deltas, replaying the backlog after a reconnect restores the
// coordinator to the exact state it would have had — provided the
// transport delivers each accepted message at most once (TCP does; the
// failure mode covered here is the sender-side connection dying).
type ResilientSender struct {
	addr string
	// DialTimeout bounds each reconnection attempt.
	DialTimeout time.Duration
	// MaxBacklog bounds buffered messages; 0 means unlimited. When the
	// backlog is full, Send reports an error instead of dropping silently.
	MaxBacklog int

	mu      sync.Mutex
	conn    io.WriteCloser
	enc     *gob.Encoder
	backlog []Msg
	dial    func() (io.WriteCloser, error)
}

// NewResilientSender returns a sender that (re)dials addr over TCP.
func NewResilientSender(addr string) *ResilientSender {
	s := &ResilientSender{addr: addr, DialTimeout: 5 * time.Second}
	s.dial = func() (io.WriteCloser, error) {
		return net.DialTimeout("tcp", addr, s.DialTimeout)
	}
	return s
}

// newResilientSenderFunc is the test seam: dial via an arbitrary factory.
func newResilientSenderFunc(dial func() (io.WriteCloser, error)) *ResilientSender {
	return &ResilientSender{dial: dial, DialTimeout: time.Second}
}

// Send encodes the message, transparently reconnecting and replaying any
// backlog first. On transport failure the message is buffered and nil is
// returned (the data is not lost); only a full backlog is an error.
func (s *ResilientSender) Send(m Msg) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.backlog = append(s.backlog, m)
	if s.MaxBacklog > 0 && len(s.backlog) > s.MaxBacklog {
		s.backlog = s.backlog[:len(s.backlog)-1]
		return fmt.Errorf("wire: backlog full (%d messages)", s.MaxBacklog)
	}
	s.drainLocked()
	return nil
}

// Flush attempts to deliver everything buffered; it returns the number of
// messages still pending.
func (s *ResilientSender) Flush() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainLocked()
	return len(s.backlog)
}

// drainLocked sends as much backlog as the current connection accepts,
// dialing if needed. On error the connection is dropped and the rest stays
// buffered for the next attempt.
func (s *ResilientSender) drainLocked() {
	if s.conn == nil {
		conn, err := s.dial()
		if err != nil {
			return
		}
		s.conn = conn
		s.enc = gob.NewEncoder(conn)
	}
	for len(s.backlog) > 0 {
		if err := s.enc.Encode(s.backlog[0]); err != nil {
			s.conn.Close()
			s.conn = nil
			s.enc = nil
			return
		}
		s.backlog = s.backlog[1:]
	}
}

// Pending returns the number of buffered (undelivered) messages.
func (s *ResilientSender) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.backlog)
}

// Close closes the current connection; buffered messages are discarded.
func (s *ResilientSender) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.backlog = nil
	if s.conn != nil {
		err := s.conn.Close()
		s.conn = nil
		s.enc = nil
		return err
	}
	return nil
}

// Snapshot is a serializable copy of a coordinator's state, for failover
// or checkpoint/restore.
type Snapshot struct {
	D     int
	Chat  []float64
	Sum   float64
	Msgs  int64
	Bytes int64
}

// Snapshot captures the coordinator's current state.
func (c *Coordinator) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	data := make([]float64, len(c.chat.Data()))
	copy(data, c.chat.Data())
	return Snapshot{D: c.d, Chat: data, Sum: c.sum, Msgs: c.msgs.Load(), Bytes: c.bytes.Load()}
}

// WriteSnapshot gob-encodes a snapshot to w.
func (c *Coordinator) WriteSnapshot(w io.Writer) error {
	return gob.NewEncoder(w).Encode(c.Snapshot())
}

// RestoreCoordinator rebuilds a coordinator from a snapshot.
func RestoreCoordinator(s Snapshot) (*Coordinator, error) {
	if s.D < 1 || len(s.Chat) != s.D*s.D {
		return nil, fmt.Errorf("wire: invalid snapshot d=%d chat=%d", s.D, len(s.Chat))
	}
	c := NewCoordinator(s.D)
	copy(c.chat.Data(), s.Chat)
	c.sum = s.Sum
	c.msgs.Add(s.Msgs)
	c.bytes.Add(s.Bytes)
	return c, nil
}

// ReadSnapshot decodes a snapshot from r and rebuilds the coordinator.
func ReadSnapshot(r io.Reader) (*Coordinator, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return RestoreCoordinator(s)
}
