package wire

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"distwindow/internal/obs"
	"distwindow/internal/wire/codec"
	"distwindow/mat"
)

// PendingError is returned by ResilientSender.Close when undelivered
// messages remain in the backlog and DiscardPending is unset. The sender
// is left intact: Flush (or FlushWait) and close again, or set
// DiscardPending to drop the messages knowingly.
type PendingError struct {
	// Pending is the number of undelivered (unacknowledged) messages.
	Pending int
}

func (e *PendingError) Error() string {
	return fmt.Sprintf("wire: close would lose %d undelivered messages (Flush first, or set DiscardPending)", e.Pending)
}

// ResilientSender wraps dial-on-demand reconnection around a gob stream:
// every message is stamped with a sequence number and held in an ordered
// backlog until the coordinator acknowledges it, so a connection that
// dies at ANY point — before the write, during it, or after the bytes
// reached the kernel but never the coordinator — loses nothing: the next
// connection replays the unacknowledged backlog in order, and the
// coordinator's (Site, Seq) dedup makes the replay exactly-once.
//
// Transports that cannot carry acks (a write-only io.WriteCloser from the
// dial seam) degrade to the pre-ack behaviour: a message is retired as
// soon as its encode succeeds, which is at-most-once across connection
// death. Real net.Conns always get the acknowledged path.
//
// While the coordinator is unreachable, dial attempts back off
// exponentially with jitter between BackoffBase and BackoffMax instead of
// re-dialing on every Send; attempts and failures are counted in Metrics.
type ResilientSender struct {
	addr string
	// DialTimeout bounds each reconnection attempt.
	DialTimeout time.Duration
	// MaxBacklog bounds buffered (unacknowledged) messages; 0 means
	// unlimited. When the backlog is full, Send reports an error instead
	// of dropping silently.
	MaxBacklog int
	// MaxInflight is the flow-control window on the acknowledged path: at
	// most this many unacknowledged frames are written per connection
	// before the sender waits for acks to retire the front. Without a
	// window, replaying a deep backlog only makes progress if one
	// connection survives the ENTIRE replay plus an ack round-trip — on a
	// lossy link that probability decays geometrically with backlog depth,
	// and retirement stalls forever while replay traffic burns. 0 means
	// unlimited (the constructors default it to DefaultMaxInflight).
	// Ignored on write-only transports, which retire on write.
	MaxInflight int
	// BackoffBase and BackoffMax bound the exponential backoff between
	// failed dial attempts. BackoffBase <= 0 disables backoff (every Send
	// retries the dial immediately); BackoffMax <= 0 defaults to 30s.
	BackoffBase, BackoffMax time.Duration
	// DiscardPending lets Close drop undelivered messages silently instead
	// of returning a *PendingError.
	DiscardPending bool

	// codec is the wire framing Send speaks (Gob unless WithCodec chose
	// BinaryV2); stream is the default stream id stamped onto messages
	// sent without one (WithStream). Set at construction, read-only after.
	codec  Codec
	stream string

	mu      sync.Mutex
	conn    io.WriteCloser
	enc     codec.Encoder
	ackMode bool   // current conn carries acks (it implements io.Reader)
	gen     uint64 // connection generation; stale ack readers exit on mismatch
	backlog []Msg  // unacknowledged messages, per-stream seq order
	sent    int    // backlog prefix already written on the current conn
	// nextSeq is the default stream's sequence counter; streamSeq holds
	// the counters of the non-default streams (lazily created). Each
	// stream multiplexed through this sender has its own sequence space,
	// matching the coordinator's (site, stream) dedup keying.
	nextSeq       uint64
	streamSeq     map[string]uint64
	maxSent       uint64            // highest default-stream seq ever written (counts replays)
	maxSentStream map[string]uint64 // per-stream counterparts of maxSent
	dial          func() (io.WriteCloser, error)
	rng           *rand.Rand
	backoff       time.Duration
	nextDial      time.Time
	now           func() time.Time

	msgs      obs.Counter
	acked     obs.Counter
	replayed  obs.Counter
	dialTries obs.Counter
	dialFails obs.Counter
}

// DefaultMaxInflight is the flow-control window the constructors install
// when ResilienceConfig.MaxInflight is zero.
const DefaultMaxInflight = 64

// NewResilientSender returns a sender that (re)dials addr over TCP, with
// backoff defaults of 50ms base and 5s cap and a time-seeded dial jitter
// (use SetJitterSeed for reproducible runs).
//
// Deprecated: use Dial, which takes options (WithCodec, WithStream,
// WithResilience).
func NewResilientSender(addr string) *ResilientSender {
	s := &ResilientSender{
		addr:        addr,
		codec:       Gob,
		DialTimeout: 5 * time.Second,
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  5 * time.Second,
		MaxInflight: DefaultMaxInflight,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
		now:         time.Now,
	}
	s.dial = func() (io.WriteCloser, error) {
		return net.DialTimeout("tcp", addr, s.DialTimeout)
	}
	return s
}

// NewResilientSenderFunc builds a sender over an arbitrary dial seam —
// fault-injection wrappers (package chaos), in-process pipes, tests. The
// returned conn's capabilities pick the delivery mode: an io.Reader gets
// the acknowledged path, a bare io.WriteCloser the retire-on-write one.
// Backoff starts disabled; set BackoffBase to enable it.
//
// Deprecated: use DialFunc, which takes options (WithCodec, WithStream,
// WithResilience).
func NewResilientSenderFunc(dial func() (io.WriteCloser, error)) *ResilientSender {
	return &ResilientSender{
		dial:        dial,
		codec:       Gob,
		DialTimeout: time.Second,
		MaxInflight: DefaultMaxInflight,
		rng:         rand.New(rand.NewSource(1)),
		now:         time.Now,
	}
}

// Stream returns a Sender view stamping every message with the given
// stream id before it enters the delivery machinery, so many logical
// streams can multiplex over this one sender and connection.
func (s *ResilientSender) Stream(id string) Sender { return StreamOf(s, id) }

// SetJitterSeed reseeds the dial-jitter RNG, making backoff timing
// reproducible. Call before Send.
func (s *ResilientSender) SetJitterSeed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rng = rand.New(rand.NewSource(seed))
}

// Send stamps the message with its stream's next sequence number and
// queues it until acknowledged, transparently reconnecting and replaying
// the backlog first. On transport failure the message stays buffered and
// nil is returned (the data is not lost); only a full backlog is an
// error. Messages of different streams (Msg.StreamID) share the backlog
// and the connection but carry independent sequence spaces.
func (s *ResilientSender) Send(m Msg) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.MaxBacklog > 0 && len(s.backlog) >= s.MaxBacklog {
		return fmt.Errorf("wire: backlog full (%d messages)", s.MaxBacklog)
	}
	if m.StreamID == "" {
		// The default stream stamp must land before the sequence stamp:
		// each stream has its own sequence space.
		m.StreamID = s.stream
	}
	if m.StreamID == "" {
		s.nextSeq++
		m.Seq = s.nextSeq
	} else {
		if s.streamSeq == nil {
			s.streamSeq = make(map[string]uint64)
		}
		s.streamSeq[m.StreamID]++
		m.Seq = s.streamSeq[m.StreamID]
	}
	s.backlog = append(s.backlog, m)
	s.drainLocked()
	return nil
}

// SendBestEffort writes one message on the current connection without
// entering the delivery machinery: no sequence number, no backlog, no
// replay. With no live connection it tries one dial (inside the backoff
// window) and otherwise reports an error — the message is dropped, which
// is the contract telemetry frames want: a fleet snapshot competes with
// nothing, and the next ticker interval brings a fresher one anyway. An
// encode failure drops the connection exactly like a data-path failure,
// so the estimate traffic redials and replays as usual.
func (s *ResilientSender) SendBestEffort(m Msg) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m.Seq = 0
	if s.conn == nil {
		// Reuse the data path's dial/backoff by draining (possibly nothing):
		// drainLocked dials when allowed and leaves conn set on success.
		s.drainLocked()
		if s.conn == nil {
			return fmt.Errorf("wire: no connection for best-effort send")
		}
	}
	if err := s.enc.EncodeMsg(&m); err != nil {
		s.dropConnLocked()
		return err
	}
	if err := s.enc.Flush(); err != nil {
		s.dropConnLocked()
		return err
	}
	return nil
}

// Flush attempts to deliver everything buffered; it returns the number of
// messages still pending. On an acknowledged transport, pending counts
// unacknowledged messages — a frame already written may remain pending
// until its ack arrives, so poll Flush (or use FlushWait) rather than
// expecting one call to reach zero.
func (s *ResilientSender) Flush() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainLocked()
	return len(s.backlog)
}

// FlushWait polls Flush until the backlog is empty or the timeout
// elapses, returning the number of messages still pending.
func (s *ResilientSender) FlushWait(timeout time.Duration) int {
	deadline := s.now().Add(timeout)
	for {
		if n := s.Flush(); n == 0 {
			return 0
		}
		if !s.now().Before(deadline) {
			return s.Pending()
		}
		time.Sleep(time.Millisecond)
	}
}

// drainLocked sends as much backlog as the current connection accepts,
// dialing if needed (subject to the backoff window). Frames are encoded
// into the codec's batch buffer and flushed in one writev-style Write at
// the end of the drain, so a deep backlog replay costs one syscall per
// batch, not per frame (the gob codec writes through per frame — its
// stream format has no coalescing seam). On error the connection is
// dropped and the rest stays buffered for the next attempt.
func (s *ResilientSender) drainLocked() {
	if s.conn == nil {
		if s.backoff > 0 && s.now().Before(s.nextDial) {
			return
		}
		s.dialTries.Inc()
		conn, err := s.dial()
		if err != nil {
			s.dialFails.Inc()
			s.bumpBackoffLocked()
			return
		}
		s.backoff = 0
		s.conn = conn
		s.enc = s.cdc().NewEncoder(conn)
		s.sent = 0
		s.gen++
		if r, ok := conn.(io.Reader); ok {
			s.ackMode = true
			go s.readAcks(r, conn, s.gen)
		} else {
			s.ackMode = false
		}
	}
	for s.sent < len(s.backlog) {
		if s.ackMode && s.MaxInflight > 0 && s.sent >= s.MaxInflight {
			// Window full: stop and let acks retire the front (readAcks
			// decrements sent). The next Send/Flush writes the next batch.
			break
		}
		m := s.backlog[s.sent]
		if err := s.enc.EncodeMsg(&m); err != nil {
			s.dropConnLocked()
			return
		}
		s.msgs.Inc()
		if m.StreamID == "" {
			if m.Seq <= s.maxSent {
				s.replayed.Inc()
			} else {
				s.maxSent = m.Seq
			}
		} else {
			if m.Seq <= s.maxSentStream[m.StreamID] {
				s.replayed.Inc()
			} else {
				if s.maxSentStream == nil {
					s.maxSentStream = make(map[string]uint64)
				}
				s.maxSentStream[m.StreamID] = m.Seq
			}
		}
		if s.ackMode {
			s.sent++
		} else {
			// Write-only transport: no acks will ever arrive, so retire on
			// write as the pre-ack sender did (at-most-once delivery).
			s.backlog = s.backlog[1:]
		}
	}
	if err := s.enc.Flush(); err != nil {
		s.dropConnLocked()
	}
}

// cdc returns the sender's codec, defaulting to Gob so zero-value and
// test-constructed senders keep the legacy framing.
func (s *ResilientSender) cdc() Codec {
	if s.codec == nil {
		return Gob
	}
	return s.codec
}

// bumpBackoffLocked doubles the backoff (capped) and schedules the next
// dial attempt a jittered wait from now, so a fleet of sites whose
// coordinator restarts does not re-dial in lockstep.
func (s *ResilientSender) bumpBackoffLocked() {
	if s.BackoffBase <= 0 {
		return
	}
	if s.backoff == 0 {
		s.backoff = s.BackoffBase
	} else {
		s.backoff *= 2
	}
	max := s.BackoffMax
	if max <= 0 {
		max = 30 * time.Second
	}
	if s.backoff > max {
		s.backoff = max
	}
	// Uniform in [backoff/2, backoff): half the interval is deterministic
	// spacing, half is jitter.
	half := s.backoff / 2
	wait := half
	if half > 0 {
		wait += time.Duration(s.rng.Int63n(int64(half)))
	}
	s.nextDial = s.now().Add(wait)
}

// dropConnLocked abandons the current connection; the unacknowledged
// backlog stays queued for replay on the next dial.
func (s *ResilientSender) dropConnLocked() {
	if s.conn != nil {
		s.conn.Close()
	}
	s.conn = nil
	s.enc = nil
	s.sent = 0
}

// readAcks retires acknowledged backlog prefixes for one connection
// generation. A decode error (the connection died, or the peer is an old
// coordinator closing without acks) drops the connection so the next
// Send/Flush redials and replays.
func (s *ResilientSender) readAcks(r io.Reader, conn io.WriteCloser, gen uint64) {
	dec := s.cdc().NewDecoder(r)
	if rel, ok := dec.(interface{ Release() }); ok {
		defer rel.Release()
	}
	for {
		var a Ack
		if err := dec.DecodeAck(&a); err != nil {
			s.mu.Lock()
			if s.gen == gen && s.conn == conn {
				s.dropConnLocked()
			}
			s.mu.Unlock()
			return
		}
		s.mu.Lock()
		if s.gen != gen {
			s.mu.Unlock()
			return
		}
		s.retireLocked(a)
		if a.Nack && s.conn == conn {
			// The coordinator lost a frame (CRC-rejected under the binary
			// framing) and asks for a rewind: everything still in the
			// backlog past the ack horizon must be re-sent on this
			// connection. Resetting the written-prefix cursor makes the
			// next drain replay the whole remaining backlog — the dedup
			// machinery absorbs the frames the coordinator did consume.
			s.sent = 0
			s.drainLocked()
		}
		s.mu.Unlock()
	}
}

// retireLocked drops every backlog entry of the acknowledged stream with
// Seq ≤ a.Seq. With a single stream this is the old prefix pop; with
// multiplexed streams the retired entries may be interleaved with other
// streams' frames, so the backlog is compacted in place and the
// written-prefix cursor adjusted for each retired entry it covered.
func (s *ResilientSender) retireLocked(a Ack) {
	// Fast path: nothing of this stream is pending before the first
	// non-matching entry — common because acks arrive in send order.
	keep := s.backlog[:0]
	sent := s.sent
	for i, m := range s.backlog {
		if m.StreamID == a.Stream && m.Seq <= a.Seq {
			if i < s.sent {
				sent--
			}
			s.acked.Inc()
			continue
		}
		keep = append(keep, m)
	}
	// Clear the vacated tail so retired frames' direction slices are not
	// pinned by the backing array.
	for i := len(keep); i < len(s.backlog); i++ {
		s.backlog[i] = Msg{}
	}
	s.backlog = keep
	s.sent = sent
}

// Pending returns the number of buffered (undelivered) messages.
func (s *ResilientSender) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.backlog)
}

// ResilientMetrics is a snapshot of a ResilientSender's counters.
type ResilientMetrics struct {
	// Msgs counts encode attempts that reached a connection (replays
	// included); Acked counts messages retired by coordinator acks.
	Msgs, Acked int64
	// Replayed counts re-encodes of messages already written once (the
	// recovery traffic after reconnects and restarts).
	Replayed int64
	// Pending is the current backlog length.
	Pending int64
	// DialAttempts and DialFailures count reconnection attempts; their
	// difference is successful dials.
	DialAttempts, DialFailures int64
}

// Metrics snapshots the sender's counters; safe to call concurrently with
// Send.
func (s *ResilientSender) Metrics() ResilientMetrics {
	return ResilientMetrics{
		Msgs:         s.msgs.Load(),
		Acked:        s.acked.Load(),
		Replayed:     s.replayed.Load(),
		Pending:      int64(s.Pending()),
		DialAttempts: s.dialTries.Load(),
		DialFailures: s.dialFails.Load(),
	}
}

// SenderState is a ResilientSender's serializable replay state: the
// unacknowledged backlog and the sequence counter. Checkpoint it next to
// the site's protocol state; after a crash, RestoreState plus replaying
// the input rows since the checkpoint regenerates the exact message
// sequence, and the coordinator's dedup discards everything it already
// consumed.
type SenderState struct {
	// NextSeq is the default stream's sequence counter; StreamSeqs holds
	// the non-default streams' counters (nil when none — pre-stream
	// checkpoints decode with a nil map and restore unchanged).
	NextSeq    uint64
	StreamSeqs map[string]uint64
	Backlog    []Msg
}

// State deep-copies the sender's replay state.
func (s *ResilientSender) State() SenderState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SenderState{NextSeq: s.nextSeq, Backlog: make([]Msg, len(s.backlog))}
	if len(s.streamSeq) > 0 {
		st.StreamSeqs = make(map[string]uint64, len(s.streamSeq))
		for id, seq := range s.streamSeq {
			st.StreamSeqs[id] = seq
		}
	}
	for i, m := range s.backlog {
		m.V = append([]float64(nil), m.V...)
		st.Backlog[i] = m
	}
	return st
}

// RestoreState overwrites the sender's replay state from a checkpoint.
// Restore into a fresh sender before its first Send. Sequence ordering is
// validated per stream: each stream's backlog entries must be strictly
// increasing and must not run ahead of that stream's counter.
func (s *ResilientSender) RestoreState(st SenderState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	last := make(map[string]uint64)
	for i, m := range st.Backlog {
		if prev, ok := last[m.StreamID]; ok && m.Seq <= prev {
			return fmt.Errorf("wire: sender state backlog out of order at %d (stream %q)", i, m.StreamID)
		}
		last[m.StreamID] = m.Seq
	}
	for id, tail := range last {
		next := st.NextSeq
		if id != "" {
			next = st.StreamSeqs[id]
		}
		if tail > next {
			return fmt.Errorf("wire: sender state counter %d behind backlog tail %d (stream %q)", next, tail, id)
		}
	}
	s.nextSeq = st.NextSeq
	s.streamSeq = nil
	if len(st.StreamSeqs) > 0 {
		s.streamSeq = make(map[string]uint64, len(st.StreamSeqs))
		for id, seq := range st.StreamSeqs {
			s.streamSeq[id] = seq
		}
	}
	s.maxSent = 0
	s.maxSentStream = nil
	s.sent = 0
	s.backlog = make([]Msg, len(st.Backlog))
	for i, m := range st.Backlog {
		m.V = append([]float64(nil), m.V...)
		s.backlog[i] = m
	}
	return nil
}

// Close closes the current connection. If undelivered messages remain and
// DiscardPending is unset, Close keeps the sender (and its backlog)
// intact and returns a *PendingError carrying the pending count, so
// callers know to Flush first.
func (s *ResilientSender) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.backlog); n > 0 && !s.DiscardPending {
		return &PendingError{Pending: n}
	}
	s.backlog = nil
	s.sent = 0
	s.gen++ // orphan any ack reader still running
	if s.conn != nil {
		err := s.conn.Close()
		s.conn = nil
		s.enc = nil
		return err
	}
	return nil
}

// Snapshot is a serializable copy of a coordinator's state, for failover
// or checkpoint/restore.
type Snapshot struct {
	D int
	// Chat and Sum are the default stream's estimate; Streams carries the
	// non-default streams' estimates (nil when none — pre-stream
	// snapshots decode with a nil map and restore unchanged).
	Chat    []float64
	Sum     float64
	Streams map[string]StreamState
	Msgs    int64
	Bytes   int64
	// SiteSeqs carries the default stream's per-site dedup horizon, so a
	// failed-over coordinator keeps discarding replays its predecessor
	// already applied. Absent in pre-ack snapshots (gob leaves the map
	// nil). StreamSeqs carries the non-default streams' horizons.
	SiteSeqs   map[int]uint64
	StreamSeqs []StreamSeq
}

// StreamState is one non-default stream's serialized estimate.
type StreamState struct {
	Chat []float64
	Sum  float64
}

// StreamSeq is one non-default (site, stream) dedup horizon.
type StreamSeq struct {
	Site   int
	Stream string
	Seq    uint64
}

// Snapshot captures the coordinator's current state.
func (c *Coordinator) Snapshot() Snapshot {
	c.mu.Lock()
	data := make([]float64, len(c.def.chat.Data()))
	copy(data, c.def.chat.Data())
	sum := c.def.sum
	var streams map[string]StreamState
	if len(c.streams) > 0 {
		streams = make(map[string]StreamState, len(c.streams))
		for id, e := range c.streams {
			streams[id] = StreamState{Chat: append([]float64(nil), e.chat.Data()...), Sum: e.sum}
		}
	}
	c.mu.Unlock()
	c.siteMu.Lock()
	seqs := make(map[int]uint64, len(c.siteStates))
	var streamSeqs []StreamSeq
	for key, st := range c.siteStates {
		if st.lastSeq == 0 {
			continue
		}
		if key.stream == "" {
			seqs[key.site] = st.lastSeq
		} else {
			streamSeqs = append(streamSeqs, StreamSeq{Site: key.site, Stream: key.stream, Seq: st.lastSeq})
		}
	}
	c.siteMu.Unlock()
	sort.Slice(streamSeqs, func(i, j int) bool {
		if streamSeqs[i].Site != streamSeqs[j].Site {
			return streamSeqs[i].Site < streamSeqs[j].Site
		}
		return streamSeqs[i].Stream < streamSeqs[j].Stream
	})
	return Snapshot{
		D: c.d, Chat: data, Sum: sum, Streams: streams,
		Msgs: c.msgs.Load(), Bytes: c.bytes.Load(),
		SiteSeqs: seqs, StreamSeqs: streamSeqs,
	}
}

// WriteSnapshot gob-encodes a snapshot to w.
func (c *Coordinator) WriteSnapshot(w io.Writer) error {
	return gob.NewEncoder(w).Encode(c.Snapshot())
}

// RestoreCoordinator rebuilds a coordinator from a snapshot.
func RestoreCoordinator(s Snapshot) (*Coordinator, error) {
	if s.D < 1 || len(s.Chat) != s.D*s.D {
		return nil, fmt.Errorf("wire: invalid snapshot d=%d chat=%d", s.D, len(s.Chat))
	}
	c := NewCoordinator(s.D)
	copy(c.def.chat.Data(), s.Chat)
	c.def.sum = s.Sum
	for id, ss := range s.Streams {
		if id == "" || len(ss.Chat) != s.D*s.D {
			return nil, fmt.Errorf("wire: invalid snapshot stream %q chat=%d", id, len(ss.Chat))
		}
		e := &streamEst{chat: mat.NewDense(s.D, s.D), sum: ss.Sum}
		copy(e.chat.Data(), ss.Chat)
		if c.streams == nil {
			c.streams = make(map[string]*streamEst, len(s.Streams))
		}
		c.streams[id] = e
	}
	c.msgs.Add(s.Msgs)
	c.bytes.Add(s.Bytes)
	if len(s.SiteSeqs) > 0 || len(s.StreamSeqs) > 0 {
		c.siteStates = make(map[siteKey]*siteState, len(s.SiteSeqs)+len(s.StreamSeqs))
		for site, seq := range s.SiteSeqs {
			c.siteStates[siteKey{site: site}] = &siteState{lastSeq: seq, lastSeen: c.now()}
		}
		for _, ss := range s.StreamSeqs {
			c.siteStates[siteKey{site: ss.Site, stream: ss.Stream}] = &siteState{lastSeq: ss.Seq, lastSeen: c.now()}
		}
	}
	return c, nil
}

// ReadSnapshot decodes a snapshot from r and rebuilds the coordinator.
func ReadSnapshot(r io.Reader) (*Coordinator, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return RestoreCoordinator(s)
}
