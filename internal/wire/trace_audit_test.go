package wire

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"math/rand"
	"testing"

	"distwindow/internal/audit"
	"distwindow/internal/trace"
	"distwindow/mat"
)

// legacyMsg is the pre-trace wire frame: Msg as it was before the Trace
// and Span fields existed. gob matches struct fields by name, so frames
// in this shape must keep decoding at a new coordinator (and new frames
// at an old coordinator).
type legacyMsg struct {
	Site  int
	Kind  Kind
	T     int64
	V     []float64
	Delta float64
}

func TestGobBackwardCompatOldSenderNewCoordinator(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	frames := []legacyMsg{
		{Site: 0, Kind: DirectionAdd, T: 1, V: []float64{3, 4}},
		{Site: 1, Kind: SumDelta, T: 2, Delta: 7},
	}
	for _, f := range frames {
		if err := enc.Encode(f); err != nil {
			t.Fatal(err)
		}
	}

	c := NewCoordinator(2)
	if err := c.HandleConn(&buf); err != nil {
		t.Fatalf("HandleConn on legacy stream: %v", err)
	}
	cm := c.Metrics()
	if cm.Msgs != 2 || cm.BadMsgs != 0 {
		t.Fatalf("Msgs=%d BadMsgs=%d, want 2 applied and 0 rejected", cm.Msgs, cm.BadMsgs)
	}
	if got := mat.FrobSq(c.Sketch()); got < 24.9 || got > 25.1 {
		t.Fatalf("sketch mass %v, want 25 from the legacy direction", got)
	}
	if c.Sum() != 7 {
		t.Fatalf("Sum = %v, want 7 from the legacy delta", c.Sum())
	}
}

func TestGobForwardCompatNewSenderOldCoordinator(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(Msg{
		Site: 3, Kind: DirectionAdd, T: 9, V: []float64{1, 2},
		Trace: 12345, Span: 678,
	}); err != nil {
		t.Fatal(err)
	}
	// An old coordinator decodes into the legacy shape; gob drops the
	// trace fields it does not know.
	var got legacyMsg
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("legacy decode of traced frame: %v", err)
	}
	if got.Site != 3 || got.Kind != DirectionAdd || got.T != 9 || len(got.V) != 2 {
		t.Fatalf("legacy decode mangled the frame: %+v", got)
	}
}

func TestHandleConnSurvivesMalformedFrames(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, m := range []Msg{
		{Site: 0, Kind: DirectionAdd, T: 1, V: []float64{1, 0}},
		{Site: 0, Kind: DirectionAdd, T: 2, V: []float64{1, 2, 3}}, // wrong dimension
		{Site: 0, Kind: Kind(99), T: 3},                            // unknown kind
		{Site: 0, Kind: DirectionAdd, T: 4, V: []float64{0, 1}},
	} {
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
	}

	c := NewCoordinator(2)
	if err := c.HandleConn(&buf); err != nil {
		t.Fatalf("HandleConn should ride out rejected frames, got %v", err)
	}
	cm := c.Metrics()
	if cm.Msgs != 2 {
		t.Fatalf("applied %d messages, want 2 (the well-formed ones)", cm.Msgs)
	}
	if cm.BadMsgs != 2 {
		t.Fatalf("BadMsgs = %d, want 2", cm.BadMsgs)
	}
}

// TestDA2WireAuditAndTraceChain is the end-to-end check of this layer's
// observability: DA2 sites stream over the wire into a coordinator with
// the live ε-error auditor shadowing the exact window, asserting the
// observed err(A_w, B) stays within the audited ε at every tick, and the
// causal tracer must produce at least one complete ingest→send→apply
// chain plus a query span, exported as valid Chrome trace JSON.
func TestDA2WireAuditAndTraceChain(t *testing.T) {
	const (
		d     = 8
		m     = 3
		w     = int64(500)
		slo   = 0.1 // the audited target ε
		local = slo / 2
		rows  = 3000
	)
	ring := trace.NewRing(1 << 14)
	c := NewCoordinator(d)
	c.SetTracer(trace.New(ring, 1))

	sites := make([]*DA2Site, m)
	for i := range sites {
		s, err := NewDA2Site(SiteConfig{ID: i, D: d, W: w, Eps: local}, Loopback{c})
		if err != nil {
			t.Fatal(err)
		}
		s.SetTracer(trace.New(ring, 1))
		sites[i] = s
	}

	aud, err := audit.New(audit.Config{
		D: d, W: w, Eps: slo,
		EveryRows: 64,
		Sketch:    c.Sketch,
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for i := int64(1); i <= rows; i++ {
		v := randRow(d, rng)
		si := rng.Intn(m)
		if err := sites[si].Observe(i, v); err != nil {
			t.Fatal(err)
		}
		for k, s := range sites {
			if k != si {
				if err := s.Advance(i); err != nil {
					t.Fatal(err)
				}
			}
		}
		aud.Observe(i, v)
	}

	am := aud.Metrics()
	if am.Ticks < rows/64 {
		t.Fatalf("audit ticked %d times, want ≥ %d", am.Ticks, rows/64)
	}
	if am.Violations != 0 {
		t.Fatalf("audit saw %d violations of ε=%g (max err %v)", am.Violations, slo, am.MaxErr)
	}
	for _, s := range aud.Samples() {
		if s.Err > slo {
			t.Fatalf("audit tick at t=%d observed err %v > ε=%g", s.T, s.Err, slo)
		}
		if s.Headroom != slo-s.Err {
			t.Fatalf("sample headroom %v inconsistent with err %v", s.Headroom, s.Err)
		}
	}

	// One query span so the export covers the whole vocabulary.
	_ = c.Sketch()

	// The ring must hold at least one complete causal chain:
	// ingest (root) ← send (child) ← apply (linked across the frame).
	spans := ring.Snapshot()
	byID := make(map[uint64]trace.SpanRec, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	chains := 0
	sawQuery := false
	for _, s := range spans {
		switch s.Op {
		case trace.OpQuery:
			sawQuery = true
		case trace.OpApply:
			send, ok := byID[s.Parent]
			if !ok || send.Op != trace.OpSend {
				continue
			}
			ingest, ok := byID[send.Parent]
			if !ok || ingest.Op != trace.OpIngest {
				continue
			}
			if s.Trace != send.Trace || send.Trace != ingest.Trace || ingest.ID != ingest.Trace {
				t.Fatalf("chain trace ids disagree: apply=%d send=%d ingest=%d (root id %d)",
					s.Trace, send.Trace, ingest.Trace, ingest.ID)
			}
			chains++
		}
	}
	if chains == 0 {
		t.Fatalf("no complete ingest→send→apply chain among %d retained spans", len(spans))
	}
	if !sawQuery {
		t.Fatal("no query span recorded")
	}

	// The export must be valid Chrome trace JSON covering those spans.
	js, err := ring.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(js, &doc); err != nil {
		t.Fatalf("Chrome trace export is not valid JSON: %v", err)
	}
	ops := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if name, _ := ev["name"].(string); name != "" {
			ops[name] = true
		}
	}
	for _, want := range []string{"ingest", "send", "apply", "query"} {
		if !ops[want] {
			t.Fatalf("Chrome export missing %q events (have %v)", want, ops)
		}
	}
}
