package wire

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"distwindow/internal/chaos"
	"distwindow/internal/obs"
	"distwindow/internal/obs/telemetry"
)

// TestFleetSmoke is the CI fleet-telemetry smoke (make fleet-smoke): a
// telemetry-enabled coordinator, two sites ingesting through
// chaos-injected resilient senders while publishing telemetry frames,
// and a Prometheus-format scrape of /metrics validated with the in-repo
// exposition parser. It asserts the acceptance criteria end to end: the
// exposition is syntactically valid, carries per-(site, stream) series
// with site/stream/protocol labels from live telemetry, and the data
// plane stayed exactly-once under the injected faults.
func TestFleetSmoke(t *testing.T)         { runFleetSmoke(t, Gob) }
func TestFleetSmokeBinaryV2(t *testing.T) { runFleetSmoke(t, BinaryV2) }

func runFleetSmoke(t *testing.T, cdc Codec) {
	const sites = 2
	const rowsPerSite = 200

	coord := NewCoordinator(2)
	coord.SetStaleAfter(30 * time.Second)
	fleet := coord.EnableTelemetry()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(ln)
	defer coord.Close()

	inj := chaos.New(chaos.Config{Seed: 42, PDrop: 0.05, PCut: 0.02, PReadCut: 0.02})
	addr := ln.Addr().String()

	type site struct {
		sender *ResilientSender
		pub    *telemetry.Publisher
		rows   obs.Counter
	}
	var fleetSites [sites]*site
	for i := 0; i < sites; i++ {
		s := &site{}
		sender, err := DialFunc(inj.Dial(func() (io.WriteCloser, error) {
			return net.DialTimeout("tcp", addr, time.Second)
		}), WithCodec(cdc))
		if err != nil {
			t.Fatal(err)
		}
		s.sender = sender
		stream := fmt.Sprintf("stream-%c", 'a'+i)
		base := CollectSite(i, stream, "SUM", s.rows.Load, s.sender)
		var lat obs.Histogram
		collect := func() telemetry.Frame {
			fr := base()
			fr.UpdateLat = lat.Snapshot()
			return fr
		}
		s.pub = telemetry.NewPublisher(collect, TelemetrySender(s.sender))
		s.pub.Start(5 * time.Millisecond)
		fleetSites[i] = s

		siteNo, streamID := i, stream
		go func() {
			for r := 0; r < rowsPerSite; r++ {
				start := time.Now()
				s.rows.Inc()
				_ = s.sender.Send(Msg{Site: siteNo, Kind: SumDelta, Delta: 1, StreamID: streamID})
				lat.Observe(time.Since(start))
			}
		}()
	}

	// Wait for every delta to land exactly once despite the chaos.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for i := 0; i < sites; i++ {
			stream := fmt.Sprintf("stream-%c", 'a'+i)
			if coord.SumOf(stream) != rowsPerSite {
				done = false
			}
			fleetSites[i].sender.Flush()
		}
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < sites; i++ {
		stream := fmt.Sprintf("stream-%c", 'a'+i)
		if got := coord.SumOf(stream); got != rowsPerSite {
			t.Fatalf("stream %s sum = %v, want %d (chaos broke exactly-once)", stream, got, rowsPerSite)
		}
	}
	// One final frame per site so the fleet sees the finished counters.
	for i := 0; i < sites; i++ {
		fleetSites[i].pub.Stop()
	}
	defer func() {
		for i := 0; i < sites; i++ {
			fleetSites[i].sender.DiscardPending = true
			_ = fleetSites[i].sender.Close()
		}
	}()
	wantFrames := func() bool {
		m := fleet.Snapshot()
		if len(m.Series) != sites {
			return false
		}
		for _, v := range m.Series {
			if v.Rows != rowsPerSite {
				return false
			}
		}
		return true
	}
	for time.Now().Before(deadline) && !wantFrames() {
		time.Sleep(5 * time.Millisecond)
	}
	if !wantFrames() {
		t.Fatalf("fleet never saw final frames: %+v", fleet.Snapshot().Series)
	}

	// Scrape /metrics the way Prometheus does and validate the exposition.
	srv := httptest.NewServer(coord.MetricsMux())
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var body strings.Builder
	_, _ = io.Copy(&body, resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("scrape Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	samples, err := obs.ParseProm(strings.NewReader(body.String()))
	if err != nil {
		t.Fatalf("exposition failed validation: %v\n%s", err, body.String())
	}

	// Per-(site, stream) series present with the full label set.
	seen := make(map[string]bool) // "name|site|stream"
	names := make(map[string]bool)
	for _, s := range samples {
		names[s.Name] = true
		var siteL, streamL, protoL string
		for _, l := range s.Labels {
			switch l.Name {
			case "site":
				siteL = l.Value
			case "stream":
				streamL = l.Value
			case "protocol":
				protoL = l.Value
			}
		}
		if siteL != "" && protoL != "" {
			seen[s.Name+"|"+siteL+"|"+streamL] = true
		}
	}
	for i := 0; i < sites; i++ {
		stream := fmt.Sprintf("stream-%c", 'a'+i)
		for _, fam := range []string{"distwindow_site_rows_total", "distwindow_site_words_per_second", "distwindow_site_replays_total"} {
			key := fmt.Sprintf("%s|%d|%s", fam, i, stream)
			if !seen[key] {
				t.Errorf("exposition missing %s for site %d stream %s", fam, i, stream)
			}
		}
	}
	for _, fam := range []string{
		"distwindow_coord_msgs_total",
		"distwindow_coord_dup_msgs_total",
		"distwindow_coord_telemetry_frames_total",
		"distwindow_update_latency_seconds_bucket",
		"distwindow_fleet_series",
	} {
		if !names[fam] {
			t.Errorf("exposition missing family %s", fam)
		}
	}

	// The merged fleet latency histogram carries the sites' observations.
	if lat := fleet.Snapshot().UpdateLat; lat.Count == 0 {
		t.Errorf("fleet latency histogram empty after %d observed rows", sites*rowsPerSite)
	}

	// The JSON path still works on the same endpoint.
	jresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	if ct := jresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("JSON path Content-Type = %q", ct)
	}
}
