package wire

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"distwindow/internal/obs"
	"distwindow/internal/trace"
)

// This file is the transport construction API: NewSender/Dial/DialFunc
// for the site side and the CoordinatorOption set for NewCoordinator,
// mirroring the facade's New(cfg, opts...) idiom. The pre-options
// constructors (NewConnSender, NewResilientSender, NewResilientSenderFunc)
// and mutators (SetSink, SetTracer, SetStaleAfter) remain as thin
// deprecated shims over this API.

// ErrOptionUnsupported reports an option that does not apply to the
// transport being built — e.g. WithResilience on NewSender, whose fixed
// connection cannot redial. Callers can errors.Is against it.
var ErrOptionUnsupported = errors.New("wire: option not supported by this transport")

// SenderOption configures a sender built by NewSender, Dial or DialFunc.
type SenderOption func(*senderOptions) error

type senderOptions struct {
	codec     Codec
	stream    string
	res       *ResilienceConfig
	resilient bool // the transport being built can honor WithResilience
}

// WithCodec selects the wire framing (Gob or BinaryV2). The default is
// Gob — the frame format every coordinator understands; BinaryV2 needs a
// codec-aware coordinator (see PROTOCOLS.md's negotiation matrix).
func WithCodec(c Codec) SenderOption {
	return func(o *senderOptions) error {
		if c == nil {
			return errors.New("wire: WithCodec(nil)")
		}
		o.codec = c
		return nil
	}
}

// WithStream sets the sender's default stream id: messages sent with an
// empty StreamID are stamped with it. Messages already stamped (e.g. via
// the Stream view) pass through unchanged, so a sender with a default
// stream can still multiplex others.
func WithStream(id string) SenderOption {
	return func(o *senderOptions) error {
		o.stream = id
		return nil
	}
}

// ResilienceConfig tunes the resilient delivery machinery; the zero
// value of each field keeps the corresponding default documented on
// ResilientSender.
type ResilienceConfig struct {
	// DialTimeout bounds each reconnection attempt (default 5s for Dial,
	// 1s for DialFunc).
	DialTimeout time.Duration
	// MaxBacklog bounds buffered unacknowledged messages (0 = unlimited).
	MaxBacklog int
	// MaxInflight is the per-connection flow-control window (0 keeps the
	// default of 64; negative = unlimited).
	MaxInflight int
	// BackoffBase and BackoffMax bound the exponential dial backoff.
	// Dial defaults to 50ms/5s; DialFunc leaves backoff disabled unless
	// BackoffBase is set.
	BackoffBase, BackoffMax time.Duration
	// JitterSeed seeds the dial-jitter RNG for reproducible runs (0 =
	// time-seeded for Dial, fixed seed 1 for DialFunc, as before).
	JitterSeed int64
	// DiscardPending lets Close drop undelivered messages silently.
	DiscardPending bool
}

// WithResilience tunes the reconnect/replay machinery of a sender built
// by Dial or DialFunc. NewSender rejects it with ErrOptionUnsupported: a
// sender over one fixed connection has nothing to redial.
func WithResilience(rc ResilienceConfig) SenderOption {
	return func(o *senderOptions) error {
		if !o.resilient {
			return fmt.Errorf("%w: WithResilience requires Dial or DialFunc", ErrOptionUnsupported)
		}
		o.res = &rc
		return nil
	}
}

func applySenderOptions(resilient bool, opts []SenderOption) (senderOptions, error) {
	o := senderOptions{codec: Gob, resilient: resilient}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return o, err
		}
	}
	return o, nil
}

// NewSender wraps one established connection in a sender: every Send is
// encoded in the configured codec (WithCodec, default Gob) and flushed
// through immediately. Delivery is as reliable as the connection — for
// reconnect-and-replay semantics use Dial or DialFunc instead.
func NewSender(conn io.WriteCloser, opts ...SenderOption) (*ConnSender, error) {
	o, err := applySenderOptions(false, opts)
	if err != nil {
		return nil, err
	}
	return &ConnSender{enc: o.codec.NewEncoder(conn), conn: conn, stream: o.stream}, nil
}

// Dial returns a resilient sender that (re)dials addr over TCP,
// delivering exactly-once via the seq/ack/replay machinery. Options:
// WithCodec, WithStream, WithResilience.
func Dial(addr string, opts ...SenderOption) (*ResilientSender, error) {
	o, err := applySenderOptions(true, opts)
	if err != nil {
		return nil, err
	}
	s := NewResilientSender(addr)
	configureResilient(s, o)
	return s, nil
}

// DialFunc is Dial over an arbitrary dial seam — fault-injection
// wrappers (package chaos), in-process pipes, tests. The returned conn's
// capabilities pick the delivery mode: an io.Reader gets the
// acknowledged path, a bare io.WriteCloser the retire-on-write one.
func DialFunc(dial func() (io.WriteCloser, error), opts ...SenderOption) (*ResilientSender, error) {
	o, err := applySenderOptions(true, opts)
	if err != nil {
		return nil, err
	}
	s := NewResilientSenderFunc(dial)
	configureResilient(s, o)
	return s, nil
}

func configureResilient(s *ResilientSender, o senderOptions) {
	s.codec = o.codec
	s.stream = o.stream
	if rc := o.res; rc != nil {
		if rc.DialTimeout > 0 {
			s.DialTimeout = rc.DialTimeout
		}
		if rc.MaxBacklog != 0 {
			s.MaxBacklog = rc.MaxBacklog
		}
		if rc.MaxInflight > 0 {
			s.MaxInflight = rc.MaxInflight
		} else if rc.MaxInflight < 0 {
			s.MaxInflight = 0
		}
		if rc.BackoffBase != 0 {
			s.BackoffBase = rc.BackoffBase
		}
		if rc.BackoffMax != 0 {
			s.BackoffMax = rc.BackoffMax
		}
		if rc.JitterSeed != 0 {
			s.rng = rand.New(rand.NewSource(rc.JitterSeed))
		}
		s.DiscardPending = rc.DiscardPending
	}
}

// CoordinatorOption configures a coordinator at construction. None of
// the options can fail, so NewCoordinator keeps its error-free
// signature; misuse (a nil dimension) still panics as before.
type CoordinatorOption func(*Coordinator)

// WithSink installs an event sink receiving one EvMsgReceived per
// applied message and one EvMsgRejected per malformed or corrupt frame
// (nil disables).
func WithSink(s obs.Sink) CoordinatorOption {
	return func(c *Coordinator) { c.sink = s }
}

// WithTracer installs a causal tracer (nil disables); see SetTracer for
// the span semantics.
func WithTracer(tr *trace.Tracer) CoordinatorOption {
	return func(c *Coordinator) { c.tracer = tr }
}

// WithStaleAfter configures the per-site liveness bound (0 disables
// staleness detection).
func WithStaleAfter(d time.Duration) CoordinatorOption {
	return func(c *Coordinator) { c.staleAfter = d }
}

// WithTelemetry attaches a fleet telemetry view at construction; read it
// back with Fleet(). Equivalent to calling EnableTelemetry before
// serving.
func WithTelemetry() CoordinatorOption {
	return func(c *Coordinator) { c.EnableTelemetry() }
}
