package wire

import (
	"math/rand"
	"testing"
)

func BenchmarkDA2SiteObserveLoopback(b *testing.B) {
	c := NewCoordinator(32)
	s, err := NewDA2Site(SiteConfig{ID: 0, D: 32, W: 4000, Eps: 0.1}, Loopback{c})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 4096)
	for i := range rows {
		rows[i] = randRow(32, rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Observe(int64(i+1), rows[i%len(rows)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoordinatorApply(b *testing.B) {
	c := NewCoordinator(64)
	rng := rand.New(rand.NewSource(2))
	v := randRow(64, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.Apply(Msg{Kind: DirectionAdd, V: v}); err != nil {
			b.Fatal(err)
		}
	}
}
