package wire

import (
	"math/rand"
	"testing"
)

// sumAdapter drives the scalar SUM site with the first row coordinate,
// so one split harness covers all four site kinds.
type sumAdapter struct{ s *SumSite }

func (a sumAdapter) Observe(t int64, v []float64) error { return a.s.Observe(t, v[0]) }
func (a sumAdapter) Advance(t int64) error              { return a.s.Advance(t) }

// recordSender collects every message a site pushes, in order.
type recordSender struct{ msgs []Msg }

func (r *recordSender) Send(m Msg) error {
	m.V = append([]float64(nil), m.V...)
	r.msgs = append(r.msgs, m)
	return nil
}

func sameMsgs(a, b []Msg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Site != y.Site || x.Kind != y.Kind || x.T != y.T || x.Delta != y.Delta || len(x.V) != len(y.V) {
			return false
		}
		for j := range x.V {
			if x.V[j] != y.V[j] {
				return false
			}
		}
	}
	return true
}

// runSiteSplit drives rows into a site, snapshotting and restoring at k,
// and requires the message stream to be bit-identical to an uninterrupted
// run — the property crash-recovery resync rests on: a restored site
// re-fed its input regenerates exactly the messages the crashed one sent.
func runSiteSplit(t *testing.T, proto string, k int) {
	t.Helper()
	const (
		d    = 5
		w    = int64(100)
		eps  = 0.25
		rows = 300
	)
	cfg := SiteConfig{ID: 3, D: d, W: w, Eps: eps}
	rng := rand.New(rand.NewSource(5))
	vs := make([][]float64, rows)
	for i := range vs {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vs[i] = v
	}

	type site interface {
		Observe(int64, []float64) error
		Advance(int64) error
	}
	build := func(out Sender) site {
		if proto == "sum" {
			s, err := NewSumSite(cfg, out)
			if err != nil {
				t.Fatal(err)
			}
			return sumAdapter{s}
		}
		var s site
		var err error
		switch proto {
		case "da1":
			s, err = NewDA1Site(cfg, out)
		case "da2":
			s, err = NewDA2Site(cfg, out)
		case "da2c":
			s, err = NewDA2CSite(cfg, out)
		}
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	snapshotRestore := func(s site, out Sender) site {
		var r site
		var err error
		switch v := s.(type) {
		case *DA1Site:
			r, err = RestoreDA1Site(v.Snapshot(), out)
		case *DA2Site:
			r, err = RestoreDA2Site(v.Snapshot(), out)
		case sumAdapter:
			var rs *SumSite
			rs, err = RestoreSumSite(v.s.Snapshot(), out)
			r = sumAdapter{rs}
		}
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	ref := &recordSender{}
	refSite := build(ref)
	for i, v := range vs {
		if err := refSite.Observe(int64(i+1), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := refSite.Advance(rows); err != nil {
		t.Fatal(err)
	}

	split := &recordSender{}
	half := build(split)
	for i := 0; i < k; i++ {
		if err := half.Observe(int64(i+1), vs[i]); err != nil {
			t.Fatal(err)
		}
	}
	restored := snapshotRestore(half, split)
	for i := k; i < rows; i++ {
		if err := restored.Observe(int64(i+1), vs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := restored.Advance(rows); err != nil {
		t.Fatal(err)
	}

	if !sameMsgs(ref.msgs, split.msgs) {
		t.Fatalf("proto %s split at %d: restored site diverged (%d vs %d messages)",
			proto, k, len(split.msgs), len(ref.msgs))
	}
	if len(ref.msgs) == 0 {
		t.Fatalf("proto %s sent no messages; the round-trip tested nothing", proto)
	}
}

func TestSiteCheckpointRoundTrip(t *testing.T) {
	for _, proto := range []string{"da1", "da2", "da2c", "sum"} {
		for _, k := range []int{57, 150, 249} {
			t.Run(proto, func(t *testing.T) { runSiteSplit(t, proto, k) })
		}
	}
}

func TestRestoreSiteRejectsBadState(t *testing.T) {
	out := &recordSender{}
	if _, err := RestoreDA1Site(DA1SiteState{Cfg: SiteConfig{ID: 0, D: 0, W: 10, Eps: 0.2}}, out); err == nil {
		t.Fatal("want error for invalid config in DA1 state")
	}
	if _, err := RestoreDA2Site(DA2SiteState{Cfg: SiteConfig{ID: 0, D: 3, W: 0, Eps: 0.2}}, out); err == nil {
		t.Fatal("want error for invalid config in DA2 state")
	}
}
