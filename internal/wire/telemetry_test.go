package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"distwindow/internal/obs"
	"distwindow/internal/obs/telemetry"
)

// preTelemetryMsg mirrors the pre-telemetry wire Msg field for field —
// the stand-in for an old-version peer, following the preStreamMsg
// pattern: gob matches fields by name, so decoding into this shows what
// an old coordinator sees of a telemetry-bearing stream.
type preTelemetryMsg struct {
	Site        int
	Kind        Kind
	T           int64
	V           []float64
	Delta       float64
	Trace, Span uint64
	Seq         uint64
	StreamID    string
}

// TestTelemetryGobMixedVersion pins the telemetry compatibility
// contract: a telemetry frame decodes at an old coordinator — the Tele
// field skipped, the unknown kind rejected — without desynchronizing the
// gob stream, so the data frames around it still apply.
func TestTelemetryGobMixedVersion(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)

	// A new sender interleaves data and telemetry on one stream.
	data1 := Msg{Site: 0, Kind: SumDelta, Delta: 1.5, Seq: 1}
	tele := Msg{Site: 0, Kind: Telemetry, Tele: &telemetry.Frame{Site: 0, Rows: 42, Proto: "SUM"}}
	data2 := Msg{Site: 0, Kind: SumDelta, Delta: 2.5, Seq: 2}
	for _, m := range []Msg{data1, tele, data2} {
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
	}

	// The old coordinator decodes all three frames — no stream
	// desynchronization from the unknown Tele field.
	dec := gob.NewDecoder(&buf)
	var got []preTelemetryMsg
	for i := 0; i < 3; i++ {
		var m preTelemetryMsg
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("old coordinator failed on frame %d: %v", i, err)
		}
		got = append(got, m)
	}
	if got[0].Delta != 1.5 || got[2].Delta != 2.5 {
		t.Fatalf("data frames mangled around telemetry: %+v", got)
	}
	// The telemetry frame surfaces as an unknown kind the old Apply
	// rejects (BadMsgs) without dropping the connection.
	if got[1].Kind != Telemetry {
		t.Fatalf("telemetry frame kind = %d", got[1].Kind)
	}

	// And the reverse: an old sender's frames decode at a new coordinator
	// with Tele nil.
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(preTelemetryMsg{Site: 1, Kind: SumDelta, Delta: 3, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	var niu Msg
	if err := gob.NewDecoder(&buf).Decode(&niu); err != nil {
		t.Fatalf("new side cannot decode legacy frame: %v", err)
	}
	if niu.Tele != nil || niu.Delta != 3 {
		t.Fatalf("legacy frame decoded as %+v", niu)
	}
}

// TestOldCoordinatorIgnoresTelemetryCleanly drives a telemetry frame
// through a coordinator that has NOT enabled telemetry and checks the
// "ignore cleanly" half of the contract at the Apply layer: the frame is
// counted, the estimates, traffic counters and liveness records stay
// untouched, and the connection-level handler keeps consuming.
func TestOldCoordinatorIgnoresTelemetryCleanly(t *testing.T) {
	c := NewCoordinator(2)
	if err := c.Apply(Msg{Site: 0, Kind: SumDelta, Delta: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	before := c.Metrics()

	fr := telemetry.Frame{Site: 0, Rows: 10}
	if err := c.Apply(Msg{Site: 0, Kind: Telemetry, Tele: &fr}); err != nil {
		t.Fatalf("telemetry frame errored: %v", err)
	}
	after := c.Metrics()
	if after.TelemetryFrames != 1 {
		t.Fatalf("TelemetryFrames = %d, want 1", after.TelemetryFrames)
	}
	if after.Msgs != before.Msgs || after.Bytes != before.Bytes || after.BadMsgs != before.BadMsgs {
		t.Fatalf("telemetry perturbed data accounting: before %+v after %+v", before, after)
	}
	if c.Sum() != 1 {
		t.Fatalf("estimate moved: %v", c.Sum())
	}
	// Liveness untouched: a telemetry-only site never appears.
	if err := c.Apply(Msg{Site: 9, Kind: Telemetry, Tele: &fr}); err != nil {
		t.Fatal(err)
	}
	for _, st := range c.SiteStatuses() {
		if st.Site == 9 {
			t.Fatalf("telemetry frame created a liveness record: %+v", st)
		}
	}
}

// TestTelemetryOutsideSeqSpace checks the determinism guarantee: with
// telemetry frames interleaved, the coordinator's estimates, Msgs/Bytes,
// dedup and ack accounting are bit-identical to a run without them.
func TestTelemetryOutsideSeqSpace(t *testing.T) {
	run := func(withTele bool) (CoordinatorMetrics, float64) {
		c := NewCoordinator(2)
		fleet := c.EnableTelemetry()
		_ = fleet
		srv, cli := net.Pipe()
		done := make(chan struct{})
		go func() { defer close(done); _ = c.HandleConn(srv) }()
		enc := gob.NewEncoder(cli)
		ackDone := make(chan struct{})
		allAcked := make(chan struct{})
		go func() { // drain acks so the pipe never blocks
			defer close(ackDone)
			dec := gob.NewDecoder(cli)
			n := 0
			for {
				var a Ack
				if dec.Decode(&a) != nil {
					return
				}
				if n++; n == 20 {
					close(allAcked)
				}
			}
		}()
		for i := 1; i <= 20; i++ {
			if err := enc.Encode(Msg{Site: 0, Kind: SumDelta, Delta: float64(i), Seq: uint64(i)}); err != nil {
				t.Fatal(err)
			}
			if withTele && i%5 == 0 {
				fr := telemetry.Frame{Site: 0, Rows: int64(i)}
				if err := enc.Encode(Msg{Site: 0, Kind: Telemetry, Tele: &fr}); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Wait for every data frame's ack before closing, so shutdown
		// timing cannot differ between the two runs.
		<-allAcked
		cli.Close()
		<-done
		<-ackDone
		m := c.Metrics()
		m.TelemetryFrames = 0 // the only counter allowed to differ
		return m, c.Sum()
	}
	mOff, sumOff := run(false)
	mOn, sumOn := run(true)
	if mOff != mOn {
		t.Fatalf("telemetry perturbed coordinator accounting:\noff %+v\non  %+v", mOff, mOn)
	}
	if sumOff != sumOn {
		t.Fatalf("telemetry perturbed the estimate: %v vs %v", sumOff, sumOn)
	}
}

// TestSendBestEffortBypassesBacklog checks the sender half of the
// seq/ack exclusion: best-effort sends carry Seq 0, never enter the
// backlog, and a dead connection drops the frame instead of buffering.
func TestSendBestEffortBypassesBacklog(t *testing.T) {
	c := NewCoordinator(2)
	c.EnableTelemetry()
	var mu sync.Mutex
	var conns []net.Conn
	dead := false
	dial := func() (io.WriteCloser, error) {
		mu.Lock()
		isDead := dead
		mu.Unlock()
		if isDead {
			return nil, errors.New("coordinator unreachable")
		}
		srv, cli := net.Pipe()
		go func() { _ = c.HandleConn(srv) }()
		mu.Lock()
		conns = append(conns, cli)
		mu.Unlock()
		return cli, nil
	}
	s := NewResilientSenderFunc(dial)
	defer func() { s.DiscardPending = true; _ = s.Close() }()

	// A data frame establishes the connection and the seq space.
	if err := s.Send(Msg{Site: 0, Kind: SumDelta, Delta: 1}); err != nil {
		t.Fatal(err)
	}
	fr := telemetry.Frame{Site: 0, Rows: 5}
	if err := s.SendBestEffort(Msg{Site: 0, Kind: Telemetry, Tele: &fr, Seq: 999}); err != nil {
		t.Fatalf("best-effort send: %v", err)
	}
	// The telemetry frame is not in the backlog and did not consume a
	// sequence number.
	if n := s.Pending(); n > 1 {
		t.Fatalf("backlog = %d after best-effort send, want ≤ 1 (the data frame)", n)
	}
	s.mu.Lock()
	seq := s.nextSeq
	s.mu.Unlock()
	if seq != 1 {
		t.Fatalf("best-effort send consumed a sequence number: nextSeq = %d", seq)
	}

	waitFor(t, func() bool { return c.Fleet().Snapshot().FramesTotal == 1 })

	// Kill the connection and the dial seam: best-effort reports the
	// error, nothing buffers.
	mu.Lock()
	dead = true
	for _, conn := range conns {
		conn.Close()
	}
	mu.Unlock()
	pendingBefore := -1
	for i := 0; i < 100; i++ {
		if err := s.SendBestEffort(Msg{Site: 0, Kind: Telemetry, Tele: &fr}); err != nil {
			pendingBefore = s.Pending()
			break
		}
		time.Sleep(time.Millisecond)
	}
	if pendingBefore < 0 {
		t.Fatalf("best-effort send never failed on a dead connection")
	}
	if got := s.Pending(); got != pendingBefore {
		t.Fatalf("failed best-effort send grew the backlog: %d -> %d", pendingBefore, got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition never became true")
}

// TestTelemetrySenderEndToEnd runs publishers at two sites through
// resilient senders into a telemetry-enabled coordinator and checks the
// fleet view and the Prometheus exposition served by MetricsMux.
func TestTelemetrySenderEndToEnd(t *testing.T) {
	c := NewCoordinator(2)
	fleet := c.EnableTelemetry()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go c.Serve(ln)
	defer c.Close()

	var rows0, rows1 obs.Counter
	mkSite := func(site int, rows *obs.Counter) (*ResilientSender, *telemetry.Publisher) {
		s := NewResilientSender(ln.Addr().String())
		collect := CollectSite(site, "", "DA2", rows.Load, s)
		pub := telemetry.NewPublisher(collect, TelemetrySender(s))
		return s, pub
	}
	s0, p0 := mkSite(0, &rows0)
	s1, p1 := mkSite(1, &rows1)
	defer func() {
		s0.DiscardPending, s1.DiscardPending = true, true
		_ = s0.Close()
		_ = s1.Close()
	}()

	// Some data traffic so the senders have live connections and counters.
	for i := 1; i <= 10; i++ {
		rows0.Inc()
		if err := s0.Send(Msg{Site: 0, Kind: SumDelta, Delta: 1}); err != nil {
			t.Fatal(err)
		}
	}
	rows1.Add(3)
	if err := s1.Send(Msg{Site: 1, Kind: SumDelta, Delta: 1}); err != nil {
		t.Fatal(err)
	}

	if err := p0.Publish(); err != nil {
		t.Fatalf("site 0 publish: %v", err)
	}
	if err := p1.Publish(); err != nil {
		t.Fatalf("site 1 publish: %v", err)
	}

	waitFor(t, func() bool { return fleet.Snapshot().FramesTotal >= 2 })
	m := fleet.Snapshot()
	if len(m.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(m.Series))
	}
	if m.Series[0].Rows != 10 || m.Series[1].Rows != 3 {
		t.Fatalf("fleet rows = %d/%d, want 10/3", m.Series[0].Rows, m.Series[1].Rows)
	}

	// MetricsMux: JSON by default, Prometheus when negotiated, dashboard
	// mounted.
	mux := c.MetricsMux()
	srv := httptest.NewServer(mux)
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := new(strings.Builder)
	_, _ = io.Copy(body, resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("negotiated Content-Type = %q", ct)
	}
	samples, err := obs.ParseProm(strings.NewReader(body.String()))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body.String())
	}
	found := make(map[string]bool)
	for _, s := range samples {
		found[s.Name] = true
	}
	for _, name := range []string{
		"distwindow_coord_msgs_total",
		"distwindow_coord_telemetry_frames_total",
		"distwindow_site_rows_total",
		"distwindow_update_latency_seconds_count",
	} {
		if !found[name] {
			t.Errorf("exposition missing %s", name)
		}
	}

	resp, err = http.Get(srv.URL + "/debug/fleet")
	if err != nil {
		t.Fatal(err)
	}
	page := new(strings.Builder)
	_, _ = io.Copy(page, resp.Body)
	resp.Body.Close()
	if !strings.Contains(page.String(), "fleet telemetry") {
		t.Fatalf("/debug/fleet not serving the dashboard")
	}
}
