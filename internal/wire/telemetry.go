package wire

import (
	"io"

	"distwindow/internal/obs"
	"distwindow/internal/obs/telemetry"
)

// This file glues the fleet telemetry plane (internal/obs/telemetry) to
// the wire: frames ride the existing site→coordinator connection as a
// dedicated message kind, best-effort and outside the seq/ack space, and
// the coordinator folds them into a Fleet whose degraded-site view is
// unified with the wire's own frame-level liveness.

// TeleFrame is the telemetry frame type carried by Telemetry messages.
type TeleFrame = telemetry.Frame

// EnableTelemetry attaches a fleet view to the coordinator: telemetry
// frames are recorded into it, its degraded-site detection folds in the
// coordinator's SiteStatuses liveness, and MetricsMux gains the
// Prometheus exposition and the /debug/fleet dashboard. Call before
// serving; returns the fleet for direct inspection (Snapshot, History).
// Calling again returns the existing fleet.
func (c *Coordinator) EnableTelemetry() *telemetry.Fleet {
	if c.fleet == nil {
		f := telemetry.NewFleet()
		f.SetDegradedSource(func() []int {
			var stale []int
			seen := make(map[int]bool)
			for _, st := range c.SiteStatuses() {
				if st.Stale && !seen[st.Site] {
					seen[st.Site] = true
					stale = append(stale, st.Site)
				}
			}
			return stale
		})
		c.fleet = f
	}
	return c.fleet
}

// Fleet returns the attached fleet view (nil until EnableTelemetry).
func (c *Coordinator) Fleet() *telemetry.Fleet { return c.fleet }

// WritePrometheusTo writes the coordinator's counters and, when telemetry
// is enabled, the fleet's per-(site, stream) series in the Prometheus
// text exposition format — the source MetricsMux serves for scrapers.
func (c *Coordinator) WritePrometheusTo(w io.Writer) error {
	pw := obs.NewPromWriter(w)
	m := c.Metrics()
	pw.Counter("distwindow_coord_msgs_total", "Estimate messages folded into the coordinator.", nil, float64(m.Msgs))
	pw.Counter("distwindow_coord_bytes_total", "Approximate payload bytes received.", nil, float64(m.Bytes))
	for _, kc := range []struct {
		kind string
		v    int64
	}{
		{"direction_add", m.DirectionAdds},
		{"direction_remove", m.DirectionRemoves},
		{"sum_delta", m.SumDeltas},
	} {
		pw.Counter("distwindow_coord_msgs_by_kind_total", "Estimate messages by kind.",
			[]obs.Label{{Name: "kind", Value: kc.kind}}, float64(kc.v))
	}
	pw.Counter("distwindow_coord_bad_msgs_total", "Messages rejected (dimension mismatch, unknown kind).", nil, float64(m.BadMsgs))
	pw.Counter("distwindow_coord_dup_msgs_total", "Sequenced frames dropped as already-consumed replays.", nil, float64(m.DupMsgs))
	pw.Counter("distwindow_coord_acks_total", "Acknowledgements written back to sites.", nil, float64(m.AckedMsgs))
	pw.Counter("distwindow_coord_telemetry_frames_total", "Telemetry frames received.", nil, float64(m.TelemetryFrames))
	pw.Gauge("distwindow_coord_sites", "Distinct site ids heard from.", nil, float64(m.SitesSeen))
	pw.Gauge("distwindow_coord_streams", "Distinct logical streams heard from.", nil, float64(m.Streams))
	pw.Gauge("distwindow_coord_stale_sites", "(site, stream) senders past the liveness bound.", nil, float64(m.StaleSites))
	pw.Gauge("distwindow_coord_conns", "Currently connected sites.", nil, float64(m.Conns))
	if c.fleet != nil {
		c.fleet.WritePrometheus(pw)
	}
	return pw.Err()
}

// BestEffortSender is implemented by transports that can ship a message
// outside the delivery guarantees — no sequence number, no backlog, no
// replay. ResilientSender implements it; telemetry uses it so a dead
// connection costs a dropped frame, never buffered telemetry competing
// with estimate traffic for the backlog.
type BestEffortSender interface {
	SendBestEffort(Msg) error
}

// TelemetrySender adapts a wire Sender into the telemetry publisher's
// send seam: each frame is wrapped in a Telemetry message stamped with
// the frame's site and stream. When out supports best-effort delivery
// the frame bypasses the seq/ack space entirely; otherwise it is sent as
// an unsequenced legacy frame (Loopback, plain ConnSender).
func TelemetrySender(out Sender) func(telemetry.Frame) error {
	return func(fr telemetry.Frame) error {
		m := Msg{
			Site:     fr.Site,
			Kind:     Telemetry,
			StreamID: fr.Stream,
			Tele:     &fr,
		}
		if be, ok := out.(BestEffortSender); ok {
			return be.SendBestEffort(m)
		}
		return out.Send(m)
	}
}

// CollectSite builds a telemetry frame source for one protocol site
// behind a resilient sender: rows from the caller's counter (a closure
// over the ingest loop's row count) and delivery counters from the
// sender. Wire sites do not track word counts, so Words stays 0 here;
// facade deployments get it from Tracker.TelemetryFrame instead.
//
// It is a convenience for the common distrun/sketchd shape; deployments
// with richer sources (auditors, latency histograms) wrap it and fill
// the extra fields:
//
//	base := wire.CollectSite(id, stream, proto, rows.Load, rs)
//	collect := func() telemetry.Frame {
//		fr := base()
//		fr.Eps, fr.Headroom = eps, aud.Metrics().Headroom
//		return fr
//	}
func CollectSite(site int, stream, proto string, rows func() int64, rs *ResilientSender) func() telemetry.Frame {
	return func() telemetry.Frame {
		fr := telemetry.Frame{
			Site:   site,
			Stream: stream,
			Proto:  proto,
		}
		if rows != nil {
			fr.Rows = rows()
		}
		if rs != nil {
			m := rs.Metrics()
			fr.Msgs = m.Msgs
			fr.Replays = m.Replayed
			fr.Acked = m.Acked
			fr.Backlog = m.Pending
			fr.Dials = m.DialAttempts
			fr.DialFails = m.DialFailures
		}
		return fr
	}
}
