package wire

import (
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"distwindow/internal/chaos"
)

// The chaos soak drives the same seeded workload twice — once fault-free,
// once under seeded transport faults plus a mid-stream site crash restored
// from a checkpoint — and requires the coordinator's final estimate to be
// BIT-IDENTICAL. Floating-point addition is order-sensitive, so the soak
// serializes delivery: after every row it waits until the row's site has
// an empty backlog (acks received) before feeding the next row. That
// pins the coordinator's apply order; the delivery guarantee under test
// is that faults and recovery change NOTHING — not the set of applied
// deltas, not their order, not a single bit of the estimate.

// soakResult is everything the two runs must agree on.
type soakResult struct {
	chat []float64
	sum  float64
	cm   CoordinatorMetrics
}

// soakSite abstracts the per-protocol site over the crash/restore cycle.
type soakSite struct {
	observe func(int64, []float64) error
	advance func(int64) error
	// checkpoint captures the site's protocol state; the returned restore
	// builds a fresh site from it pushing to a new sender.
	checkpoint func() func(out Sender) (*soakSite, error)
}

func newSoakSite(t *testing.T, proto string, cfg SiteConfig, out Sender) *soakSite {
	t.Helper()
	switch proto {
	case "da1":
		s, err := NewDA1Site(cfg, out)
		if err != nil {
			t.Fatal(err)
		}
		return wrapDA1(s)
	case "da2", "da2c":
		var s *DA2Site
		var err error
		if proto == "da2" {
			s, err = NewDA2Site(cfg, out)
		} else {
			s, err = NewDA2CSite(cfg, out)
		}
		if err != nil {
			t.Fatal(err)
		}
		return wrapDA2(s)
	}
	t.Fatalf("unknown soak protocol %q", proto)
	return nil
}

func wrapDA1(s *DA1Site) *soakSite {
	return &soakSite{
		observe: s.Observe,
		advance: s.Advance,
		checkpoint: func() func(Sender) (*soakSite, error) {
			st := s.Snapshot()
			return func(out Sender) (*soakSite, error) {
				r, err := RestoreDA1Site(st, out)
				if err != nil {
					return nil, err
				}
				return wrapDA1(r), nil
			}
		},
	}
}

func wrapDA2(s *DA2Site) *soakSite {
	return &soakSite{
		observe: s.Observe,
		advance: s.Advance,
		checkpoint: func() func(Sender) (*soakSite, error) {
			st := s.Snapshot()
			return func(out Sender) (*soakSite, error) {
				r, err := RestoreDA2Site(st, out)
				if err != nil {
					return nil, err
				}
				return wrapDA2(r), nil
			}
		},
	}
}

// runSoak streams the seeded workload into a real TCP coordinator. With
// inj non-nil every connection draws faults from it; with crash true,
// site 0 is killed mid-stream and resumed from its last checkpoint plus a
// re-feed of the rows observed since — the crashed process's input replay.
func runSoak(t *testing.T, proto string, inj *chaos.Injector, crash bool, cdc Codec) soakResult {
	t.Helper()
	const (
		d       = 6
		w       = int64(120)
		eps     = 0.2
		sites   = 2
		rows    = 360
		cpAt    = 150 // site-0 checkpoint row (global index)
		crashAt = 260 // site-0 crash row (global index)
	)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	coord := NewCoordinator(d)
	coord.SetStaleAfter(30 * time.Second)
	go coord.Serve(ln)
	defer coord.Close()

	newSender := func(jitterSeed int64) *ResilientSender {
		dial := func() (io.WriteCloser, error) {
			return net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
		}
		if inj != nil {
			dial = inj.Dial(dial)
		}
		s, err := DialFunc(dial, WithCodec(cdc), WithResilience(ResilienceConfig{
			BackoffBase: time.Millisecond,
			BackoffMax:  8 * time.Millisecond,
			JitterSeed:  jitterSeed,
		}))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	senders := make([]*ResilientSender, sites)
	ss := make([]*soakSite, sites)
	for i := 0; i < sites; i++ {
		senders[i] = newSender(int64(i) + 1)
		ss[i] = newSoakSite(t, proto, SiteConfig{ID: i, D: d, W: w, Eps: eps}, senders[i])
	}

	// Seeded workload: row i goes to site i%sites, so both runs stream the
	// identical per-site subsequences.
	rng := rand.New(rand.NewSource(99))
	type row struct {
		t int64
		v []float64
	}
	evs := make([]row, rows)
	for i := range evs {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		evs[i] = row{t: int64(i + 1), v: v}
	}

	// wait blocks until the site's backlog is fully acknowledged; Flush
	// inside the loop retries dials killed by faults.
	wait := func(si int) {
		deadline := time.Now().Add(20 * time.Second)
		for senders[si].Pending() > 0 {
			if time.Now().After(deadline) {
				t.Fatalf("site %d: %d frames still unacknowledged (metrics %+v)", si, senders[si].Pending(), senders[si].Metrics())
			}
			senders[si].Flush()
			time.Sleep(200 * time.Microsecond)
		}
	}

	var restore func(Sender) (*soakSite, error)
	var senderCP SenderState
	var since []row // site-0 rows observed after the checkpoint

	for i, e := range evs {
		si := i % sites
		if err := ss[si].observe(e.t, e.v); err != nil {
			t.Fatalf("site %d row %d: %v", si, i, err)
		}
		wait(si)
		if si == 0 && restore != nil {
			since = append(since, e)
		}
		switch {
		case crash && i == cpAt:
			// Checkpoint site 0: protocol state + sender replay state. The
			// backlog is empty here (the soak drains per row), so the
			// checkpoint's job is carrying the sequence counter forward.
			restore = ss[0].checkpoint()
			senderCP = senders[0].State()
		case crash && i == crashAt:
			// Crash site 0: the process is gone, its in-memory state with
			// it. Resume from the checkpoint, re-feed the rows observed
			// since, and let the coordinator's dedup discard the deltas it
			// already consumed.
			senders[0].DiscardPending = true
			senders[0].Close()
			senders[0] = newSender(101)
			if err := senders[0].RestoreState(senderCP); err != nil {
				t.Fatal(err)
			}
			rs, err := restore(senders[0])
			if err != nil {
				t.Fatal(err)
			}
			ss[0] = rs
			for _, r := range since {
				if err := ss[0].observe(r.t, r.v); err != nil {
					t.Fatalf("re-feed t=%d: %v", r.t, err)
				}
				wait(0)
			}
		}
	}
	for si := 0; si < sites; si++ {
		if err := ss[si].advance(int64(rows)); err != nil {
			t.Fatalf("site %d advance: %v", si, err)
		}
		wait(si)
	}
	for si := 0; si < sites; si++ {
		senders[si].Close()
	}

	snap := coord.Snapshot()
	return soakResult{chat: snap.Chat, sum: coord.Sum(), cm: coord.Metrics()}
}

func soakInjector() *chaos.Injector {
	return chaos.New(chaos.Config{
		Seed:  2026,
		PDrop: 0.04, PCut: 0.03, PDup: 0.05,
		PReadCut: 0.02, PDialFail: 0.1,
	})
}

func runChaosSoak(t *testing.T, proto string, cdc Codec) {
	if testing.Short() {
		t.Skip("chaos soak is a multi-second TCP test")
	}
	clean := runSoak(t, proto, nil, false, cdc)
	inj := soakInjector()
	faulty := runSoak(t, proto, inj, true, cdc)

	if len(clean.chat) != len(faulty.chat) {
		t.Fatalf("estimate sizes differ: %d vs %d", len(clean.chat), len(faulty.chat))
	}
	for i := range clean.chat {
		if clean.chat[i] != faulty.chat[i] {
			t.Fatalf("Ĉ[%d] differs: fault-free %v, chaos %v — delivery was not exactly-once in order",
				i, clean.chat[i], faulty.chat[i])
		}
	}
	if clean.sum != faulty.sum {
		t.Fatalf("Sum differs: %v vs %v", clean.sum, faulty.sum)
	}
	if clean.cm.Msgs != faulty.cm.Msgs {
		t.Fatalf("applied-message counts differ: fault-free %d, chaos %d — a delta was lost or double-applied",
			clean.cm.Msgs, faulty.cm.Msgs)
	}
	if faulty.cm.BadMsgs != 0 {
		t.Fatalf("%d frames rejected under chaos", faulty.cm.BadMsgs)
	}
	st := inj.Stats()
	// The accepted-but-undelivered drop is the fault this PR exists for;
	// the soak must actually exercise it, plus at least one other family.
	if st.Drops == 0 || st.Cuts+st.Dups+st.ReadCuts+st.DialFails == 0 {
		t.Fatalf("chaos fault mix too thin (stats %+v); the soak proved nothing", st)
	}
	t.Logf("proto %s: %d applied msgs, %d deduped replays; chaos %+v", proto, faulty.cm.Msgs, faulty.cm.DupMsgs, st)
}

func TestChaosSoakDA1(t *testing.T)  { runChaosSoak(t, "da1", Gob) }
func TestChaosSoakDA2(t *testing.T)  { runChaosSoak(t, "da2", Gob) }
func TestChaosSoakDA2C(t *testing.T) { runChaosSoak(t, "da2c", Gob) }

// The binary v2 soaks pin the codec-independence of the delivery
// guarantee: the same workload under the same seeded faults must produce
// the same bit-identical estimate whether the frames travel as gob or as
// v2 binary (with its coalesced batches and CRC-checked frames).
func TestChaosSoakDA1BinaryV2(t *testing.T) { runChaosSoak(t, "da1", BinaryV2) }
func TestChaosSoakDA2BinaryV2(t *testing.T) { runChaosSoak(t, "da2", BinaryV2) }
