package wire

import (
	"bytes"
	"encoding/gob"
	"io"
	"math"
	"math/rand"
	"net"
	"testing"
	"time"

	"distwindow/internal/chaos"
	"distwindow/mat"
)

// preStreamMsg/preStreamAck mirror the pre-StreamID wire structs field for
// field. Gob matches struct fields by name, so these stand in for an
// old-version peer: encoding one produces exactly the bytes an old
// sender would put on the wire, and decoding into one shows what an old
// coordinator sees of a new frame.
type preStreamMsg struct {
	Site        int
	Kind        Kind
	T           int64
	V           []float64
	Delta       float64
	Trace, Span uint64
	Seq         uint64
}

type preStreamAck struct {
	Seq uint64
}

// TestMsgGobMixedVersion pins the StreamID compatibility contract in
// both directions: old frames decode at a new coordinator onto the
// default stream, and new frames decode at an old coordinator with the
// stream tag silently dropped. Same for acks.
func TestMsgGobMixedVersion(t *testing.T) {
	// Old sender → new coordinator.
	var buf bytes.Buffer
	old := preStreamMsg{Site: 3, Kind: DirectionAdd, T: 77, V: []float64{1, 2}, Delta: 0.5, Seq: 9}
	if err := gob.NewEncoder(&buf).Encode(old); err != nil {
		t.Fatal(err)
	}
	var got Msg
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("new side cannot decode legacy frame: %v", err)
	}
	if got.StreamID != "" {
		t.Fatalf("legacy frame decoded with StreamID %q, want default", got.StreamID)
	}
	if got.Site != 3 || got.Seq != 9 || got.T != 77 || len(got.V) != 2 {
		t.Fatalf("legacy frame fields mangled: %+v", got)
	}

	// New sender → old coordinator, non-default stream: the tag is
	// dropped, everything else survives.
	buf.Reset()
	niu := Msg{Site: 1, Kind: SumDelta, T: 5, Delta: 2.5, Seq: 4, StreamID: "metrics-eu"}
	if err := gob.NewEncoder(&buf).Encode(niu); err != nil {
		t.Fatal(err)
	}
	var oldGot preStreamMsg
	if err := gob.NewDecoder(&buf).Decode(&oldGot); err != nil {
		t.Fatalf("old side cannot decode stream-tagged frame: %v", err)
	}
	if oldGot.Site != 1 || oldGot.Seq != 4 || oldGot.Delta != 2.5 {
		t.Fatalf("stream-tagged frame fields mangled at old decoder: %+v", oldGot)
	}

	// Old coordinator → new sender: an untagged ack decodes with Stream
	// "" and retires only the default stream.
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(preStreamAck{Seq: 12}); err != nil {
		t.Fatal(err)
	}
	var ack Ack
	if err := gob.NewDecoder(&buf).Decode(&ack); err != nil {
		t.Fatalf("new side cannot decode legacy ack: %v", err)
	}
	if ack.Seq != 12 || ack.Stream != "" {
		t.Fatalf("legacy ack decoded as %+v", ack)
	}

	// New coordinator → old sender: the stream tag is dropped; the old
	// sender sees a plain cumulative ack.
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(Ack{Seq: 30, Stream: "metrics-eu"}); err != nil {
		t.Fatal(err)
	}
	var oldAck preStreamAck
	if err := gob.NewDecoder(&buf).Decode(&oldAck); err != nil {
		t.Fatalf("old side cannot decode stream-tagged ack: %v", err)
	}
	if oldAck.Seq != 30 {
		t.Fatalf("stream-tagged ack mangled at old decoder: %+v", oldAck)
	}
}

// captureSender records sent frames.
type captureSender struct{ msgs []Msg }

func (c *captureSender) Send(m Msg) error {
	c.msgs = append(c.msgs, m)
	return nil
}

func TestStreamOf(t *testing.T) {
	var cap captureSender
	if got := StreamOf(&cap, ""); got != Sender(&cap) {
		t.Fatal("StreamOf with the default stream should return the sender unchanged")
	}
	s := StreamOf(&cap, "a")
	if err := s.Send(Msg{Site: 1, Kind: DirectionAdd}); err != nil {
		t.Fatal(err)
	}
	if len(cap.msgs) != 1 || cap.msgs[0].StreamID != "a" {
		t.Fatalf("sent %+v, want StreamID a", cap.msgs)
	}
}

// TestCoordinatorMultiStream drives one coordinator with interleaved
// frames from three streams and checks the estimates, sequence spaces
// and metrics stay fully separated.
func TestCoordinatorMultiStream(t *testing.T) {
	c := NewCoordinator(2)
	send := func(stream string, seq uint64, v []float64) {
		t.Helper()
		if err := c.Apply(Msg{Site: 0, Kind: DirectionAdd, T: 1, V: v, Seq: seq, StreamID: stream}); err != nil {
			t.Fatal(err)
		}
	}
	send("", 1, []float64{1, 0})
	send("a", 1, []float64{0, 1}) // same (site, seq) as the default frame: distinct space
	send("a", 2, []float64{0, 1})
	send("b", 1, []float64{2, 0})
	send("a", 2, []float64{0, 9}) // replay: deduped, not re-applied

	// SketchOf returns the (possibly rank-truncated) factor B with
	// BᵀB ≈ Ĉ; compare through the Gram entries.
	gramAt := func(b *mat.Dense, i, j int) float64 {
		var s float64
		for r := 0; r < b.Rows(); r++ {
			s += b.At(r, i) * b.At(r, j)
		}
		return s
	}
	if got := gramAt(c.Sketch(), 0, 0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("default stream Ĉ[0,0] = %v, want 1", got)
	}
	if got := gramAt(c.SketchOf("a"), 1, 1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("stream a Ĉ[1,1] = %v, want 2 (replay must not re-apply)", got)
	}
	if got := gramAt(c.SketchOf("b"), 0, 0); math.Abs(got-4) > 1e-12 {
		t.Fatalf("stream b Ĉ[0,0] = %v, want 4", got)
	}
	if got := gramAt(c.SketchOf("unseen"), 0, 0); got != 0 {
		t.Fatalf("unseen stream Ĉ[0,0] = %v, want 0", got)
	}
	streams := c.Streams()
	if len(streams) != 2 || streams[0] != "a" || streams[1] != "b" {
		t.Fatalf("Streams() = %v, want [a b]", streams)
	}
	m := c.Metrics()
	if m.Streams != 3 {
		t.Fatalf("Metrics().Streams = %d, want 3 (default + a + b)", m.Streams)
	}
	if m.DupMsgs != 1 {
		t.Fatalf("DupMsgs = %d, want 1", m.DupMsgs)
	}
	if m.Msgs != 4 {
		t.Fatalf("Msgs = %d, want 4 applied", m.Msgs)
	}
}

// TestChaosSoakMultiStream is the multiplexed version of the chaos soak:
// several logical streams share each site's one TCP sender via StreamOf,
// faults hit the shared connection, and every stream's estimate must
// still come out bit-identical to the fault-free run — per-stream
// sequence spaces and per-stream cumulative acks doing their job while
// frames from other streams interleave on the same backlog.
func TestChaosSoakMultiStream(t *testing.T)         { runChaosSoakMultiStream(t, Gob) }
func TestChaosSoakMultiStreamBinaryV2(t *testing.T) { runChaosSoakMultiStream(t, BinaryV2) }

func runChaosSoakMultiStream(t *testing.T, cdc Codec) {
	if testing.Short() {
		t.Skip("chaos soak is a multi-second TCP test")
	}
	streams := []string{"", "alpha", "beta"}
	clean := runMuxSoak(t, streams, nil, cdc)
	inj := soakInjector()
	faulty := runMuxSoak(t, streams, inj, cdc)

	for k, id := range streams {
		if len(clean[k]) != len(faulty[k]) {
			t.Fatalf("stream %q estimate sizes differ", id)
		}
		for i := range clean[k] {
			if clean[k][i] != faulty[k][i] {
				t.Fatalf("stream %q Ĉ[%d] differs: fault-free %v, chaos %v — multiplexed delivery was not exactly-once in order",
					id, i, clean[k][i], faulty[k][i])
			}
		}
	}
	st := inj.Stats()
	if st.Drops == 0 || st.Cuts+st.Dups+st.ReadCuts+st.DialFails == 0 {
		t.Fatalf("chaos fault mix too thin (stats %+v); the soak proved nothing", st)
	}
}

// runMuxSoak streams a seeded workload for each logical stream through
// ONE ResilientSender per site and returns each stream's final Ĉ.
func runMuxSoak(t *testing.T, streams []string, inj *chaos.Injector, cdc Codec) [][]float64 {
	t.Helper()
	const (
		d     = 4
		w     = int64(60)
		eps   = 0.25
		sites = 2
		rows  = 90 // per stream
	)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	coord := NewCoordinator(d)
	coord.SetStaleAfter(30 * time.Second)
	go coord.Serve(ln)
	defer coord.Close()

	senders := make([]*ResilientSender, sites)
	for i := range senders {
		dial := func() (io.WriteCloser, error) {
			return net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
		}
		if inj != nil {
			dial = inj.Dial(dial)
		}
		s, err := DialFunc(dial, WithCodec(cdc), WithResilience(ResilienceConfig{
			BackoffBase: time.Millisecond,
			BackoffMax:  8 * time.Millisecond,
			JitterSeed:  int64(i) + 1,
		}))
		if err != nil {
			t.Fatal(err)
		}
		senders[i] = s
	}

	// One DA1 site instance per (site, stream), every instance on a site
	// pushing through the same sender.
	ss := make([][]*DA1Site, sites)
	for si := 0; si < sites; si++ {
		ss[si] = make([]*DA1Site, len(streams))
		for k := range streams {
			s, err := NewDA1Site(SiteConfig{ID: si, D: d, W: w, Eps: eps}, StreamOf(senders[si], streams[k]))
			if err != nil {
				t.Fatal(err)
			}
			ss[si][k] = s
		}
	}

	wait := func(si int) {
		deadline := time.Now().Add(20 * time.Second)
		for senders[si].Pending() > 0 {
			if time.Now().After(deadline) {
				t.Fatalf("site %d: %d frames still unacknowledged (metrics %+v)", si, senders[si].Pending(), senders[si].Metrics())
			}
			senders[si].Flush()
			time.Sleep(200 * time.Microsecond)
		}
	}

	// Each stream gets its own seeded workload; rows interleave across
	// streams and sites so multiplexed frames genuinely mix on the wire.
	rngs := make([]*rand.Rand, len(streams))
	for k := range rngs {
		rngs[k] = rand.New(rand.NewSource(int64(1000 + k)))
	}
	v := make([]float64, d)
	for i := 0; i < rows; i++ {
		for k := range streams {
			si := (i + k) % sites
			for j := range v {
				v[j] = rngs[k].NormFloat64()
			}
			if err := ss[si][k].Observe(int64(i+1), v); err != nil {
				t.Fatalf("stream %q site %d row %d: %v", streams[k], si, i, err)
			}
			wait(si)
		}
	}
	for si := 0; si < sites; si++ {
		for k := range streams {
			if err := ss[si][k].Advance(int64(rows)); err != nil {
				t.Fatal(err)
			}
		}
		wait(si)
	}
	for si := 0; si < sites; si++ {
		senders[si].Close()
	}

	out := make([][]float64, len(streams))
	for k, id := range streams {
		out[k] = append([]float64(nil), coord.SketchOf(id).Data()...)
	}
	return out
}
