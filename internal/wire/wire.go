// Package wire runs the one-way deterministic protocols (SUM, DA1, DA2)
// over real network connections — the deployment the paper leaves as
// future work ("implementing distributed monitoring algorithms in a real
// distributed system"). Sites hold their protocol state locally and push
// gob-encoded messages to a coordinator over TCP (or any net.Conn); the
// coordinator folds them into its covariance estimate and answers sketch
// queries concurrently.
//
// Only the one-way family is wired: its sites never wait for coordinator
// responses, so a site is just an encoder over a persistent connection.
// The sampling protocols' threshold negotiation is a synchronous two-way
// exchange and stays in the in-process simulation (package core).
package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"distwindow/internal/obs"
	"distwindow/internal/trace"
	"distwindow/mat"
)

// Msg is the single message type of the one-way protocols.
//
// The trace fields propagate causal-trace context across the wire; they
// are zero on untraced messages, and gob's field matching keeps the frame
// format backward compatible in both directions: a pre-trace sender's
// frames decode at a new coordinator with zero trace fields, and a new
// sender's frames decode at an old coordinator, which ignores the fields
// it does not know.
type Msg struct {
	// Site identifies the sender.
	Site int
	// Kind selects the payload.
	Kind Kind
	// T is the triggering timestamp.
	T int64
	// V is a direction row (Direction kinds).
	V []float64
	// Delta is a scalar update (SumDelta kind).
	Delta float64
	// Trace and Span carry the sender's trace context (0 = untraced): the
	// root trace ID and the sending span's ID, so the coordinator's apply
	// span joins the site's causal chain.
	Trace, Span uint64
}

// Kind enumerates message payloads.
type Kind uint8

// Message kinds: directions add/remove vᵀv from the coordinator's Ĉ;
// SumDelta adjusts the scalar estimate.
const (
	DirectionAdd Kind = iota
	DirectionRemove
	SumDelta
)

// Coordinator receives messages from any number of sites and maintains
// Ĉ = Σ flag·vᵀv plus the scalar sum estimate. Safe for concurrent use.
//
// The traffic counters are atomic, so Metrics (and the mux returned by
// MetricsMux) can be read while connections stream; only the matrix state
// is behind the mutex.
type Coordinator struct {
	d  int
	mu sync.Mutex

	chat *mat.Dense
	sum  float64

	msgs    obs.Counter
	bytes   obs.Counter
	perKind [3]obs.Counter
	badMsgs obs.Counter
	conns   obs.Gauge
	sink    obs.Sink
	tracer  *trace.Tracer

	wg     sync.WaitGroup
	lnMu   sync.Mutex
	ln     net.Listener
	closed bool
}

// NewCoordinator returns a coordinator for d-dimensional directions.
func NewCoordinator(d int) *Coordinator {
	if d < 1 {
		panic("wire: d must be positive")
	}
	return &Coordinator{d: d, chat: mat.NewDense(d, d)}
}

// SetSink installs an event sink receiving one EvMsgReceived per applied
// message, with Site set to the original sender, and one EvMsgRejected
// per malformed frame (nil disables). Install before serving; the field
// is read without synchronization.
func (c *Coordinator) SetSink(s obs.Sink) { c.sink = s }

// SetTracer installs a causal tracer (nil disables). Traced messages
// (Msg.Trace != 0) get an "apply" span linked under the sender's "send"
// span; sketch queries get root "query" spans, head-sampled at the
// tracer's rate. Install before serving; only linked and root spans are
// recorded, so one tracer is safe across connection goroutines.
func (c *Coordinator) SetTracer(tr *trace.Tracer) { c.tracer = tr }

// reject counts a malformed message and reports it to the sink.
func (c *Coordinator) reject(m Msg) {
	c.badMsgs.Inc()
	if c.sink != nil {
		c.sink.OnEvent(obs.Event{Kind: obs.EvMsgRejected, Site: m.Site, T: m.T})
	}
}

// Apply folds one message into the coordinator state.
func (c *Coordinator) Apply(m Msg) error {
	if c.tracer != nil && m.Trace != 0 {
		sp := c.tracer.StartLinked(trace.Context{Trace: m.Trace, Span: m.Span}, trace.OpApply, m.Site, m.T)
		defer sp.End()
	}
	var payload int64
	switch m.Kind {
	case DirectionAdd, DirectionRemove:
		if len(m.V) != c.d {
			c.reject(m)
			return fmt.Errorf("wire: direction length %d, want %d", len(m.V), c.d)
		}
		payload = int64(8 * (len(m.V) + 3))
		flag := 1.0
		if m.Kind == DirectionRemove {
			flag = -1
		}
		c.mu.Lock()
		mat.OuterAdd(c.chat, m.V, flag)
		c.mu.Unlock()
	case SumDelta:
		payload = 8 * 3
		c.mu.Lock()
		c.sum += m.Delta
		c.mu.Unlock()
	default:
		c.reject(m)
		return fmt.Errorf("wire: unknown message kind %d", m.Kind)
	}
	c.msgs.Inc()
	c.bytes.Add(payload)
	c.perKind[m.Kind].Inc()
	if c.sink != nil {
		c.sink.OnEvent(obs.Event{Kind: obs.EvMsgReceived, Site: m.Site, T: m.T, Words: payload / 8})
	}
	return nil
}

// Sketch returns B = Σ^{1/2}Vᵀ of the PSD-clipped Ĉ.
func (c *Coordinator) Sketch() *mat.Dense {
	sp := c.tracer.StartDetached(trace.OpQuery, -1, 0)
	defer sp.End()
	c.mu.Lock()
	chat := c.chat.Clone()
	c.mu.Unlock()
	return mat.PSDSqrt(chat)
}

// Sum returns the scalar estimate.
func (c *Coordinator) Sum() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sum
}

// Stats returns messages received and approximate payload bytes.
func (c *Coordinator) Stats() (msgs, bytes int64) {
	return c.msgs.Load(), c.bytes.Load()
}

// CoordinatorMetrics is a point-in-time snapshot of a coordinator's
// observable state, serializable as the /metrics payload.
type CoordinatorMetrics struct {
	// Msgs and Bytes total all messages folded in (approximate payload
	// bytes, as in Stats).
	Msgs, Bytes int64
	// DirectionAdds, DirectionRemoves and SumDeltas break Msgs down by
	// message kind.
	DirectionAdds, DirectionRemoves, SumDeltas int64
	// BadMsgs counts rejected messages (dimension mismatch, unknown kind).
	BadMsgs int64
	// Conns is the number of currently connected sites (Serve only).
	Conns int64
}

// Metrics snapshots the coordinator's counters; safe to call while
// connections stream.
func (c *Coordinator) Metrics() CoordinatorMetrics {
	return CoordinatorMetrics{
		Msgs:             c.msgs.Load(),
		Bytes:            c.bytes.Load(),
		DirectionAdds:    c.perKind[DirectionAdd].Load(),
		DirectionRemoves: c.perKind[DirectionRemove].Load(),
		SumDeltas:        c.perKind[SumDelta].Load(),
		BadMsgs:          c.badMsgs.Load(),
		Conns:            c.conns.Load(),
	}
}

// MetricsMux returns an HTTP mux serving GET /metrics (the JSON-encoded
// CoordinatorMetrics), GET /healthz and /debug/vars, for mounting on an
// operations listener next to the site listener. Options add opt-in
// debug endpoints (obs.WithPprof, obs.WithHandler for /debug/trace).
func (c *Coordinator) MetricsMux(opts ...obs.MuxOption) *http.ServeMux {
	return obs.Mux(
		func() (any, bool) { return c.Metrics(), true },
		nil,
		opts...,
	)
}

// HandleConn decodes messages from one connection until EOF or a decode
// error. A message the coordinator refuses to apply (wrong dimension,
// unknown kind) is counted in BadMsgs and reported to the sink, but does
// NOT end the connection: one malformed frame must not drop a site whose
// stream is otherwise healthy. Decode errors still end the connection —
// a gob stream cannot resynchronize after corruption.
func (c *Coordinator) HandleConn(conn io.Reader) error {
	dec := gob.NewDecoder(conn)
	for {
		var m Msg
		if err := dec.Decode(&m); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		// Rejections are already counted and reported inside Apply.
		_ = c.Apply(m)
	}
}

// Serve accepts site connections on l until Close. Each connection is
// handled on its own goroutine; decoding errors end only that connection.
func (c *Coordinator) Serve(l net.Listener) {
	c.lnMu.Lock()
	c.ln = l
	closed := c.closed
	c.lnMu.Unlock()
	if closed {
		l.Close()
		return
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		c.conns.Add(1)
		go func() {
			defer c.wg.Done()
			defer c.conns.Add(-1)
			defer conn.Close()
			_ = c.HandleConn(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight connections to finish.
func (c *Coordinator) Close() {
	c.lnMu.Lock()
	c.closed = true
	if c.ln != nil {
		c.ln.Close()
	}
	c.lnMu.Unlock()
	c.wg.Wait()
}

// Sender pushes messages toward a coordinator. Implementations: ConnSender
// over a net.Conn, or the coordinator itself in process via Loopback.
type Sender interface {
	Send(Msg) error
}

// ConnSender gob-encodes messages onto a stream.
type ConnSender struct {
	mu   sync.Mutex
	enc  *gob.Encoder
	conn io.WriteCloser

	msgs   obs.Counter
	encLat obs.Histogram
}

// NewConnSender wraps a connection.
func NewConnSender(conn io.WriteCloser) *ConnSender {
	return &ConnSender{enc: gob.NewEncoder(conn), conn: conn}
}

// Send encodes one message.
func (s *ConnSender) Send(m Msg) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	err := s.enc.Encode(m)
	s.encLat.Observe(time.Since(start))
	if err == nil {
		s.msgs.Inc()
	}
	return err
}

// SenderMetrics is a snapshot of one sender's counters.
type SenderMetrics struct {
	// Msgs counts successfully encoded messages.
	Msgs int64
	// EncodeLatency is the encode+write latency histogram (messages are
	// rare relative to rows, so every send is timed).
	EncodeLatency obs.HistSnapshot
}

// Metrics snapshots the sender's counters; safe to call concurrently with
// Send.
func (s *ConnSender) Metrics() SenderMetrics {
	return SenderMetrics{Msgs: s.msgs.Load(), EncodeLatency: s.encLat.Snapshot()}
}

// Close closes the underlying connection.
func (s *ConnSender) Close() error { return s.conn.Close() }

// Loopback delivers messages to a coordinator in process — useful in
// tests and single-binary deployments.
type Loopback struct{ C *Coordinator }

// Send applies the message directly.
func (l Loopback) Send(m Msg) error { return l.C.Apply(m) }
