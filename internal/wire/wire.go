// Package wire runs the one-way deterministic protocols (SUM, DA1, DA2)
// over real network connections — the deployment the paper leaves as
// future work ("implementing distributed monitoring algorithms in a real
// distributed system"). Sites hold their protocol state locally and push
// messages to a coordinator over TCP (or any net.Conn); the coordinator
// folds them into its covariance estimate and answers sketch queries
// concurrently.
//
// Frames travel in one of two codecs (package codec): the legacy
// encoding/gob streams, or the binary v2 framing whose per-frame CRC
// lets a corrupted stream resynchronize instead of dying. Senders pick
// their codec (WithCodec); the coordinator detects it per connection
// from the first byte, so v2 and gob sites mix freely on one listener.
//
// Only the one-way family is wired: its sites never wait for coordinator
// responses, so a site is just an encoder over a persistent connection.
// The sampling protocols' threshold negotiation is a synchronous two-way
// exchange and stays in the in-process simulation (package core).
package wire

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"distwindow/internal/obs"
	"distwindow/internal/obs/telemetry"
	"distwindow/internal/trace"
	"distwindow/internal/wire/codec"
	"distwindow/mat"
)

// Msg is the single message type of the one-way protocols. The type
// lives in the codec subpackage next to the framings that carry it; the
// alias keeps this package's API (and the gob wire names) unchanged —
// see codec.Msg for the field and compatibility documentation.
type Msg = codec.Msg

// Ack acknowledges consumed sequenced frames, cumulatively per stream;
// see codec.Ack (including the Nack rewind semantics).
type Ack = codec.Ack

// Kind enumerates message payloads; see codec.Kind.
type Kind = codec.Kind

// Message kinds: directions add/remove vᵀv from the coordinator's Ĉ;
// SumDelta adjusts the scalar estimate; Telemetry carries a metrics frame
// for the fleet view (never part of the estimate or the seq/ack space).
const (
	DirectionAdd    = codec.DirectionAdd
	DirectionRemove = codec.DirectionRemove
	SumDelta        = codec.SumDelta
	Telemetry       = codec.Telemetry
)

// Codec selects a wire framing for a sender (the coordinator detects the
// codec per connection, no configuration needed). The two framings:
// Gob, the legacy stream every release has spoken, and BinaryV2, the
// hand-rolled little-endian framing with per-frame CRC, resynchronization
// and frame coalescing. See PROTOCOLS.md for the negotiation matrix.
type Codec = codec.Codec

// Gob and BinaryV2 are the available wire framings, for WithCodec.
var (
	Gob      = codec.Gob
	BinaryV2 = codec.BinaryV2
)

// CodecByName resolves a codec from its flag name ("gob", "v2").
func CodecByName(name string) (Codec, bool) { return codec.ByName(name) }

// Coordinator receives messages from any number of sites and maintains,
// per logical stream, Ĉ = Σ flag·vᵀv plus the scalar sum estimate. Safe
// for concurrent use.
//
// Frames carry a StreamID ("" = the default stream); each distinct id
// gets its own estimate, created on first frame. Every stream shares the
// coordinator's dimension d — heterogeneous dimensions need separate
// coordinators. The un-suffixed accessors (Sketch, Sum) read the default
// stream, so single-stream deployments are unchanged.
//
// The traffic counters are atomic, so Metrics (and the mux returned by
// MetricsMux) can be read while connections stream; only the matrix state
// is behind the mutex.
type Coordinator struct {
	d  int
	mu sync.Mutex

	// def is the default stream's estimate (always present); streams holds
	// the non-default estimates, lazily created on first frame. Both are
	// guarded by mu.
	def     streamEst
	streams map[string]*streamEst

	msgs     obs.Counter
	bytes    obs.Counter
	perKind  [3]obs.Counter
	badMsgs  obs.Counter
	dups     obs.Counter
	acks     obs.Counter
	nacks    obs.Counter
	teleMsgs obs.Counter
	conns    obs.Gauge
	sink     obs.Sink
	tracer   *trace.Tracer
	// fleet aggregates telemetry frames when EnableTelemetry has been
	// called (nil = frames are counted and discarded). Install before
	// serving; read without synchronization, like sink and tracer.
	fleet *telemetry.Fleet

	// Per-(site, stream) delivery and liveness state: highest consumed
	// sequence number (the dedup horizon for replayed frames) and when the
	// sender was last heard from. Guarded by siteMu, not mu — liveness
	// bookkeeping must not serialize against the matrix fold.
	siteMu     sync.Mutex
	siteStates map[siteKey]*siteState
	staleAfter time.Duration
	now        func() time.Time

	wg     sync.WaitGroup
	lnMu   sync.Mutex
	ln     net.Listener
	closed bool
}

// streamEst is one logical stream's coordinator estimate.
type streamEst struct {
	chat *mat.Dense
	sum  float64
}

// siteKey identifies one sender's sequence space: exactly-once delivery
// holds per (site, stream), so dedup and liveness are recorded at the
// same granularity.
type siteKey struct {
	site   int
	stream string
}

// siteState is the coordinator's per-(site, stream) delivery record.
type siteState struct {
	lastSeq  uint64
	lastT    int64
	lastSeen time.Time
	stale    bool
}

// NewCoordinator returns a coordinator for d-dimensional directions,
// configured by options (WithSink, WithTracer, WithStaleAfter,
// WithTelemetry). The zero-option call is the pre-options constructor
// unchanged; every option can also still be installed through the
// deprecated Set*/Enable* mutators before serving.
func NewCoordinator(d int, opts ...CoordinatorOption) *Coordinator {
	if d < 1 {
		panic("wire: d must be positive")
	}
	c := &Coordinator{d: d, def: streamEst{chat: mat.NewDense(d, d)}, now: time.Now}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// est returns the estimate for one stream, creating it on first use.
// Callers must hold mu.
func (c *Coordinator) est(stream string) *streamEst {
	if stream == "" {
		return &c.def
	}
	e := c.streams[stream]
	if e == nil {
		e = &streamEst{chat: mat.NewDense(c.d, c.d)}
		if c.streams == nil {
			c.streams = make(map[string]*streamEst)
		}
		c.streams[stream] = e
	}
	return e
}

// SetStaleAfter configures the liveness bound: a site whose last frame is
// older than d is reported stale by CheckLiveness, Metrics and
// SiteStatuses (0 disables staleness detection, the default). Install
// before serving.
//
// Deprecated: pass WithStaleAfter to NewCoordinator.
func (c *Coordinator) SetStaleAfter(d time.Duration) { c.staleAfter = d }

// SetSink installs an event sink receiving one EvMsgReceived per applied
// message, with Site set to the original sender, and one EvMsgRejected
// per malformed frame (nil disables). Install before serving; the field
// is read without synchronization.
//
// Deprecated: pass WithSink to NewCoordinator.
func (c *Coordinator) SetSink(s obs.Sink) { c.sink = s }

// SetTracer installs a causal tracer (nil disables). Traced messages
// (Msg.Trace != 0) get an "apply" span linked under the sender's "send"
// span; sketch queries get root "query" spans, head-sampled at the
// tracer's rate. Install before serving; only linked and root spans are
// recorded, so one tracer is safe across connection goroutines.
//
// Deprecated: pass WithTracer to NewCoordinator.
func (c *Coordinator) SetTracer(tr *trace.Tracer) { c.tracer = tr }

// reject counts a malformed message and reports it to the sink.
func (c *Coordinator) reject(m Msg) {
	c.badMsgs.Inc()
	if c.sink != nil {
		c.sink.OnEvent(obs.Event{Kind: obs.EvMsgRejected, Site: m.Site, T: m.T})
	}
}

// admit records liveness for the sender and, for sequenced frames,
// reports whether the frame is new (true) or a replay of one already
// consumed (false). The dedup horizon advances for every fresh sequenced
// frame — including frames Apply goes on to reject — so a poison frame is
// consumed once, not re-rejected on every replay. The horizon is keyed by
// (site, stream): multiplexed streams carry independent sequence spaces.
func (c *Coordinator) admit(m Msg) bool {
	c.siteMu.Lock()
	if c.siteStates == nil {
		c.siteStates = make(map[siteKey]*siteState)
	}
	key := siteKey{site: m.Site, stream: m.StreamID}
	st := c.siteStates[key]
	if st == nil {
		st = &siteState{}
		c.siteStates[key] = st
	}
	st.lastSeen = c.now()
	wasStale := st.stale
	st.stale = false
	fresh := m.Seq == 0 || m.Seq > st.lastSeq
	if m.Seq > st.lastSeq {
		st.lastSeq = m.Seq
	}
	if m.T > st.lastT {
		st.lastT = m.T
	}
	c.siteMu.Unlock()
	if wasStale && c.sink != nil {
		c.sink.OnEvent(obs.Event{Kind: obs.EvSiteResync, Site: m.Site, T: m.T})
	}
	if !fresh {
		c.dups.Inc()
		if c.sink != nil {
			c.sink.OnEvent(obs.Event{Kind: obs.EvMsgDeduped, Site: m.Site, T: m.T})
		}
	}
	return fresh
}

// Apply folds one message into the coordinator state. Sequenced frames
// (Seq != 0) the coordinator has already consumed are dropped — counted
// in DupMsgs, reported as EvMsgDeduped — and return nil: a replayed delta
// was applied exactly once already.
func (c *Coordinator) Apply(m Msg) error {
	if m.Kind == Telemetry {
		// Telemetry bypasses admit() and the traffic counters entirely: it
		// must not advance dedup horizons, refresh data-plane liveness or
		// perturb Msgs/Bytes, so a soak with telemetry enabled stays
		// bit-identical to one without.
		c.teleMsgs.Inc()
		if c.fleet != nil && m.Tele != nil {
			c.fleet.Record(*m.Tele)
		}
		return nil
	}
	if m.Site >= 0 {
		if !c.admit(m) {
			return nil
		}
	}
	if c.tracer != nil && m.Trace != 0 {
		sp := c.tracer.StartLinked(trace.Context{Trace: m.Trace, Span: m.Span}, trace.OpApply, m.Site, m.T)
		defer sp.End()
	}
	var payload int64
	switch m.Kind {
	case DirectionAdd, DirectionRemove:
		if len(m.V) != c.d {
			c.reject(m)
			return fmt.Errorf("wire: direction length %d, want %d", len(m.V), c.d)
		}
		payload = int64(8 * (len(m.V) + 3))
		flag := 1.0
		if m.Kind == DirectionRemove {
			flag = -1
		}
		c.mu.Lock()
		mat.OuterAdd(c.est(m.StreamID).chat, m.V, flag)
		c.mu.Unlock()
	case SumDelta:
		payload = 8 * 3
		c.mu.Lock()
		c.est(m.StreamID).sum += m.Delta
		c.mu.Unlock()
	default:
		c.reject(m)
		return fmt.Errorf("wire: unknown message kind %d", m.Kind)
	}
	c.msgs.Inc()
	c.bytes.Add(payload)
	c.perKind[m.Kind].Inc()
	if c.sink != nil {
		c.sink.OnEvent(obs.Event{Kind: obs.EvMsgReceived, Site: m.Site, T: m.T, Words: payload / 8})
	}
	return nil
}

// Sketch returns B = Σ^{1/2}Vᵀ of the default stream's PSD-clipped Ĉ.
func (c *Coordinator) Sketch() *mat.Dense { return c.SketchOf("") }

// SketchOf returns B = Σ^{1/2}Vᵀ of one stream's PSD-clipped Ĉ. A stream
// the coordinator has never heard from yields the zero sketch.
func (c *Coordinator) SketchOf(stream string) *mat.Dense {
	sp := c.tracer.StartDetached(trace.OpQuery, -1, 0)
	defer sp.End()
	c.mu.Lock()
	var chat *mat.Dense
	if stream == "" {
		chat = c.def.chat.Clone()
	} else if e := c.streams[stream]; e != nil {
		chat = e.chat.Clone()
	} else {
		chat = mat.NewDense(c.d, c.d)
	}
	c.mu.Unlock()
	return mat.PSDSqrt(chat)
}

// Sum returns the default stream's scalar estimate.
func (c *Coordinator) Sum() float64 { return c.SumOf("") }

// SumOf returns one stream's scalar estimate (0 for an unseen stream).
func (c *Coordinator) SumOf(stream string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if stream == "" {
		return c.def.sum
	}
	if e := c.streams[stream]; e != nil {
		return e.sum
	}
	return 0
}

// Streams lists the non-default stream ids heard from, sorted. The
// default stream "" always exists and is not listed.
func (c *Coordinator) Streams() []string {
	c.mu.Lock()
	out := make([]string, 0, len(c.streams))
	for id := range c.streams {
		out = append(out, id)
	}
	c.mu.Unlock()
	sort.Strings(out)
	return out
}

// Stats returns messages received and approximate payload bytes.
func (c *Coordinator) Stats() (msgs, bytes int64) {
	return c.msgs.Load(), c.bytes.Load()
}

// SiteStatus is the coordinator's liveness view of one (site, stream)
// sender.
type SiteStatus struct {
	// Site is the site's identifier.
	Site int
	// Stream is the logical stream id ("" = default stream).
	Stream string
	// LastSeq is the highest consumed sequence number (0 for unsequenced
	// senders).
	LastSeq uint64
	// LastT is the largest frame timestamp seen from the site.
	LastT int64
	// LastSeen is the wall-clock arrival time of the site's latest frame.
	LastSeen time.Time
	// Stale reports that the site has been silent longer than the
	// SetStaleAfter bound — its window contribution may be degraded.
	Stale bool
}

// CheckLiveness sweeps the per-site records, marks sites silent for
// longer than the SetStaleAfter bound as stale (emitting one EvSiteStale
// per transition), and returns the number of stale sites. With no bound
// configured it reports zero.
func (c *Coordinator) CheckLiveness() int {
	if c.staleAfter <= 0 {
		return 0
	}
	cut := c.now().Add(-c.staleAfter)
	var went []siteKey
	stale := 0
	c.siteMu.Lock()
	for key, st := range c.siteStates {
		if st.lastSeen.Before(cut) {
			if !st.stale {
				st.stale = true
				went = append(went, key)
			}
			stale++
		}
	}
	c.siteMu.Unlock()
	if c.sink != nil {
		for _, key := range went {
			c.sink.OnEvent(obs.Event{Kind: obs.EvSiteStale, Site: key.site})
		}
	}
	return stale
}

// SiteStatuses runs a liveness sweep and returns the per-(site, stream)
// delivery records, sorted by site then stream.
func (c *Coordinator) SiteStatuses() []SiteStatus {
	c.CheckLiveness()
	c.siteMu.Lock()
	out := make([]SiteStatus, 0, len(c.siteStates))
	for key, st := range c.siteStates {
		out = append(out, SiteStatus{
			Site: key.site, Stream: key.stream, LastSeq: st.lastSeq, LastT: st.lastT,
			LastSeen: st.lastSeen, Stale: st.stale,
		})
	}
	c.siteMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Stream < out[j].Stream
	})
	return out
}

// CoordinatorMetrics is a point-in-time snapshot of a coordinator's
// observable state, serializable as the /metrics payload.
type CoordinatorMetrics struct {
	// Msgs and Bytes total all messages folded in (approximate payload
	// bytes, as in Stats).
	Msgs, Bytes int64
	// DirectionAdds, DirectionRemoves and SumDeltas break Msgs down by
	// message kind.
	DirectionAdds, DirectionRemoves, SumDeltas int64
	// BadMsgs counts rejected messages (dimension mismatch, unknown kind).
	BadMsgs int64
	// DupMsgs counts sequenced frames dropped because their Seq was
	// already consumed (replays after reconnect or site restart). Dups are
	// acknowledged but not re-applied, so they never double-count a delta.
	DupMsgs int64
	// AckedMsgs counts acknowledgements written back to sites.
	AckedMsgs int64
	// NackMsgs counts rewind requests sent after a corrupt frame on a
	// binary v2 connection (each asks one stream's sender to replay its
	// unacknowledged backlog). Always 0 on healthy links.
	NackMsgs int64
	// TelemetryFrames counts telemetry frames received (recorded into the
	// fleet view when telemetry is enabled, discarded otherwise). Never
	// part of Msgs/Bytes — telemetry stays outside the data accounting.
	TelemetryFrames int64
	// SitesSeen is the number of distinct site ids heard from.
	SitesSeen int64
	// Streams is the number of distinct logical streams heard from (the
	// default stream counts once it has carried a frame).
	Streams int64
	// StaleSites is the number of (site, stream) senders currently past
	// the SetStaleAfter liveness bound (0 when staleness detection is
	// disabled).
	StaleSites int64
	// Conns is the number of currently connected sites (Serve only).
	Conns int64
}

// Metrics snapshots the coordinator's counters; safe to call while
// connections stream.
func (c *Coordinator) Metrics() CoordinatorMetrics {
	stale := int64(c.CheckLiveness())
	c.siteMu.Lock()
	sites := make(map[int]struct{}, len(c.siteStates))
	streams := make(map[string]struct{}, len(c.siteStates))
	for key := range c.siteStates {
		sites[key.site] = struct{}{}
		streams[key.stream] = struct{}{}
	}
	seen := int64(len(sites))
	nstreams := int64(len(streams))
	c.siteMu.Unlock()
	return CoordinatorMetrics{
		Msgs:             c.msgs.Load(),
		Bytes:            c.bytes.Load(),
		DirectionAdds:    c.perKind[DirectionAdd].Load(),
		DirectionRemoves: c.perKind[DirectionRemove].Load(),
		SumDeltas:        c.perKind[SumDelta].Load(),
		BadMsgs:          c.badMsgs.Load(),
		DupMsgs:          c.dups.Load(),
		AckedMsgs:        c.acks.Load(),
		NackMsgs:         c.nacks.Load(),
		TelemetryFrames:  c.teleMsgs.Load(),
		SitesSeen:        seen,
		Streams:          nstreams,
		StaleSites:       stale,
		Conns:            c.conns.Load(),
	}
}

// MetricsMux returns an HTTP mux serving GET /metrics (the JSON-encoded
// CoordinatorMetrics), GET /healthz and /debug/vars, for mounting on an
// operations listener next to the site listener. Options add opt-in
// debug endpoints (obs.WithPprof, obs.WithHandler for /debug/trace).
//
// With telemetry enabled (EnableTelemetry), /metrics also content-
// negotiates the Prometheus text exposition — coordinator counters plus
// the per-(site, stream) fleet series — and /debug/fleet serves the
// fleet dashboard.
func (c *Coordinator) MetricsMux(opts ...obs.MuxOption) *http.ServeMux {
	if c.fleet != nil {
		opts = append([]obs.MuxOption{
			obs.WithPrometheus(c.WritePrometheusTo),
			obs.WithHandler("/debug/fleet", c.fleet.Handler()),
		}, opts...)
	}
	return obs.Mux(
		func() (any, bool) { return c.Metrics(), true },
		nil,
		opts...,
	)
}

// HandleConn decodes messages from one connection until EOF or an
// unrecoverable decode error, detecting the connection's codec (gob or
// binary v2) from its first byte. A message the coordinator refuses to
// apply (wrong dimension, unknown kind) is counted in BadMsgs and
// reported to the sink, but does NOT end the connection: one malformed
// frame must not drop a site whose stream is otherwise healthy.
//
// Corruption handling depends on the codec. A gob stream cannot
// resynchronize after corruption, so a gob decode error still ends the
// connection. On a binary v2 stream a frame rejected by CRC or structure
// is counted in BadMsgs, reported as EvMsgRejected, and the decoder
// resynchronizes at the next magic boundary — the connection survives.
// Because the rejected frame may have carried a sequenced delta, the
// coordinator then refuses to apply frames that would jump a sequence
// gap and instead sends a rewind request (Ack with Nack set) carrying the
// stream's consumed horizon; the sender replays its unacknowledged
// backlog in order, closing the gap with not one delta lost, double-
// applied or reordered. A corrupted frame belonging to a (site, stream)
// that has not yet appeared on this connection cannot be nacked — the
// coordinator does not know the key — and is recovered by the next
// reconnect's replay instead (see PROTOCOLS.md).
//
// When conn is also a writer (net.Conn is), every sequenced frame is
// acknowledged back on the same connection once consumed — applied,
// deduped or rejected; the frame will never be applied later, so holding
// it in the sender's backlog serves nothing. Acks use the connection's
// detected codec. An ack write failure ends the connection: the site
// will reconnect and replay, and dedup keeps the replay exactly-once.
func (c *Coordinator) HandleConn(conn io.Reader) error {
	dec, cdc, err := codec.Detect(conn)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return err
	}
	if rel, ok := dec.(interface{ Release() }); ok {
		defer rel.Release()
	}
	var enc codec.Encoder
	if w, ok := conn.(io.Writer); ok {
		enc = cdc.NewEncoder(w)
	}
	ack := func(a Ack) error {
		if err := enc.EncodeAck(a); err != nil {
			return err
		}
		if err := enc.Flush(); err != nil {
			return err
		}
		c.acks.Inc()
		return nil
	}
	var (
		m    Msg
		lost bool                 // a frame on this conn was rejected by CRC/structure
		seen map[siteKey]struct{} // sequenced (site, stream) keys heard on this conn
		// lastNack records horizon+1 per nacked key, so a window of
		// in-flight frames all jumping the same gap triggers one rewind,
		// not one per frame. A fresh corrupt event always re-nacks.
		lastNack map[siteKey]uint64
	)
	for {
		err := dec.DecodeMsg(&m)
		var corrupt *codec.CorruptFrameError
		if errors.As(err, &corrupt) {
			c.badMsgs.Inc()
			if c.sink != nil {
				c.sink.OnEvent(obs.Event{Kind: obs.EvMsgRejected, Site: -1})
			}
			lost = true
			// The lost frame's key is unknowable; rewind every stream this
			// connection has carried so whichever one lost a delta replays.
			for key := range seen {
				h := c.horizonOf(key)
				if lastNack == nil {
					lastNack = make(map[siteKey]uint64)
				}
				lastNack[key] = h + 1
				if enc != nil {
					c.nacks.Inc()
					if err := ack(Ack{Seq: h, Stream: key.stream, Nack: true}); err != nil {
						return err
					}
				}
			}
			continue
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if m.Seq != 0 {
			key := siteKey{site: m.Site, stream: m.StreamID}
			if seen == nil {
				seen = make(map[siteKey]struct{})
			}
			seen[key] = struct{}{}
			if lost {
				// After corruption, a sequence jump may span the lost frame:
				// defer the jumped frame (the rewind will re-deliver it in
				// order) instead of applying out of order and letting a
				// cumulative ack retire the lost delta unapplied.
				if h := c.horizonOf(key); m.Seq > h+1 {
					if lastNack[key] != h+1 {
						if lastNack == nil {
							lastNack = make(map[siteKey]uint64)
						}
						lastNack[key] = h + 1
						if enc != nil {
							c.nacks.Inc()
							if err := ack(Ack{Seq: h, Stream: key.stream, Nack: true}); err != nil {
								return err
							}
						}
					}
					continue
				}
			}
		}
		// Rejections are already counted and reported inside Apply.
		_ = c.Apply(m)
		if m.Seq != 0 && enc != nil {
			if err := ack(Ack{Seq: m.Seq, Stream: m.StreamID}); err != nil {
				return err
			}
		}
	}
}

// horizonOf reads one (site, stream) consumed-sequence horizon.
func (c *Coordinator) horizonOf(key siteKey) uint64 {
	c.siteMu.Lock()
	defer c.siteMu.Unlock()
	if st := c.siteStates[key]; st != nil {
		return st.lastSeq
	}
	return 0
}

// Serve accepts site connections on l until Close. Each connection is
// handled on its own goroutine; decoding errors end only that connection.
func (c *Coordinator) Serve(l net.Listener) {
	c.lnMu.Lock()
	c.ln = l
	closed := c.closed
	c.lnMu.Unlock()
	if closed {
		l.Close()
		return
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		c.conns.Add(1)
		go func() {
			defer c.wg.Done()
			defer c.conns.Add(-1)
			defer conn.Close()
			_ = c.HandleConn(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight connections to finish.
func (c *Coordinator) Close() {
	c.lnMu.Lock()
	c.closed = true
	if c.ln != nil {
		c.ln.Close()
	}
	c.lnMu.Unlock()
	c.wg.Wait()
}

// Sender pushes messages toward a coordinator. Implementations: ConnSender
// over a net.Conn, or the coordinator itself in process via Loopback.
type Sender interface {
	Send(Msg) error
}

// ConnSender encodes messages onto a single stream in one codec (gob by
// default, WithCodec selects). Each Send is flushed through immediately.
type ConnSender struct {
	mu     sync.Mutex
	enc    codec.Encoder
	conn   io.WriteCloser
	stream string

	msgs   obs.Counter
	encLat obs.Histogram
}

// NewConnSender wraps a connection with the legacy gob codec.
//
// Deprecated: use NewSender, which takes options (WithCodec, WithStream).
func NewConnSender(conn io.WriteCloser) *ConnSender {
	s, _ := NewSender(conn)
	return s
}

// Send encodes one message.
func (s *ConnSender) Send(m Msg) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m.StreamID == "" {
		m.StreamID = s.stream
	}
	start := time.Now()
	err := s.enc.EncodeMsg(&m)
	if err == nil {
		err = s.enc.Flush()
	}
	s.encLat.Observe(time.Since(start))
	if err == nil {
		s.msgs.Inc()
	}
	return err
}

// Stream returns a Sender view stamping every message with the given
// stream id, so many logical streams can multiplex over this sender.
func (s *ConnSender) Stream(id string) Sender { return StreamOf(s, id) }

// SenderMetrics is a snapshot of one sender's counters.
type SenderMetrics struct {
	// Msgs counts successfully encoded messages.
	Msgs int64
	// EncodeLatency is the encode+write latency histogram (messages are
	// rare relative to rows, so every send is timed).
	EncodeLatency obs.HistSnapshot
}

// Metrics snapshots the sender's counters; safe to call concurrently with
// Send.
func (s *ConnSender) Metrics() SenderMetrics {
	return SenderMetrics{Msgs: s.msgs.Load(), EncodeLatency: s.encLat.Snapshot()}
}

// Close closes the underlying connection.
func (s *ConnSender) Close() error { return s.conn.Close() }

// StreamOf returns a Sender stamping every message with the given stream
// id before forwarding to out, so one transport (typically a
// ResilientSender over one TCP connection) can carry many logical
// streams: give each stream's protocol sites their own view of the
// shared sender. The empty id returns out unchanged — the default
// stream needs no stamping. The Stream method on ConnSender and
// ResilientSender is the same wrapper, one call shorter.
func StreamOf(out Sender, id string) Sender {
	if id == "" {
		return out
	}
	return streamSender{out: out, id: id}
}

type streamSender struct {
	out Sender
	id  string
}

func (s streamSender) Send(m Msg) error {
	m.StreamID = s.id
	return s.out.Send(m)
}

// Loopback delivers messages to a coordinator in process — useful in
// tests and single-binary deployments.
type Loopback struct{ C *Coordinator }

// Send applies the message directly.
func (l Loopback) Send(m Msg) error { return l.C.Apply(m) }
