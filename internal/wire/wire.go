// Package wire runs the one-way deterministic protocols (SUM, DA1, DA2)
// over real network connections — the deployment the paper leaves as
// future work ("implementing distributed monitoring algorithms in a real
// distributed system"). Sites hold their protocol state locally and push
// gob-encoded messages to a coordinator over TCP (or any net.Conn); the
// coordinator folds them into its covariance estimate and answers sketch
// queries concurrently.
//
// Only the one-way family is wired: its sites never wait for coordinator
// responses, so a site is just an encoder over a persistent connection.
// The sampling protocols' threshold negotiation is a synchronous two-way
// exchange and stays in the in-process simulation (package core).
package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"distwindow/mat"
)

// Msg is the single message type of the one-way protocols.
type Msg struct {
	// Site identifies the sender.
	Site int
	// Kind selects the payload.
	Kind Kind
	// T is the triggering timestamp.
	T int64
	// V is a direction row (Direction kinds).
	V []float64
	// Delta is a scalar update (SumDelta kind).
	Delta float64
}

// Kind enumerates message payloads.
type Kind uint8

// Message kinds: directions add/remove vᵀv from the coordinator's Ĉ;
// SumDelta adjusts the scalar estimate.
const (
	DirectionAdd Kind = iota
	DirectionRemove
	SumDelta
)

// Coordinator receives messages from any number of sites and maintains
// Ĉ = Σ flag·vᵀv plus the scalar sum estimate. Safe for concurrent use.
type Coordinator struct {
	d  int
	mu sync.Mutex

	chat *mat.Dense
	sum  float64

	msgs  int64
	bytes int64

	wg     sync.WaitGroup
	lnMu   sync.Mutex
	ln     net.Listener
	closed bool
}

// NewCoordinator returns a coordinator for d-dimensional directions.
func NewCoordinator(d int) *Coordinator {
	if d < 1 {
		panic("wire: d must be positive")
	}
	return &Coordinator{d: d, chat: mat.NewDense(d, d)}
}

// Apply folds one message into the coordinator state.
func (c *Coordinator) Apply(m Msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs++
	switch m.Kind {
	case DirectionAdd, DirectionRemove:
		if len(m.V) != c.d {
			return fmt.Errorf("wire: direction length %d, want %d", len(m.V), c.d)
		}
		flag := 1.0
		if m.Kind == DirectionRemove {
			flag = -1
		}
		mat.OuterAdd(c.chat, m.V, flag)
		c.bytes += int64(8 * (len(m.V) + 3))
	case SumDelta:
		c.sum += m.Delta
		c.bytes += 8 * 3
	default:
		return fmt.Errorf("wire: unknown message kind %d", m.Kind)
	}
	return nil
}

// Sketch returns B = Σ^{1/2}Vᵀ of the PSD-clipped Ĉ.
func (c *Coordinator) Sketch() *mat.Dense {
	c.mu.Lock()
	chat := c.chat.Clone()
	c.mu.Unlock()
	return mat.PSDSqrt(chat)
}

// Sum returns the scalar estimate.
func (c *Coordinator) Sum() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sum
}

// Stats returns messages received and approximate payload bytes.
func (c *Coordinator) Stats() (msgs, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.msgs, c.bytes
}

// HandleConn decodes messages from one connection until EOF or error.
func (c *Coordinator) HandleConn(conn io.Reader) error {
	dec := gob.NewDecoder(conn)
	for {
		var m Msg
		if err := dec.Decode(&m); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if err := c.Apply(m); err != nil {
			return err
		}
	}
}

// Serve accepts site connections on l until Close. Each connection is
// handled on its own goroutine; decoding errors end only that connection.
func (c *Coordinator) Serve(l net.Listener) {
	c.lnMu.Lock()
	c.ln = l
	closed := c.closed
	c.lnMu.Unlock()
	if closed {
		l.Close()
		return
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer conn.Close()
			_ = c.HandleConn(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight connections to finish.
func (c *Coordinator) Close() {
	c.lnMu.Lock()
	c.closed = true
	if c.ln != nil {
		c.ln.Close()
	}
	c.lnMu.Unlock()
	c.wg.Wait()
}

// Sender pushes messages toward a coordinator. Implementations: ConnSender
// over a net.Conn, or the coordinator itself in process via Loopback.
type Sender interface {
	Send(Msg) error
}

// ConnSender gob-encodes messages onto a stream.
type ConnSender struct {
	mu   sync.Mutex
	enc  *gob.Encoder
	conn io.WriteCloser
}

// NewConnSender wraps a connection.
func NewConnSender(conn io.WriteCloser) *ConnSender {
	return &ConnSender{enc: gob.NewEncoder(conn), conn: conn}
}

// Send encodes one message.
func (s *ConnSender) Send(m Msg) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(m)
}

// Close closes the underlying connection.
func (s *ConnSender) Close() error { return s.conn.Close() }

// Loopback delivers messages to a coordinator in process — useful in
// tests and single-binary deployments.
type Loopback struct{ C *Coordinator }

// Send applies the message directly.
func (l Loopback) Send(m Msg) error { return l.C.Apply(m) }
