package wire

import (
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"distwindow/internal/stream"
	"distwindow/internal/window"
	"distwindow/mat"
)

func randRow(d int, rng *rand.Rand) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestCoordinatorApplyDirections(t *testing.T) {
	c := NewCoordinator(2)
	if err := c.Apply(Msg{Kind: DirectionAdd, V: []float64{3, 4}}); err != nil {
		t.Fatal(err)
	}
	b := c.Sketch()
	if math.Abs(mat.FrobSq(b)-25) > 1e-9 {
		t.Fatalf("sketch mass %v, want 25", mat.FrobSq(b))
	}
	if err := c.Apply(Msg{Kind: DirectionRemove, V: []float64{3, 4}}); err != nil {
		t.Fatal(err)
	}
	if mat.FrobSq(c.Sketch()) > 1e-9 {
		t.Fatal("add then remove should cancel")
	}
}

func TestCoordinatorApplySum(t *testing.T) {
	c := NewCoordinator(1)
	c.Apply(Msg{Kind: SumDelta, Delta: 5})
	c.Apply(Msg{Kind: SumDelta, Delta: -2})
	if c.Sum() != 3 {
		t.Fatalf("Sum = %v, want 3", c.Sum())
	}
}

func TestCoordinatorRejectsBadMessages(t *testing.T) {
	c := NewCoordinator(3)
	if err := c.Apply(Msg{Kind: DirectionAdd, V: []float64{1}}); err == nil {
		t.Fatal("want error for wrong direction length")
	}
	if err := c.Apply(Msg{Kind: Kind(99)}); err == nil {
		t.Fatal("want error for unknown kind")
	}
}

func TestDA2SiteLoopbackTracksWindow(t *testing.T) {
	const (
		d = 6
		w = int64(500)
	)
	c := NewCoordinator(d)
	s, err := NewDA2Site(SiteConfig{ID: 0, D: d, W: w, Eps: 0.1}, Loopback{c})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	truth := window.NewExact(w)
	var worst float64
	for i := int64(1); i <= 3000; i++ {
		v := randRow(d, rng)
		if err := s.Observe(i, v); err != nil {
			t.Fatal(err)
		}
		truth.Add(stream.Row{T: i, V: v})
		if i > 600 && i%300 == 0 {
			e := truth.CovErr(d, c.Sketch())
			if e > worst {
				worst = e
			}
		}
	}
	if worst > 0.5 {
		t.Fatalf("DA2 wire site max error %v", worst)
	}
}

func TestDA1SiteLoopbackTracksWindow(t *testing.T) {
	const (
		d = 6
		w = int64(500)
	)
	c := NewCoordinator(d)
	s, err := NewDA1Site(SiteConfig{ID: 0, D: d, W: w, Eps: 0.15}, Loopback{c})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	truth := window.NewExact(w)
	var worst float64
	for i := int64(1); i <= 3000; i++ {
		v := randRow(d, rng)
		if err := s.Observe(i, v); err != nil {
			t.Fatal(err)
		}
		truth.Add(stream.Row{T: i, V: v})
		if i > 600 && i%300 == 0 {
			e := truth.CovErr(d, c.Sketch())
			if e > worst {
				worst = e
			}
		}
	}
	if worst > 0.6 {
		t.Fatalf("DA1 wire site max error %v", worst)
	}
}

func TestSumSiteLoopback(t *testing.T) {
	c := NewCoordinator(1)
	s, err := NewSumSite(SiteConfig{ID: 0, W: 200, Eps: 0.1}, Loopback{c})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 1000; i++ {
		if err := s.Observe(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Sum(); math.Abs(got-200) > 60 {
		t.Fatalf("Sum = %v, want ≈200", got)
	}
	s.Advance(100_000)
	if got := c.Sum(); math.Abs(got) > 20 {
		t.Fatalf("Sum after expiry = %v, want ≈0", got)
	}
}

func TestFullExpiryCancelsExactly(t *testing.T) {
	const d = 4
	c := NewCoordinator(d)
	s, _ := NewDA2Site(SiteConfig{ID: 0, D: d, W: 100, Eps: 0.2}, Loopback{c})
	rng := rand.New(rand.NewSource(3))
	for i := int64(1); i <= 1000; i++ {
		s.Observe(i, randRow(d, rng))
	}
	if err := s.Advance(100_000); err != nil {
		t.Fatal(err)
	}
	if f := mat.FrobSq(c.Sketch()); f > 1e-9 {
		t.Fatalf("residual mass %v after total expiry", f)
	}
}

// TestOverTCP runs a coordinator and multiple sites over real loopback TCP
// connections, concurrently, and checks the assembled sketch against the
// exact union window.
func TestOverTCP(t *testing.T) {
	const (
		d     = 5
		w     = int64(800)
		m     = 4
		nRows = 4000
	)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(d)
	go coord.Serve(ln)

	// Pre-generate the event sequence so truth is exact.
	rng := rand.New(rand.NewSource(4))
	type ev struct {
		site int
		t    int64
		v    []float64
	}
	evs := make([]ev, nRows)
	for i := range evs {
		evs[i] = ev{site: rng.Intn(m), t: int64(i + 1), v: randRow(d, rng)}
	}

	// Each site runs on its own goroutine over its own TCP connection,
	// consuming its sub-stream in timestamp order.
	var wg sync.WaitGroup
	siteErrs := make([]error, m)
	for si := 0; si < m; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				siteErrs[si] = err
				return
			}
			sender := NewConnSender(conn)
			defer sender.Close()
			site, err := NewDA2Site(SiteConfig{ID: si, D: d, W: w, Eps: 0.1}, sender)
			if err != nil {
				siteErrs[si] = err
				return
			}
			for _, e := range evs {
				if e.site != si {
					continue
				}
				if err := site.Observe(e.t, e.v); err != nil {
					siteErrs[si] = err
					return
				}
			}
			siteErrs[si] = site.Advance(int64(nRows))
		}(si)
	}
	wg.Wait()
	for si, err := range siteErrs {
		if err != nil {
			t.Fatalf("site %d: %v", si, err)
		}
	}
	// Give the coordinator a moment to drain the last in-flight frames.
	deadline := time.Now().Add(5 * time.Second)
	truth := window.NewExact(w)
	for _, e := range evs {
		truth.Add(stream.Row{T: e.t, V: e.v})
	}
	var errVal float64
	for {
		errVal = truth.CovErr(d, coord.Sketch())
		if errVal < 0.5 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	coord.Close()
	if errVal > 0.5 {
		t.Fatalf("TCP end-to-end covariance error %v", errVal)
	}
	if msgs, bytes := coord.Stats(); msgs == 0 || bytes == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestConnSenderRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	c := NewCoordinator(2)
	done := make(chan error, 1)
	go func() { done <- c.HandleConn(server) }()
	s := NewConnSender(client)
	if err := s.Send(Msg{Site: 3, Kind: DirectionAdd, T: 7, V: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	server.Close()
	<-done
	if f := mat.FrobSq(c.Sketch()); math.Abs(f-5) > 1e-9 {
		t.Fatalf("sketch mass %v, want 5", f)
	}
}

func TestSiteConfigValidation(t *testing.T) {
	c := NewCoordinator(2)
	if _, err := NewDA2Site(SiteConfig{D: 0, W: 10, Eps: 0.1}, Loopback{c}); err == nil {
		t.Fatal("want error for d=0")
	}
	if _, err := NewDA1Site(SiteConfig{D: 2, W: 0, Eps: 0.1}, Loopback{c}); err == nil {
		t.Fatal("want error for w=0")
	}
	if _, err := NewSumSite(SiteConfig{W: 10, Eps: 2}, Loopback{c}); err == nil {
		t.Fatal("want error for eps out of range")
	}
}
