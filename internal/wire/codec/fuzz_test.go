package codec

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// fuzzSeed returns raw frame bytes for seeding the corpora: a Hello plus
// a few representative frames.
func fuzzSeedMsgs() []byte {
	var buf bytes.Buffer
	enc := BinaryV2.NewEncoder(&buf)
	msgs := []Msg{
		{Site: 1, Kind: DirectionAdd, T: 7, Seq: 1, V: []float64{1.5, -2.5, 3.5}},
		{Site: 2, Kind: SumDelta, Delta: -0.25, Seq: 2, StreamID: "prices", Trace: 9, Span: 10},
		{Site: 3, Kind: DirectionRemove, V: []float64{0}},
	}
	for i := range msgs {
		enc.EncodeMsg(&msgs[i])
	}
	enc.Flush()
	return buf.Bytes()
}

func fuzzSeedAcks() []byte {
	var buf bytes.Buffer
	enc := BinaryV2.NewEncoder(&buf)
	for _, a := range []Ack{{Seq: 1}, {Seq: 2, Stream: "s"}, {Seq: 3, Nack: true}} {
		enc.EncodeAck(a)
	}
	enc.Flush()
	return buf.Bytes()
}

// drain decodes until the stream errors terminally, tolerating any number
// of corrupt-frame rejections. The invariants under fuzzing: no panic, no
// unbounded allocation, termination (every rejection consumes ≥1 byte or
// whole frame), and the terminal error is EOF-shaped or a read error —
// never a CorruptFrameError loop.
func drainMsgs(t *testing.T, raw []byte) {
	t.Helper()
	dec := BinaryV2.NewDecoder(bytes.NewReader(raw))
	defer dec.(*binaryDecoder).Release()
	var m Msg
	for i := 0; i <= len(raw)+16; i++ {
		err := dec.DecodeMsg(&m)
		if err == nil {
			continue
		}
		var cfe *CorruptFrameError
		if errors.As(err, &cfe) {
			continue
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return
		}
		t.Fatalf("unexpected terminal error class: %v", err)
	}
	t.Fatalf("decoder did not terminate on %d bytes", len(raw))
}

func FuzzDecodeMsg(f *testing.F) {
	seed := fuzzSeedMsgs()
	f.Add(seed)
	// A corrupted variant and a truncated one steer the fuzzer toward the
	// resync and EOF paths from generation zero.
	bad := append([]byte(nil), seed...)
	if len(bad) > 20 {
		bad[20] ^= 0x40
	}
	f.Add(bad)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{magic0, magic1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		drainMsgs(t, raw)
	})
}

func FuzzDecodeAck(f *testing.F) {
	seed := fuzzSeedAcks()
	f.Add(seed)
	trunc := seed
	if len(trunc) > 5 {
		trunc = seed[:len(seed)-5]
	}
	f.Add(trunc)
	f.Add([]byte{magic0, magic1, Version<<4 | ftAck, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		dec := BinaryV2.NewDecoder(bytes.NewReader(raw))
		defer dec.(*binaryDecoder).Release()
		var a Ack
		for i := 0; i <= len(raw)+16; i++ {
			err := dec.DecodeAck(&a)
			if err == nil {
				continue
			}
			var cfe *CorruptFrameError
			if errors.As(err, &cfe) {
				continue
			}
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return
			}
			t.Fatalf("unexpected terminal error class: %v", err)
		}
		t.Fatalf("ack decoder did not terminate on %d bytes", len(raw))
	})
}
