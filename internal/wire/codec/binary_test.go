package codec

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"distwindow/internal/obs"
	"distwindow/internal/obs/telemetry"
)

// copyMsg deep-copies a decoded Msg out of the decoder's reusable buffers
// and normalizes empty-vs-nil so gob and binary round trips compare equal.
func copyMsg(m Msg) Msg {
	if len(m.V) > 0 {
		m.V = append([]float64(nil), m.V...)
	} else {
		m.V = nil
	}
	if m.Tele != nil {
		t := *m.Tele
		if len(t.UpdateLat.Buckets) > 0 {
			t.UpdateLat.Buckets = append([]obs.HistBucket(nil), t.UpdateLat.Buckets...)
		} else {
			t.UpdateLat.Buckets = nil
		}
		m.Tele = &t
	}
	return m
}

// normMsg normalizes an input Msg the same way for comparison.
func normMsg(m Msg) Msg { return copyMsg(m) }

func randTele(rng *rand.Rand) *telemetry.Frame {
	f := &telemetry.Frame{
		Site:           rng.Intn(1 << 20),
		Stream:         "s" + string(rune('a'+rng.Intn(26))),
		Proto:          "da2",
		UnixNs:         rng.Int63(),
		Rows:           rng.Int63n(1 << 40),
		Msgs:           rng.Int63n(1 << 30),
		Words:          rng.Int63n(1 << 30),
		Replays:        rng.Int63n(100),
		Acked:          rng.Int63n(1 << 30),
		Backlog:        rng.Int63n(1000),
		Dials:          rng.Int63n(50),
		DialFails:      rng.Int63n(50),
		Eps:            rng.Float64(),
		Err:            rng.Float64(),
		Headroom:       rng.Float64(),
		WordsPerWindow: rng.Float64() * 1e6,
		Violations:     rng.Int63n(10),
	}
	f.UpdateLat.Count = rng.Int63n(1 << 20)
	f.UpdateLat.SumNs = rng.Int63n(1 << 40)
	for i := 0; i < rng.Intn(8); i++ {
		f.UpdateLat.Buckets = append(f.UpdateLat.Buckets,
			obs.HistBucket{UpperNs: int64(1000 << uint(i)), Count: rng.Int63n(1 << 20)})
	}
	return f
}

func randMsg(rng *rand.Rand) Msg {
	m := Msg{
		Site: rng.Intn(1 << 16),
		Kind: Kind(rng.Intn(4)),
		T:    rng.Int63(),
		Seq:  rng.Uint64() >> 1,
	}
	switch m.Kind {
	case DirectionAdd, DirectionRemove:
		n := 1 + rng.Intn(64)
		m.V = make([]float64, n)
		for i := range m.V {
			m.V[i] = rng.NormFloat64()
		}
	case SumDelta:
		m.Delta = rng.NormFloat64()
	case Telemetry:
		m.Tele = randTele(rng)
		m.Seq = 0
	}
	if rng.Intn(2) == 0 {
		m.Trace, m.Span = rng.Uint64(), rng.Uint64()
	}
	if rng.Intn(2) == 0 {
		m.StreamID = "stream-" + string(rune('a'+rng.Intn(26)))
	}
	return m
}

// TestMsgRoundTripPropertyVsGob is the round-trip property test: for a
// large randomized sample covering every Msg kind and every presence-flag
// combination, both codecs must decode back exactly what gob decodes —
// the binary framing is a re-encoding, never a re-interpretation.
func TestMsgRoundTripPropertyVsGob(t *testing.T) {
	rng := rand.NewSource(42)
	r := rand.New(rng)
	msgs := make([]Msg, 0, 400)
	for i := 0; i < 400; i++ {
		msgs = append(msgs, randMsg(r))
	}
	// Deterministic edge cases on top of the random sample.
	msgs = append(msgs,
		Msg{},
		Msg{Site: math.MaxInt32, Kind: SumDelta, Delta: math.Inf(1), T: math.MinInt64},
		Msg{Site: math.MinInt32, Kind: DirectionAdd, V: []float64{math.NaN()}},
		Msg{Kind: DirectionRemove, V: make([]float64, 1024), Seq: math.MaxUint64},
		Msg{StreamID: "только-utf8-✓", Kind: SumDelta, Delta: -1},
	)

	for _, cdc := range []Codec{Gob, BinaryV2} {
		var buf bytes.Buffer
		enc := cdc.NewEncoder(&buf)
		for i := range msgs {
			m := msgs[i]
			if err := enc.EncodeMsg(&m); err != nil {
				t.Fatalf("%s: encode msg %d: %v", cdc, i, err)
			}
		}
		if err := enc.Flush(); err != nil {
			t.Fatalf("%s: flush: %v", cdc, err)
		}
		dec := cdc.NewDecoder(&buf)
		for i := range msgs {
			var got Msg
			if err := dec.DecodeMsg(&got); err != nil {
				t.Fatalf("%s: decode msg %d: %v", cdc, i, err)
			}
			want := normMsg(msgs[i])
			g := copyMsg(got)
			// NaN breaks DeepEqual; compare bit patterns for V.
			if len(want.V) == len(g.V) {
				for j := range want.V {
					if math.Float64bits(want.V[j]) != math.Float64bits(g.V[j]) {
						t.Fatalf("%s: msg %d V[%d]: got %x want %x", cdc, i, j,
							math.Float64bits(g.V[j]), math.Float64bits(want.V[j]))
					}
				}
				want.V, g.V = nil, nil
			}
			if !reflect.DeepEqual(want, g) {
				t.Fatalf("%s: msg %d round trip:\n got %+v\nwant %+v", cdc, i, g, want)
			}
		}
		var tail Msg
		if err := dec.DecodeMsg(&tail); err != io.EOF {
			t.Fatalf("%s: want io.EOF after last frame, got %v", cdc, err)
		}
		if rel, ok := dec.(interface{ Release() }); ok {
			rel.Release()
		}
	}
}

func TestAckRoundTrip(t *testing.T) {
	acks := []Ack{
		{},
		{Seq: 1},
		{Seq: math.MaxUint64, Stream: "prices"},
		{Seq: 7, Nack: true},
		{Seq: 9, Stream: "s", Nack: true},
	}
	for _, cdc := range []Codec{Gob, BinaryV2} {
		var buf bytes.Buffer
		enc := cdc.NewEncoder(&buf)
		for _, a := range acks {
			if err := enc.EncodeAck(a); err != nil {
				t.Fatalf("%s: encode: %v", cdc, err)
			}
		}
		if err := enc.Flush(); err != nil {
			t.Fatalf("%s: flush: %v", cdc, err)
		}
		dec := cdc.NewDecoder(&buf)
		for i, want := range acks {
			var got Ack
			if err := dec.DecodeAck(&got); err != nil {
				t.Fatalf("%s: decode ack %d: %v", cdc, i, err)
			}
			if got != want {
				t.Fatalf("%s: ack %d: got %+v want %+v", cdc, i, got, want)
			}
		}
	}
}

// TestHelloPreamble checks the handshake frame: written once, invisible
// to DecodeMsg, and its version lands in PeerVersion.
func TestHelloPreamble(t *testing.T) {
	var buf bytes.Buffer
	enc := BinaryV2.NewEncoder(&buf)
	m := Msg{Site: 1, Kind: SumDelta, Delta: 2}
	if err := enc.EncodeMsg(&m); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if raw[0] != magic0 || raw[1] != magic1 || raw[2] != Version<<4|ftHello {
		t.Fatalf("stream does not open with a Hello frame: % x", raw[:4])
	}
	dec := BinaryV2.NewDecoder(&buf).(*binaryDecoder)
	var got Msg
	if err := dec.DecodeMsg(&got); err != nil {
		t.Fatalf("decode through Hello: %v", err)
	}
	if got.Site != 1 || got.Delta != 2 {
		t.Fatalf("got %+v", got)
	}
	if dec.PeerVersion() != Version {
		t.Fatalf("PeerVersion = %d, want %d", dec.PeerVersion(), Version)
	}
	// A second Flush cycle must not repeat the Hello.
	m2 := Msg{Site: 2, Kind: SumDelta, Delta: 3}
	if err := enc.EncodeMsg(&m2); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[2] == Version<<4|ftHello {
		t.Fatal("second batch repeated the Hello preamble")
	}
}

func TestDetect(t *testing.T) {
	for _, cdc := range []Codec{Gob, BinaryV2} {
		var buf bytes.Buffer
		enc := cdc.NewEncoder(&buf)
		m := Msg{Site: 3, Kind: SumDelta, Delta: 1.5, Seq: 1}
		if err := enc.EncodeMsg(&m); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		dec, got, err := Detect(&buf)
		if err != nil {
			t.Fatalf("%s: %v", cdc, err)
		}
		if got != cdc {
			t.Fatalf("Detect sniffed %s, want %s", got, cdc)
		}
		var out Msg
		if err := dec.DecodeMsg(&out); err != nil {
			t.Fatalf("%s: decode after sniff: %v", cdc, err)
		}
		if out.Site != 3 || out.Delta != 1.5 || out.Seq != 1 {
			t.Fatalf("%s: got %+v", cdc, out)
		}
	}
	// Empty connection: EOF, not a codec guess.
	if _, _, err := Detect(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("Detect on empty stream: %v, want io.EOF", err)
	}
}

// encodeFrames returns the raw bytes of the given messages (with Hello).
func encodeFrames(t *testing.T, msgs ...Msg) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := BinaryV2.NewEncoder(&buf)
	for i := range msgs {
		if err := enc.EncodeMsg(&msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// frameOffsets returns the start offset of each frame in raw (including
// the Hello at 0) by walking the trusted length fields.
func frameOffsets(raw []byte) []int {
	var offs []int
	for off := 0; off+headerLen <= len(raw); {
		offs = append(offs, off)
		plen := int(uint32(raw[off+4]) | uint32(raw[off+5])<<8 | uint32(raw[off+6])<<16 | uint32(raw[off+7])<<24)
		off += headerLen + plen
	}
	return offs
}

// TestResyncAfterCRCCorruption flips one payload byte in the middle frame
// of three: the decoder must reject exactly that frame and deliver the
// other two.
func TestResyncAfterCRCCorruption(t *testing.T) {
	m1 := Msg{Site: 1, Kind: DirectionAdd, V: []float64{1, 2, 3}, Seq: 1}
	m2 := Msg{Site: 1, Kind: DirectionAdd, V: []float64{4, 5, 6}, Seq: 2}
	m3 := Msg{Site: 1, Kind: DirectionAdd, V: []float64{7, 8, 9}, Seq: 3}
	raw := encodeFrames(t, m1, m2, m3)
	offs := frameOffsets(raw)
	if len(offs) != 4 { // Hello + 3 msgs
		t.Fatalf("frame walk found %d frames, want 4", len(offs))
	}
	raw[offs[2]+headerLen+5] ^= 0xFF // corrupt m2's payload

	dec := BinaryV2.NewDecoder(bytes.NewReader(raw))
	var got Msg
	if err := dec.DecodeMsg(&got); err != nil || got.Seq != 1 {
		t.Fatalf("frame 1: %+v, %v", got, err)
	}
	err := dec.DecodeMsg(&got)
	var cfe *CorruptFrameError
	if !errors.As(err, &cfe) {
		t.Fatalf("frame 2: want CorruptFrameError, got %v", err)
	}
	if cfe.Skipped == 0 {
		t.Fatalf("resync skipped 0 bytes: %v", cfe)
	}
	if err := dec.DecodeMsg(&got); err != nil || got.Seq != 3 {
		t.Fatalf("frame 3 after resync: %+v, %v", got, err)
	}
	if err := dec.DecodeMsg(&got); err != io.EOF {
		t.Fatalf("tail: %v, want io.EOF", err)
	}
}

// TestResyncAfterGarbagePrefix: leading junk before the first magic is
// reported once and the stream recovers.
func TestResyncAfterGarbagePrefix(t *testing.T) {
	m := Msg{Site: 9, Kind: SumDelta, Delta: 4, Seq: 1}
	raw := append([]byte{0x01, 0x02, 0x03, 0x04, 0xFF, 0xFE}, encodeFrames(t, m)...)
	dec := BinaryV2.NewDecoder(bytes.NewReader(raw))
	var got Msg
	err := dec.DecodeMsg(&got)
	var cfe *CorruptFrameError
	if !errors.As(err, &cfe) {
		t.Fatalf("want CorruptFrameError on junk prefix, got %v", err)
	}
	if err := dec.DecodeMsg(&got); err != nil || got.Seq != 1 {
		t.Fatalf("after resync: %+v, %v", got, err)
	}
}

// TestStructurallyMalformedPayload forges a CRC-valid frame whose declared
// row length overruns the payload: rejected as corrupt, frame skipped
// whole (trustworthy length ⇒ zero extra bytes scanned), stream continues.
func TestStructurallyMalformedPayload(t *testing.T) {
	good := Msg{Site: 2, Kind: SumDelta, Delta: 1, Seq: 5}
	var bad []byte
	bad, start := beginFrame(nil, ftMsg, 0)
	bad = appendU32(bad, 1)         // site
	bad = append(bad, byte(0))      // kind
	bad = appendU64(bad, 0)         // t
	bad = appendU64(bad, 1)         // seq
	bad = appendU32(bad, 1_000_000) // vlen far beyond the payload
	bad = sealFrameAt(bad, start)

	raw := append(bad, encodeFrames(t, good)...)
	dec := BinaryV2.NewDecoder(bytes.NewReader(raw))
	var got Msg
	err := dec.DecodeMsg(&got)
	var cfe *CorruptFrameError
	if !errors.As(err, &cfe) {
		t.Fatalf("want CorruptFrameError, got %v", err)
	}
	if cfe.Skipped != 0 {
		t.Fatalf("structurally-malformed frame should skip whole (0 scanned), got %d", cfe.Skipped)
	}
	if err := dec.DecodeMsg(&got); err != nil || got.Seq != 5 {
		t.Fatalf("after malformed frame: %+v, %v", got, err)
	}
}

// TestTruncatedFrameIsUnexpectedEOF: a connection dying mid-frame is a
// transport error, not corruption — the distinction keeps chaos-cut
// connections from counting as BadMsgs.
func TestTruncatedFrameIsUnexpectedEOF(t *testing.T) {
	raw := encodeFrames(t, Msg{Site: 1, Kind: DirectionAdd, V: []float64{1, 2}, Seq: 1})
	dec := BinaryV2.NewDecoder(bytes.NewReader(raw[:len(raw)-3]))
	var got Msg
	if err := dec.DecodeMsg(&got); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: %v, want io.ErrUnexpectedEOF", err)
	}
}

// countingWriter counts Write calls to observe coalescing.
type countingWriter struct {
	writes int
	bytes  int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	w.bytes += len(p)
	return len(p), nil
}

// TestCoalescing: a batch of encodes below the flush threshold reaches
// the writer as exactly one Write; gob writes through per frame.
func TestCoalescing(t *testing.T) {
	var w countingWriter
	enc := BinaryV2.NewEncoder(&w)
	for i := 0; i < 50; i++ {
		m := Msg{Site: 1, Kind: DirectionAdd, V: make([]float64, 16), Seq: uint64(i + 1)}
		if err := enc.EncodeMsg(&m); err != nil {
			t.Fatal(err)
		}
	}
	if w.writes != 0 {
		t.Fatalf("writes before Flush = %d, want 0 (coalesced)", w.writes)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.writes != 1 {
		t.Fatalf("writes after Flush = %d, want 1", w.writes)
	}
	// Above the threshold the encoder self-flushes to bound memory.
	w = countingWriter{}
	enc = BinaryV2.NewEncoder(&w)
	big := Msg{Site: 1, Kind: DirectionAdd, V: make([]float64, 4096)}
	for i := 0; i < 4; i++ {
		if err := enc.EncodeMsg(&big); err != nil {
			t.Fatal(err)
		}
	}
	if w.writes < 2 {
		t.Fatalf("threshold self-flush did not trigger: %d writes for %d bytes", w.writes, w.bytes)
	}
}

// TestEncodeErrorLeavesBatchIntact: a rejected frame (site outside int32)
// must not corrupt the pending batch — everything already encoded still
// decodes.
func TestEncodeErrorLeavesBatchIntact(t *testing.T) {
	var buf bytes.Buffer
	enc := BinaryV2.NewEncoder(&buf)
	ok := Msg{Site: 1, Kind: SumDelta, Delta: 1, Seq: 1}
	if err := enc.EncodeMsg(&ok); err != nil {
		t.Fatal(err)
	}
	bad := Msg{Site: math.MaxInt32 + 1, Kind: SumDelta, Delta: 2, Seq: 2}
	if err := enc.EncodeMsg(&bad); err == nil {
		t.Fatal("site beyond int32 must not encode")
	}
	ok2 := Msg{Site: 2, Kind: SumDelta, Delta: 3, Seq: 2}
	if err := enc.EncodeMsg(&ok2); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := BinaryV2.NewDecoder(&buf)
	var got Msg
	if err := dec.DecodeMsg(&got); err != nil || got.Seq != 1 {
		t.Fatalf("frame 1: %+v %v", got, err)
	}
	if err := dec.DecodeMsg(&got); err != nil || got.Site != 2 {
		t.Fatalf("frame after rejected encode: %+v %v", got, err)
	}
}

// TestDecoderBufferReuse pins the documented aliasing contract: the V of
// a decoded Msg is overwritten by the next decode.
func TestDecoderBufferReuse(t *testing.T) {
	raw := encodeFrames(t,
		Msg{Site: 1, Kind: DirectionAdd, V: []float64{1, 1, 1}, Seq: 1},
		Msg{Site: 1, Kind: DirectionAdd, V: []float64{2, 2, 2}, Seq: 2},
	)
	dec := BinaryV2.NewDecoder(bytes.NewReader(raw))
	var a, b Msg
	if err := dec.DecodeMsg(&a); err != nil {
		t.Fatal(err)
	}
	first := a.V
	if err := dec.DecodeMsg(&b); err != nil {
		t.Fatal(err)
	}
	if &first[0] != &b.V[0] {
		t.Fatal("decoder did not reuse its row buffer (zero-copy contract)")
	}
	if first[0] != 2 {
		t.Fatalf("aliased row not overwritten: %v", first)
	}
}

// TestSteadyStateFrameSmallerThanGob pins the bytes/frame ordering for a
// realistic direction row: v2's fixed layout beats gob's per-field walk
// once gob's one-time type descriptor is excluded. (The full honest
// accounting — including where gob wins — is cmd/benchjson's wire_codec
// section.)
func TestSteadyStateFrameSmallerThanGob(t *testing.T) {
	const d = 32
	m := Msg{Site: 3, Kind: DirectionAdd, T: 12345, Seq: 100, V: make([]float64, d)}
	for i := range m.V {
		m.V[i] = rand.New(rand.NewSource(7)).NormFloat64()
	}
	steady := func(c Codec) int {
		var buf bytes.Buffer
		enc := c.NewEncoder(&buf)
		if err := enc.EncodeMsg(&m); err != nil {
			t.Fatal(err)
		}
		enc.Flush()
		first := buf.Len()
		if err := enc.EncodeMsg(&m); err != nil {
			t.Fatal(err)
		}
		enc.Flush()
		return buf.Len() - first
	}
	g, v := steady(Gob), steady(BinaryV2)
	if v >= g {
		t.Fatalf("steady-state v2 frame (%dB) not smaller than gob (%dB) at d=%d", v, g, d)
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]Codec{"gob": Gob, "v2": BinaryV2, "binary": BinaryV2, "binary-v2": BinaryV2} {
		if got, ok := ByName(name); !ok || got != want {
			t.Fatalf("ByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ByName("json"); ok {
		t.Fatal("ByName accepted an unknown codec")
	}
}
