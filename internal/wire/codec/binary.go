package codec

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"distwindow/internal/obs"
	"distwindow/internal/obs/telemetry"
)

// Binary v2 framing. Every frame is
//
//	offset  size  field
//	0       1     magic0 (0xD5)
//	1       1     magic1 (0x9C)
//	2       1     version<<4 | frame type (0 Hello, 1 Msg, 2 Ack)
//	3       1     flags (presence bits, per frame type)
//	4       4     payload length, uint32 LE
//	8       4     CRC-32C (Castagnoli) of header[0:8] + payload, LE
//	12      —     payload
//
// all little-endian, fixed-width, varint-free. The CRC covers the header
// prefix too, so a flipped length or flag byte is caught, not obeyed. A
// frame that fails the CRC proves nothing about its own length field, so
// the decoder resynchronizes by scanning forward from the byte after the
// magic for the next magic pair; a frame whose CRC passes but whose
// payload is structurally malformed is skipped whole (its length is
// trustworthy). Both come back to the caller as *CorruptFrameError with
// the stream already positioned at the next candidate frame — corruption
// costs the frames it touched, never the connection.
//
// Msg payload (frame type 1), in order:
//
//	site  int32    kind uint8    t int64    seq uint64
//	[delta float64]                 — flagDelta
//	[stream uint16 len + bytes]     — flagStream
//	[trace uint64, span uint64]     — flagTrace
//	vlen  uint32 + vlen × float64   — always present (0 for scalar kinds)
//	[telemetry section]             — flagTele (see appendTele)
//
// Ack payload (frame type 2): seq uint64, then [stream uint16 len +
// bytes] under flagAckStream; flagNack marks a rewind request.
//
// Hello (frame type 0) is the one-shot handshake preamble: each encoder
// writes one Hello before its first frame, carrying the highest codec
// version the sender speaks; decoders record it and skip the frame. The
// negotiation matrix lives in PROTOCOLS.md — the short version is that
// sniffing does the work (a v2-aware coordinator detects either codec
// per connection) and Hello exists so a future v3 can be negotiated
// without a new magic byte.
const (
	magic0 = 0xD5
	magic1 = 0x9C

	// Version is the framing version this package speaks.
	Version = 2

	ftHello = 0
	ftMsg   = 1
	ftAck   = 2

	flagTrace  = 1 << 0
	flagTele   = 1 << 1
	flagStream = 1 << 2
	flagDelta  = 1 << 3

	flagNack      = 1 << 0
	flagAckStream = 1 << 1

	headerLen = 12

	// maxFramePayload bounds a frame's declared payload: ~8M floats per
	// direction row is far beyond any real dimension, and the bound keeps
	// a corrupted-but-CRC-lucky length from allocating gigabytes.
	maxFramePayload = 1 << 26

	// flushThreshold caps the coalescing buffer: a backlog replay flushes
	// whenever the pending batch reaches this size, then keeps encoding.
	flushThreshold = 64 << 10
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CorruptFrameError reports one rejected frame region on a binary v2
// stream. The decoder has already resynchronized past it: decoding may
// continue, and the bytes the rejected frame occupied are lost — the
// delivery layer's nack/replay machinery recovers the data.
type CorruptFrameError struct {
	// Reason is a short diagnostic ("crc mismatch", "bad magic", ...).
	Reason string
	// Skipped is the number of bytes discarded while scanning for the
	// next magic boundary (0 when the frame was skipped whole).
	Skipped int
}

func (e *CorruptFrameError) Error() string {
	return fmt.Sprintf("wire/codec: corrupt frame (%s), %d bytes skipped to resync", e.Reason, e.Skipped)
}

type binaryCodec struct{}

func (binaryCodec) String() string { return "v2" }

func (binaryCodec) NewEncoder(w io.Writer) Encoder { return &binaryEncoder{w: w} }

func (binaryCodec) NewDecoder(r io.Reader) Decoder { return newBinaryDecoderBuffered(r, nil) }

// binaryEncoder appends frames to a borrowed buffer and writes the whole
// batch in one Write on Flush. Between Flush calls the buffer lives here;
// after Flush it returns to the freelist, so all senders in the process
// share a small set of warm buffers.
type binaryEncoder struct {
	w         io.Writer
	buf       []byte
	helloSent bool
}

func (e *binaryEncoder) EncodeMsg(m *Msg) error {
	e.prepare()
	buf, err := appendMsgFrame(e.buf, m)
	if err != nil {
		return err
	}
	e.buf = buf
	if len(e.buf) >= flushThreshold {
		return e.Flush()
	}
	return nil
}

func (e *binaryEncoder) EncodeAck(a Ack) error {
	e.prepare()
	buf, err := appendAckFrame(e.buf, a)
	if err != nil {
		return err
	}
	e.buf = buf
	if len(e.buf) >= flushThreshold {
		return e.Flush()
	}
	return nil
}

// prepare borrows a batch buffer and, on the encoder's very first frame,
// queues the Hello preamble in front of it.
func (e *binaryEncoder) prepare() {
	if e.buf == nil {
		e.buf = frameBufs.get()
	}
	if !e.helloSent {
		e.helloSent = true
		e.buf = appendHelloFrame(e.buf)
	}
}

func (e *binaryEncoder) Flush() error {
	if len(e.buf) == 0 {
		return nil
	}
	_, err := e.w.Write(e.buf)
	frameBufs.put(e.buf)
	e.buf = nil
	return err
}

// appendHelloFrame appends the handshake preamble: the highest version
// the sender speaks plus three reserved bytes.
func appendHelloFrame(dst []byte) []byte {
	dst, _ = beginFrame(dst, ftHello, 0)
	dst = append(dst, Version, 0, 0, 0)
	return sealFrame(dst)
}

// beginFrame appends a frame header with zeroed length/CRC and returns
// the header's start offset; sealFrameAt fills both in once the payload
// has been appended after it.
func beginFrame(dst []byte, ft, flags byte) ([]byte, int) {
	start := len(dst)
	dst = append(dst, magic0, magic1, Version<<4|ft, flags, 0, 0, 0, 0, 0, 0, 0, 0)
	return dst, start
}

// seal fills in the open frame's length and CRC. start is the offset
// beginFrame returned.
func sealFrameAt(dst []byte, start int) []byte {
	payload := dst[start+headerLen:]
	binary.LittleEndian.PutUint32(dst[start+4:], uint32(len(payload)))
	crc := crc32.Update(0, crcTable, dst[start:start+8])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(dst[start+8:], crc)
	return dst
}

// sealFrame seals a frame whose header is the only one in dst's tail —
// used by fixed-shape frames (Hello) where the start offset is implied.
func sealFrame(dst []byte) []byte {
	return sealFrameAt(dst, len(dst)-headerLen-4)
}

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v), byte(v>>8))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

func appendStr(dst []byte, s string) []byte {
	dst = appendU16(dst, uint16(len(s)))
	return append(dst, s...)
}

// appendMsgFrame appends one sealed Msg frame. Frame-content problems
// (site outside int32, oversized stream id or row) error before anything
// is appended, so a failed encode leaves the batch buffer — and the
// connection — intact.
func appendMsgFrame(dst []byte, m *Msg) ([]byte, error) {
	if m.Site > math.MaxInt32 || m.Site < math.MinInt32 {
		return dst, fmt.Errorf("wire/codec: site %d outside int32 (v2 frame limit)", m.Site)
	}
	if len(m.StreamID) > math.MaxUint16 {
		return dst, fmt.Errorf("wire/codec: stream id %d bytes, limit %d", len(m.StreamID), math.MaxUint16)
	}
	if 8*len(m.V) > maxFramePayload-256 {
		return dst, fmt.Errorf("wire/codec: direction row %d floats exceeds the frame bound", len(m.V))
	}
	if m.Tele != nil {
		if len(m.Tele.Stream) > math.MaxUint16 || len(m.Tele.Proto) > math.MaxUint16 ||
			len(m.Tele.UpdateLat.Buckets) > math.MaxUint16 {
			return dst, fmt.Errorf("wire/codec: telemetry section field exceeds uint16 length")
		}
		if m.Tele.Site > math.MaxInt32 || m.Tele.Site < math.MinInt32 {
			return dst, fmt.Errorf("wire/codec: telemetry site %d outside int32", m.Tele.Site)
		}
	}
	var flags byte
	if m.Trace != 0 || m.Span != 0 {
		flags |= flagTrace
	}
	if m.Tele != nil {
		flags |= flagTele
	}
	if m.StreamID != "" {
		flags |= flagStream
	}
	if m.Delta != 0 {
		flags |= flagDelta
	}
	dst, start := beginFrame(dst, ftMsg, flags)
	dst = appendU32(dst, uint32(int32(m.Site)))
	dst = append(dst, byte(m.Kind))
	dst = appendU64(dst, uint64(m.T))
	dst = appendU64(dst, m.Seq)
	if flags&flagDelta != 0 {
		dst = appendF64(dst, m.Delta)
	}
	if flags&flagStream != 0 {
		dst = appendStr(dst, m.StreamID)
	}
	if flags&flagTrace != 0 {
		dst = appendU64(dst, m.Trace)
		dst = appendU64(dst, m.Span)
	}
	dst = appendU32(dst, uint32(len(m.V)))
	for _, v := range m.V {
		dst = appendU64(dst, math.Float64bits(v))
	}
	if flags&flagTele != 0 {
		dst = appendTele(dst, m.Tele)
	}
	return sealFrameAt(dst, start), nil
}

// appendTele appends the telemetry section: the frame's identity and
// counters fixed-width, the histogram length-prefixed.
func appendTele(dst []byte, f *telemetry.Frame) []byte {
	dst = appendU32(dst, uint32(int32(f.Site)))
	dst = appendStr(dst, f.Stream)
	dst = appendStr(dst, f.Proto)
	dst = appendU64(dst, uint64(f.UnixNs))
	dst = appendU64(dst, uint64(f.Rows))
	dst = appendU64(dst, uint64(f.Msgs))
	dst = appendU64(dst, uint64(f.Words))
	dst = appendU64(dst, uint64(f.Replays))
	dst = appendU64(dst, uint64(f.Acked))
	dst = appendU64(dst, uint64(f.Backlog))
	dst = appendU64(dst, uint64(f.Dials))
	dst = appendU64(dst, uint64(f.DialFails))
	dst = appendF64(dst, f.Eps)
	dst = appendF64(dst, f.Err)
	dst = appendF64(dst, f.Headroom)
	dst = appendF64(dst, f.WordsPerWindow)
	dst = appendU64(dst, uint64(f.Violations))
	dst = appendU64(dst, uint64(f.UpdateLat.Count))
	dst = appendU64(dst, uint64(f.UpdateLat.SumNs))
	dst = appendU16(dst, uint16(len(f.UpdateLat.Buckets)))
	for _, b := range f.UpdateLat.Buckets {
		dst = appendU64(dst, uint64(b.UpperNs))
		dst = appendU64(dst, uint64(b.Count))
	}
	return dst
}

func appendAckFrame(dst []byte, a Ack) ([]byte, error) {
	if len(a.Stream) > math.MaxUint16 {
		return dst, fmt.Errorf("wire/codec: stream id %d bytes, limit %d", len(a.Stream), math.MaxUint16)
	}
	var flags byte
	if a.Nack {
		flags |= flagNack
	}
	if a.Stream != "" {
		flags |= flagAckStream
	}
	dst, start := beginFrame(dst, ftAck, flags)
	dst = appendU64(dst, a.Seq)
	if flags&flagAckStream != 0 {
		dst = appendStr(dst, a.Stream)
	}
	return sealFrameAt(dst, start), nil
}

// binaryDecoder reads frames through a sliding window buffer it owns,
// which is what makes resynchronization possible: after a CRC failure
// the un-consumed window is scanned for the next magic boundary instead
// of trusting the corrupt frame's length. The window buffer comes from
// the freelist; Release returns it.
type binaryDecoder struct {
	r   io.Reader
	buf []byte
	off int

	// vbuf is the reusable direction-row buffer: DecodeMsg points the
	// returned Msg's V into it, valid until the next decode.
	vbuf []float64
	// tele is the reusable telemetry frame, same contract.
	tele telemetry.Frame

	// peerVersion is the version from the peer's Hello (0 before one
	// arrives).
	peerVersion byte

	released bool
}

// newBinaryDecoderBuffered builds a decoder whose window is pre-seeded
// with already-read bytes (the sniffed first byte from Detect).
func newBinaryDecoderBuffered(r io.Reader, seed []byte) *binaryDecoder {
	d := &binaryDecoder{r: r, buf: frameBufs.get()}
	d.buf = append(d.buf, seed...)
	return d
}

// Release returns the decoder's window buffer to the freelist. The
// decoder must not be used afterwards. Optional — a dropped decoder is
// merely garbage — but connection handlers call it so reconnect churn
// recycles buffers.
func (d *binaryDecoder) Release() {
	if d.released {
		return
	}
	d.released = true
	frameBufs.put(d.buf)
	d.buf = nil
}

// PeerVersion reports the version byte from the peer's Hello preamble
// (0 if none seen yet).
func (d *binaryDecoder) PeerVersion() byte { return d.peerVersion }

// need ensures at least n un-consumed bytes are buffered. A clean EOF at
// a frame boundary is io.EOF; an EOF mid-frame is io.ErrUnexpectedEOF —
// the connection died, which is the transport's problem, not corruption.
func (d *binaryDecoder) need(n int) error {
	have := len(d.buf) - d.off
	if have >= n {
		return nil
	}
	// Compact the consumed prefix away before growing.
	if d.off > 0 {
		copy(d.buf, d.buf[d.off:])
		d.buf = d.buf[:have]
		d.off = 0
	}
	for len(d.buf)-d.off < n {
		if cap(d.buf) == len(d.buf) {
			grow := cap(d.buf) * 2
			if grow < n+len(d.buf) {
				grow = n + len(d.buf)
			}
			nb := make([]byte, len(d.buf), grow)
			copy(nb, d.buf)
			d.buf = nb
		}
		m, err := d.r.Read(d.buf[len(d.buf):cap(d.buf)])
		d.buf = d.buf[:len(d.buf)+m]
		if err != nil {
			if err == io.EOF {
				if len(d.buf)-d.off == 0 {
					return io.EOF
				}
				return io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

// resync discards the current byte and scans the buffered window for the
// next magic pair, returning how many bytes were dropped. It never blocks
// for more input: if no boundary is buffered, everything except a
// possible straddling magic0 tail byte is discarded and the next
// need() resumes reading.
func (d *binaryDecoder) resync() int {
	skipped := 1
	d.off++
	w := d.buf[d.off:]
	for i := 0; i+1 < len(w); i++ {
		if w[i] == magic0 && w[i+1] == magic1 {
			d.off += i
			return skipped + i
		}
	}
	// No pair in the window; drop it all but keep a trailing magic0 that
	// might pair with the next read's first byte.
	drop := len(w)
	if drop > 0 && w[drop-1] == magic0 {
		drop--
	}
	d.off += drop
	return skipped + drop
}

// frame is one validated frame view. payload points into the decoder's
// window and is valid until the next nextFrame call.
type frame struct {
	ft      byte
	flags   byte
	payload []byte
}

// nextFrame returns the next CRC-valid frame, resynchronizing past
// corruption. Hello frames are consumed here, invisible to callers.
func (d *binaryDecoder) nextFrame() (frame, error) {
	for {
		if err := d.need(headerLen); err != nil {
			return frame{}, err
		}
		h := d.buf[d.off:]
		if h[0] != magic0 || h[1] != magic1 {
			n := d.resync()
			return frame{}, &CorruptFrameError{Reason: "bad magic", Skipped: n}
		}
		ver, ft := h[2]>>4, h[2]&0x0F
		plen := int(binary.LittleEndian.Uint32(h[4:8]))
		if ver != Version || ft > ftAck || plen > maxFramePayload {
			n := d.resync()
			return frame{}, &CorruptFrameError{Reason: "bad header", Skipped: n}
		}
		if err := d.need(headerLen + plen); err != nil {
			return frame{}, err
		}
		h = d.buf[d.off:]
		payload := h[headerLen : headerLen+plen]
		crc := crc32.Update(0, crcTable, h[:8])
		crc = crc32.Update(crc, crcTable, payload)
		if crc != binary.LittleEndian.Uint32(h[8:12]) {
			n := d.resync()
			return frame{}, &CorruptFrameError{Reason: "crc mismatch", Skipped: n}
		}
		d.off += headerLen + plen
		if ft == ftHello {
			if plen > 0 {
				d.peerVersion = payload[0]
			}
			continue
		}
		return frame{ft: ft, flags: h[3], payload: payload}, nil
	}
}

// cursor is a bounds-checked payload reader; every getter reports
// whether the read fit, so a CRC-valid but structurally malformed
// payload rejects cleanly instead of panicking or over-reading.
type cursor struct {
	b   []byte
	off int
	ok  bool
}

func (c *cursor) u8() byte {
	if c.off+1 > len(c.b) {
		c.ok = false
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u16() uint16 {
	if c.off+2 > len(c.b) {
		c.ok = false
		return 0
	}
	v := binary.LittleEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v
}

func (c *cursor) u32() uint32 {
	if c.off+4 > len(c.b) {
		c.ok = false
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	if c.off+8 > len(c.b) {
		c.ok = false
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *cursor) str() string {
	n := int(c.u16())
	if !c.ok || c.off+n > len(c.b) {
		c.ok = false
		return ""
	}
	s := string(c.b[c.off : c.off+n])
	c.off += n
	return s
}

// DecodeMsg decodes the next Msg frame. The returned Msg's V and Tele
// alias decoder-owned buffers valid until the next decode.
func (d *binaryDecoder) DecodeMsg(m *Msg) error {
	f, err := d.nextFrame()
	if err != nil {
		return err
	}
	if f.ft != ftMsg {
		return &CorruptFrameError{Reason: "unexpected ack frame on message stream"}
	}
	if !d.parseMsg(f, m) {
		return &CorruptFrameError{Reason: "malformed message payload"}
	}
	return nil
}

func (d *binaryDecoder) parseMsg(f frame, m *Msg) bool {
	*m = Msg{}
	c := cursor{b: f.payload, ok: true}
	m.Site = int(int32(c.u32()))
	m.Kind = Kind(c.u8())
	m.T = int64(c.u64())
	m.Seq = c.u64()
	if f.flags&flagDelta != 0 {
		m.Delta = c.f64()
	}
	if f.flags&flagStream != 0 {
		m.StreamID = c.str()
	}
	if f.flags&flagTrace != 0 {
		m.Trace = c.u64()
		m.Span = c.u64()
	}
	n := int(c.u32())
	if !c.ok || 8*n > len(f.payload)-c.off {
		return false
	}
	if n > 0 {
		if cap(d.vbuf) < n {
			d.vbuf = make([]float64, n)
		}
		d.vbuf = d.vbuf[:n]
		for i := 0; i < n; i++ {
			d.vbuf[i] = c.f64()
		}
		m.V = d.vbuf
	}
	if f.flags&flagTele != 0 {
		if !d.parseTele(&c) {
			return false
		}
		m.Tele = &d.tele
	}
	return c.ok && c.off == len(f.payload)
}

func (d *binaryDecoder) parseTele(c *cursor) bool {
	t := &d.tele
	*t = telemetry.Frame{}
	t.Site = int(int32(c.u32()))
	t.Stream = c.str()
	t.Proto = c.str()
	t.UnixNs = int64(c.u64())
	t.Rows = int64(c.u64())
	t.Msgs = int64(c.u64())
	t.Words = int64(c.u64())
	t.Replays = int64(c.u64())
	t.Acked = int64(c.u64())
	t.Backlog = int64(c.u64())
	t.Dials = int64(c.u64())
	t.DialFails = int64(c.u64())
	t.Eps = c.f64()
	t.Err = c.f64()
	t.Headroom = c.f64()
	t.WordsPerWindow = c.f64()
	t.Violations = int64(c.u64())
	t.UpdateLat.Count = int64(c.u64())
	t.UpdateLat.SumNs = int64(c.u64())
	n := int(c.u16())
	if !c.ok || 16*n > len(c.b)-c.off {
		return false
	}
	if n > 0 {
		if cap(t.UpdateLat.Buckets) < n {
			t.UpdateLat.Buckets = make([]obs.HistBucket, n)
		}
		t.UpdateLat.Buckets = t.UpdateLat.Buckets[:n]
		for i := 0; i < n; i++ {
			t.UpdateLat.Buckets[i] = obs.HistBucket{UpperNs: int64(c.u64()), Count: int64(c.u64())}
		}
	}
	return c.ok
}

// DecodeAck decodes the next Ack frame.
func (d *binaryDecoder) DecodeAck(a *Ack) error {
	f, err := d.nextFrame()
	if err != nil {
		return err
	}
	if f.ft != ftAck {
		return &CorruptFrameError{Reason: "unexpected message frame on ack stream"}
	}
	*a = Ack{}
	c := cursor{b: f.payload, ok: true}
	a.Seq = c.u64()
	a.Nack = f.flags&flagNack != 0
	if f.flags&flagAckStream != 0 {
		a.Stream = c.str()
	}
	if !c.ok || c.off != len(f.payload) {
		return &CorruptFrameError{Reason: "malformed ack payload"}
	}
	return nil
}
