// Package codec defines the wire message types of the distributed
// deployment (Msg, Ack) and the two framings that can carry them: the
// legacy encoding/gob streams every release has spoken since the wire
// first existed, and the hand-rolled binary v2 framing (binary.go) that
// writes a direction row as one length-prefixed bulk copy instead of a
// reflective per-field walk.
//
// The types live here — not in package wire — so the framings can be
// implemented and fuzzed in isolation; package wire aliases them back
// (wire.Msg = codec.Msg), which keeps both the public API and the gob
// wire format unchanged: gob names a struct by its bare type name, so a
// frame encoded from codec.Msg is byte-identical to one encoded from the
// old wire.Msg.
//
// A connection's codec is chosen by the sender and detected by the
// coordinator from the first byte (Detect): a gob stream's first byte is
// a message length or a type-descriptor count, both encoded as gob
// unsigned ints whose first byte is < 0x80 or ≥ 0xF8 — so the v2 magic
// byte 0xD5, sitting in the gap [0x80, 0xF7], can never open a gob
// stream. Acks flow back in the codec the frames arrived in.
package codec

import (
	"bytes"
	"encoding/gob"
	"io"
	"sync"

	"distwindow/internal/obs/telemetry"
)

// Msg is the single message type of the one-way protocols.
//
// The trace fields propagate causal-trace context across the wire; they
// are zero on untraced messages, and gob's field matching keeps the frame
// format backward compatible in both directions: a pre-trace sender's
// frames decode at a new coordinator with zero trace fields, and a new
// sender's frames decode at an old coordinator, which ignores the fields
// it does not know. The same matching rule covers Seq: an old sender's
// frames decode with Seq 0 (unsequenced, no dedup, no acks) and a new
// sender's frames decode at an old coordinator, which simply never acks.
// StreamID rides the same rule: an old sender's frames decode with
// StreamID "" (the default stream), and a stream-aware sender's frames
// decode at an old coordinator, which folds every stream into its single
// estimate and acks without the stream tag — correct only for the default
// stream, which is why multiplexing non-default streams requires a
// stream-aware coordinator (see PROTOCOLS.md). The binary v2 framing
// carries the same fields behind presence flags, so the compatibility
// story is identical there.
type Msg struct {
	// Site identifies the sender.
	Site int
	// Kind selects the payload.
	Kind Kind
	// T is the triggering timestamp.
	T int64
	// V is a direction row (Direction kinds).
	V []float64
	// Delta is a scalar update (SumDelta kind).
	Delta float64
	// Trace and Span carry the sender's trace context (0 = untraced): the
	// root trace ID and the sending span's ID, so the coordinator's apply
	// span joins the site's causal chain.
	Trace, Span uint64
	// Seq is the sender-assigned sequence number, strictly increasing per
	// site (0 = unsequenced legacy frame). The coordinator acknowledges
	// every sequenced frame it consumes and drops frames whose Seq it has
	// already seen, so replaying an unacknowledged backlog after a
	// reconnect or a site restart is exactly-once instead of at-most-once.
	// One (site, stream) pair must use one sequence space: its deltas are
	// dedup-keyed by (Site, StreamID, Seq).
	Seq uint64
	// StreamID names the logical stream this frame belongs to, letting
	// many independently-tracked streams multiplex over one connection.
	// "" is the default stream — the only stream that existed before
	// multiplexing, so legacy frames decode onto it unchanged. Each
	// stream has its own coordinator estimate, its own sequence space and
	// its own dedup/liveness record.
	StreamID string
	// Tele carries a telemetry frame (Telemetry kind only, nil otherwise).
	// Telemetry rides the same connection as the estimate traffic but
	// outside the seq/ack space: frames are unsequenced (Seq 0), never
	// acked, never deduped, and never touch the estimates or the delivery
	// counters, so enabling telemetry cannot perturb a deterministic data
	// soak.
	Tele *telemetry.Frame
}

// Ack acknowledges every sequenced frame of one (connection, stream) up
// to and including Seq. Acks are cumulative per stream and flow
// coordinator→site on the same TCP connection the frames arrived on; a
// sender may retire a whole per-stream backlog prefix on one ack.
type Ack struct {
	// Seq is the highest consumed sequence number of the stream.
	Seq uint64
	// Stream names the acknowledged stream ("" = default). Pre-stream
	// coordinators never set it, so their acks only retire the default
	// stream — see the Msg.StreamID compatibility note.
	Stream string
	// Nack, when set, turns the ack into a rewind request: the
	// coordinator consumed the stream only up to Seq and asks the sender
	// to re-send every unacknowledged frame of the stream from the
	// backlog — the recovery path after a CRC-rejected frame on a binary
	// v2 connection (PROTOCOLS.md, "corruption and resynchronization").
	// Old senders decode the unknown field away and treat the frame as a
	// plain cumulative ack, which retires nothing extra and is safe: on
	// gob connections corruption kills the connection and the redial
	// replays the backlog anyway.
	Nack bool
}

// Kind enumerates message payloads.
type Kind uint8

// Message kinds: directions add/remove vᵀv from the coordinator's Ĉ;
// SumDelta adjusts the scalar estimate; Telemetry carries a metrics frame
// for the fleet view (never part of the estimate or the seq/ack space).
const (
	DirectionAdd Kind = iota
	DirectionRemove
	SumDelta
	Telemetry
)

// Encoder writes Msg/Ack frames onto one stream. Implementations are not
// safe for concurrent use; the owning sender serializes.
//
// EncodeMsg may buffer: frames become visible to the peer at the latest
// on Flush, which writes everything buffered in one Write — the
// writev-style coalescing the resilient sender uses to replay a backlog
// batch in one syscall. The gob encoder writes through on every call and
// its Flush is a no-op, preserving the legacy stream byte for byte.
type Encoder interface {
	EncodeMsg(*Msg) error
	EncodeAck(Ack) error
	Flush() error
}

// Decoder reads Msg/Ack frames from one stream.
//
// DecodeMsg overwrites *Msg entirely. The binary decoder reuses its
// internal buffers: the returned Msg's V (and Tele) are valid only until
// the next Decode call — callers that retain a frame must copy. A
// *CorruptFrameError reports a frame rejected by CRC or structure with
// the stream already resynchronized: the caller may keep decoding.
type Decoder interface {
	DecodeMsg(*Msg) error
	DecodeAck(*Ack) error
}

// Codec pairs an encoder and decoder over one framing.
type Codec interface {
	// String is the codec's flag-friendly name ("gob", "v2").
	String() string
	NewEncoder(w io.Writer) Encoder
	NewDecoder(r io.Reader) Decoder
}

// Gob is the legacy encoding/gob framing — the wire format of every
// release before codec v2, byte-identical to the original streams.
var Gob Codec = gobCodec{}

// BinaryV2 is the hand-rolled little-endian binary framing with per-frame
// CRC and magic-boundary resynchronization (see binary.go and
// PROTOCOLS.md for the normative layout).
var BinaryV2 Codec = binaryCodec{}

// ByName resolves a codec from its flag name. Recognized: "gob", "v2"
// (also "binary", "binary-v2").
func ByName(name string) (Codec, bool) {
	switch name {
	case "gob":
		return Gob, true
	case "v2", "binary", "binary-v2":
		return BinaryV2, true
	}
	return nil, false
}

// Detect sniffs a connection's codec from its first byte and returns a
// decoder positioned at the start of the stream. A gob stream can never
// begin with the v2 magic byte (see the package comment), so the sniff is
// unambiguous. The read blocks until the sender's first frame arrives;
// io.EOF means the connection closed without sending anything.
func Detect(r io.Reader) (Decoder, Codec, error) {
	var first [1]byte
	if _, err := io.ReadFull(r, first[:]); err != nil {
		return nil, nil, err
	}
	if first[0] == magic0 {
		return newBinaryDecoderBuffered(r, first[:]), BinaryV2, nil
	}
	return Gob.NewDecoder(io.MultiReader(bytes.NewReader(first[:]), r)), Gob, nil
}

// gobCodec wraps encoding/gob behind the Codec seam.
type gobCodec struct{}

func (gobCodec) String() string { return "gob" }

func (gobCodec) NewEncoder(w io.Writer) Encoder { return &gobEncoder{enc: gob.NewEncoder(w)} }

func (gobCodec) NewDecoder(r io.Reader) Decoder { return &gobDecoder{dec: gob.NewDecoder(r)} }

type gobEncoder struct{ enc *gob.Encoder }

func (e *gobEncoder) EncodeMsg(m *Msg) error { return e.enc.Encode(m) }
func (e *gobEncoder) EncodeAck(a Ack) error  { return e.enc.Encode(a) }
func (e *gobEncoder) Flush() error           { return nil }

type gobDecoder struct{ dec *gob.Decoder }

func (d *gobDecoder) DecodeMsg(m *Msg) error {
	// gob leaves fields absent on the wire untouched, so a reused Msg
	// must be cleared or a short frame would inherit the previous one's
	// V/Tele.
	*m = Msg{}
	return d.dec.Decode(m)
}

func (d *gobDecoder) DecodeAck(a *Ack) error {
	*a = Ack{}
	return d.dec.Decode(a)
}

// freelist recycles byte buffers across connections and flushes — the
// PR 4 freelist idiom (a mutex-guarded stack, no sync.Pool GC coupling).
// Encoders borrow a buffer per coalesced batch and return it on Flush;
// decoders borrow one per connection and return it on Release, so
// reconnect churn stops paying buffer warm-up.
type freelist struct {
	mu   sync.Mutex
	free [][]byte
}

// freelistCap bounds retained buffers; freelistMaxBuf drops oversized
// buffers for the GC so one giant frame cannot pin memory forever.
const (
	freelistCap    = 64
	freelistMaxBuf = 1 << 20
)

func (p *freelist) get() []byte {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return b[:0]
	}
	p.mu.Unlock()
	return make([]byte, 0, 4096)
}

func (p *freelist) put(b []byte) {
	if cap(b) == 0 || cap(b) > freelistMaxBuf {
		return
	}
	p.mu.Lock()
	if len(p.free) < freelistCap {
		p.free = append(p.free, b[:0])
	}
	p.mu.Unlock()
}

var frameBufs freelist
