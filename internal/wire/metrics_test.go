package wire

import (
	"encoding/json"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"distwindow/internal/obs"
)

// TestMetricsEndpointsWhileStreaming drives two TCP sites into a
// coordinator and hits /metrics and /healthz from another goroutine while
// the rows are still flowing — the deployment shape the metrics layer
// exists for.
func TestMetricsEndpointsWhileStreaming(t *testing.T) {
	const (
		d     = 4
		w     = int64(400)
		m     = 2
		nRows = 3000
	)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(d)
	var sink obs.CountingSink
	coord.SetSink(&sink)
	go coord.Serve(ln)

	srv := httptest.NewServer(coord.MetricsMux())
	defer srv.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	started := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	senders := make([]*ConnSender, m)
	siteErrs := make([]error, m)
	for si := 0; si < m; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				siteErrs[si] = err
				return
			}
			sender := NewConnSender(conn)
			senders[si] = sender
			defer sender.Close()
			site, err := NewDA1Site(SiteConfig{ID: si, D: d, W: w, Eps: 0.15}, sender)
			if err != nil {
				siteErrs[si] = err
				return
			}
			rng := rand.New(rand.NewSource(int64(si)))
			for i := 1; i <= nRows; i++ {
				v := make([]float64, d)
				for j := range v {
					v[j] = rng.NormFloat64()
				}
				if err := site.Observe(int64(i), v); err != nil {
					siteErrs[si] = err
					return
				}
				if i == 50 {
					once.Do(func() { close(started) })
				}
			}
		}(si)
	}

	// Poll the endpoints mid-stream.
	<-started
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz mid-stream = %d", code)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics mid-stream = %d", code)
	}
	var mid CoordinatorMetrics
	if err := json.Unmarshal(body, &mid); err != nil {
		t.Fatalf("mid-stream /metrics not valid JSON: %v\n%s", err, body)
	}

	wg.Wait()
	for si, err := range siteErrs {
		if err != nil {
			t.Fatalf("site %d: %v", si, err)
		}
	}
	// Let the coordinator drain in-flight frames before the final read.
	deadline := time.Now().Add(5 * time.Second)
	var fin CoordinatorMetrics
	for {
		_, body = get("/metrics")
		if err := json.Unmarshal(body, &fin); err != nil {
			t.Fatal(err)
		}
		if fin.Msgs > mid.Msgs || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	coord.Close()

	if fin.Msgs == 0 || fin.Bytes == 0 {
		t.Fatalf("final metrics empty: %+v", fin)
	}
	if fin.DirectionAdds+fin.DirectionRemoves+fin.SumDeltas != fin.Msgs {
		t.Fatalf("per-kind counters (%d+%d+%d) don't sum to Msgs (%d)",
			fin.DirectionAdds, fin.DirectionRemoves, fin.SumDeltas, fin.Msgs)
	}
	if msgs, _ := coord.Stats(); msgs != fin.Msgs {
		t.Fatalf("Stats (%d) and Metrics (%d) disagree", msgs, fin.Msgs)
	}
	if got := sink.Count(obs.EvMsgReceived); got != fin.Msgs {
		t.Fatalf("sink saw %d EvMsgReceived, coordinator counted %d", got, fin.Msgs)
	}

	var sent int64
	for _, s := range senders {
		sm := s.Metrics()
		sent += sm.Msgs
		if sm.Msgs > 0 && sm.EncodeLatency.Count != sm.Msgs {
			t.Fatalf("sender timed %d encodes for %d msgs", sm.EncodeLatency.Count, sm.Msgs)
		}
	}
	if sent != fin.Msgs {
		t.Fatalf("senders sent %d, coordinator received %d", sent, fin.Msgs)
	}
}

func TestCoordinatorConnsGauge(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(2)
	go coord.Serve(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sender := NewConnSender(conn)
	if err := sender.Send(Msg{Site: 0, Kind: DirectionAdd, T: 1, V: []float64{1, 0}}); err != nil {
		t.Fatal(err)
	}
	waitFor := func(want int64) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for coord.Metrics().Conns != want {
			if time.Now().After(deadline) {
				t.Fatalf("Conns = %d, want %d", coord.Metrics().Conns, want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(1)
	sender.Close()
	waitFor(0)
	coord.Close()
}
