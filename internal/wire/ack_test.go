package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"math"
	"net"
	"testing"
	"time"

	"distwindow/internal/chaos"
	"distwindow/internal/obs"
	"distwindow/mat"
)

// drainSender polls Flush until the backlog empties or the deadline
// passes, returning the final pending count. Flush also retries the dial,
// so a sender whose connection a fault killed makes progress here.
func drainSender(s *ResilientSender, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		if n := s.Flush(); n == 0 {
			return 0
		}
		if time.Now().After(deadline) {
			return s.Pending()
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAcceptedButUndeliveredFrameIsRecovered is the regression test for
// the silent-loss bug: a connection that accepts a write and then dies
// before delivery used to lose the frame permanently, because the sender
// retired messages on write success. With acknowledged frames the message
// stays in the backlog until the coordinator has actually consumed it.
func TestAcceptedButUndeliveredFrameIsRecovered(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	coord := NewCoordinator(2)
	go coord.Serve(ln)

	// One write in ten is accepted but never delivered (and the
	// connection dies, as a crashed peer's would).
	inj := chaos.New(chaos.Config{Seed: 7, PDrop: 0.1})
	s := NewResilientSenderFunc(inj.Dial(func() (io.WriteCloser, error) {
		return net.Dial("tcp", ln.Addr().String())
	}))

	const n = 30
	for i := 0; i < n; i++ {
		if err := s.Send(Msg{Site: 0, Kind: DirectionAdd, T: int64(i + 1), V: []float64{1, 0}}); err != nil {
			t.Fatal(err)
		}
	}
	if p := drainSender(s, 10*time.Second); p != 0 {
		t.Fatalf("%d messages still pending after drain", p)
	}
	if st := inj.Stats(); st.Drops == 0 {
		t.Fatalf("chaos injected no drops (stats %+v); the regression was not exercised", st)
	}

	// Every frame must land exactly once: trace(Ĉ) = n.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if f := mat.FrobSq(coord.Sketch()); math.Abs(f-n) < 1e-9 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sketch mass %v, want %d: frames were lost or double-applied", mat.FrobSq(coord.Sketch()), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cm := coord.Metrics()
	if cm.Msgs != n {
		t.Fatalf("coordinator applied %d msgs, want exactly %d", cm.Msgs, n)
	}
	s.DiscardPending = true
	s.Close()
}

// discardConn accepts every write and delivers none of them — the
// transport-level shape of "the kernel took the bytes, the peer never
// saw them".
type discardConn struct{ n int }

func (d *discardConn) Write(p []byte) (int, error) { d.n += len(p); return len(p), nil }
func (d *discardConn) Close() error                { return nil }

// TestLegacyModeDocumentsTheLoss pins the failure the ack path fixes: on
// a write-only transport (no acks possible) the sender retires frames on
// write success, so an accepted-but-undelivered frame is gone —
// at-most-once is the best that mode can do.
func TestLegacyModeDocumentsTheLoss(t *testing.T) {
	sink := &discardConn{}
	s := NewResilientSenderFunc(func() (io.WriteCloser, error) { return sink, nil })
	if err := s.Send(Msg{Kind: SumDelta, Delta: 1}); err != nil {
		t.Fatal(err)
	}
	if p := s.Pending(); p != 0 {
		t.Fatalf("legacy mode should retire on write; pending = %d", p)
	}
	if sink.n == 0 {
		t.Fatal("nothing was written at all")
	}
	// No receiver exists and the sender believes it is done: the frame is
	// lost. The ack path makes this impossible on bidirectional conns.
}

func TestCoordinatorDedupsReplayedFrames(t *testing.T) {
	c := NewCoordinator(2)
	m := Msg{Site: 0, Kind: DirectionAdd, T: 1, V: []float64{1, 0}, Seq: 1}
	for i := 0; i < 3; i++ {
		if err := c.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	if f := mat.FrobSq(c.Sketch()); math.Abs(f-1) > 1e-12 {
		t.Fatalf("sketch mass %v after replays, want 1", f)
	}
	cm := c.Metrics()
	if cm.Msgs != 1 || cm.DupMsgs != 2 {
		t.Fatalf("Msgs=%d DupMsgs=%d, want 1 applied and 2 deduped", cm.Msgs, cm.DupMsgs)
	}
	// A different site's Seq 1 is its own sequence space.
	if err := c.Apply(Msg{Site: 1, Kind: DirectionAdd, T: 1, V: []float64{0, 1}, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if f := mat.FrobSq(c.Sketch()); math.Abs(f-2) > 1e-12 {
		t.Fatalf("sketch mass %v, want 2: per-site dedup keyed wrongly", f)
	}
	// Unsequenced legacy frames are never deduped.
	for i := 0; i < 2; i++ {
		if err := c.Apply(Msg{Site: 0, Kind: SumDelta, Delta: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Sum() != 2 {
		t.Fatalf("Sum = %v, want 2: legacy frames must not be deduped", c.Sum())
	}
}

func TestPoisonFrameConsumedOnce(t *testing.T) {
	c := NewCoordinator(2)
	bad := Msg{Site: 0, Kind: DirectionAdd, T: 1, V: []float64{1}, Seq: 5} // wrong dimension
	if err := c.Apply(bad); err == nil {
		t.Fatal("want rejection for wrong dimension")
	}
	// The replay of the rejected frame is deduped, not re-rejected: its
	// seq was consumed, so the sender's backlog can retire it on ack.
	if err := c.Apply(bad); err != nil {
		t.Fatalf("replayed poison frame: %v, want silent dedup", err)
	}
	cm := c.Metrics()
	if cm.BadMsgs != 1 || cm.DupMsgs != 1 {
		t.Fatalf("BadMsgs=%d DupMsgs=%d, want 1 and 1", cm.BadMsgs, cm.DupMsgs)
	}
}

func TestHandleConnAcksSequencedFrames(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	coord := NewCoordinator(2)
	go coord.Serve(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	for i := 1; i <= 3; i++ {
		if err := enc.Encode(Msg{Site: 0, Kind: SumDelta, T: int64(i), Delta: 1, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 3; i++ {
		var a Ack
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if err := dec.Decode(&a); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
		if a.Seq != uint64(i) {
			t.Fatalf("ack %d carries seq %d", i, a.Seq)
		}
	}
	if cm := coord.Metrics(); cm.AckedMsgs != 3 {
		t.Fatalf("AckedMsgs = %d, want 3", cm.AckedMsgs)
	}
}

// legacySeqMsg is the pre-ack frame shape: Msg without Seq (the trace
// fields had already shipped). Both directions must keep decoding.
type legacySeqMsg struct {
	Site        int
	Kind        Kind
	T           int64
	V           []float64
	Delta       float64
	Trace, Span uint64
}

func TestGobCompatSeqField(t *testing.T) {
	// Old sender → new coordinator: Seq decodes as 0 (unsequenced), the
	// frame is applied, and no ack is written.
	var up bytes.Buffer
	if err := gob.NewEncoder(&up).Encode(legacySeqMsg{Site: 2, Kind: SumDelta, T: 4, Delta: 9}); err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(2)
	var acks bytes.Buffer
	if err := c.HandleConn(readWriter{&up, &acks}); err != nil {
		t.Fatalf("HandleConn on pre-ack stream: %v", err)
	}
	if c.Sum() != 9 {
		t.Fatalf("Sum = %v, want 9", c.Sum())
	}
	if acks.Len() != 0 {
		t.Fatal("coordinator acked an unsequenced legacy frame")
	}

	// New sender → old coordinator: a sequenced frame decodes into the
	// pre-ack shape with Seq simply ignored.
	var down bytes.Buffer
	if err := gob.NewEncoder(&down).Encode(Msg{Site: 1, Kind: DirectionAdd, T: 2, V: []float64{1, 2}, Seq: 77}); err != nil {
		t.Fatal(err)
	}
	var got legacySeqMsg
	if err := gob.NewDecoder(&down).Decode(&got); err != nil {
		t.Fatalf("legacy decode of sequenced frame: %v", err)
	}
	if got.Site != 1 || got.Kind != DirectionAdd || len(got.V) != 2 {
		t.Fatalf("legacy decode mangled the frame: %+v", got)
	}
}

type readWriter struct {
	io.Reader
	io.Writer
}

func TestDialBackoffLimitsAttempts(t *testing.T) {
	dials := 0
	s := NewResilientSenderFunc(func() (io.WriteCloser, error) {
		dials++
		return nil, errors.New("down")
	})
	s.BackoffBase = 20 * time.Millisecond
	s.BackoffMax = 100 * time.Millisecond
	s.SetJitterSeed(1)
	const n = 500
	for i := 0; i < n; i++ {
		if err := s.Send(Msg{Kind: SumDelta, Delta: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// 500 sends land well inside the first few backoff windows; without
	// backoff every one of them would have dialed.
	if dials >= n/10 {
		t.Fatalf("%d dial attempts for %d sends; backoff is not gating dials", dials, n)
	}
	m := s.Metrics()
	if m.DialAttempts != int64(dials) || m.DialFailures != int64(dials) {
		t.Fatalf("metrics report %d/%d dial attempts/failures, observed %d", m.DialAttempts, m.DialFailures, dials)
	}
}

func TestBackoffResetsAfterSuccess(t *testing.T) {
	fail := true
	var sink bytes.Buffer
	s := NewResilientSenderFunc(func() (io.WriteCloser, error) {
		if fail {
			return nil, errors.New("down")
		}
		return nopCloser{&sink}, nil
	})
	s.BackoffBase = time.Millisecond
	s.BackoffMax = 4 * time.Millisecond
	s.SetJitterSeed(1)
	s.Send(Msg{Kind: SumDelta, Delta: 1})
	fail = false
	if p := drainSender(s, 2*time.Second); p != 0 {
		t.Fatalf("%d pending after recovery", p)
	}
	if sink.Len() == 0 {
		t.Fatal("nothing delivered after the backoff window elapsed")
	}
}

func TestCloseRefusesToLosePending(t *testing.T) {
	s := NewResilientSenderFunc(func() (io.WriteCloser, error) {
		return nil, errors.New("down")
	})
	for i := 0; i < 4; i++ {
		s.Send(Msg{Kind: SumDelta, Delta: 1})
	}
	err := s.Close()
	var pe *PendingError
	if !errors.As(err, &pe) {
		t.Fatalf("Close with backlog: %v, want *PendingError", err)
	}
	if pe.Pending != 4 {
		t.Fatalf("PendingError.Pending = %d, want 4", pe.Pending)
	}
	// The refused close left the sender usable.
	if s.Pending() != 4 {
		t.Fatalf("backlog disturbed by refused close: %d", s.Pending())
	}
	s.DiscardPending = true
	if err := s.Close(); err != nil {
		t.Fatalf("Close with DiscardPending: %v", err)
	}
	if s.Pending() != 0 {
		t.Fatal("DiscardPending close kept the backlog")
	}
}

func TestLivenessStaleAndResync(t *testing.T) {
	c := NewCoordinator(2)
	clock := time.Unix(0, 0)
	c.now = func() time.Time { return clock }
	c.SetStaleAfter(10 * time.Second)
	var events []obs.Event
	c.SetSink(obs.FuncSink(func(e obs.Event) { events = append(events, e) }))

	c.Apply(Msg{Site: 0, Kind: SumDelta, Delta: 1, Seq: 1})
	c.Apply(Msg{Site: 1, Kind: SumDelta, Delta: 1, Seq: 1})
	if n := c.CheckLiveness(); n != 0 {
		t.Fatalf("%d stale sites immediately after frames", n)
	}

	clock = clock.Add(time.Minute)
	c.Apply(Msg{Site: 1, Kind: SumDelta, Delta: 1, Seq: 2})
	if n := c.CheckLiveness(); n != 1 {
		t.Fatalf("%d stale sites, want 1 (site 0 silent)", n)
	}
	// The transition is reported once, not on every sweep.
	if n := c.CheckLiveness(); n != 1 {
		t.Fatalf("second sweep reports %d stale", n)
	}
	var staleEvents, resyncEvents int
	for _, e := range events {
		switch e.Kind {
		case obs.EvSiteStale:
			staleEvents++
		case obs.EvSiteResync:
			resyncEvents++
		}
	}
	if staleEvents != 1 {
		t.Fatalf("%d EvSiteStale events, want 1", staleEvents)
	}

	sts := c.SiteStatuses()
	if len(sts) != 2 || !sts[0].Stale || sts[1].Stale {
		t.Fatalf("SiteStatuses = %+v, want site 0 stale only", sts)
	}

	// Site 0 delivers again: resync event, staleness clears.
	c.Apply(Msg{Site: 0, Kind: SumDelta, Delta: 1, Seq: 2})
	if n := c.CheckLiveness(); n != 0 {
		t.Fatalf("%d stale sites after resync", n)
	}
	resyncEvents = 0
	for _, e := range events {
		if e.Kind == obs.EvSiteResync {
			resyncEvents++
		}
	}
	if resyncEvents != 1 {
		t.Fatalf("%d EvSiteResync events, want 1", resyncEvents)
	}
	if cm := c.Metrics(); cm.SitesSeen != 2 || cm.StaleSites != 0 {
		t.Fatalf("SitesSeen=%d StaleSites=%d", cm.SitesSeen, cm.StaleSites)
	}
}

func TestSenderStateRoundTrip(t *testing.T) {
	s := NewResilientSenderFunc(func() (io.WriteCloser, error) {
		return nil, errors.New("down")
	})
	for i := 0; i < 3; i++ {
		s.Send(Msg{Kind: SumDelta, Delta: float64(i)})
	}
	st := s.State()
	if st.NextSeq != 3 || len(st.Backlog) != 3 {
		t.Fatalf("State = NextSeq %d, %d backlog", st.NextSeq, len(st.Backlog))
	}

	r := NewResilientSenderFunc(func() (io.WriteCloser, error) {
		return nil, errors.New("down")
	})
	if err := r.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if r.Pending() != 3 {
		t.Fatalf("restored Pending = %d", r.Pending())
	}
	// The restored sender continues the same sequence space.
	r.Send(Msg{Kind: SumDelta, Delta: 9})
	if got := r.State(); got.NextSeq != 4 || got.Backlog[3].Seq != 4 {
		t.Fatalf("restored sender continued at seq %d", got.Backlog[3].Seq)
	}

	bad := st
	bad.NextSeq = 1 // behind the backlog tail
	if err := NewResilientSenderFunc(nil).RestoreState(bad); err == nil {
		t.Fatal("want error for NextSeq behind backlog")
	}
}

func TestCoordinatorSnapshotCarriesDedupHorizon(t *testing.T) {
	c := NewCoordinator(2)
	c.Apply(Msg{Site: 0, Kind: DirectionAdd, V: []float64{1, 0}, Seq: 4})
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The failed-over coordinator must keep rejecting its predecessor's
	// consumed seqs.
	r.Apply(Msg{Site: 0, Kind: DirectionAdd, V: []float64{1, 0}, Seq: 4})
	if f := mat.FrobSq(r.Sketch()); math.Abs(f-1) > 1e-12 {
		t.Fatalf("replay after failover applied: mass %v, want 1", f)
	}
	if cm := r.Metrics(); cm.DupMsgs != 1 {
		t.Fatalf("DupMsgs = %d after failover replay, want 1", cm.DupMsgs)
	}
}

// TestDeepBacklogDrainsUnderLossyLink pins the flow-control window. A
// sender that blasts its whole backlog onto each fresh connection can
// only retire frames if one connection survives the ENTIRE replay plus
// an ack round-trip — with a deep backlog on a lossy link that
// probability decays geometrically and retirement stalls forever, while
// replay traffic burns. The MaxInflight window writes a bounded batch
// per connection and lets acks retire the front between batches, so the
// backlog drains incrementally no matter how deep it got.
func TestDeepBacklogDrainsUnderLossyLink(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	coord := NewCoordinator(2)
	go coord.Serve(ln)

	inj := chaos.New(chaos.Config{Seed: 11, PDrop: 0.04, PCut: 0.02})
	s := NewResilientSenderFunc(inj.Dial(func() (io.WriteCloser, error) {
		return net.Dial("tcp", ln.Addr().String())
	}))

	// Free-running sends with no waits in between: the backlog gets deep
	// because faults kill connections faster than acks retire frames.
	const n = 250
	for i := 0; i < n; i++ {
		if err := s.Send(Msg{Site: 0, Kind: DirectionAdd, T: int64(i + 1), V: []float64{1, 0}}); err != nil {
			t.Fatal(err)
		}
	}
	if p := drainSender(s, 30*time.Second); p != 0 {
		t.Fatalf("%d of %d messages still pending: deep-backlog replay made no progress", p, n)
	}
	if st := inj.Stats(); st.Drops == 0 || st.Cuts == 0 {
		t.Fatalf("chaos fault mix too thin (stats %+v)", st)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if f := mat.FrobSq(coord.Sketch()); math.Abs(f-n) < 1e-9 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sketch mass %v, want %d: frames were lost or double-applied", mat.FrobSq(coord.Sketch()), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if cm := coord.Metrics(); cm.Msgs != n {
		t.Fatalf("coordinator applied %d messages, want %d", cm.Msgs, n)
	}
	s.DiscardPending = true
	s.Close()
}
