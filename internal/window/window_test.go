package window

import (
	"math"
	"math/rand"
	"testing"

	"distwindow/internal/stream"
	"distwindow/mat"
)

func TestExactAddAndExpire(t *testing.T) {
	e := NewExact(10)
	e.Add(stream.Row{T: 1, V: []float64{1, 0}})
	e.Add(stream.Row{T: 5, V: []float64{0, 2}})
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2", e.Len())
	}
	e.Add(stream.Row{T: 11, V: []float64{3, 0}}) // expires t=1 (1 ≤ 11−10)
	if e.Len() != 2 {
		t.Fatalf("after expiry Len = %d, want 2", e.Len())
	}
	if e.Rows()[0].T != 5 {
		t.Fatalf("oldest live row T = %d, want 5", e.Rows()[0].T)
	}
}

func TestExactBoundaryInclusive(t *testing.T) {
	// Window (now−w, now]: a row at exactly now−w is expired, now−w+1 lives.
	e := NewExact(10)
	e.Add(stream.Row{T: 0, V: []float64{1}})
	e.Add(stream.Row{T: 1, V: []float64{1}})
	e.Advance(10)
	if e.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (row at t=0 expires at now=10)", e.Len())
	}
}

func TestExactFrobSqIncremental(t *testing.T) {
	e := NewExact(100)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		e.Add(stream.Row{T: int64(i), V: []float64{rng.NormFloat64(), rng.NormFloat64()}})
	}
	var want float64
	for _, r := range e.Rows() {
		want += r.NormSq()
	}
	if math.Abs(e.FrobSq()-want) > 1e-9*(1+want) {
		t.Fatalf("FrobSq = %v, want %v", e.FrobSq(), want)
	}
}

func TestExactMatrixAndGram(t *testing.T) {
	e := NewExact(100)
	e.Add(stream.Row{T: 1, V: []float64{1, 2}})
	e.Add(stream.Row{T: 2, V: []float64{3, 4}})
	m := e.Matrix(2)
	if m.Rows() != 2 || m.At(1, 1) != 4 {
		t.Fatalf("Matrix wrong: %v", m)
	}
	g := e.Gram(2)
	if !g.EqualApprox(mat.Gram(m), 1e-12) {
		t.Fatal("Gram should match Gram(Matrix)")
	}
}

func TestExactEmptyWindow(t *testing.T) {
	e := NewExact(10)
	if e.Len() != 0 || e.FrobSq() != 0 {
		t.Fatal("empty window should have no mass")
	}
	m := e.Matrix(3)
	if m.Rows() != 0 || m.Cols() != 3 {
		t.Fatal("empty Matrix should be 0×d")
	}
}

func TestExactAllExpire(t *testing.T) {
	e := NewExact(5)
	e.Add(stream.Row{T: 1, V: []float64{2}})
	e.Advance(100)
	if e.Len() != 0 {
		t.Fatal("all rows should expire")
	}
	if math.Abs(e.FrobSq()) > 1e-12 {
		t.Fatalf("FrobSq = %v after full expiry", e.FrobSq())
	}
}

func TestExactCompaction(t *testing.T) {
	// Push enough churn to trigger the internal slice compaction and check
	// correctness is preserved.
	e := NewExact(10)
	for i := 0; i < 20000; i++ {
		e.Add(stream.Row{T: int64(i), V: []float64{1}})
	}
	if e.Len() != 10 {
		t.Fatalf("Len = %d, want 10", e.Len())
	}
	if math.Abs(e.FrobSq()-10) > 1e-9 {
		t.Fatalf("FrobSq = %v, want 10", e.FrobSq())
	}
	if e.Rows()[0].T != 19990 {
		t.Fatalf("oldest T = %d, want 19990", e.Rows()[0].T)
	}
}

func TestCovErrPerfectSketch(t *testing.T) {
	e := NewExact(1000)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		e.Add(stream.Row{T: int64(i), V: []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}})
	}
	b := e.Matrix(3) // sketch = exact matrix
	if err := e.CovErr(3, b); err > 1e-10 {
		t.Fatalf("CovErr of exact matrix = %v, want ~0", err)
	}
}

func TestCovErrEmptySketchIsBounded(t *testing.T) {
	e := NewExact(1000)
	e.Add(stream.Row{T: 1, V: []float64{1, 0}})
	err := e.CovErr(2, mat.NewDense(0, 2))
	if err <= 0 || err > 1 {
		t.Fatalf("CovErr = %v, want in (0,1]", err)
	}
}

func TestUnion(t *testing.T) {
	u := NewUnion(100, 2)
	u.Add(stream.Row{T: 1, V: []float64{1, 0}})
	u.Add(stream.Row{T: 2, V: []float64{0, 1}})
	if u.D() != 2 {
		t.Fatalf("D = %d", u.D())
	}
	if err := u.ErrOf(u.Matrix(2)); err > 1e-10 {
		t.Fatalf("ErrOf exact = %v", err)
	}
}

func TestNewExactPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewExact(0)
}
