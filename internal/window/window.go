// Package window maintains the exact contents of a time-based sliding
// window over a row stream. It is the ground truth against which every
// protocol's sketch is evaluated, and the storage backend for protocol
// variants that keep all active rows.
package window

import (
	"distwindow/internal/stream"
	"distwindow/mat"
)

// Exact is a deque of the active rows of one stream together with
// incrementally maintained squared Frobenius mass. Add must be called with
// non-decreasing timestamps.
type Exact struct {
	w      int64
	rows   []stream.Row // rows[head:] are live, in timestamp order
	head   int
	frobSq float64
}

// NewExact returns an empty window of size w ticks.
func NewExact(w int64) *Exact {
	if w <= 0 {
		panic("window: size must be positive")
	}
	return &Exact{w: w}
}

// W returns the window length in ticks.
func (e *Exact) W() int64 { return e.w }

// Add inserts a row and expires rows that fall out of (r.T−w, r.T].
func (e *Exact) Add(r stream.Row) {
	e.rows = append(e.rows, r)
	e.frobSq += r.NormSq()
	e.Advance(r.T)
}

// Advance expires every row with timestamp ≤ now−w.
func (e *Exact) Advance(now int64) {
	cut := now - e.w
	for e.head < len(e.rows) && e.rows[e.head].T <= cut {
		e.frobSq -= e.rows[e.head].NormSq()
		e.head++
	}
	// Reclaim the dead prefix once it dominates the slice.
	if e.head > 1024 && e.head*2 > len(e.rows) {
		n := copy(e.rows, e.rows[e.head:])
		e.rows = e.rows[:n]
		e.head = 0
	}
	if e.frobSq < 0 {
		e.frobSq = 0
	}
}

// Len returns the number of active rows.
func (e *Exact) Len() int { return len(e.rows) - e.head }

// FrobSq returns ‖A_w‖_F², maintained incrementally.
func (e *Exact) FrobSq() float64 { return e.frobSq }

// Rows returns the active rows in timestamp order. The returned slice
// aliases internal storage and is invalidated by the next Add/Advance.
func (e *Exact) Rows() []stream.Row { return e.rows[e.head:] }

// Matrix materializes A_w as a dense matrix with one row per active row.
// d is required so an empty window still has the right column count.
func (e *Exact) Matrix(d int) *mat.Dense {
	live := e.Rows()
	m := mat.NewDense(len(live), d)
	for i, r := range live {
		m.SetRow(i, r.V)
	}
	return m
}

// Gram returns A_wᵀA_w computed from scratch.
func (e *Exact) Gram(d int) *mat.Dense {
	g := mat.NewDense(d, d)
	for _, r := range e.Rows() {
		mat.OuterAdd(g, r.V, 1)
	}
	return g
}

// CovErr returns the covariance error of sketch b against the window
// contents: ‖A_wᵀA_w − bᵀb‖₂/‖A_w‖_F².
func (e *Exact) CovErr(d int, b *mat.Dense) float64 {
	return mat.CovErrGram(e.Gram(d), e.frobSq, b)
}

// Union tracks the exact union window across sites: one Exact fed by every
// event regardless of site, used for global ground truth.
type Union struct {
	Exact
	d int
}

// NewUnion returns a union window of size w for d-dimensional rows.
func NewUnion(w int64, d int) *Union {
	return &Union{Exact: *NewExact(w), d: d}
}

// D returns the row dimension.
func (u *Union) D() int { return u.d }

// ErrOf evaluates a sketch against the current union window.
func (u *Union) ErrOf(b *mat.Dense) float64 { return u.CovErr(u.d, b) }
