// Package stream defines the row-update stream model used throughout the
// repository: timestamped d-dimensional rows, arrival processes, and
// assignment of rows to distributed sites.
//
// Timestamps are int64 ticks. A row with timestamp t is active in the
// window of size W at time now iff t ∈ (now−W, now], matching the paper's
// time-based sliding window definition.
package stream

import (
	"math"
	"math/rand"
)

// Row is one item of a matrix stream: a d-dimensional record V observed at
// time T.
type Row struct {
	T int64
	V []float64
}

// NormSq returns ‖V‖², the row's weight in the weighted-sampling protocols.
func (r Row) NormSq() float64 {
	var s float64
	for _, v := range r.V {
		s += v * v
	}
	return s
}

// Active reports whether the row is inside the window (now−w, now].
func (r Row) Active(now, w int64) bool {
	return r.T > now-w && r.T <= now
}

// Event is a row routed to a specific site.
type Event struct {
	Site int
	Row  Row
}

// PoissonArrivals stamps consecutive arrival times with exponential
// inter-arrival gaps of rate lambda (the paper's Poisson arrival process
// with λ=1), quantized to integer ticks via a configurable tick scale.
//
// With TicksPerUnit=1000 and λ=1 the mean gap is 1000 ticks, so integer
// rounding distorts the process by less than 0.1%.
type PoissonArrivals struct {
	Lambda       float64
	TicksPerUnit float64
	rng          *rand.Rand
	now          float64
}

// NewPoissonArrivals returns an arrival process starting at time 0.
func NewPoissonArrivals(lambda float64, rng *rand.Rand) *PoissonArrivals {
	return &PoissonArrivals{Lambda: lambda, TicksPerUnit: 1000, rng: rng}
}

// Next returns the next arrival timestamp in ticks.
func (p *PoissonArrivals) Next() int64 {
	gap := p.rng.ExpFloat64() / p.Lambda
	p.now += gap
	return int64(math.Round(p.now * p.TicksPerUnit))
}

// UniformArrivals stamps one arrival every Gap ticks — a deterministic
// arrival process useful in tests.
type UniformArrivals struct {
	Gap int64
	now int64
}

// Next returns the next arrival timestamp in ticks.
func (u *UniformArrivals) Next() int64 {
	u.now += u.Gap
	return u.now
}

// Assigner routes successive rows to sites.
type Assigner interface {
	// Next returns the site index for the next row.
	Next() int
}

// RandomAssigner routes each row to a uniformly random site, the standard
// model for distributed monitoring experiments.
type RandomAssigner struct {
	Sites int
	rng   *rand.Rand
}

// NewRandomAssigner returns an assigner over m sites.
func NewRandomAssigner(m int, rng *rand.Rand) *RandomAssigner {
	return &RandomAssigner{Sites: m, rng: rng}
}

// Next returns a uniformly random site index.
func (a *RandomAssigner) Next() int { return a.rng.Intn(a.Sites) }

// RoundRobinAssigner routes rows to sites cyclically; deterministic, used
// in tests.
type RoundRobinAssigner struct {
	Sites int
	next  int
}

// Next returns the next site index in cyclic order.
func (a *RoundRobinAssigner) Next() int {
	s := a.next
	a.next = (a.next + 1) % a.Sites
	return s
}

// Stamp attaches timestamps from the given arrival process and site
// assignments to the rows of data (each a d-dimensional slice), producing a
// replayable event sequence.
func Stamp(data [][]float64, arrivals interface{ Next() int64 }, assign Assigner) []Event {
	evs := make([]Event, len(data))
	for i, v := range data {
		evs[i] = Event{Site: assign.Next(), Row: Row{T: arrivals.Next(), V: v}}
	}
	return evs
}

// MaxNormRatio returns R, the maximum ratio of squared norms between any
// two rows of the event sequence (ignoring zero rows). It returns 1 for
// fewer than two nonzero rows.
func MaxNormRatio(evs []Event) float64 {
	min, max := math.Inf(1), 0.0
	for _, e := range evs {
		w := e.Row.NormSq()
		if w == 0 {
			continue
		}
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	if max == 0 || math.IsInf(min, 1) {
		return 1
	}
	return max / min
}
