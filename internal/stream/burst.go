package stream

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// MMPPArrivals is a two-state Markov-modulated Poisson process: arrivals
// alternate between a quiet regime (rate LambdaLow) and a bursty regime
// (rate LambdaHigh), with exponentially distributed sojourn times. It
// models the bursty traffic of real monitoring feeds (WIKI edits, network
// flows) that a time-based window must absorb — the row count per window
// varies drastically, exactly the situation the paper contrasts against
// sequence-based windows.
type MMPPArrivals struct {
	LambdaLow    float64
	LambdaHigh   float64
	MeanSojourn  float64 // mean time units spent in a regime
	TicksPerUnit float64

	rng        *rand.Rand
	now        float64
	inBurst    bool
	regimeLeft float64
}

// NewMMPPArrivals returns a bursty arrival process starting in the quiet
// regime at time 0.
func NewMMPPArrivals(lambdaLow, lambdaHigh, meanSojourn float64, rng *rand.Rand) *MMPPArrivals {
	if lambdaLow <= 0 || lambdaHigh <= 0 || meanSojourn <= 0 {
		panic(fmt.Sprintf("stream: invalid MMPP rates %v/%v sojourn %v", lambdaLow, lambdaHigh, meanSojourn))
	}
	return &MMPPArrivals{
		LambdaLow:    lambdaLow,
		LambdaHigh:   lambdaHigh,
		MeanSojourn:  meanSojourn,
		TicksPerUnit: 1000,
		rng:          rng,
	}
}

// Next returns the next arrival timestamp in ticks.
func (p *MMPPArrivals) Next() int64 {
	for {
		rate := p.LambdaLow
		if p.inBurst {
			rate = p.LambdaHigh
		}
		gap := p.rng.ExpFloat64() / rate
		if p.regimeLeft <= 0 {
			p.regimeLeft = p.rng.ExpFloat64() * p.MeanSojourn
		}
		if gap <= p.regimeLeft {
			p.regimeLeft -= gap
			p.now += gap
			return int64(math.Round(p.now * p.TicksPerUnit))
		}
		// The regime flips before the tentative arrival: consume the
		// remaining sojourn and redraw in the new regime.
		p.now += p.regimeLeft
		p.regimeLeft = 0
		p.inBurst = !p.inBurst
	}
}

// SkewBuffer re-orders rows whose timestamps arrive out of order within a
// bounded clock skew: a row is held until every possible earlier row
// (timestamp > r.T − MaxSkew cannot appear later) has been released. In a
// real deployment each site front-ends its tracker with one of these —
// the protocols require non-decreasing timestamps.
type SkewBuffer struct {
	maxSkew int64
	heap    []Row // min-heap on T
	highest int64
}

// NewSkewBuffer returns a buffer tolerating timestamps up to maxSkew ticks
// out of order.
func NewSkewBuffer(maxSkew int64) *SkewBuffer {
	if maxSkew < 0 {
		panic("stream: negative skew")
	}
	return &SkewBuffer{maxSkew: maxSkew, highest: math.MinInt64}
}

// Add inserts a row and returns the rows that are now safe to release, in
// timestamp order. A row older than the skew horizon is rejected (false).
func (b *SkewBuffer) Add(r Row) (released []Row, ok bool) {
	if b.highest != math.MinInt64 && r.T <= b.highest-b.maxSkew {
		return nil, false // arrived too late even for the skew bound
	}
	b.push(r)
	if r.T > b.highest {
		b.highest = r.T
	}
	return b.release(b.highest - b.maxSkew), true
}

// Flush releases everything still buffered, in timestamp order.
func (b *SkewBuffer) Flush() []Row {
	return b.release(math.MaxInt64)
}

// Len returns the number of buffered rows.
func (b *SkewBuffer) Len() int { return len(b.heap) }

// release pops rows with T ≤ horizon in order.
func (b *SkewBuffer) release(horizon int64) []Row {
	var out []Row
	for len(b.heap) > 0 && b.heap[0].T <= horizon {
		out = append(out, b.pop())
	}
	return out
}

func (b *SkewBuffer) push(r Row) {
	b.heap = append(b.heap, r)
	i := len(b.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if b.heap[parent].T <= b.heap[i].T {
			break
		}
		b.heap[parent], b.heap[i] = b.heap[i], b.heap[parent]
		i = parent
	}
}

func (b *SkewBuffer) pop() Row {
	top := b.heap[0]
	last := len(b.heap) - 1
	b.heap[0] = b.heap[last]
	b.heap = b.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(b.heap) && b.heap[l].T < b.heap[small].T {
			small = l
		}
		if r < len(b.heap) && b.heap[r].T < b.heap[small].T {
			small = r
		}
		if small == i {
			break
		}
		b.heap[i], b.heap[small] = b.heap[small], b.heap[i]
		i = small
	}
	return top
}

// SortEvents orders an event slice by timestamp (stable), a convenience
// for merging independently generated site streams.
func SortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Row.T < evs[j].Row.T })
}
