package stream

import (
	"math/rand"
	"testing"
)

func TestMMPPMonotone(t *testing.T) {
	p := NewMMPPArrivals(0.2, 10, 50, rand.New(rand.NewSource(1)))
	prev := int64(-1)
	for i := 0; i < 5000; i++ {
		tt := p.Next()
		if tt < prev {
			t.Fatalf("timestamps must be non-decreasing: %d after %d", tt, prev)
		}
		prev = tt
	}
}

func TestMMPPBurstier(t *testing.T) {
	// The MMPP's inter-arrival variance must exceed a Poisson process of
	// the same mean rate (index of dispersion > 1).
	rng := rand.New(rand.NewSource(2))
	p := NewMMPPArrivals(0.2, 10, 50, rng)
	n := 20000
	gaps := make([]float64, n)
	prev := int64(0)
	for i := 0; i < n; i++ {
		tt := p.Next()
		gaps[i] = float64(tt - prev)
		prev = tt
	}
	var mean float64
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(n)
	var varr float64
	for _, g := range gaps {
		varr += (g - mean) * (g - mean)
	}
	varr /= float64(n)
	// For exponential gaps var = mean²; MMPP mixes two rates → var ≫ mean².
	if varr < 1.5*mean*mean {
		t.Fatalf("gap variance %v vs mean² %v — not bursty", varr, mean*mean)
	}
}

func TestMMPPValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMMPPArrivals(0, 1, 1, rand.New(rand.NewSource(3)))
}

func TestSkewBufferInOrderPassThrough(t *testing.T) {
	b := NewSkewBuffer(10)
	var got []int64
	for i := int64(1); i <= 50; i++ {
		rel, ok := b.Add(Row{T: i})
		if !ok {
			t.Fatalf("in-order row %d rejected", i)
		}
		for _, r := range rel {
			got = append(got, r.T)
		}
	}
	got = append(got, timestamps(b.Flush())...)
	if len(got) != 50 {
		t.Fatalf("released %d rows, want 50", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("released out of order: %v", got)
		}
	}
}

func TestSkewBufferReorders(t *testing.T) {
	b := NewSkewBuffer(5)
	order := []int64{3, 1, 2, 7, 5, 6, 4, 10, 9, 8, 20}
	var got []int64
	for _, tt := range order {
		rel, ok := b.Add(Row{T: tt})
		if !ok {
			t.Fatalf("row %d rejected (within skew)", tt)
		}
		got = append(got, timestamps(rel)...)
	}
	got = append(got, timestamps(b.Flush())...)
	if len(got) != len(order) {
		t.Fatalf("released %d of %d rows", len(got), len(order))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("released out of order: %v", got)
		}
	}
}

func TestSkewBufferRejectsTooLate(t *testing.T) {
	b := NewSkewBuffer(5)
	b.Add(Row{T: 100})
	if _, ok := b.Add(Row{T: 94}); ok {
		t.Fatal("row beyond the skew horizon must be rejected")
	}
	if _, ok := b.Add(Row{T: 96}); !ok {
		t.Fatal("row inside the skew horizon must be accepted")
	}
}

func TestSkewBufferHoldsWithinHorizon(t *testing.T) {
	b := NewSkewBuffer(10)
	rel, _ := b.Add(Row{T: 5})
	if len(rel) != 0 {
		t.Fatal("row within horizon should be held")
	}
	rel, _ = b.Add(Row{T: 20})
	// horizon = 20−10 = 10 → row at 5 releases.
	if len(rel) != 1 || rel[0].T != 5 {
		t.Fatalf("released %v, want [5]", timestamps(rel))
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (row at 20 held)", b.Len())
	}
}

func TestSkewBufferZeroSkew(t *testing.T) {
	b := NewSkewBuffer(0)
	rel, ok := b.Add(Row{T: 1})
	if !ok || len(rel) != 1 {
		t.Fatal("zero skew should release immediately")
	}
	if _, ok := b.Add(Row{T: 0}); ok {
		t.Fatal("earlier row must be rejected at zero skew")
	}
}

func TestSkewBufferRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := NewSkewBuffer(20)
	var released []int64
	accepted := 0
	base := int64(0)
	for i := 0; i < 5000; i++ {
		base += int64(rng.Intn(3))
		tt := base - int64(rng.Intn(15)) // jitter within the skew bound
		rel, ok := b.Add(Row{T: tt})
		if ok {
			accepted++
		}
		released = append(released, timestamps(rel)...)
	}
	released = append(released, timestamps(b.Flush())...)
	if len(released) != accepted {
		t.Fatalf("released %d of %d accepted rows", len(released), accepted)
	}
	for i := 1; i < len(released); i++ {
		if released[i] < released[i-1] {
			t.Fatal("randomized stream released out of order")
		}
	}
}

func TestSortEvents(t *testing.T) {
	evs := []Event{
		{Row: Row{T: 5}}, {Row: Row{T: 1}}, {Row: Row{T: 3}},
	}
	SortEvents(evs)
	if evs[0].Row.T != 1 || evs[2].Row.T != 5 {
		t.Fatalf("SortEvents wrong: %+v", evs)
	}
}

func timestamps(rows []Row) []int64 {
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r.T
	}
	return out
}
