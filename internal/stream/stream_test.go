package stream

import (
	"math"
	"math/rand"
	"testing"
)

func TestRowNormSq(t *testing.T) {
	r := Row{T: 1, V: []float64{3, 4}}
	if r.NormSq() != 25 {
		t.Fatalf("NormSq = %v, want 25", r.NormSq())
	}
}

func TestRowActive(t *testing.T) {
	r := Row{T: 100}
	if !r.Active(100, 10) {
		t.Fatal("row at now should be active")
	}
	if !r.Active(109, 10) {
		t.Fatal("row at now-9 with w=10 should be active")
	}
	if r.Active(110, 10) {
		t.Fatal("row at exactly now-w should be expired")
	}
	if r.Active(99, 10) {
		t.Fatal("future row should not be active")
	}
}

func TestPoissonArrivalsMonotone(t *testing.T) {
	p := NewPoissonArrivals(1, rand.New(rand.NewSource(1)))
	prev := int64(-1)
	for i := 0; i < 1000; i++ {
		tt := p.Next()
		if tt < prev {
			t.Fatalf("timestamps must be non-decreasing: %d after %d", tt, prev)
		}
		prev = tt
	}
}

func TestPoissonArrivalsMeanGap(t *testing.T) {
	p := NewPoissonArrivals(1, rand.New(rand.NewSource(2)))
	n := 20000
	var last int64
	for i := 0; i < n; i++ {
		last = p.Next()
	}
	mean := float64(last) / float64(n)
	// λ=1, TicksPerUnit=1000 → mean gap 1000 ticks (±5% over 20k samples).
	if math.Abs(mean-1000) > 50 {
		t.Fatalf("mean gap = %v ticks, want ≈1000", mean)
	}
}

func TestPoissonArrivalsLambdaScales(t *testing.T) {
	p := NewPoissonArrivals(2, rand.New(rand.NewSource(3)))
	n := 20000
	var last int64
	for i := 0; i < n; i++ {
		last = p.Next()
	}
	mean := float64(last) / float64(n)
	if math.Abs(mean-500) > 30 {
		t.Fatalf("mean gap = %v ticks, want ≈500 for λ=2", mean)
	}
}

func TestUniformArrivals(t *testing.T) {
	u := &UniformArrivals{Gap: 7}
	if u.Next() != 7 || u.Next() != 14 {
		t.Fatal("UniformArrivals should step by Gap")
	}
}

func TestRandomAssignerRange(t *testing.T) {
	a := NewRandomAssigner(5, rand.New(rand.NewSource(4)))
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		s := a.Next()
		if s < 0 || s >= 5 {
			t.Fatalf("site %d out of range", s)
		}
		seen[s] = true
	}
	if len(seen) != 5 {
		t.Fatalf("only %d sites hit in 1000 draws", len(seen))
	}
}

func TestRandomAssignerRoughlyUniform(t *testing.T) {
	a := NewRandomAssigner(4, rand.New(rand.NewSource(5)))
	counts := make([]int, 4)
	n := 40000
	for i := 0; i < n; i++ {
		counts[a.Next()]++
	}
	for s, c := range counts {
		if math.Abs(float64(c)-float64(n)/4) > float64(n)/20 {
			t.Fatalf("site %d got %d of %d rows, far from uniform", s, c, n)
		}
	}
}

func TestRoundRobinAssigner(t *testing.T) {
	a := &RoundRobinAssigner{Sites: 3}
	want := []int{0, 1, 2, 0, 1}
	for i, w := range want {
		if got := a.Next(); got != w {
			t.Fatalf("Next()[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestStamp(t *testing.T) {
	data := [][]float64{{1}, {2}, {3}}
	evs := Stamp(data, &UniformArrivals{Gap: 10}, &RoundRobinAssigner{Sites: 2})
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[2].Row.T != 30 || evs[2].Site != 0 {
		t.Fatalf("event 2 = %+v", evs[2])
	}
	if evs[1].Row.V[0] != 2 {
		t.Fatal("row data should be preserved")
	}
}

func TestMaxNormRatio(t *testing.T) {
	evs := []Event{
		{Row: Row{V: []float64{1, 0}}}, // w=1
		{Row: Row{V: []float64{0, 3}}}, // w=9
		{Row: Row{V: []float64{0, 0}}}, // zero rows ignored
	}
	if r := MaxNormRatio(evs); r != 9 {
		t.Fatalf("MaxNormRatio = %v, want 9", r)
	}
}

func TestMaxNormRatioDegenerate(t *testing.T) {
	if r := MaxNormRatio(nil); r != 1 {
		t.Fatalf("empty ratio = %v, want 1", r)
	}
	if r := MaxNormRatio([]Event{{Row: Row{V: []float64{0}}}}); r != 1 {
		t.Fatalf("all-zero ratio = %v, want 1", r)
	}
}
