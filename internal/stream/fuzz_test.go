package stream

import "testing"

// FuzzSkewBufferOrdering checks that whatever arrival pattern the fuzzer
// produces, accepted rows come out in non-decreasing timestamp order and
// nothing accepted is lost.
func FuzzSkewBufferOrdering(f *testing.F) {
	f.Add([]byte{5, 3, 9, 1, 12, 7})
	f.Add([]byte{0, 0, 0, 255, 255, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := NewSkewBuffer(16)
		accepted := 0
		var out []int64
		base := int64(0)
		for _, by := range data {
			base += int64(by % 4)
			tt := base - int64(by%16)
			rel, ok := b.Add(Row{T: tt})
			if ok {
				accepted++
			}
			for _, r := range rel {
				out = append(out, r.T)
			}
		}
		for _, r := range b.Flush() {
			out = append(out, r.T)
		}
		if len(out) != accepted {
			t.Fatalf("released %d of %d accepted rows", len(out), accepted)
		}
		for i := 1; i < len(out); i++ {
			if out[i] < out[i-1] {
				t.Fatalf("out of order at %d: %v", i, out)
			}
		}
	})
}
