package fd

import (
	"math/rand"
	"testing"
)

func benchRows(n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		rows[i] = v
	}
	return rows
}

func BenchmarkUpdateL20D256(b *testing.B) {
	rows := benchRows(4096, 256, 1)
	s := New(20, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(rows[i%len(rows)])
	}
}

func BenchmarkUpdateL64D64(b *testing.B) {
	rows := benchRows(4096, 64, 2)
	s := New(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(rows[i%len(rows)])
	}
}

func BenchmarkMergeL32D128(b *testing.B) {
	rows := benchRows(256, 128, 3)
	mk := func() *Sketch {
		s := New(32, 128)
		for _, r := range rows {
			s.Update(r)
		}
		return s
	}
	s1, s2 := mk(), mk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s1.Clone().Merge(s2)
	}
}

func BenchmarkApplyGramAdd(b *testing.B) {
	s := New(32, 256)
	for _, r := range benchRows(512, 256, 4) {
		s.Update(r)
	}
	x := make([]float64, 256)
	y := make([]float64, 256)
	for i := range x {
		x[i] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ApplyGramAdd(x, y)
	}
}
