package fd

import (
	"math/rand"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New(5, 8)
	feed(s, randRows(73, 8, rng))
	r, err := Restore(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rows().Equal(s.Rows()) {
		t.Fatal("restored sketch rows differ")
	}
	if r.FrobSq() != s.FrobSq() || r.ShrunkMass() != s.ShrunkMass() {
		t.Fatal("restored counters differ")
	}
	// Continued updates must match bit-for-bit.
	extra := randRows(31, 8, rng)
	for i := 0; i < extra.Rows(); i++ {
		s.Update(extra.Row(i))
		r.Update(extra.Row(i))
	}
	if !r.Rows().Equal(s.Rows()) {
		t.Fatal("restored sketch diverged after more updates")
	}
}

func TestSnapshotRestoreRejectsCorrupt(t *testing.T) {
	good := New(3, 4).Snapshot()
	cases := []Snapshot{
		{Ell: 0, D: 4},
		{Ell: 3, D: 0},
		{Ell: 3, D: 4, N: 99},
		{Ell: 3, D: 4, N: 1, Buf: []float64{1}}, // wrong buffer length
	}
	for i, c := range cases {
		if _, err := Restore(c); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	if _, err := Restore(good); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
}
