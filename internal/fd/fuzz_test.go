package fd

import (
	"testing"

	"distwindow/mat"
)

// FuzzSketchGuarantee feeds arbitrary row streams and checks the FD error
// bound ‖AᵀA − BᵀB‖₂ ≤ ‖A‖_F²/ℓ plus the PSD-domination property.
func FuzzSketchGuarantee(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0, 0, 0, 0, 255, 255, 255, 255})
	f.Add([]byte{100, 3, 77, 9, 2, 250, 31, 8, 16, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		const (
			d   = 4
			ell = 3
		)
		if len(data) < d {
			return
		}
		s := New(ell, d)
		rows := make([][]float64, 0, len(data)/d)
		for i := 0; i+d <= len(data); i += d {
			v := make([]float64, d)
			for j := 0; j < d; j++ {
				v[j] = (float64(data[i+j]) - 127.5) / 16
			}
			s.Update(v)
			rows = append(rows, v)
		}
		a := mat.FromRows(rows)
		diff := mat.Sub(mat.Gram(a), mat.Gram(s.Rows()))
		if err := mat.SymSpectralNorm(diff); err > mat.FrobSq(a)/ell*(1+1e-9)+1e-12 {
			t.Fatalf("FD bound violated: %v > %v", err, mat.FrobSq(a)/ell)
		}
		eig := mat.EigSym(diff)
		if min := eig.Values[len(eig.Values)-1]; min < -1e-6*(1+mat.FrobSq(a)) {
			t.Fatalf("BᵀB not dominated by AᵀA: min eig %v", min)
		}
	})
}
