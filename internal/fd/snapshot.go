package fd

import "fmt"

// Snapshot is a serializable copy of a Sketch, for checkpoint/restore of
// long-running trackers. All fields are exported for encoding/gob.
type Snapshot struct {
	Ell, D int
	N      int
	Buf    []float64 // first N rows of the working buffer, row-major
	FrobSq float64
	Shrunk float64
}

// Snapshot captures the sketch's state.
func (s *Sketch) Snapshot() Snapshot {
	buf := make([]float64, s.n*s.d)
	copy(buf, s.buf.Data()[:s.n*s.d])
	return Snapshot{Ell: s.ell, D: s.d, N: s.n, Buf: buf, FrobSq: s.frobSq, Shrunk: s.shrunk}
}

// Restore rebuilds a sketch from a snapshot.
func Restore(sn Snapshot) (*Sketch, error) {
	if sn.Ell < 1 || sn.D < 1 || sn.N < 0 || sn.N > 2*sn.Ell || len(sn.Buf) != sn.N*sn.D {
		return nil, fmt.Errorf("fd: invalid snapshot ℓ=%d d=%d n=%d buf=%d", sn.Ell, sn.D, sn.N, len(sn.Buf))
	}
	s := New(sn.Ell, sn.D)
	copy(s.buf.Data(), sn.Buf)
	s.n = sn.N
	s.frobSq = sn.FrobSq
	s.shrunk = sn.Shrunk
	return s, nil
}
