package fd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"distwindow/mat"
)

func randRows(n, d int, rng *rand.Rand) *mat.Dense {
	m := mat.NewDense(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func feed(s *Sketch, a *mat.Dense) {
	for i := 0; i < a.Rows(); i++ {
		s.Update(a.Row(i))
	}
}

func TestErrorGuarantee(t *testing.T) {
	// FD guarantee: ‖AᵀA − BᵀB‖₂ ≤ ‖A‖_F²/ℓ.
	rng := rand.New(rand.NewSource(1))
	for _, ell := range []int{4, 8, 16} {
		a := randRows(300, 20, rng)
		s := New(ell, 20)
		feed(s, a)
		b := s.Rows()
		err := mat.SymSpectralNorm(mat.Sub(mat.Gram(a), mat.Gram(b)))
		bound := mat.FrobSq(a) / float64(ell)
		if err > bound*(1+1e-9) {
			t.Fatalf("ℓ=%d: error %v exceeds bound %v", ell, err, bound)
		}
	}
}

func TestShrunkMassBoundsError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randRows(200, 10, rng)
	s := New(5, 10)
	feed(s, a)
	err := mat.SymSpectralNorm(mat.Sub(mat.Gram(a), mat.Gram(s.Rows())))
	if err > s.ShrunkMass()*(1+1e-9)+1e-12 {
		t.Fatalf("error %v exceeds shrunk mass %v", err, s.ShrunkMass())
	}
}

func TestSketchDominatedByInput(t *testing.T) {
	// FD property: BᵀB ⪯ AᵀA, i.e. ‖Bx‖ ≤ ‖Ax‖ for all x. Check that
	// AᵀA − BᵀB has no significantly negative eigenvalue.
	rng := rand.New(rand.NewSource(3))
	a := randRows(150, 8, rng)
	s := New(4, 8)
	feed(s, a)
	diff := mat.Sub(mat.Gram(a), mat.Gram(s.Rows()))
	e := mat.EigSym(diff)
	min := e.Values[len(e.Values)-1]
	if min < -1e-6*mat.FrobSq(a) {
		t.Fatalf("BᵀB not dominated: min eigenvalue %v", min)
	}
}

func TestFrobSqExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randRows(77, 6, rng)
	s := New(3, 6)
	feed(s, a)
	if math.Abs(s.FrobSq()-mat.FrobSq(a)) > 1e-9*(1+mat.FrobSq(a)) {
		t.Fatalf("FrobSq = %v, want %v", s.FrobSq(), mat.FrobSq(a))
	}
}

func TestCompactAtMostEllRows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := New(6, 10)
	feed(s, randRows(100, 10, rng))
	b := s.Compact()
	if b.Rows() > 6 {
		t.Fatalf("Compact returned %d rows, want ≤ 6", b.Rows())
	}
}

func TestRowsAtMostTwiceEll(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := New(5, 7)
	for i := 0; i < 137; i++ {
		s.Update(randRows(1, 7, rng).Row(0))
		if s.Rows().Rows() > 10 {
			t.Fatalf("buffer exceeded 2ℓ rows")
		}
	}
}

func TestFewRowsExact(t *testing.T) {
	// With fewer than ℓ rows the sketch should be lossless.
	rng := rand.New(rand.NewSource(7))
	a := randRows(4, 9, rng)
	s := New(8, 9)
	feed(s, a)
	if err := mat.CovErr(a, s.Rows()); err > 1e-10 {
		t.Fatalf("sub-ℓ sketch should be exact, err=%v", err)
	}
	if s.ShrunkMass() != 0 {
		t.Fatal("no shrink should occur below capacity")
	}
}

func TestMergeGuarantee(t *testing.T) {
	// Merged sketch error ≤ (‖A1‖_F² + ‖A2‖_F²)/ℓ.
	rng := rand.New(rand.NewSource(8))
	a1 := randRows(120, 12, rng)
	a2 := randRows(80, 12, rng)
	s1, s2 := New(6, 12), New(6, 12)
	feed(s1, a1)
	feed(s2, a2)
	s1.Merge(s2)
	all := mat.Stack(a1, a2)
	err := mat.SymSpectralNorm(mat.Sub(mat.Gram(all), mat.Gram(s1.Rows())))
	bound := mat.FrobSq(all) * 2 / 6 // errors add: ≤ 2·F²/ℓ worst case
	if err > bound {
		t.Fatalf("merge error %v exceeds %v", err, bound)
	}
	if math.Abs(s1.FrobSq()-mat.FrobSq(all)) > 1e-9*(1+mat.FrobSq(all)) {
		t.Fatal("merge should add FrobSq")
	}
}

func TestMergeDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3, 4).Merge(New(3, 5))
}

func TestReset(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := New(4, 5)
	feed(s, randRows(50, 5, rng))
	s.Reset()
	if s.FrobSq() != 0 || s.Rows().Rows() != 0 || s.ShrunkMass() != 0 {
		t.Fatal("Reset should clear all state")
	}
	// And remain usable.
	s.Update([]float64{1, 0, 0, 0, 0})
	if s.FrobSq() != 1 {
		t.Fatal("sketch should be usable after Reset")
	}
}

func TestCloneIndependent(t *testing.T) {
	s := New(3, 2)
	s.Update([]float64{1, 2})
	c := s.Clone()
	c.Update([]float64{5, 5})
	if s.FrobSq() == c.FrobSq() {
		t.Fatal("Clone must not share state")
	}
}

func TestUpdateWrongLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Update([]float64{1})
}

func TestNewInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 3)
}

func TestLowRankInputIsCapturedWell(t *testing.T) {
	// Rank-2 input with ℓ=4 should be captured almost exactly: shrinking
	// removes only noise-level σ_ℓ.
	rng := rand.New(rand.NewSource(10))
	d := 10
	u := randRows(2, d, rng)
	a := mat.NewDense(500, d)
	for i := 0; i < 500; i++ {
		c1, c2 := rng.NormFloat64(), rng.NormFloat64()
		row := a.Row(i)
		mat.Axpy(c1, u.Row(0), row)
		mat.Axpy(c2, u.Row(1), row)
	}
	s := New(4, d)
	feed(s, a)
	if err := mat.CovErr(a, s.Rows()); err > 1e-8 {
		t.Fatalf("rank-2 stream should sketch near-exactly, err=%v", err)
	}
}

func TestPropErrorGuarantee(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(8)
		ell := 2 + rng.Intn(6)
		n := 20 + rng.Intn(100)
		a := randRows(n, d, rng)
		s := New(ell, d)
		feed(s, a)
		err := mat.SymSpectralNorm(mat.Sub(mat.Gram(a), mat.Gram(s.Rows())))
		return err <= mat.FrobSq(a)/float64(ell)*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}
