package fd

import (
	"math/rand"
	"testing"

	"distwindow/mat"
)

func randRow(rng *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func randSketch(rng *rand.Rand, ell, d, rows int) *Sketch {
	s := New(ell, d)
	for i := 0; i < rows; i++ {
		s.Update(randRow(rng, d))
	}
	return s
}

// refMerge is the pre-bulk-copy merge: append the other sketch's buffer
// rows one at a time, shrinking when full — the reference schedule the
// block-copy Merge must reproduce exactly.
func refMerge(s, other *Sketch) {
	for i := 0; i < other.n; i++ {
		if s.n == 2*s.ell {
			s.shrink()
		}
		s.buf.SetRow(s.n, other.buf.Row(i))
		s.n++
	}
	s.frobSq += other.frobSq
	s.shrunk += other.shrunk
}

func sketchesEqual(t *testing.T, got, want *Sketch) {
	t.Helper()
	if got.n != want.n || got.frobSq != want.frobSq || got.shrunk != want.shrunk {
		t.Fatalf("sketch state (n=%d frobSq=%v shrunk=%v) != (n=%d frobSq=%v shrunk=%v)",
			got.n, got.frobSq, got.shrunk, want.n, want.frobSq, want.shrunk)
	}
	g := got.buf.Data()[:got.n*got.d]
	w := want.buf.Data()[:want.n*want.d]
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("buffer[%d]: %v != %v (not bit-for-bit)", i, g[i], w[i])
		}
	}
}

// TestMergeBulkMatchesRowByRow checks that the block-copy Merge reproduces
// the one-row-at-a-time schedule bit-for-bit across fill levels that
// exercise zero, one, and several intermediate shrinks.
func TestMergeBulkMatchesRowByRow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ ell, d, n1, n2 int }{
		{4, 6, 0, 3}, {4, 6, 3, 0}, {4, 6, 5, 5}, {4, 6, 7, 8},
		{3, 5, 6, 17}, {5, 4, 9, 40}, {2, 3, 4, 11},
	} {
		a := randSketch(rng, tc.ell, tc.d, tc.n1)
		b := randSketch(rng, tc.ell, tc.d, tc.n2)
		ref := a.Clone()
		a.Merge(b)
		refMerge(ref, b)
		sketchesEqual(t, a, ref)
	}
}

func TestMergeIntoResetsSource(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randSketch(rng, 4, 5, 6)
	b := randSketch(rng, 4, 5, 9)
	want := a.Clone()
	want.Merge(b)
	b.MergeInto(a)
	sketchesEqual(t, a, want)
	if b.NumRows() != 0 || b.FrobSq() != 0 || b.ShrunkMass() != 0 {
		t.Fatalf("MergeInto left source non-empty: n=%d frobSq=%v", b.NumRows(), b.FrobSq())
	}
}

func TestAppendRowsToMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := randSketch(rng, 4, 6, 11)
	rows := s.Rows()
	dst := mat.NewDense(3+s.NumRows(), 6)
	if got := s.AppendRowsTo(dst, 3); got != s.NumRows() {
		t.Fatalf("AppendRowsTo wrote %d rows, want %d", got, s.NumRows())
	}
	for i := 0; i < rows.Rows(); i++ {
		want := rows.Row(i)
		got := dst.Row(3 + i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("row %d col %d: %v != %v", i, j, got[j], want[j])
			}
		}
	}
}

func TestRowsViewAndGramAddToMatchCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := randSketch(rng, 4, 6, 13)
	rows := s.Rows()
	view := s.RowsView()
	if view.Rows() != rows.Rows() || view.Cols() != rows.Cols() {
		t.Fatalf("RowsView shape %dx%d != %dx%d", view.Rows(), view.Cols(), rows.Rows(), rows.Cols())
	}
	for i := 0; i < rows.Rows(); i++ {
		for j, w := range rows.Row(i) {
			if view.Row(i)[j] != w {
				t.Fatalf("view[%d][%d] != copy", i, j)
			}
		}
	}
	want := mat.NewDense(6, 6)
	mat.GramAdd(want, rows, 2.5)
	got := mat.NewDense(6, 6)
	s.GramAddTo(got, 2.5)
	for i, w := range want.Data() {
		if got.Data()[i] != w {
			t.Fatalf("GramAddTo[%d]: %v != %v", i, got.Data()[i], w)
		}
	}
}

// TestUpdateSteadyStateAllocFree pins the amortized Update cost —
// including the SVD shrinks it absorbs — at zero heap allocations per row
// once the sketch's persistent workspace has been populated.
func TestUpdateSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := New(8, 16)
	// Warm up past several shrinks so the workspace buffers stabilize.
	for i := 0; i < 8*8; i++ {
		s.Update(randRow(rng, 16))
	}
	row := randRow(rng, 16)
	// 3*2*ell runs cross multiple shrink cycles, so the measurement covers
	// the shrink path, not just the cheap append.
	if n := testing.AllocsPerRun(3*2*8, func() { s.Update(row) }); n != 0 {
		t.Errorf("fd.Update: %v allocs/row at steady state, want 0", n)
	}
}
