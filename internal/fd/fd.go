// Package fd implements Liberty's Frequent Directions matrix sketch
// (KDD 2013; Ghashami et al., SICOMP 2016): a deterministic, mergeable
// ℓ×d sketch B of a row stream A with covariance error
// ‖AᵀA − BᵀB‖₂ ≤ ‖A‖_F²/ℓ.
//
// The implementation uses the standard doubled-buffer trick: rows are
// appended into a 2ℓ×d buffer and a single SVD-shrink step runs every ℓ
// appends, giving O(dℓ) amortized update time.
package fd

import (
	"fmt"
	"math"

	"distwindow/mat"
)

// Sketch is a Frequent Directions sketch. The zero value is not usable;
// construct with New.
type Sketch struct {
	ell    int
	d      int
	buf    *mat.Dense // 2ℓ×d working buffer
	n      int        // occupied rows of buf
	frobSq float64    // exact ‖A‖_F² of everything fed in
	shrunk float64    // total spectral mass removed by shrinking (Σ δ)
}

// New returns an empty sketch with ℓ rows of capacity for d-dimensional
// input rows. The covariance error guarantee is ‖A‖_F²/ℓ, so choose
// ℓ ≥ ⌈1/ε⌉ for an ε-covariance sketch.
func New(ell, d int) *Sketch {
	if ell < 1 || d < 1 {
		panic(fmt.Sprintf("fd: invalid sketch size ℓ=%d d=%d", ell, d))
	}
	return &Sketch{ell: ell, d: d, buf: mat.NewDense(2*ell, d)}
}

// L returns the sketch size parameter ℓ.
func (s *Sketch) L() int { return s.ell }

// D returns the row dimension.
func (s *Sketch) D() int { return s.d }

// FrobSq returns the exact squared Frobenius norm of all input so far.
func (s *Sketch) FrobSq() float64 { return s.frobSq }

// ShrunkMass returns the total squared mass removed by shrink steps; it
// upper-bounds the sketch's covariance error ‖AᵀA − BᵀB‖₂.
func (s *Sketch) ShrunkMass() float64 { return s.shrunk }

// Update feeds one row into the sketch.
func (s *Sketch) Update(v []float64) {
	if len(v) != s.d {
		panic(fmt.Sprintf("fd: row length %d != d %d", len(v), s.d))
	}
	if s.n == 2*s.ell {
		s.shrink()
	}
	s.buf.SetRow(s.n, v)
	s.n++
	s.frobSq += mat.VecNormSq(v)
}

// shrink compacts the buffer to at most ℓ nonzero rows by SVD and
// subtracting σ_ℓ² from every squared singular value.
func (s *Sketch) shrink() {
	if s.n <= s.ell {
		return
	}
	svd := mat.ThinSVD(s.buf.SliceRows(0, s.n))
	delta := 0.0
	if len(svd.S) > s.ell {
		delta = svd.S[s.ell] * svd.S[s.ell]
	}
	s.buf.Zero()
	kept := 0
	for i := 0; i < len(svd.S) && i < s.ell; i++ {
		sq := svd.S[i]*svd.S[i] - delta
		if sq <= 0 {
			break
		}
		row := s.buf.Row(kept)
		vt := svd.Vt.Row(i)
		scale := math.Sqrt(sq)
		for j := range row {
			row[j] = scale * vt[j]
		}
		kept++
	}
	s.n = kept
	s.shrunk += delta
}

// Rows returns the current sketch matrix B (k×d with k ≤ 2ℓ−1 between
// shrinks; call Compact first for k ≤ ℓ). The result copies storage.
func (s *Sketch) Rows() *mat.Dense {
	out := mat.NewDense(s.n, s.d)
	out.CopyFrom(s.buf.SliceRows(0, s.n))
	return out
}

// ApplyGramAdd accumulates y += Bᵀ(B·x) over the sketch's current rows
// without materializing them — the cheap mat-vec the protocols' power
// iterations are built on.
func (s *Sketch) ApplyGramAdd(x, y []float64) {
	for i := 0; i < s.n; i++ {
		row := s.buf.Row(i)
		c := mat.Dot(row, x)
		if c != 0 {
			mat.Axpy(c, row, y)
		}
	}
}

// Compact forces a shrink so the sketch has at most ℓ rows, then returns it.
func (s *Sketch) Compact() *mat.Dense {
	s.shrink()
	return s.Rows()
}

// Reset empties the sketch without releasing its buffers.
func (s *Sketch) Reset() {
	s.buf.Zero()
	s.n = 0
	s.frobSq = 0
	s.shrunk = 0
}

// Merge folds the other sketch into s (the FD merge operation: append the
// other sketch's rows and shrink). The error guarantees add. The other
// sketch is not modified.
func (s *Sketch) Merge(other *Sketch) {
	if other.d != s.d {
		panic(fmt.Sprintf("fd: merge dimension mismatch %d vs %d", other.d, s.d))
	}
	for i := 0; i < other.n; i++ {
		if s.n == 2*s.ell {
			s.shrink()
		}
		s.buf.SetRow(s.n, other.buf.Row(i))
		s.n++
	}
	s.frobSq += other.frobSq
	s.shrunk += other.shrunk
}

// Clone returns a deep copy of the sketch.
func (s *Sketch) Clone() *Sketch {
	return &Sketch{
		ell:    s.ell,
		d:      s.d,
		buf:    s.buf.Clone(),
		n:      s.n,
		frobSq: s.frobSq,
		shrunk: s.shrunk,
	}
}
