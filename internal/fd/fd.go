// Package fd implements Liberty's Frequent Directions matrix sketch
// (KDD 2013; Ghashami et al., SICOMP 2016): a deterministic, mergeable
// ℓ×d sketch B of a row stream A with covariance error
// ‖AᵀA − BᵀB‖₂ ≤ ‖A‖_F²/ℓ.
//
// The implementation uses the standard doubled-buffer trick: rows are
// appended into a 2ℓ×d buffer and a single SVD-shrink step runs every ℓ
// appends, giving O(dℓ) amortized update time. Each sketch owns one
// persistent decomposition workspace, so at steady state Update (and the
// amortized shrinks behind it) performs no heap allocations.
package fd

import (
	"fmt"
	"math"

	"distwindow/mat"
)

// Sketch is a Frequent Directions sketch. The zero value is not usable;
// construct with New.
type Sketch struct {
	ell    int
	d      int
	buf    *mat.Dense // 2ℓ×d working buffer
	n      int        // occupied rows of buf
	frobSq float64    // exact ‖A‖_F² of everything fed in
	shrunk float64    // total spectral mass removed by shrinking (Σ δ)
	// ws is the persistent shrink workspace, allocated on the first shrink
	// and reused (dirty) forever after; shrink dimensions never change, so
	// its buffers stabilize after one use.
	ws *mat.Workspace
}

// New returns an empty sketch with ℓ rows of capacity for d-dimensional
// input rows. The covariance error guarantee is ‖A‖_F²/ℓ, so choose
// ℓ ≥ ⌈1/ε⌉ for an ε-covariance sketch.
func New(ell, d int) *Sketch {
	if ell < 1 || d < 1 {
		panic(fmt.Sprintf("fd: invalid sketch size ℓ=%d d=%d", ell, d))
	}
	return &Sketch{ell: ell, d: d, buf: mat.NewDense(2*ell, d)}
}

// L returns the sketch size parameter ℓ.
func (s *Sketch) L() int { return s.ell }

// D returns the row dimension.
func (s *Sketch) D() int { return s.d }

// FrobSq returns the exact squared Frobenius norm of all input so far.
func (s *Sketch) FrobSq() float64 { return s.frobSq }

// ShrunkMass returns the total squared mass removed by shrink steps; it
// upper-bounds the sketch's covariance error ‖AᵀA − BᵀB‖₂.
func (s *Sketch) ShrunkMass() float64 { return s.shrunk }

// Update feeds one row into the sketch.
func (s *Sketch) Update(v []float64) {
	if len(v) != s.d {
		panic(fmt.Sprintf("fd: row length %d != d %d", len(v), s.d))
	}
	if s.n == 2*s.ell {
		s.shrink()
	}
	s.buf.SetRow(s.n, v)
	s.n++
	s.frobSq += mat.VecNormSq(v)
}

// shrink compacts the buffer to at most ℓ nonzero rows by SVD and
// subtracting σ_ℓ² from every squared singular value.
func (s *Sketch) shrink() {
	if s.n <= s.ell {
		return
	}
	if s.ws == nil {
		s.ws = mat.NewWorkspace()
	}
	svd := mat.ThinSVDNoU(s.buf.SliceRows(0, s.n), s.ws)
	delta := 0.0
	if len(svd.S) > s.ell {
		delta = svd.S[s.ell] * svd.S[s.ell]
	}
	// Rows at index ≥ the new count are never read before being fully
	// overwritten (Update/Merge copy whole rows), so the stale tail of the
	// buffer needs no zeroing.
	kept := 0
	for i := 0; i < len(svd.S) && i < s.ell; i++ {
		sq := svd.S[i]*svd.S[i] - delta
		if sq <= 0 {
			break
		}
		row := s.buf.Row(kept)
		vt := svd.Vt.Row(i)
		scale := math.Sqrt(sq)
		for j := range row {
			row[j] = scale * vt[j]
		}
		kept++
	}
	s.n = kept
	s.shrunk += delta
}

// Rows returns the current sketch matrix B (k×d with k ≤ 2ℓ−1 between
// shrinks; call Compact first for k ≤ ℓ). The result copies storage.
func (s *Sketch) Rows() *mat.Dense {
	out := mat.NewDense(s.n, s.d)
	out.CopyFrom(s.buf.SliceRows(0, s.n))
	return out
}

// RowsView returns the current sketch matrix as a view sharing the
// sketch's buffer — no copy. The view is invalidated (and its contents
// rewritten) by the next Update/Merge/Reset; callers must not retain it
// across mutations or mutate it themselves.
func (s *Sketch) RowsView() *mat.Dense { return s.buf.SliceRows(0, s.n) }

// NumRows returns the number of live sketch rows without copying them.
func (s *Sketch) NumRows() int { return s.n }

// AppendRowsTo copies the sketch's live rows into dst starting at row at,
// and returns the number of rows written. It is the bulk no-allocation
// alternative to Rows() for callers stacking several sketches.
func (s *Sketch) AppendRowsTo(dst *mat.Dense, at int) int {
	if dst.Cols() != s.d {
		panic(fmt.Sprintf("fd: AppendRowsTo dst cols %d != d %d", dst.Cols(), s.d))
	}
	if at < 0 || at+s.n > dst.Rows() {
		panic(fmt.Sprintf("fd: AppendRowsTo rows [%d,%d) out of dst range %d", at, at+s.n, dst.Rows()))
	}
	copy(dst.Data()[at*s.d:(at+s.n)*s.d], s.buf.Data()[:s.n*s.d])
	return s.n
}

// GramAddTo accumulates dst += scale · BᵀB over the sketch's live rows
// without copying them. dst must be d×d.
func (s *Sketch) GramAddTo(dst *mat.Dense, scale float64) {
	mat.GramAdd(dst, s.buf.SliceRows(0, s.n), scale)
}

// ApplyGramAdd accumulates y += Bᵀ(B·x) over the sketch's current rows
// without materializing them — the cheap mat-vec the protocols' power
// iterations are built on.
func (s *Sketch) ApplyGramAdd(x, y []float64) {
	for i := 0; i < s.n; i++ {
		row := s.buf.Row(i)
		c := mat.Dot(row, x)
		if c != 0 {
			mat.Axpy(c, row, y)
		}
	}
}

// Compact forces a shrink so the sketch has at most ℓ rows, then returns
// a copy of it. Hot paths should prefer CompactView.
func (s *Sketch) Compact() *mat.Dense {
	s.shrink()
	return s.Rows()
}

// CompactView forces a shrink and returns the sketch rows as a view
// sharing the sketch's buffer — no copy. The same aliasing rules as
// RowsView apply.
func (s *Sketch) CompactView() *mat.Dense {
	s.shrink()
	return s.buf.SliceRows(0, s.n)
}

// Reset empties the sketch without releasing its buffers.
func (s *Sketch) Reset() {
	// No zeroing: rows are fully overwritten before they are ever read
	// (see shrink), so clearing the count and ledgers suffices.
	s.n = 0
	s.frobSq = 0
	s.shrunk = 0
}

// Merge folds the other sketch into s (the FD merge operation: append the
// other sketch's rows and shrink). The error guarantees add. The other
// sketch is not modified. Rows are copied in whole blocks between shrinks;
// the shrink schedule (and hence the result) is identical to appending the
// rows one at a time. s and other must be distinct.
func (s *Sketch) Merge(other *Sketch) {
	if other.d != s.d {
		panic(fmt.Sprintf("fd: merge dimension mismatch %d vs %d", other.d, s.d))
	}
	for i := 0; i < other.n; {
		if s.n == 2*s.ell {
			s.shrink()
		}
		take := 2*s.ell - s.n
		if rem := other.n - i; rem < take {
			take = rem
		}
		copy(s.buf.Data()[s.n*s.d:(s.n+take)*s.d], other.buf.Data()[i*s.d:(i+take)*s.d])
		s.n += take
		i += take
	}
	s.frobSq += other.frobSq
	s.shrunk += other.shrunk
}

// MergeInto folds s into dst and resets s — the destructive-source merge.
// Callers recycling sketch buffers (the mEH bucket freelist) use it so the
// source is immediately reusable.
func (s *Sketch) MergeInto(dst *Sketch) {
	dst.Merge(s)
	s.Reset()
}

// Clone returns a deep copy of the sketch. The decomposition workspace is
// not shared; the clone allocates its own on first shrink.
func (s *Sketch) Clone() *Sketch {
	return &Sketch{
		ell:    s.ell,
		d:      s.d,
		buf:    s.buf.Clone(),
		n:      s.n,
		frobSq: s.frobSq,
		shrunk: s.shrunk,
	}
}
