package protocol

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// EmitAt receives a coordinator update produced during site-local work,
// stamped with its emission time. Within one lane, emission times must be
// non-decreasing and never less than the progress value the lane handler
// last returned — the merge relies on both to order applies globally.
type EmitAt func(t int64, scale float64, v []float64)

// LaneHandler runs all site-local work for one pipeline item. The pipeline
// calls it from the lane's worker goroutine: calls for one site are
// serialized, calls for distinct sites run concurrently, so the handler's
// per-site state needs no locking but anything shared (counters, the
// tracker's site array) must be safe for concurrent sites.
//
// The v slice passed to HandleRow aliases the lane's ring slot and is
// reused after the call returns — the handler must copy anything it
// retains (the trackers already honor this no-retention contract).
//
// Each call returns the lane's new progress: a promise that every future
// emission from this site has emission time ≥ progress. For a plain lane
// this is the item's timestamp; a lane holding a skew buffer returns its
// release floor instead, since buffered rows may still come out earlier
// than the newest arrival.
type LaneHandler interface {
	HandleRow(site int, t int64, v []float64, emit EmitAt) (progress int64)
	HandleAdvance(site int, now int64, emit EmitAt) (progress int64)
	HandleFlush(site int, emit EmitAt) (progress int64)
}

// PipelineConfig sizes the pipeline.
type PipelineConfig struct {
	// Workers is the number of site-work goroutines; lanes are sharded
	// round-robin across them. ≤0 means GOMAXPROCS.
	Workers int
	// RingSize is the per-lane input ring capacity (rounded up to a power
	// of two). ≤0 means 256. When a lane's ring fills, EnqueueRow blocks —
	// backpressure, not loss.
	RingSize int
}

// outQueue is a lane's unbounded site→coordinator queue. Unlike the input
// rings it must not exert backpressure: a lagging lane blocking its worker
// here could deadlock the merge, and the one-way protocols emit rarely
// enough (communication efficiency is the point) that growth is bounded in
// practice by the merge stalling on unfed lanes.
type outQueue struct {
	mu    sync.Mutex
	items []Update
	head  int
}

func (q *outQueue) push(u Update) {
	q.mu.Lock()
	q.items = append(q.items, u)
	q.mu.Unlock()
}

func (q *outQueue) peek() (Update, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.items) {
		return Update{}, false
	}
	return q.items[q.head], true
}

func (q *outQueue) pop() Update {
	q.mu.Lock()
	u := q.items[q.head]
	q.items[q.head] = Update{}
	q.head++
	if q.head == len(q.items) {
		q.items, q.head = q.items[:0], 0
	}
	q.mu.Unlock()
	return u
}

// lane is one site's slice of the pipeline: its input ring, its out-queue
// toward the coordinator, and its merge bookkeeping.
type lane struct {
	site int
	ring *spscRing
	out  outQueue

	// progress is the lane's emission floor (see LaneHandler). Written by
	// the worker after each item, read by the coordinator for virtual
	// merge keys. Starts at minInt64: an unstarted lane blocks everything.
	progress atomic.Int64

	// enq counts items pushed to the ring, done items fully processed;
	// enq == done means the lane is idle (its emissions, if any, are in
	// the out-queue). dirty tells the coordinator to re-read this lane's
	// merge key on its next pass.
	enq   atomic.Int64
	done  atomic.Int64
	dirty atomic.Bool

	// justEmitted is worker-local (emit runs on the worker goroutine): set
	// by emit, consumed by the worker loop to decide whether the
	// coordinator must be woken.
	justEmitted bool
	emitFn      EmitAt
	p           *Pipeline
}

func (ln *lane) emit(t int64, scale float64, v []float64) {
	ln.out.push(Update{T: t, Site: ln.site, Scale: scale, V: v})
	ln.p.pending.Add(1)
	ln.justEmitted = true
}

func (ln *lane) idle() bool { return ln.done.Load() == ln.enq.Load() }

// Pipeline is the parallel ingestion fabric for the one-way protocol
// family: one lane per site, lanes sharded over worker goroutines that run
// all site-local work, and a single coordinator goroutine that applies the
// emitted updates in global (T, site) order via a tournament merge over
// the lanes' out-queues.
//
// Concurrency contract: at most one goroutine may enqueue per site (the
// rings are single-producer), and Advance/Drain/MinProgress/Close must not
// run concurrently with any enqueue.
type Pipeline struct {
	lanes []*lane
	h     LaneHandler
	apply func(Update)

	tour *tournament
	// pending counts emitted-but-unapplied updates across all lanes.
	pending  atomic.Int64
	draining atomic.Bool
	// kick wakes the coordinator; buffered so a kick during a pass is
	// never lost.
	kick  chan struct{}
	wakes []chan struct{} // one per worker
	stopc chan struct{}
	wg    sync.WaitGroup
}

const maxInt64 = 1<<63 - 1

// NewPipeline starts the workers and coordinator for sites lanes. apply is
// called only from the coordinator goroutine, in global (T, site) order
// with per-site FIFO.
func NewPipeline(sites int, h LaneHandler, apply func(Update), cfg PipelineConfig) *Pipeline {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > sites {
		workers = sites
	}
	ringSize := cfg.RingSize
	if ringSize <= 0 {
		ringSize = 256
	}
	p := &Pipeline{
		h:     h,
		apply: apply,
		tour:  newTournament(sites),
		kick:  make(chan struct{}, 1),
		stopc: make(chan struct{}),
	}
	p.lanes = make([]*lane, sites)
	for i := range p.lanes {
		ln := &lane{site: i, ring: newSPSCRing(ringSize), p: p}
		ln.progress.Store(minInt64)
		ln.emitFn = ln.emit
		p.lanes[i] = ln
	}
	p.wakes = make([]chan struct{}, workers)
	for w := 0; w < workers; w++ {
		p.wakes[w] = make(chan struct{}, 1)
		var mine []*lane
		for i := w; i < sites; i += workers {
			mine = append(mine, p.lanes[i])
		}
		p.wg.Add(1)
		go p.worker(mine, p.wakes[w])
	}
	p.wg.Add(1)
	go p.coordinator()
	return p
}

// EnqueueRow hands a row to its site's lane. v is copied into the lane's
// ring, so the caller may reuse its backing array. Blocks while the lane's
// ring is full (backpressure).
func (p *Pipeline) EnqueueRow(site int, t int64, v []float64) {
	ln := p.lanes[site]
	ln.enq.Add(1)
	ln.ring.push(func(s *laneItem) {
		s.t, s.kind = t, itemRow
		s.v = append(s.v[:0], v...)
	})
	p.wakeWorker(site)
}

// Advance broadcasts a clock-advance token to every lane. Caller must be
// quiesced (no concurrent enqueues anywhere).
func (p *Pipeline) Advance(now int64) {
	for _, ln := range p.lanes {
		ln.enq.Add(1)
		ln.ring.push(func(s *laneItem) { s.t, s.kind = now, itemAdvance })
	}
	for w := range p.wakes {
		p.wake(w)
	}
}

func (p *Pipeline) wakeWorker(site int) { p.wake(site % len(p.wakes)) }

func (p *Pipeline) wake(w int) {
	select {
	case p.wakes[w] <- struct{}{}:
	default:
	}
}

func (p *Pipeline) kickCoord() {
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// worker drains its lanes' rings, running the handler in-place on each
// slot (peek → handle → pop, so the slot buffer is stable during the
// call), and parks when all its lanes are empty.
func (p *Pipeline) worker(lanes []*lane, wakec chan struct{}) {
	defer p.wg.Done()
	for {
		progressed := false
		for _, ln := range lanes {
			for {
				it, ok := ln.ring.peek()
				if !ok {
					break
				}
				progressed = true
				ln.justEmitted = false
				var prog int64
				switch it.kind {
				case itemRow:
					prog = p.h.HandleRow(ln.site, it.t, it.v, ln.emitFn)
				case itemAdvance:
					prog = p.h.HandleAdvance(ln.site, it.t, ln.emitFn)
				case itemFlush:
					prog = p.h.HandleFlush(ln.site, ln.emitFn)
				}
				if prog > ln.progress.Load() {
					ln.progress.Store(prog)
				}
				ln.ring.pop()
				ln.done.Add(1)
				ln.dirty.Store(true)
				// The coordinator only needs to see this lane's new key if
				// an update is waiting somewhere: our own emission, or a
				// stalled update from another lane that our progress may
				// unblock. With pending == 0 the dirty flag just
				// accumulates until the next emission's kick.
				if ln.justEmitted || p.pending.Load() > 0 {
					p.kickCoord()
				}
			}
		}
		if !progressed {
			select {
			case <-wakec:
			case <-p.stopc:
				return
			}
		}
	}
}

// coordinator applies updates in global (T, site) order: on each kick it
// re-reads the merge keys of dirty lanes, then pops and applies while the
// tournament winner is a real key. A virtual winner means some lane could
// still emit earlier — stall until that lane progresses (or Drain marks it
// finished).
func (p *Pipeline) coordinator() {
	defer p.wg.Done()
	for {
		select {
		case <-p.kick:
		case <-p.stopc:
			return
		}
		changed := false
		for i, ln := range p.lanes {
			if ln.dirty.Swap(false) {
				p.tour.setKey(i, p.leafKey(i))
				changed = true
			}
		}
		if changed {
			p.tour.rebuild()
		}
		for {
			w, real := p.tour.min()
			if !real {
				break
			}
			u := p.lanes[w].out.pop()
			p.apply(u)
			p.pending.Add(-1)
			p.tour.replayWinner(p.leafKey(w))
		}
	}
}

// leafKey computes lane i's current merge key: the head of its out-queue
// if one is waiting, else a virtual key from its progress — or +inf during
// a drain once the lane is idle, since a drained lane cannot emit again.
func (p *Pipeline) leafKey(i int) mergeKey {
	ln := p.lanes[i]
	if u, ok := ln.out.peek(); ok {
		return mergeKey{t: u.T, site: u.Site, real: true}
	}
	if p.draining.Load() && ln.idle() {
		return mergeKey{t: maxInt64, site: i}
	}
	return mergeKey{t: ln.progress.Load(), site: i}
}

// Drain blocks until every enqueued item has been processed and every
// emitted update applied. If flush is true it first sends each lane a
// flush token (releasing skew-buffered rows) once the lanes go idle.
// Caller must be quiesced; afterwards Sketch-style reads of the
// coordinator state are safe.
func (p *Pipeline) Drain(flush bool) {
	waitUntil(p.lanesIdle)
	if flush {
		for _, ln := range p.lanes {
			ln.enq.Add(1)
			ln.ring.push(func(s *laneItem) { s.kind = itemFlush })
		}
		for w := range p.wakes {
			p.wake(w)
		}
		waitUntil(p.lanesIdle)
	}
	p.draining.Store(true)
	p.markAllDirty()
	p.kickCoord()
	waitUntil(func() bool { return p.pending.Load() == 0 })
	p.draining.Store(false)
	// The +inf drain keys are stale now: re-dirty every lane so the next
	// pass restores progress-based keys before new items arrive.
	p.markAllDirty()
	p.kickCoord()
}

func (p *Pipeline) lanesIdle() bool {
	for _, ln := range p.lanes {
		if !ln.idle() {
			return false
		}
	}
	return true
}

func (p *Pipeline) markAllDirty() {
	for _, ln := range p.lanes {
		ln.dirty.Store(true)
	}
}

// MinProgress returns the smallest lane progress — a safe lower bound on
// the emission time of anything the pipeline could still produce. A lane
// that never processed an item reports minInt64.
func (p *Pipeline) MinProgress() int64 {
	min := int64(maxInt64)
	for _, ln := range p.lanes {
		if v := ln.progress.Load(); v < min {
			min = v
		}
	}
	return min
}

// Close stops the workers and coordinator. It does not drain: call Drain
// first if unapplied work matters. No enqueue may be in flight or follow.
func (p *Pipeline) Close() {
	close(p.stopc)
	p.wg.Wait()
}

// waitUntil spins briefly then backs off to short sleeps; the waits it
// serves (drain barriers) are bounded by in-flight work.
func waitUntil(cond func() bool) {
	for i := 0; !cond(); i++ {
		if i < 100 {
			runtime.Gosched()
		} else {
			time.Sleep(50 * time.Microsecond)
		}
	}
}
