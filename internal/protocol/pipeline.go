package protocol

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"distwindow/internal/stream"
)

// EmitAt receives a coordinator update produced during site-local work,
// stamped with its emission time. Within one lane, emission times must be
// non-decreasing and never less than the progress value the lane handler
// last returned — the merge relies on both to order applies globally.
type EmitAt func(t int64, scale float64, v []float64)

// LaneHandler runs all site-local work for one pipeline item. The pipeline
// calls it from the lane's worker goroutine: calls for one site are
// serialized, calls for distinct sites run concurrently, so the handler's
// per-site state needs no locking but anything shared (counters, the
// tracker's site array) must be safe for concurrent sites.
//
// The v slice passed to HandleRow aliases the lane's ring slot and is
// reused after the slot is popped — the handler must copy anything it
// retains (the trackers already honor this no-retention contract).
//
// Each call returns the lane's new progress: a promise that every future
// emission from this site has emission time ≥ progress. For a plain lane
// this is the item's timestamp; a lane holding a skew buffer returns its
// release floor instead, since buffered rows may still come out earlier
// than the newest arrival.
type LaneHandler interface {
	HandleRow(site int, t int64, v []float64, emit EmitAt) (progress int64)
	HandleAdvance(site int, now int64, emit EmitAt) (progress int64)
	HandleFlush(site int, emit EmitAt) (progress int64)
}

// PipelineConfig sizes the pipeline.
type PipelineConfig struct {
	// Workers is the number of site-work goroutines; lanes are sharded
	// round-robin across them. ≤0 means GOMAXPROCS.
	Workers int
	// RingSize is the per-lane input ring capacity in blocks (rounded up
	// to a power of two). ≤0 means 256. When a lane's ring fills, enqueues
	// block — backpressure, not loss.
	RingSize int
	// MaxBlock caps the rows per ring block. ≤0 means 64. EnqueueRows
	// splits longer runs into MaxBlock-row blocks, each one ring op.
	MaxBlock int
	// PostApply, if non-nil, is called from the coordinator goroutine at
	// the end of every apply pass with the number of updates the pass
	// applied (possibly zero). It runs before the pass's updates are
	// subtracted from the pending count, so Drain's pending==0 barrier
	// also covers the hook: once Drain returns, no PostApply call is in
	// flight for pre-drain work. The hook must not block for long — it
	// stalls the apply loop, not ingest — and must not call back into the
	// pipeline except via Kick.
	PostApply func(applied int)
}

// pendQueue is a lane's worker-local FIFO of emitted-but-unreleased
// updates. Only the lane's worker touches it (emit during handling,
// pop during the release pass), so it needs no locking. It is unbounded
// for the same reason the out-rings are: a lagging lane must not block
// the merge.
type pendQueue struct {
	items []Update
	head  int
}

func (q *pendQueue) push(u Update) { q.items = append(q.items, u) }

func (q *pendQueue) peek() (Update, bool) {
	if q.head == len(q.items) {
		return Update{}, false
	}
	return q.items[q.head], true
}

func (q *pendQueue) pop() Update {
	u := q.items[q.head]
	q.items[q.head] = Update{}
	q.head++
	if q.head == len(q.items) {
		q.items, q.head = q.items[:0], 0
	}
	return u
}

// lane is one site's slice of the pipeline: its input ring, its pending
// emissions, and its merge bookkeeping.
type lane struct {
	site int
	ring *spscRing
	pend pendQueue

	// progress is the lane's emission floor (see LaneHandler). Written by
	// the worker after each block, read for virtual merge keys and
	// MinProgress. Starts at minInt64: an unstarted lane blocks everything.
	progress atomic.Int64

	// enq counts blocks pushed to the ring, done blocks fully processed;
	// enq == done means the lane's input is drained (its emissions, if
	// any, are in pend or further along).
	enq  atomic.Int64
	done atomic.Int64

	emitFn EmitAt
	w      *workerState
}

func (ln *lane) emit(t int64, scale float64, v []float64) {
	ln.pend.push(Update{T: t, Site: ln.site, Scale: scale, V: v})
	ln.w.localPend.Add(1)
}

func (ln *lane) idle() bool { return ln.done.Load() == ln.enq.Load() }

// localKey is the lane's merge key inside its worker's pre-merge: the head
// pending emission if one exists, else +inf when a drain has proven the
// lane cannot emit again, else a virtual key from its progress.
func (ln *lane) localKey(draining bool) mergeKey {
	if u, ok := ln.pend.peek(); ok {
		return mergeKey{t: u.T, site: u.Site, real: true}
	}
	if draining && ln.idle() {
		return mergeKey{t: maxInt64, site: ln.site}
	}
	return mergeKey{t: ln.progress.Load(), site: ln.site}
}

// workerState is one worker goroutine's shard of the pipeline: the lanes
// it owns, the local tournament that pre-merges their emissions into one
// (T, site)-ordered run, the SPSC out-ring carrying that run to the
// coordinator, and the published floor that gates the final merge while
// the out-ring is empty.
type workerState struct {
	id    int
	lanes []*lane
	tour  *tournament // leaf i ↔ lanes[i]; worker-only
	out   *outRing

	// floor is the worker's released-emission floor: a promise that every
	// update the worker has not yet pushed to its out-ring has merge key
	// ≥ floor (same "strictly after, except the same-key real" reading as
	// lane progress). Published under a seqlock: torn (t, site) pairs are
	// order-unsafe — a new t paired with a stale smaller site would let a
	// candidate through that must still wait — so readers retry until they
	// observe a consistent pair.
	floorSeq  atomic.Uint64
	floorT    atomic.Int64
	floorSite atomic.Int64

	// localPend counts emitted-but-unreleased updates across the worker's
	// lanes. Written only by the worker, read by Drain and the coordinator
	// to detect true idleness.
	localPend atomic.Int64

	// dirty tells the coordinator to re-read this worker's merge key.
	dirty atomic.Bool
	wake  chan struct{}
}

func (w *workerState) publishFloor(k mergeKey) {
	w.floorSeq.Add(1) // odd: write in progress
	w.floorT.Store(k.t)
	w.floorSite.Store(int64(k.site))
	w.floorSeq.Add(1) // even: consistent
}

func (w *workerState) readFloor() mergeKey {
	for {
		s := w.floorSeq.Load()
		if s&1 == 0 {
			t := w.floorT.Load()
			site := w.floorSite.Load()
			if w.floorSeq.Load() == s {
				return mergeKey{t: t, site: int(site)}
			}
		}
		runtime.Gosched()
	}
}

// idle reports whether the worker has fully digested its input: every
// owned lane's ring drained and every emission released to the out-ring.
func (w *workerState) idle() bool {
	if w.localPend.Load() != 0 {
		return false
	}
	for _, ln := range w.lanes {
		if !ln.idle() {
			return false
		}
	}
	return true
}

// Pipeline is the parallel ingestion fabric for the one-way protocol
// family: one lane per site, lanes sharded over worker goroutines that run
// all site-local work and pre-merge their lanes' emissions into per-worker
// (T, site)-ordered runs, and a single coordinator goroutine that applies
// updates in global (T, site) order via a final k-way tournament merge
// over k = workers out-rings.
//
// Concurrency contract: at most one goroutine may enqueue per site (the
// rings are single-producer), and Advance/Drain/MinProgress/Close must not
// run concurrently with any enqueue.
type Pipeline struct {
	lanes     []*lane
	workers   []*workerState
	h         LaneHandler
	apply     func(Update)
	postApply func(applied int)

	maxBlock int

	tour *tournament // leaf i ↔ workers[i]; coordinator-only
	// pending counts updates released to out-rings but not yet applied.
	pending  atomic.Int64
	draining atomic.Bool
	// kick wakes the coordinator; buffered so a kick during a pass is
	// never lost.
	kick  chan struct{}
	stopc chan struct{}
	wg    sync.WaitGroup
}

const maxInt64 = 1<<63 - 1

// NewPipeline starts the workers and coordinator for sites lanes. apply is
// called only from the coordinator goroutine, in global (T, site) order
// with per-site FIFO.
func NewPipeline(sites int, h LaneHandler, apply func(Update), cfg PipelineConfig) *Pipeline {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > sites {
		workers = sites
	}
	ringSize := cfg.RingSize
	if ringSize <= 0 {
		ringSize = 256
	}
	maxBlock := cfg.MaxBlock
	if maxBlock <= 0 {
		maxBlock = 64
	}
	p := &Pipeline{
		h:         h,
		apply:     apply,
		postApply: cfg.PostApply,
		maxBlock:  maxBlock,
		tour:      newTournament(workers),
		kick:      make(chan struct{}, 1),
		stopc:     make(chan struct{}),
	}
	p.lanes = make([]*lane, sites)
	for i := range p.lanes {
		ln := &lane{site: i, ring: newSPSCRing(ringSize)}
		ln.progress.Store(minInt64)
		ln.emitFn = ln.emit
		p.lanes[i] = ln
	}
	p.workers = make([]*workerState, workers)
	for wk := 0; wk < workers; wk++ {
		w := &workerState{
			id:   wk,
			out:  newOutRing(),
			wake: make(chan struct{}, 1),
		}
		for i := wk; i < sites; i += workers {
			p.lanes[i].w = w
			w.lanes = append(w.lanes, p.lanes[i])
		}
		w.tour = newTournament(len(w.lanes))
		w.publishFloor(mergeKey{t: minInt64, site: w.lanes[0].site})
		p.workers[wk] = w
		p.wg.Add(1)
		go p.worker(w)
	}
	p.wg.Add(1)
	go p.coordinator()
	return p
}

// EnqueueRow hands a single row to its site's lane as a one-row block. v
// is copied into the lane's ring, so the caller may reuse its backing
// array. Blocks while the lane's ring is full (backpressure).
func (p *Pipeline) EnqueueRow(site int, t int64, v []float64) {
	ln := p.lanes[site]
	ln.enq.Add(1)
	ln.ring.push(func(s *laneItem) {
		s.kind = itemRow
		s.n, s.d = 1, len(v)
		s.ts = append(s.ts[:0], t)
		s.vbuf = append(s.vbuf[:0], v...)
	})
	p.wakeWorker(site)
}

// EnqueueRows hands a run of rows to its site's lane in blocks of up to
// MaxBlock rows — one ring op and one (non-blocking) worker wakeup per
// block, amortizing the per-row atomics and parks of EnqueueRow. All rows
// must share a dimension. Values are copied; blocks while the ring is
// full.
func (p *Pipeline) EnqueueRows(site int, rows []stream.Row) {
	ln := p.lanes[site]
	for len(rows) > 0 {
		n := len(rows)
		if n > p.maxBlock {
			n = p.maxBlock
		}
		blk := rows[:n]
		rows = rows[n:]
		ln.enq.Add(1)
		ln.ring.push(func(s *laneItem) { s.fillRows(blk) })
		// Wake per block, not once after the loop: if the worker is parked
		// and this call carries more blocks than the ring holds, push would
		// block on a full ring with no one ever told to drain it.
		p.wakeWorker(site)
	}
}

// Advance broadcasts a clock-advance token to every lane. Caller must be
// quiesced (no concurrent enqueues anywhere).
func (p *Pipeline) Advance(now int64) {
	for _, ln := range p.lanes {
		ln.enq.Add(1)
		ln.ring.push(func(s *laneItem) { s.t, s.kind = now, itemAdvance })
	}
	for _, w := range p.workers {
		p.wake(w)
	}
}

// Workers returns the number of worker goroutines the pipeline runs.
func (p *Pipeline) Workers() int { return len(p.workers) }

func (p *Pipeline) wakeWorker(site int) { p.wake(p.lanes[site].w) }

func (p *Pipeline) wake(w *workerState) {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

func (p *Pipeline) kickCoord() {
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// worker drains its lanes' rings, running the handler in-place on each
// block (peek → handle → pop, so the slot buffers are stable during the
// calls), then releases its lanes' pending emissions through the local
// pre-merge before parking.
func (p *Pipeline) worker(w *workerState) {
	defer p.wg.Done()
	for {
		progressed := false
		for _, ln := range w.lanes {
			for {
				it, ok := ln.ring.peek()
				if !ok {
					break
				}
				progressed = true
				var prog int64
				switch it.kind {
				case itemRow:
					for r := 0; r < it.n; r++ {
						t, v := it.row(r)
						prog = p.h.HandleRow(ln.site, t, v, ln.emitFn)
					}
				case itemAdvance:
					prog = p.h.HandleAdvance(ln.site, it.t, ln.emitFn)
				case itemFlush:
					prog = p.h.HandleFlush(ln.site, ln.emitFn)
				}
				if prog > ln.progress.Load() {
					ln.progress.Store(prog)
				}
				ln.ring.pop()
				ln.done.Add(1)
			}
		}
		if progressed || p.draining.Load() {
			p.release(w)
		}
		if !progressed {
			select {
			case <-w.wake:
			case <-p.stopc:
				return
			}
		}
	}
}

// release runs the worker's pre-merge: pop pending emissions in (T, site)
// order into the out-ring while the local tournament's winner is real,
// then publish the worker's new floor and hand the coordinator the
// refreshed key. The local gate mirrors the global one — a virtual local
// winner means one of this worker's own lanes could still emit earlier, so
// later pending updates must be held back to keep the out-ring run sorted.
func (p *Pipeline) release(w *workerState) {
	draining := p.draining.Load()
	for i, ln := range w.lanes {
		w.tour.setKey(i, ln.localKey(draining))
	}
	w.tour.rebuild()
	released := false
	for {
		li, real := w.tour.min()
		if !real {
			break
		}
		ln := w.lanes[li]
		u := ln.pend.pop()
		// Order matters: the update must be visible in out-ring + pending
		// before localPend drops, or Drain/leafKey could observe a moment
		// where it is counted nowhere and conclude the worker is idle.
		w.out.push(u)
		p.pending.Add(1)
		w.localPend.Add(-1)
		released = true
		w.tour.replayWinner(ln.localKey(draining))
	}
	// Publish the progress-based floor even mid-drain: the coordinator
	// derives the drain-time +inf at read time (draining && idle), so the
	// stored floor never goes stale when the drain ends. With the pend
	// queues just emptied under drain keys, the released-emission promise
	// reduces to the lanes' progress floors.
	if draining {
		floor := mergeKey{t: maxInt64, site: w.lanes[0].site}
		for _, ln := range w.lanes {
			if k := (mergeKey{t: ln.progress.Load(), site: ln.site}); k.less(floor) {
				floor = k
			}
		}
		w.publishFloor(floor)
	} else {
		w.publishFloor(w.tour.rootKey())
	}
	w.dirty.Store(true)
	// The coordinator only needs this worker's new key if an update is
	// waiting somewhere: our own releases, or a stalled update from
	// another worker that our floor advance may unblock. With pending == 0
	// the dirty flag just accumulates until the next release's kick.
	if released || p.pending.Load() > 0 {
		p.kickCoord()
	}
}

// coordinator applies updates in global (T, site) order: on each kick it
// re-reads the merge keys of dirty workers, then pops and applies while
// the tournament winner is a real key. A virtual winner means some worker
// could still release something earlier — stall until that worker's floor
// advances (or Drain marks it finished).
func (p *Pipeline) coordinator() {
	defer p.wg.Done()
	for {
		select {
		case <-p.kick:
		case <-p.stopc:
			return
		}
		changed := false
		for i, w := range p.workers {
			if w.dirty.Swap(false) {
				p.tour.setKey(i, p.leafKey(w))
				changed = true
			}
		}
		if changed {
			p.tour.rebuild()
		}
		applied := 0
		for {
			wi, real := p.tour.min()
			if !real {
				break
			}
			w := p.workers[wi]
			u := w.out.pop()
			p.apply(u)
			applied++
			p.tour.replayWinner(p.leafKey(w))
		}
		// The hook runs between the applies and the pending decrement so
		// Drain's pending==0 barrier proves the hook has seen (and, e.g.,
		// published) everything drained — a reader after Drain can rely on
		// the snapshot covering the drained prefix.
		if p.postApply != nil {
			p.postApply(applied)
		}
		if applied > 0 {
			p.pending.Add(-int64(applied))
		}
	}
}

// Kick nudges the coordinator goroutine to run a pass even when no release
// has signalled new work — used by snapshot readers to force a PostApply
// publication opportunity while the pipeline is otherwise idle. Safe from
// any goroutine; never blocks.
func (p *Pipeline) Kick() { p.kickCoord() }

// leafKey computes a worker's current merge key: the head of its out-ring
// if an update is waiting, else +inf during a drain once the worker is
// fully idle (a drained worker cannot release again), else its published
// floor.
func (p *Pipeline) leafKey(w *workerState) mergeKey {
	if u, ok := w.out.peek(); ok {
		return mergeKey{t: u.T, site: u.Site, real: true}
	}
	if p.draining.Load() && w.idle() {
		return mergeKey{t: maxInt64, site: w.id}
	}
	return w.readFloor()
}

// Drain blocks until every enqueued block has been processed, every
// emission released, and every released update applied. If flush is true
// it first sends each lane a flush token (releasing skew-buffered rows)
// once the lanes go idle. Caller must be quiesced; afterwards Sketch-style
// reads of the coordinator state are safe.
func (p *Pipeline) Drain(flush bool) {
	waitUntil(p.lanesIdle)
	if flush {
		for _, ln := range p.lanes {
			ln.enq.Add(1)
			ln.ring.push(func(s *laneItem) { s.kind = itemFlush })
		}
		for _, w := range p.workers {
			p.wake(w)
		}
		waitUntil(p.lanesIdle)
	}
	p.draining.Store(true)
	// Every worker runs a release pass under drain keys (+inf for idle
	// lanes), emptying its pend queues into its out-ring.
	for _, w := range p.workers {
		p.wake(w)
	}
	p.markAllDirty()
	p.kickCoord()
	waitUntil(func() bool {
		for _, w := range p.workers {
			if w.localPend.Load() != 0 {
				return false
			}
		}
		return p.pending.Load() == 0
	})
	p.draining.Store(false)
	// The +inf drain keys are stale now: re-dirty every worker so the next
	// pass restores floor-based keys before new items arrive.
	p.markAllDirty()
	p.kickCoord()
}

func (p *Pipeline) lanesIdle() bool {
	for _, ln := range p.lanes {
		if !ln.idle() {
			return false
		}
	}
	return true
}

func (p *Pipeline) markAllDirty() {
	for _, w := range p.workers {
		w.dirty.Store(true)
	}
}

// MinProgress returns the smallest lane progress — a safe lower bound on
// the emission time of anything the pipeline could still produce. A lane
// that never processed an item reports minInt64.
func (p *Pipeline) MinProgress() int64 {
	min := int64(maxInt64)
	for _, ln := range p.lanes {
		if v := ln.progress.Load(); v < min {
			min = v
		}
	}
	return min
}

// Close stops the workers and coordinator. It does not drain: call Drain
// first if unapplied work matters. No enqueue may be in flight or follow.
func (p *Pipeline) Close() {
	close(p.stopc)
	p.wg.Wait()
}

// waitUntil spins briefly then backs off to short sleeps; the waits it
// serves (drain barriers) are bounded by in-flight work.
func waitUntil(cond func() bool) {
	for i := 0; !cond(); i++ {
		if i < 100 {
			runtime.Gosched()
		} else {
			time.Sleep(50 * time.Microsecond)
		}
	}
}
