package protocol

import "sync/atomic"

// outChunkCap is the number of updates per out-ring chunk. Emissions are
// rare (communication efficiency is the protocols' point), so one chunk is
// usually live and the single-slot freelist makes chunk churn alloc-free.
const outChunkCap = 64

// outChunk is one fixed-size segment of an outRing's linked list. The
// producer publishes items by storing n after writing items[n]; the
// consumer reads n before touching items, so the atomic pair orders the
// accesses. Once a chunk is full and next is linked, the producer never
// touches it again — the consumer owns it until recycling.
type outChunk struct {
	items [outChunkCap]Update
	n     atomic.Int32
	next  atomic.Pointer[outChunk]
}

// outRing is an unbounded single-producer/single-consumer queue of updates
// from one worker to the coordinator, carrying the worker's pre-merged
// (T, site)-ordered run. Unlike the bounded input rings it must not exert
// backpressure: a worker blocking here while the coordinator stalls on
// another worker's floor could deadlock the merge. Growth is a chunked
// linked list instead of a locked slice — push, peek and pop are each a
// couple of atomic ops, no mutex on any path.
type outRing struct {
	// Consumer side.
	headChunk *outChunk
	headIdx   int
	// Producer side.
	tailChunk *outChunk
	// free recycles the most recently drained chunk back to the producer;
	// a single slot suffices because the queue is nearly always one chunk
	// deep. The atomic swap hands the cleared chunk over with the needed
	// release/acquire ordering.
	free atomic.Pointer[outChunk]
}

func newOutRing() *outRing {
	c := &outChunk{}
	return &outRing{headChunk: c, tailChunk: c}
}

// push appends one update. Producer only.
func (q *outRing) push(u Update) {
	c := q.tailChunk
	n := c.n.Load()
	if int(n) == outChunkCap {
		nc := q.free.Swap(nil)
		if nc == nil {
			nc = &outChunk{}
		}
		c.next.Store(nc)
		q.tailChunk = nc
		c, n = nc, 0
	}
	c.items[n] = u
	c.n.Store(n + 1)
}

// peek returns a pointer to the head update without consuming it, or nil.
// Consumer only; the pointer is valid until the matching pop.
func (q *outRing) peek() (*Update, bool) {
	for {
		c := q.headChunk
		if q.headIdx < int(c.n.Load()) {
			return &c.items[q.headIdx], true
		}
		if q.headIdx < outChunkCap {
			return nil, false
		}
		// Chunk fully drained: advance if the producer has linked a
		// successor, recycling the spent chunk through the freelist.
		nc := c.next.Load()
		if nc == nil {
			return nil, false
		}
		q.headChunk, q.headIdx = nc, 0
		c.next.Store(nil)
		c.n.Store(0)
		q.free.Store(c)
	}
}

// pop consumes the head update (after a successful peek), clearing the
// slot so the chunk does not retain the update's value slice.
func (q *outRing) pop() Update {
	c := q.headChunk
	u := c.items[q.headIdx]
	c.items[q.headIdx] = Update{}
	q.headIdx++
	return u
}

// empty reports whether the queue holds no updates. Consumer only (it may
// advance the head chunk).
func (q *outRing) empty() bool {
	_, ok := q.peek()
	return !ok
}
