package protocol

import (
	"sync"
	"sync/atomic"

	"distwindow/internal/stream"
)

// itemKind tags a ring slot.
type itemKind uint8

const (
	itemRow itemKind = iota
	itemAdvance
	itemFlush
)

// laneItem is one slot of a lane's input ring: a block of rows, an advance
// token, or a drain-time flush token. Row slots own their buffers — filling
// a slot copies the caller's timestamps and values into ts/vbuf, so the
// caller may reuse its backing arrays and the steady state allocates
// nothing once the slot buffers have grown to the block size.
//
// Blocks amortize the per-item costs of the pipeline (ring atomics,
// wakeups, progress stores) over up to maxBlock rows: one ring op moves a
// whole per-site run instead of a single row.
type laneItem struct {
	kind itemKind
	// t is the advance timestamp (itemAdvance only).
	t int64
	// n is the number of rows in the block, d the row stride; row r lives
	// at ts[r], vbuf[r*d : (r+1)*d]. All rows of a block share d.
	n    int
	d    int
	ts   []int64
	vbuf []float64
}

// fillRows writes a block of rows into the slot, reusing its buffers.
func (s *laneItem) fillRows(rows []stream.Row) {
	s.kind = itemRow
	s.n = len(rows)
	s.d = len(rows[0].V)
	s.ts = s.ts[:0]
	s.vbuf = s.vbuf[:0]
	for _, r := range rows {
		s.ts = append(s.ts, r.T)
		s.vbuf = append(s.vbuf, r.V...)
	}
}

// row returns the r-th row of a block slot; the slice aliases the slot
// buffer and is only valid until pop.
func (s *laneItem) row(r int) (int64, []float64) {
	return s.ts[r], s.vbuf[r*s.d : (r+1)*s.d : (r+1)*s.d]
}

// spscRing is a bounded single-producer/single-consumer ring buffer with
// producer backpressure: push blocks when the ring is full until the
// consumer frees a slot. The producer is the site's feeder goroutine, the
// consumer its worker; neither side locks on the fast path.
//
// The consumer protocol is peek → process → pop: a slot's buffer may be
// handed to site-local work by reference, and only pop recycles it for the
// producer, so processing never races a producer overwrite.
type spscRing struct {
	slots []laneItem
	mask  uint64
	// head is the next slot to consume, tail the next to fill. Occupancy
	// is tail−head; both only ever increase.
	head atomic.Uint64
	tail atomic.Uint64

	// Producer parking. prodWaiting is checked by the consumer after every
	// pop; the mutex is only touched when the ring actually fills.
	mu          sync.Mutex
	notFull     *sync.Cond
	prodWaiting atomic.Bool
}

func newSPSCRing(size int) *spscRing {
	n := 1
	for n < size {
		n <<= 1
	}
	r := &spscRing{slots: make([]laneItem, n), mask: uint64(n - 1)}
	r.notFull = sync.NewCond(&r.mu)
	return r
}

// push fills the next slot via fill (which writes into the slot in place,
// reusing its buffers) and publishes it. Blocks while the ring is full.
func (r *spscRing) push(fill func(*laneItem)) {
	for {
		t := r.tail.Load()
		if t-r.head.Load() < uint64(len(r.slots)) {
			fill(&r.slots[t&r.mask])
			r.tail.Store(t + 1)
			return
		}
		// Full: park until the consumer frees a slot. The re-check under
		// the mutex pairs with the consumer's prodWaiting test after its
		// head store, so the wakeup cannot be lost.
		r.mu.Lock()
		r.prodWaiting.Store(true)
		if r.tail.Load()-r.head.Load() == uint64(len(r.slots)) {
			r.notFull.Wait()
		}
		r.prodWaiting.Store(false)
		r.mu.Unlock()
	}
}

// peek returns the next slot to process without consuming it. The slot
// stays owned by the consumer until pop.
func (r *spscRing) peek() (*laneItem, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil, false
	}
	return &r.slots[h&r.mask], true
}

// pop recycles the slot returned by the last peek and unparks a blocked
// producer.
//
// head.Add is not a single-writer hazard: the ring is single-consumer by
// contract (only the lane's worker calls peek/pop), so no other goroutine
// ever writes head and the load-modify-store cannot lose an increment. Add
// is still used over Store(Load()+1) so the invariant holds mechanically
// even if a future refactor introduced a second popper — the RMW is then
// atomic instead of silently dropping increments.
func (r *spscRing) pop() {
	r.head.Add(1)
	if r.prodWaiting.Load() {
		r.mu.Lock()
		r.notFull.Broadcast()
		r.mu.Unlock()
	}
}

// empty reports whether the ring currently holds no items.
func (r *spscRing) empty() bool { return r.head.Load() == r.tail.Load() }
