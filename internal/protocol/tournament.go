package protocol

// mergeKey orders pending coordinator updates. Real keys carry the head
// update of a lane's out-queue; virtual keys carry a lane's progress — a
// promise that the lane will never again emit at or before (t, site). The
// gate rule "an empty lane blocks a candidate unless its progress has
// passed the candidate's key" is then exactly the lexicographic minimum:
// if the tournament winner is real, every other lane is provably unable to
// emit anything smaller, so the winner is safe to apply; if the winner is
// virtual, the merge must stall until that lane advances.
type mergeKey struct {
	t    int64
	site int
	real bool
}

func (a mergeKey) less(b mergeKey) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.site != b.site {
		return a.site < b.site
	}
	// Same (t, site): the real key loses to the virtual one. A virtual key
	// (t, site) means "strictly after (t, site)", so it cannot block a real
	// update at the same position — per-site FIFO already orders those.
	return a.real && !b.real
}

// tournament is a loser-tree k-way merge over the per-lane out-queues.
// Loser trees only support O(log k) replay for the *winning* leaf (the
// winner is the one leaf guaranteed to have played every match on its
// path), so the two mutation paths differ:
//
//   - replayWinner: after the coordinator pops the winner's head, its new
//     key replays the winner's path — the classical tournament-sort step.
//   - setKey + rebuild: arbitrary lanes change keys between passes (new
//     emissions, progress advances); those are batched and the tree is
//     rebuilt once, O(k) — k is the site count, so this is trivially cheap.
//
// Only the coordinator goroutine touches it.
type tournament struct {
	k    int
	keys []mergeKey // leaf keys, one per lane
	// node[j] for j in [1, k) holds the losing leaf index of the match at
	// internal node j; winner is the overall winning leaf index.
	node   []int
	win    []int // rebuild scratch
	winner int
}

func newTournament(k int) *tournament {
	tr := &tournament{
		k:    k,
		keys: make([]mergeKey, k),
		node: make([]int, k),
		win:  make([]int, 2*k),
	}
	for i := range tr.keys {
		tr.keys[i] = mergeKey{t: minInt64, site: i}
	}
	tr.rebuild()
	return tr
}

const minInt64 = -1 << 63

// setKey records a leaf's new key without maintaining the tree; the caller
// must rebuild() before the next min()/replayWinner().
func (tr *tournament) setKey(i int, k mergeKey) { tr.keys[i] = k }

// rebuild recomputes the whole tree from the leaf keys.
func (tr *tournament) rebuild() {
	if tr.k == 1 {
		tr.winner = 0
		return
	}
	for i := 0; i < tr.k; i++ {
		tr.win[tr.k+i] = i
	}
	for j := tr.k - 1; j >= 1; j-- {
		a, b := tr.win[2*j], tr.win[2*j+1]
		if tr.keys[a].less(tr.keys[b]) {
			tr.win[j], tr.node[j] = a, b
		} else {
			tr.win[j], tr.node[j] = b, a
		}
	}
	tr.winner = tr.win[1]
}

// replayWinner sets the current winner's key and replays its matches up to
// the root. Valid only for the winner: it is the one leaf whose stored
// losers along its path are exactly the winners of the opposing subtrees.
func (tr *tournament) replayWinner(k mergeKey) {
	i := tr.winner
	tr.keys[i] = k
	if tr.k == 1 {
		return
	}
	w := i
	for j := (tr.k + i) / 2; j >= 1; j /= 2 {
		if l := tr.node[j]; tr.keys[l].less(tr.keys[w]) {
			tr.node[j], w = w, l
		}
	}
	tr.winner = w
}

// min returns the winning lane and whether its key is real (i.e. that
// lane's head update is globally safe to apply now).
func (tr *tournament) min() (lane int, real bool) {
	return tr.winner, tr.keys[tr.winner].real
}

// rootKey returns the winning leaf's key — the merge's current lower
// bound. After a release loop stopped on a virtual winner, this is the
// floor below which the merged source can no longer produce anything.
func (tr *tournament) rootKey() mergeKey { return tr.keys[tr.winner] }
