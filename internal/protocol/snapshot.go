package protocol

import "distwindow/mat"

// CoordSnapshot is a frozen, immutable copy of a tracker's coordinator
// state, taken at a single point in the global (T, site) apply order. Its
// methods may be called from any goroutine, any number of times, with no
// synchronization: the snapshot owns its storage and never mutates it.
//
// Matrices returned by Gram are shared with the snapshot and must be
// treated as read-only by callers; Sketch computes a fresh, caller-owned
// matrix on every call.
type CoordSnapshot interface {
	// Sketch returns the sketch B with BᵀB ≈ AᵀA as of the snapshot
	// point — the same value the tracker's own Sketch would have returned
	// had it been queried (quiesced) at that point. The result is freshly
	// allocated and owned by the caller.
	Sketch() *mat.Dense

	// Gram returns the coordinator's Gram estimate Ĉ when the protocol
	// maintains one (the one-way deterministic family), or (nil, false)
	// for sketch-only protocols (the sampling family). The returned
	// matrix is shared snapshot storage: read-only.
	Gram() (*mat.Dense, bool)
}

// Snapshotter is implemented by trackers whose coordinator state can be
// frozen into a CoordSnapshot. SnapshotCoord must be called only from the
// goroutine that owns coordinator applies (the sequential ingest goroutine,
// or the pipeline's coordinator goroutine via PipelineConfig.PostApply); it
// copies the small coordinator state (O(d²) for the Gram family) and never
// mutates the tracker.
type Snapshotter interface {
	SnapshotCoord() CoordSnapshot
}
