package protocol

import "distwindow/internal/stream"

// This file defines the explicit message-passing seam for the one-way
// protocol family (DA1, DA2, DA2-C, Decay). The synchronous fabric invokes
// handlers directly: a site's Observe mutates the coordinator's state
// inline. The one-way protocols keep all heavy per-row work strictly
// site-local, so the fabric can be split at the site→coordinator message
// boundary: site-local work *emits* updates, and a single applier folds
// them into the coordinator state. The sequential path applies each update
// immediately at its emission point (bit-for-bit the old behavior); the
// parallel pipeline enqueues them and applies in global (T, site) order.

// Update is one site→coordinator message of the one-way family: the
// rank-one change Scale·VVᵀ to the coordinator's Gram estimate Ĉ.
type Update struct {
	// T is the emission time — the timestamp of the row or advance the
	// emitting site was processing, not the (possibly older) timestamp the
	// direction summarizes. Per-site emission times are non-decreasing;
	// the pipeline applies updates in global (T, Site) order.
	T int64
	// Site is the emitting site.
	Site int
	// Scale and V describe the rank-one update Scale·VVᵀ. V is immutable
	// after emission (the protocols emit freshly factored directions).
	Scale float64
	V     []float64
}

// Emit receives coordinator updates emitted during site-local work, in
// emission order. The emission time and site are stamped by the caller
// that owns the processing context (sequential wrapper or pipeline lane).
type Emit func(scale float64, v []float64)

// OneWay is implemented by the one-way deterministic trackers. It exposes
// the site-local/coordinator split that Tracker's synchronous Observe
// hides:
//
//   - ObserveSite and AdvanceSite run only site-local state transitions
//     (histogram upkeep, FD shrink, spectral tests) and emit the resulting
//     coordinator updates. Calls for distinct sites may run concurrently;
//     calls for one site must be serialized, with per-site non-decreasing
//     timestamps.
//   - Apply folds one emitted update into the coordinator state. All
//     Apply calls must come from a single goroutine, in non-decreasing
//     (T, Site) order.
//   - AdvanceCoord moves the coordinator's clock without data (only the
//     decay tracker has one; the window protocols no-op).
//
// Observe(site, r) must be equivalent to ObserveSite(site, r, apply-inline)
// so the sequential path and a (T, site)-ordered parallel apply produce
// bit-identical coordinator state.
type OneWay interface {
	Tracker
	ObserveSite(site int, r stream.Row, emit Emit)
	AdvanceSite(site int, now int64, emit Emit)
	Apply(u Update)
	AdvanceCoord(now int64)
}
