package protocol

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"distwindow/internal/stream"
)

func TestTournamentOrder(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 5, 8, 13} {
		tr := newTournament(k)
		// All virtual at minInt64: winner must be virtual.
		if _, real := tr.min(); real {
			t.Fatalf("k=%d: fresh tournament winner is real", k)
		}
		// Give every lane a real key; winner must be the lexicographic min.
		rng := rand.New(rand.NewSource(int64(k)))
		keys := make([]mergeKey, k)
		for i := range keys {
			keys[i] = mergeKey{t: int64(rng.Intn(5)), site: i, real: true}
			tr.setKey(i, keys[i])
		}
		tr.rebuild()
		w, real := tr.min()
		if !real {
			t.Fatalf("k=%d: all-real tournament winner is virtual", k)
		}
		for i, key := range keys {
			if key.less(keys[w]) {
				t.Fatalf("k=%d: winner %d (%+v) not minimal, lane %d has %+v", k, w, keys[w], i, key)
			}
		}
		// One lane goes virtual below the winner: winner must become virtual.
		tr.setKey((w+1)%k, mergeKey{t: keys[w].t - 1, site: (w + 1) % k})
		tr.rebuild()
		if w2, real := tr.min(); k > 1 && (real || w2 != (w+1)%k) {
			t.Fatalf("k=%d: expected virtual winner %d, got %d real=%v", k, (w+1)%k, w2, real)
		}
	}
}

// TestTournamentReplay drives the winner-replay path against a brute-force
// minimum over many random pop sequences.
func TestTournamentReplay(t *testing.T) {
	for _, k := range []int{2, 3, 5, 8, 11} {
		rng := rand.New(rand.NewSource(int64(100 + k)))
		tr := newTournament(k)
		for i := 0; i < k; i++ {
			tr.setKey(i, mergeKey{t: int64(rng.Intn(50)), site: i, real: true})
		}
		tr.rebuild()
		for step := 0; step < 200; step++ {
			w, _ := tr.min()
			for i := 0; i < k; i++ {
				if tr.keys[i].less(tr.keys[w]) {
					t.Fatalf("k=%d step %d: winner %d (%+v) beaten by lane %d (%+v)",
						k, step, w, tr.keys[w], i, tr.keys[i])
				}
			}
			// Pop: the winner's next key is ≥ its old one (FIFO per lane).
			next := tr.keys[w]
			next.t += int64(rng.Intn(10))
			next.real = rng.Intn(4) > 0
			tr.replayWinner(next)
		}
	}
}

func TestMergeKeyGate(t *testing.T) {
	// A virtual key (P, i) must block exactly the candidates (T, j) with
	// (T, j) >= (P, i) lexicographically.
	cases := []struct {
		cand    mergeKey
		virt    mergeKey
		applies bool
	}{
		{mergeKey{t: 5, site: 2, real: true}, mergeKey{t: 6, site: 0}, true},
		{mergeKey{t: 5, site: 2, real: true}, mergeKey{t: 5, site: 3}, true},
		{mergeKey{t: 5, site: 2, real: true}, mergeKey{t: 5, site: 1}, false},
		{mergeKey{t: 5, site: 2, real: true}, mergeKey{t: 4, site: 7}, false},
		// Real beats virtual at the same (t, site): per-site FIFO covers it.
		{mergeKey{t: 5, site: 2, real: true}, mergeKey{t: 5, site: 2}, true},
	}
	for i, c := range cases {
		if got := c.cand.less(c.virt); got != c.applies {
			t.Errorf("case %d: cand %+v vs virtual %+v: applies=%v want %v", i, c.cand, c.virt, got, c.applies)
		}
	}
}

func TestSPSCRingBackpressure(t *testing.T) {
	r := newSPSCRing(4)
	const n = 10_000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			r.push(func(s *laneItem) { s.t = int64(i) })
		}
	}()
	for i := 0; i < n; i++ {
		var it *laneItem
		for {
			var ok bool
			if it, ok = r.peek(); ok {
				break
			}
			runtime.Gosched()
		}
		if it.t != int64(i) {
			t.Fatalf("slot %d: got t=%d", i, it.t)
		}
		r.pop()
	}
	<-done
	if !r.empty() {
		t.Fatal("ring not empty after drain")
	}
}

// TestSPSCRingSlotOwnership pins the peek → process → pop contract under
// the race detector: the consumer mutates a peeked slot's buffers in place
// (as the worker's handlers do) while the producer refills recycled slots.
// Any overlap between producer fill and consumer processing is a data race
// the -race run would flag.
func TestSPSCRingSlotOwnership(t *testing.T) {
	r := newSPSCRing(4)
	const n = 20_000
	rows := []stream.Row{{T: 0, V: []float64{0, 0}}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			rows[0].T = int64(i)
			rows[0].V[0], rows[0].V[1] = float64(i), float64(2*i)
			r.push(func(s *laneItem) { s.fillRows(rows) })
		}
	}()
	for i := 0; i < n; i++ {
		var it *laneItem
		for {
			var ok bool
			if it, ok = r.peek(); ok {
				break
			}
			runtime.Gosched()
		}
		ts, v := it.row(0)
		if ts != int64(i) || v[0] != float64(i) || v[1] != float64(2*i) {
			t.Fatalf("slot %d: got t=%d v=%v", i, ts, v)
		}
		// Process in place: the slot is ours until pop.
		v[0], v[1] = v[1], v[0]
		it.ts[0] = -ts
		r.pop()
	}
	<-done
}

func TestOutRingOrderAndRecycle(t *testing.T) {
	q := newOutRing()
	// Several chunk generations, drained concurrently: order must be FIFO
	// and the freelist handoff race-clean.
	const n = 10 * outChunkCap
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			q.push(Update{T: int64(i), Site: i % 7, V: []float64{float64(i)}})
		}
	}()
	for i := 0; i < n; i++ {
		var u *Update
		for {
			var ok bool
			if u, ok = q.peek(); ok {
				break
			}
			runtime.Gosched()
		}
		if u.T != int64(i) || u.Site != i%7 || u.V[0] != float64(i) {
			t.Fatalf("item %d: got %+v", i, *u)
		}
		if got := q.pop(); got.T != int64(i) {
			t.Fatalf("pop %d: got T=%d", i, got.T)
		}
	}
	<-done
	if !q.empty() {
		t.Fatal("out-ring not empty after drain")
	}
}

// orderHandler emits one update per row at the row's timestamp, so the
// coordinator's apply order directly witnesses the merge order.
type orderHandler struct{}

func (orderHandler) HandleRow(site int, tt int64, v []float64, emit EmitAt) int64 {
	emit(tt, float64(site), append([]float64(nil), v...))
	return tt
}
func (orderHandler) HandleAdvance(site int, now int64, emit EmitAt) int64 { return now }
func (orderHandler) HandleFlush(site int, emit EmitAt) int64              { return minInt64 }

func TestPipelineGlobalOrder(t *testing.T) {
	const sites, rows = 7, 5_000
	var mu sync.Mutex
	var got []Update
	p := NewPipeline(sites, orderHandler{}, func(u Update) {
		mu.Lock()
		got = append(got, u)
		mu.Unlock()
	}, PipelineConfig{Workers: 4, RingSize: 16})
	defer p.Close()

	// One feeder per site, timestamps interleaved with deliberate ties
	// across sites (t = i/2 repeats) to stress the site tie-break.
	var wg sync.WaitGroup
	for s := 0; s < sites; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < rows; i++ {
				p.EnqueueRow(s, int64(i/2), []float64{float64(i)})
			}
		}(s)
	}
	wg.Wait()
	p.Drain(false)

	if len(got) != sites*rows {
		t.Fatalf("applied %d updates, want %d", len(got), sites*rows)
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if b.T < a.T || (b.T == a.T && b.Site < a.Site) {
			t.Fatalf("apply %d out of order: (%d,%d) then (%d,%d)", i, a.T, a.Site, b.T, b.Site)
		}
	}
	// Per-site FIFO: scale encodes the site, V[0] the per-site sequence.
	next := make([]float64, sites)
	for _, u := range got {
		want := next[u.Site]
		// Two rows share each timestamp per site.
		if u.V[0] != want {
			t.Fatalf("site %d: got seq %v want %v", u.Site, u.V[0], want)
		}
		next[u.Site]++
	}
}

// TestPipelineEnqueueRowsOrder drives the block path: per-site runs larger
// than MaxBlock (forcing splits) with cross-site timestamp ties, verifying
// the global merge order and per-site FIFO survive batching.
func TestPipelineEnqueueRowsOrder(t *testing.T) {
	const sites, rows, batch = 5, 4_096, 100 // batch > MaxBlock: splits
	var mu sync.Mutex
	var got []Update
	p := NewPipeline(sites, orderHandler{}, func(u Update) {
		mu.Lock()
		got = append(got, u)
		mu.Unlock()
	}, PipelineConfig{Workers: 3, RingSize: 8, MaxBlock: 32})
	defer p.Close()

	var wg sync.WaitGroup
	for s := 0; s < sites; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			buf := make([]stream.Row, 0, batch)
			for i := 0; i < rows; {
				buf = buf[:0]
				for len(buf) < batch && i < rows {
					// Rows copy into the ring per block, but blocks of one
					// EnqueueRows call are pushed one by one, so each row
					// needs its own V until the call returns.
					buf = append(buf, stream.Row{T: int64(i / 2), V: []float64{float64(i)}})
					i++
				}
				p.EnqueueRows(s, buf)
			}
		}(s)
	}
	wg.Wait()
	p.Drain(false)

	if len(got) != sites*rows {
		t.Fatalf("applied %d updates, want %d", len(got), sites*rows)
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if b.T < a.T || (b.T == a.T && b.Site < a.Site) {
			t.Fatalf("apply %d out of order: (%d,%d) then (%d,%d)", i, a.T, a.Site, b.T, b.Site)
		}
	}
	next := make([]float64, sites)
	for _, u := range got {
		if u.V[0] != next[u.Site] {
			t.Fatalf("site %d: got seq %v want %v", u.Site, u.V[0], next[u.Site])
		}
		next[u.Site]++
	}
}

// TestPipelineEnqueueRowsOverfill pins the parked-worker wakeup: a single
// EnqueueRows call carrying more blocks than the ring holds must not
// deadlock. With a per-push wakeup the worker starts draining as soon as
// the first block lands; with only an end-of-call wakeup the push on a
// full ring waits forever for a pop that never comes.
func TestPipelineEnqueueRowsOverfill(t *testing.T) {
	const ringSize, maxBlock = 4, 2
	// 40 blocks for a 4-slot ring: the call must overfill many times over.
	const rows = 40 * maxBlock
	var mu sync.Mutex
	var got []Update
	p := NewPipeline(1, orderHandler{}, func(u Update) {
		mu.Lock()
		got = append(got, u)
		mu.Unlock()
	}, PipelineConfig{Workers: 1, RingSize: ringSize, MaxBlock: maxBlock})
	defer p.Close()

	buf := make([]stream.Row, rows)
	for i := range buf {
		buf[i] = stream.Row{T: int64(i), V: []float64{float64(i)}}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.EnqueueRows(0, buf)
		p.Drain(false)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("EnqueueRows deadlocked: parked worker never woken while ring overfilled")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != rows {
		t.Fatalf("applied %d updates, want %d", len(got), rows)
	}
	for i, u := range got {
		if u.T != int64(i) {
			t.Fatalf("update %d: got T=%d, want %d", i, u.T, i)
		}
	}
}

func TestPipelineDrainReusable(t *testing.T) {
	// Drain must leave the pipeline usable: keys restored after the +inf
	// drain pass, progress preserved, later rows still merge correctly.
	const sites = 3
	var mu sync.Mutex
	var got []Update
	p := NewPipeline(sites, orderHandler{}, func(u Update) {
		mu.Lock()
		got = append(got, u)
		mu.Unlock()
	}, PipelineConfig{Workers: 2, RingSize: 8})
	defer p.Close()

	for round := 0; round < 5; round++ {
		base := int64(round * 100)
		for s := 0; s < sites; s++ {
			for i := 0; i < 20; i++ {
				p.EnqueueRow(s, base+int64(i), []float64{1})
			}
		}
		p.Drain(true)
	}
	if len(got) != 5*sites*20 {
		t.Fatalf("applied %d, want %d", len(got), 5*sites*20)
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if b.T < a.T || (b.T == a.T && b.Site < a.Site) {
			t.Fatalf("apply %d out of order after drains: (%d,%d) then (%d,%d)", i, a.T, a.Site, b.T, b.Site)
		}
	}
	if mp := p.MinProgress(); mp != 419 {
		t.Fatalf("MinProgress = %d, want 419", mp)
	}
}

func TestPipelineAdvanceTokens(t *testing.T) {
	const sites = 4
	var mu sync.Mutex
	adv := make(map[int]int64)
	h := advHandler{adv: adv, mu: &mu}
	p := NewPipeline(sites, h, func(Update) {}, PipelineConfig{Workers: 2})
	defer p.Close()
	p.Advance(42)
	p.Drain(false)
	mu.Lock()
	defer mu.Unlock()
	for s := 0; s < sites; s++ {
		if adv[s] != 42 {
			t.Fatalf("site %d advance = %d, want 42", s, adv[s])
		}
	}
	if mp := p.MinProgress(); mp != 42 {
		t.Fatalf("MinProgress = %d, want 42", mp)
	}
}

type advHandler struct {
	adv map[int]int64
	mu  *sync.Mutex
}

func (h advHandler) HandleRow(site int, t int64, v []float64, emit EmitAt) int64 { return t }
func (h advHandler) HandleAdvance(site int, now int64, emit EmitAt) int64 {
	h.mu.Lock()
	h.adv[site] = now
	h.mu.Unlock()
	return now
}
func (h advHandler) HandleFlush(site int, emit EmitAt) int64 { return minInt64 }
