// Package protocol provides the distributed-monitoring fabric the tracking
// protocols run on: a simulated two-way communication channel between m
// sites and one coordinator with word-level cost accounting, plus the
// common Tracker interface every protocol implements and the metrics the
// paper's experiments report.
//
// The simulation is single-process and synchronous (the standard
// methodology in the distributed monitoring literature, and the one the
// paper uses): protocol logic invokes each other's handlers directly and
// reports every transmission to the Network so that communication cost is
// measured exactly as the paper counts it — one word per real number or
// integer transmitted.
package protocol

import (
	"distwindow/internal/obs"
	"distwindow/internal/stream"
	"distwindow/internal/trace"
	"distwindow/mat"
)

// Tracker is a complete distributed sliding-window tracking protocol:
// sites plus coordinator wired to a Network.
type Tracker interface {
	// Observe delivers a row to the given site. Timestamps must be
	// non-decreasing across successive calls.
	Observe(site int, r stream.Row)
	// AdvanceTime moves the global clock forward without new data so that
	// expirations and the resulting renegotiations happen.
	AdvanceTime(now int64)
	// Sketch returns the coordinator's current covariance sketch B of the
	// union window matrix A_w.
	Sketch() *mat.Dense
	// Stats returns the communication and space counters accumulated so
	// far.
	Stats() Stats
	// Name identifies the protocol in experiment output.
	Name() string
}

// Stats aggregates the cost metrics of a protocol run, in words (one word
// per float64/int64 transmitted, the paper's unit).
type Stats struct {
	// WordsUp counts words sent from sites to the coordinator.
	WordsUp int64
	// WordsDown counts words sent from the coordinator to sites
	// (broadcasts count m× their payload).
	WordsDown int64
	// MsgsUp and MsgsDown count discrete messages in each direction.
	MsgsUp, MsgsDown int64
	// Broadcasts counts coordinator broadcasts (threshold updates).
	Broadcasts int64
	// MaxSiteWords is the maximum words of state held by any single site
	// at any sampled instant.
	MaxSiteWords int64
	// CoordWords is the maximum words of state held by the coordinator at
	// any sampled instant.
	CoordWords int64
}

// TotalWords returns all communication in both directions.
func (s Stats) TotalWords() int64 { return s.WordsUp + s.WordsDown }

// SiteStats is the per-site slice of the communication counters: the words
// and messages a single site exchanged with the coordinator.
type SiteStats struct {
	WordsUp, MsgsUp     int64
	WordsDown, MsgsDown int64
}

// siteCounters is the live (atomic) form of SiteStats.
type siteCounters struct {
	wordsUp, msgsUp     obs.Counter
	wordsDown, msgsDown obs.Counter
}

// Network accounts for all transmissions between sites and coordinator.
// Protocols must report every logical message they exchange.
//
// Counters are atomic so a metrics endpoint on another goroutine can
// snapshot a live run; Stats() is derived from the very same counters the
// observability layer exports, so the paper's word accounting and the
// /metrics figures can never disagree. An optional obs.Sink receives one
// typed event per transmission (EvMsgSent for site→coordinator, EvMsgReceived
// for coordinator→site, EvThresholdRenegotiation for broadcasts); the
// default nil sink costs one branch per call.
type Network struct {
	m int

	wordsUp, wordsDown obs.Counter
	msgsUp, msgsDown   obs.Counter
	broadcasts         obs.Counter
	maxSiteWords       obs.MaxGauge
	coordWords         obs.MaxGauge
	perSite            []siteCounters

	sink   obs.Sink
	tracer *trace.Tracer
}

// NewNetwork returns a fabric connecting m sites to one coordinator.
func NewNetwork(m int) *Network {
	if m < 1 {
		panic("protocol: need at least one site")
	}
	return &Network{m: m, perSite: make([]siteCounters, m)}
}

// Sites returns the number of sites m.
func (n *Network) Sites() int { return n.m }

// SetSink installs an event sink (nil disables events). Install it before
// traffic flows; the field itself is not synchronized.
func (n *Network) SetSink(s obs.Sink) { n.sink = s }

// SetTracer installs a causal tracer: each transmission is recorded as a
// send/recv instant under the tracer's open ingest span (the simulated
// fabric is synchronous, so every message fires inside the Observe that
// caused it). Install before traffic flows; nil disables.
func (n *Network) SetTracer(tr *trace.Tracer) { n.tracer = tr }

// Up records a site→coordinator message of the given word count from an
// unidentified site (kept for callers that have no site in scope; prefer
// UpFrom so the per-site breakdown stays complete).
func (n *Network) Up(words int64) { n.UpFrom(-1, words) }

// UpFrom records a site→coordinator message of the given word count,
// attributed to the sending site.
func (n *Network) UpFrom(site int, words int64) {
	n.wordsUp.Add(words)
	n.msgsUp.Inc()
	if site >= 0 && site < len(n.perSite) {
		n.perSite[site].wordsUp.Add(words)
		n.perSite[site].msgsUp.Inc()
	}
	if n.sink != nil {
		n.sink.OnEvent(obs.Event{Kind: obs.EvMsgSent, Site: site, Words: words})
	}
	n.tracer.Instant(trace.OpSend, site, 0, words)
}

// Down records a coordinator→site message of the given word count to an
// unidentified site (prefer DownTo).
func (n *Network) Down(words int64) { n.DownTo(-1, words) }

// DownTo records a coordinator→site message of the given word count,
// attributed to the receiving site.
func (n *Network) DownTo(site int, words int64) {
	n.wordsDown.Add(words)
	n.msgsDown.Inc()
	if site >= 0 && site < len(n.perSite) {
		n.perSite[site].wordsDown.Add(words)
		n.perSite[site].msgsDown.Inc()
	}
	if n.sink != nil {
		n.sink.OnEvent(obs.Event{Kind: obs.EvMsgReceived, Site: site, Words: words})
	}
	n.tracer.Instant(trace.OpRecv, site, 0, words)
}

// Broadcast records a coordinator→all-sites broadcast: the payload is
// charged once per site. Broadcasts carry threshold renegotiations, so the
// sink sees one EvThresholdRenegotiation per call (not one per site).
func (n *Network) Broadcast(words int64) {
	n.wordsDown.Add(words * int64(n.m))
	n.msgsDown.Add(int64(n.m))
	n.broadcasts.Inc()
	for i := range n.perSite {
		n.perSite[i].wordsDown.Add(words)
		n.perSite[i].msgsDown.Inc()
	}
	if n.sink != nil {
		n.sink.OnEvent(obs.Event{Kind: obs.EvThresholdRenegotiation, Site: -1, Words: words})
	}
	n.tracer.Instant(trace.OpRecv, -1, 0, words*int64(n.m))
}

// SampleSiteSpace records the instantaneous space usage (words) of one
// site, keeping the running maximum.
func (n *Network) SampleSiteSpace(words int64) { n.maxSiteWords.Observe(words) }

// SampleCoordSpace records the coordinator's instantaneous space usage.
func (n *Network) SampleCoordSpace(words int64) { n.coordWords.Observe(words) }

// Stats returns a copy of the accumulated counters. The values are read
// from the same atomics the metrics layer exports.
func (n *Network) Stats() Stats {
	return Stats{
		WordsUp:      n.wordsUp.Load(),
		WordsDown:    n.wordsDown.Load(),
		MsgsUp:       n.msgsUp.Load(),
		MsgsDown:     n.msgsDown.Load(),
		Broadcasts:   n.broadcasts.Load(),
		MaxSiteWords: n.maxSiteWords.Load(),
		CoordWords:   n.coordWords.Load(),
	}
}

// PerSiteStats returns the per-site communication breakdown, indexed by
// site.
func (n *Network) PerSiteStats() []SiteStats {
	out := make([]SiteStats, len(n.perSite))
	for i := range n.perSite {
		out[i] = SiteStats{
			WordsUp:   n.perSite[i].wordsUp.Load(),
			MsgsUp:    n.perSite[i].msgsUp.Load(),
			WordsDown: n.perSite[i].wordsDown.Load(),
			MsgsDown:  n.perSite[i].msgsDown.Load(),
		}
	}
	return out
}

// Reset zeroes all counters (space maxima and the per-site breakdown
// included).
func (n *Network) Reset() {
	n.wordsUp.Reset()
	n.wordsDown.Reset()
	n.msgsUp.Reset()
	n.msgsDown.Reset()
	n.broadcasts.Reset()
	n.maxSiteWords.Reset()
	n.coordWords.Reset()
	for i := range n.perSite {
		n.perSite[i].wordsUp.Reset()
		n.perSite[i].msgsUp.Reset()
		n.perSite[i].wordsDown.Reset()
		n.perSite[i].msgsDown.Reset()
	}
}

// RowWords is the cost of shipping one d-dimensional row with its
// timestamp and priority/flag, matching the paper's "each real number
// takes 1 word" accounting.
func RowWords(d int) int64 { return int64(d) + 2 }

// ScalarWords is the cost of one scalar update (value + timestamp).
const ScalarWords = 2

// DirectionWords is the cost of shipping one eigen-direction (λ, v) or one
// signed sketch row (row + flag + timestamp).
func DirectionWords(d int) int64 { return int64(d) + 2 }
