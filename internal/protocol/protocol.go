// Package protocol provides the distributed-monitoring fabric the tracking
// protocols run on: a simulated two-way communication channel between m
// sites and one coordinator with word-level cost accounting, plus the
// common Tracker interface every protocol implements and the metrics the
// paper's experiments report.
//
// The simulation is single-process and synchronous (the standard
// methodology in the distributed monitoring literature, and the one the
// paper uses): protocol logic invokes each other's handlers directly and
// reports every transmission to the Network so that communication cost is
// measured exactly as the paper counts it — one word per real number or
// integer transmitted.
package protocol

import (
	"distwindow/internal/stream"
	"distwindow/mat"
)

// Tracker is a complete distributed sliding-window tracking protocol:
// sites plus coordinator wired to a Network.
type Tracker interface {
	// Observe delivers a row to the given site. Timestamps must be
	// non-decreasing across successive calls.
	Observe(site int, r stream.Row)
	// AdvanceTime moves the global clock forward without new data so that
	// expirations and the resulting renegotiations happen.
	AdvanceTime(now int64)
	// Sketch returns the coordinator's current covariance sketch B of the
	// union window matrix A_w.
	Sketch() *mat.Dense
	// Stats returns the communication and space counters accumulated so
	// far.
	Stats() Stats
	// Name identifies the protocol in experiment output.
	Name() string
}

// Stats aggregates the cost metrics of a protocol run, in words (one word
// per float64/int64 transmitted, the paper's unit).
type Stats struct {
	// WordsUp counts words sent from sites to the coordinator.
	WordsUp int64
	// WordsDown counts words sent from the coordinator to sites
	// (broadcasts count m× their payload).
	WordsDown int64
	// MsgsUp and MsgsDown count discrete messages in each direction.
	MsgsUp, MsgsDown int64
	// Broadcasts counts coordinator broadcasts (threshold updates).
	Broadcasts int64
	// MaxSiteWords is the maximum words of state held by any single site
	// at any sampled instant.
	MaxSiteWords int64
	// CoordWords is the maximum words of state held by the coordinator at
	// any sampled instant.
	CoordWords int64
}

// TotalWords returns all communication in both directions.
func (s Stats) TotalWords() int64 { return s.WordsUp + s.WordsDown }

// Network accounts for all transmissions between sites and coordinator.
// Protocols must report every logical message they exchange.
type Network struct {
	m     int
	stats Stats
}

// NewNetwork returns a fabric connecting m sites to one coordinator.
func NewNetwork(m int) *Network {
	if m < 1 {
		panic("protocol: need at least one site")
	}
	return &Network{m: m}
}

// Sites returns the number of sites m.
func (n *Network) Sites() int { return n.m }

// Up records a site→coordinator message of the given word count.
func (n *Network) Up(words int64) {
	n.stats.WordsUp += words
	n.stats.MsgsUp++
}

// Down records a coordinator→site message of the given word count.
func (n *Network) Down(words int64) {
	n.stats.WordsDown += words
	n.stats.MsgsDown++
}

// Broadcast records a coordinator→all-sites broadcast: the payload is
// charged once per site.
func (n *Network) Broadcast(words int64) {
	n.stats.WordsDown += words * int64(n.m)
	n.stats.MsgsDown += int64(n.m)
	n.stats.Broadcasts++
}

// SampleSiteSpace records the instantaneous space usage (words) of one
// site, keeping the running maximum.
func (n *Network) SampleSiteSpace(words int64) {
	if words > n.stats.MaxSiteWords {
		n.stats.MaxSiteWords = words
	}
}

// SampleCoordSpace records the coordinator's instantaneous space usage.
func (n *Network) SampleCoordSpace(words int64) {
	if words > n.stats.CoordWords {
		n.stats.CoordWords = words
	}
}

// Stats returns a copy of the accumulated counters.
func (n *Network) Stats() Stats { return n.stats }

// Reset zeroes all counters (space maxima included).
func (n *Network) Reset() { n.stats = Stats{} }

// RowWords is the cost of shipping one d-dimensional row with its
// timestamp and priority/flag, matching the paper's "each real number
// takes 1 word" accounting.
func RowWords(d int) int64 { return int64(d) + 2 }

// ScalarWords is the cost of one scalar update (value + timestamp).
const ScalarWords = 2

// DirectionWords is the cost of shipping one eigen-direction (λ, v) or one
// signed sketch row (row + flag + timestamp).
func DirectionWords(d int) int64 { return int64(d) + 2 }
