package protocol

import "testing"

func TestNetworkUpDown(t *testing.T) {
	n := NewNetwork(4)
	n.Up(10)
	n.Up(5)
	n.Down(3)
	s := n.Stats()
	if s.WordsUp != 15 || s.MsgsUp != 2 {
		t.Fatalf("up: %+v", s)
	}
	if s.WordsDown != 3 || s.MsgsDown != 1 {
		t.Fatalf("down: %+v", s)
	}
	if s.TotalWords() != 18 {
		t.Fatalf("TotalWords = %d, want 18", s.TotalWords())
	}
}

func TestNetworkBroadcastChargesPerSite(t *testing.T) {
	n := NewNetwork(5)
	n.Broadcast(2)
	s := n.Stats()
	if s.WordsDown != 10 {
		t.Fatalf("broadcast words = %d, want 10 (2 words × 5 sites)", s.WordsDown)
	}
	if s.Broadcasts != 1 {
		t.Fatalf("Broadcasts = %d, want 1", s.Broadcasts)
	}
	if s.MsgsDown != 5 {
		t.Fatalf("MsgsDown = %d, want 5", s.MsgsDown)
	}
}

func TestNetworkSpaceSampling(t *testing.T) {
	n := NewNetwork(2)
	n.SampleSiteSpace(100)
	n.SampleSiteSpace(50) // smaller samples must not lower the max
	n.SampleCoordSpace(7)
	n.SampleCoordSpace(9)
	s := n.Stats()
	if s.MaxSiteWords != 100 {
		t.Fatalf("MaxSiteWords = %d, want 100", s.MaxSiteWords)
	}
	if s.CoordWords != 9 {
		t.Fatalf("CoordWords = %d, want 9", s.CoordWords)
	}
}

func TestNetworkReset(t *testing.T) {
	n := NewNetwork(2)
	n.Up(5)
	n.Broadcast(1)
	n.SampleSiteSpace(10)
	n.Reset()
	if n.Stats() != (Stats{}) {
		t.Fatalf("Reset left counters: %+v", n.Stats())
	}
}

func TestNewNetworkValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNetwork(0)
}

func TestWordCosts(t *testing.T) {
	if RowWords(43) != 45 {
		t.Fatalf("RowWords(43) = %d, want 45", RowWords(43))
	}
	if DirectionWords(10) != 12 {
		t.Fatalf("DirectionWords(10) = %d, want 12", DirectionWords(10))
	}
	if ScalarWords != 2 {
		t.Fatalf("ScalarWords = %d, want 2", ScalarWords)
	}
}
