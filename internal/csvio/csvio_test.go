package csvio

import (
	"bytes"
	"strings"
	"testing"

	"distwindow/internal/stream"
)

func TestReadBasic(t *testing.T) {
	in := "1,0,1.5,2.5\n2,1,3,4\n"
	var got []Event
	n, d, err := Read(strings.NewReader(in), func(e Event) error {
		got = append(got, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || d != 2 {
		t.Fatalf("n=%d d=%d", n, d)
	}
	if got[0].Row.T != 1 || got[0].Site != 0 || got[0].Row.V[1] != 2.5 {
		t.Fatalf("event 0 = %+v", got[0])
	}
	if got[1].Site != 1 || got[1].Row.V[0] != 3 {
		t.Fatalf("event 1 = %+v", got[1])
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1,0,1\n# mid\n2,0,2\n"
	n, d, err := Read(strings.NewReader(in), func(Event) error { return nil })
	if err != nil || n != 2 || d != 1 {
		t.Fatalf("n=%d d=%d err=%v", n, d, err)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields":       "1,0\n",
		"bad timestamp":        "x,0,1\n",
		"bad site":             "1,y,1\n",
		"negative site":        "1,-2,1\n",
		"bad value":            "1,0,zzz\n",
		"dimension mismatch":   "1,0,1,2\n2,0,1\n",
		"decreasing timestamp": "5,0,1\n3,0,1\n",
	}
	for name, in := range cases {
		if _, _, err := Read(strings.NewReader(in), func(Event) error { return nil }); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestReadCallbackError(t *testing.T) {
	in := "1,0,1\n2,0,2\n"
	calls := 0
	_, _, err := Read(strings.NewReader(in), func(Event) error {
		calls++
		if calls == 1 {
			return strings.NewReader("").UnreadByte() // any non-nil error
		}
		return nil
	})
	if err == nil {
		t.Fatal("callback error should propagate")
	}
	if calls != 1 {
		t.Fatalf("callback called %d times after error", calls)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	evs := []Event{
		{Site: 0, Row: stream.Row{T: 1, V: []float64{1.25, -3}}},
		{Site: 3, Row: stream.Row{T: 7, V: []float64{0, 42.5}}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var got []Event
	n, d, err := Read(&buf, func(e Event) error {
		got = append(got, e)
		return nil
	})
	if err != nil || n != 2 || d != 2 {
		t.Fatalf("n=%d d=%d err=%v", n, d, err)
	}
	for i := range evs {
		if got[i].Site != evs[i].Site || got[i].Row.T != evs[i].Row.T {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, got[i], evs[i])
		}
		for j := range evs[i].Row.V {
			if got[i].Row.V[j] != evs[i].Row.V[j] {
				t.Fatalf("value mismatch at %d/%d", i, j)
			}
		}
	}
}

func TestReadWhitespaceTolerant(t *testing.T) {
	in := " 1 , 0 , 1.5 \n"
	n, d, err := Read(strings.NewReader(in), func(e Event) error {
		if e.Row.V[0] != 1.5 {
			t.Fatalf("value = %v", e.Row.V[0])
		}
		return nil
	})
	if err != nil || n != 1 || d != 1 {
		t.Fatalf("n=%d d=%d err=%v", n, d, err)
	}
}
