// Package csvio parses and writes the event CSV format shared by the
// command-line tools: one event per line,
//
//	timestamp,site,v1,v2,...,vd
//
// with int64 timestamp and site and float64 features. It streams — events
// are delivered through a callback so arbitrarily large files never live
// in memory at once.
package csvio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"distwindow/internal/stream"
)

// Event mirrors stream.Event for the wire format.
type Event = stream.Event

// Read parses events from r, invoking fn for each. The row dimension is
// inferred from the first line and enforced afterwards. Blank lines and
// lines starting with '#' are skipped. Timestamps must be non-decreasing.
func Read(r io.Reader, fn func(Event) error) (n int, d int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	prevT := int64(-1 << 62)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		ev, dim, perr := parseLine(text)
		if perr != nil {
			return n, d, fmt.Errorf("csvio: line %d: %w", line, perr)
		}
		if d == 0 {
			d = dim
		} else if dim != d {
			return n, d, fmt.Errorf("csvio: line %d: dimension %d, want %d", line, dim, d)
		}
		if ev.Row.T < prevT {
			return n, d, fmt.Errorf("csvio: line %d: timestamp %d decreases (prev %d)", line, ev.Row.T, prevT)
		}
		prevT = ev.Row.T
		if err := fn(ev); err != nil {
			return n, d, err
		}
		n++
	}
	return n, d, sc.Err()
}

func parseLine(text string) (Event, int, error) {
	parts := strings.Split(text, ",")
	if len(parts) < 3 {
		return Event{}, 0, fmt.Errorf("need timestamp,site,v1,...: %q", text)
	}
	t, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return Event{}, 0, fmt.Errorf("bad timestamp: %w", err)
	}
	site, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return Event{}, 0, fmt.Errorf("bad site: %w", err)
	}
	if site < 0 {
		return Event{}, 0, fmt.Errorf("negative site %d", site)
	}
	v := make([]float64, len(parts)-2)
	for i, p := range parts[2:] {
		x, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return Event{}, 0, fmt.Errorf("bad value %q: %w", p, err)
		}
		v[i] = x
	}
	return Event{Site: site, Row: stream.Row{T: t, V: v}}, len(v), nil
}

// Write streams events to w in the same format.
func Write(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range evs {
		if _, err := fmt.Fprintf(bw, "%d,%d", e.Row.T, e.Site); err != nil {
			return err
		}
		for _, v := range e.Row.V {
			if _, err := bw.WriteString("," + strconv.FormatFloat(v, 'g', 8, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
