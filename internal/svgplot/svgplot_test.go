package svgplot

import (
	"strconv"
	"strings"
	"testing"
)

func samplePlot() Plot {
	return Plot{
		Title:  "test figure",
		XLabel: "epsilon",
		YLabel: "error",
		Series: []Series{
			{Name: "PWOR", Points: []Point{{0.05, 0.01}, {0.1, 0.04}, {0.2, 0.09}}},
			{Name: "DA1", Points: []Point{{0.05, 0.03}, {0.1, 0.07}, {0.2, 0.12}}},
		},
	}
}

func TestRenderContainsStructure(t *testing.T) {
	svg := samplePlot().Render()
	for _, want := range []string{
		"<svg", "</svg>", "test figure", "epsilon", "error",
		"PWOR", "DA1", "<polyline", "<circle",
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Fatalf("want 2 polylines, got %d", strings.Count(svg, "<polyline"))
	}
}

func TestRenderLogAxesDropNonPositive(t *testing.T) {
	p := Plot{
		LogY: true,
		Series: []Series{
			{Name: "s", Points: []Point{{1, 0}, {2, 10}, {3, 100}}}, // y=0 dropped
		},
	}
	svg := p.Render()
	if strings.Count(svg, "<circle") != 2 {
		t.Fatalf("log axis should drop the y=0 point; got %d markers", strings.Count(svg, "<circle"))
	}
}

func TestRenderEmptyPlot(t *testing.T) {
	svg := Plot{Title: "empty"}.Render()
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("empty plot should still be a valid SVG document")
	}
}

func TestRenderSortsByX(t *testing.T) {
	p := Plot{Series: []Series{{Name: "s", Points: []Point{{3, 1}, {1, 1}, {2, 1}}}}}
	svg := p.Render()
	// The polyline's x coordinates must be non-decreasing.
	start := strings.Index(svg, `<polyline points="`)
	if start < 0 {
		t.Fatal("no polyline")
	}
	rest := svg[start+len(`<polyline points="`):]
	end := strings.Index(rest, `"`)
	var xs []float64
	for _, pair := range strings.Fields(rest[:end]) {
		parts := strings.Split(pair, ",")
		x, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			t.Fatal(err)
		}
		xs = append(xs, x)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			t.Fatalf("polyline x not sorted: %v", xs)
		}
	}
}

func TestEscape(t *testing.T) {
	p := Plot{Title: "a<b&c"}
	svg := p.Render()
	if strings.Contains(svg, "a<b&c") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b&amp;c") {
		t.Fatal("escaped title missing")
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		2_500_000: "2.5M",
		12_000:    "12.0k",
		3:         "3",
		0:         "0",
		0.05:      "0.05",
	}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Errorf("fmtTick(%v) = %q, want %q", v, got, want)
		}
	}
}
