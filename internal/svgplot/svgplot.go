// Package svgplot renders simple line charts as standalone SVG documents
// using only the standard library — enough to turn the experiment
// harness's CSV output back into the paper's figures (log-scale axes,
// one series per protocol, legend).
package svgplot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Series is a named polyline.
type Series struct {
	Name   string
	Points []Point
}

// Plot is a chart specification. Render produces the SVG.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	// LogX/LogY select logarithmic axes (points with non-positive
	// coordinates are dropped on that axis).
	LogX, LogY bool
	Series     []Series

	// W, H are the canvas size in pixels (defaults 640×420).
	W, H int
}

// palette holds distinguishable series colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
	"#17becf", "#e377c2", "#7f7f7f", "#bcbd22",
}

const margin = 60

// Render returns the chart as a complete SVG document.
func (p Plot) Render() string {
	w, h := p.W, p.H
	if w == 0 {
		w = 640
	}
	if h == 0 {
		h = 420
	}
	xmin, xmax, ymin, ymax := p.bounds()
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="20" text-anchor="middle" font-size="14" font-weight="bold">%s</text>`+"\n", w/2, esc(p.Title))

	// Plot area.
	px0, py0 := margin, h-margin
	px1, py1 := w-margin, margin/2+10
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#444"/>`+"\n",
		px0, py1, px1-px0, py0-py1)

	sx := func(x float64) float64 {
		x = p.tx(x)
		return float64(px0) + (x-xmin)/(xmax-xmin)*float64(px1-px0)
	}
	sy := func(y float64) float64 {
		y = p.ty(y)
		return float64(py0) - (y-ymin)/(ymax-ymin)*float64(py0-py1)
	}

	// Ticks: 5 per axis, labeled in original units.
	for i := 0; i <= 4; i++ {
		fx := xmin + (xmax-xmin)*float64(i)/4
		fy := ymin + (ymax-ymin)*float64(i)/4
		xpix := float64(px0) + float64(px1-px0)*float64(i)/4
		ypix := float64(py0) - float64(py0-py1)*float64(i)/4
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#444"/>`+"\n", xpix, py0, xpix, py0+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n", xpix, py0+18, fmtTick(p.ux(fx)))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#444"/>`+"\n", px0-5, ypix, px0, ypix)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n", px0-8, ypix, fmtTick(p.uy(fy)))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n", (px0+px1)/2, h-12, esc(p.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%d" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
		(py0+py1)/2, (py0+py1)/2, esc(p.YLabel))

	// Series.
	for si, s := range p.Series {
		color := palette[si%len(palette)]
		pts := p.clean(s.Points)
		if len(pts) == 0 {
			continue
		}
		var poly strings.Builder
		for _, pt := range pts {
			fmt.Fprintf(&poly, "%.1f,%.1f ", sx(pt.X), sy(pt.Y))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			strings.TrimSpace(poly.String()), color)
		for _, pt := range pts {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", sx(pt.X), sy(pt.Y), color)
		}
		// Legend entry.
		ly := py1 + 14 + si*16
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			px1-130, ly, px1-110, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" dominant-baseline="middle">%s</text>`+"\n", px1-104, ly+1, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// tx/ty transform a coordinate onto the (possibly log) plotting scale.
func (p Plot) tx(x float64) float64 {
	if p.LogX {
		return math.Log10(x)
	}
	return x
}

func (p Plot) ty(y float64) float64 {
	if p.LogY {
		return math.Log10(y)
	}
	return y
}

// ux/uy invert the transforms for tick labels.
func (p Plot) ux(x float64) float64 {
	if p.LogX {
		return math.Pow(10, x)
	}
	return x
}

func (p Plot) uy(y float64) float64 {
	if p.LogY {
		return math.Pow(10, y)
	}
	return y
}

// clean drops points a log axis cannot show and sorts by x.
func (p Plot) clean(pts []Point) []Point {
	out := make([]Point, 0, len(pts))
	for _, pt := range pts {
		if p.LogX && pt.X <= 0 {
			continue
		}
		if p.LogY && pt.Y <= 0 {
			continue
		}
		out = append(out, pt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].X < out[j].X })
	return out
}

// bounds computes padded axis ranges on the plotting scale.
func (p Plot) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range p.Series {
		for _, pt := range p.clean(s.Points) {
			x, y := p.tx(pt.X), p.ty(pt.Y)
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if math.IsInf(xmin, 1) {
		return 0, 1, 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	padX, padY := (xmax-xmin)*0.05, (ymax-ymin)*0.08
	return xmin - padX, xmax + padX, ymin - padY, ymax + padY
}

// fmtTick renders an axis label compactly.
func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case av >= 1:
		return fmt.Sprintf("%.3g", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
