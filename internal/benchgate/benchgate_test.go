package benchgate

import (
	"strings"
	"testing"
)

func TestParallelScalingSkipSingleCore(t *testing.T) {
	cells := []ParallelCell{{Workers: 1, Batch: 1, RowsPerSec: 100}, {Workers: 2, Batch: 1, RowsPerSec: 190}}
	r := EvalParallelScaling(cells, 1)
	if r.Status != StatusSkip {
		t.Fatalf("status %q, want SKIP on one core", r.Status)
	}
	if !strings.Contains(r.Reason, "NumCPU=1") {
		t.Fatalf("skip reason %q does not record the core count", r.Reason)
	}
}

func TestParallelScalingPass(t *testing.T) {
	cells := []ParallelCell{
		{Workers: 1, Batch: 1, RowsPerSec: 90},
		{Workers: 1, Batch: 64, RowsPerSec: 100}, // best baseline wins
		{Workers: 2, Batch: 64, RowsPerSec: 175},
		{Workers: 4, Batch: 64, RowsPerSec: 260},
	}
	r := EvalParallelScaling(cells, 8)
	if r.Status != StatusPass {
		t.Fatalf("status %q (%s), want PASS", r.Status, r.Reason)
	}
	if r.Speedup2 != 1.75 || r.Speedup4 != 2.6 {
		t.Fatalf("speedups %.2f/%.2f, want 1.75/2.60", r.Speedup2, r.Speedup4)
	}
}

func TestParallelScalingWarnAt2Workers(t *testing.T) {
	cells := []ParallelCell{
		{Workers: 1, Batch: 64, RowsPerSec: 100},
		{Workers: 2, Batch: 64, RowsPerSec: 120}, // 1.2x < 1.6x
	}
	r := EvalParallelScaling(cells, 2)
	if r.Status != StatusWarn {
		t.Fatalf("status %q, want WARN below threshold", r.Status)
	}
	if r.Speedup4 != 0 {
		t.Fatalf("4-worker speedup %.2f computed on a 2-core box", r.Speedup4)
	}
}

func TestParallelScalingWarnAt4Workers(t *testing.T) {
	// 2-worker passes, 4-worker falls short: overall WARN on a ≥4-core box.
	cells := []ParallelCell{
		{Workers: 1, Batch: 64, RowsPerSec: 100},
		{Workers: 2, Batch: 64, RowsPerSec: 170},
		{Workers: 4, Batch: 64, RowsPerSec: 220},
	}
	if r := EvalParallelScaling(cells, 4); r.Status != StatusWarn {
		t.Fatalf("status %q (%s), want WARN", r.Status, r.Reason)
	}
	// Same cells on a 2-core box: the 4-worker shortfall is not judged.
	if r := EvalParallelScaling(cells, 2); r.Status != StatusPass {
		t.Fatalf("status %q (%s), want PASS when 4-worker gate inapplicable", r.Status, r.Reason)
	}
}

func TestParallelScalingSkipNoBaseline(t *testing.T) {
	if r := EvalParallelScaling([]ParallelCell{{Workers: 2, RowsPerSec: 10}}, 4); r.Status != StatusSkip {
		t.Fatalf("status %q, want SKIP without baseline", r.Status)
	}
}

func TestRegistryScaling(t *testing.T) {
	cells := []RegistryCell{
		{Streams: 16, Workers: 1, RowsPerSec: 62000},
		{Streams: 16, Workers: 4, RowsPerSec: 64000},
		{Streams: 256, Workers: 1, RowsPerSec: 50000},
		{Streams: 256, Workers: 4, RowsPerSec: 40000},
	}
	if r := EvalRegistryScaling(cells, 16, 4); r.Status != StatusPass {
		t.Fatalf("16 streams: status %q (%s), want PASS at parity or better", r.Status, r.Reason)
	}
	if r := EvalRegistryScaling(cells, 256, 4); r.Status != StatusWarn {
		t.Fatalf("256 streams: status %q, want WARN on degradation", r.Status)
	}
	if r := EvalRegistryScaling(cells, 99, 4); r.Status != StatusSkip {
		t.Fatalf("missing cells: status %q, want SKIP", r.Status)
	}
}

func TestRegistryScalingNoiseTolerance(t *testing.T) {
	// On a single-core box the worker clamp makes the cells equivalent, so
	// the true ratio is 1.0: a tiny shortfall is measurement noise and must
	// not flip the gate, while a real falloff still WARNs.
	cells := []RegistryCell{
		{Streams: 16, Workers: 1, RowsPerSec: 62000},
		{Streams: 16, Workers: 4, RowsPerSec: 62000 * 0.99}, // within tolerance
		{Streams: 256, Workers: 1, RowsPerSec: 50000},
		{Streams: 256, Workers: 4, RowsPerSec: 50000 * 0.9}, // beyond tolerance
	}
	if r := EvalRegistryScaling(cells, 16, 4); r.Status != StatusPass {
		t.Fatalf("ratio 0.99: status %q (%s), want PASS within noise tolerance", r.Status, r.Reason)
	}
	if r := EvalRegistryScaling(cells, 256, 4); r.Status != StatusWarn {
		t.Fatalf("ratio 0.90: status %q (%s), want WARN beyond noise tolerance", r.Status, r.Reason)
	}
}
