// Package benchgate evaluates the benchmark scaling gates recorded in
// BENCH_*.json. The rules live here — outside cmd/benchjson — so they can
// be unit-tested on synthetic cells: the single-core CI box can never take
// the multi-core PASS paths at runtime, but the gate logic itself must
// still be provably right.
package benchgate

import "fmt"

// Gate statuses. A gate never hard-fails a benchmark run: benchmarks are
// advisory artifacts, so shortfalls surface as WARN for a human (or CI
// annotation) to judge, and environments that cannot run a gate at all
// record SKIP with the reason.
const (
	StatusPass = "PASS"
	StatusWarn = "WARN"
	StatusSkip = "SKIP"
)

// Thresholds for the parallel pipeline's scaling-efficiency gate:
// ≥ 1.6× at 2 workers and ≥ 2.5× at 4 workers versus the same protocol's
// 1-worker pipeline throughput.
const (
	MinSpeedup2 = 1.6
	MinSpeedup4 = 2.5
)

// RegistryParityTolerance is the minimum multi-worker/1-worker ratio the
// registry falloff gate accepts as parity. On a single-core box the worker
// clamp makes the cells equivalent, so the true ratio is 1.0 and a strict
// >= 1.0 check would flip to WARN on ordinary measurement noise; 3% covers
// that jitter while still catching real regressions like the pre-PR9
// 40.6k-vs-62.0k falloff (ratio 0.65).
const RegistryParityTolerance = 0.97

// ParallelCell is one measured cell of the batch-size × workers sweep for
// one protocol.
type ParallelCell struct {
	Workers    int
	Batch      int
	RowsPerSec float64
}

// Result is a gate verdict: Status plus a human-readable reason and the
// speedups that drove it (0 when not computed).
type Result struct {
	Status   string  `json:"status"`
	Reason   string  `json:"reason"`
	Speedup2 float64 `json:"speedup_2w,omitempty"`
	Speedup4 float64 `json:"speedup_4w,omitempty"`
}

// bestAt returns the best rows/s over cells with the given worker count
// (any batch size — the gate measures what the pipeline can do, and the
// batched path is part of it).
func bestAt(cells []ParallelCell, workers int) float64 {
	best := 0.0
	for _, c := range cells {
		if c.Workers == workers && c.RowsPerSec > best {
			best = c.RowsPerSec
		}
	}
	return best
}

// EvalParallelScaling applies the pipeline scaling gate to one protocol's
// sweep cells, measured on a machine with numCPU schedulable cores.
//
//   - numCPU < 2: SKIP — scaling cannot be demonstrated on one core, and
//     pretending otherwise is how every pre-PR9 "parallel" number was
//     produced. The reason records the core count.
//   - 2-worker speedup vs 1 worker must reach MinSpeedup2, and — when the
//     machine has ≥ 4 cores and 4-worker cells exist — the 4-worker
//     speedup must reach MinSpeedup4. Both → PASS, otherwise WARN.
func EvalParallelScaling(cells []ParallelCell, numCPU int) Result {
	if numCPU < 2 {
		return Result{
			Status: StatusSkip,
			Reason: fmt.Sprintf("single-core machine (NumCPU=%d): parallel speedup cannot be demonstrated", numCPU),
		}
	}
	base := bestAt(cells, 1)
	if base == 0 {
		return Result{Status: StatusSkip, Reason: "no 1-worker baseline cell in sweep"}
	}
	r := Result{Speedup2: bestAt(cells, 2) / base}
	pass := r.Speedup2 >= MinSpeedup2
	reason := fmt.Sprintf("2-worker speedup %.2fx (need %.1fx)", r.Speedup2, MinSpeedup2)
	if numCPU >= 4 {
		if best4 := bestAt(cells, 4); best4 > 0 {
			r.Speedup4 = best4 / base
			pass = pass && r.Speedup4 >= MinSpeedup4
			reason += fmt.Sprintf(", 4-worker %.2fx (need %.1fx)", r.Speedup4, MinSpeedup4)
		}
	}
	r.Reason = reason
	if pass {
		r.Status = StatusPass
	} else {
		r.Status = StatusWarn
	}
	return r
}

// RegistryCell is one measured cell of the registry streams × workers
// sweep.
type RegistryCell struct {
	Streams    int
	Workers    int
	RowsPerSec float64
}

// EvalRegistryScaling applies the registry falloff gate at one stream
// count: multi-worker ingest must never degrade below the 1-worker figure
// of the same run. On a multi-core box it should exceed it; on one core
// the worker clamp (Registry.IngestWorkers) makes the cells equivalent, so
// parity is the expectation and a shortfall beyond noise is a WARN.
func EvalRegistryScaling(cells []RegistryCell, streams, workers int) Result {
	var base, at float64
	for _, c := range cells {
		if c.Streams != streams {
			continue
		}
		switch c.Workers {
		case 1:
			base = c.RowsPerSec
		case workers:
			at = c.RowsPerSec
		}
	}
	if base == 0 || at == 0 {
		return Result{Status: StatusSkip, Reason: fmt.Sprintf("missing 1- or %d-worker cell at %d streams", workers, streams)}
	}
	ratio := at / base
	r := Result{Speedup2: 0, Speedup4: 0}
	r.Reason = fmt.Sprintf("%d streams: %d-worker ingest at %.2fx the 1-worker rate", streams, workers, ratio)
	if ratio >= RegistryParityTolerance {
		r.Status = StatusPass
	} else {
		r.Status = StatusWarn
	}
	return r
}
