// Package iwmt implements infinite-window matrix tracking for a single
// stream — the one-way "significant direction" emitter of Ghashami,
// Phillips and Li (PVLDB 2014, protocol P2) that DA2 composes into a
// sliding-window tracker.
//
// The tracker maintains a Frequent Directions sketch of the content it has
// received but not yet emitted. Whenever the unsent raw mass since the
// last compaction reaches half the current threshold θ, the sketch is
// compacted (its rows become orthogonal, scaled singular vectors) and
// every row with squared norm ≥ θ is emitted and removed. Consequently:
//
//   - at any time, the unsent content's Gram matrix has spectral norm at
//     most θ + θ/2 plus the accumulated FD shrink mass — the covariance
//     error between any input prefix and the corresponding output prefix
//     is O(θ + ‖input‖_F²/ℓ);
//   - every emitted row carries at least θ of squared mass, so the number
//     of messages is at most ‖input‖_F²/θ plus flushes.
//
// The threshold is supplied by a callback so callers can grow it with the
// stream (DA2 uses ε·F̂² of the relevant window).
package iwmt

import (
	"distwindow/internal/fd"
	"distwindow/mat"
)

// Msg is one emitted direction with the timestamp of the input row that
// triggered it.
type Msg struct {
	T int64
	V []float64
}

// Tracker is a single-stream IWMT instance. Construct with New.
type Tracker struct {
	d         int
	sk        *fd.Sketch
	threshold func() float64
	// rawSince accumulates input mass since the last compaction.
	rawSince float64
	// lastT is the newest input timestamp; flushes are stamped with it so
	// emitted residue never outlives the content it summarizes.
	lastT int64
	// emittedGram tracks Σ mᵀm of everything emitted (off by default; DA2's
	// compressed variant enables it to drain residues at window ends).
	emitted int
}

// New returns a tracker for d-dimensional rows. ell is the FD sketch size
// of the unsent buffer (⌈1/ε⌉ gives the O(ε) drift term); threshold
// returns the current emission threshold θ and may grow over time.
func New(ell, d int, threshold func() float64) *Tracker {
	if ell < 1 || d < 1 {
		panic("iwmt: invalid ell or d")
	}
	if threshold == nil {
		panic("iwmt: nil threshold")
	}
	return &Tracker{d: d, sk: fd.New(ell, d), threshold: threshold}
}

// Input feeds one row and returns any directions emitted as a result.
func (tr *Tracker) Input(t int64, v []float64) []Msg {
	if t > tr.lastT {
		tr.lastT = t
	}
	tr.sk.Update(v)
	tr.rawSince += mat.VecNormSq(v)
	theta := tr.threshold()
	if theta <= 0 {
		// Degenerate threshold (empty window estimate): emit everything to
		// stay correct.
		return tr.Flush(t)
	}
	if tr.rawSince < theta/2 {
		return nil
	}
	return tr.emit(t, theta)
}

// emit compacts the unsent sketch and ships rows with squared norm ≥ θ.
// Emitted rows are copied (they escape into messages); kept rows are
// re-fed from the compacted buffer view. Re-feeding is alias-safe: kept
// row k comes from view row j_k ≥ k, and Update writes rows in increasing
// order, so a source row is never overwritten before it is read.
func (tr *Tracker) emit(t int64, theta float64) []Msg {
	rows := tr.sk.CompactView()
	tr.rawSince = 0
	var out []Msg
	var kept []int
	for i := 0; i < rows.Rows(); i++ {
		if mat.VecNormSq(rows.Row(i)) >= theta {
			out = append(out, Msg{T: t, V: append([]float64(nil), rows.Row(i)...)})
			tr.emitted++
		} else {
			kept = append(kept, i)
		}
	}
	if len(out) > 0 {
		tr.sk.Reset()
		for _, i := range kept {
			tr.sk.Update(rows.Row(i))
		}
	}
	return out
}

// Flush compacts and emits every remaining unsent row regardless of the
// threshold, leaving the tracker empty. DA2 calls this at window
// boundaries so no residue outlives its window. Emitted rows are stamped
// with the newest input timestamp when it is older than t: the buffered
// content is no newer than the last input, so the earlier stamp lets it
// expire with the rows it summarizes instead of a window later.
func (tr *Tracker) Flush(t int64) []Msg {
	if tr.lastT > 0 && tr.lastT < t {
		t = tr.lastT
	}
	rows := tr.sk.CompactView()
	var out []Msg
	for i := 0; i < rows.Rows(); i++ {
		if mat.VecNormSq(rows.Row(i)) > 0 {
			out = append(out, Msg{T: t, V: append([]float64(nil), rows.Row(i)...)})
			tr.emitted++
		}
	}
	tr.sk.Reset()
	tr.rawSince = 0
	return out
}

// UnsentFrobSq returns the Frobenius mass currently buffered (unsent).
func (tr *Tracker) UnsentFrobSq() float64 { return tr.sk.FrobSq() }

// Emitted returns the number of directions emitted so far.
func (tr *Tracker) Emitted() int { return tr.emitted }

// SpaceWords returns the tracker's storage cost in words. It allocates
// nothing — DA2 charges it per ingested row.
func (tr *Tracker) SpaceWords() int64 {
	return int64(tr.sk.NumRows()) * int64(tr.d)
}

// Reset empties the tracker without emitting.
func (tr *Tracker) Reset() {
	tr.sk.Reset()
	tr.rawSince = 0
	tr.lastT = 0
}
