package iwmt

import (
	"fmt"

	"distwindow/internal/fd"
)

// Snapshot is a serializable copy of a Tracker (minus its threshold
// callback, which the restorer must re-supply — thresholds are closures
// over live protocol state).
type Snapshot struct {
	D        int
	Sketch   fd.Snapshot
	RawSince float64
	Emitted  int
	LastT    int64
}

// Snapshot captures the tracker's state.
func (tr *Tracker) Snapshot() Snapshot {
	return Snapshot{D: tr.d, Sketch: tr.sk.Snapshot(), RawSince: tr.rawSince, Emitted: tr.emitted, LastT: tr.lastT}
}

// Restore rebuilds a tracker from a snapshot with a fresh threshold
// callback.
func Restore(sn Snapshot, threshold func() float64) (*Tracker, error) {
	if threshold == nil {
		return nil, fmt.Errorf("iwmt: Restore needs a threshold callback")
	}
	sk, err := fd.Restore(sn.Sketch)
	if err != nil {
		return nil, fmt.Errorf("iwmt: %w", err)
	}
	if sn.D != sk.D() {
		return nil, fmt.Errorf("iwmt: snapshot d=%d vs sketch d=%d", sn.D, sk.D())
	}
	return &Tracker{d: sn.D, sk: sk, threshold: threshold, rawSince: sn.RawSince, emitted: sn.Emitted, lastT: sn.LastT}, nil
}
