package iwmt

import (
	"math"
	"math/rand"
	"testing"

	"distwindow/mat"
)

// gramOf accumulates Σ vᵀv over rows.
func gramOf(d int, rows [][]float64) *mat.Dense {
	g := mat.NewDense(d, d)
	for _, r := range rows {
		mat.OuterAdd(g, r, 1)
	}
	return g
}

func randRow(d int, rng *rand.Rand) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestPrefixGuarantee(t *testing.T) {
	// At every point of the stream, the Gram of all emitted messages must
	// be within O(θ + F²/ℓ) of the Gram of all input rows.
	const d = 6
	rng := rand.New(rand.NewSource(1))
	var inputMass float64
	theta := 5.0
	tr := New(10, d, func() float64 { return theta })
	inGram := mat.NewDense(d, d)
	outGram := mat.NewDense(d, d)
	for i := 0; i < 500; i++ {
		v := randRow(d, rng)
		mat.OuterAdd(inGram, v, 1)
		inputMass += mat.VecNormSq(v)
		for _, m := range tr.Input(int64(i), v) {
			mat.OuterAdd(outGram, m.V, 1)
		}
		if i%50 == 0 {
			err := mat.SymSpectralNorm(mat.Sub(inGram, outGram))
			bound := 2*theta + inputMass/10
			if err > bound*1.01 {
				t.Fatalf("i=%d: prefix error %v > bound %v", i, err, bound)
			}
		}
	}
}

func TestFlushLeavesNoResidue(t *testing.T) {
	const d = 4
	rng := rand.New(rand.NewSource(2))
	tr := New(8, d, func() float64 { return 100 })
	inGram := mat.NewDense(d, d)
	outGram := mat.NewDense(d, d)
	var mass float64
	for i := 0; i < 200; i++ {
		v := randRow(d, rng)
		mat.OuterAdd(inGram, v, 1)
		mass += mat.VecNormSq(v)
		for _, m := range tr.Input(int64(i), v) {
			mat.OuterAdd(outGram, m.V, 1)
		}
	}
	for _, m := range tr.Flush(200) {
		mat.OuterAdd(outGram, m.V, 1)
	}
	// After a full flush only FD shrink mass separates input and output.
	err := mat.SymSpectralNorm(mat.Sub(inGram, outGram))
	if err > mass/8+1e-9 {
		t.Fatalf("post-flush error %v > FD drift bound %v", err, mass/8)
	}
	if tr.UnsentFrobSq() != 0 {
		t.Fatal("Flush must empty the tracker")
	}
}

func TestMessageCountBounded(t *testing.T) {
	// Each emitted row carries ≥ θ squared mass, so messages ≤ mass/θ.
	const d = 5
	rng := rand.New(rand.NewSource(3))
	theta := 50.0
	tr := New(10, d, func() float64 { return theta })
	var mass float64
	for i := 0; i < 2000; i++ {
		v := randRow(d, rng)
		mass += mat.VecNormSq(v)
		tr.Input(int64(i), v)
	}
	if got, bound := tr.Emitted(), int(mass/theta)+1; got > bound {
		t.Fatalf("emitted %d messages, bound %d", got, bound)
	}
}

func TestLargerThresholdFewerMessages(t *testing.T) {
	const d = 5
	mk := func(theta float64, seed int64) int {
		rng := rand.New(rand.NewSource(seed))
		tr := New(10, d, func() float64 { return theta })
		for i := 0; i < 1000; i++ {
			tr.Input(int64(i), randRow(d, rng))
		}
		return tr.Emitted()
	}
	small := mk(10, 4)
	large := mk(200, 4)
	if large >= small {
		t.Fatalf("θ=200 sent %d ≥ θ=10's %d messages", large, small)
	}
}

func TestGrowingThreshold(t *testing.T) {
	// DA2-style threshold proportional to accumulated mass must still keep
	// relative prefix error bounded.
	const d = 6
	rng := rand.New(rand.NewSource(5))
	var mass float64
	eps := 0.1
	tr := New(int(1/eps), d, func() float64 { return eps * mass })
	inGram := mat.NewDense(d, d)
	outGram := mat.NewDense(d, d)
	for i := 0; i < 1500; i++ {
		v := randRow(d, rng)
		mass += mat.VecNormSq(v)
		mat.OuterAdd(inGram, v, 1)
		for _, m := range tr.Input(int64(i), v) {
			mat.OuterAdd(outGram, m.V, 1)
		}
	}
	err := mat.SymSpectralNorm(mat.Sub(inGram, outGram))
	if err > 3*eps*mass {
		t.Fatalf("relative prefix error %v > %v", err/mass, 3*eps)
	}
}

func TestZeroThresholdEmitsEverything(t *testing.T) {
	const d = 3
	tr := New(4, d, func() float64 { return 0 })
	msgs := tr.Input(1, []float64{1, 2, 3})
	var out float64
	for _, m := range msgs {
		out += mat.VecNormSq(m.V)
	}
	if math.Abs(out-14) > 1e-9 {
		t.Fatalf("zero threshold should flush; emitted mass %v, want 14", out)
	}
}

func TestEmittedTimestamps(t *testing.T) {
	const d = 2
	tr := New(2, d, func() float64 { return 0.5 })
	msgs := tr.Input(42, []float64{10, 0})
	if len(msgs) == 0 {
		t.Fatal("large row above θ should be emitted")
	}
	for _, m := range msgs {
		if m.T != 42 {
			t.Fatalf("message timestamp %d, want 42", m.T)
		}
	}
}

func TestResetClears(t *testing.T) {
	tr := New(4, 3, func() float64 { return 1e12 })
	tr.Input(1, []float64{1, 1, 1})
	tr.Reset()
	if tr.UnsentFrobSq() != 0 {
		t.Fatal("Reset should clear buffered mass")
	}
	if len(tr.Flush(2)) != 0 {
		t.Fatal("nothing to flush after Reset")
	}
}

func TestSpaceBounded(t *testing.T) {
	const d = 8
	rng := rand.New(rand.NewSource(6))
	tr := New(10, d, func() float64 { return 5 })
	for i := 0; i < 5000; i++ {
		tr.Input(int64(i), randRow(d, rng))
	}
	if tr.SpaceWords() > int64(2*10*d) {
		t.Fatalf("space %d words exceeds 2ℓd", tr.SpaceWords())
	}
}

func TestNewValidation(t *testing.T) {
	for i, f := range []func(){
		func() { New(0, 3, func() float64 { return 1 }) },
		func() { New(3, 0, func() float64 { return 1 }) },
		func() { New(3, 3, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
