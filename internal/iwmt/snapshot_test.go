package iwmt

import (
	"math/rand"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	theta := 25.0
	tr := New(6, 5, func() float64 { return theta })
	var sent int
	for i := 0; i < 400; i++ {
		sent += len(tr.Input(int64(i), randRow(5, rng)))
	}
	r, err := Restore(tr.Snapshot(), func() float64 { return theta })
	if err != nil {
		t.Fatal(err)
	}
	if r.UnsentFrobSq() != tr.UnsentFrobSq() || r.Emitted() != tr.Emitted() {
		t.Fatal("restored tracker state differs")
	}
	// Continued input must emit identically.
	for i := 400; i < 600; i++ {
		v := randRow(5, rng)
		a := tr.Input(int64(i), v)
		b := r.Input(int64(i), v)
		if len(a) != len(b) {
			t.Fatalf("step %d: %d vs %d emissions", i, len(a), len(b))
		}
		for j := range a {
			for k := range a[j].V {
				if a[j].V[k] != b[j].V[k] {
					t.Fatal("emitted rows differ")
				}
			}
		}
	}
}

func TestSnapshotRestoreValidation(t *testing.T) {
	tr := New(3, 4, func() float64 { return 1 })
	if _, err := Restore(tr.Snapshot(), nil); err == nil {
		t.Fatal("want error for nil threshold")
	}
	sn := tr.Snapshot()
	sn.Sketch.Buf = []float64{1} // corrupt
	if _, err := Restore(sn, func() float64 { return 1 }); err == nil {
		t.Fatal("want error for corrupt sketch")
	}
}
