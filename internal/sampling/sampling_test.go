package sampling

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"distwindow/mat"
)

func TestPrioritySchemeMonotoneInWeight(t *testing.T) {
	p := Priority{}
	if p.Priority(10, 0.5) <= p.Priority(1, 0.5) {
		t.Fatal("higher weight should give higher priority at equal u")
	}
	if p.Priority(4, 0.5) != 8 {
		t.Fatalf("Priority(4,0.5) = %v, want 8", p.Priority(4, 0.5))
	}
}

func TestESSchemeRange(t *testing.T) {
	e := ES{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		u := rng.Float64()
		if u == 0 {
			continue
		}
		rho := e.Priority(1+rng.Float64()*100, u)
		if rho <= 0 || rho >= 1 {
			t.Fatalf("ES priority %v out of (0,1)", rho)
		}
	}
}

func TestESSchemeMonotoneInWeight(t *testing.T) {
	e := ES{}
	if e.Priority(10, 0.5) <= e.Priority(1, 0.5) {
		t.Fatal("higher weight should give higher ES priority at equal u")
	}
}

func TestDrawAvoidsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		rho := Draw(Priority{}, 1, rng)
		if math.IsInf(rho, 1) || rho <= 0 {
			t.Fatalf("Draw produced %v", rho)
		}
	}
}

// TestPrioritySamplingSelectsHeavyRows verifies the fundamental property
// that motivates weighted sampling for covariance sketching: rows with
// large norms appear in the top-ℓ far more often than uniform sampling.
func TestPrioritySamplingSelectsHeavyRows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, trials = 1000, 200
	heavyHits := 0
	for tr := 0; tr < trials; tr++ {
		// One heavy row (weight n) among n−1 unit rows.
		type pr struct {
			rho   float64
			heavy bool
		}
		ps := make([]pr, n)
		ps[0] = pr{Draw(Priority{}, float64(n), rng), true}
		for i := 1; i < n; i++ {
			ps[i] = pr{Draw(Priority{}, 1, rng), false}
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].rho > ps[j].rho })
		for _, p := range ps[:10] {
			if p.heavy {
				heavyHits++
			}
		}
	}
	// P[heavy in top-10] ≈ 1 for weight n=1000 vs uniform P ≈ 10/1000.
	if heavyHits < trials*9/10 {
		t.Fatalf("heavy row hit top-10 only %d/%d times", heavyHits, trials)
	}
}

func TestESSamplingInclusionProbability(t *testing.T) {
	// For ES sampling with ℓ=1, P[item i selected] = wᵢ/Σw exactly.
	rng := rand.New(rand.NewSource(4))
	weights := []float64{1, 2, 7}
	counts := make([]int, 3)
	const trials = 30000
	for tr := 0; tr < trials; tr++ {
		best, bestRho := -1, -1.0
		for i, w := range weights {
			rho := Draw(ES{}, w, rng)
			if rho > bestRho {
				best, bestRho = i, rho
			}
		}
		counts[best]++
	}
	for i, w := range weights {
		want := w / 10 * trials
		if math.Abs(float64(counts[i])-want) > 0.1*trials {
			t.Fatalf("item %d selected %d times, want ≈%v", i, counts[i], want)
		}
	}
}

func TestItemWeight(t *testing.T) {
	it := Item{V: []float64{3, 4}}
	if it.Weight() != 25 {
		t.Fatalf("Weight = %v, want 25", it.Weight())
	}
}

func TestRescalePriorityCeiling(t *testing.T) {
	it := Item{V: []float64{3, 4}} // w = 25
	// τℓ below w: row unchanged.
	r := RescalePriority(it, 10)
	if math.Abs(mat.VecNormSq(r)-25) > 1e-12 {
		t.Fatalf("‖r‖² = %v, want 25", mat.VecNormSq(r))
	}
	// τℓ above w: squared norm becomes τℓ.
	r = RescalePriority(it, 100)
	if math.Abs(mat.VecNormSq(r)-100) > 1e-9 {
		t.Fatalf("‖r‖² = %v, want 100", mat.VecNormSq(r))
	}
	// Direction preserved.
	if math.Abs(r[0]/r[1]-0.75) > 1e-12 {
		t.Fatal("rescaling must preserve direction")
	}
}

func TestRescalePriorityZeroRow(t *testing.T) {
	r := RescalePriority(Item{V: []float64{0, 0}}, 5)
	if mat.VecNormSq(r) != 0 {
		t.Fatal("zero row should stay zero")
	}
}

func TestRescaleESEqualMass(t *testing.T) {
	frobSq := 400.0
	ell := 4
	for _, v := range [][]float64{{1, 0}, {0, 10}, {3, 4}} {
		r := RescaleES(Item{V: v}, frobSq, ell)
		if math.Abs(mat.VecNormSq(r)-100) > 1e-9 {
			t.Fatalf("‖r‖² = %v, want F²/ℓ = 100", mat.VecNormSq(r))
		}
	}
}

func TestRescaleESDegenerate(t *testing.T) {
	if mat.VecNormSq(RescaleES(Item{V: []float64{1, 1}}, 0, 4)) != 0 {
		t.Fatal("zero F² should produce zero row")
	}
}

func TestSampleSizeDecreasingInEps(t *testing.T) {
	if SampleSize(0.05) <= SampleSize(0.1) {
		t.Fatal("smaller eps needs more samples")
	}
	if SampleSize(0.5) < 8 {
		t.Fatal("SampleSize should be at least 8")
	}
}

func TestSampleSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SampleSize(0)
}

// --- Queue tests ---

func TestQueuePushAndLen(t *testing.T) {
	q := NewQueue(2)
	q.Push(Item{V: []float64{1}, Rho: 5, T: 1})
	q.Observe(5)
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

func TestQueueDominanceEviction(t *testing.T) {
	q := NewQueue(2)
	q.Push(Item{V: []float64{1}, Rho: 1, T: 1})
	q.Observe(1)
	// Two later arrivals with higher priority evict the entry (ℓ=2).
	q.Observe(5)
	q.Observe(7)
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0 after ℓ-domination", q.Len())
	}
}

func TestQueueNotDominatedByEarlier(t *testing.T) {
	q := NewQueue(1)
	// A high-priority arrival BEFORE the push must not count.
	q.Observe(100)
	q.Push(Item{V: []float64{1}, Rho: 1, T: 2})
	q.Observe(1)
	if q.Len() != 1 {
		t.Fatal("entry dominated by an earlier arrival — counts must be causal")
	}
	// One later arrival evicts it (ℓ=1).
	q.Observe(50)
	if q.Len() != 0 {
		t.Fatal("entry should be dominated by one later arrival at ℓ=1")
	}
}

func TestQueueSelfNoDomination(t *testing.T) {
	q := NewQueue(1)
	q.Push(Item{V: []float64{1}, Rho: 3, T: 1})
	q.Observe(3) // its own arrival record
	if q.Len() != 1 {
		t.Fatal("a row must not dominate itself")
	}
}

func TestQueueLowerPriorityDoesNotDominate(t *testing.T) {
	q := NewQueue(1)
	q.Push(Item{V: []float64{1}, Rho: 10, T: 1})
	q.Observe(10)
	for i := 0; i < 200; i++ {
		q.Observe(1)
	}
	if q.Len() != 1 {
		t.Fatal("lower priorities must not dominate")
	}
}

func TestQueueExpire(t *testing.T) {
	q := NewQueue(3)
	q.Push(Item{V: []float64{1}, Rho: 1, T: 10})
	q.Observe(1)
	q.Push(Item{V: []float64{1}, Rho: 2, T: 20})
	q.Observe(2)
	q.Expire(25, 10) // cut = 15: T=10 expires
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

func TestQueuePopQualifying(t *testing.T) {
	q := NewQueue(5)
	for i, rho := range []float64{1, 5, 3, 9} {
		q.Push(Item{V: []float64{1}, Rho: rho, T: int64(i)})
		q.Observe(rho)
	}
	got := q.PopQualifying(4)
	if len(got) != 2 {
		t.Fatalf("PopQualifying returned %d items, want 2", len(got))
	}
	if got[0].Rho != 5 || got[1].Rho != 9 {
		t.Fatalf("wrong items: %+v", got)
	}
	if q.Len() != 2 {
		t.Fatalf("remaining = %d, want 2", q.Len())
	}
}

func TestQueueMaxPriorityAndPopMax(t *testing.T) {
	q := NewQueue(5)
	for i, rho := range []float64{2, 8, 4} {
		q.Push(Item{V: []float64{1}, Rho: rho, T: int64(i)})
		q.Observe(rho)
	}
	if mx, ok := q.MaxPriority(); !ok || mx != 8 {
		t.Fatalf("MaxPriority = %v %v, want 8 true", mx, ok)
	}
	it := q.PopMax()
	if it.Rho != 8 {
		t.Fatalf("PopMax Rho = %v, want 8", it.Rho)
	}
	if mx, _ := q.MaxPriority(); mx != 4 {
		t.Fatalf("next MaxPriority = %v, want 4", mx)
	}
}

func TestQueueMaxPriorityEmpty(t *testing.T) {
	q := NewQueue(2)
	if _, ok := q.MaxPriority(); ok {
		t.Fatal("empty queue should report no max")
	}
}

func TestQueuePopMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQueue(2).PopMax()
}

func TestQueueSpaceBoundUnderRandomPriorities(t *testing.T) {
	// With ℓ=8 and n=5000 random arrivals all queued, the queue should
	// hold O(ℓ·log(n/ℓ)) rows, far below n.
	rng := rand.New(rand.NewSource(5))
	q := NewQueue(8)
	for i := 0; i < 5000; i++ {
		rho := Draw(Priority{}, 1, rng)
		q.Push(Item{V: []float64{1}, Rho: rho, T: int64(i)})
		q.Observe(rho)
	}
	// ℓ·ln(n/ℓ) ≈ 8·6.4 ≈ 51; allow generous slack + batch residue.
	if q.Len() > 300 {
		t.Fatalf("queue holds %d rows, want O(ℓ·log(n/ℓ))", q.Len())
	}
}

func TestQueueSpaceWords(t *testing.T) {
	q := NewQueue(2)
	q.Push(Item{V: []float64{1, 2, 3}, Rho: 1, T: 1})
	q.Observe(1)
	if q.SpaceWords(3) != 6 {
		t.Fatalf("SpaceWords = %d, want 6", q.SpaceWords(3))
	}
}

func TestNewQueueValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQueue(0)
}
