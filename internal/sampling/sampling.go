// Package sampling provides the weighted-sampling primitives shared by the
// distributed sliding-window sampling protocols (§II of the paper):
// priority assignment schemes (priority sampling and ES sampling), the
// site-side ℓ-dominance queue, and the estimators that turn sampled rows
// into a covariance sketch.
package sampling

import (
	"math"
	"math/rand"
)

// Scheme assigns random priorities to weighted items. Higher priority wins
// in both supported schemes.
type Scheme interface {
	// Priority maps a positive weight w = ‖a‖² and a uniform u ∈ (0,1) to
	// a priority value.
	Priority(w, u float64) float64
	// Name identifies the scheme.
	Name() string
}

// Priority is Duffield–Lund–Thorup priority sampling: ρ = w/u.
// Priorities are unbounded above; the ℓ-th largest priority τ_ℓ doubles as
// the estimator's weight ceiling.
type Priority struct{}

// Priority returns w/u.
func (Priority) Priority(w, u float64) float64 { return w / u }

// Name returns "priority".
func (Priority) Name() string { return "priority" }

// ES is Efraimidis–Spirakis sampling: ρ = u^{1/w} ∈ (0,1). Taking the
// top-ℓ priorities yields a weighted sample without replacement.
type ES struct{}

// Priority returns u^{1/w}.
func (ES) Priority(w, u float64) float64 { return math.Pow(u, 1/w) }

// Name returns "es".
func (ES) Name() string { return "es" }

// Uniform ignores weights: ρ = 1/u, so every item is equally likely to
// reach the top-ℓ. It exists as the baseline the paper's §II argues
// *cannot* work for covariance sketching — the repository's tests
// demonstrate the failure on skewed data rather than assume it.
type Uniform struct{}

// Priority returns 1/u (weight ignored).
func (Uniform) Priority(w, u float64) float64 { return 1 / u }

// Name returns "uniform".
func (Uniform) Name() string { return "uniform" }

// RescaleUniform returns the covariance-sketch row for a uniformly sampled
// item: scaled by √(N/ℓ) so that ℓ samples estimate the Gram of N rows.
func RescaleUniform(it Item, count float64, ell int) []float64 {
	out := make([]float64, len(it.V))
	if count <= 0 || ell <= 0 {
		return out
	}
	f := math.Sqrt(count / float64(ell))
	for i, x := range it.V {
		out[i] = f * x
	}
	return out
}

// Draw assigns a priority to weight w using randomness from rng, guarding
// against u = 0 (which both schemes map to degenerate values).
func Draw(s Scheme, w float64, rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return s.Priority(w, u)
}

// Item is a prioritized row held in a queue or sample set.
type Item struct {
	V   []float64
	Rho float64
	T   int64
}

// Weight returns the item's sampling weight ‖V‖².
func (it Item) Weight() float64 {
	var s float64
	for _, v := range it.V {
		s += v * v
	}
	return s
}

// RescalePriority returns the covariance-sketch row for a
// priority-sampled item: the row rescaled so its squared norm equals
// vᵢ = max{‖aᵢ‖², τℓ}, the priority-sampling subset-sum estimator with
// threshold τℓ (the ℓ-th largest priority).
func RescalePriority(it Item, tauEll float64) []float64 {
	w := it.Weight()
	out := make([]float64, len(it.V))
	if w == 0 {
		return out
	}
	v := w
	if tauEll > v {
		v = tauEll
	}
	f := math.Sqrt(v / w)
	for i, x := range it.V {
		out[i] = f * x
	}
	return out
}

// RescaleES returns the covariance-sketch row for an ES-sampled item: the
// row rescaled by ‖A_w‖_F/(√ℓ·‖aᵢ‖), so that every sample carries an equal
// share ‖A_w‖_F²/ℓ of the window's mass.
func RescaleES(it Item, frobSq float64, ell int) []float64 {
	w := it.Weight()
	out := make([]float64, len(it.V))
	if w == 0 || frobSq <= 0 || ell <= 0 {
		return out
	}
	f := math.Sqrt(frobSq/float64(ell)) / math.Sqrt(w)
	for i, x := range it.V {
		out[i] = f * x
	}
	return out
}

// SampleSize returns the paper's sample-set size for a target covariance
// error ε: ℓ = Θ(1/ε²·log(1/ε)), with a small constant calibrated so that
// ε = 0.05 gives a practical ℓ in the low thousands.
func SampleSize(eps float64) int {
	if eps <= 0 || eps >= 1 {
		panic("sampling: eps must be in (0,1)")
	}
	ell := int(math.Ceil(0.5 / (eps * eps) * math.Log2(1/eps)))
	if ell < 8 {
		ell = 8
	}
	return ell
}
