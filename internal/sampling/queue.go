package sampling

// Queue is the site-side structure of Algorithms 1–2: it holds observed
// rows that were not immediately forwarded (priority below the threshold),
// discarding a row as soon as it expires or becomes right ℓ-dominated —
// i.e. ℓ rows arriving later carry higher priorities, which by
// Definition 1 means the row can never re-enter the global top-ℓ before it
// expires.
//
// Dominance counting is batched: instead of touching every queued entry on
// every arrival (the paper's literal lines 6–11, O(|Q|) per row), the
// queue buffers recent arrivals' (index, priority) pairs and charges them
// to entries in one pass every batchSize arrivals. Counts are exact —
// each entry is charged only by strictly later arrivals — they are merely
// applied up to batchSize arrivals late, so an entry may linger slightly
// longer than in the literal protocol. Entries are never dropped early, so
// correctness is unaffected; the space bound gains an additive
// O(batchSize).
type Queue struct {
	ell     int
	arrival int64 // global arrival counter
	entries []entry
	batch   []arrivalRec
}

type entry struct {
	it    Item
	idx   int64 // arrival index of this row
	count int
}

type arrivalRec struct {
	idx int64
	rho float64
}

// batchSize balances the amortized cost of dominance counting against the
// extra O(batchSize) rows a site may hold.
const batchSize = 64

// NewQueue returns a queue with dominance parameter ℓ.
func NewQueue(ell int) *Queue {
	if ell < 1 {
		panic("sampling: queue ℓ must be positive")
	}
	return &Queue{ell: ell}
}

// Push appends a row that was not forwarded. Call Observe for every
// arrival (queued or not) afterwards so dominance counts accumulate.
func (q *Queue) Push(it Item) {
	q.entries = append(q.entries, entry{it: it, idx: q.arrival})
}

// Observe records the priority of a newly arrived row (whether or not it
// was queued) so older queued entries accumulate dominance counts.
func (q *Queue) Observe(rho float64) {
	q.batch = append(q.batch, arrivalRec{idx: q.arrival, rho: rho})
	q.arrival++
	if len(q.batch) >= batchSize {
		q.flushBatch()
	}
}

// flushBatch charges buffered priorities to entries that arrived strictly
// earlier, dropping entries that reach ℓ dominators.
func (q *Queue) flushBatch() {
	if len(q.batch) == 0 {
		return
	}
	keep := q.entries[:0]
	for _, e := range q.entries {
		for _, a := range q.batch {
			if e.count >= q.ell {
				break
			}
			if a.idx > e.idx && a.rho >= e.it.Rho {
				e.count++
			}
		}
		if e.count < q.ell {
			keep = append(keep, e)
		}
	}
	q.entries = keep
	q.batch = q.batch[:0]
}

// Expire removes entries whose timestamp is ≤ now−w.
func (q *Queue) Expire(now, w int64) {
	keep := q.entries[:0]
	for _, e := range q.entries {
		if e.it.T > now-w {
			keep = append(keep, e)
		}
	}
	q.entries = keep
}

// PopQualifying removes and returns all entries with priority ≥ tau, in
// arrival order — the site's response to a threshold decrease.
func (q *Queue) PopQualifying(tau float64) []Item {
	q.flushBatch()
	var out []Item
	keep := q.entries[:0]
	for _, e := range q.entries {
		if e.it.Rho >= tau {
			out = append(out, e.it)
		} else {
			keep = append(keep, e)
		}
	}
	q.entries = keep
	return out
}

// MaxPriority returns the highest priority currently queued and true, or
// (0, false) when the queue is empty.
func (q *Queue) MaxPriority() (float64, bool) {
	q.flushBatch()
	if len(q.entries) == 0 {
		return 0, false
	}
	best := q.entries[0].it.Rho
	for _, e := range q.entries[1:] {
		if e.it.Rho > best {
			best = e.it.Rho
		}
	}
	return best, true
}

// PopMax removes and returns the entry with the highest priority. It
// panics on an empty queue.
func (q *Queue) PopMax() Item {
	q.flushBatch()
	if len(q.entries) == 0 {
		panic("sampling: PopMax on empty queue")
	}
	best := 0
	for i := range q.entries[1:] {
		if q.entries[i+1].it.Rho > q.entries[best].it.Rho {
			best = i + 1
		}
	}
	it := q.entries[best].it
	q.entries = append(q.entries[:best], q.entries[best+1:]...)
	return it
}

// Len returns the number of queued rows (buffered dominance counts are
// applied first so the answer reflects all arrivals).
func (q *Queue) Len() int {
	q.flushBatch()
	return len(q.entries)
}

// SpaceWords returns the queue's storage cost in words (each entry: row +
// priority + timestamp + counter).
func (q *Queue) SpaceWords(d int) int64 {
	return int64(len(q.entries)) * int64(d+3)
}
