// Package trace provides span-based causal tracing of protocol activity:
// a row's journey from site ingest through bucket maintenance, message
// send, coordinator apply and sketch query, stitched together across
// goroutines (and network connections) by trace/span IDs.
//
// The design follows the same constraints as package obs:
//
//  1. Disabled tracing must cost one nil-check per hook site. A nil
//     *Tracer is valid and inert, and so is the zero Span, so producers
//     guard with `if tr != nil` (or nothing at all — every method
//     tolerates its zero receiver).
//  2. Sampling is head-based: the decision is taken once at the trace
//     root (Start) and inherited by every child span, including remote
//     ones — a sampled site ingest yields a sampled coordinator apply.
//     The default is 1-in-SampleEvery; 0 disables.
//  3. Completed spans go to a bounded lock-free ring (Ring) shared by any
//     number of tracers; old spans are overwritten, never blocked on.
//  4. Standard library only.
//
// Concurrency: a Ring is safe for any number of concurrent tracers and
// readers. A Tracer's sampling counter is atomic, but its current-span
// chain (the implicit parent for Child and Instant) is not — each
// ingesting goroutine must own its own Tracer, exactly like the sink
// fields elsewhere in the repository. Linked spans (StartLinked) do not
// touch the chain and may be recorded from any goroutine.
package trace

import (
	"sync/atomic"
	"time"
)

// Op names the protocol operation a span covers.
type Op uint8

// The span vocabulary, covering the causal chain the protocols execute.
const (
	// OpIngest is one row entering a site (the usual trace root).
	OpIngest Op = iota
	// OpBucketCreate is a sliding-window histogram opening a bucket.
	OpBucketCreate
	// OpBucketMerge is a histogram compaction pass absorbing buckets.
	OpBucketMerge
	// OpBucketExpire is buckets sliding out of the window.
	OpBucketExpire
	// OpSend is a message leaving a site toward the coordinator.
	OpSend
	// OpRecv is a coordinator→site message in the simulated fabric.
	OpRecv
	// OpApply is the coordinator folding one message into its state.
	OpApply
	// OpQuery is a coordinator sketch (or estimate) query.
	OpQuery

	numOps = iota
)

var opNames = [...]string{
	OpIngest:       "ingest",
	OpBucketCreate: "bucket_create",
	OpBucketMerge:  "bucket_merge",
	OpBucketExpire: "bucket_expire",
	OpSend:         "send",
	OpRecv:         "recv",
	OpApply:        "apply",
	OpQuery:        "query",
}

// String returns the op's snake_case name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// ids allocates span identifiers process-wide; 0 means "none", so the
// first allocated id is 1.
var ids atomic.Uint64

func nextID() uint64 { return ids.Add(1) }

// Context is the wire form of a span: enough to continue its trace on
// the far side of a connection. The zero Context means "untraced".
type Context struct {
	// Trace identifies the whole causal chain (the root span's ID).
	Trace uint64
	// Span is the sending span, i.e. the remote child's parent.
	Span uint64
}

// Valid reports whether the context belongs to a sampled trace.
func (c Context) Valid() bool { return c.Trace != 0 }

// SpanRec is one completed (or instant) span as stored in the ring and
// exported to Chrome trace JSON.
type SpanRec struct {
	// Trace is the root span's ID, shared by the whole causal chain.
	Trace uint64
	// ID is this span's unique identifier.
	ID uint64
	// Parent is the parent span's ID (0 for roots).
	Parent uint64
	// Op is the operation covered.
	Op Op
	// Site is the site index the span concerns, -1 for the coordinator.
	Site int
	// T is the stream timestamp involved, 0 when not applicable.
	T int64
	// N is a generic count (buckets merged, words sent).
	N int64
	// StartNs is the wall-clock start in Unix nanoseconds.
	StartNs int64
	// DurNs is the span duration in nanoseconds.
	DurNs int64
	// Instant marks a zero-duration point event (bucket lifecycle).
	Instant bool
}

// Ring is a bounded lock-free buffer of completed spans. Writers claim
// slots with one atomic add and publish with one atomic pointer store;
// when full, new spans overwrite the oldest. Multiple tracers may share
// one ring, and Snapshot may run concurrently with writers.
type Ring struct {
	slots []atomic.Pointer[SpanRec]
	mask  uint64
	head  atomic.Uint64
}

// DefaultRingSize is the span capacity used when NewRing is given n ≤ 0.
const DefaultRingSize = 4096

// NewRing returns a ring holding the most recent n completed spans
// (rounded up to a power of two; n ≤ 0 means DefaultRingSize).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &Ring{slots: make([]atomic.Pointer[SpanRec], size), mask: uint64(size - 1)}
}

// Cap returns the ring's span capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Recorded returns how many spans have ever been pushed (spans older
// than Cap have been overwritten).
func (r *Ring) Recorded() int64 { return int64(r.head.Load()) }

func (r *Ring) push(s *SpanRec) {
	i := r.head.Add(1) - 1
	r.slots[i&r.mask].Store(s)
}

// Snapshot returns the retained spans ordered by start time. It is safe
// to call while tracers record; a span being overwritten concurrently
// appears as either its old or its new value, never as a torn record.
func (r *Ring) Snapshot() []SpanRec {
	out := make([]SpanRec, 0, len(r.slots))
	for i := range r.slots {
		if p := r.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	// Insertion sort by start time: snapshots are small and mostly
	// ordered already (slots fill in claim order).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].StartNs > out[j].StartNs; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Tracer makes sampling decisions and records spans into a shared Ring.
// The zero Tracer and the nil Tracer are inert.
type Tracer struct {
	ring *Ring
	// every is the head-sampling rate: one trace per every roots (0 =
	// off, 1 = every root).
	every uint32
	tick  atomic.Uint32
	// cur is the innermost open span — the implicit parent for Child and
	// Instant. Owned by the tracer's single ingesting goroutine.
	cur *SpanRec
}

// New returns a tracer recording 1-in-every root traces into ring
// (every = 0 disables sampling; every = 1 traces everything).
func New(ring *Ring, every int) *Tracer {
	if every < 0 {
		every = 0
	}
	return &Tracer{ring: ring, every: uint32(every)}
}

// Enabled reports whether the tracer can ever record a span.
func (t *Tracer) Enabled() bool { return t != nil && t.every != 0 && t.ring != nil }

// Span is a live handle on an open span. The zero Span (and any span of
// an unsampled trace) is inert: all methods are no-ops and Context
// returns the zero Context.
type Span struct {
	t *Tracer
	// rec is the record under construction; parent is the previously open
	// record, restored as the tracer's current span on End.
	rec, parent *SpanRec
}

// Sampled reports whether the span is actually being recorded.
func (s Span) Sampled() bool { return s.rec != nil }

// Start opens a root span, taking the head-based sampling decision for
// the whole trace. Unsampled roots cost one atomic add.
func (t *Tracer) Start(op Op, site int, streamT int64) Span {
	if t == nil || t.every == 0 || t.ring == nil {
		return Span{}
	}
	if n := t.tick.Add(1); t.every > 1 && n%t.every != 0 {
		return Span{}
	}
	id := nextID()
	rec := &SpanRec{
		Trace:   id,
		ID:      id,
		Op:      op,
		Site:    site,
		T:       streamT,
		StartNs: time.Now().UnixNano(),
	}
	prev := t.cur
	t.cur = rec
	return Span{t: t, rec: rec, parent: prev}
}

// StartDetached opens a sampled root span without touching the tracer's
// current-span chain, so it is safe from any goroutine — the coordinator
// uses it for query spans, which may race with connection handlers.
// Detached spans cannot have children via Child/Instant.
func (t *Tracer) StartDetached(op Op, site int, streamT int64) Span {
	if t == nil || t.every == 0 || t.ring == nil {
		return Span{}
	}
	if n := t.tick.Add(1); t.every > 1 && n%t.every != 0 {
		return Span{}
	}
	id := nextID()
	return Span{t: t, rec: &SpanRec{
		Trace:   id,
		ID:      id,
		Op:      op,
		Site:    site,
		T:       streamT,
		StartNs: time.Now().UnixNano(),
	}}
}

// StartLinked opens a span continuing a remote trace (e.g. a coordinator
// apply under a site's send span). The sampling decision was taken at the
// remote root: an invalid context yields an inert span. StartLinked does
// not alter the tracer's current-span chain, so it is safe from any
// goroutine.
func (t *Tracer) StartLinked(ctx Context, op Op, site int, streamT int64) Span {
	if t == nil || t.ring == nil || !ctx.Valid() {
		return Span{}
	}
	rec := &SpanRec{
		Trace:   ctx.Trace,
		ID:      nextID(),
		Parent:  ctx.Span,
		Op:      op,
		Site:    site,
		T:       streamT,
		StartNs: time.Now().UnixNano(),
	}
	return Span{t: t, rec: rec}
}

// Child opens a span under the tracer's innermost open span. Inert when
// no sampled span is open.
func (t *Tracer) Child(op Op, site int, streamT int64) Span {
	if t == nil || t.cur == nil {
		return Span{}
	}
	rec := &SpanRec{
		Trace:   t.cur.Trace,
		ID:      nextID(),
		Parent:  t.cur.ID,
		Op:      op,
		Site:    site,
		T:       streamT,
		StartNs: time.Now().UnixNano(),
	}
	prev := t.cur
	t.cur = rec
	return Span{t: t, rec: rec, parent: prev}
}

// Instant records a zero-duration child event under the innermost open
// span (bucket lifecycle events during an ingest). One nil-check when no
// span is open.
func (t *Tracer) Instant(op Op, site int, streamT int64, n int64) {
	if t == nil || t.cur == nil {
		return
	}
	t.ring.push(&SpanRec{
		Trace:   t.cur.Trace,
		ID:      nextID(),
		Parent:  t.cur.ID,
		Op:      op,
		Site:    site,
		T:       streamT,
		N:       n,
		StartNs: time.Now().UnixNano(),
		Instant: true,
	})
}

// SetN sets the span's generic count (words sent, buckets touched).
func (s Span) SetN(n int64) {
	if s.rec != nil {
		s.rec.N = n
	}
}

// Context returns the span's wire context for propagation in messages.
func (s Span) Context() Context {
	if s.rec == nil {
		return Context{}
	}
	return Context{Trace: s.rec.Trace, Span: s.rec.ID}
}

// End closes the span and publishes it to the ring. For spans opened with
// Start or Child it also pops the tracer's current-span chain; End must
// therefore be called in LIFO order on those (defer does this naturally).
// Linked spans (StartLinked) never touch the chain.
func (s Span) End() {
	if s.rec == nil {
		return
	}
	s.rec.DurNs = time.Now().UnixNano() - s.rec.StartNs
	if s.t != nil {
		if s.t.cur == s.rec {
			s.t.cur = s.parent
		}
		s.t.ring.push(s.rec)
	}
}
