package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Chrome trace-event export: the ring's spans rendered in the Trace Event
// Format's JSON-object form ({"traceEvents":[...]}), loadable in Perfetto
// (https://ui.perfetto.dev) and chrome://tracing.
//
// Mapping: each site becomes a process (pid = site+1; the coordinator,
// site -1, is pid 0) so the per-site timelines sit side by side; spans
// are "X" (complete) events, instants are "i" events; trace/span/parent
// IDs and the stream timestamp ride in args, so a chain can be followed
// by filtering on args.trace.

// chromeEvent is one Trace Event Format record.
type chromeEvent struct {
	Name  string  `json:"name"`
	Cat   string  `json:"cat,omitempty"`
	Ph    string  `json:"ph"`
	Ts    float64 `json:"ts"`
	Dur   float64 `json:"dur,omitempty"`
	Pid   int     `json:"pid"`
	Tid   int     `json:"tid"`
	Scope string  `json:"s,omitempty"`
	Args  any     `json:"args,omitempty"`
}

type chromeSpanArgs struct {
	Trace  string `json:"trace"`
	Span   string `json:"span"`
	Parent string `json:"parent,omitempty"`
	T      int64  `json:"t,omitempty"`
	N      int64  `json:"n,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// pid maps a span's site to a Chrome process id (coordinator → 0).
func pid(site int) int {
	if site < 0 {
		return 0
	}
	return site + 1
}

// ChromeTrace renders the ring's current spans as Chrome trace JSON.
func (r *Ring) ChromeTrace() ([]byte, error) {
	spans := r.Snapshot()
	events := make([]chromeEvent, 0, len(spans)+8)
	seen := map[int]bool{}
	for _, s := range spans {
		p := pid(s.Site)
		if !seen[p] {
			seen[p] = true
			name := "coordinator"
			if s.Site >= 0 {
				name = fmt.Sprintf("site %d", s.Site)
			}
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", Pid: p, Tid: 0,
				Args: map[string]string{"name": name},
			})
		}
		ev := chromeEvent{
			Name: s.Op.String(),
			Cat:  "protocol",
			Ph:   "X",
			Ts:   float64(s.StartNs) / 1e3,
			Dur:  float64(s.DurNs) / 1e3,
			Pid:  p,
			Tid:  1,
			Args: chromeSpanArgs{
				Trace:  strconv.FormatUint(s.Trace, 16),
				Span:   strconv.FormatUint(s.ID, 16),
				Parent: parentHex(s.Parent),
				T:      s.T,
				N:      s.N,
			},
		}
		if s.Instant {
			ev.Ph, ev.Dur, ev.Scope = "i", 0, "t"
		}
		events = append(events, ev)
	}
	return json.Marshal(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ns"})
}

func parentHex(p uint64) string {
	if p == 0 {
		return ""
	}
	return strconv.FormatUint(p, 16)
}

// Handler serves the ring as Chrome trace JSON — the /debug/trace
// endpoint. Save the response to a file and open it in Perfetto.
func (r *Ring) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		buf, err := r.ChromeTrace()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		_, _ = w.Write(buf)
	})
}
