package trace

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestNilAndZeroAreInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(OpIngest, 0, 1)
	if sp.Sampled() {
		t.Fatal("nil tracer produced a sampled span")
	}
	sp.SetN(3)
	sp.End()
	tr.Instant(OpBucketCreate, 0, 1, 1)
	if c := sp.Context(); c.Valid() {
		t.Fatal("inert span has a valid context")
	}
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}

	// Rate 0 = off.
	off := New(NewRing(8), 0)
	if off.Enabled() {
		t.Fatal("rate-0 tracer reports enabled")
	}
	if off.Start(OpIngest, 0, 1).Sampled() {
		t.Fatal("rate-0 tracer sampled a root")
	}
}

func TestHeadSamplingRate(t *testing.T) {
	ring := NewRing(1024)
	tr := New(ring, 4)
	sampled := 0
	for i := 0; i < 100; i++ {
		sp := tr.Start(OpIngest, 0, int64(i))
		if sp.Sampled() {
			sampled++
		}
		sp.End()
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 roots at 1-in-4", sampled)
	}
	if got := len(ring.Snapshot()); got != 25 {
		t.Fatalf("ring holds %d spans, want 25", got)
	}
}

func TestChildAndInstantNesting(t *testing.T) {
	ring := NewRing(64)
	tr := New(ring, 1)

	root := tr.Start(OpIngest, 2, 10)
	tr.Instant(OpBucketCreate, 2, 10, 1)
	child := tr.Child(OpSend, 2, 10)
	child.SetN(7)
	ctx := child.Context()
	child.End()
	tr.Instant(OpBucketMerge, 2, 10, 3)
	root.End()

	if !ctx.Valid() {
		t.Fatal("sampled child has invalid context")
	}
	spans := ring.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byOp := map[Op]SpanRec{}
	for _, s := range spans {
		byOp[s.Op] = s
	}
	rootRec := byOp[OpIngest]
	if rootRec.Parent != 0 || rootRec.Trace != rootRec.ID {
		t.Fatalf("bad root: %+v", rootRec)
	}
	send := byOp[OpSend]
	if send.Parent != rootRec.ID || send.Trace != rootRec.Trace || send.N != 7 {
		t.Fatalf("bad send child: %+v", send)
	}
	if ctx.Trace != rootRec.Trace || ctx.Span != send.ID {
		t.Fatalf("context %+v does not match send span %+v", ctx, send)
	}
	// The merge instant fired after the child closed, so its parent is
	// the root again (the chain popped).
	merge := byOp[OpBucketMerge]
	if merge.Parent != rootRec.ID || !merge.Instant {
		t.Fatalf("bad merge instant: %+v", merge)
	}
	create := byOp[OpBucketCreate]
	if create.Parent != rootRec.ID || create.N != 1 {
		t.Fatalf("bad create instant: %+v", create)
	}

	// After the root ends, instants are inert again.
	tr.Instant(OpBucketExpire, 2, 11, 1)
	if got := len(ring.Snapshot()); got != 4 {
		t.Fatalf("instant recorded outside any span (%d spans)", got)
	}
}

func TestStartLinkedContinuesRemoteTrace(t *testing.T) {
	ring := NewRing(64)
	site := New(ring, 1)
	coord := New(ring, 1)

	root := site.Start(OpIngest, 0, 5)
	send := site.Child(OpSend, 0, 5)
	ctx := send.Context()
	send.End()
	root.End()

	apply := coord.StartLinked(ctx, OpApply, 0, 5)
	if !apply.Sampled() {
		t.Fatal("linked span of a sampled trace not sampled")
	}
	apply.End()

	// An invalid (untraced) context stays untraced.
	if coord.StartLinked(Context{}, OpApply, 0, 5).Sampled() {
		t.Fatal("linked span of an untraced message was sampled")
	}

	spans := ring.Snapshot()
	var applyRec, sendRec, rootRec *SpanRec
	for i := range spans {
		switch spans[i].Op {
		case OpApply:
			applyRec = &spans[i]
		case OpSend:
			sendRec = &spans[i]
		case OpIngest:
			rootRec = &spans[i]
		}
	}
	if applyRec == nil || sendRec == nil || rootRec == nil {
		t.Fatalf("missing spans: %+v", spans)
	}
	if applyRec.Trace != rootRec.Trace || applyRec.Parent != sendRec.ID {
		t.Fatalf("apply not linked under send: %+v", applyRec)
	}
}

func TestRingOverwritesWhenFull(t *testing.T) {
	ring := NewRing(4)
	tr := New(ring, 1)
	for i := 0; i < 10; i++ {
		tr.Start(OpIngest, 0, int64(i)).End()
	}
	spans := ring.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for _, s := range spans {
		if s.T < 6 {
			t.Fatalf("old span survived overwrite: %+v", s)
		}
	}
	if ring.Recorded() != 10 {
		t.Fatalf("Recorded = %d, want 10", ring.Recorded())
	}
}

func TestRingConcurrentTracers(t *testing.T) {
	ring := NewRing(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr := New(ring, 1)
			for i := 0; i < 500; i++ {
				sp := tr.Start(OpIngest, g, int64(i))
				tr.Instant(OpBucketCreate, g, int64(i), 1)
				sp.End()
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			ring.Snapshot() // must not race with writers
		}
	}()
	wg.Wait()
	<-done
	if got := len(ring.Snapshot()); got != 256 {
		t.Fatalf("full ring snapshot has %d spans, want 256", got)
	}
}

// TestChromeTraceFormat pins the export to the Chrome trace-event JSON
// contract: an object with a traceEvents array whose members carry name,
// ph, ts, pid and tid, with X events carrying durations and i events a
// scope.
func TestChromeTraceFormat(t *testing.T) {
	ring := NewRing(64)
	tr := New(ring, 1)
	root := tr.Start(OpIngest, 1, 42)
	tr.Instant(OpBucketCreate, 1, 42, 1)
	send := tr.Child(OpSend, 1, 42)
	ctx := send.Context()
	send.End()
	root.End()
	New(ring, 1).StartLinked(ctx, OpApply, -1, 42).End()

	buf, err := ring.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	phs := map[string]int{}
	for _, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event missing %q: %v", key, ev)
			}
		}
		ph := ev["ph"].(string)
		phs[ph]++
		switch ph {
		case "X":
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("X event missing ts: %v", ev)
			}
		case "i":
			if ev["s"] != "t" {
				t.Fatalf("instant event missing scope: %v", ev)
			}
		}
	}
	if phs["X"] < 3 || phs["i"] < 1 || phs["M"] < 2 {
		t.Fatalf("unexpected event mix: %v", phs)
	}

	// The coordinator's apply renders under pid 0, sites under site+1.
	var coordSeen bool
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "apply" && ev["pid"].(float64) == 0 {
			coordSeen = true
		}
	}
	if !coordSeen {
		t.Fatal("apply span not attributed to the coordinator process")
	}
}

func TestHandlerServesJSON(t *testing.T) {
	ring := NewRing(8)
	New(ring, 1).Start(OpQuery, -1, 0).End()
	rec := httptest.NewRecorder()
	ring.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	if OpIngest.String() != "ingest" || OpApply.String() != "apply" {
		t.Fatal("op names broken")
	}
	if Op(200).String() != "unknown" {
		t.Fatal("unknown op name")
	}
}
