package core

import (
	"math"

	"distwindow/internal/protocol"
	"distwindow/mat"
)

// gramSnapshot freezes a one-way tracker's coordinator Gram estimate Ĉ.
// The chat copy is owned by the snapshot and never written again, so all
// methods are safe from any goroutine. Sketch recomputes the PSD square
// root per call (PSDSqrt does not mutate its input); the float-op sequence
// is identical to the live tracker's Sketch at the same point in the apply
// order, so the result is bit-identical to a quiesced query.
type gramSnapshot struct {
	chat *mat.Dense
}

func (g gramSnapshot) Sketch() *mat.Dense       { return mat.PSDSqrt(g.chat) }
func (g gramSnapshot) Gram() (*mat.Dense, bool) { return g.chat, true }

// sketchSnapshot freezes a sampling tracker's materialized sketch B. The
// sampling family keeps no coordinator Gram, so Gram reports absence.
type sketchSnapshot struct {
	b *mat.Dense
}

func (s sketchSnapshot) Sketch() *mat.Dense       { return s.b.Clone() }
func (s sketchSnapshot) Gram() (*mat.Dense, bool) { return nil, false }

// SnapshotCoord freezes Ĉ. Safe from the apply-owning goroutine only.
func (t *DA1) SnapshotCoord() protocol.CoordSnapshot {
	return gramSnapshot{chat: t.chat.Clone()}
}

// SnapshotCoord freezes Ĉ. Safe from the apply-owning goroutine only.
func (t *DA2) SnapshotCoord() protocol.CoordSnapshot {
	return gramSnapshot{chat: t.chat.Clone()}
}

// SnapshotCoord freezes Ĉ decayed to the tracker's clock — the same value
// Sketch/SketchGram would observe — without touching the live chat: the
// decay multiplier is applied to the clone. In parallel mode the facade
// never advances t.now (lanes carry per-site clocks), so the guard leaves
// the clone at chatT, the emission time of the last applied update; the
// snapshot then lags the newest decay tick, which the facade's snapshot
// contract documents.
func (t *DecayTracker) SnapshotCoord() protocol.CoordSnapshot {
	c := t.chat.Clone()
	if t.now > t.chatT {
		mat.ScaleInPlace(c, math.Pow(t.gamma, float64(t.now-t.chatT)))
	}
	return gramSnapshot{chat: c}
}

// SnapshotCoord materializes the current sample set into a frozen sketch.
// Safe from the ingest goroutine only (the sampling family is sequential).
func (s *Sampler) SnapshotCoord() protocol.CoordSnapshot {
	return sketchSnapshot{b: s.Sketch()}
}

// SnapshotCoord materializes the current draws into a frozen sketch.
func (t *WithReplacement) SnapshotCoord() protocol.CoordSnapshot {
	return sketchSnapshot{b: t.Sketch()}
}

var (
	_ protocol.Snapshotter = (*DA1)(nil)
	_ protocol.Snapshotter = (*DA2)(nil)
	_ protocol.Snapshotter = (*DecayTracker)(nil)
	_ protocol.Snapshotter = (*Sampler)(nil)
	_ protocol.Snapshotter = (*WithReplacement)(nil)
)
