package core

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"distwindow/internal/protocol"
	"distwindow/internal/sampling"
	"distwindow/internal/stream"
)

func TestDA1SnapshotRoundTrip(t *testing.T) {
	cfg := Config{D: 4, W: 300, Eps: 0.2, Sites: 2, Seed: 1}
	net := protocol.NewNetwork(2)
	da, _ := NewDA1(cfg, net)
	evs := genEvents(900, 4, 2, 1)
	for _, e := range evs[:600] {
		da.Observe(e.Site, e.Row)
	}
	// Round-trip through gob to prove the snapshot is fully serializable.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(da.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var sn DA1Snapshot
	if err := gob.NewDecoder(&buf).Decode(&sn); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreDA1(sn, protocol.NewNetwork(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evs[600:] {
		da.Observe(e.Site, e.Row)
		restored.Observe(e.Site, e.Row)
	}
	if !da.Sketch().Equal(restored.Sketch()) {
		t.Fatal("restored DA1 diverged")
	}
}

func TestDA2SnapshotRoundTrip(t *testing.T) {
	cfg := Config{D: 4, W: 250, Eps: 0.2, Sites: 2, Seed: 1}
	net := protocol.NewNetwork(2)
	da, _ := NewDA2C(cfg, net) // compress mode exercises e/resid fields
	evs := genEvents(1200, 4, 2, 2)
	for _, e := range evs[:700] {
		da.Observe(e.Site, e.Row)
	}
	restored, err := RestoreDA2(da.Snapshot(), protocol.NewNetwork(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evs[700:] {
		da.Observe(e.Site, e.Row)
		restored.Observe(e.Site, e.Row)
	}
	if !da.Sketch().Equal(restored.Sketch()) {
		t.Fatal("restored DA2-C diverged")
	}
}

func TestSumSnapshotRoundTrip(t *testing.T) {
	cfg := Config{D: 1, W: 200, Eps: 0.1, Sites: 3}
	net := protocol.NewNetwork(3)
	st, _ := NewSumTracker(cfg, net)
	rng := rand.New(rand.NewSource(3))
	for i := int64(1); i <= 800; i++ {
		st.ObserveWeight(rng.Intn(3), i, 1+rng.Float64())
	}
	restored, err := RestoreSum(st.Snapshot(), protocol.NewNetwork(3))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Estimate() != st.Estimate() {
		t.Fatal("restored estimate differs")
	}
	for i := int64(801); i <= 1200; i++ {
		w := 1 + rng.Float64()
		site := rng.Intn(3)
		st.ObserveWeight(site, i, w)
		restored.ObserveWeight(site, i, w)
	}
	if restored.Estimate() != st.Estimate() {
		t.Fatal("restored sum tracker diverged")
	}
}

func TestSnapshotRestoreValidation(t *testing.T) {
	net := protocol.NewNetwork(2)
	if _, err := RestoreDA1(DA1Snapshot{Cfg: Config{D: 0}}, net); err == nil {
		t.Fatal("want error for invalid config")
	}
	cfg := Config{D: 2, W: 10, Eps: 0.1, Sites: 2}
	if _, err := RestoreDA1(DA1Snapshot{Cfg: cfg}, net); err == nil {
		t.Fatal("want error for site-count mismatch")
	}
	if _, err := RestoreDA2(DA2Snapshot{Cfg: cfg}, net); err == nil {
		t.Fatal("want error for DA2 site-count mismatch")
	}
	if _, err := RestoreSum(SumSnapshot{Cfg: cfg}, net); err == nil {
		t.Fatal("want error for SUM site-count mismatch")
	}
}

func TestAccessors(t *testing.T) {
	net := protocol.NewNetwork(2)
	cfg := Config{D: 2, W: 100, Eps: 0.2, Sites: 2, Ell: 8, Seed: 1}
	da1, _ := NewDA1(cfg, net)
	if da1.Name() != "DA1" {
		t.Fatal("DA1 name")
	}
	da2, _ := NewDA2(cfg, net)
	if da2.Name() != "DA2" || da2.Stats() != net.Stats() {
		t.Fatal("DA2 accessors")
	}
	dc, _ := NewDecay(cfg, 0.9, net)
	if dc.Name() != "DECAY" || dc.Stats() != net.Stats() {
		t.Fatal("decay accessors")
	}
	if dc.SketchGram().Rows() != 2 {
		t.Fatal("decay SketchGram shape")
	}
	if da1.SketchGram().Rows() != 2 || da2.SketchGram().Rows() != 2 {
		t.Fatal("SketchGram shape")
	}
	s, _ := NewSampler(cfg, SamplerOpts{Scheme: sampling.Priority{}}, net)
	if s.Ell() != 8 || s.Tau() != 0 || s.Stats() != net.Stats() {
		t.Fatal("sampler accessors")
	}
}

func TestPWRAdvanceTime(t *testing.T) {
	cfg := Config{D: 2, W: 50, Eps: 0.3, Sites: 2, Ell: 4, Seed: 1}
	net := protocol.NewNetwork(2)
	pwr, _ := NewPWR(cfg, net)
	for i := int64(1); i <= 100; i++ {
		pwr.Observe(int(i)%2, stream.Row{T: i, V: []float64{1, float64(i % 5)}})
	}
	pwr.AdvanceTime(10_000)
	if b := pwr.Sketch(); b.Rows() != 0 {
		t.Fatalf("PWR sketch %d rows after full expiry", b.Rows())
	}
	if pwr.Stats() != net.Stats() {
		t.Fatal("PWR stats accessor")
	}
}
