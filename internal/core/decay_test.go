package core

import (
	"math"
	"math/rand"
	"testing"

	"distwindow/internal/protocol"
	"distwindow/internal/stream"
	"distwindow/mat"
)

// decayedGram computes the exact decayed covariance Σ γ^(now−tᵢ)·vᵢᵀvᵢ.
func decayedGram(d int, gamma float64, now int64, rows []stream.Row) (*mat.Dense, float64) {
	g := mat.NewDense(d, d)
	var frob float64
	for _, r := range rows {
		f := math.Pow(gamma, float64(now-r.T))
		mat.OuterAdd(g, r.V, f)
		frob += f * r.NormSq()
	}
	return g, frob
}

func TestDecayTrackerError(t *testing.T) {
	const (
		d     = 6
		gamma = 0.995
		eps   = 0.15
	)
	cfg := Config{D: d, W: 1, Eps: eps, Sites: 3, Seed: 1}
	net := protocol.NewNetwork(3)
	dt, err := NewDecay(cfg, gamma, net)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var rows []stream.Row
	for i := int64(1); i <= 3000; i++ {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		r := stream.Row{T: i, V: v}
		dt.Observe(rng.Intn(3), r)
		rows = append(rows, r)
		if i%500 == 0 {
			truth, frob := decayedGram(d, gamma, i, rows)
			b := dt.Sketch()
			errv := mat.SymSpectralNorm(mat.Sub(truth, mat.Gram(b))) / frob
			if errv > 3*eps {
				t.Fatalf("t=%d: decayed covariance error %v > %v", i, errv, 3*eps)
			}
		}
	}
}

func TestDecayNoTrafficWhileIdle(t *testing.T) {
	cfg := Config{D: 4, W: 1, Eps: 0.2, Sites: 2, Seed: 3}
	net := protocol.NewNetwork(2)
	dt, _ := NewDecay(cfg, 0.99, net)
	rng := rand.New(rand.NewSource(4))
	for i := int64(1); i <= 500; i++ {
		v := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		dt.Observe(int(i)%2, stream.Row{T: i, V: v})
	}
	before := net.Stats().TotalWords()
	// Idle decay: no arrivals, no messages — decay is deterministic.
	for i := int64(501); i <= 5000; i += 100 {
		dt.AdvanceTime(i)
	}
	if after := net.Stats().TotalWords(); after != before {
		t.Fatalf("idle decay caused %d words of traffic", after-before)
	}
}

func TestDecaySketchShrinksOverTime(t *testing.T) {
	cfg := Config{D: 3, W: 1, Eps: 0.2, Sites: 1, Seed: 5}
	net := protocol.NewNetwork(1)
	dt, _ := NewDecay(cfg, 0.99, net)
	dt.Observe(0, stream.Row{T: 1, V: []float64{2, 0, 0}})
	m1 := mat.FrobSq(dt.Sketch())
	dt.AdvanceTime(500)
	m2 := mat.FrobSq(dt.Sketch())
	if m2 >= m1/10 {
		t.Fatalf("mass should decay: %v → %v", m1, m2)
	}
}

func TestDecayOldRegimeForgotten(t *testing.T) {
	const d = 4
	cfg := Config{D: d, W: 1, Eps: 0.1, Sites: 2, Seed: 6}
	net := protocol.NewNetwork(2)
	dt, _ := NewDecay(cfg, 0.99, net)
	rng := rand.New(rand.NewSource(7))
	// Regime A on axis 0, then regime B on axis 3.
	for i := int64(1); i <= 600; i++ {
		v := make([]float64, d)
		v[0] = rng.NormFloat64() * 3
		dt.Observe(int(i)%2, stream.Row{T: i, V: v})
	}
	for i := int64(601); i <= 1600; i++ {
		v := make([]float64, d)
		v[3] = rng.NormFloat64() * 3
		dt.Observe(int(i)%2, stream.Row{T: i, V: v})
	}
	g := mat.Gram(dt.Sketch())
	if g.At(0, 0) > 0.05*g.At(3, 3) {
		t.Fatalf("regime A energy %v should have decayed (B: %v)", g.At(0, 0), g.At(3, 3))
	}
}

func TestDecayOneWay(t *testing.T) {
	cfg := Config{D: 3, W: 1, Eps: 0.2, Sites: 2, Seed: 8}
	net := protocol.NewNetwork(2)
	dt, _ := NewDecay(cfg, 0.999, net)
	rng := rand.New(rand.NewSource(9))
	for i := int64(1); i <= 1000; i++ {
		dt.Observe(int(i)%2, stream.Row{T: i, V: []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}})
	}
	if net.Stats().WordsDown != 0 {
		t.Fatal("decay tracker must be one-way")
	}
	if net.Stats().WordsUp == 0 {
		t.Fatal("decay tracker sent nothing")
	}
}

func TestDecayCommunicationSublinear(t *testing.T) {
	cfg := Config{D: 5, W: 1, Eps: 0.15, Sites: 2, Seed: 10}
	net := protocol.NewNetwork(2)
	dt, _ := NewDecay(cfg, 0.999, net)
	rng := rand.New(rand.NewSource(11))
	n := int64(10_000)
	for i := int64(1); i <= n; i++ {
		dt.Observe(int(i)%2, stream.Row{T: i, V: []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}})
	}
	raw := n * protocol.RowWords(5)
	if got := net.Stats().WordsUp; got > raw/5 {
		t.Fatalf("decay used %d words; centralizing costs %d", got, raw)
	}
}

func TestNewDecayValidation(t *testing.T) {
	net := protocol.NewNetwork(1)
	cfg := Config{D: 2, W: 1, Eps: 0.1, Sites: 1}
	for _, g := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewDecay(cfg, g, net); err == nil {
			t.Fatalf("want error for gamma=%v", g)
		}
	}
	if _, err := NewDecay(Config{D: 0, W: 1, Eps: 0.1, Sites: 1}, 0.9, net); err == nil {
		t.Fatal("want error for bad config")
	}
}
