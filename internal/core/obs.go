package core

import (
	"distwindow/internal/obs"
	"distwindow/internal/trace"
)

// SinkSetter is implemented by trackers that can forward bucket lifecycle
// events (and other internal events) to an obs.Sink. Install the sink
// before feeding data; the trackers do not synchronize the field.
type SinkSetter interface {
	SetSink(obs.Sink)
}

// TracerSetter is implemented by trackers that can forward a causal
// tracer into their sites' sliding-window histograms, so bucket
// create/merge/expire instants attach under the facade's ingest spans.
// Install the tracer before feeding data; the field is not synchronized.
type TracerSetter interface {
	SetTracer(*trace.Tracer)
}

// BucketCounter is implemented by trackers whose sites maintain
// exponential-histogram state; LiveBuckets reports the current total
// bucket count across sites — the space metric of the paper's experiments
// in structure units rather than words.
type BucketCounter interface {
	LiveBuckets() int
}

// SetSink forwards bucket lifecycle events from every site's gEH.
func (t *SumTracker) SetSink(s obs.Sink) {
	for i, st := range t.sites {
		st.hist.SetSink(s, i)
	}
}

// SetTracer forwards a causal tracer to every site's gEH.
func (t *SumTracker) SetTracer(tr *trace.Tracer) {
	for i, st := range t.sites {
		st.hist.SetTracer(tr, i)
	}
}

// LiveBuckets returns the total gEH bucket count across sites.
func (t *SumTracker) LiveBuckets() int {
	n := 0
	for _, st := range t.sites {
		n += st.hist.Buckets()
	}
	return n
}

// SetSink forwards bucket lifecycle events from every site's mEH. The
// exact-storage ablation has no histograms, so it emits nothing.
func (t *DA1) SetSink(s obs.Sink) {
	for i, st := range t.sites {
		if st.hist != nil {
			st.hist.SetSink(s, i)
		}
	}
}

// SetTracer forwards a causal tracer to every site's mEH (exact-storage
// ablation sites have none).
func (t *DA1) SetTracer(tr *trace.Tracer) {
	for i, st := range t.sites {
		if st.hist != nil {
			st.hist.SetTracer(tr, i)
		}
	}
}

// LiveBuckets returns the total mEH bucket count across sites. In
// exact-storage mode each retained row counts as one bucket.
func (t *DA1) LiveBuckets() int {
	n := 0
	for _, st := range t.sites {
		if st.hist != nil {
			n += st.hist.Buckets()
		} else if st.win != nil {
			n += st.win.Len()
		}
	}
	return n
}

// SetSink forwards bucket lifecycle events from every site's mass gEH.
func (t *DA2) SetSink(s obs.Sink) {
	for i, st := range t.sites {
		st.mass.SetSink(s, i)
	}
}

// SetTracer forwards a causal tracer to every site's mass gEH.
func (t *DA2) SetTracer(tr *trace.Tracer) {
	for i, st := range t.sites {
		st.mass.SetTracer(tr, i)
	}
}

// LiveBuckets returns the total mass-gEH bucket count across sites.
func (t *DA2) LiveBuckets() int {
	n := 0
	for _, st := range t.sites {
		n += st.mass.Buckets()
	}
	return n
}

// SetSink forwards events from the embedded Frobenius tracker (present for
// the ES and uniform estimators; priority sampling has none).
func (s *Sampler) SetSink(sink obs.Sink) {
	if s.sum != nil {
		s.sum.SetSink(sink)
	}
}

// SetTracer forwards a causal tracer to the embedded Frobenius tracker.
func (s *Sampler) SetTracer(tr *trace.Tracer) {
	if s.sum != nil {
		s.sum.SetTracer(tr)
	}
}

// LiveBuckets returns the embedded Frobenius tracker's bucket count (0
// when the variant has none).
func (s *Sampler) LiveBuckets() int {
	if s.sum == nil {
		return 0
	}
	return s.sum.LiveBuckets()
}

// SetSink forwards events from the shared Frobenius tracker and every
// inner sampler.
func (t *WithReplacement) SetSink(s obs.Sink) {
	t.sum.SetSink(s)
	for _, inner := range t.inst {
		inner.SetSink(s)
	}
}

// LiveBuckets returns the shared Frobenius tracker's bucket count.
func (t *WithReplacement) LiveBuckets() int {
	return t.sum.LiveBuckets()
}

// SetTracer forwards a causal tracer to the shared Frobenius tracker and
// every inner sampler.
func (t *WithReplacement) SetTracer(tr *trace.Tracer) {
	t.sum.SetTracer(tr)
	for _, inner := range t.inst {
		inner.SetTracer(tr)
	}
}
