package core

import (
	"math"

	"distwindow/internal/eh"
	"distwindow/internal/iwmt"
	"distwindow/internal/protocol"
	"distwindow/internal/stream"
	"distwindow/mat"
)

// DA2 is the second deterministic protocol (Algorithm 5), built on the
// forward–backward framework with IWMT as a black box. Time is divided
// into windows (kW, (k+1)W]. Each site runs:
//
//   - IWMT_a: forward-tracks arrivals, emitting significant directions
//     that the coordinator adds to Ĉ (flag +1). At every window boundary
//     the instance is flushed and reset so no residue crosses windows.
//   - Backward tracking: every message sent during window k is recorded in
//     a ledger; when a ledger message expires (its timestamp leaves the
//     window) the site ships it with flag −1 and the coordinator subtracts
//     it. Because exactly the rows that were added are later removed, no
//     approximation residue accumulates across windows.
//   - Optionally (Compress=true, "DA2-C"): the ledger of a closed window
//     is first re-sketched in reverse time order through IWMT_c (threshold
//     growing with the mass seen, exactly the paper's ε·‖Â_e(tᵢ+W)‖_F²
//     rule), and the resulting queue Q is forward-tracked by IWMT_e as its
//     entries expire. This batches expiry traffic; at drain time the site
//     ships the small PSD residual the two FD re-sketches shaved off, so
//     cancellation is restored before the next window.
//
// All communication is one-way (sites → coordinator), O(md/ε·log NR)
// words per window. The site never materializes its window: it stores the
// ledger (O(d/ε·log NR) words), a gEH for ‖A_w⁽ʲ⁾‖_F², and the IWMT
// buffers.
type DA2 struct {
	cfg      Config
	net      *protocol.Network
	compress bool
	sites    []*da2Site
	chat     *mat.Dense
	now      int64
	// applyInline folds an emitted update straight into chat — the
	// sequential path's emit, allocated once.
	applyInline protocol.Emit
}

type da2Site struct {
	parent *DA2
	// idx is the site's index, for per-site communication attribution.
	idx int
	// a is IWMT_a; ledger records every emitted message of the current
	// window for backward tracking.
	a      *iwmt.Tracker
	ledger []iwmt.Msg
	// q is the expiry queue of the previous window (ascending timestamps).
	q []iwmt.Msg
	// e is IWMT_e (compress mode only); resid accumulates what was added
	// for the previous window minus what has been subtracted so far; ws is
	// the persistent workspace for the residual eigendecompositions.
	e     *iwmt.Tracker
	resid *mat.Dense
	ws    *mat.Workspace
	// mass tracks the site's window Frobenius mass (gEH).
	mass *eh.Histogram
	// boundary is the end of the current window, the next multiple of W.
	boundary int64
	now      int64
}

var _ protocol.OneWay = (*DA2)(nil)

// NewDA2 builds the default (ledger-replay) DA2.
func NewDA2(cfg Config, net *protocol.Network) (*DA2, error) {
	return newDA2(cfg, net, false)
}

// NewDA2C builds the compressed variant that re-sketches expiry traffic
// through IWMT_c/IWMT_e as in the paper's Algorithm 5.
func NewDA2C(cfg Config, net *protocol.Network) (*DA2, error) {
	return newDA2(cfg, net, true)
}

func newDA2(cfg Config, net *protocol.Network, compress bool) (*DA2, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &DA2{cfg: cfg, net: net, compress: compress, chat: mat.NewDense(cfg.D, cfg.D)}
	t.applyInline = func(scale float64, v []float64) { mat.OuterAdd(t.chat, v, scale) }
	t.sites = make([]*da2Site, cfg.Sites)
	for i := range t.sites {
		s := &da2Site{parent: t, idx: i, mass: eh.New(cfg.W, cfg.Eps/2), boundary: cfg.W}
		s.a = iwmt.New(t.fdEll(), cfg.D, func() float64 { return cfg.Eps * s.mass.Query() })
		t.sites[i] = s
	}
	return t, nil
}

// fdEll is the FD buffer size for the IWMT instances: ⌈1/ε⌉ keeps the
// sketch-drift term at ε·F².
func (t *DA2) fdEll() int { return int(math.Ceil(1 / t.cfg.Eps)) }

// Name returns "DA2" or "DA2-C".
func (t *DA2) Name() string {
	if t.compress {
		return "DA2-C"
	}
	return "DA2"
}

// Observe feeds a row to a site, folding its messages into Ĉ inline.
func (t *DA2) Observe(site int, r stream.Row) {
	t.now = r.T
	t.ObserveSite(site, r, t.applyInline)
}

// ObserveSite is the site-local half of Observe: boundary crossings,
// expiry, gEH and IWMT upkeep for one site, with the resulting (±)
// messages emitted instead of applied. Calls for distinct sites may run
// concurrently; calls for one site must be serialized with non-decreasing
// timestamps.
func (t *DA2) ObserveSite(site int, r stream.Row, emit protocol.Emit) {
	s := t.sites[site]
	s.advance(r.T, emit)
	if w := r.NormSq(); w > 0 {
		s.mass.Insert(r.T, w)
		for _, m := range s.a.Input(r.T, r.V) {
			t.sendA(s, m, emit)
		}
	}
	t.net.SampleSiteSpace(s.spaceWords(t.cfg.D))
	t.net.SampleCoordSpace(int64(t.cfg.D * t.cfg.D))
}

// AdvanceTime moves every site's clock forward.
func (t *DA2) AdvanceTime(now int64) {
	if now <= t.now {
		return
	}
	t.now = now
	for i := range t.sites {
		t.AdvanceSite(i, now, t.applyInline)
	}
}

// AdvanceSite is the site-local half of AdvanceTime for one site.
func (t *DA2) AdvanceSite(site int, now int64, emit protocol.Emit) {
	t.sites[site].advance(now, emit)
}

// Apply folds one emitted (±) message into the coordinator's Ĉ. Single
// goroutine, non-decreasing (T, site) order.
func (t *DA2) Apply(u protocol.Update) { mat.OuterAdd(t.chat, u.V, u.Scale) }

// AdvanceCoord is a no-op: DA2's coordinator state is clock-free (expiry
// is driven by the sites' backward tracking).
func (t *DA2) AdvanceCoord(now int64) {}

// sendA ships a (+) message and records it in the ledger.
func (t *DA2) sendA(s *da2Site, m iwmt.Msg, emit protocol.Emit) {
	t.net.UpFrom(s.idx, protocol.DirectionWords(t.cfg.D))
	emit(1, m.V)
	s.ledger = append(s.ledger, m)
}

// sendE ships a (−) message. In compress mode the site nets it against the
// residual of the window currently draining.
func (t *DA2) sendE(s *da2Site, v []float64, emit protocol.Emit) {
	t.net.UpFrom(s.idx, protocol.DirectionWords(t.cfg.D))
	emit(-1, v)
	if s.resid != nil {
		mat.OuterAdd(s.resid, v, -1)
	}
}

// advance processes boundary crossings and expirations at one site.
func (s *da2Site) advance(now int64, emit protocol.Emit) {
	if now <= s.now && now < s.boundary {
		s.processExpiry(now, emit)
		return
	}
	s.now = now
	s.mass.Advance(now)
	t := s.parent
	for now >= s.boundary {
		b := s.boundary
		// Everything from the closing window that must eventually be
		// subtracted expires by b+W; drain the old queue first.
		s.processExpiry(b, emit)
		// Flush IWMT_a so the ledger covers the whole closed window.
		for _, m := range s.a.Flush(b) {
			t.sendA(s, m, emit)
		}
		s.startBackward(b, emit)
		s.boundary += t.cfg.W
	}
	s.processExpiry(now, emit)
}

// startBackward converts the closed window's ledger into the expiry queue.
func (s *da2Site) startBackward(b int64, emit protocol.Emit) {
	t := s.parent
	if s.e != nil {
		// Defensive: the previous queue drains by its own boundary (every
		// entry's timestamp is at least W old by then), so processExpiry(b)
		// above already flushed IWMT_e and the residual.
		for _, out := range s.e.Flush(b) {
			t.sendE(s, out.V, emit)
		}
		s.e = nil
		s.drainResidual(emit)
	}
	if len(s.ledger) == 0 {
		s.q = nil
		return
	}
	if !t.compress {
		// Ledger replay: the ledger is already in ascending time order.
		s.q = s.ledger
		s.ledger = nil
		return
	}
	// Compress mode: replay the ledger in reverse through IWMT_c with the
	// paper's growing threshold ε·(mass seen so far in reverse).
	var seen float64
	c := iwmt.New(t.fdEll(), t.cfg.D, func() float64 { return t.cfg.Eps * seen })
	var q []iwmt.Msg
	for i := len(s.ledger) - 1; i >= 0; i-- {
		m := s.ledger[i]
		seen += mat.VecNormSq(m.V)
		q = append(q, c.Input(m.T, m.V)...)
	}
	q = append(q, c.Flush(s.ledger[0].T)...)
	// IWMT_c emitted in descending time; expiry consumes ascending.
	for l, r := 0, len(q)-1; l < r; l, r = l+1, r-1 {
		q[l], q[r] = q[r], q[l]
	}
	s.q = q
	// The residual for this window starts at the Gram of everything that
	// was added for it (the ledger); each (−) message nets against it.
	if s.resid == nil {
		s.resid = mat.NewDense(t.cfg.D, t.cfg.D)
	}
	s.resid.Zero()
	for _, m := range s.ledger {
		mat.OuterAdd(s.resid, m.V, 1)
	}
	s.ledger = nil
	s.e = iwmt.New(t.fdEll(), t.cfg.D, func() float64 { return t.cfg.Eps * s.mass.Query() })
}

// processExpiry feeds expired queue entries to the backward path.
func (s *da2Site) processExpiry(now int64, emit protocol.Emit) {
	t := s.parent
	cut := now - t.cfg.W
	for len(s.q) > 0 && s.q[0].T <= cut {
		m := s.q[0]
		s.q = s.q[1:]
		if s.e == nil {
			// Ledger replay: subtract the exact message.
			t.sendE(s, m.V, emit)
		} else {
			for _, out := range s.e.Input(m.T, m.V) {
				t.sendE(s, out.V, emit)
			}
		}
	}
	if len(s.q) == 0 && s.e != nil {
		// Queue drained: flush IWMT_e and ship the FD-shaved residual so
		// the closed window cancels exactly.
		for _, out := range s.e.Flush(now) {
			t.sendE(s, out.V, emit)
		}
		s.e = nil
		s.drainResidual(emit)
	}
}

// drainResidual ships the PSD mass the compress-mode re-sketches shaved
// off, restoring exact cancellation for the drained window.
func (s *da2Site) drainResidual(emit protocol.Emit) {
	t := s.parent
	if s.resid == nil || mat.FrobSq(s.resid) == 0 {
		return
	}
	if s.ws == nil {
		s.ws = t.cfg.pools.workspace()
	}
	eig := mat.EigSymInto(s.resid, s.ws)
	for i, lam := range eig.Values {
		if lam <= 0 {
			// The residual is PSD up to round-off; skip noise.
			continue
		}
		v := eig.Vectors.Row(i)
		scaled := make([]float64, len(v))
		f := math.Sqrt(lam)
		for j := range v {
			scaled[j] = f * v[j]
		}
		t.sendE(s, scaled, emit)
	}
	s.resid.Zero()
}

// spaceWords estimates the site's storage in words.
func (s *da2Site) spaceWords(d int) int64 {
	w := int64(len(s.ledger)+len(s.q)) * int64(d+1)
	w += s.a.SpaceWords()
	if s.e != nil {
		w += s.e.SpaceWords()
	}
	if s.resid != nil {
		w += int64(d * d)
	}
	w += int64(s.mass.Buckets()) * 3
	return w
}

// Release donates the tracker's pooled storage (the per-site residual
// workspaces) back to the Config.Pools it was built with (a no-op without
// pools). The tracker must not be used afterwards.
func (t *DA2) Release() {
	for _, s := range t.sites {
		t.cfg.pools.WS.Put(s.ws)
		s.ws = nil
	}
}

// Sketch returns B = Σ^{1/2}Vᵀ of the PSD-clipped Ĉ (Algorithm 5, QUERY).
func (t *DA2) Sketch() *mat.Dense { return mat.PSDSqrt(t.chat) }

// SketchGram returns a copy of the coordinator's raw Ĉ ≈ A_wᵀA_w.
func (t *DA2) SketchGram() *mat.Dense { return t.chat.Clone() }

// Stats returns accumulated counters.
func (t *DA2) Stats() protocol.Stats { return t.net.Stats() }
