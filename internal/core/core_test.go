package core

import (
	"math"
	"math/rand"
	"testing"

	"distwindow/internal/protocol"
	"distwindow/internal/sampling"
	"distwindow/internal/stream"
	"distwindow/internal/window"
	"distwindow/mat"
)

// genEvents builds a deterministic multi-site Gaussian stream with one
// arrival per tick.
func genEvents(n, d, sites int, seed int64) []stream.Event {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]stream.Event, n)
	for i := 0; i < n; i++ {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		evs[i] = stream.Event{Site: rng.Intn(sites), Row: stream.Row{T: int64(i + 1), V: v}}
	}
	return evs
}

// genSkewedEvents mixes unit rows with occasional heavy rows (norm ratio
// ≈ scale²·d).
func genSkewedEvents(n, d, sites int, scale float64, seed int64) []stream.Event {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]stream.Event, n)
	for i := 0; i < n; i++ {
		v := make([]float64, d)
		s := 1.0
		if rng.Intn(40) == 0 {
			s = scale
		}
		for j := range v {
			v[j] = s * rng.NormFloat64()
		}
		evs[i] = stream.Event{Site: rng.Intn(sites), Row: stream.Row{T: int64(i + 1), V: v}}
	}
	return evs
}

// drive replays events through a tracker, evaluating the sketch against
// the exact union window every checkEvery events (skipping the cold
// start). It returns the average and maximum observed covariance error.
func drive(t *testing.T, tr protocol.Tracker, evs []stream.Event, w int64, d, checkEvery int) (avg, max float64) {
	t.Helper()
	u := window.NewUnion(w, d)
	var sum float64
	n := 0
	for i, e := range evs {
		tr.Observe(e.Site, e.Row)
		u.Add(e.Row)
		if checkEvery > 0 && i >= checkEvery && (i+1)%checkEvery == 0 {
			err := u.ErrOf(tr.Sketch())
			if math.IsInf(err, 1) || math.IsNaN(err) {
				t.Fatalf("event %d: invalid error %v", i, err)
			}
			sum += err
			n++
			if err > max {
				max = err
			}
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), max
}

// --- SumTracker ---

func TestSumTrackerTracksWindowSum(t *testing.T) {
	cfg := Config{D: 1, W: 500, Eps: 0.1, Sites: 4}
	net := protocol.NewNetwork(4)
	st, err := NewSumTracker(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	type item struct {
		t int64
		w float64
	}
	var items []item
	for i := int64(1); i <= 3000; i++ {
		w := 0.5 + rng.Float64()
		site := rng.Intn(4)
		st.ObserveWeight(site, i, w)
		items = append(items, item{i, w})
		if i%250 == 0 {
			var truth float64
			for _, it := range items {
				if it.t > i-cfg.W {
					truth += it.w
				}
			}
			got := st.Estimate()
			if math.Abs(got-truth)/truth > 2*cfg.Eps {
				t.Fatalf("t=%d: estimate %v vs truth %v", i, got, truth)
			}
		}
	}
}

func TestSumTrackerCommunicationSublinear(t *testing.T) {
	cfg := Config{D: 1, W: 1000, Eps: 0.1, Sites: 2}
	net := protocol.NewNetwork(2)
	st, _ := NewSumTracker(cfg, net)
	n := int64(20000)
	for i := int64(1); i <= n; i++ {
		st.ObserveWeight(int(i)%2, i, 1)
	}
	msgs := net.Stats().MsgsUp
	if msgs > n/10 {
		t.Fatalf("sum tracker sent %d messages for %d items — should be logarithmic per window", msgs, n)
	}
	if msgs == 0 {
		t.Fatal("sum tracker never reported")
	}
}

func TestSumTrackerHandlesExpiryWithoutArrivals(t *testing.T) {
	cfg := Config{D: 1, W: 100, Eps: 0.1, Sites: 1}
	net := protocol.NewNetwork(1)
	st, _ := NewSumTracker(cfg, net)
	for i := int64(1); i <= 50; i++ {
		st.ObserveWeight(0, i, 1)
	}
	st.AdvanceAll(1000) // everything expires
	if est := st.Estimate(); math.Abs(est) > 5 {
		t.Fatalf("estimate %v after full expiry, want ≈0", est)
	}
}

func TestSumTrackerOneWay(t *testing.T) {
	cfg := Config{D: 1, W: 100, Eps: 0.1, Sites: 3}
	net := protocol.NewNetwork(3)
	st, _ := NewSumTracker(cfg, net)
	for i := int64(1); i <= 500; i++ {
		st.ObserveWeight(int(i)%3, i, 1+float64(i%7))
	}
	if net.Stats().WordsDown != 0 {
		t.Fatal("SUM tracking must be one-way (sites → coordinator)")
	}
}

// --- Sampling protocols ---

func newSampler(t *testing.T, cfg Config, opts SamplerOpts) (*Sampler, *protocol.Network) {
	t.Helper()
	net := protocol.NewNetwork(cfg.Sites)
	s, err := NewSampler(cfg, opts, net)
	if err != nil {
		t.Fatal(err)
	}
	return s, net
}

func TestPWORNames(t *testing.T) {
	cases := []struct {
		opts SamplerOpts
		want string
	}{
		{SamplerOpts{Scheme: sampling.Priority{}}, "PWOR"},
		{SamplerOpts{Scheme: sampling.Priority{}, UseAll: true}, "PWOR-ALL"},
		{SamplerOpts{Scheme: sampling.ES{}}, "ESWOR"},
		{SamplerOpts{Scheme: sampling.ES{}, UseAll: true}, "ESWOR-ALL"},
		{SamplerOpts{Scheme: sampling.Priority{}, Exact: true}, "PWOR-simple"},
	}
	cfg := Config{D: 2, W: 100, Eps: 0.2, Sites: 2, Ell: 4}
	for _, c := range cases {
		s, _ := newSampler(t, cfg, c.opts)
		if s.Name() != c.want {
			t.Fatalf("Name = %q, want %q", s.Name(), c.want)
		}
	}
}

func TestPWORCovarianceError(t *testing.T) {
	cfg := Config{D: 8, W: 1500, Eps: 0.2, Sites: 4, Ell: 256, Seed: 7}
	s, _ := newSampler(t, cfg, SamplerOpts{Scheme: sampling.Priority{}})
	evs := genEvents(6000, 8, 4, 11)
	avg, max := drive(t, s, evs, cfg.W, 8, 500)
	// ℓ=256 gives sampling error ≈ √(log ℓ / ℓ) ≈ 0.15; generous cap.
	if avg > 0.35 || max > 0.7 {
		t.Fatalf("PWOR err avg=%v max=%v too large", avg, max)
	}
}

func TestPWORAllAtLeastAsGoodOnAverage(t *testing.T) {
	cfg := Config{D: 8, W: 1500, Eps: 0.2, Sites: 4, Ell: 128, Seed: 3}
	evs := genEvents(6000, 8, 4, 13)
	s1, _ := newSampler(t, cfg, SamplerOpts{Scheme: sampling.Priority{}})
	avg1, _ := drive(t, s1, evs, cfg.W, 8, 500)
	s2, _ := newSampler(t, cfg, SamplerOpts{Scheme: sampling.Priority{}, UseAll: true})
	avg2, _ := drive(t, s2, evs, cfg.W, 8, 500)
	// -ALL uses strictly more samples; allow slack for randomness.
	if avg2 > avg1*1.5+0.05 {
		t.Fatalf("PWOR-ALL avg err %v ≫ PWOR %v", avg2, avg1)
	}
}

func TestESWORCovarianceError(t *testing.T) {
	cfg := Config{D: 8, W: 1500, Eps: 0.2, Sites: 4, Ell: 256, Seed: 9}
	s, _ := newSampler(t, cfg, SamplerOpts{Scheme: sampling.ES{}})
	evs := genEvents(6000, 8, 4, 17)
	avg, _ := drive(t, s, evs, cfg.W, 8, 500)
	if avg > 0.35 {
		t.Fatalf("ESWOR avg err %v too large", avg)
	}
}

func TestPWORSkewedData(t *testing.T) {
	// Heavy rows must be captured — the whole point of weighted sampling.
	cfg := Config{D: 6, W: 2000, Eps: 0.2, Sites: 3, Ell: 128, Seed: 4}
	s, _ := newSampler(t, cfg, SamplerOpts{Scheme: sampling.Priority{}})
	evs := genSkewedEvents(6000, 6, 3, 20, 19)
	avg, _ := drive(t, s, evs, cfg.W, 6, 500)
	if avg > 0.4 {
		t.Fatalf("PWOR on skewed data avg err %v", avg)
	}
}

func TestLazySampleSetBounds(t *testing.T) {
	cfg := Config{D: 4, W: 800, Eps: 0.2, Sites: 3, Ell: 32, Seed: 5}
	s, _ := newSampler(t, cfg, SamplerOpts{Scheme: sampling.Priority{}})
	evs := genEvents(5000, 4, 3, 23)
	for _, e := range evs {
		s.Observe(e.Site, e.Row)
		nS, _ := s.SampleCount()
		if nS > 4*32 {
			t.Fatalf("|S| = %d exceeds 4ℓ", nS)
		}
	}
	nS, _ := s.SampleCount()
	if nS < 32 {
		t.Fatalf("|S| = %d below ℓ at steady state", nS)
	}
}

func TestExactPolicyKeepsExactlyEll(t *testing.T) {
	cfg := Config{D: 4, W: 800, Eps: 0.2, Sites: 3, Ell: 16, Seed: 6}
	s, _ := newSampler(t, cfg, SamplerOpts{Scheme: sampling.Priority{}, Exact: true})
	evs := genEvents(3000, 4, 3, 29)
	for i, e := range evs {
		s.Observe(e.Site, e.Row)
		if nS, _ := s.SampleCount(); i > 100 && nS != 16 {
			t.Fatalf("event %d: |S| = %d, want exactly ℓ=16", i, nS)
		}
	}
}

func TestExactPolicyMatchesLazyError(t *testing.T) {
	cfg := Config{D: 6, W: 1000, Eps: 0.2, Sites: 3, Ell: 64, Seed: 8}
	evs := genEvents(4000, 6, 3, 31)
	se, _ := newSampler(t, cfg, SamplerOpts{Scheme: sampling.Priority{}, Exact: true})
	avgE, _ := drive(t, se, evs, cfg.W, 6, 400)
	sl, _ := newSampler(t, cfg, SamplerOpts{Scheme: sampling.Priority{}})
	avgL, _ := drive(t, sl, evs, cfg.W, 6, 400)
	if avgE > 0.5 || avgL > 0.5 {
		t.Fatalf("exact %v / lazy %v errors too large", avgE, avgL)
	}
}

func TestLazyFewerBroadcastsThanExact(t *testing.T) {
	cfg := Config{D: 4, W: 500, Eps: 0.2, Sites: 4, Ell: 32, Seed: 10}
	evs := genEvents(4000, 4, 4, 37)
	se, netE := newSampler(t, cfg, SamplerOpts{Scheme: sampling.Priority{}, Exact: true})
	drive(t, se, evs, cfg.W, 4, 0)
	sl, netL := newSampler(t, cfg, SamplerOpts{Scheme: sampling.Priority{}})
	drive(t, sl, evs, cfg.W, 4, 0)
	if netL.Stats().Broadcasts >= netE.Stats().Broadcasts {
		t.Fatalf("lazy broadcasts %d ≥ exact %d — lazy-broadcast must reduce threshold updates",
			netL.Stats().Broadcasts, netE.Stats().Broadcasts)
	}
}

func TestSamplerExhaustiveSmallPopulation(t *testing.T) {
	// Fewer active rows than ℓ: the sketch must be exact.
	cfg := Config{D: 3, W: 10_000, Eps: 0.2, Sites: 2, Ell: 64, Seed: 11}
	s, _ := newSampler(t, cfg, SamplerOpts{Scheme: sampling.Priority{}})
	u := window.NewUnion(cfg.W, 3)
	evs := genEvents(30, 3, 2, 41)
	for _, e := range evs {
		s.Observe(e.Site, e.Row)
		u.Add(e.Row)
	}
	if err := u.ErrOf(s.Sketch()); err > 1e-9 {
		t.Fatalf("exhaustive sample should be exact, err=%v", err)
	}
}

func TestSamplerDeterministicWithSeed(t *testing.T) {
	cfg := Config{D: 4, W: 500, Eps: 0.2, Sites: 2, Ell: 16, Seed: 42}
	evs := genEvents(1000, 4, 2, 43)
	s1, n1 := newSampler(t, cfg, SamplerOpts{Scheme: sampling.Priority{}})
	drive(t, s1, evs, cfg.W, 4, 0)
	s2, n2 := newSampler(t, cfg, SamplerOpts{Scheme: sampling.Priority{}})
	drive(t, s2, evs, cfg.W, 4, 0)
	if n1.Stats() != n2.Stats() {
		t.Fatal("same seed must reproduce identical runs")
	}
	if !s1.Sketch().Equal(s2.Sketch()) {
		t.Fatal("same seed must reproduce identical sketches")
	}
}

func TestSamplerSiteSpaceSublinear(t *testing.T) {
	cfg := Config{D: 4, W: 4000, Eps: 0.2, Sites: 2, Ell: 16, Seed: 12}
	s, net := newSampler(t, cfg, SamplerOpts{Scheme: sampling.Priority{}})
	evs := genEvents(8000, 4, 2, 47)
	drive(t, s, evs, cfg.W, 4, 0)
	// A site holds O(ℓ log(N/ℓ)) rows ≈ 16·8 ≈ 128 rows (≈900 words);
	// storing its whole window share (2000 rows) would be ≈14000 words.
	if net.Stats().MaxSiteWords > 5000 {
		t.Fatalf("site space %d words — not sublinear in window size", net.Stats().MaxSiteWords)
	}
}

func TestSamplerAdvanceTimeExpiresEverything(t *testing.T) {
	cfg := Config{D: 3, W: 100, Eps: 0.2, Sites: 2, Ell: 8, Seed: 13}
	s, _ := newSampler(t, cfg, SamplerOpts{Scheme: sampling.Priority{}})
	evs := genEvents(200, 3, 2, 53)
	for _, e := range evs {
		s.Observe(e.Site, e.Row)
	}
	s.AdvanceTime(10_000)
	if b := s.Sketch(); b.Rows() != 0 {
		t.Fatalf("sketch has %d rows after total expiry", b.Rows())
	}
}

func TestNewSamplerValidation(t *testing.T) {
	net := protocol.NewNetwork(2)
	if _, err := NewSampler(Config{D: 0, W: 1, Eps: 0.1, Sites: 2}, SamplerOpts{Scheme: sampling.Priority{}}, net); err == nil {
		t.Fatal("want error for D=0")
	}
	if _, err := NewSampler(Config{D: 2, W: 1, Eps: 0.1, Sites: 2}, SamplerOpts{}, net); err == nil {
		t.Fatal("want error for missing scheme")
	}
}

// --- DA1 ---

func TestDA1CovarianceError(t *testing.T) {
	cfg := Config{D: 8, W: 1500, Eps: 0.15, Sites: 4, Seed: 1}
	net := protocol.NewNetwork(4)
	da, err := NewDA1(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	evs := genEvents(6000, 8, 4, 59)
	avg, max := drive(t, da, evs, cfg.W, 8, 500)
	if avg > 2*cfg.Eps {
		t.Fatalf("DA1 avg err %v > 2ε", avg)
	}
	if max > 4*cfg.Eps {
		t.Fatalf("DA1 max err %v > 4ε", max)
	}
}

func TestDA1OneWayCommunication(t *testing.T) {
	cfg := Config{D: 5, W: 800, Eps: 0.2, Sites: 3, Seed: 2}
	net := protocol.NewNetwork(3)
	da, _ := NewDA1(cfg, net)
	drive(t, da, genEvents(3000, 5, 3, 61), cfg.W, 5, 0)
	if net.Stats().WordsDown != 0 {
		t.Fatal("DA1 must use one-way communication")
	}
	if net.Stats().WordsUp == 0 {
		t.Fatal("DA1 sent nothing")
	}
}

func TestDA1SkewedData(t *testing.T) {
	cfg := Config{D: 6, W: 1500, Eps: 0.15, Sites: 3, Seed: 3}
	net := protocol.NewNetwork(3)
	da, _ := NewDA1(cfg, net)
	evs := genSkewedEvents(5000, 6, 3, 15, 67)
	avg, _ := drive(t, da, evs, cfg.W, 6, 500)
	if avg > 3*cfg.Eps {
		t.Fatalf("DA1 skewed avg err %v", avg)
	}
}

func TestDA1CommunicationSublinear(t *testing.T) {
	cfg := Config{D: 6, W: 2000, Eps: 0.15, Sites: 2, Seed: 4}
	net := protocol.NewNetwork(2)
	da, _ := NewDA1(cfg, net)
	evs := genEvents(10000, 6, 2, 71)
	drive(t, da, evs, cfg.W, 6, 0)
	raw := int64(10000) * protocol.RowWords(6)
	if got := net.Stats().WordsUp; got > raw/5 {
		t.Fatalf("DA1 used %d words; centralizing costs %d — no compression", got, raw)
	}
}

func TestDA1ExpiresWithoutArrivals(t *testing.T) {
	cfg := Config{D: 4, W: 200, Eps: 0.2, Sites: 2, Seed: 5}
	net := protocol.NewNetwork(2)
	da, _ := NewDA1(cfg, net)
	evs := genEvents(500, 4, 2, 73)
	for _, e := range evs {
		da.Observe(e.Site, e.Row)
	}
	da.AdvanceTime(5000)
	if f := mat.FrobSq(da.Sketch()); f > 1e-6 {
		t.Fatalf("DA1 sketch mass %v after total expiry", f)
	}
}

// --- DA2 ---

func TestDA2CovarianceError(t *testing.T) {
	cfg := Config{D: 8, W: 1500, Eps: 0.15, Sites: 4, Seed: 1}
	net := protocol.NewNetwork(4)
	da, err := NewDA2(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	evs := genEvents(6000, 8, 4, 79)
	avg, max := drive(t, da, evs, cfg.W, 8, 500)
	if avg > 3*cfg.Eps {
		t.Fatalf("DA2 avg err %v > 3ε", avg)
	}
	if max > 6*cfg.Eps {
		t.Fatalf("DA2 max err %v > 6ε", max)
	}
}

func TestDA2CCovarianceError(t *testing.T) {
	cfg := Config{D: 8, W: 1500, Eps: 0.15, Sites: 4, Seed: 1}
	net := protocol.NewNetwork(4)
	da, err := NewDA2C(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	evs := genEvents(6000, 8, 4, 83)
	avg, max := drive(t, da, evs, cfg.W, 8, 500)
	if avg > 3*cfg.Eps {
		t.Fatalf("DA2-C avg err %v > 3ε", avg)
	}
	if max > 6*cfg.Eps {
		t.Fatalf("DA2-C max err %v > 6ε", max)
	}
}

func TestDA2OneWayCommunication(t *testing.T) {
	cfg := Config{D: 5, W: 800, Eps: 0.2, Sites: 3, Seed: 2}
	net := protocol.NewNetwork(3)
	da, _ := NewDA2(cfg, net)
	drive(t, da, genEvents(3000, 5, 3, 89), cfg.W, 5, 0)
	if net.Stats().WordsDown != 0 {
		t.Fatal("DA2 must use one-way communication")
	}
}

func TestDA2NoResidueAccumulation(t *testing.T) {
	// Run many windows, then expire everything: Ĉ must return to ≈0 even
	// after 10+ window generations.
	cfg := Config{D: 4, W: 300, Eps: 0.2, Sites: 2, Seed: 3}
	net := protocol.NewNetwork(2)
	da, _ := NewDA2(cfg, net)
	evs := genEvents(4000, 4, 2, 97)
	var mass float64
	for _, e := range evs {
		da.Observe(e.Site, e.Row)
		mass += e.Row.NormSq()
	}
	da.AdvanceTime(100_000)
	if f := mat.FrobSq(da.Sketch()); f > 1e-6*mass {
		t.Fatalf("DA2 sketch mass %v after total expiry (input mass %v)", f, mass)
	}
}

func TestDA2CNoResidueAccumulation(t *testing.T) {
	cfg := Config{D: 4, W: 300, Eps: 0.2, Sites: 2, Seed: 3}
	net := protocol.NewNetwork(2)
	da, _ := NewDA2C(cfg, net)
	evs := genEvents(4000, 4, 2, 101)
	var mass float64
	for _, e := range evs {
		da.Observe(e.Site, e.Row)
		mass += e.Row.NormSq()
	}
	da.AdvanceTime(100_000)
	if f := mat.FrobSq(da.Sketch()); f > 1e-3*mass {
		t.Fatalf("DA2-C sketch mass %v after total expiry (input mass %v)", f, mass)
	}
}

func TestDA2CommunicationSublinear(t *testing.T) {
	cfg := Config{D: 6, W: 2000, Eps: 0.15, Sites: 2, Seed: 4}
	net := protocol.NewNetwork(2)
	da, _ := NewDA2(cfg, net)
	evs := genEvents(10000, 6, 2, 103)
	drive(t, da, evs, cfg.W, 6, 0)
	raw := int64(10000) * protocol.RowWords(6)
	if got := net.Stats().WordsUp; got > raw/3 {
		t.Fatalf("DA2 used %d words; centralizing costs %d", got, raw)
	}
}

func TestDA2SiteSpaceSublinear(t *testing.T) {
	cfg := Config{D: 4, W: 4000, Eps: 0.2, Sites: 2, Seed: 5}
	net := protocol.NewNetwork(2)
	da, _ := NewDA2(cfg, net)
	evs := genEvents(8000, 4, 2, 107)
	drive(t, da, evs, cfg.W, 4, 0)
	// A site's window share is ≈2000 rows ≈ 10000 words; DA2 keeps only
	// the ledger + queue + FD buffers.
	if net.Stats().MaxSiteWords > 3000 {
		t.Fatalf("DA2 site space %d words — not sublinear", net.Stats().MaxSiteWords)
	}
}

// --- With-replacement extensions ---

func TestPWRCovarianceError(t *testing.T) {
	cfg := Config{D: 5, W: 1000, Eps: 0.3, Sites: 2, Ell: 96, Seed: 6}
	net := protocol.NewNetwork(2)
	pwr, err := NewPWR(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	evs := genEvents(3000, 5, 2, 109)
	avg, _ := drive(t, pwr, evs, cfg.W, 5, 500)
	if avg > 0.5 {
		t.Fatalf("PWR avg err %v", avg)
	}
	if pwr.Name() != "PWR" {
		t.Fatalf("Name = %q", pwr.Name())
	}
}

func TestESWRCovarianceError(t *testing.T) {
	cfg := Config{D: 5, W: 1000, Eps: 0.3, Sites: 2, Ell: 96, Seed: 7}
	net := protocol.NewNetwork(2)
	eswr, err := NewESWR(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	evs := genEvents(3000, 5, 2, 113)
	avg, _ := drive(t, eswr, evs, cfg.W, 5, 500)
	if avg > 0.5 {
		t.Fatalf("ESWR avg err %v", avg)
	}
}

// --- Cross-protocol comparisons ---

func TestDeterministicBeatsSamplingAtEqualEps(t *testing.T) {
	// Figure 1(a)/2(a)/3(a): deterministic protocols give better error at
	// the same ε.
	eps := 0.2
	cfg := Config{D: 8, W: 1500, Eps: eps, Sites: 4, Seed: 8}
	evs := genEvents(6000, 8, 4, 127)

	netD := protocol.NewNetwork(4)
	da, _ := NewDA1(cfg, netD)
	avgD, _ := drive(t, da, evs, cfg.W, 8, 500)

	scfg := cfg
	scfg.Ell = sampling.SampleSize(eps)
	sp, _ := newSampler(t, scfg, SamplerOpts{Scheme: sampling.Priority{}})
	avgS, _ := drive(t, sp, evs, cfg.W, 8, 500)

	if avgD > avgS*2 {
		t.Fatalf("DA1 err %v should not be much worse than PWOR %v", avgD, avgS)
	}
}
