package core

import (
	"fmt"
	"math"

	"distwindow/internal/protocol"
	"distwindow/internal/stream"
	"distwindow/mat"
)

// DecayTracker tracks the exponentially time-decayed covariance
//
//	C(t) = Σᵢ γ^(t−tᵢ) · aᵢᵀaᵢ
//
// over distributed streams — the other prominent time-decay model the
// paper's introduction cites alongside sliding windows. It extends DA1's
// reporting template: each site maintains its exact decayed Gram C and the
// coordinator's replica Ĉ⁽ʲ⁾ and ships significant eigendirections of the
// difference whenever ‖C − Ĉ⁽ʲ⁾‖₂ > ε·F(t), where F(t) is the decayed
// Frobenius mass.
//
// The decisive property making this cheap is that decay is deterministic:
// both replicas of Ĉ⁽ʲ⁾ shrink by the same γ^Δt without any communication,
// so the only traffic is new-mass drift — there is no expiry traffic at
// all. Communication is O(md/ε·log(1/γ · R)) words per half-life.
//
// Exponential decay admits exact O(d²) state per site (no histogram
// needed): this tracker is exact up to the reporting threshold.
type DecayTracker struct {
	cfg Config
	// gamma is the per-tick decay factor in (0, 1).
	gamma float64
	net   *protocol.Network
	sites []*decaySite
	chat  *mat.Dense
	// chatT is the timestamp Ĉ is currently decayed to.
	chatT int64
	now   int64
	// applyInline folds an emitted update into chat after decaying it to
	// inlineT (the row being processed) — the sequential path's emit.
	applyInline protocol.Emit
	inlineT     int64
}

type decaySite struct {
	// idx is the site's index, for per-site communication attribution.
	idx   int
	c     *mat.Dense
	chat  *mat.Dense
	frob  float64 // decayed Frobenius mass, same clock as c
	t     int64   // timestamp c/chat/frob are decayed to
	churn float64 // new mass since the last spectral test
	// pv is the warm-start vector for the spectral trigger test; mv is the
	// Ĉ·x scratch; diff holds C − Ĉ during a report; ws is the site's
	// persistent decomposition/power-iteration workspace. All preallocated
	// so the amortized test allocates nothing.
	pv      []float64
	mv      []float64
	applyOp func(x, y []float64)
	diff    *mat.Dense
	ws      *mat.Workspace
}

var _ protocol.OneWay = (*DecayTracker)(nil)

// NewDecay builds a decayed-covariance tracker; gamma is the per-tick
// decay factor (e.g. 0.999 ≈ half-life of 693 ticks). Cfg.W is ignored.
func NewDecay(cfg Config, gamma float64, net *protocol.Network) (*DecayTracker, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if gamma <= 0 || gamma >= 1 {
		return nil, fmt.Errorf("core: decay gamma = %v, want in (0,1)", gamma)
	}
	t := &DecayTracker{cfg: cfg, gamma: gamma, net: net, chat: mat.NewDense(cfg.D, cfg.D)}
	t.applyInline = func(scale float64, v []float64) {
		t.decayChatTo(t.inlineT)
		mat.OuterAdd(t.chat, v, scale)
	}
	t.sites = make([]*decaySite, cfg.Sites)
	for i := range t.sites {
		s := &decaySite{
			idx:  i,
			c:    mat.NewDense(cfg.D, cfg.D),
			chat: mat.NewDense(cfg.D, cfg.D),
			pv:   make([]float64, cfg.D),
			mv:   make([]float64, cfg.D),
			diff: mat.NewDense(cfg.D, cfg.D),
			ws:   cfg.pools.workspace(),
		}
		s.applyOp = func(x, y []float64) {
			mat.MulVecInto(y, s.c, x)
			mat.MulVecInto(s.mv, s.chat, x)
			for j := range y {
				y[j] -= s.mv[j]
			}
		}
		t.sites[i] = s
	}
	return t, nil
}

// Name returns "DECAY".
func (t *DecayTracker) Name() string { return "DECAY" }

// Observe feeds one row, folding any report into Ĉ inline.
func (t *DecayTracker) Observe(site int, r stream.Row) {
	t.now = r.T
	t.inlineT = r.T
	t.ObserveSite(site, r, t.applyInline)
}

// ObserveSite is the site-local half of Observe: decays the site's state
// to r.T, adds the row, and emits report directions instead of applying
// them. Calls for distinct sites may run concurrently; calls for one site
// must be serialized with non-decreasing timestamps.
func (t *DecayTracker) ObserveSite(site int, r stream.Row, emit protocol.Emit) {
	s := t.sites[site]
	s.decayTo(r.T, t.gamma)
	w := r.NormSq()
	if w > 0 {
		mat.OuterAdd(s.c, r.V, 1)
		s.frob += w
		s.churn += w
	}
	t.maybeReport(s, r.T, emit)
	t.net.SampleSiteSpace(int64(2 * t.cfg.D * t.cfg.D))
	t.net.SampleCoordSpace(int64(t.cfg.D * t.cfg.D))
}

// AdvanceTime decays every site's clock forward; no traffic results
// (decay is deterministic on both ends).
func (t *DecayTracker) AdvanceTime(now int64) {
	if now <= t.now {
		return
	}
	t.now = now
	for i := range t.sites {
		t.AdvanceSite(i, now, t.applyInline)
	}
}

// AdvanceSite decays one site's clock forward; it never emits.
func (t *DecayTracker) AdvanceSite(site int, now int64, emit protocol.Emit) {
	t.sites[site].decayTo(now, t.gamma)
}

// Apply decays Ĉ to the update's emission time and folds it in. The
// (T, site) apply order makes the emission times non-decreasing, so the
// coordinator's clock only moves forward.
func (t *DecayTracker) Apply(u protocol.Update) {
	t.decayChatTo(u.T)
	mat.OuterAdd(t.chat, u.V, u.Scale)
}

// AdvanceCoord decays Ĉ to now. Callers must guarantee no later Apply
// carries an emission time before now (the pipeline uses its minimum lane
// progress, a safe lower bound).
func (t *DecayTracker) AdvanceCoord(now int64) {
	if now > t.now {
		t.now = now
	}
	t.decayChatTo(now)
}

func (s *decaySite) decayTo(now int64, gamma float64) {
	if now <= s.t {
		return
	}
	f := math.Pow(gamma, float64(now-s.t))
	mat.ScaleInPlace(s.c, f)
	mat.ScaleInPlace(s.chat, f)
	s.frob *= f
	s.churn *= f
	s.t = now
}

func (t *DecayTracker) maybeReport(s *decaySite, now int64, emit protocol.Emit) {
	if s.frob <= 0 {
		return
	}
	if s.churn < t.cfg.Eps/4*s.frob {
		return
	}
	s.churn = 0
	norm := mat.OpSymNormWarmWS(t.cfg.D, s.pv, 8, s.applyOp, s.ws)
	if norm <= t.cfg.Eps*s.frob {
		return
	}
	s.diff.CopyFrom(s.c)
	mat.SubInPlace(s.diff, s.chat)
	eig := mat.EigSymInto(s.diff, s.ws)
	cutoff := t.cfg.Eps * s.frob
	sent := 0
	send := func(i int) {
		lam := eig.Values[i]
		// Copy the direction out of the site workspace: the parallel
		// pipeline retains emitted slices until the coordinator applies
		// them, by which time the workspace may have been reused.
		v := append([]float64(nil), eig.Vectors.Row(i)...)
		t.net.UpFrom(s.idx, protocol.DirectionWords(t.cfg.D))
		mat.OuterAdd(s.chat, v, lam)
		emit(lam, v)
		sent++
	}
	for i, lam := range eig.Values {
		if lam != 0 && math.Abs(lam) >= cutoff {
			send(i)
		}
	}
	if sent == 0 {
		best, bl := -1, 0.0
		for i, lam := range eig.Values {
			if a := math.Abs(lam); a > bl {
				best, bl = i, a
			}
		}
		if best >= 0 && bl > 0 {
			send(best)
		}
	}
}

// decayChatTo brings the coordinator's Ĉ to the given timestamp.
func (t *DecayTracker) decayChatTo(now int64) {
	if now <= t.chatT {
		return
	}
	mat.ScaleInPlace(t.chat, math.Pow(t.gamma, float64(now-t.chatT)))
	t.chatT = now
}

// Release donates the tracker's pooled storage (the per-site workspaces)
// back to the Config.Pools it was built with (a no-op without pools). The
// tracker must not be used afterwards.
func (t *DecayTracker) Release() {
	for _, s := range t.sites {
		t.cfg.pools.WS.Put(s.ws)
		s.ws = nil
	}
}

// Sketch returns B with BᵀB ≈ C(now), decayed to the tracker's clock.
func (t *DecayTracker) Sketch() *mat.Dense {
	t.decayChatTo(t.now)
	return mat.PSDSqrt(t.chat)
}

// SketchGram returns a copy of the decayed Ĉ ≈ C(now).
func (t *DecayTracker) SketchGram() *mat.Dense {
	t.decayChatTo(t.now)
	return t.chat.Clone()
}

// Stats returns accumulated counters.
func (t *DecayTracker) Stats() protocol.Stats { return t.net.Stats() }
