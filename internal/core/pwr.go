package core

import (
	"math"

	"distwindow/internal/protocol"
	"distwindow/internal/sampling"
	"distwindow/internal/stream"
	"distwindow/mat"
)

// WithReplacement implements the with-replacement sampling extensions PWR
// and ESWR (§II-A): ℓ independent single-sample trackers sharing one
// transport and one Frobenius tracker. Each inner tracker maintains the
// top-1 priority over the window using the lazy-broadcast machinery, so
// each contributes one (approximately) ‖aᵢ‖²-proportional draw; the
// estimator rescales draw aᵢ by √(‖A_w‖_F²/(ℓ·‖aᵢ‖²)), the standard
// importance-weighted covariance estimator.
//
// As in the paper, the with-replacement protocols are an extension, kept
// out of the headline experiments: they cost ℓ× the per-row processing of
// PWOR and are dominated by it in accuracy on most data.
type WithReplacement struct {
	cfg  Config
	net  *protocol.Network
	k    int
	inst []*Sampler
	sum  *SumTracker
	name string
}

// NewPWR builds priority sampling with replacement with ℓ = cfg.ell()
// independent samplers.
func NewPWR(cfg Config, net *protocol.Network) (*WithReplacement, error) {
	return newWR(cfg, net, sampling.Priority{}, "PWR")
}

// NewESWR builds ES sampling with replacement.
func NewESWR(cfg Config, net *protocol.Network) (*WithReplacement, error) {
	return newWR(cfg, net, sampling.ES{}, "ESWR")
}

func newWR(cfg Config, net *protocol.Network, scheme sampling.Scheme, name string) (*WithReplacement, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k := cfg.ell()
	t := &WithReplacement{cfg: cfg, net: net, k: k, name: name}
	sum, err := NewSumTracker(cfg, net)
	if err != nil {
		return nil, err
	}
	t.sum = sum
	t.inst = make([]*Sampler, k)
	for i := range t.inst {
		icfg := cfg
		icfg.Ell = 1
		icfg.Seed = cfg.Seed + int64(i)*0x9e3779b9
		s, err := NewSampler(icfg, SamplerOpts{Scheme: scheme, noSum: true}, net)
		if err != nil {
			return nil, err
		}
		t.inst[i] = s
	}
	return t, nil
}

// Name returns "PWR" or "ESWR".
func (t *WithReplacement) Name() string { return t.name }

// Observe fans the row out to every inner sampler.
func (t *WithReplacement) Observe(site int, r stream.Row) {
	t.sum.ObserveWeight(site, r.T, r.NormSq())
	for _, s := range t.inst {
		s.Observe(site, r)
	}
}

// AdvanceTime advances every inner sampler.
func (t *WithReplacement) AdvanceTime(now int64) {
	t.sum.AdvanceAll(now)
	for _, s := range t.inst {
		s.AdvanceTime(now)
	}
}

// Sketch stacks one importance-rescaled draw per inner sampler.
func (t *WithReplacement) Sketch() *mat.Dense {
	frobSq := t.sum.Estimate()
	if frobSq <= 0 {
		return mat.NewDense(0, t.cfg.D)
	}
	rows := make([][]float64, 0, t.k)
	for _, s := range t.inst {
		used := s.usedSamples()
		if len(used) == 0 {
			continue
		}
		best := used[0]
		for _, it := range used[1:] {
			if it.Rho > best.Rho {
				best = it
			}
		}
		w := best.Weight()
		if w == 0 {
			continue
		}
		f := math.Sqrt(frobSq / (float64(t.k) * w))
		row := make([]float64, len(best.V))
		for j, v := range best.V {
			row[j] = f * v
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return mat.NewDense(0, t.cfg.D)
	}
	return mat.FromRows(rows)
}

// Stats returns accumulated counters.
func (t *WithReplacement) Stats() protocol.Stats { return t.net.Stats() }
