package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"distwindow/internal/protocol"
	"distwindow/internal/sampling"
	"distwindow/internal/stream"
	"distwindow/mat"
)

// SamplerOpts selects a member of the sampling protocol family.
type SamplerOpts struct {
	// Scheme is the priority assignment: sampling.Priority{} for PWOR,
	// sampling.ES{} for ESWOR.
	Scheme sampling.Scheme
	// Exact selects Algorithm 1's exact threshold maintenance (|S| = ℓ at
	// all times); the default is the lazy-broadcast protocol of
	// Algorithm 2 (ℓ ≤ |S| ≤ 4ℓ).
	Exact bool
	// UseAll makes the estimator use every sample the coordinator holds
	// (the -ALL variants) instead of exactly the top-ℓ.
	UseAll bool
	// noSum suppresses the embedded Frobenius tracker; the
	// with-replacement wrapper sets it because it shares a single one
	// across its inner samplers.
	noSum bool
}

// Sampler is a sampling-based tracker: PWOR, PWOR-ALL, ESWOR, ESWOR-ALL,
// with exact or lazy-broadcast threshold maintenance. It implements
// protocol.Tracker.
type Sampler struct {
	cfg  Config
	opts SamplerOpts
	net  *protocol.Network
	rng  *rand.Rand
	ell  int
	name string

	tau   float64
	sites []*sampleSite

	// S is the sample set (top priorities); Sp the candidate set S'.
	S, Sp []sampling.Item
	// minTS/minTSp cache the minimum timestamps so expiry scans can be
	// skipped while nothing can expire.
	minTS, minTSp int64

	// sum tracks ‖A_w‖_F² for the ES estimator (nil for priority
	// sampling); its communication is charged to the same network.
	sum *SumTracker

	now int64
}

type sampleSite struct {
	q    *sampling.Queue
	tauJ float64
}

// NewSampler builds a sampling tracker. The name reflects the variant
// (e.g. "PWOR-ALL", "ESWOR", "PWOR-simple").
func NewSampler(cfg Config, opts SamplerOpts, net *protocol.Network) (*Sampler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if opts.Scheme == nil {
		return nil, fmt.Errorf("core: SamplerOpts.Scheme is required")
	}
	s := &Sampler{
		cfg:  cfg,
		opts: opts,
		net:  net,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		ell:  cfg.ell(),
	}
	s.sites = make([]*sampleSite, cfg.Sites)
	for i := range s.sites {
		s.sites[i] = &sampleSite{q: sampling.NewQueue(s.ell)}
	}
	// ES needs ‖A_w‖_F² for its estimator; the uniform baseline needs the
	// window count N. Both are tracked by the deterministic SUM protocol
	// over the same accounted network.
	switch opts.Scheme.(type) {
	case sampling.ES, sampling.Uniform:
		if !opts.noSum {
			sum, err := NewSumTracker(cfg, net)
			if err != nil {
				return nil, err
			}
			s.sum = sum
		}
	}
	s.name = samplerName(opts)
	s.minTS, s.minTSp = math.MaxInt64, math.MaxInt64
	return s, nil
}

func samplerName(opts SamplerOpts) string {
	base := "PWOR"
	switch opts.Scheme.(type) {
	case sampling.ES:
		base = "ESWOR"
	case sampling.Uniform:
		base = "UNIFORM"
	}
	if opts.UseAll {
		base += "-ALL"
	}
	if opts.Exact {
		base += "-simple"
	}
	return base
}

// Name returns the protocol variant name.
func (s *Sampler) Name() string { return s.name }

// Observe delivers a row to a site (Algorithm 1, PROCESS_ROWS).
func (s *Sampler) Observe(site int, r stream.Row) {
	s.now = r.T
	w := r.NormSq()
	st := s.sites[site]
	st.q.Expire(r.T, s.cfg.W)
	if s.sum != nil {
		sw := w
		if _, uniform := s.opts.Scheme.(sampling.Uniform); uniform {
			sw = 1 // the uniform estimator needs the count, not the mass
		}
		s.sum.ObserveWeight(site, r.T, sw)
	}
	if w > 0 {
		rho := sampling.Draw(s.opts.Scheme, w, s.rng)
		it := sampling.Item{V: append([]float64(nil), r.V...), Rho: rho, T: r.T}
		if rho >= st.tauJ {
			s.net.UpFrom(site, protocol.RowWords(s.cfg.D))
			s.insertS(it)
		} else {
			st.q.Push(it)
		}
		st.q.Observe(rho)
	}
	s.expire()
	s.updateThreshold()
	s.net.SampleSiteSpace(st.q.SpaceWords(s.cfg.D))
	s.net.SampleCoordSpace(int64(len(s.S)+len(s.Sp)) * int64(s.cfg.D+2))
}

// AdvanceTime expires state at the coordinator and all sites.
func (s *Sampler) AdvanceTime(now int64) {
	if now <= s.now {
		return
	}
	s.now = now
	for _, st := range s.sites {
		st.q.Expire(now, s.cfg.W)
	}
	if s.sum != nil {
		s.sum.AdvanceAll(now)
	}
	s.expire()
	s.updateThreshold()
}

func (s *Sampler) insertS(it sampling.Item) {
	s.S = append(s.S, it)
	if it.T < s.minTS {
		s.minTS = it.T
	}
}

func (s *Sampler) insertSp(it sampling.Item) {
	s.Sp = append(s.Sp, it)
	if it.T < s.minTSp {
		s.minTSp = it.T
	}
}

// expire drops out-of-window items from S and S'.
func (s *Sampler) expire() {
	cut := s.now - s.cfg.W
	if s.minTS <= cut {
		keep := s.S[:0]
		min := int64(math.MaxInt64)
		for _, it := range s.S {
			if it.T > cut {
				keep = append(keep, it)
				if it.T < min {
					min = it.T
				}
			}
		}
		s.S = keep
		s.minTS = min
	}
	if s.minTSp <= cut {
		keep := s.Sp[:0]
		min := int64(math.MaxInt64)
		for _, it := range s.Sp {
			if it.T > cut {
				keep = append(keep, it)
				if it.T < min {
					min = it.T
				}
			}
		}
		s.Sp = keep
		s.minTSp = min
	}
}

func (s *Sampler) updateThreshold() {
	if s.opts.Exact {
		s.updateExact()
	} else {
		s.updateLazy()
	}
}

// sortSDesc sorts the sample set by decreasing priority.
func (s *Sampler) sortSDesc() {
	sort.Slice(s.S, func(i, j int) bool { return s.S[i].Rho > s.S[j].Rho })
}

// broadcastTau ships a changed threshold to all sites and applies it
// locally at each site, collecting any rows the decrease releases.
func (s *Sampler) broadcastTau(tau float64) {
	if tau == s.tau {
		return
	}
	decreased := tau < s.tau
	s.tau = tau
	s.net.Broadcast(1)
	for i, st := range s.sites {
		if decreased && tau < st.tauJ {
			st.q.Expire(s.now, s.cfg.W)
			for _, it := range st.q.PopQualifying(tau) {
				s.net.UpFrom(i, protocol.RowWords(s.cfg.D))
				s.insertS(it)
			}
		}
		st.tauJ = tau
	}
}

// updateExact is Algorithm 1's UPDATE_THRESHOLD: keep |S| exactly ℓ.
func (s *Sampler) updateExact() {
	for len(s.S) == s.ell+1 {
		// Common case — one fresh arrival: move the minimum without a sort.
		min := 0
		for i := range s.S[1:] {
			if s.S[i+1].Rho < s.S[min].Rho {
				min = i + 1
			}
		}
		s.insertSp(s.S[min])
		s.S = append(s.S[:min], s.S[min+1:]...)
	}
	if len(s.S) > s.ell {
		s.sortSDesc()
		for _, it := range s.S[s.ell:] {
			s.insertSp(it)
		}
		s.S = s.S[:s.ell]
	}
	if len(s.S) < s.ell {
		s.negotiate()
	}
	// τ becomes the minimum priority in S.
	if len(s.S) > 0 {
		min := s.S[0].Rho
		for _, it := range s.S[1:] {
			if it.Rho < min {
				min = it.Rho
			}
		}
		if min != s.tau {
			s.tau = min
			s.net.Broadcast(1)
			for _, st := range s.sites {
				st.tauJ = min
			}
		}
	}
}

// negotiate pulls the globally highest-priority unsampled rows until
// |S| = ℓ or no active rows remain (Algorithm 1, lines 22–29).
func (s *Sampler) negotiate() {
	// Request each site's local maximum priority: 1 word down, 1 word up.
	type src struct {
		site int // -1 for S'
		rho  float64
		ok   bool
	}
	sources := make([]src, 0, len(s.sites)+1)
	for i, st := range s.sites {
		s.net.DownTo(i, 1)
		st.q.Expire(s.now, s.cfg.W)
		rho, ok := st.q.MaxPriority()
		s.net.UpFrom(i, 1)
		sources = append(sources, src{site: i, rho: rho, ok: ok})
	}
	spMax := func() (int, float64, bool) {
		best, rho := -1, 0.0
		for i, it := range s.Sp {
			if best == -1 || it.Rho > rho {
				best, rho = i, it.Rho
			}
		}
		return best, rho, best != -1
	}
	_, rho, ok := spMax()
	sources = append(sources, src{site: -1, rho: rho, ok: ok})

	for len(s.S) < s.ell {
		best := -1
		for i, c := range sources {
			if c.ok && (best == -1 || c.rho > sources[best].rho) {
				best = i
			}
		}
		if best == -1 {
			return // fewer than ℓ active rows in the whole system
		}
		c := &sources[best]
		if c.site == -1 {
			idx, _, _ := spMax()
			it := s.Sp[idx]
			s.Sp = append(s.Sp[:idx], s.Sp[idx+1:]...)
			s.insertS(it)
			_, rho, ok := spMax()
			c.rho, c.ok = rho, ok
		} else {
			st := s.sites[c.site]
			s.net.DownTo(c.site, 1) // retrieve request
			it := st.q.PopMax()
			s.net.UpFrom(c.site, protocol.RowWords(s.cfg.D))
			s.insertS(it)
			s.net.DownTo(c.site, 1) // next-highest request
			rho, ok := st.q.MaxPriority()
			s.net.UpFrom(c.site, 1)
			c.rho, c.ok = rho, ok
		}
	}
}

// updateLazy is Algorithm 2's lazy-broadcast UPDATE_THRESHOLD.
func (s *Sampler) updateLazy() {
	if len(s.S) >= 4*s.ell {
		s.sortSDesc()
		tau := s.S[2*s.ell-1].Rho
		for _, it := range s.S[2*s.ell:] {
			if it.Rho < tau {
				s.insertSp(it)
			}
		}
		// Keep items with ρ ≥ τ (ties at τ stay in S).
		keep := s.S[:0]
		for _, it := range s.S {
			if it.Rho >= tau {
				keep = append(keep, it)
			}
		}
		s.S = keep
		s.recomputeMinTS()
		s.broadcastTau(tau)
	}
	if len(s.S) <= s.ell {
		s.refill()
	}
}

// refill halves τ until |S| > 2ℓ or no more active rows exist anywhere
// (Algorithm 2, lines 7–11).
func (s *Sampler) refill() {
	for len(s.S) <= 2*s.ell {
		// Collect qualifying candidates from S' at the current τ first —
		// they were already paid for.
		s.collectFromSp(s.tau)
		if len(s.S) > 2*s.ell {
			break
		}
		if s.tau == 0 || s.drained() {
			// τ already admits everything, or no row is left anywhere:
			// halving further would only burn broadcasts.
			return
		}
		newTau := s.tau / 2
		if newTau < 1e-300 {
			newTau = 0
		}
		s.collectFromSp(newTau)
		s.broadcastTau(newTau)
		if newTau == 0 {
			return
		}
	}
}

// drained reports that neither S' nor any site queue holds an active row.
func (s *Sampler) drained() bool {
	if len(s.Sp) > 0 {
		return false
	}
	for _, st := range s.sites {
		st.q.Expire(s.now, s.cfg.W)
		if st.q.Len() > 0 {
			return false
		}
	}
	return true
}

func (s *Sampler) collectFromSp(tau float64) {
	keep := s.Sp[:0]
	for _, it := range s.Sp {
		if it.Rho >= tau {
			s.insertS(it)
		} else {
			keep = append(keep, it)
		}
	}
	s.Sp = keep
	s.recomputeMinTSp()
}

func (s *Sampler) recomputeMinTS() {
	min := int64(math.MaxInt64)
	for _, it := range s.S {
		if it.T < min {
			min = it.T
		}
	}
	s.minTS = min
}

func (s *Sampler) recomputeMinTSp() {
	min := int64(math.MaxInt64)
	for _, it := range s.Sp {
		if it.T < min {
			min = it.T
		}
	}
	s.minTSp = min
}

// Sketch builds the covariance sketch from the current samples.
func (s *Sampler) Sketch() *mat.Dense {
	used := s.usedSamples()
	if len(used) == 0 {
		return mat.NewDense(0, s.cfg.D)
	}
	// When the sample is exhaustive (every active row is at the
	// coordinator), the raw rows reproduce A_w exactly.
	if s.exhaustive(len(used)) {
		rows := make([][]float64, len(used))
		for i, it := range used {
			rows[i] = it.V
		}
		return mat.FromRows(rows)
	}
	out := mat.NewDense(len(used), s.cfg.D)
	switch s.opts.Scheme.(type) {
	case sampling.Priority:
		// The estimator's weight ceiling: for top-ℓ it is τ_ℓ, the
		// minimum priority in the sample; for -ALL it is the global
		// threshold τ, because S is exactly the set of active rows with
		// ρ ≥ τ (threshold/priority sampling with fixed threshold).
		tauEll := s.tau
		if !s.opts.UseAll {
			tauEll = used[0].Rho
			for _, it := range used[1:] {
				if it.Rho < tauEll {
					tauEll = it.Rho
				}
			}
		}
		for i, it := range used {
			out.SetRow(i, sampling.RescalePriority(it, tauEll))
		}
	case sampling.ES:
		frobSq := s.sum.Estimate()
		for i, it := range used {
			out.SetRow(i, sampling.RescaleES(it, frobSq, len(used)))
		}
	case sampling.Uniform:
		count := s.sum.Estimate()
		for i, it := range used {
			out.SetRow(i, sampling.RescaleUniform(it, count, len(used)))
		}
	default:
		panic("core: unknown sampling scheme")
	}
	return out
}

// usedSamples returns the samples the estimator is allowed to use. The
// -ALL variants use the whole sample set S — which the protocol keeps
// equal to the set of active rows with priority ≥ τ, so it is a valid
// threshold sample of size ℓ..4ℓ. The candidate set S' is NOT used: it
// holds only those below-threshold rows that happened to pass through the
// coordinator, so including it would bias the estimator (sites still hold
// other rows in the same priority range).
func (s *Sampler) usedSamples() []sampling.Item {
	if s.opts.UseAll {
		return append([]sampling.Item(nil), s.S...)
	}
	if len(s.S) <= s.ell {
		return append([]sampling.Item(nil), s.S...)
	}
	cp := append([]sampling.Item(nil), s.S...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Rho > cp[j].Rho })
	return cp[:s.ell]
}

// exhaustive reports whether the coordinator provably holds every active
// row: after threshold maintenance, |S| below ℓ means the refill loop (or
// negotiation) drained all site queues and S'.
func (s *Sampler) exhaustive(used int) bool {
	if used > s.ell {
		return false
	}
	if len(s.Sp) > 0 {
		return false
	}
	for _, st := range s.sites {
		if st.q.Len() > 0 {
			return false
		}
	}
	return len(s.S) < s.ell
}

// Stats returns accumulated communication counters.
func (s *Sampler) Stats() protocol.Stats { return s.net.Stats() }

// Tau exposes the current global threshold (for tests).
func (s *Sampler) Tau() float64 { return s.tau }

// SampleCount returns |S| and |S'| (for tests).
func (s *Sampler) SampleCount() (int, int) { return len(s.S), len(s.Sp) }

// Ell returns the resolved sample-set size ℓ.
func (s *Sampler) Ell() int { return s.ell }
