package core

import (
	"math"

	"distwindow/internal/meh"
	"distwindow/internal/protocol"
	"distwindow/internal/stream"
	"distwindow/internal/window"
	"distwindow/mat"
)

// DA1 is the first deterministic protocol (Algorithm 4). Each site keeps a
// matrix exponential histogram over its local window, giving C ≈ A_w⁽ʲ⁾ᵀA_w⁽ʲ⁾
// and F̂² ≈ ‖A_w⁽ʲ⁾‖_F², plus the coordinator's view Ĉ⁽ʲ⁾. Whenever
// ‖C − Ĉ⁽ʲ⁾‖₂ > ε·F̂², the site eigendecomposes D = C − Ĉ⁽ʲ⁾ and ships every
// direction with |λᵢ| ≥ ε·F̂², updating both copies of Ĉ⁽ʲ⁾. The coordinator
// answers queries with the PSD square root of Ĉ = Σⱼ Ĉ⁽ʲ⁾.
//
// Communication is one-way (sites → coordinator), O(md/ε·log NR) words per
// window; per-site space is O(d/ε²·log NR + d²).
//
// The spectral test is amortized: a site re-tests only once the Frobenius
// mass added plus expired since its last test reaches (ε/4)·F̂² — smaller
// churn cannot move ‖D‖₂ past the threshold by more than a constant factor
// of ε, so the guarantee degrades only in constants while the per-row cost
// drops from O(d²) to O(1) between tests.
type DA1 struct {
	cfg   Config
	net   *protocol.Network
	sites []*da1Site
	// chat is Ĉ = Σⱼ Ĉ⁽ʲ⁾ at the coordinator.
	chat *mat.Dense
	now  int64
	// applyInline folds an emitted update straight into chat — the
	// sequential path's emit, allocated once so Observe stays on the same
	// float-op sequence (and allocation profile) as before the seam.
	applyInline protocol.Emit
}

type da1Site struct {
	// idx is the site's index, for per-site communication attribution.
	idx  int
	hist *meh.Histogram
	// win is non-nil in exact-storage mode: the site keeps its raw window
	// (the paper's "first assume each site is allowed to store all rows")
	// and the histogram is bypassed.
	win *window.Exact
	// chat is the site's replica of the coordinator's Ĉ⁽ʲ⁾.
	chat *mat.Dense
	// churn accumulates mass added/expired since the last spectral test.
	churn float64
	lastF float64
	now   int64
	// pv is the warm-start vector for the spectral trigger test; mv is the
	// Ĉ·x scratch of the trigger operator; diff holds C − Ĉ during a report;
	// ws is the site's persistent decomposition/power-iteration workspace.
	// All are preallocated so the per-row path stays allocation-free.
	pv      []float64
	mv      []float64
	applyOp func(x, y []float64)
	diff    *mat.Dense
	ws      *mat.Workspace
}

var _ protocol.OneWay = (*DA1)(nil)

// NewDA1 builds the protocol over cfg.Sites sites reporting to net.
func NewDA1(cfg Config, net *protocol.Network) (*DA1, error) {
	return newDA1(cfg, net, false)
}

// NewDA1Exact builds the exact-storage ablation: each site retains its raw
// window instead of an mEH, so the only error is the reporting threshold —
// the protocol the paper analyzes before introducing the histogram. Space
// per site is O(window) words; use it as an accuracy reference.
func NewDA1Exact(cfg Config, net *protocol.Network) (*DA1, error) {
	return newDA1(cfg, net, true)
}

func newDA1(cfg Config, net *protocol.Network, exact bool) (*DA1, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &DA1{cfg: cfg, net: net, chat: mat.NewDense(cfg.D, cfg.D)}
	t.applyInline = func(scale float64, v []float64) { mat.OuterAdd(t.chat, v, scale) }
	t.sites = make([]*da1Site, cfg.Sites)
	for i := range t.sites {
		s := &da1Site{
			idx:  i,
			chat: mat.NewDense(cfg.D, cfg.D),
			pv:   make([]float64, cfg.D),
			mv:   make([]float64, cfg.D),
			diff: mat.NewDense(cfg.D, cfg.D),
			ws:   cfg.pools.workspace(),
		}
		// The trigger operator y = (C − Ĉ)x, allocated once per site so the
		// amortized spectral test allocates nothing.
		s.applyOp = func(x, y []float64) {
			s.applyGram(cfg.D, x, y)
			mat.MulVecInto(s.mv, s.chat, x)
			for j := range y {
				y[j] -= s.mv[j]
			}
		}
		if exact {
			s.win = window.NewExact(cfg.W)
		} else {
			// Run the mEH at ε/2 so structure error plus reporting slack
			// stay within O(ε) overall.
			s.hist = meh.New(cfg.W, cfg.D, cfg.Eps/2)
			cfg.pools.attach(s.hist)
		}
		t.sites[i] = s
	}
	return t, nil
}

// Name returns "DA1" ("DA1-exact" for the exact-storage ablation).
func (t *DA1) Name() string {
	if len(t.sites) > 0 && t.sites[0].win != nil {
		return "DA1-exact"
	}
	return "DA1"
}

// frobEst returns the site's window-mass estimate.
func (s *da1Site) frobEst() float64 {
	if s.win != nil {
		return s.win.FrobSq()
	}
	return s.hist.FrobSqEstimate()
}

// applyGram computes y = Cx for the site's window covariance.
func (s *da1Site) applyGram(d int, x, y []float64) {
	if s.win != nil {
		for i := range y {
			y[i] = 0
		}
		for _, r := range s.win.Rows() {
			c := mat.Dot(r.V, x)
			if c != 0 {
				mat.Axpy(c, r.V, y)
			}
		}
		return
	}
	s.hist.ApplyGram(x, y)
}

// gramInto overwrites dst with the site's window covariance.
func (s *da1Site) gramInto(dst *mat.Dense) {
	if s.win != nil {
		dst.Zero()
		for _, r := range s.win.Rows() {
			mat.OuterAdd(dst, r.V, 1)
		}
		return
	}
	s.hist.GramInto(dst)
}

// Observe feeds a row into the site's histogram and applies the amortized
// reporting rule, folding any resulting directions into Ĉ inline.
func (t *DA1) Observe(site int, r stream.Row) {
	t.now = r.T
	t.ObserveSite(site, r, t.applyInline)
}

// ObserveSite is the site-local half of Observe: it runs the histogram
// update and the reporting rule for one site and emits the directions that
// would have been shipped, leaving the coordinator state untouched. Calls
// for distinct sites may run concurrently; calls for one site must be
// serialized with non-decreasing timestamps.
func (t *DA1) ObserveSite(site int, r stream.Row, emit protocol.Emit) {
	s := t.sites[site]
	s.now = r.T
	if s.win != nil {
		s.win.Add(r)
	} else {
		s.hist.Add(r.T, r.V)
	}
	added := r.NormSq()
	est := s.frobEst()
	expired := s.lastF + added - est
	if expired < 0 {
		expired = 0
	}
	s.churn += added + expired
	s.lastF = est
	t.maybeReport(s, emit)
	siteWords := int64(t.cfg.D * t.cfg.D)
	if s.win != nil {
		siteWords += int64(s.win.Len()) * int64(t.cfg.D+1)
	} else {
		siteWords += int64(s.hist.SpaceWords())
	}
	t.net.SampleSiteSpace(siteWords)
	t.net.SampleCoordSpace(int64(t.cfg.D * t.cfg.D))
}

// AdvanceTime expires window content at every site and re-tests sites
// whose mass moved.
func (t *DA1) AdvanceTime(now int64) {
	if now <= t.now {
		return
	}
	t.now = now
	for i := range t.sites {
		t.AdvanceSite(i, now, t.applyInline)
	}
}

// AdvanceSite is the site-local half of AdvanceTime for one site.
func (t *DA1) AdvanceSite(site int, now int64, emit protocol.Emit) {
	s := t.sites[site]
	if now <= s.now {
		return
	}
	s.now = now
	if s.win != nil {
		s.win.Advance(now)
	} else {
		s.hist.Advance(now)
	}
	est := s.frobEst()
	if d := s.lastF - est; d > 0 {
		s.churn += d
	}
	s.lastF = est
	t.maybeReport(s, emit)
}

// Apply folds one emitted update into the coordinator's Ĉ. Single
// goroutine, non-decreasing (T, site) order.
func (t *DA1) Apply(u protocol.Update) { mat.OuterAdd(t.chat, u.V, u.Scale) }

// AdvanceCoord is a no-op: DA1's coordinator state is clock-free (expiry
// lives entirely in the sites' histograms).
func (t *DA1) AdvanceCoord(now int64) {}

// maybeReport runs the spectral test when enough churn accumulated, and
// ships significant directions when it trips.
func (t *DA1) maybeReport(s *da1Site, emit protocol.Emit) {
	fhat := s.lastF
	if fhat <= 0 {
		// Window (locally) empty: flush any leftover Ĉ⁽ʲ⁾ exactly once.
		if mat.FrobSq(s.chat) > 0 {
			s.diff.CopyFrom(s.chat)
			mat.ScaleInPlace(s.diff, -1)
			t.sendDirections(s, s.diff, 0, emit)
		}
		s.churn = 0
		return
	}
	if s.churn < t.cfg.Eps/4*fhat {
		return
	}
	s.churn = 0
	// ‖C − Ĉ‖₂ via warm-started power iteration: C is never formed densely
	// here, and the dominant direction of D barely moves between tests, so
	// a few iterations from the cached vector suffice for a threshold
	// comparison. The estimate lower-bounds the norm, so the test fires at
	// 0.9× the threshold to compensate; a missed borderline trigger is
	// retried at the next churn quantum. The operator closure, iteration
	// scratch, and warm vector are all per-site state: the test allocates
	// nothing.
	norm := mat.OpSymNormWarmWS(t.cfg.D, s.pv, 8, s.applyOp, s.ws)
	if norm <= t.cfg.Eps*fhat {
		return
	}
	s.gramInto(s.diff)
	mat.SubInPlace(s.diff, s.chat)
	t.sendDirections(s, s.diff, t.cfg.Eps*fhat, emit)
}

// sendDirections eigendecomposes D and ships every direction with
// |λ| ≥ cutoff (cutoff 0 ships all nonzero), updating both Ĉ replicas.
// When the trigger fired but no eigenvalue clears the cutoff (the power
// iteration slightly over-estimated), the top direction is shipped anyway
// so the protocol always makes progress.
func (t *DA1) sendDirections(s *da1Site, diff *mat.Dense, cutoff float64, emit protocol.Emit) {
	eig := mat.EigSymInto(diff, s.ws)
	send := func(i int) {
		// Copy the direction out of the site workspace: the parallel
		// pipeline retains emitted slices until the coordinator applies
		// them, by which time the workspace may have been reused.
		v := append([]float64(nil), eig.Vectors.Row(i)...)
		t.net.UpFrom(s.idx, protocol.DirectionWords(t.cfg.D))
		mat.OuterAdd(s.chat, v, eig.Values[i])
		emit(eig.Values[i], v)
	}
	sent := 0
	for i, lam := range eig.Values {
		if math.Abs(lam) < cutoff || lam == 0 {
			continue
		}
		send(i)
		sent++
	}
	if sent == 0 && cutoff > 0 {
		best, bl := -1, 0.0
		for i, lam := range eig.Values {
			if a := math.Abs(lam); a > bl {
				best, bl = i, a
			}
		}
		if best >= 0 && bl > 0 {
			send(best)
		}
	}
}

// Release donates the tracker's pooled storage — per-site workspaces and
// histogram buffers — back to the Config.Pools it was built with (a no-op
// without pools). The tracker must not be used afterwards.
func (t *DA1) Release() {
	for _, s := range t.sites {
		if s.hist != nil {
			s.hist.Release()
		}
		t.cfg.pools.WS.Put(s.ws)
		s.ws = nil
	}
}

// Sketch returns B = Σ^{1/2}Vᵀ from the SVD of the PSD-clipped Ĉ
// (Algorithm 4, QUERY).
func (t *DA1) Sketch() *mat.Dense { return mat.PSDSqrt(t.chat) }

// SketchGram returns a copy of the coordinator's raw Ĉ ≈ A_wᵀA_w. It is
// what Sketch factors; evaluation harnesses use it to skip the O(d³)
// square root on every query.
func (t *DA1) SketchGram() *mat.Dense { return t.chat.Clone() }

// Stats returns accumulated counters.
func (t *DA1) Stats() protocol.Stats { return t.net.Stats() }
