package core

import (
	"math/rand"
	"testing"

	"distwindow/internal/protocol"
	"distwindow/internal/stream"
)

// TestDA1SiteStepSteadyStateAllocFree pins the DA1 per-row site step —
// histogram update (including bucket compaction and expiry), churn
// bookkeeping, and the amortized spectral trigger test — at zero heap
// allocations per row once the structures have warmed up. Only an actual
// report (rare by construction: the trigger fires when Ĉ drifts by ε·F̂²)
// is allowed to allocate, and the steady stream below never trips it.
func TestDA1SiteStepSteadyStateAllocFree(t *testing.T) {
	cfg := Config{D: 16, W: 2000, Eps: 0.2, Sites: 1}
	net := protocol.NewNetwork(cfg.Sites)
	tr, err := NewDA1(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	// A fixed pool of rows keeps the window distribution stationary, so
	// after warm-up Ĉ tracks C and the trigger stays quiet while the
	// spectral test still runs every churn quantum.
	pool := make([][]float64, 8)
	for i := range pool {
		pool[i] = make([]float64, cfg.D)
		for j := range pool[i] {
			pool[i][j] = rng.NormFloat64()
		}
	}
	now := int64(0)
	feed := func() {
		now++
		tr.Observe(0, stream.Row{T: now, V: pool[now%int64(len(pool))]})
	}
	// Warm past several windows: histogram capacity, freelists, workspace
	// buffers, and the coordinator replica all reach steady state.
	for i := 0; i < 3*int(cfg.W); i++ {
		feed()
	}
	if n := testing.AllocsPerRun(500, feed); n != 0 {
		t.Errorf("DA1 site step: %v allocs/row at steady state, want 0", n)
	}
}
