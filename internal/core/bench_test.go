package core

import (
	"testing"

	"distwindow/internal/protocol"
	"distwindow/internal/sampling"
	"distwindow/internal/stream"
)

// benchDrive measures steady-state per-row Observe cost.
func benchDrive(b *testing.B, mk func(net *protocol.Network) protocol.Tracker, d int) {
	b.Helper()
	evs := genEvents(b.N+4096, d, 8, 1)
	net := protocol.NewNetwork(8)
	tr := mk(net)
	// Warm up past the first window fill.
	for _, e := range evs[:4096] {
		tr.Observe(e.Site, e.Row)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := evs[4096+i]
		tr.Observe(e.Site, e.Row)
	}
}

func BenchmarkPWORObserveD32(b *testing.B) {
	benchDrive(b, func(net *protocol.Network) protocol.Tracker {
		s, err := NewSampler(Config{D: 32, W: 2000, Eps: 0.1, Sites: 8, Ell: 128, Seed: 1},
			SamplerOpts{Scheme: sampling.Priority{}}, net)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}, 32)
}

func BenchmarkESWORObserveD32(b *testing.B) {
	benchDrive(b, func(net *protocol.Network) protocol.Tracker {
		s, err := NewSampler(Config{D: 32, W: 2000, Eps: 0.1, Sites: 8, Ell: 128, Seed: 1},
			SamplerOpts{Scheme: sampling.ES{}}, net)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}, 32)
}

func BenchmarkDA1ObserveD32(b *testing.B) {
	benchDrive(b, func(net *protocol.Network) protocol.Tracker {
		t, err := NewDA1(Config{D: 32, W: 2000, Eps: 0.1, Sites: 8, Seed: 1}, net)
		if err != nil {
			b.Fatal(err)
		}
		return t
	}, 32)
}

func BenchmarkDA2ObserveD32(b *testing.B) {
	benchDrive(b, func(net *protocol.Network) protocol.Tracker {
		t, err := NewDA2(Config{D: 32, W: 2000, Eps: 0.1, Sites: 8, Seed: 1}, net)
		if err != nil {
			b.Fatal(err)
		}
		return t
	}, 32)
}

func BenchmarkDA2ObserveD256(b *testing.B) {
	benchDrive(b, func(net *protocol.Network) protocol.Tracker {
		t, err := NewDA2(Config{D: 256, W: 2000, Eps: 0.1, Sites: 8, Seed: 1}, net)
		if err != nil {
			b.Fatal(err)
		}
		return t
	}, 256)
}

func BenchmarkSumTrackerObserve(b *testing.B) {
	net := protocol.NewNetwork(8)
	st, err := NewSumTracker(Config{D: 1, W: 10_000, Eps: 0.05, Sites: 8}, net)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.ObserveWeight(i%8, int64(i), 1+float64(i%13))
	}
}

var _ = stream.Row{}
