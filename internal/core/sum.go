package core

import (
	"distwindow/internal/eh"
	"distwindow/internal/protocol"
)

// SumTracker is the deterministic SUM tracking protocol of Algorithm 3: a
// special case of matrix tracking with d = 1 (and, with unit weights, the
// COUNT tracking of Cormode–Yi). Each site keeps a gEH estimate C of its
// local window sum and the coordinator's view Ĉ; whenever |C − Ĉ| > εC it
// ships the difference. Communication is O(m/ε·log NR) words per window
// and space O(1/ε·log NR) words per site.
//
// The sampling protocols embed a SumTracker to track ‖A_w‖_F² for the ES
// estimator; it is also exported through the facade as a standalone
// aggregate tracker.
type SumTracker struct {
	cfg   Config
	net   *protocol.Network
	sites []*sumSite
	// est is the coordinator's estimate Σⱼ Ĉ⁽ʲ⁾.
	est float64
}

type sumSite struct {
	hist *eh.Histogram
	// chat is Ĉ⁽ʲ⁾, the coordinator's view of this site (the site tracks
	// it too — it changes only when the site itself sends an update).
	chat float64
	now  int64
	// checked is the histogram version at the last reporting check; while
	// it is unchanged the site's C cannot have moved, so the check is
	// skipped.
	checked uint64
}

// NewSumTracker returns a SUM tracker over cfg.Sites sites reporting to
// net. Weights are supplied per observation (use ‖row‖² for Frobenius
// tracking, 1 for COUNT).
func NewSumTracker(cfg Config, net *protocol.Network) (*SumTracker, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &SumTracker{cfg: cfg, net: net}
	t.sites = make([]*sumSite, cfg.Sites)
	for i := range t.sites {
		// The gEH runs at ε/2 so histogram error plus reporting slack stay
		// within ε overall (the paper's "adjust ε by a constant factor").
		t.sites[i] = &sumSite{hist: eh.New(cfg.W, cfg.Eps/2)}
	}
	return t, nil
}

// ObserveWeight feeds a weight observed at the given site and time.
func (t *SumTracker) ObserveWeight(site int, now int64, w float64) {
	s := t.sites[site]
	s.now = now
	if w > 0 {
		s.hist.Insert(now, w)
	} else {
		s.hist.Advance(now)
	}
	t.check(site)
}

// AdvanceSite moves one site's clock forward (expirations only).
func (t *SumTracker) AdvanceSite(site int, now int64) {
	s := t.sites[site]
	if now <= s.now {
		return
	}
	s.now = now
	s.hist.Advance(now)
	t.check(site)
}

// AdvanceAll moves every site's clock forward.
func (t *SumTracker) AdvanceAll(now int64) {
	for i := range t.sites {
		t.AdvanceSite(i, now)
	}
}

// check applies the reporting rule |C − Ĉ| > εC.
func (t *SumTracker) check(site int) {
	s := t.sites[site]
	if v := s.hist.Version(); v == s.checked {
		return
	} else {
		s.checked = v
	}
	c := s.hist.Query()
	d := c - s.chat
	if abs(d) > t.cfg.Eps*c {
		t.net.UpFrom(site, protocol.ScalarWords)
		t.est += d
		s.chat = c
	}
	t.net.SampleSiteSpace(int64(s.hist.Buckets()) * 3)
}

// Estimate returns the coordinator's current estimate of the window sum.
func (t *SumTracker) Estimate() float64 { return t.est }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
