package core

// Numerical and adversarial stress tests: extreme norm ratios (the R in
// the bounds), batch arrivals in one tick, exponentially growing norms,
// and degenerate priority distributions.

import (
	"math"
	"math/rand"
	"testing"

	"distwindow/internal/protocol"
	"distwindow/internal/sampling"
	"distwindow/internal/stream"
	"distwindow/internal/window"
	"distwindow/mat"
)

func TestSamplerExtremeNormRatio(t *testing.T) {
	// R = 1e12: tiny rows must never drown out the huge ones.
	cfg := Config{D: 2, W: 2000, Eps: 0.2, Sites: 2, Ell: 64, Seed: 1}
	net := protocol.NewNetwork(2)
	s, _ := NewSampler(cfg, SamplerOpts{Scheme: sampling.Priority{}}, net)
	rng := rand.New(rand.NewSource(2))
	truth := window.NewExact(cfg.W)
	for i := int64(1); i <= 4000; i++ {
		scale := 1e-3
		if rng.Intn(100) == 0 {
			scale = 1e3
		}
		v := []float64{scale * rng.NormFloat64(), scale * rng.NormFloat64()}
		if mat.VecNormSq(v) == 0 {
			continue
		}
		s.Observe(rng.Intn(2), stream.Row{T: i, V: v})
		truth.Add(stream.Row{T: i, V: v})
	}
	if err := truth.CovErr(2, s.Sketch()); err > 0.5 {
		t.Fatalf("extreme-R covariance error %v", err)
	}
}

func TestDA1ExponentiallyGrowingNorms(t *testing.T) {
	// Norms double every 100 rows — log(NR) stress for the histograms.
	cfg := Config{D: 3, W: 500, Eps: 0.2, Sites: 2, Seed: 1}
	net := protocol.NewNetwork(2)
	da, _ := NewDA1(cfg, net)
	rng := rand.New(rand.NewSource(3))
	truth := window.NewExact(cfg.W)
	for i := int64(1); i <= 2000; i++ {
		scale := math.Pow(2, float64(i)/100)
		v := []float64{scale * rng.NormFloat64(), scale * rng.NormFloat64(), scale * rng.NormFloat64()}
		da.Observe(rng.Intn(2), stream.Row{T: i, V: v})
		truth.Add(stream.Row{T: i, V: v})
	}
	if err := truth.CovErr(3, da.Sketch()); err > 4*cfg.Eps {
		t.Fatalf("growing-norm covariance error %v", err)
	}
}

func TestDA2BatchArrivalsSingleTick(t *testing.T) {
	// 500 rows share one timestamp, then silence until they all expire at
	// once — the harshest expiry burst.
	cfg := Config{D: 4, W: 100, Eps: 0.2, Sites: 2, Seed: 1}
	net := protocol.NewNetwork(2)
	da, _ := NewDA2(cfg, net)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		v := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		da.Observe(i%2, stream.Row{T: 50, V: v})
	}
	if mat.FrobSq(da.Sketch()) == 0 {
		t.Fatal("batch not tracked")
	}
	da.AdvanceTime(151) // all rows expire at 150 simultaneously
	if f := mat.FrobSq(da.Sketch()); f > 1e-9 {
		t.Fatalf("batch expiry left mass %v", f)
	}
}

func TestSamplerConstantPriorityWeights(t *testing.T) {
	// Identical weights everywhere: priorities differ only through u, the
	// degenerate case closest to uniform sampling.
	cfg := Config{D: 2, W: 1000, Eps: 0.2, Sites: 3, Ell: 64, Seed: 5}
	net := protocol.NewNetwork(3)
	s, _ := NewSampler(cfg, SamplerOpts{Scheme: sampling.ES{}}, net)
	truth := window.NewExact(cfg.W)
	rng := rand.New(rand.NewSource(6))
	for i := int64(1); i <= 3000; i++ {
		v := []float64{1, 0}
		if i%2 == 0 {
			v = []float64{0, 1}
		}
		s.Observe(rng.Intn(3), stream.Row{T: i, V: v})
		truth.Add(stream.Row{T: i, V: v})
	}
	if err := truth.CovErr(2, s.Sketch()); err > 0.4 {
		t.Fatalf("constant-weight covariance error %v", err)
	}
}

func TestSumTrackerTinyAndHugeWeights(t *testing.T) {
	cfg := Config{D: 1, W: 400, Eps: 0.1, Sites: 1}
	net := protocol.NewNetwork(1)
	st, _ := NewSumTracker(cfg, net)
	var items []struct {
		t int64
		w float64
	}
	rng := rand.New(rand.NewSource(7))
	for i := int64(1); i <= 2000; i++ {
		w := 1e-9
		if rng.Intn(20) == 0 {
			w = 1e9
		}
		st.ObserveWeight(0, i, w)
		items = append(items, struct {
			t int64
			w float64
		}{i, w})
	}
	var truthSum float64
	for _, it := range items {
		if it.t > 2000-400 {
			truthSum += it.w
		}
	}
	got := st.Estimate()
	if math.Abs(got-truthSum)/truthSum > 3*cfg.Eps {
		t.Fatalf("R=1e18 sum estimate %v vs %v", got, truthSum)
	}
}

func TestDecayVeryFastDecay(t *testing.T) {
	// γ = 0.5: half-life one tick. Only the newest couple of rows matter.
	cfg := Config{D: 2, W: 1, Eps: 0.3, Sites: 1, Seed: 1}
	net := protocol.NewNetwork(1)
	dt, _ := NewDecay(cfg, 0.5, net)
	for i := int64(1); i <= 200; i++ {
		dt.Observe(0, stream.Row{T: i, V: []float64{1, 0}})
	}
	// Steady state: Σ 0.5^k = 2 along e1.
	g := mat.Gram(dt.Sketch())
	if math.Abs(g.At(0, 0)-2) > 1 {
		t.Fatalf("steady-state decayed mass %v, want ≈2", g.At(0, 0))
	}
}

func TestSamplerManySitesFewRows(t *testing.T) {
	// More sites than rows: most sites never see data.
	cfg := Config{D: 2, W: 1000, Eps: 0.3, Sites: 50, Ell: 32, Seed: 8}
	net := protocol.NewNetwork(50)
	s, _ := NewSampler(cfg, SamplerOpts{Scheme: sampling.Priority{}}, net)
	truth := window.NewExact(cfg.W)
	for i := int64(1); i <= 20; i++ {
		v := []float64{float64(i), 1}
		s.Observe(int(i)%50, stream.Row{T: i, V: v})
		truth.Add(stream.Row{T: i, V: v})
	}
	if err := truth.CovErr(2, s.Sketch()); err > 1e-9 {
		t.Fatalf("sub-ℓ population should be exact, err=%v", err)
	}
}
