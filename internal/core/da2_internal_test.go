package core

import (
	"math/rand"
	"testing"

	"distwindow/internal/protocol"
	"distwindow/internal/stream"
	"distwindow/mat"
)

// feedDA2 streams n Gaussian rows at one per tick into a fresh DA2.
func feedDA2(t *testing.T, compress bool, w int64, n int64, seed int64) (*DA2, *protocol.Network) {
	t.Helper()
	cfg := Config{D: 4, W: w, Eps: 0.2, Sites: 2, Seed: 1}
	net := protocol.NewNetwork(2)
	var (
		da  *DA2
		err error
	)
	if compress {
		da, err = NewDA2C(cfg, net)
	} else {
		da, err = NewDA2(cfg, net)
	}
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := int64(1); i <= n; i++ {
		v := make([]float64, 4)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		da.Observe(rng.Intn(2), stream.Row{T: i, V: v})
	}
	return da, net
}

func TestDA2LedgerMovesToQueueAtBoundary(t *testing.T) {
	da, _ := feedDA2(t, false, 100, 250, 1)
	// At t=250 the site is inside window (200, 300]; the ledger holds only
	// messages from the current window and q only unexpired older ones.
	for i, s := range da.sites {
		for _, m := range s.ledger {
			if m.T <= 200 {
				t.Fatalf("site %d ledger holds message from a closed window (T=%d)", i, m.T)
			}
		}
		for _, m := range s.q {
			if m.T <= 150 {
				t.Fatalf("site %d queue holds message that should have expired (T=%d)", i, m.T)
			}
		}
		if s.boundary != 300 {
			t.Fatalf("site %d boundary = %d, want 300", i, s.boundary)
		}
	}
}

func TestDA2BigTimeJumpCrossesManyBoundaries(t *testing.T) {
	da, _ := feedDA2(t, false, 100, 150, 2)
	// Jump 50 windows ahead in one Advance; everything must unwind cleanly.
	da.AdvanceTime(5_000)
	if f := mat.FrobSq(da.Sketch()); f > 1e-9 {
		t.Fatalf("sketch mass %v after multi-window jump", f)
	}
	for i, s := range da.sites {
		if len(s.ledger) != 0 || len(s.q) != 0 {
			t.Fatalf("site %d retains state after jump: ledger=%d q=%d", i, len(s.ledger), len(s.q))
		}
	}
	// And it keeps working afterwards.
	da.Observe(0, stream.Row{T: 5_001, V: []float64{1, 0, 0, 0}})
	if f := mat.FrobSq(da.Sketch()); f == 0 {
		t.Fatal("tracker dead after jump")
	}
}

func TestDA2CRetiresIWMTeAfterDrain(t *testing.T) {
	da, _ := feedDA2(t, true, 100, 400, 3)
	// Drain everything.
	da.AdvanceTime(10_000)
	for i, s := range da.sites {
		if s.e != nil {
			t.Fatalf("site %d IWMT_e alive after full drain", i)
		}
		if s.resid != nil && mat.FrobSq(s.resid) > 1e-9 {
			t.Fatalf("site %d residual not drained: %v", i, mat.FrobSq(s.resid))
		}
	}
}

func TestDA2MessagesCarryWindowTimestamps(t *testing.T) {
	da, _ := feedDA2(t, false, 100, 300, 4)
	for i, s := range da.sites {
		prev := int64(0)
		for _, m := range s.ledger {
			if m.T < prev {
				t.Fatalf("site %d ledger out of order", i)
			}
			prev = m.T
		}
		prev = 0
		for _, m := range s.q {
			if m.T < prev {
				t.Fatalf("site %d queue out of order", i)
			}
			prev = m.T
		}
	}
}

func TestDA2SingleRowWindow(t *testing.T) {
	cfg := Config{D: 2, W: 10, Eps: 0.3, Sites: 1, Seed: 1}
	net := protocol.NewNetwork(1)
	da, _ := NewDA2(cfg, net)
	da.Observe(0, stream.Row{T: 5, V: []float64{3, 4}})
	g := mat.Gram(da.Sketch())
	if g.At(0, 0) < 8 || g.At(0, 0) > 10 {
		t.Fatalf("single-row sketch wrong: %v", g)
	}
	da.AdvanceTime(16) // row expires at t=15
	if f := mat.FrobSq(da.Sketch()); f > 1e-9 {
		t.Fatalf("single row did not expire: %v", f)
	}
}

func TestDA1EmptySitesCostNothing(t *testing.T) {
	// 10 sites, traffic only on site 0: idle sites must not communicate.
	cfg := Config{D: 3, W: 100, Eps: 0.2, Sites: 10, Seed: 1}
	net := protocol.NewNetwork(10)
	da, _ := NewDA1(cfg, net)
	rng := rand.New(rand.NewSource(5))
	for i := int64(1); i <= 300; i++ {
		da.Observe(0, stream.Row{T: i, V: []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}})
	}
	msgs := net.Stats().MsgsUp
	// All messages should be explained by site 0's activity; the other
	// nine sites are idle. Advance them explicitly and recheck.
	da.AdvanceTime(301)
	if net.Stats().MsgsUp != msgs {
		t.Fatal("idle sites generated traffic on AdvanceTime")
	}
}

func TestSumTrackerNegativeUpdatesOnShrinkingWindow(t *testing.T) {
	cfg := Config{D: 1, W: 100, Eps: 0.1, Sites: 1}
	net := protocol.NewNetwork(1)
	st, _ := NewSumTracker(cfg, net)
	for i := int64(1); i <= 100; i++ {
		st.ObserveWeight(0, i, 10)
	}
	high := st.Estimate()
	// Stop arrivals; as the window empties the estimate must follow down.
	for i := int64(101); i <= 220; i += 10 {
		st.AdvanceAll(i)
	}
	low := st.Estimate()
	if low > high/2 {
		t.Fatalf("estimate %v did not track the shrinking window (was %v)", low, high)
	}
}

func TestDA1ExactStorageReference(t *testing.T) {
	// The exact-storage ablation must (a) be at least as accurate as the
	// mEH-backed DA1 on average and (b) pay O(window) site space for it.
	cfg := Config{D: 6, W: 1200, Eps: 0.15, Sites: 3, Seed: 1}
	evs := genEvents(5000, 6, 3, 211)

	netE := protocol.NewNetwork(3)
	exact, err := NewDA1Exact(cfg, netE)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Name() != "DA1-exact" {
		t.Fatalf("Name = %q", exact.Name())
	}
	avgE, _ := drive(t, exact, evs, cfg.W, 6, 500)

	netH := protocol.NewNetwork(3)
	hist, _ := NewDA1(cfg, netH)
	avgH, _ := drive(t, hist, evs, cfg.W, 6, 500)

	if avgE > 2*cfg.Eps {
		t.Fatalf("exact-storage DA1 err %v > 2ε", avgE)
	}
	// The histogram adds its own O(ε); exact mode should not be much worse.
	if avgE > avgH*1.5+0.02 {
		t.Fatalf("exact storage (%v) should not lose to mEH mode (%v)", avgE, avgH)
	}
	// Exact mode stores the raw window: its site space must scale with the
	// per-site window share (≈ W/sites rows × (d+1) words). The mEH's
	// advantage only materializes at windows much larger than its
	// O(d/ε²·log NR) structures, which this small test does not reach.
	perSiteRows := int64(1200 / 3)
	if netE.Stats().MaxSiteWords < perSiteRows*(6+1)*8/10 {
		t.Fatalf("exact-mode site space %d words too small for ≈%d raw rows",
			netE.Stats().MaxSiteWords, perSiteRows)
	}
}
