package core

import (
	"fmt"

	"distwindow/internal/eh"
	"distwindow/internal/iwmt"
	"distwindow/internal/meh"
	"distwindow/internal/protocol"
	"distwindow/mat"
)

// This file implements checkpoint/restore for the deterministic trackers,
// so long-running deployments can survive process restarts without losing
// window state. The sampling family is intentionally excluded: its state
// includes in-flight randomness (the priority RNG) whose faithful capture
// would change the protocol's probabilistic guarantees across a restart.

// DA1Snapshot serializes a DA1 tracker.
type DA1Snapshot struct {
	Cfg   Config
	Sites []DA1SiteSnapshot
	Chat  []float64
	Now   int64
}

// DA1SiteSnapshot serializes one DA1 site.
type DA1SiteSnapshot struct {
	Hist  meh.Snapshot
	Chat  []float64
	Churn float64
	LastF float64
	Now   int64
	PV    []float64
}

// Snapshot captures the tracker's full state.
func (t *DA1) Snapshot() DA1Snapshot {
	sn := DA1Snapshot{Cfg: t.cfg, Chat: cloneData(t.chat), Now: t.now}
	for _, s := range t.sites {
		sn.Sites = append(sn.Sites, DA1SiteSnapshot{
			Hist:  s.hist.Snapshot(),
			Chat:  cloneData(s.chat),
			Churn: s.churn,
			LastF: s.lastF,
			Now:   s.now,
			PV:    append([]float64(nil), s.pv...),
		})
	}
	return sn
}

// RestoreDA1 rebuilds a DA1 tracker onto a fresh network.
func RestoreDA1(sn DA1Snapshot, net *protocol.Network) (*DA1, error) {
	t, err := NewDA1(sn.Cfg, net)
	if err != nil {
		return nil, err
	}
	if len(sn.Sites) != sn.Cfg.Sites {
		return nil, fmt.Errorf("core: DA1 snapshot has %d sites, config says %d", len(sn.Sites), sn.Cfg.Sites)
	}
	if err := restoreInto(t.chat, sn.Chat); err != nil {
		return nil, err
	}
	t.now = sn.Now
	for i, ss := range sn.Sites {
		h, err := meh.Restore(ss.Hist)
		if err != nil {
			return nil, fmt.Errorf("core: DA1 site %d: %w", i, err)
		}
		s := t.sites[i]
		s.hist = h
		sn.Cfg.pools.attach(h)
		if err := restoreInto(s.chat, ss.Chat); err != nil {
			return nil, err
		}
		s.churn = ss.Churn
		s.lastF = ss.LastF
		s.now = ss.Now
		if len(ss.PV) == sn.Cfg.D {
			s.pv = append([]float64(nil), ss.PV...)
		}
	}
	return t, nil
}

// DA2Snapshot serializes a DA2 tracker.
type DA2Snapshot struct {
	Cfg      Config
	Compress bool
	Sites    []DA2SiteSnapshot
	Chat     []float64
	Now      int64
}

// DA2SiteSnapshot serializes one DA2 site.
type DA2SiteSnapshot struct {
	A        iwmt.Snapshot
	Ledger   []iwmt.Msg
	Q        []iwmt.Msg
	E        *iwmt.Snapshot
	Resid    []float64
	Mass     eh.Snapshot
	Boundary int64
	Now      int64
}

// Snapshot captures the tracker's full state.
func (t *DA2) Snapshot() DA2Snapshot {
	sn := DA2Snapshot{Cfg: t.cfg, Compress: t.compress, Chat: cloneData(t.chat), Now: t.now}
	for _, s := range t.sites {
		ss := DA2SiteSnapshot{
			A:        s.a.Snapshot(),
			Ledger:   cloneMsgs(s.ledger),
			Q:        cloneMsgs(s.q),
			Mass:     s.mass.Snapshot(),
			Boundary: s.boundary,
			Now:      s.now,
		}
		if s.e != nil {
			e := s.e.Snapshot()
			ss.E = &e
		}
		if s.resid != nil {
			ss.Resid = cloneData(s.resid)
		}
		sn.Sites = append(sn.Sites, ss)
	}
	return sn
}

// RestoreDA2 rebuilds a DA2 tracker onto a fresh network.
func RestoreDA2(sn DA2Snapshot, net *protocol.Network) (*DA2, error) {
	t, err := newDA2(sn.Cfg, net, sn.Compress)
	if err != nil {
		return nil, err
	}
	if len(sn.Sites) != sn.Cfg.Sites {
		return nil, fmt.Errorf("core: DA2 snapshot has %d sites, config says %d", len(sn.Sites), sn.Cfg.Sites)
	}
	if err := restoreInto(t.chat, sn.Chat); err != nil {
		return nil, err
	}
	t.now = sn.Now
	for i, ss := range sn.Sites {
		s := t.sites[i]
		mass, err := eh.Restore(ss.Mass)
		if err != nil {
			return nil, fmt.Errorf("core: DA2 site %d mass: %w", i, err)
		}
		s.mass = mass
		a, err := iwmt.Restore(ss.A, func() float64 { return sn.Cfg.Eps * s.mass.Query() })
		if err != nil {
			return nil, fmt.Errorf("core: DA2 site %d IWMT_a: %w", i, err)
		}
		s.a = a
		s.ledger = cloneMsgs(ss.Ledger)
		s.q = cloneMsgs(ss.Q)
		s.boundary = ss.Boundary
		s.now = ss.Now
		if ss.E != nil {
			e, err := iwmt.Restore(*ss.E, func() float64 { return sn.Cfg.Eps * s.mass.Query() })
			if err != nil {
				return nil, fmt.Errorf("core: DA2 site %d IWMT_e: %w", i, err)
			}
			s.e = e
		}
		if ss.Resid != nil {
			s.resid = mat.NewDense(sn.Cfg.D, sn.Cfg.D)
			if err := restoreInto(s.resid, ss.Resid); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// SumSnapshot serializes a SumTracker.
type SumSnapshot struct {
	Cfg   Config
	Sites []SumSiteSnapshot
	Est   float64
}

// SumSiteSnapshot serializes one SUM site.
type SumSiteSnapshot struct {
	Hist    eh.Snapshot
	Chat    float64
	Now     int64
	Checked uint64
}

// Snapshot captures the tracker's state.
func (t *SumTracker) Snapshot() SumSnapshot {
	sn := SumSnapshot{Cfg: t.cfg, Est: t.est}
	for _, s := range t.sites {
		sn.Sites = append(sn.Sites, SumSiteSnapshot{
			Hist: s.hist.Snapshot(), Chat: s.chat, Now: s.now, Checked: s.checked,
		})
	}
	return sn
}

// RestoreSum rebuilds a SumTracker onto a fresh network.
func RestoreSum(sn SumSnapshot, net *protocol.Network) (*SumTracker, error) {
	t, err := NewSumTracker(sn.Cfg, net)
	if err != nil {
		return nil, err
	}
	if len(sn.Sites) != sn.Cfg.Sites {
		return nil, fmt.Errorf("core: SUM snapshot has %d sites, config says %d", len(sn.Sites), sn.Cfg.Sites)
	}
	t.est = sn.Est
	for i, ss := range sn.Sites {
		h, err := eh.Restore(ss.Hist)
		if err != nil {
			return nil, fmt.Errorf("core: SUM site %d: %w", i, err)
		}
		t.sites[i] = &sumSite{hist: h, chat: ss.Chat, now: ss.Now, checked: ss.Checked}
	}
	return t, nil
}

func cloneData(m *mat.Dense) []float64 {
	return append([]float64(nil), m.Data()...)
}

func cloneMsgs(ms []iwmt.Msg) []iwmt.Msg {
	out := make([]iwmt.Msg, len(ms))
	for i, m := range ms {
		out[i] = iwmt.Msg{T: m.T, V: append([]float64(nil), m.V...)}
	}
	return out
}

func restoreInto(dst *mat.Dense, data []float64) error {
	if len(data) != len(dst.Data()) {
		return fmt.Errorf("core: snapshot matrix length %d, want %d", len(data), len(dst.Data()))
	}
	copy(dst.Data(), data)
	return nil
}
