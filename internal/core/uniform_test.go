package core

// The paper's §II motivating example, as an executable experiment: on a
// matrix with one dominant row among many light ones, uniform sampling
// misses the heavy row with probability 1−ℓ/n and its covariance error
// approaches 1, while weighted (priority) sampling captures it almost
// surely.

import (
	"math/rand"
	"testing"

	"distwindow/internal/protocol"
	"distwindow/internal/sampling"
	"distwindow/internal/stream"
	"distwindow/internal/window"
)

// heavyRowStream is the paper's n×2 example: one row [n, 0], the rest
// [0, 1], shuffled.
func heavyRowStream(n int, seed int64) []stream.Event {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]stream.Event, n)
	heavyAt := rng.Intn(n)
	for i := 0; i < n; i++ {
		v := []float64{0, 1}
		if i == heavyAt {
			v = []float64{float64(n), 0}
		}
		evs[i] = stream.Event{Site: rng.Intn(2), Row: stream.Row{T: int64(i + 1), V: v}}
	}
	return evs
}

func runScheme(t *testing.T, scheme sampling.Scheme, evs []stream.Event, w int64, seed int64) float64 {
	t.Helper()
	cfg := Config{D: 2, W: w, Eps: 0.2, Sites: 2, Ell: 32, Seed: seed}
	net := protocol.NewNetwork(2)
	s, err := NewSampler(cfg, SamplerOpts{Scheme: scheme}, net)
	if err != nil {
		t.Fatal(err)
	}
	truth := window.NewExact(w)
	for _, e := range evs {
		s.Observe(e.Site, e.Row)
		truth.Add(e.Row)
	}
	return truth.CovErr(2, s.Sketch())
}

func TestUniformSamplingFailsOnSkew(t *testing.T) {
	// n=4000 active rows, ℓ=32: P[uniform hits the heavy row] ≈ 4·32/4000
	// per trial. Average over trials: uniform's error must be large most
	// of the time, priority sampling's error tiny every time.
	const n = 4000
	w := int64(n + 10)
	uniformBad, priorityBad := 0, 0
	const trials = 5
	for trial := int64(0); trial < trials; trial++ {
		evs := heavyRowStream(n, 100+trial)
		if e := runScheme(t, sampling.Uniform{}, evs, w, trial); e > 0.5 {
			uniformBad++
		}
		if e := runScheme(t, sampling.Priority{}, evs, w, trial); e > 0.5 {
			priorityBad++
		}
	}
	if priorityBad != 0 {
		t.Fatalf("priority sampling missed the heavy row in %d/%d trials", priorityBad, trials)
	}
	if uniformBad < trials-1 {
		t.Fatalf("uniform sampling succeeded too often (%d/%d bad) — the motivating example should break it", uniformBad, trials)
	}
}

func TestUniformSamplerWorksOnUnskewedData(t *testing.T) {
	// Sanity: with near-equal norms the uniform baseline is fine — the
	// failure above is about skew, not a broken implementation.
	rng := rand.New(rand.NewSource(1))
	evs := make([]stream.Event, 3000)
	for i := range evs {
		evs[i] = stream.Event{
			Site: rng.Intn(2),
			Row:  stream.Row{T: int64(i + 1), V: []float64{rng.NormFloat64(), rng.NormFloat64()}},
		}
	}
	if e := runScheme(t, sampling.Uniform{}, evs, 1000, 2); e > 0.45 {
		t.Fatalf("uniform baseline error %v on unskewed data", e)
	}
}

func TestUniformSamplerName(t *testing.T) {
	net := protocol.NewNetwork(1)
	s, err := NewSampler(Config{D: 2, W: 10, Eps: 0.2, Sites: 1, Ell: 4}, SamplerOpts{Scheme: sampling.Uniform{}}, net)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "UNIFORM" {
		t.Fatalf("Name = %q", s.Name())
	}
}
