package core

import (
	"distwindow/internal/meh"
	"distwindow/mat"
)

// Pools bundles the cross-tracker storage pools a multi-tenant registry
// shares among the trackers it owns: decomposition workspaces and mEH
// bucket storage. The zero value disables sharing — every tracker
// allocates privately, exactly as before the pools existed — so threading
// Pools through Config is free for single-tracker callers.
//
// Pools is runtime-only state: it is never serialized. Config carries it
// in an unexported field (gob skips it, so a snapshot cannot depend on
// which process's pools a tracker happened to share), and restored
// trackers re-attach whatever pools the restoring process passes in.
type Pools struct {
	// WS shares decomposition/power-iteration workspaces.
	WS *mat.WorkspacePool
	// Meh shares mEH row buffers and bucket sketches.
	Meh *meh.Pool
}

// NewPools returns a fully-populated pool set with default caps.
func NewPools() Pools {
	return Pools{WS: mat.NewWorkspacePool(0), Meh: meh.NewPool()}
}

// Shared reports whether any pool is attached.
func (p Pools) Shared() bool { return p.WS != nil || p.Meh != nil }

// workspace returns a workspace from the shared pool when one is
// attached, fresh otherwise (WorkspacePool.Get handles the nil pool).
func (p Pools) workspace() *mat.Workspace { return p.WS.Get() }

// attach installs the shared mEH pool on a histogram, if any.
func (p Pools) attach(h *meh.Histogram) {
	if p.Meh != nil && h != nil {
		h.SetShared(p.Meh)
	}
}

// Releaser is implemented by trackers that can donate their pooled
// storage back to the Config.Pools they were built with. Release must
// only be called once ingestion has stopped for good — the tracker is
// unusable afterwards. The facade's Registry calls it on eviction.
type Releaser interface {
	Release()
}
