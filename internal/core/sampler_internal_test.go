package core

import (
	"math/rand"
	"testing"

	"distwindow/internal/protocol"
	"distwindow/internal/sampling"
	"distwindow/internal/stream"
)

// checkThresholdInvariant verifies the lazy protocol's structural
// invariant after every event: S is exactly the set of coordinator-held
// active rows with ρ ≥ τ, S' holds only ρ < τ, and every site's local
// threshold equals the coordinator's.
func checkThresholdInvariant(t *testing.T, s *Sampler) {
	t.Helper()
	for _, it := range s.S {
		if it.Rho < s.tau {
			t.Fatalf("S contains ρ=%v below τ=%v", it.Rho, s.tau)
		}
	}
	for _, it := range s.Sp {
		if it.Rho >= s.tau {
			t.Fatalf("S' contains ρ=%v ≥ τ=%v (should have been collected)", it.Rho, s.tau)
		}
	}
	for i, st := range s.sites {
		if st.tauJ != s.tau {
			t.Fatalf("site %d threshold %v != coordinator τ %v", i, st.tauJ, s.tau)
		}
	}
}

func TestLazyThresholdInvariant(t *testing.T) {
	cfg := Config{D: 3, W: 400, Eps: 0.3, Sites: 3, Ell: 16, Seed: 1}
	net := protocol.NewNetwork(3)
	s, err := NewSampler(cfg, SamplerOpts{Scheme: sampling.Priority{}}, net)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := int64(1); i <= 3000; i++ {
		v := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		s.Observe(rng.Intn(3), stream.Row{T: i, V: v})
		if i%100 == 0 {
			checkThresholdInvariant(t, s)
		}
	}
}

func TestLazyThresholdInvariantES(t *testing.T) {
	cfg := Config{D: 3, W: 400, Eps: 0.3, Sites: 3, Ell: 16, Seed: 3}
	net := protocol.NewNetwork(3)
	s, _ := NewSampler(cfg, SamplerOpts{Scheme: sampling.ES{}}, net)
	rng := rand.New(rand.NewSource(4))
	for i := int64(1); i <= 2000; i++ {
		v := []float64{rng.NormFloat64() * 5, rng.NormFloat64(), rng.NormFloat64()}
		s.Observe(rng.Intn(3), stream.Row{T: i, V: v})
		if i%100 == 0 {
			checkThresholdInvariant(t, s)
		}
	}
}

func TestRefillStopsWhenDrained(t *testing.T) {
	// Fewer active rows than ℓ everywhere: refill must terminate with the
	// whole population at the coordinator and not spin broadcasting.
	cfg := Config{D: 2, W: 100, Eps: 0.3, Sites: 2, Ell: 32, Seed: 5}
	net := protocol.NewNetwork(2)
	s, _ := NewSampler(cfg, SamplerOpts{Scheme: sampling.Priority{}}, net)
	for i := int64(1); i <= 10; i++ {
		s.Observe(int(i)%2, stream.Row{T: i, V: []float64{1, float64(i)}})
	}
	// Jump so everything expires, then add two rows; the refill path runs.
	s.AdvanceTime(10_000)
	before := net.Stats().Broadcasts
	s.Observe(0, stream.Row{T: 10_001, V: []float64{1, 2}})
	s.Observe(1, stream.Row{T: 10_002, V: []float64{3, 4}})
	if got := net.Stats().Broadcasts - before; got > 50 {
		t.Fatalf("refill made %d broadcasts on a drained system", got)
	}
	nS, _ := s.SampleCount()
	if nS != 2 {
		t.Fatalf("|S| = %d, want 2 (the whole population)", nS)
	}
}

func TestExactPolicyNegotiationRestoresEll(t *testing.T) {
	// After a mass expiry, negotiation must pull queued rows back up to ℓ
	// (or the whole population).
	cfg := Config{D: 2, W: 500, Eps: 0.3, Sites: 2, Ell: 8, Seed: 6}
	net := protocol.NewNetwork(2)
	s, _ := NewSampler(cfg, SamplerOpts{Scheme: sampling.Priority{}, Exact: true}, net)
	rng := rand.New(rand.NewSource(7))
	for i := int64(1); i <= 600; i++ {
		s.Observe(rng.Intn(2), stream.Row{T: i, V: []float64{rng.NormFloat64(), rng.NormFloat64()}})
	}
	nS, _ := s.SampleCount()
	if nS != 8 {
		t.Fatalf("|S| = %d, want ℓ=8", nS)
	}
	// Let 90% of the window expire without new arrivals.
	s.AdvanceTime(1050)
	nS, _ = s.SampleCount()
	if nS != 8 {
		t.Fatalf("|S| = %d after expiry, want ℓ=8 via negotiation", nS)
	}
}

func TestUsedSamplesTopL(t *testing.T) {
	cfg := Config{D: 2, W: 1000, Eps: 0.3, Sites: 1, Ell: 4, Seed: 8}
	net := protocol.NewNetwork(1)
	s, _ := NewSampler(cfg, SamplerOpts{Scheme: sampling.Priority{}}, net)
	rng := rand.New(rand.NewSource(9))
	for i := int64(1); i <= 500; i++ {
		s.Observe(0, stream.Row{T: i, V: []float64{rng.NormFloat64(), rng.NormFloat64()}})
	}
	used := s.usedSamples()
	if len(used) != 4 {
		t.Fatalf("top-ℓ used %d samples, want 4", len(used))
	}
	// They must be the highest-priority entries of S.
	min := used[0].Rho
	for _, it := range used {
		if it.Rho < min {
			min = it.Rho
		}
	}
	for _, it := range s.S {
		inUsed := false
		for _, u := range used {
			if u.Rho == it.Rho {
				inUsed = true
			}
		}
		if !inUsed && it.Rho > min {
			t.Fatalf("S has ρ=%v above used minimum %v", it.Rho, min)
		}
	}
}

func TestUsedSamplesAllEqualsS(t *testing.T) {
	cfg := Config{D: 2, W: 1000, Eps: 0.3, Sites: 1, Ell: 4, Seed: 10}
	net := protocol.NewNetwork(1)
	s, _ := NewSampler(cfg, SamplerOpts{Scheme: sampling.Priority{}, UseAll: true}, net)
	rng := rand.New(rand.NewSource(11))
	for i := int64(1); i <= 500; i++ {
		s.Observe(0, stream.Row{T: i, V: []float64{rng.NormFloat64(), rng.NormFloat64()}})
	}
	if got, want := len(s.usedSamples()), len(s.S); got != want {
		t.Fatalf("-ALL used %d samples, want |S|=%d", got, want)
	}
}

func TestSamplerNoCommunicationWithoutMass(t *testing.T) {
	cfg := Config{D: 2, W: 100, Eps: 0.3, Sites: 2, Ell: 4, Seed: 12}
	net := protocol.NewNetwork(2)
	s, _ := NewSampler(cfg, SamplerOpts{Scheme: sampling.Priority{}}, net)
	for i := int64(1); i <= 100; i++ {
		s.Observe(int(i)%2, stream.Row{T: i, V: []float64{0, 0}}) // zero rows
	}
	if w := net.Stats().TotalWords(); w != 0 {
		t.Fatalf("zero-mass stream caused %d words", w)
	}
}

func TestConfigEllDerivation(t *testing.T) {
	c := Config{D: 2, W: 10, Eps: 0.1, Sites: 1}
	if c.ell() != sampling.SampleSize(0.1) {
		t.Fatalf("ell() = %d, want derived %d", c.ell(), sampling.SampleSize(0.1))
	}
	c.Ell = 77
	if c.ell() != 77 {
		t.Fatalf("ell() = %d, want override 77", c.ell())
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{D: 0, W: 1, Eps: 0.1, Sites: 1},
		{D: 1, W: 0, Eps: 0.1, Sites: 1},
		{D: 1, W: 1, Eps: 0, Sites: 1},
		{D: 1, W: 1, Eps: 1, Sites: 1},
		{D: 1, W: 1, Eps: 0.1, Sites: 0},
		{D: 1, W: 1, Eps: 0.1, Sites: 1, Ell: -1},
	}
	for i, c := range bad {
		if err := c.validate(); err == nil {
			t.Fatalf("case %d: want validation error", i)
		}
	}
	good := Config{D: 1, W: 1, Eps: 0.1, Sites: 1}
	if err := good.validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}
