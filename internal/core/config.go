// Package core implements the paper's distributed sliding-window tracking
// protocols: the sampling family (PWOR and ESWOR with exact and
// lazy-broadcast threshold maintenance, with the -ALL estimator variants
// and with-replacement extensions) and the deterministic family (SUM
// tracking, DA1 and DA2). Every protocol implements protocol.Tracker and
// reports its communication to a protocol.Network using the paper's
// word-count accounting.
package core

import (
	"fmt"

	"distwindow/internal/sampling"
)

// Config carries the parameters shared by all protocols.
type Config struct {
	// D is the row dimension.
	D int
	// W is the window length in ticks.
	W int64
	// Eps is the target covariance error ε.
	Eps float64
	// Sites is the number of distributed sites m.
	Sites int
	// Ell overrides the sample-set size ℓ for sampling protocols;
	// 0 derives it from Eps via sampling.SampleSize.
	Ell int
	// Seed drives the protocol's randomness (sampling priorities).
	Seed int64
	// pools optionally shares workspace and mEH storage across trackers
	// (multi-tenant registries); set with WithPools. Unexported so gob
	// snapshots never serialize it — pools are runtime-only state, and a
	// struct field pointing at a no-exported-fields type would poison the
	// whole snapshot encoding. Validate ignores it.
	pools Pools
}

// WithPools returns a copy of the config with shared storage pools
// attached (see Pools). The zero Pools detaches.
func (c Config) WithPools(p Pools) Config {
	c.pools = p
	return c
}

// SharedPools returns the pools attached with WithPools (zero when none).
func (c Config) SharedPools() Pools { return c.pools }

// FieldError reports which Config field failed validation and why; the
// facade wraps it so callers can attribute the failure without parsing the
// message.
type FieldError struct {
	Field string
	Msg   string
}

func (e *FieldError) Error() string { return "core: " + e.Field + " " + e.Msg }

// Validate checks the shared parameter constraints. It is the single
// source of truth for D/W/Eps/Sites/Ell validation — the facade and every
// protocol constructor defer to it. The returned error is a *FieldError.
func (c Config) Validate() error {
	if c.D < 1 {
		return &FieldError{Field: "D", Msg: fmt.Sprintf("= %d, want ≥ 1", c.D)}
	}
	if c.W <= 0 {
		return &FieldError{Field: "W", Msg: fmt.Sprintf("= %d, want > 0", c.W)}
	}
	if c.Eps <= 0 || c.Eps >= 1 {
		return &FieldError{Field: "Eps", Msg: fmt.Sprintf("= %v, want in (0,1)", c.Eps)}
	}
	if c.Sites < 1 {
		return &FieldError{Field: "Sites", Msg: fmt.Sprintf("= %d, want ≥ 1", c.Sites)}
	}
	if c.Ell < 0 {
		return &FieldError{Field: "Ell", Msg: fmt.Sprintf("= %d, want ≥ 0", c.Ell)}
	}
	return nil
}

// validate is the old unexported spelling, kept so the protocol
// constructors read unchanged.
func (c Config) validate() error { return c.Validate() }

// ell resolves the sample-set size.
func (c Config) ell() int {
	if c.Ell > 0 {
		return c.Ell
	}
	return sampling.SampleSize(c.Eps)
}
