package audit

import (
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"distwindow/internal/stream"
	"distwindow/internal/window"
	"distwindow/mat"
)

func TestConfigValidation(t *testing.T) {
	sk := func() *mat.Dense { return mat.NewDense(1, 1) }
	bad := []Config{
		{D: 0, W: 10, Eps: 0.1, Sketch: sk},
		{D: 1, W: 0, Eps: 0.1, Sketch: sk},
		{D: 1, W: 10, Eps: 0, Sketch: sk},
		{D: 1, W: 10, Eps: 1.5, Sketch: sk},
		{D: 1, W: 10, Eps: 0.1}, // no sketch source
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(Config{D: 1, W: 10, Eps: 0.1, Sketch: sk}); err != nil {
		t.Fatal(err)
	}
}

// TestAuditAgainstExactSketch feeds the auditor a shadow of a stream and
// audits a "protocol" that is itself exact — the observed error must be
// ~0 and no violations recorded. Then it audits a corrupted sketch and
// must flag violations.
func TestAuditAgainstExactSketch(t *testing.T) {
	const (
		d = 4
		w = int64(64)
	)
	truth := window.NewExact(w)
	a, err := New(Config{
		D: d, W: w, Eps: 0.1, EveryRows: 16,
		Gram:  func() *mat.Dense { return truth.Gram(d) },
		Words: func() int64 { return 100 },
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := int64(1); i <= 300; i++ {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		truth.Add(stream.Row{T: i, V: v})
		a.Observe(i, v)
	}
	m := a.Metrics()
	if m.Ticks == 0 {
		t.Fatal("no audit ticks over 300 rows at EveryRows=16")
	}
	if m.Violations != 0 {
		t.Fatalf("%d violations auditing an exact sketch", m.Violations)
	}
	if m.MaxErr > 1e-9 {
		t.Fatalf("MaxErr = %v auditing an exact sketch", m.MaxErr)
	}
	if m.WordsPerWindow <= 0 {
		t.Fatal("words-per-window not computed despite a Words source")
	}
	if m.Rows != 300 {
		t.Fatalf("Rows = %d, want 300", m.Rows)
	}
	if m.QueryLatency.Count != m.Ticks {
		t.Fatalf("query latency count %d != ticks %d", m.QueryLatency.Count, m.Ticks)
	}
	if m.Headroom <= 0 {
		t.Fatalf("Headroom = %v, want > 0", m.Headroom)
	}
}

func TestAuditFlagsViolations(t *testing.T) {
	const (
		d = 3
		w = int64(50)
	)
	// The "protocol" reports an empty sketch: the observed error is 1.
	a, err := New(Config{
		D: d, W: w, Eps: 0.2, EveryRows: 10,
		Sketch: func() *mat.Dense { return mat.NewDense(0, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 40; i++ {
		a.Observe(i, []float64{1, 2, 3})
	}
	m := a.Metrics()
	if m.Ticks != 4 {
		t.Fatalf("Ticks = %d, want 4", m.Ticks)
	}
	if m.Violations != m.Ticks {
		t.Fatalf("Violations = %d, want every tick (%d)", m.Violations, m.Ticks)
	}
	if m.LastErr < 0.99 || m.Headroom > -0.7 {
		t.Fatalf("LastErr = %v, Headroom = %v", m.LastErr, m.Headroom)
	}
}

func TestShadowWindowExpiry(t *testing.T) {
	const (
		d = 2
		w = int64(10)
	)
	a, err := New(Config{
		D: d, W: w, Eps: 0.5,
		Sketch: func() *mat.Dense { return mat.NewDense(0, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 30; i++ {
		a.Observe(i, []float64{1, 0})
	}
	s := a.Tick()
	if s.WindowRows != 10 {
		t.Fatalf("WindowRows = %d, want 10", s.WindowRows)
	}
	// Advancing far past the horizon empties the shadow window; the
	// observed error of an empty window is defined as 0.
	a.Advance(100)
	s = a.Tick()
	if s.WindowRows != 0 {
		t.Fatalf("WindowRows after expiry = %d, want 0", s.WindowRows)
	}
	if s.Err != 0 {
		t.Fatalf("empty-window err = %v, want 0", s.Err)
	}
}

func TestAuditorCopiesRows(t *testing.T) {
	a, err := New(Config{
		D: 2, W: 100, Eps: 0.5,
		Sketch: func() *mat.Dense { return mat.NewDense(0, 2) },
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := []float64{3, 4}
	a.Observe(1, buf)
	buf[0], buf[1] = -100, 100
	a.mu.Lock()
	frob := a.frobSq
	a.mu.Unlock()
	if frob != 25 {
		t.Fatalf("frobSq = %v after caller clobbered the row; auditor retained the slice", frob)
	}
}

func TestSampleHistoryBounded(t *testing.T) {
	a, err := New(Config{
		D: 1, W: 1000, Eps: 0.5, EveryRows: 1, KeepSamples: 8,
		Sketch: func() *mat.Dense { return mat.NewDense(0, 1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 50; i++ {
		a.Observe(i, []float64{1})
	}
	s := a.Samples()
	if len(s) != 8 {
		t.Fatalf("retained %d samples, want 8", len(s))
	}
	if s[len(s)-1].T != 50 || s[0].T != 43 {
		t.Fatalf("wrong retained range: first T=%d last T=%d", s[0].T, s[len(s)-1].T)
	}
}

func TestConcurrentObserveAndMetrics(t *testing.T) {
	a, err := New(Config{
		D: 2, W: 500, Eps: 0.5, EveryRows: 64,
		Sketch: func() *mat.Dense { return mat.NewDense(0, 2) },
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := int64(1); i <= 2000; i++ {
			a.Observe(i, []float64{1, 1})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			a.Metrics()
			a.Samples()
		}
	}()
	wg.Wait()
	if got := a.Metrics().Rows; got != 2000 {
		t.Fatalf("Rows = %d, want 2000", got)
	}
}

func TestPanelAndHandler(t *testing.T) {
	a, err := New(Config{
		D: 1, W: 100, Eps: 0.3, EveryRows: 5,
		Sketch: func() *mat.Dense { return mat.NewDense(0, 1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Empty history still renders a document.
	if svg := a.Panel(); !strings.Contains(svg, "<svg") {
		t.Fatal("empty panel is not an SVG document")
	}
	for i := int64(1); i <= 25; i++ {
		a.Observe(i, []float64{1})
	}
	rec := httptest.NewRecorder()
	a.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/audit", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "observed err") || !strings.Contains(body, "target") {
		t.Fatal("panel missing series legend")
	}
}
