// Package audit implements a live ε-error auditor: an opt-in shadow path
// that keeps the exact windowed covariance next to a running protocol and
// periodically measures whether the deployed sketch actually honors
//
//	err(A_w, B) = ‖A_wᵀA_w − BᵀB‖₂ / ‖A_w‖_F² ≤ ε
//
// while it runs — the guarantee the paper proves but offline experiment
// CSVs only check after the fact. Each audit tick records the observed
// error, the headroom against the configured ε, and the communication
// spent per window, so an operator can watch the paper's two axes
// (error, words/window) live on /metrics and /debug/audit.
//
// The auditor is a shadow path by construction: it costs O(window·d)
// memory and an O(d²)-per-row Gram update, which production deployments
// of the protocols exist to avoid. Enable it on canary instances, during
// soak tests, or whenever the error budget is under suspicion.
package audit

import (
	"fmt"
	"sync"
	"time"

	"distwindow/internal/obs"
	"distwindow/mat"
)

// Config parameterizes an Auditor.
type Config struct {
	// D is the row dimension.
	D int
	// W is the window length in ticks.
	W int64
	// Eps is the deployed protocol's target covariance error.
	Eps float64
	// EveryRows is the audit cadence: one error measurement per EveryRows
	// observed rows (default 512). Each measurement queries the sketch
	// and runs a power iteration — cheap next to the shadow window's own
	// upkeep, but not free.
	EveryRows int
	// KeepSamples bounds the retained sample history for the /debug/audit
	// panel (default 512; older samples are dropped).
	KeepSamples int

	// Sketch returns the coordinator's current sketch B. Required unless
	// Gram is set.
	Sketch func() *mat.Dense
	// Gram, when set, returns the coordinator's covariance estimate
	// Ĉ ≈ A_wᵀA_w directly, letting each audit skip the O(d³) PSD
	// factorization (the deterministic protocols expose this).
	Gram func() *mat.Dense
	// Words, when set, reports total words communicated so far, enabling
	// the words-per-window figure.
	Words func() int64
	// DegradedSites, when set, reports how many sites the coordinator
	// currently considers stale (silent past their liveness deadline). A
	// degraded fleet explains a shrinking error margin before it becomes a
	// violation: the exact shadow window keeps seeing every row, while the
	// coordinator's estimate is missing the stale sites' recent deltas.
	DegradedSites func() int
}

// Sample is one audit measurement.
type Sample struct {
	// T is the stream time of the measurement.
	T int64
	// Rows is the total rows observed when the sample was taken.
	Rows int64
	// WindowRows is the number of rows in the exact window.
	WindowRows int64
	// Err is the observed covariance error err(A_w, B).
	Err float64
	// Headroom is Eps − Err (negative on a violation).
	Headroom float64
	// WordsPerWindow is total words divided by elapsed windows (0 when no
	// Words source is configured).
	WordsPerWindow float64
	// DegradedSites is the stale-site count at measurement time (0 when no
	// DegradedSites source is configured).
	DegradedSites int
}

// Metrics is a point-in-time snapshot of the auditor's counters,
// serialized into the tracker's /metrics payload.
type Metrics struct {
	// Eps is the configured target error.
	Eps float64
	// Ticks is the number of audit measurements taken.
	Ticks int64
	// Violations counts ticks whose observed error exceeded Eps.
	Violations int64
	// Rows is the total rows shadowed.
	Rows int64
	// WindowRows is the current exact-window row count.
	WindowRows int64
	// LastT is the stream time of the latest measurement.
	LastT int64
	// LastErr, MaxErr and MeanErr summarize the observed errors.
	LastErr, MaxErr, MeanErr float64
	// Headroom is Eps − LastErr.
	Headroom float64
	// WordsPerWindow is the latest communication-per-window figure.
	WordsPerWindow float64
	// DegradedSites is the stale-site count at the latest measurement.
	DegradedSites int
	// QueryLatency is the latency histogram of the audit's sketch
	// queries (the sketch-query cost an operator would see).
	QueryLatency obs.HistSnapshot
}

// Auditor maintains the exact window and the audit counters. Safe for
// concurrent use: wire deployments feed it from several site goroutines.
type Auditor struct {
	cfg Config

	mu     sync.Mutex
	gram   *mat.Dense
	frobSq float64
	live   []timedRow
	head   int

	rows    int64
	startT  int64
	haveT   bool
	lastT   int64
	ticks   int64
	viol    int64
	errSum  float64
	maxErr  float64
	lastErr float64
	lastWPW float64
	lastDeg int

	samples []Sample

	queryLat obs.Histogram
}

type timedRow struct {
	t int64
	v []float64
}

// New validates cfg and returns an empty auditor.
func New(cfg Config) (*Auditor, error) {
	if cfg.D < 1 || cfg.W <= 0 || cfg.Eps <= 0 || cfg.Eps >= 1 {
		return nil, fmt.Errorf("audit: invalid config D=%d W=%d Eps=%v", cfg.D, cfg.W, cfg.Eps)
	}
	if cfg.Sketch == nil && cfg.Gram == nil {
		return nil, fmt.Errorf("audit: need a Sketch or Gram source")
	}
	if cfg.EveryRows <= 0 {
		cfg.EveryRows = 512
	}
	if cfg.KeepSamples <= 0 {
		cfg.KeepSamples = 512
	}
	return &Auditor{cfg: cfg, gram: mat.NewDense(cfg.D, cfg.D)}, nil
}

// Observe shadows one row (the value slice is copied) and, every
// Config.EveryRows rows, takes an audit measurement.
func (a *Auditor) Observe(t int64, v []float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.haveT {
		a.haveT = true
		a.startT = t
	}
	a.lastT = t
	cp := append([]float64(nil), v...)
	mat.OuterAdd(a.gram, cp, 1)
	a.frobSq += mat.VecNormSq(cp)
	a.live = append(a.live, timedRow{t: t, v: cp})
	a.expireLocked(t)
	a.rows++
	if a.rows%int64(a.cfg.EveryRows) == 0 {
		a.tickLocked()
	}
}

// Advance expires shadow rows up to time t without new data.
func (a *Auditor) Advance(t int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t > a.lastT {
		a.lastT = t
	}
	a.expireLocked(t)
}

func (a *Auditor) expireLocked(now int64) {
	cut := now - a.cfg.W
	for a.head < len(a.live) && a.live[a.head].t <= cut {
		r := a.live[a.head]
		mat.OuterAdd(a.gram, r.v, -1)
		a.frobSq -= mat.VecNormSq(r.v)
		a.head++
	}
	if a.frobSq < 0 {
		a.frobSq = 0
	}
	if a.head > 1024 && a.head*2 > len(a.live) {
		n := copy(a.live, a.live[a.head:])
		for i := n; i < len(a.live); i++ {
			a.live[i] = timedRow{}
		}
		a.live = a.live[:n]
		a.head = 0
	}
}

// Tick forces an audit measurement now and returns it.
func (a *Auditor) Tick() Sample {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tickLocked()
}

func (a *Auditor) tickLocked() Sample {
	errObs := a.measureLocked()
	a.ticks++
	a.lastErr = errObs
	a.errSum += errObs
	if errObs > a.maxErr {
		a.maxErr = errObs
	}
	if errObs > a.cfg.Eps {
		a.viol++
	}
	wpw := 0.0
	if a.cfg.Words != nil && a.haveT {
		windows := float64(a.lastT-a.startT) / float64(a.cfg.W)
		if windows < 1 {
			windows = 1
		}
		wpw = float64(a.cfg.Words()) / windows
	}
	a.lastWPW = wpw
	deg := 0
	if a.cfg.DegradedSites != nil {
		deg = a.cfg.DegradedSites()
	}
	a.lastDeg = deg
	s := Sample{
		T:              a.lastT,
		Rows:           a.rows,
		WindowRows:     int64(len(a.live) - a.head),
		Err:            errObs,
		Headroom:       a.cfg.Eps - errObs,
		WordsPerWindow: wpw,
		DegradedSites:  deg,
	}
	a.samples = append(a.samples, s)
	if len(a.samples) > a.cfg.KeepSamples {
		a.samples = a.samples[len(a.samples)-a.cfg.KeepSamples:]
	}
	return s
}

// measureLocked computes the observed covariance error. With a Gram
// source the spectral norm runs in operator form on gram − Ĉ (≈30
// mat-vecs); otherwise the sketch B is fetched and compared via
// CovErrGram. The sketch-query time is recorded either way.
func (a *Auditor) measureLocked() float64 {
	if a.frobSq <= 0 {
		return 0
	}
	start := time.Now()
	defer func() { a.queryLat.Observe(time.Since(start)) }()
	if a.cfg.Gram != nil {
		chat := a.cfg.Gram()
		nrm := mat.OpSymNorm(a.cfg.D, func(x, y []float64) {
			gx := mat.MulVec(a.gram, x)
			hx := mat.MulVec(chat, x)
			for i := range y {
				y[i] = gx[i] - hx[i]
			}
		})
		return nrm / a.frobSq
	}
	b := a.cfg.Sketch()
	return mat.CovErrGram(a.gram, a.frobSq, b)
}

// Metrics snapshots the audit counters.
func (a *Auditor) Metrics() Metrics {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := Metrics{
		Eps:            a.cfg.Eps,
		Ticks:          a.ticks,
		Violations:     a.viol,
		Rows:           a.rows,
		WindowRows:     int64(len(a.live) - a.head),
		LastT:          a.lastT,
		LastErr:        a.lastErr,
		MaxErr:         a.maxErr,
		Headroom:       a.cfg.Eps - a.lastErr,
		WordsPerWindow: a.lastWPW,
		DegradedSites:  a.lastDeg,
		QueryLatency:   a.queryLat.Snapshot(),
	}
	if a.ticks > 0 {
		m.MeanErr = a.errSum / float64(a.ticks)
	}
	return m
}

// Samples returns a copy of the retained measurement history, oldest
// first.
func (a *Auditor) Samples() []Sample {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Sample(nil), a.samples...)
}
