package audit

import (
	"net/http"

	"distwindow/internal/svgplot"
)

// Panel renders the retained audit history as an SVG chart: the observed
// covariance error per tick against the configured ε line, so a glance
// shows whether the deployment is honoring its budget and with how much
// headroom. When a DegradedSites source is configured, a third series
// marks the ticks taken while any site was stale — spikes in the error
// trace line up visually with the degradation windows that caused them.
func (a *Auditor) Panel() string {
	samples := a.Samples()
	errSeries := svgplot.Series{Name: "observed err(A_w,B)"}
	epsSeries := svgplot.Series{Name: "target ε"}
	degSeries := svgplot.Series{Name: "degraded (any site stale)"}
	anyDeg := false
	for _, s := range samples {
		x := float64(s.T)
		errSeries.Points = append(errSeries.Points, svgplot.Point{X: x, Y: s.Err})
		epsSeries.Points = append(epsSeries.Points, svgplot.Point{X: x, Y: a.cfg.Eps})
		// Degraded ticks plot above the ε line, healthy ticks at zero, so
		// the marker reads as a square wave under the error trace.
		y := 0.0
		if s.DegradedSites > 0 {
			y = a.cfg.Eps * 1.25
			anyDeg = true
		}
		degSeries.Points = append(degSeries.Points, svgplot.Point{X: x, Y: y})
	}
	if len(samples) == 0 {
		// An empty plot still needs the ε reference to render axes.
		epsSeries.Points = []svgplot.Point{{X: 0, Y: a.cfg.Eps}, {X: 1, Y: a.cfg.Eps}}
	}
	p := svgplot.Plot{
		Title:  "live ε-error audit",
		XLabel: "stream time",
		YLabel: "covariance error",
		Series: []svgplot.Series{errSeries, epsSeries},
	}
	if anyDeg {
		p.Series = append(p.Series, degSeries)
	}
	return p.Render()
}

// Handler serves the panel as image/svg+xml — the /debug/audit endpoint.
func (a *Auditor) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "image/svg+xml")
		_, _ = w.Write([]byte(a.Panel()))
	})
}
