package tenant

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapBasics(t *testing.T) {
	m := NewMap[int](4)
	if _, ok := m.Get("a"); ok {
		t.Fatal("Get on empty map reported a hit")
	}
	v, created, err := m.LoadOrCreate("a", func() (int, error) { return 1, nil })
	if err != nil || !created || v != 1 {
		t.Fatalf("LoadOrCreate = (%d, %v, %v)", v, created, err)
	}
	v, created, err = m.LoadOrCreate("a", func() (int, error) { return 2, nil })
	if err != nil || created || v != 1 {
		t.Fatalf("second LoadOrCreate = (%d, %v, %v), want existing 1", v, created, err)
	}
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("Get = (%d, %v)", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
	if v, ok := m.Delete("a"); !ok || v != 1 {
		t.Fatalf("Delete = (%d, %v)", v, ok)
	}
	if _, ok := m.Delete("a"); ok {
		t.Fatal("second Delete reported a hit")
	}
}

func TestMapCreateError(t *testing.T) {
	m := NewMap[int](1)
	boom := errors.New("boom")
	_, created, err := m.LoadOrCreate("k", func() (int, error) { return 0, boom })
	if !errors.Is(err, boom) || created {
		t.Fatalf("LoadOrCreate = (created=%v, err=%v)", created, err)
	}
	if _, ok := m.Get("k"); ok {
		t.Fatal("failed create left an entry")
	}
	// The key is still creatable after a failure.
	if _, created, err := m.LoadOrCreate("k", func() (int, error) { return 7, nil }); err != nil || !created {
		t.Fatalf("retry = (created=%v, err=%v)", created, err)
	}
}

// TestMapExactlyOneCreate hammers one key from many goroutines: the
// constructor must run exactly once no matter how the opens race.
func TestMapExactlyOneCreate(t *testing.T) {
	m := NewMap[int](8)
	var calls atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v, _, err := m.LoadOrCreate("hot", func() (int, error) {
					calls.Add(1)
					return 42, nil
				})
				if err != nil || v != 42 {
					t.Errorf("LoadOrCreate = (%d, %v)", v, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("constructor ran %d times, want 1", n)
	}
}

func TestMapRangeAndKeys(t *testing.T) {
	m := NewMap[int](4)
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("k%02d", i)
		if _, _, err := m.LoadOrCreate(k, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	keys := m.Keys()
	sort.Strings(keys)
	if len(keys) != 20 || keys[0] != "k00" || keys[19] != "k19" {
		t.Fatalf("Keys = %v", keys)
	}
	// Range may call back into the map — deleting while iterating must
	// not deadlock.
	m.Range(func(k string, _ int) bool {
		m.Delete(k)
		return true
	})
	if m.Len() != 0 {
		t.Fatalf("Len = %d after delete-in-range", m.Len())
	}
}

func TestMapShardRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}} {
		m := NewMap[int](c.in)
		if len(m.shards) != c.want {
			t.Errorf("NewMap(%d): %d shards, want %d", c.in, len(m.shards), c.want)
		}
	}
	if m := NewMap[int](0); len(m.shards) < 8 {
		t.Errorf("NewMap(0): %d shards, want ≥ 8", len(m.shards))
	}
}

func TestMapShardOf(t *testing.T) {
	m := NewMap[int](8)
	if got := m.Shards(); got != 8 {
		t.Fatalf("Shards = %d, want 8", got)
	}
	// Stable, in range, alloc-free, and consistent with the shard the map
	// actually uses (LoadOrCreate then Get must agree on placement).
	keys := []string{"", "a", "stream-000", "stream-001", "user/42/metric", "x"}
	for _, k := range keys {
		s1 := m.ShardOf(k)
		if s1 < 0 || s1 >= m.Shards() {
			t.Fatalf("ShardOf(%q) = %d out of range", k, s1)
		}
		if s2 := m.ShardOf(k); s2 != s1 {
			t.Fatalf("ShardOf(%q) unstable: %d then %d", k, s1, s2)
		}
	}
	if n := testing.AllocsPerRun(100, func() { _ = m.ShardOf("stream-000") }); n != 0 {
		t.Fatalf("ShardOf allocates %.1f, want 0", n)
	}
}

func TestMapGetAllocs(t *testing.T) {
	m := NewMap[*int](4)
	x := 5
	if _, _, err := m.LoadOrCreate("k", func() (*int, error) { return &x, nil }); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, ok := m.Get("k"); !ok {
			t.Fatal("miss")
		}
	}); n != 0 {
		t.Fatalf("Get allocates %.1f, want 0", n)
	}
}
