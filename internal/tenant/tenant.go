// Package tenant provides the sharded concurrent map underneath the
// facade's multi-stream Registry: thousands of independently-tracked
// streams keyed by id, with striped locks so concurrent lookups from
// ingest goroutines never serialize on one mutex.
//
// The map is deliberately dumber than sync.Map: entries are long-lived
// tracker handles, the read path must not allocate (the registry's
// 0 allocs/row budget includes the Get on every hot-path lookup), and
// creation must be able to fail — so each shard is a plain map behind an
// RWMutex, and LoadOrCreate runs the constructor under the shard's write
// lock, guaranteeing exactly one constructor call per key even under
// concurrent opens.
package tenant

import (
	"runtime"
	"sync"
)

// Map is a sharded string-keyed concurrent map. Construct with NewMap;
// the zero value is not usable.
type Map[V any] struct {
	shards []shard[V]
	mask   uint64
}

type shard[V any] struct {
	mu sync.RWMutex
	m  map[string]V
	// Pad shards to their own cache lines so one shard's lock traffic does
	// not false-share with its neighbours under per-core ownership.
	_ [40]byte
}

// NewMap returns a map with the given shard count, rounded up to a power
// of two (≤0 derives the count from GOMAXPROCS, at least 8 — roughly one
// shard per core with headroom so hash skew rarely doubles up).
func NewMap[V any](shards int) *Map[V] {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0) * 4
		if shards < 8 {
			shards = 8
		}
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	m := &Map[V]{shards: make([]shard[V], n), mask: uint64(n - 1)}
	for i := range m.shards {
		m.shards[i].m = make(map[string]V)
	}
	return m
}

// fnv1a hashes the key without allocating (FNV-1a, 64-bit).
func fnv1a(key string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}

func (m *Map[V]) shard(key string) *shard[V] {
	return &m.shards[fnv1a(key)&m.mask]
}

// ShardOf returns the index of the shard owning key — a stable,
// alloc-free hash assignment in [0, Shards()). Ingest planes use it to
// give worker goroutines shard-ownership of streams: routing each key to
// worker ShardOf(key) % workers keeps a stream's hot path on one worker
// (no cross-worker handoff) and keeps each worker's lock traffic inside
// its own shard stripe.
func (m *Map[V]) ShardOf(key string) int {
	return int(fnv1a(key) & m.mask)
}

// Shards returns the shard count (a power of two).
func (m *Map[V]) Shards() int { return len(m.shards) }

// Get returns the value for key. It takes only the shard's read lock and
// performs no allocations.
func (m *Map[V]) Get(key string) (V, bool) {
	s := m.shard(key)
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	return v, ok
}

// LoadOrCreate returns the existing value for key, or stores and returns
// the one built by create. The constructor runs under the shard's write
// lock, so exactly one create call happens per key no matter how many
// goroutines race; a constructor error stores nothing and is returned.
// Only the shard owning key is blocked while create runs.
func (m *Map[V]) LoadOrCreate(key string, create func() (V, error)) (v V, created bool, err error) {
	s := m.shard(key)
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		return v, false, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok = s.m[key]; ok {
		return v, false, nil
	}
	v, err = create()
	if err != nil {
		var zero V
		return zero, false, err
	}
	s.m[key] = v
	return v, true, nil
}

// Delete removes key and returns the removed value, if any.
func (m *Map[V]) Delete(key string) (V, bool) {
	s := m.shard(key)
	s.mu.Lock()
	v, ok := s.m[key]
	if ok {
		delete(s.m, key)
	}
	s.mu.Unlock()
	return v, ok
}

// Len returns the total entry count across shards. The count is a
// point-in-time sum: entries may move underneath a concurrent churn.
func (m *Map[V]) Len() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range calls fn for every entry until fn returns false. Each shard is
// snapshotted under its read lock and iterated outside it, so fn may call
// back into the map (including Delete) without deadlocking; entries added
// or removed while Range runs may or may not be visited.
func (m *Map[V]) Range(fn func(key string, v V) bool) {
	type kv struct {
		k string
		v V
	}
	var buf []kv
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		buf = buf[:0]
		for k, v := range s.m {
			buf = append(buf, kv{k, v})
		}
		s.mu.RUnlock()
		for _, e := range buf {
			if !fn(e.k, e.v) {
				return
			}
		}
	}
}

// Keys returns every key, in unspecified order.
func (m *Map[V]) Keys() []string {
	out := make([]string, 0, m.Len())
	m.Range(func(k string, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}
