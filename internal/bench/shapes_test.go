package bench

// Shape tests: the paper's qualitative experimental claims (§IV-B),
// asserted on reduced streams. These are the automated counterpart of
// EXPERIMENTS.md — if a regression flips who wins or breaks a scaling
// trend, these fail.

import (
	"testing"

	"distwindow"
)

func shapeOpts(q int) Options { return Options{Queries: q, Seed: 1} }

// TestShapeObservedErrorBelowEps: "in most cases, the observed error for
// all protocols is smaller than ε" (Fig 1a/2a/3a).
func TestShapeObservedErrorBelowEps(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are slow")
	}
	dss := Datasets(Tiny, 1)
	for _, ds := range dss[:2] { // PAMAP-sim, SYNTHETIC
		for _, p := range []distwindow.Protocol{distwindow.DA1, distwindow.DA2} {
			r, err := Run(ds, p, 0.2, shapeOpts(15))
			if err != nil {
				t.Fatal(err)
			}
			if r.AvgErr > 0.2 {
				t.Errorf("%s/%s: avg err %.4f ≥ ε=0.2", ds.Name, p, r.AvgErr)
			}
		}
	}
}

// TestShapeDeterministicCommGrowsSlower: deterministic ∝ 1/ε vs sampling
// ∝ 1/ε² (Fig 1b/2b, Table II).
func TestShapeDeterministicCommGrowsSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are slow")
	}
	ds := Datasets(Tiny, 1)[1] // SYNTHETIC
	ratio := func(p distwindow.Protocol) float64 {
		lo, err := Run(ds, p, 0.1, Options{Seed: 1, SkipErr: true})
		if err != nil {
			t.Fatal(err)
		}
		hi, err := Run(ds, p, 0.3, Options{Seed: 1, SkipErr: true})
		if err != nil {
			t.Fatal(err)
		}
		return lo.MsgWords / hi.MsgWords
	}
	rs := ratio(distwindow.PWOR) // expect ≈ 9 (1/ε²)
	rd := ratio(distwindow.DA1)  // expect ≈ 3 (1/ε)
	if rs <= rd {
		t.Errorf("sampling comm growth %.2f should exceed deterministic %.2f as ε shrinks", rs, rd)
	}
}

// TestShapeSamplingCommFlatInM, deterministic linear in m (Fig 1f/2f).
func TestShapeSamplingCommFlatInM(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are slow")
	}
	ds := Datasets(Tiny, 1)[0]
	run := func(p distwindow.Protocol, m int) float64 {
		r, err := Run(ds, p, 0.15, Options{Sites: m, Seed: 1, SkipErr: true})
		if err != nil {
			t.Fatal(err)
		}
		return r.MsgWords
	}
	// Sampling: comm at m=40 within 2× of m=5.
	s5, s40 := run(distwindow.PWOR, 5), run(distwindow.PWOR, 40)
	if s40 > 2*s5 {
		t.Errorf("PWOR comm %.0f→%.0f grows with m; should be ≈flat", s5, s40)
	}
	// Deterministic: comm at m=40 at least 3× m=5.
	d5, d40 := run(distwindow.DA1, 5), run(distwindow.DA1, 40)
	if d40 < 3*d5 {
		t.Errorf("DA1 comm %.0f→%.0f should grow ≈linearly in m", d5, d40)
	}
}

// TestShapeErrorStableInM: "the covariance error of all protocols is
// stable as m varies" (Fig 1e/2e).
func TestShapeErrorStableInM(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are slow")
	}
	ds := Datasets(Tiny, 1)[1]
	for _, p := range []distwindow.Protocol{distwindow.PWORAll, distwindow.DA2} {
		r5, err := Run(ds, p, 0.2, Options{Sites: 5, Queries: 15, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		r40, err := Run(ds, p, 0.2, Options{Sites: 40, Queries: 15, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if r40.AvgErr > 3*r5.AvgErr+0.05 || r5.AvgErr > 3*r40.AvgErr+0.05 {
			t.Errorf("%s: error unstable in m: %.4f (m=5) vs %.4f (m=40)", p, r5.AvgErr, r40.AvgErr)
		}
	}
}

// TestShapeSamplingRateInsensitiveToD: "the update rate of sampling
// methods is not affected by d", while deterministic slows (Fig 4d).
func TestShapeSamplingRateInsensitiveToD(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are slow")
	}
	dss := Datasets(Tiny, 1)
	pam, wik := dss[0], dss[2] // d=43 vs d=128
	rp, err := Run(pam, distwindow.PWOR, 0.15, Options{Seed: 1, SkipErr: true})
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Run(wik, distwindow.PWOR, 0.15, Options{Seed: 1, SkipErr: true})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := Run(pam, distwindow.DA2, 0.15, Options{Seed: 1, SkipErr: true})
	if err != nil {
		t.Fatal(err)
	}
	dw, err := Run(wik, distwindow.DA2, 0.15, Options{Seed: 1, SkipErr: true})
	if err != nil {
		t.Fatal(err)
	}
	// Sampling: within 5× across a 3× dimension change (norm cost only).
	if rp.UpdatesPerSec > 5*rw.UpdatesPerSec {
		t.Errorf("sampling rate collapsed with d: %.0f → %.0f rows/s", rp.UpdatesPerSec, rw.UpdatesPerSec)
	}
	// Deterministic must be slower than sampling at the larger d.
	if dw.UpdatesPerSec > rw.UpdatesPerSec {
		t.Errorf("deterministic (%.0f/s) should not beat sampling (%.0f/s) at d=128", dw.UpdatesPerSec, rw.UpdatesPerSec)
	}
	_ = dp
}

// TestShapeDeterministicCheaperAtEqualError: the err-vs-comm trade-off
// (Fig 1c/2c): at the paper's default m=20, DA1/DA2 reach comparable
// error with far fewer words than the sampling family.
func TestShapeDeterministicCheaperAtEqualError(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are slow")
	}
	ds := Datasets(Tiny, 1)[0]
	det, err := Run(ds, distwindow.DA1, 0.1, shapeOpts(15))
	if err != nil {
		t.Fatal(err)
	}
	smp, err := Run(ds, distwindow.PWORAll, 0.1, shapeOpts(15))
	if err != nil {
		t.Fatal(err)
	}
	if det.MsgWords > smp.MsgWords {
		t.Errorf("DA1 words/window %.0f should undercut PWOR-ALL %.0f at ε=0.1", det.MsgWords, smp.MsgWords)
	}
}
