// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§IV): it replays a dataset through a
// protocol, measuring the four quantities the paper reports — observed
// covariance error (average and maximum over query points), communication
// in words per window, maximum per-site space, and update rate.
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"distwindow"
	"distwindow/internal/datagen"
	"distwindow/mat"
)

// Result is one protocol run's measurements — one point of a figure.
type Result struct {
	Dataset  string
	Protocol distwindow.Protocol
	Eps      float64
	Sites    int

	// AvgErr and MaxErr are the observed covariance errors over the query
	// points.
	AvgErr, MaxErr float64
	// MsgWords is the average number of words transmitted per window —
	// the paper's msg metric.
	MsgWords float64
	// TotalWords is the raw communication of the whole run.
	TotalWords int64
	// SiteSpace is the maximum words held by any site at any time.
	SiteSpace int64
	// Broadcasts counts coordinator threshold broadcasts (sampling family).
	Broadcasts int64
	// UpdatesPerSec is the processing rate (rows/s of wall time spent in
	// Observe).
	UpdatesPerSec float64
	// Queries is the number of evaluated query points.
	Queries int
}

// Options configures a run.
type Options struct {
	// Sites overrides the dataset's site count by reassigning rows
	// uniformly at random (0 keeps the dataset's assignment).
	Sites int
	// Queries is the number of query points (default 50, the paper's
	// setting), spread uniformly at random over the steady-state region.
	Queries int
	// Ell overrides the sampling protocols' sample-set size (0 derives it
	// from Eps).
	Ell int
	// Seed drives both the protocol and the query-point selection.
	Seed int64
	// SkipErr skips error evaluation (for pure cost/rate measurements).
	SkipErr bool
	// Workers, when positive, ingests through the parallel per-site
	// pipeline (distwindow.WithParallel) with that many site-work
	// goroutines. Only the one-way deterministic protocols support it; the
	// replay remains single-threaded, so the speedup comes from the
	// protocol work moving off the feeding thread.
	Workers int
}

// Run replays ds through the given protocol at error parameter eps.
func Run(ds datagen.Dataset, proto distwindow.Protocol, eps float64, opt Options) (Result, error) {
	sites := opt.Sites
	if sites == 0 {
		sites = maxSite(ds) + 1
	}
	queries := opt.Queries
	if queries == 0 {
		queries = 50
	}
	var topts []distwindow.Option
	if opt.Workers > 0 {
		topts = append(topts, distwindow.WithParallel(opt.Workers))
	}
	tr, err := distwindow.New(distwindow.Config{
		Protocol: proto,
		D:        ds.D,
		W:        ds.W,
		Eps:      eps,
		Sites:    sites,
		Ell:      opt.Ell,
		Seed:     opt.Seed + 1,
	}, topts...)
	if err != nil {
		return Result{}, err
	}
	defer tr.Close()

	rng := rand.New(rand.NewSource(opt.Seed + 2))
	// Query points: uniform over the steady-state region (after the first
	// full window has elapsed).
	n := len(ds.Events)
	steady := n / 5
	isQuery := make(map[int]bool, queries)
	if !opt.SkipErr {
		for len(isQuery) < queries && len(isQuery) < n-steady-1 {
			isQuery[steady+rng.Intn(n-steady)] = true
		}
	}

	// Exact union-window state, maintained incrementally: Gram matrix,
	// Frobenius mass and a row deque. Sparse rows (WIKI-sim) use the
	// nnz²-cost outer product, which is what keeps large-d exact
	// evaluation affordable.
	gram := mat.NewDense(ds.D, ds.D)
	var frobSq float64
	type liveRow struct {
		t  int64
		v  []float64
		sv *mat.SparseVec // non-nil when the sparse form is cheaper
	}
	var live []liveRow
	head := 0
	gramAdd := func(lr liveRow, s float64) {
		if lr.sv != nil {
			lr.sv.OuterAddInto(gram, s)
		} else {
			mat.OuterAdd(gram, lr.v, s)
		}
	}

	var observeTime time.Duration
	var errSum, errMax float64
	evaluated := 0

	for i, e := range ds.Events {
		site := e.Site
		if opt.Sites != 0 {
			site = rng.Intn(sites)
		}
		start := time.Now()
		tr.Observe(site, distwindow.Row{T: e.Row.T, V: e.Row.V})
		observeTime += time.Since(start)

		if !opt.SkipErr {
			lr := liveRow{t: e.Row.T, v: e.Row.V, sv: mat.ToSparse(e.Row.V, 0.25)}
			gramAdd(lr, 1)
			frobSq += e.Row.NormSq()
			live = append(live, lr)
			cut := e.Row.T - ds.W
			for head < len(live) && live[head].t <= cut {
				gramAdd(live[head], -1)
				frobSq -= mat.VecNormSq(live[head].v)
				head++
			}
			if head > 4096 && head*2 > len(live) {
				live = append([]liveRow(nil), live[head:]...)
				head = 0
			}
			if isQuery[i] && frobSq > 0 {
				e := covErrFast(gram, frobSq, tr)
				errSum += e
				if e > errMax {
					errMax = e
				}
				evaluated++
			}
		}
	}

	if opt.Workers > 0 {
		// Per-row timing only captured enqueue cost; the drain charges the
		// in-flight site work so the rate stays comparable to sequential.
		start := time.Now()
		tr.Drain()
		observeTime += time.Since(start)
	}

	res := Result{
		Dataset:    ds.Name,
		Protocol:   proto,
		Eps:        eps,
		Sites:      sites,
		TotalWords: tr.Stats().TotalWords(),
		SiteSpace:  tr.Stats().MaxSiteWords,
		Broadcasts: tr.Stats().Broadcasts,
		Queries:    evaluated,
	}
	if evaluated > 0 {
		res.AvgErr = errSum / float64(evaluated)
		res.MaxErr = errMax
	}
	span := ds.Events[n-1].Row.T - ds.Events[0].Row.T
	windows := float64(span) / float64(ds.W)
	if windows < 1 {
		windows = 1
	}
	res.MsgWords = float64(res.TotalWords) / windows
	if s := observeTime.Seconds(); s > 0 {
		res.UpdatesPerSec = float64(n) / s
	}
	return res, nil
}

// covErrFast computes ‖A_wᵀA_w − BᵀB‖₂/‖A_w‖_F² without forming BᵀB or
// factoring Ĉ: deterministic protocols expose Ĉ directly (SketchGram) and
// the power iteration runs on gram − Ĉ; sampling sketches apply as
// Bᵀ(B·x) over their rows. At WIKI-scale d this turns each query from an
// O(d³) eigendecomposition into ~30 mat-vecs.
func covErrFast(gram *mat.Dense, frobSq float64, tr *distwindow.Tracker) float64 {
	d := gram.Rows()
	if g, ok := tr.SketchGram(); ok {
		// Operator form avoids allocating the d×d difference — at WIKI's
		// full d=7047 that is ~400 MB per query.
		nrm := mat.OpSymNorm(d, func(x, y []float64) {
			gx := mat.MulVec(gram, x)
			hx := mat.MulVec(g, x)
			for i := range y {
				y[i] = gx[i] - hx[i]
			}
		})
		return nrm / frobSq
	}
	b := tr.Sketch()
	nrm := mat.OpSymNorm(d, func(x, y []float64) {
		gx := mat.MulVec(gram, x)
		bx := mat.MulVec(b, x)
		btbx := mat.MulTVec(b, bx)
		for i := range y {
			y[i] = gx[i] - btbx[i]
		}
	})
	return nrm / frobSq
}

// RunReplicated averages n runs with consecutive seeds — the paper runs
// each sampling experiment 3 times and reports the average communication
// and error. Deterministic protocols are seed-independent, so a single
// run is returned unchanged for them when n ≤ 1.
func RunReplicated(ds datagen.Dataset, proto distwindow.Protocol, eps float64, opt Options, n int) (Result, error) {
	if n <= 1 {
		return Run(ds, proto, eps, opt)
	}
	var agg Result
	for i := 0; i < n; i++ {
		o := opt
		o.Seed = opt.Seed + int64(i)*1_000_003
		r, err := Run(ds, proto, eps, o)
		if err != nil {
			return Result{}, err
		}
		if i == 0 {
			agg = r
			continue
		}
		agg.AvgErr += r.AvgErr
		agg.MaxErr += r.MaxErr
		agg.MsgWords += r.MsgWords
		agg.TotalWords += r.TotalWords
		agg.UpdatesPerSec += r.UpdatesPerSec
		if r.SiteSpace > agg.SiteSpace {
			agg.SiteSpace = r.SiteSpace
		}
	}
	f := float64(n)
	agg.AvgErr /= f
	agg.MaxErr /= f
	agg.MsgWords /= f
	agg.TotalWords /= int64(n)
	agg.UpdatesPerSec /= f
	return agg, nil
}

func maxSite(ds datagen.Dataset) int {
	m := 0
	for _, e := range ds.Events {
		if e.Site > m {
			m = e.Site
		}
	}
	return m
}

// String renders a result as one experiment-output row.
func (r Result) String() string {
	return fmt.Sprintf("%-10s %-12s eps=%-5.3g m=%-3d avg_err=%-8.4f max_err=%-8.4f msg=%-12.0f space=%-9d rate=%.0f/s",
		r.Dataset, r.Protocol, r.Eps, r.Sites, r.AvgErr, r.MaxErr, r.MsgWords, r.SiteSpace, r.UpdatesPerSec)
}
