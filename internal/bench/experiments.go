package bench

import (
	"fmt"
	"io"
	"math"
	"sort"

	"distwindow"
	"distwindow/internal/datagen"
)

// Scale selects the stream sizes experiments run at. The paper's absolute
// sizes ("full") take hours in total; "default" reproduces every shape at
// ~1/10 scale in minutes; "tiny" is for go test -bench smoke coverage.
type Scale string

// The supported scales.
const (
	Tiny    Scale = "tiny"
	Default Scale = "default"
	Full    Scale = "full"
)

// Datasets builds the three evaluation datasets of Table III at the given
// scale, with the paper's default m=20 site assignment.
func Datasets(scale Scale, seed int64) []datagen.Dataset {
	switch scale {
	case Tiny:
		return []datagen.Dataset{
			datagen.PAMAPSim(datagen.Config{N: 12_000, RowsPerWindow: 3_000, Sites: 20, Seed: seed}),
			datagen.Synthetic(40, datagen.Config{N: 10_000, RowsPerWindow: 2_500, Sites: 20, Seed: seed}),
			datagen.WikiSim(128, datagen.Config{N: 6_000, RowsPerWindow: 1_000, Sites: 20, Seed: seed}),
		}
	case Full:
		return []datagen.Dataset{
			datagen.PAMAPSim(datagen.Config{N: 814_729, RowsPerWindow: 200_000, Sites: 20, Seed: seed}),
			datagen.Synthetic(300, datagen.Config{N: 500_000, RowsPerWindow: 100_000, Sites: 20, Seed: seed}),
			datagen.WikiSim(7047, datagen.Config{N: 78_608, RowsPerWindow: 10_000, Sites: 20, Seed: seed}),
		}
	default:
		return []datagen.Dataset{
			datagen.PAMAPSim(datagen.Config{N: 80_000, RowsPerWindow: 20_000, Sites: 20, Seed: seed}),
			datagen.Synthetic(100, datagen.Config{N: 50_000, RowsPerWindow: 10_000, Sites: 20, Seed: seed}),
			datagen.WikiSim(512, datagen.Config{N: 12_000, RowsPerWindow: 2_000, Sites: 20, Seed: seed}),
		}
	}
}

// EpsGrid returns the ε sweep for the err/comm figures at a scale.
func EpsGrid(scale Scale) []float64 {
	if scale == Tiny {
		return []float64{0.1, 0.2, 0.3}
	}
	return []float64{0.05, 0.1, 0.15, 0.2, 0.25}
}

// SiteGrid returns the m sweep for the vary-sites panels. WIKI keeps only
// {10, 20} as in the paper ("to make sure each site receives enough
// rows").
func SiteGrid(scale Scale, wiki bool) []int {
	if wiki {
		return []int{10, 20}
	}
	if scale == Tiny {
		return []int{5, 20, 40}
	}
	return []int{5, 10, 20, 40, 80}
}

// FigureProtocols returns the protocol set of Figures 1–4. On WIKI the
// paper omits DA1 ("too slow to finish" at d≈7000).
func FigureProtocols(wiki bool) []distwindow.Protocol {
	ps := []distwindow.Protocol{
		distwindow.PWOR, distwindow.PWORAll,
		distwindow.ESWOR, distwindow.ESWORAll,
		distwindow.DA2,
	}
	if !wiki {
		ps = append(ps, distwindow.DA1)
	}
	return ps
}

// EpsSweep runs every protocol over the ε grid on one dataset — the data
// behind panels (a)–(d) of Figures 1–3 and panels (a)–(c) of Figure 4.
func EpsSweep(w io.Writer, ds datagen.Dataset, protos []distwindow.Protocol, grid []float64, queries int, seed int64) ([]Result, error) {
	return EpsSweepReplicated(w, ds, protos, grid, queries, seed, 1)
}

// EpsSweepReplicated is EpsSweep averaging each point over `replicas`
// seeds (the paper uses 3 for the sampling protocols).
func EpsSweepReplicated(w io.Writer, ds datagen.Dataset, protos []distwindow.Protocol, grid []float64, queries int, seed int64, replicas int) ([]Result, error) {
	var out []Result
	for _, eps := range grid {
		for _, p := range protos {
			r, err := RunReplicated(ds, p, eps, Options{Queries: queries, Seed: seed}, replicas)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
			if w != nil {
				fmt.Fprintln(w, r)
			}
		}
	}
	return out, nil
}

// SiteSweep runs every protocol over the m grid at fixed ε — the data
// behind panels (e)–(f).
func SiteSweep(w io.Writer, ds datagen.Dataset, protos []distwindow.Protocol, ms []int, eps float64, queries int, seed int64) ([]Result, error) {
	var out []Result
	for _, m := range ms {
		for _, p := range protos {
			r, err := Run(ds, p, eps, Options{Sites: m, Queries: queries, Seed: seed})
			if err != nil {
				return nil, err
			}
			out = append(out, r)
			if w != nil {
				fmt.Fprintln(w, r)
			}
		}
	}
	return out, nil
}

// PrintTable3 emits the Table III dataset summary rows.
func PrintTable3(w io.Writer, dss []datagen.Dataset) {
	fmt.Fprintf(w, "%-12s %10s %6s %14s %10s\n", "Data Set", "rows n", "d", "rows/window", "ratio R")
	for _, ds := range dss {
		s := datagen.Summarize(ds)
		fmt.Fprintf(w, "%-12s %10d %6d %14d %10.2f\n", s.Name, s.N, s.D, s.RowsPerWindow, s.R)
	}
}

// Table2Check estimates, from an ε sweep's results, the exponent α in
// msg ∝ (1/ε)^α per protocol via least-squares on log-log points — the
// empirical verification of Table II's 1/ε (deterministic) versus 1/ε²
// (sampling) communication dependence.
func Table2Check(results []Result) map[distwindow.Protocol]float64 {
	byProto := map[distwindow.Protocol][]Result{}
	for _, r := range results {
		byProto[r.Protocol] = append(byProto[r.Protocol], r)
	}
	out := map[distwindow.Protocol]float64{}
	for p, rs := range byProto {
		sort.Slice(rs, func(i, j int) bool { return rs[i].Eps < rs[j].Eps })
		var xs, ys []float64
		for _, r := range rs {
			if r.MsgWords <= 0 {
				continue
			}
			xs = append(xs, math.Log(1/r.Eps))
			ys = append(ys, math.Log(r.MsgWords))
		}
		if len(xs) >= 2 {
			out[p] = slope(xs, ys)
		}
	}
	return out
}

// slope is the least-squares slope of y on x.
func slope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// WriteCSV emits results as CSV with a header — the plot-friendly output
// behind trackbench's -csv flag.
func WriteCSV(w io.Writer, results []Result) error {
	if _, err := fmt.Fprintln(w, "dataset,protocol,eps,sites,avg_err,max_err,msg_words,total_words,site_space,broadcasts,updates_per_s,queries"); err != nil {
		return err
	}
	for _, r := range results {
		if _, err := fmt.Fprintf(w, "%s,%s,%g,%d,%g,%g,%g,%d,%d,%d,%g,%d\n",
			r.Dataset, r.Protocol, r.Eps, r.Sites, r.AvgErr, r.MaxErr,
			r.MsgWords, r.TotalWords, r.SiteSpace, r.Broadcasts,
			r.UpdatesPerSec, r.Queries); err != nil {
			return err
		}
	}
	return nil
}

// PrintFigure writes one figure panel as aligned series: for each
// protocol, the (x, y) points in x order. xf/yf extract the panel's axes
// from a Result.
func PrintFigure(w io.Writer, title string, results []Result, xf, yf func(Result) float64) {
	fmt.Fprintf(w, "== %s ==\n", title)
	byProto := map[distwindow.Protocol][]Result{}
	var order []distwindow.Protocol
	for _, r := range results {
		if _, ok := byProto[r.Protocol]; !ok {
			order = append(order, r.Protocol)
		}
		byProto[r.Protocol] = append(byProto[r.Protocol], r)
	}
	for _, p := range order {
		rs := byProto[p]
		sort.Slice(rs, func(i, j int) bool { return xf(rs[i]) < xf(rs[j]) })
		fmt.Fprintf(w, "%-12s", p)
		for _, r := range rs {
			fmt.Fprintf(w, "  (%.4g, %.4g)", xf(r), yf(r))
		}
		fmt.Fprintln(w)
	}
}
