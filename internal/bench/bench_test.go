package bench

import (
	"math"
	"strings"
	"testing"

	"distwindow"
	"distwindow/internal/datagen"
)

func tinyDS(t *testing.T) datagen.Dataset {
	t.Helper()
	return datagen.Synthetic(8, datagen.Config{N: 3000, RowsPerWindow: 800, Sites: 4, Seed: 1})
}

func TestRunProducesMetrics(t *testing.T) {
	ds := tinyDS(t)
	r, err := Run(ds, distwindow.DA2, 0.2, Options{Queries: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Queries == 0 {
		t.Fatal("no query points evaluated")
	}
	if r.AvgErr <= 0 || r.AvgErr > 1 {
		t.Fatalf("AvgErr = %v", r.AvgErr)
	}
	if r.MaxErr < r.AvgErr {
		t.Fatal("MaxErr < AvgErr")
	}
	if r.MsgWords <= 0 || r.TotalWords <= 0 {
		t.Fatalf("no communication measured: %+v", r)
	}
	if r.UpdatesPerSec <= 0 {
		t.Fatal("no update rate measured")
	}
	if r.Dataset != "SYNTHETIC" || r.Protocol != distwindow.DA2 {
		t.Fatalf("labels wrong: %+v", r)
	}
}

func TestRunSkipErr(t *testing.T) {
	ds := tinyDS(t)
	r, err := Run(ds, distwindow.PWOR, 0.3, Options{Seed: 1, SkipErr: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Queries != 0 || r.AvgErr != 0 {
		t.Fatalf("SkipErr should skip evaluation: %+v", r)
	}
	if r.TotalWords == 0 {
		t.Fatal("communication still expected")
	}
}

func TestRunSiteOverride(t *testing.T) {
	ds := tinyDS(t) // generated with 4 sites
	r, err := Run(ds, distwindow.DA1, 0.3, Options{Sites: 9, Queries: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sites != 9 {
		t.Fatalf("Sites = %d, want 9", r.Sites)
	}
}

func TestRunDeterministic(t *testing.T) {
	ds := tinyDS(t)
	a, _ := Run(ds, distwindow.PWORAll, 0.2, Options{Queries: 5, Seed: 7})
	b, _ := Run(ds, distwindow.PWORAll, 0.2, Options{Queries: 5, Seed: 7})
	if a.TotalWords != b.TotalWords || a.AvgErr != b.AvgErr {
		t.Fatalf("same seed gave %+v vs %+v", a, b)
	}
}

func TestDatasetsScales(t *testing.T) {
	tiny := Datasets(Tiny, 1)
	if len(tiny) != 3 {
		t.Fatalf("want 3 datasets, got %d", len(tiny))
	}
	if tiny[0].Name != "PAMAP-sim" || tiny[0].D != 43 {
		t.Fatalf("dataset 0 = %s d=%d", tiny[0].Name, tiny[0].D)
	}
	if tiny[2].D != 128 {
		t.Fatalf("tiny WIKI d = %d, want 128", tiny[2].D)
	}
	def := Datasets(Default, 1)
	if len(def[0].Events) <= len(tiny[0].Events) {
		t.Fatal("default scale should exceed tiny")
	}
}

func TestEpsAndSiteGrids(t *testing.T) {
	if len(EpsGrid(Tiny)) < 2 || len(EpsGrid(Default)) < 3 {
		t.Fatal("grids too small")
	}
	if g := SiteGrid(Default, true); len(g) != 2 || g[0] != 10 {
		t.Fatalf("wiki site grid = %v", g)
	}
	if g := SiteGrid(Default, false); g[len(g)-1] != 80 {
		t.Fatalf("site grid = %v, want up to 80", g)
	}
}

func TestFigureProtocols(t *testing.T) {
	withDA1 := FigureProtocols(false)
	without := FigureProtocols(true)
	has := func(ps []distwindow.Protocol, p distwindow.Protocol) bool {
		for _, q := range ps {
			if q == p {
				return true
			}
		}
		return false
	}
	if !has(withDA1, distwindow.DA1) {
		t.Fatal("non-wiki set must include DA1")
	}
	if has(without, distwindow.DA1) {
		t.Fatal("wiki set must omit DA1 (as in the paper)")
	}
}

func TestTable2CheckSlopes(t *testing.T) {
	// Synthetic results with msg ∝ (1/ε)² must yield slope ≈ 2.
	var rs []Result
	for _, eps := range []float64{0.1, 0.2, 0.4} {
		rs = append(rs, Result{Protocol: distwindow.PWOR, Eps: eps, MsgWords: 100 / (eps * eps)})
		rs = append(rs, Result{Protocol: distwindow.DA1, Eps: eps, MsgWords: 100 / eps})
	}
	sl := Table2Check(rs)
	if math.Abs(sl[distwindow.PWOR]-2) > 1e-9 {
		t.Fatalf("sampling slope = %v, want 2", sl[distwindow.PWOR])
	}
	if math.Abs(sl[distwindow.DA1]-1) > 1e-9 {
		t.Fatalf("deterministic slope = %v, want 1", sl[distwindow.DA1])
	}
}

func TestPrintFigureAndTable3(t *testing.T) {
	var sb strings.Builder
	rs := []Result{
		{Protocol: distwindow.PWOR, Eps: 0.1, AvgErr: 0.05},
		{Protocol: distwindow.PWOR, Eps: 0.2, AvgErr: 0.08},
		{Protocol: distwindow.DA1, Eps: 0.1, AvgErr: 0.03},
	}
	PrintFigure(&sb, "test", rs,
		func(r Result) float64 { return r.Eps },
		func(r Result) float64 { return r.AvgErr })
	out := sb.String()
	if !strings.Contains(out, "PWOR") || !strings.Contains(out, "DA1") {
		t.Fatalf("PrintFigure output missing series: %q", out)
	}
	sb.Reset()
	PrintTable3(&sb, Datasets(Tiny, 1))
	if !strings.Contains(sb.String(), "WIKI-sim") {
		t.Fatalf("Table3 output: %q", sb.String())
	}
}

func TestResultString(t *testing.T) {
	r := Result{Dataset: "X", Protocol: distwindow.DA2, Eps: 0.05, AvgErr: 0.01}
	if s := r.String(); !strings.Contains(s, "DA2") || !strings.Contains(s, "0.05") {
		t.Fatalf("String = %q", s)
	}
}

func TestEpsSweepAndSiteSweep(t *testing.T) {
	ds := datagen.Synthetic(6, datagen.Config{N: 1500, RowsPerWindow: 400, Sites: 3, Seed: 2})
	rs, err := EpsSweep(nil, ds, []distwindow.Protocol{distwindow.DA2}, []float64{0.2, 0.3}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("EpsSweep returned %d results", len(rs))
	}
	ms, err := SiteSweep(nil, ds, []distwindow.Protocol{distwindow.DA2}, []int{2, 4}, 0.3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].Sites != 2 || ms[1].Sites != 4 {
		t.Fatalf("SiteSweep results wrong: %+v", ms)
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	rs := []Result{{Dataset: "X", Protocol: distwindow.DA1, Eps: 0.1, Sites: 4, AvgErr: 0.05, MsgWords: 123}}
	if err := WriteCSV(&sb, rs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "dataset,protocol,") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "X,DA1,0.1,4,0.05") {
		t.Fatalf("row missing: %q", out)
	}
}

func TestRunReplicatedAverages(t *testing.T) {
	ds := tinyDS(t)
	single, err := RunReplicated(ds, distwindow.PWOR, 0.3, Options{Queries: 5, Seed: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := RunReplicated(ds, distwindow.PWOR, 0.3, Options{Queries: 5, Seed: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if avg.AvgErr <= 0 || avg.MsgWords <= 0 {
		t.Fatalf("replicated metrics missing: %+v", avg)
	}
	// Averaging three seeds should not wildly diverge from one seed.
	if avg.AvgErr > 5*single.AvgErr+0.1 {
		t.Fatalf("replicated avg %v vs single %v", avg.AvgErr, single.AvgErr)
	}
}
